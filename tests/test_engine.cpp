// Unit tests for the transport's SendSource/RecvSink adapters and the
// scatter/gather helpers, plus end-to-end coverage of the
// generic_pipeline custom-type lowering (including the inorder flag).
#include <gtest/gtest.h>

#include <cstring>

#include "core/engine.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"
#include "ucx/engine.hpp"

namespace mpicd::ucx {
namespace {

TEST(ScatterGather, GatherAcrossRegions) {
    ByteVec a = test::pattern_bytes(10, 1), b = test::pattern_bytes(20, 2);
    const ConstIovEntry regions[] = {{a.data(), 10}, {b.data(), 20}};
    ByteVec out(12);
    Count used = 0;
    // Read 12 bytes starting at offset 5: 5 from a, 7 from b.
    ASSERT_EQ(gather_from_regions(regions, 5, out, &used), Status::success);
    EXPECT_EQ(used, 12);
    EXPECT_EQ(std::memcmp(out.data(), a.data() + 5, 5), 0);
    EXPECT_EQ(std::memcmp(out.data() + 5, b.data(), 7), 0);
}

TEST(ScatterGather, GatherShortAtEnd) {
    ByteVec a = test::pattern_bytes(8);
    const ConstIovEntry regions[] = {{a.data(), 8}};
    ByteVec out(100);
    Count used = 0;
    ASSERT_EQ(gather_from_regions(regions, 6, out, &used), Status::success);
    EXPECT_EQ(used, 2);
}

TEST(ScatterGather, ScatterAcrossRegions) {
    ByteVec a(10, std::byte{0}), b(20, std::byte{0});
    const IovEntry regions[] = {{a.data(), 10}, {b.data(), 20}};
    const ByteVec src = test::pattern_bytes(15, 3);
    ASSERT_EQ(scatter_into_regions(regions, 8, src), Status::success);
    EXPECT_EQ(std::memcmp(a.data() + 8, src.data(), 2), 0);
    EXPECT_EQ(std::memcmp(b.data(), src.data() + 2, 13), 0);
    EXPECT_EQ(a[0], std::byte{0}); // untouched prefix
}

TEST(ScatterGather, ScatterOverrunIsTruncate) {
    ByteVec a(4, std::byte{0});
    const IovEntry regions[] = {{a.data(), 4}};
    const ByteVec src = test::pattern_bytes(10);
    EXPECT_EQ(scatter_into_regions(regions, 0, src), Status::err_truncate);
}

TEST(SendSourceTest, ContigExposesOneRegion) {
    const ByteVec data = test::pattern_bytes(100);
    const BufferDesc desc = make_contig_send(data.data(), 100);
    SendSource src(desc);
    EXPECT_TRUE(src.exposes_memory());
    EXPECT_EQ(src.sg_entries(), 1);
    EXPECT_TRUE(src.allows_out_of_order());
    Count total = 0;
    SimTime cost = 0;
    ASSERT_EQ(src.total_bytes(&total, cost), Status::success);
    EXPECT_EQ(total, 100);
}

TEST(SendSourceTest, IovRandomAccessRead) {
    ByteVec a = test::pattern_bytes(64, 1), b = test::pattern_bytes(64, 2);
    const BufferDesc desc = make_iov({{a.data(), 64}, {b.data(), 64}});
    SendSource src(desc);
    EXPECT_EQ(src.sg_entries(), 2);
    ByteVec out(32);
    Count used = 0;
    SimTime cost = 0;
    ASSERT_EQ(src.read(48, out, &used, cost), Status::success);
    EXPECT_EQ(used, 32);
    EXPECT_EQ(std::memcmp(out.data(), a.data() + 48, 16), 0);
    EXPECT_EQ(std::memcmp(out.data() + 16, b.data(), 16), 0);
}

TEST(RecvSinkTest, CapacitySumsIovEntries) {
    ByteVec a(30), b(50);
    BufferDesc desc = make_iov({{a.data(), 30}, {b.data(), 50}});
    RecvSink sink(desc);
    EXPECT_EQ(sink.capacity(), 80);
    EXPECT_TRUE(sink.exposes_memory());
    EXPECT_EQ(sink.sg_entries(), 2);
}

TEST(RecvSinkTest, WriteScattersAtOffset) {
    ByteVec a(30, std::byte{0}), b(50, std::byte{0});
    BufferDesc desc = make_iov({{a.data(), 30}, {b.data(), 50}});
    RecvSink sink(desc);
    const ByteVec payload = test::pattern_bytes(40, 7);
    SimTime cost = 0;
    ASSERT_EQ(sink.write(20, payload, cost), Status::success);
    EXPECT_EQ(std::memcmp(a.data() + 20, payload.data(), 10), 0);
    EXPECT_EQ(std::memcmp(b.data(), payload.data() + 10, 30), 0);
}

} // namespace
} // namespace mpicd::ucx

namespace mpicd::core {
namespace {

// Pack-only stream type for pipeline-lowering tests.
struct Stream {
    ByteVec data;
};

Status sq(void*, const void* buf, Count count, Count* size) {
    *size = static_cast<Count>(static_cast<const Stream*>(buf)->data.size()) * count;
    return Status::success;
}
Status sp(void*, const void* buf, Count, Count offset, void* dst, Count dst_size,
          Count* used) {
    const auto& d = static_cast<const Stream*>(buf)->data;
    const Count n = std::min(dst_size, static_cast<Count>(d.size()) - offset);
    std::memcpy(dst, d.data() + offset, static_cast<std::size_t>(n));
    *used = n;
    return Status::success;
}
Status su(void*, void* buf, Count, Count offset, const void* src, Count src_size) {
    auto& d = static_cast<Stream*>(buf)->data;
    if (offset + src_size > static_cast<Count>(d.size())) return Status::err_unpack;
    std::memcpy(d.data() + offset, src, static_cast<std::size_t>(src_size));
    return Status::success;
}

CustomDatatype stream_type(bool inorder) {
    CustomCallbacks cb;
    cb.query = sq;
    cb.pack = sp;
    cb.unpack = su;
    cb.inorder = inorder;
    CustomDatatype out;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::success);
    return out;
}

class PipelineLowering : public ::testing::TestWithParam<bool> {};

TEST_P(PipelineLowering, RoundTripsEagerAndRendezvous) {
    const auto type = stream_type(/*inorder=*/GetParam());
    for (const std::size_t n : {std::size_t(500), std::size_t(2 * 1024 * 1024 + 33)}) {
        p2p::Universe uni(2, test::test_params());
        Stream send{test::pattern_bytes(n, static_cast<std::uint32_t>(n))};
        Stream recv;
        recv.data.resize(n);
        auto rr = uni.comm(1).irecv_custom(&recv, 1, type, 0, 1,
                                           CustomLowering::generic_pipeline);
        auto rs = uni.comm(0).isend_custom(&send, 1, type, 1, 1,
                                           CustomLowering::generic_pipeline);
        EXPECT_EQ(rr.wait().status, Status::success) << n;
        EXPECT_EQ(rs.wait().status, Status::success) << n;
        EXPECT_EQ(send.data, recv.data) << n;
    }
}

TEST_P(PipelineLowering, MixedLoweringsInteroperate) {
    // Sender uses the pipeline lowering, receiver the iov lowering (and
    // vice versa) — the wire format must stay compatible.
    const auto type = stream_type(GetParam());
    const std::size_t n = 100 * 1024;
    {
        p2p::Universe uni(2, test::test_params());
        Stream send{test::pattern_bytes(n, 5)}, recv;
        recv.data.resize(n);
        auto rr = uni.comm(1).irecv_custom(&recv, 1, type, 0, 1,
                                           CustomLowering::iov);
        auto rs = uni.comm(0).isend_custom(&send, 1, type, 1, 1,
                                           CustomLowering::generic_pipeline);
        EXPECT_EQ(rr.wait().status, Status::success);
        EXPECT_EQ(rs.wait().status, Status::success);
        EXPECT_EQ(send.data, recv.data);
    }
    {
        p2p::Universe uni(2, test::test_params());
        Stream send{test::pattern_bytes(n, 6)}, recv;
        recv.data.resize(n);
        auto rr = uni.comm(1).irecv_custom(&recv, 1, type, 0, 1,
                                           CustomLowering::generic_pipeline);
        auto rs =
            uni.comm(0).isend_custom(&send, 1, type, 1, 1, CustomLowering::iov);
        EXPECT_EQ(rr.wait().status, Status::success);
        EXPECT_EQ(rs.wait().status, Status::success);
        EXPECT_EQ(send.data, recv.data);
    }
}

INSTANTIATE_TEST_SUITE_P(InorderFlag, PipelineLowering, ::testing::Bool(),
                         [](const auto& info) {
                             return info.param ? "inorder" : "out_of_order";
                         });

TEST(PipelineLowering2, OutOfOrderStripesAcrossRails) {
    // With inorder=0 and 2 rails, a large pipelined transfer must finish
    // earlier (virtual time) than the same transfer with inorder=1.
    const auto ordered = stream_type(true);
    const auto unordered = stream_type(false);
    const std::size_t n = 8 * 1024 * 1024;
    SimTime t_ordered = 0, t_unordered = 0;
    for (int variant = 0; variant < 2; ++variant) {
        const auto& type = variant == 0 ? ordered : unordered;
        p2p::Universe uni(2, test::test_params());
        Stream send{ByteVec(n)}, recv;
        recv.data.resize(n);
        auto rr = uni.comm(1).irecv_custom(&recv, 1, type, 0, 1,
                                           core::CustomLowering::generic_pipeline);
        auto rs = uni.comm(0).isend_custom(&send, 1, type, 1, 1,
                                           core::CustomLowering::generic_pipeline);
        (void)rs.wait();
        const auto st = rr.wait();
        ASSERT_EQ(st.status, Status::success);
        (variant == 0 ? t_ordered : t_unordered) = st.vtime;
    }
    EXPECT_LT(t_unordered, t_ordered);
}

TEST(CustomRecvOpTest, FinishIsIdempotent) {
    p2p::Universe uni(2, test::test_params());
    const auto type = stream_type(false);
    Stream obj;
    obj.data.resize(64);
    CustomRecvOp op;
    ASSERT_EQ(lower_custom_recv(type, &obj, 1, uni.worker(0), &op), Status::success);
    EXPECT_EQ(op.expected_packed(), 64);
    EXPECT_EQ(op.expected_total(), 64);
    EXPECT_EQ(op.finish(uni.worker(0)), Status::success);
    EXPECT_EQ(op.finish(uni.worker(0)), Status::success); // no double unpack
}

TEST(CustomRecvOpTest, MoveTransfersPendingState) {
    p2p::Universe uni(2, test::test_params());
    const auto type = stream_type(false);
    Stream obj;
    obj.data.resize(32);
    CustomRecvOp a;
    ASSERT_EQ(lower_custom_recv(type, &obj, 1, uni.worker(0), &a), Status::success);
    CustomRecvOp b(std::move(a));
    EXPECT_EQ(b.expected_packed(), 32);
    EXPECT_EQ(b.finish(uni.worker(0)), Status::success);
}

} // namespace
} // namespace mpicd::core
