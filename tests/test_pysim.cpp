#include <gtest/gtest.h>

#include "p2p/runner.hpp"
#include "pysim/mpi4py_sim.hpp"
#include "test_util.hpp"

namespace mpicd::pysim {
namespace {

PyValue sample_object() {
    PyDict d;
    d.emplace_back("name", PyValue("experiment-42"));
    d.emplace_back("iterations", PyValue(17));
    d.emplace_back("lr", PyValue(0.125));
    d.emplace_back("debug", PyValue(true));
    d.emplace_back("unset", PyValue());
    PyList arrays;
    arrays.emplace_back(NdArray::pattern(DType::f64, {1024}, 1));
    arrays.emplace_back(NdArray::pattern(DType::i32, {16, 16}, 2));
    d.emplace_back("data", PyValue(std::move(arrays)));
    return PyValue(std::move(d));
}

TEST(PyValue, TypePredicatesAndAccessors) {
    EXPECT_TRUE(PyValue().is_none());
    EXPECT_TRUE(PyValue(true).is_bool());
    EXPECT_TRUE(PyValue(5).is_int());
    EXPECT_TRUE(PyValue(1.5).is_float());
    EXPECT_TRUE(PyValue("s").is_str());
    EXPECT_EQ(PyValue(5).as_int(), 5);
    EXPECT_EQ(PyValue("s").as_str(), "s");
}

TEST(PyValue, DeepEquality) {
    const auto a = sample_object();
    const auto b = sample_object();
    EXPECT_EQ(a, b);
    auto c = sample_object();
    c.as_dict()[1].second = PyValue(18);
    EXPECT_FALSE(a == c);
}

TEST(PyValue, PayloadBytesCountsNestedArrays) {
    const auto v = sample_object();
    EXPECT_EQ(v.payload_bytes(), 1024 * 8 + 16 * 16 * 4);
}

TEST(NdArrayTest, PatternIsDeterministic) {
    const auto a = NdArray::pattern(DType::f32, {100}, 7);
    const auto b = NdArray::pattern(DType::f32, {100}, 7);
    const auto c = NdArray::pattern(DType::f32, {100}, 8);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(a.nbytes(), 400);
    EXPECT_EQ(a.elements(), 100);
}

TEST(Pickle, InBandRoundTrip) {
    const auto v = sample_object();
    Pickled p;
    ASSERT_EQ(dumps(v, DumpOptions{}, &p), Status::success);
    EXPECT_TRUE(p.oob.empty());
    PyValue back;
    ASSERT_EQ(loads(p.stream, &back), Status::success);
    EXPECT_EQ(v, back);
}

TEST(Pickle, OutOfBandZeroCopy) {
    const auto v = sample_object();
    DumpOptions opts;
    opts.out_of_band = true;
    opts.oob_threshold = 1024;
    Pickled p;
    ASSERT_EQ(dumps(v, opts, &p), Status::success);
    ASSERT_EQ(p.oob.size(), 2u); // both arrays exceed the threshold
    // Zero copy: the buffers alias the source arrays.
    const auto& arrays = v.as_dict()[5].second.as_list();
    EXPECT_EQ(p.oob[0].data, arrays[0].as_ndarray().data());
    EXPECT_EQ(p.oob[1].data, arrays[1].as_ndarray().data());
    // The stream carries only metadata — far smaller than the payload.
    EXPECT_LT(p.stream.size(), 256u);
}

TEST(Pickle, TwoPhaseLoadFillsViaTargets) {
    const auto v = sample_object();
    DumpOptions opts;
    opts.out_of_band = true;
    opts.oob_threshold = 512;
    Pickled p;
    ASSERT_EQ(dumps(v, opts, &p), Status::success);
    PyValue back;
    std::vector<IovEntry> fill;
    ASSERT_EQ(loads_alloc(p.stream, &back, &fill), Status::success);
    ASSERT_EQ(fill.size(), p.oob.size());
    EXPECT_FALSE(v == back); // payloads not delivered yet
    for (std::size_t i = 0; i < fill.size(); ++i) {
        ASSERT_EQ(fill[i].len, p.oob[i].len);
        std::memcpy(fill[i].base, p.oob[i].data, static_cast<std::size_t>(fill[i].len));
    }
    EXPECT_EQ(v, back); // complete after the fill
}

TEST(Pickle, MetadataHeaderIsSmall) {
    // The paper: a 1D array's pickle header weighs ~120 bytes.
    const auto arr = PyValue(NdArray::pattern(DType::f64, {1 << 20}, 3));
    DumpOptions opts;
    opts.out_of_band = true;
    Pickled p;
    ASSERT_EQ(dumps(arr, opts, &p), Status::success);
    EXPECT_LT(p.stream.size(), 128u);
    EXPECT_EQ(p.oob.size(), 1u);
}

TEST(Pickle, CorruptStreamRejected) {
    ByteVec junk{std::byte{250}};
    PyValue out;
    EXPECT_EQ(loads(junk, &out), Status::err_serialize);
}

TEST(Pickle, TrailingGarbageRejected) {
    Pickled p;
    ASSERT_EQ(dumps(PyValue(1), DumpOptions{}, &p), Status::success);
    p.stream.push_back(std::byte{0});
    PyValue out;
    EXPECT_EQ(loads(p.stream, &out), Status::err_serialize);
}

class Mpi4pyXfer : public ::testing::TestWithParam<PyXfer> {};

TEST_P(Mpi4pyXfer, RoundTripsComplexObject) {
    const auto v = sample_object();
    PyXferOptions opts;
    opts.method = GetParam();
    PyValue got;
    Status send_st = Status::err_internal, recv_st = Status::err_internal;
    p2p::run_world(2, [&](p2p::Communicator& comm) {
        if (comm.rank() == 0) {
            send_st = send_pyobj(comm, v, 1, 11, opts);
        } else {
            recv_st = recv_pyobj(comm, &got, 0, 11, opts);
        }
    }, test::test_params());
    EXPECT_EQ(send_st, Status::success);
    EXPECT_EQ(recv_st, Status::success);
    EXPECT_EQ(got, v);
}

TEST_P(Mpi4pyXfer, RoundTripsLargeSingleArray) {
    const auto v = PyValue(NdArray::pattern(DType::u8, {1 << 20}, 5));
    PyXferOptions opts;
    opts.method = GetParam();
    PyValue got;
    p2p::run_world(2, [&](p2p::Communicator& comm) {
        if (comm.rank() == 0) {
            EXPECT_EQ(send_pyobj(comm, v, 1, 3, opts), Status::success);
        } else {
            EXPECT_EQ(recv_pyobj(comm, &got, 0, 3, opts), Status::success);
        }
    }, test::test_params());
    EXPECT_EQ(got, v);
}

TEST_P(Mpi4pyXfer, RoundTripsScalarOnlyObject) {
    PyDict d;
    d.emplace_back("x", PyValue(1));
    d.emplace_back("y", PyValue("two"));
    const PyValue v{std::move(d)};
    PyXferOptions opts;
    opts.method = GetParam();
    PyValue got;
    p2p::run_world(2, [&](p2p::Communicator& comm) {
        if (comm.rank() == 0) {
            EXPECT_EQ(send_pyobj(comm, v, 1, 3, opts), Status::success);
        } else {
            EXPECT_EQ(recv_pyobj(comm, &got, 0, 3, opts), Status::success);
        }
    }, test::test_params());
    EXPECT_EQ(got, v);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, Mpi4pyXfer,
                         ::testing::Values(PyXfer::basic, PyXfer::oob_multi,
                                           PyXfer::oob_cdt),
                         [](const auto& info) {
                             switch (info.param) {
                                 case PyXfer::basic: return "basic";
                                 case PyXfer::oob_multi: return "oob_multi";
                                 case PyXfer::oob_cdt: return "oob_cdt";
                             }
                             return "unknown";
                         });

} // namespace
} // namespace mpicd::pysim

namespace mpicd::pysim {
namespace {

TEST(PyValueRepr, ScalarsAndContainers) {
    PyDict d;
    d.emplace_back("x", PyValue(1));
    d.emplace_back("flag", PyValue(true));
    d.emplace_back("name", PyValue("run"));
    d.emplace_back("none", PyValue());
    PyList l;
    l.emplace_back(PyValue(2));
    l.emplace_back(NdArray::zeros(DType::f64, {4, 4}));
    d.emplace_back("items", PyValue(std::move(l)));
    const PyValue v{std::move(d)};
    EXPECT_EQ(v.repr(),
              "{'x': 1, 'flag': True, 'name': 'run', 'none': None, "
              "'items': [2, ndarray(float64, [4, 4])]}");
}

TEST(PyValueRepr, EmptyContainers) {
    EXPECT_EQ(PyValue(PyList{}).repr(), "[]");
    EXPECT_EQ(PyValue(PyDict{}).repr(), "{}");
}

} // namespace
} // namespace mpicd::pysim
