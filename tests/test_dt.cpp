#include <gtest/gtest.h>

#include "dt/datatype.hpp"

namespace mpicd::dt {
namespace {

TEST(Predefined, SizesAndNames) {
    EXPECT_EQ(predef_size(Predef::int32), 4u);
    EXPECT_EQ(predef_size(Predef::float64), 8u);
    EXPECT_EQ(predef_size(Predef::byte_), 1u);
    EXPECT_STREQ(predef_name(Predef::float64), "double");
}

TEST(Predefined, SingletonsAreCommitted) {
    EXPECT_TRUE(type_int32()->committed());
    EXPECT_TRUE(type_double()->committed());
    EXPECT_EQ(type_int32()->size(), 4);
    EXPECT_EQ(type_double()->extent(), 8);
    EXPECT_TRUE(type_byte()->is_contiguous());
}

TEST(Contiguous, Properties) {
    auto t = Datatype::contiguous(10, type_int32());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 40);
    EXPECT_EQ(t->extent(), 40);
    EXPECT_EQ(t->lb(), 0);
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_TRUE(t->is_contiguous());
    EXPECT_EQ(t->segments().size(), 1u);
}

TEST(Contiguous, ZeroCount) {
    auto t = Datatype::contiguous(0, type_int32());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 0);
    EXPECT_EQ(t->extent(), 0);
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_TRUE(t->is_contiguous());
}

TEST(Contiguous, NegativeCountRejected) {
    EXPECT_EQ(Datatype::contiguous(-1, type_int32()), nullptr);
    EXPECT_EQ(Datatype::contiguous(1, nullptr), nullptr);
}

TEST(Vector, StridedSegments) {
    // 3 blocks of 2 ints, stride 4 ints.
    auto t = Datatype::vector(3, 2, 4, type_int32());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 24);
    EXPECT_EQ(t->extent(), (2 * 4 + 2) * 4); // last block ends at elem 10
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_FALSE(t->is_contiguous());
    ASSERT_EQ(t->segments().size(), 3u);
    EXPECT_EQ(t->segments()[0].offset, 0);
    EXPECT_EQ(t->segments()[0].len, 8);
    EXPECT_EQ(t->segments()[1].offset, 16);
    EXPECT_EQ(t->segments()[2].offset, 32);
}

TEST(Vector, UnitStrideCollapsesToContiguous) {
    auto t = Datatype::vector(4, 1, 1, type_double());
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_TRUE(t->is_contiguous());
    EXPECT_EQ(t->segments().size(), 1u);
    EXPECT_EQ(t->segments()[0].len, 32);
}

TEST(Vector, NegativeStride) {
    auto t = Datatype::vector(2, 1, -2, type_int32());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->lb(), -8);
    EXPECT_EQ(t->extent(), 12);
    ASSERT_EQ(t->commit(), Status::success);
    ASSERT_EQ(t->segments().size(), 2u);
    EXPECT_EQ(t->segments()[0].offset, 0);
    EXPECT_EQ(t->segments()[1].offset, -8);
}

TEST(Hvector, ByteStride) {
    auto t = Datatype::hvector(2, 1, 10, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    ASSERT_EQ(t->segments().size(), 2u);
    EXPECT_EQ(t->segments()[1].offset, 10);
    EXPECT_EQ(t->size(), 8);
    EXPECT_EQ(t->extent(), 14);
}

TEST(Indexed, BlocksAndSize) {
    const Count blocklens[] = {2, 1, 3};
    const Count displs[] = {0, 5, 10};
    auto t = Datatype::indexed(blocklens, displs, type_int32());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 24);
    ASSERT_EQ(t->commit(), Status::success);
    ASSERT_EQ(t->segments().size(), 3u);
    EXPECT_EQ(t->segments()[1].offset, 20);
    EXPECT_EQ(t->segments()[2].len, 12);
}

TEST(Indexed, MismatchedSpansRejected) {
    const Count blocklens[] = {1, 2};
    const Count displs[] = {0};
    EXPECT_EQ(Datatype::indexed(blocklens, displs, type_int32()), nullptr);
}

TEST(Indexed, NegativeBlocklenRejected) {
    const Count blocklens[] = {-1};
    const Count displs[] = {0};
    EXPECT_EQ(Datatype::indexed(blocklens, displs, type_int32()), nullptr);
}

TEST(Hindexed, ByteDisplacements) {
    const Count blocklens[] = {1, 1};
    const Count displs[] = {0, 6};
    auto t = Datatype::hindexed(blocklens, displs, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    ASSERT_EQ(t->segments().size(), 2u);
    EXPECT_EQ(t->segments()[1].offset, 6);
}

TEST(IndexedBlock, FixedBlocklen) {
    const Count displs[] = {0, 3, 6};
    auto t = Datatype::indexed_block(2, displs, type_double());
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_EQ(t->size(), 48);
    EXPECT_EQ(t->segments().size(), 3u);
}

TEST(Struct, GapProducesTwoSegments) {
    // { int32 a,b,c; <4B gap>; double d; } — the paper's struct-simple.
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const TypeRef types[] = {type_int32(), type_double()};
    auto t = Datatype::struct_(blocklens, displs, types);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 20);
    EXPECT_EQ(t->extent(), 24);
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_FALSE(t->is_contiguous());
    ASSERT_EQ(t->segments().size(), 2u);
    EXPECT_EQ(t->segments()[0].len, 12);
    EXPECT_EQ(t->segments()[1].offset, 16);
    EXPECT_EQ(t->segments()[1].len, 8);
}

TEST(Struct, NoGapIsContiguousAfterMerge) {
    // { int32 a,b; double c; } packs into one run — but extent (16) equals
    // size (16), so the committed type is contiguous.
    const Count blocklens[] = {2, 1};
    const Count displs[] = {0, 8};
    const TypeRef types[] = {type_int32(), type_double()};
    auto t = Datatype::struct_(blocklens, displs, types);
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_TRUE(t->is_contiguous());
    EXPECT_EQ(t->segments().size(), 1u);
}

TEST(Struct, ZeroBlocklenFieldIgnoredInFootprint) {
    const Count blocklens[] = {0, 1};
    const Count displs[] = {100, 0};
    const TypeRef types[] = {type_double(), type_int32()};
    auto t = Datatype::struct_(blocklens, displs, types);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 4);
    EXPECT_EQ(t->extent(), 4);
}

TEST(Resized, OverridesExtent) {
    auto base = Datatype::contiguous(3, type_int32());
    auto t = Datatype::resized(base, 0, 32);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 12);
    EXPECT_EQ(t->extent(), 32);
    EXPECT_EQ(t->true_extent(), 12);
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_FALSE(t->is_contiguous()); // padding breaks multi-element runs
}

TEST(Subarray, SelectsRegion2D) {
    // 4x6 int array, select rows 1..2, cols 2..4 (C order).
    const Count sizes[] = {4, 6};
    const Count subsizes[] = {2, 3};
    const Count starts[] = {1, 2};
    auto t = Datatype::subarray(sizes, subsizes, starts, type_int32());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 24);
    EXPECT_EQ(t->extent(), 4 * 6 * 4);
    ASSERT_EQ(t->commit(), Status::success);
    ASSERT_EQ(t->segments().size(), 2u); // one run per selected row
    EXPECT_EQ(t->segments()[0].offset, (1 * 6 + 2) * 4);
    EXPECT_EQ(t->segments()[0].len, 12);
    EXPECT_EQ(t->segments()[1].offset, (2 * 6 + 2) * 4);
}

TEST(Subarray, FullSelectionIsContiguous) {
    const Count sizes[] = {3, 4};
    const Count subsizes[] = {3, 4};
    const Count starts[] = {0, 0};
    auto t = Datatype::subarray(sizes, subsizes, starts, type_double());
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_TRUE(t->is_contiguous());
}

TEST(Subarray, OutOfBoundsRejected) {
    const Count sizes[] = {4};
    const Count subsizes[] = {3};
    const Count starts[] = {2}; // 2+3 > 4
    EXPECT_EQ(Datatype::subarray(sizes, subsizes, starts, type_int32()), nullptr);
}

TEST(Subarray, EmptySelection) {
    const Count sizes[] = {4, 4};
    const Count subsizes[] = {0, 4};
    const Count starts[] = {0, 0};
    auto t = Datatype::subarray(sizes, subsizes, starts, type_int32());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 0);
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_TRUE(t->segments().empty());
}

TEST(Nested, VectorOfStructWithGap) {
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const TypeRef types[] = {type_int32(), type_double()};
    auto s = Datatype::struct_(blocklens, displs, types);
    auto rs = Datatype::resized(s, 0, 24);
    auto v = Datatype::vector(2, 1, 2, rs);
    ASSERT_EQ(v->commit(), Status::success);
    EXPECT_EQ(v->size(), 40);
    ASSERT_EQ(v->segments().size(), 4u); // 2 segments per element, 2 elements
    EXPECT_EQ(v->segments()[2].offset, 48);
}

TEST(Commit, Idempotent) {
    auto t = Datatype::contiguous(5, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    const auto segs = t->segments();
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_EQ(t->segments().size(), segs.size());
}

TEST(Commit, PackedPrefixMatchesSize) {
    const Count blocklens[] = {2, 1, 3};
    const Count displs[] = {0, 5, 10};
    auto t = Datatype::indexed(blocklens, displs, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_EQ(t->packed_prefix().back(), t->size());
    EXPECT_EQ(t->packed_prefix().front(), 0);
}

TEST(Name, DescribesStructure) {
    auto t = Datatype::vector(2, 1, 2, type_int32());
    EXPECT_EQ(t->name(), "vector(int32)");
    EXPECT_EQ(type_double()->name(), "double");
}

} // namespace
} // namespace mpicd::dt
