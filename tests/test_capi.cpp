// Tests for the C API — the paper's exact proposed interface
// (MPI_Type_create_custom, Listings 2–5) plus the minimal MPI surface.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "capi/capi.h"

namespace {

// ---------------------------------------------------------------------------
// A C-style custom datatype: a dynamic byte blob with a length header in
// the packed stream and the payload exposed as one memory region.

struct CBlob {
    long long len;
    unsigned char* data;
};

int cblob_state(void* context, const void* /*src*/, MPI_Count /*count*/,
                void** state) {
    // Pass the context through as state to prove the plumbing works.
    *state = context;
    return MPI_SUCCESS;
}
int cblob_state_free(void* /*state*/) { return MPI_SUCCESS; }

int cblob_query(void*, const void* /*buf*/, MPI_Count count, MPI_Count* packed) {
    *packed = count * static_cast<MPI_Count>(sizeof(long long));
    return MPI_SUCCESS;
}

int cblob_pack(void*, const void* buf, MPI_Count count, MPI_Count offset, void* dst,
               MPI_Count dst_size, MPI_Count* used) {
    const auto* blobs = static_cast<const CBlob*>(buf);
    std::vector<long long> hdr(static_cast<std::size_t>(count));
    for (MPI_Count i = 0; i < count; ++i) hdr[static_cast<std::size_t>(i)] = blobs[i].len;
    const auto total = static_cast<MPI_Count>(count * sizeof(long long));
    const MPI_Count n = std::min(dst_size, total - offset);
    std::memcpy(dst, reinterpret_cast<const char*>(hdr.data()) + offset,
                static_cast<std::size_t>(n));
    *used = n;
    return MPI_SUCCESS;
}

int cblob_unpack(void*, void* buf, MPI_Count count, MPI_Count offset, const void* src,
                 MPI_Count src_size) {
    auto* blobs = static_cast<CBlob*>(buf);
    if (offset != 0 || src_size != count * static_cast<MPI_Count>(sizeof(long long)))
        return MPI_ERR_OTHER;
    const auto* hdr = static_cast<const long long*>(src);
    for (MPI_Count i = 0; i < count; ++i) {
        if (hdr[i] != blobs[i].len) return MPI_ERR_TRUNCATE; // size must pre-match
    }
    return MPI_SUCCESS;
}

int cblob_region_count(void*, void* /*buf*/, MPI_Count count, MPI_Count* n) {
    *n = count;
    return MPI_SUCCESS;
}

int cblob_region(void*, void* buf, MPI_Count count, MPI_Count region_count,
                 void* bases[], MPI_Count lens[], MPI_Datatype types[]) {
    if (region_count != count) return MPI_ERR_OTHER;
    auto* blobs = static_cast<CBlob*>(buf);
    for (MPI_Count i = 0; i < count; ++i) {
        bases[i] = blobs[i].data;
        lens[i] = blobs[i].len;
        types[i] = nullptr; // bytes
    }
    return MPI_SUCCESS;
}

MPI_Datatype make_cblob_type() {
    MPI_Datatype t = MPI_DATATYPE_NULL;
    EXPECT_EQ(MPI_Type_create_custom(cblob_state, cblob_state_free, cblob_query,
                                     cblob_pack, cblob_unpack, cblob_region_count,
                                     cblob_region, nullptr, 0, &t),
              MPI_SUCCESS);
    return t;
}

// ---------------------------------------------------------------------------

void world_basic(void*) {
    int rank = -1, size = -1;
    ASSERT_EQ(MPI_Comm_rank(MPI_COMM_WORLD, &rank), MPI_SUCCESS);
    ASSERT_EQ(MPI_Comm_size(MPI_COMM_WORLD, &size), MPI_SUCCESS);
    ASSERT_EQ(size, 2);
    if (rank == 0) {
        const int values[4] = {10, 20, 30, 40};
        ASSERT_EQ(MPI_Send(values, 4, MPI_INT, 1, 5, MPI_COMM_WORLD), MPI_SUCCESS);
    } else {
        int got[4] = {};
        MPI_Status st;
        ASSERT_EQ(MPI_Recv(got, 4, MPI_INT, 0, 5, MPI_COMM_WORLD, &st), MPI_SUCCESS);
        EXPECT_EQ(st.MPI_SOURCE, 0);
        EXPECT_EQ(st.MPI_TAG, 5);
        MPI_Count n = 0;
        ASSERT_EQ(MPI_Get_count(&st, MPI_INT, &n), MPI_SUCCESS);
        EXPECT_EQ(n, 4);
        EXPECT_EQ(got[3], 40);
    }
}

TEST(CApi, BasicSendRecv) { ASSERT_EQ(MPIX_Run_world(2, world_basic, nullptr), MPI_SUCCESS); }

void world_custom(void*) {
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Datatype type = make_cblob_type();
    unsigned char payload0[300], payload1[700];
    for (int i = 0; i < 300; ++i) payload0[i] = static_cast<unsigned char>(i);
    for (int i = 0; i < 700; ++i) payload1[i] = static_cast<unsigned char>(i * 3);
    if (rank == 0) {
        CBlob blobs[2] = {{300, payload0}, {700, payload1}};
        ASSERT_EQ(MPI_Send(blobs, 2, type, 1, 1, MPI_COMM_WORLD), MPI_SUCCESS);
    } else {
        unsigned char r0[300] = {}, r1[700] = {};
        CBlob blobs[2] = {{300, r0}, {700, r1}};
        MPI_Status st;
        ASSERT_EQ(MPI_Recv(blobs, 2, type, 0, 1, MPI_COMM_WORLD, &st), MPI_SUCCESS);
        EXPECT_EQ(st.MPI_ERROR, MPI_SUCCESS);
        EXPECT_EQ(std::memcmp(r0, payload0, 300), 0);
        EXPECT_EQ(std::memcmp(r1, payload1, 700), 0);
    }
    MPI_Type_free(&type);
    EXPECT_EQ(type, MPI_DATATYPE_NULL);
}

TEST(CApi, CustomDatatypeRoundTrip) {
    ASSERT_EQ(MPIX_Run_world(2, world_custom, nullptr), MPI_SUCCESS);
}

void world_derived(void*) {
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    // Every 2nd double out of 16.
    MPI_Datatype vec = MPI_DATATYPE_NULL;
    ASSERT_EQ(MPI_Type_vector(8, 1, 2, MPI_DOUBLE, &vec), MPI_SUCCESS);
    ASSERT_EQ(MPI_Type_commit(&vec), MPI_SUCCESS);
    MPI_Count size = 0;
    ASSERT_EQ(MPI_Type_size(vec, &size), MPI_SUCCESS);
    EXPECT_EQ(size, 64);
    if (rank == 0) {
        double data[16];
        for (int i = 0; i < 16; ++i) data[i] = i;
        ASSERT_EQ(MPI_Send(data, 1, vec, 1, 2, MPI_COMM_WORLD), MPI_SUCCESS);
    } else {
        double data[16] = {};
        ASSERT_EQ(MPI_Recv(data, 1, vec, 0, 2, MPI_COMM_WORLD, MPI_STATUS_IGNORE),
                  MPI_SUCCESS);
        for (int i = 0; i < 16; ++i) {
            EXPECT_DOUBLE_EQ(data[i], i % 2 == 0 ? i : 0.0);
        }
    }
    MPI_Type_free(&vec);
}

TEST(CApi, DerivedVectorRoundTrip) {
    ASSERT_EQ(MPIX_Run_world(2, world_derived, nullptr), MPI_SUCCESS);
}

void world_probe(void*) {
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
        const char msg[] = "dynamic-length message";
        ASSERT_EQ(MPI_Send(msg, sizeof(msg), MPI_BYTE, 1, 3, MPI_COMM_WORLD),
                  MPI_SUCCESS);
    } else {
        // The mpi4py pattern: Mprobe for the size, then matched-receive.
        MPI_Message msg = nullptr;
        MPI_Status st;
        ASSERT_EQ(MPI_Mprobe(0, 3, MPI_COMM_WORLD, &msg, &st), MPI_SUCCESS);
        MPI_Count n = 0;
        ASSERT_EQ(MPI_Get_count(&st, MPI_BYTE, &n), MPI_SUCCESS);
        std::vector<char> buf(static_cast<std::size_t>(n));
        MPI_Request rq = MPI_REQUEST_NULL;
        ASSERT_EQ(MPI_Imrecv(buf.data(), n, MPI_BYTE, &msg, &rq), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&rq, MPI_STATUS_IGNORE), MPI_SUCCESS);
        EXPECT_STREQ(buf.data(), "dynamic-length message");
    }
}

TEST(CApi, MprobeImrecvDynamicSize) {
    ASSERT_EQ(MPIX_Run_world(2, world_probe, nullptr), MPI_SUCCESS);
}

void world_nonblocking(void*) {
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    int a = 0, b = 0;
    MPI_Request reqs[2];
    if (rank == 0) {
        const int x = 7, y = 9;
        ASSERT_EQ(MPI_Isend(&x, 1, MPI_INT, 1, 1, MPI_COMM_WORLD, &reqs[0]),
                  MPI_SUCCESS);
        ASSERT_EQ(MPI_Isend(&y, 1, MPI_INT, 1, 2, MPI_COMM_WORLD, &reqs[1]),
                  MPI_SUCCESS);
        ASSERT_EQ(MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE), MPI_SUCCESS);
    } else {
        ASSERT_EQ(MPI_Irecv(&a, 1, MPI_INT, 0, 1, MPI_COMM_WORLD, &reqs[0]),
                  MPI_SUCCESS);
        ASSERT_EQ(MPI_Irecv(&b, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, &reqs[1]),
                  MPI_SUCCESS);
        MPI_Status sts[2];
        ASSERT_EQ(MPI_Waitall(2, reqs, sts), MPI_SUCCESS);
        EXPECT_EQ(a, 7);
        EXPECT_EQ(b, 9);
        EXPECT_EQ(sts[0].MPI_TAG, 1);
        EXPECT_EQ(sts[1].MPI_TAG, 2);
    }
}

TEST(CApi, NonblockingWaitall) {
    ASSERT_EQ(MPIX_Run_world(2, world_nonblocking, nullptr), MPI_SUCCESS);
}

void world_vtime(void*) {
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    const double before = MPIX_Wtime_virtual();
    MPIX_Advance_time(5.0);
    EXPECT_DOUBLE_EQ(MPIX_Wtime_virtual(), before + 5.0);
    // Keep both ranks in lockstep with a token exchange.
    char token = 'x';
    if (rank == 0) {
        MPI_Send(&token, 1, MPI_BYTE, 1, 0, MPI_COMM_WORLD);
    } else {
        MPI_Recv(&token, 1, MPI_BYTE, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_GT(MPIX_Wtime_virtual(), 5.0);
    }
}

TEST(CApi, VirtualTimeAccessors) {
    ASSERT_EQ(MPIX_Run_world(2, world_vtime, nullptr), MPI_SUCCESS);
}

TEST(CApi, CreateCustomValidatesArguments) {
    MPI_Datatype t = MPI_DATATYPE_NULL;
    // Missing pack function.
    EXPECT_EQ(MPI_Type_create_custom(nullptr, nullptr, cblob_query, nullptr,
                                     cblob_unpack, nullptr, nullptr, nullptr, 0, &t),
              MPI_ERR_ARG);
    // Region functions must come as a pair.
    EXPECT_EQ(MPI_Type_create_custom(nullptr, nullptr, cblob_query, cblob_pack,
                                     cblob_unpack, cblob_region_count, nullptr,
                                     nullptr, 0, &t),
              MPI_ERR_ARG);
}

TEST(CApi, TypeConstructorsValidate) {
    MPI_Datatype t = MPI_DATATYPE_NULL;
    EXPECT_EQ(MPI_Type_contiguous(-1, MPI_INT, &t), MPI_ERR_ARG);
    EXPECT_EQ(MPI_Type_vector(2, -1, 1, MPI_INT, &t), MPI_ERR_ARG);
    ASSERT_EQ(MPI_Type_contiguous(4, MPI_INT, &t), MPI_SUCCESS);
    MPI_Count lb = -1, extent = -1;
    ASSERT_EQ(MPI_Type_get_extent(t, &lb, &extent), MPI_SUCCESS);
    EXPECT_EQ(lb, 0);
    EXPECT_EQ(extent, 16);
    MPI_Type_free(&t);
}

TEST(CApi, GetCountRejectsCustomTypes) {
    MPI_Datatype t = make_cblob_type();
    MPI_Status st{};
    st.count_ = 100;
    MPI_Count n = 0;
    EXPECT_EQ(MPI_Get_count(&st, t, &n), MPI_ERR_TYPE);
    MPI_Type_free(&t);
}

} // namespace

namespace {

// --- Extended surface: Sendrecv, Pack/Unpack, collectives.

void world_sendrecv(void*) {
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    const int peer = 1 - rank;
    double mine[4] = {rank + 0.5, rank + 1.5, rank + 2.5, rank + 3.5};
    double theirs[4] = {};
    MPI_Status st;
    ASSERT_EQ(MPI_Sendrecv(mine, 4, MPI_DOUBLE, peer, 9, theirs, 4, MPI_DOUBLE, peer,
                           9, MPI_COMM_WORLD, &st),
              MPI_SUCCESS);
    EXPECT_DOUBLE_EQ(theirs[0], peer + 0.5);
    EXPECT_DOUBLE_EQ(theirs[3], peer + 3.5);
    EXPECT_EQ(st.MPI_SOURCE, peer);
}

TEST(CApiExt, SendrecvExchanges) {
    ASSERT_EQ(MPIX_Run_world(2, world_sendrecv, nullptr), MPI_SUCCESS);
}

TEST(CApiExt, PackUnpackRoundTrip) {
    // Strided vector packed into a contiguous buffer and back.
    MPI_Datatype vec = MPI_DATATYPE_NULL;
    ASSERT_EQ(MPI_Type_vector(4, 1, 3, MPI_INT, &vec), MPI_SUCCESS);
    ASSERT_EQ(MPI_Type_commit(&vec), MPI_SUCCESS);
    MPI_Count packed_size = 0;
    ASSERT_EQ(MPI_Pack_size(1, vec, MPI_COMM_WORLD, &packed_size), MPI_SUCCESS);
    EXPECT_EQ(packed_size, 16);

    int src[12];
    for (int i = 0; i < 12; ++i) src[i] = i * 10;
    char buf[64];
    MPI_Count pos = 0;
    ASSERT_EQ(MPI_Pack(src, 1, vec, buf, sizeof(buf), &pos, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(pos, 16);

    int dst[12] = {};
    MPI_Count rpos = 0;
    ASSERT_EQ(MPI_Unpack(buf, pos, &rpos, dst, 1, vec, MPI_COMM_WORLD), MPI_SUCCESS);
    EXPECT_EQ(rpos, 16);
    for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(dst[i], i % 3 == 0 ? i * 10 : 0) << i;
    }
    MPI_Type_free(&vec);
}

TEST(CApiExt, PackOverflowRejected) {
    int v[4] = {};
    char tiny[4];
    MPI_Count pos = 0;
    EXPECT_EQ(MPI_Pack(v, 4, MPI_INT, tiny, sizeof(tiny), &pos, MPI_COMM_WORLD),
              MPI_ERR_TRUNCATE);
}

void world_collectives(void*) {
    int rank = -1, size = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    ASSERT_EQ(MPI_Barrier(MPI_COMM_WORLD), MPI_SUCCESS);

    double payload[8] = {};
    if (rank == 0) {
        for (int i = 0; i < 8; ++i) payload[i] = 3.25 * i;
    }
    ASSERT_EQ(MPI_Bcast(payload, 8, MPI_DOUBLE, 0, MPI_COMM_WORLD), MPI_SUCCESS);
    EXPECT_DOUBLE_EQ(payload[7], 3.25 * 7);

    std::int64_t mine = 100 + rank;
    std::vector<std::int64_t> all(static_cast<std::size_t>(size), -1);
    ASSERT_EQ(MPI_Gather(&mine, 1, MPI_INT64_T, rank == 0 ? all.data() : nullptr, 1,
                         MPI_INT64_T, 0, MPI_COMM_WORLD),
              MPI_SUCCESS);
    if (rank == 0) {
        for (int i = 0; i < size; ++i)
            EXPECT_EQ(all[static_cast<std::size_t>(i)], 100 + i);
    }
}

TEST(CApiExt, BarrierBcastGather) {
    ASSERT_EQ(MPIX_Run_world(3, world_collectives, nullptr), MPI_SUCCESS);
}

} // namespace
