#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "p2p/runner.hpp"
#include "test_util.hpp"

namespace mpicd::p2p {
namespace {

struct P2P : ::testing::Test {
    P2P() : uni(2, test::test_params()) {}
    Universe uni;
};

TEST_F(P2P, BytesRoundTrip) {
    const ByteVec src = test::pattern_bytes(512);
    ByteVec dst(512);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 512, 0, 7);
    auto rs = uni.comm(0).isend_bytes(src.data(), 512, 1, 7);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 7);
    EXPECT_EQ(st.bytes, 512);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(src, dst);
}

TEST_F(P2P, SourceFilteringInThreeRankWorld) {
    Universe uni3(3, test::test_params());
    std::int32_t v1 = 111, v2 = 222, got = 0;
    // Rank 2 wants a message specifically from rank 1.
    auto rs1 = uni3.comm(0).isend_bytes(&v1, 4, 2, 5);
    auto rs2 = uni3.comm(1).isend_bytes(&v2, 4, 2, 5);
    auto rr = uni3.comm(2).irecv_bytes(&got, 4, /*src=*/1, 5);
    const auto st = rr.wait();
    EXPECT_EQ(st.source, 1);
    EXPECT_EQ(got, 222);
    (void)rs1.wait();
    (void)rs2.wait();
    // Drain the rank-0 message too.
    auto rr2 = uni3.comm(2).irecv_bytes(&got, 4, 0, 5);
    EXPECT_EQ(rr2.wait().source, 0);
    EXPECT_EQ(got, 111);
}

TEST_F(P2P, AnySourceAnyTag) {
    std::int32_t v = 321, got = 0;
    auto rs = uni.comm(0).isend_bytes(&v, 4, 1, 1234);
    auto rr = uni.comm(1).irecv_bytes(&got, 4, kAnySource, kAnyTag);
    const auto st = rr.wait();
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 1234);
    EXPECT_EQ(got, 321);
    (void)rs.wait();
}

TEST_F(P2P, TagSelectivity) {
    std::int32_t a = 1, b = 2, got_a = 0, got_b = 0;
    auto s1 = uni.comm(0).isend_bytes(&a, 4, 1, 10);
    auto s2 = uni.comm(0).isend_bytes(&b, 4, 1, 20);
    // Receive tag 20 first even though tag 10 arrived earlier.
    auto r2 = uni.comm(1).irecv_bytes(&got_b, 4, 0, 20);
    EXPECT_EQ(r2.wait().tag, 20);
    EXPECT_EQ(got_b, 2);
    auto r1 = uni.comm(1).irecv_bytes(&got_a, 4, 0, 10);
    EXPECT_EQ(r1.wait().tag, 10);
    EXPECT_EQ(got_a, 1);
    (void)s1.wait();
    (void)s2.wait();
}

TEST_F(P2P, DerivedDatatypeGappedStructTransfersFieldsOnly) {
    struct Gapped {
        std::int32_t a, b, c;
        double d;
    };
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const dt::TypeRef types[] = {dt::type_int32(), dt::type_double()};
    auto s = dt::Datatype::struct_(blocklens, displs, types);
    auto t = dt::Datatype::resized(s, 0, 24);
    ASSERT_EQ(t->commit(), Status::success);

    std::vector<Gapped> send(64), recv(64);
    for (int i = 0; i < 64; ++i)
        send[static_cast<std::size_t>(i)] = {i, i + 1, i + 2, i * 2.0};
    auto rr = uni.comm(1).irecv(recv.data(), 64, t, 0, 3);
    auto rs = uni.comm(0).isend(send.data(), 64, t, 1, 3);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, 64 * 20); // the gap never hits the wire
    EXPECT_EQ(rs.wait().status, Status::success);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].a, i);
        EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(i)].d, i * 2.0);
    }
}

TEST_F(P2P, DerivedContiguousUsesZeroCopyPath) {
    auto t = dt::Datatype::contiguous(1024, dt::type_double());
    ASSERT_EQ(t->commit(), Status::success);
    std::vector<double> send(1024), recv(1024);
    for (int i = 0; i < 1024; ++i) send[static_cast<std::size_t>(i)] = i * 0.5;
    auto rr = uni.comm(1).irecv(recv.data(), 1, t, 0, 1);
    auto rs = uni.comm(0).isend(send.data(), 1, t, 1, 1);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(send, recv);
}

TEST_F(P2P, DerivedDatatypeRendezvous) {
    // Non-contiguous type big enough for the pipelined rendezvous path.
    auto col = dt::Datatype::vector(64 * 1024, 1, 2, dt::type_double());
    ASSERT_EQ(col->commit(), Status::success);
    std::vector<double> send(2 * 64 * 1024), recv(2 * 64 * 1024, 0.0);
    for (std::size_t i = 0; i < send.size(); ++i) send[i] = static_cast<double>(i);
    auto rr = uni.comm(1).irecv(recv.data(), 1, col, 0, 1);
    auto rs = uni.comm(0).isend(send.data(), 1, col, 1, 1);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(rs.wait().status, Status::success);
    for (std::size_t i = 0; i < recv.size(); ++i) {
        if (i % 2 == 0) {
            EXPECT_EQ(recv[i], static_cast<double>(i)) << i;
        } else {
            EXPECT_EQ(recv[i], 0.0) << i; // strided holes untouched
        }
    }
}

TEST_F(P2P, UncommittedDatatypeRejected) {
    auto t = dt::Datatype::contiguous(4, dt::type_int32()); // no commit
    std::int32_t buf[4] = {};
    auto rq = uni.comm(0).isend(buf, 1, t, 1, 0);
    EXPECT_EQ(rq.wait().status, Status::err_not_committed);
}

TEST_F(P2P, InvalidDestinationRejected) {
    std::int32_t v = 0;
    auto rq = uni.comm(0).isend_bytes(&v, 4, 7, 0);
    EXPECT_EQ(rq.wait().status, Status::err_arg);
}

// --- Wire tag layout boundary regressions (the [16-bit ctx | 16-bit src |
// 32-bit user tag] fields used to truncate silently; see docs/MATCHING.md).

TEST_F(P2P, NegativeTagRejected) {
    std::int32_t v = 0;
    // A negative user tag would sign-extend / alias through the 32-bit
    // user field; both directions must fail fast with err_arg.
    EXPECT_EQ(uni.comm(0).isend_bytes(&v, 4, 1, -1).wait().status,
              Status::err_arg);
    EXPECT_EQ(uni.comm(1).irecv_bytes(&v, 4, 0, -7).wait().status,
              Status::err_arg);
    // kAnyTag is the sanctioned wildcard, not an error.
    EXPECT_FALSE(uni.comm(1).iprobe(0, kAnyTag).has_value());
}

TEST_F(P2P, SourceOutOfRangeRejected) {
    std::int32_t v = 0;
    EXPECT_EQ(uni.comm(1).irecv_bytes(&v, 4, /*src=*/5, 0).wait().status,
              Status::err_arg);
    EXPECT_EQ(uni.comm(1).irecv_bytes(&v, 4, /*src=*/-2, 0).wait().status,
              Status::err_arg);
    EXPECT_FALSE(uni.comm(1).iprobe(/*src=*/99, 0).has_value());
}

TEST_F(P2P, MaxUserTagRoundTrip) {
    // INT_MAX occupies all 31 value bits of the user field: must traverse
    // encode -> wire -> decode unchanged.
    constexpr int kTag = std::numeric_limits<int>::max();
    std::int32_t v = 4242, got = 0;
    auto rr = uni.comm(1).irecv_bytes(&got, 4, 0, kTag);
    auto rs = uni.comm(0).isend_bytes(&v, 4, 1, kTag);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.tag, kTag);
    EXPECT_EQ(got, 4242);
    (void)rs.wait();
}

TEST_F(P2P, OversizedWorldRejectedAtConstruction) {
    // Rank 70000 would alias to rank 70000 - 65536 = 4464 in the 16-bit
    // source field; the communicator must refuse rather than truncate.
    Communicator big(uni, uni.worker(0), /*rank=*/70000, /*size=*/70001,
                     /*context=*/9);
    EXPECT_EQ(big.status(), Status::err_arg);
    std::int32_t v = 0;
    EXPECT_EQ(big.isend_bytes(&v, 4, 0, 5).wait().status, Status::err_arg);
    EXPECT_EQ(big.irecv_bytes(&v, 4, 0, 5).wait().status, Status::err_arg);
    EXPECT_FALSE(big.iprobe(0, 5).has_value());

    Communicator neg(uni, uni.worker(0), /*rank=*/-1, /*size=*/2, 9);
    EXPECT_EQ(neg.status(), Status::err_arg);
    Communicator empty(uni, uni.worker(0), /*rank=*/0, /*size=*/0, 9);
    EXPECT_EQ(empty.status(), Status::err_arg);
}

TEST_F(P2P, WorldSizeBoundaryAccepted) {
    // 65536 ranks is exactly addressable (source field 0..65535): the
    // boundary itself is legal, one past it is not.
    Communicator edge(uni, uni.worker(0), /*rank=*/65535, /*size=*/65536, 9);
    EXPECT_EQ(edge.status(), Status::success);
    Communicator over(uni, uni.worker(0), /*rank=*/0, /*size=*/65537, 9);
    EXPECT_EQ(over.status(), Status::err_arg);
    // Decode of a wire tag carrying the max source rank round-trips.
    const ucx::Tag t = (ucx::Tag{0x7} << 48) | (ucx::Tag{65535} << 32) |
                       ucx::Tag{0x12345678};
    EXPECT_EQ(decode_tag_source(t), 65535);
    EXPECT_EQ(decode_tag_user(t), 0x12345678);
}

TEST_F(P2P, ProbeThenRecv) {
    const ByteVec src = test::pattern_bytes(96);
    auto rs = uni.comm(0).isend_bytes(src.data(), 96, 1, 33);
    const auto info = uni.comm(1).probe(0, 33);
    EXPECT_EQ(info.bytes, 96);
    EXPECT_EQ(info.source, 0);
    ByteVec dst(static_cast<std::size_t>(info.bytes));
    auto rr = uni.comm(1).irecv_bytes(dst.data(), info.bytes, info.source, info.tag);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(src, dst);
    (void)rs.wait();
}

TEST_F(P2P, IprobeReturnsNulloptWhenNothingPending) {
    EXPECT_FALSE(uni.comm(1).iprobe(0, 5).has_value());
}

TEST_F(P2P, MprobeImrecvFlow) {
    const ByteVec src = test::pattern_bytes(70);
    auto rs = uni.comm(0).isend_bytes(src.data(), 70, 1, 8);
    auto msg = uni.comm(1).mprobe(0, 8);
    ASSERT_TRUE(msg.valid());
    EXPECT_EQ(msg.info.bytes, 70);
    // The matched message is invisible to further probes.
    EXPECT_FALSE(uni.comm(1).iprobe(0, 8).has_value());
    ByteVec dst(70);
    auto rr = uni.comm(1).imrecv(msg, dst.data(), 70);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(src, dst);
    (void)rs.wait();
}

TEST_F(P2P, VirtualTimePingPongSymmetry) {
    // One ping-pong: both clocks should advance by comparable amounts and
    // include at least two wire latencies at the originating rank.
    const auto params = test::test_params();
    ByteVec buf(1024), tmp(1024);
    auto r1 = uni.comm(1).irecv_bytes(tmp.data(), 1024, 0, 1);
    auto s1 = uni.comm(0).isend_bytes(buf.data(), 1024, 1, 1);
    (void)r1.wait();
    (void)s1.wait();
    auto r2 = uni.comm(0).irecv_bytes(buf.data(), 1024, 1, 2);
    auto s2 = uni.comm(1).isend_bytes(tmp.data(), 1024, 0, 2);
    const auto st = r2.wait();
    (void)s2.wait();
    EXPECT_GE(st.vtime, 2 * params.latency_us);
}

TEST_F(P2P, AdvanceTimeChargesTheClock) {
    const SimTime before = uni.comm(0).now();
    uni.comm(0).advance_time(12.5);
    EXPECT_DOUBLE_EQ(uni.comm(0).now(), before + 12.5);
}

TEST(P2PThreaded, RunWorldPingPong) {
    std::atomic<int> checks{0};
    p2p::run_world(2, [&](Communicator& comm) {
        ByteVec data = test::pattern_bytes(200 * 1024, 4); // rendezvous-sized
        if (comm.rank() == 0) {
            EXPECT_EQ(comm.send_bytes(data.data(), Count(data.size()), 1, 1).status,
                      Status::success);
            ByteVec back(data.size());
            EXPECT_EQ(comm.recv_bytes(back.data(), Count(back.size()), 1, 2).status,
                      Status::success);
            EXPECT_EQ(back, data);
            ++checks;
        } else {
            ByteVec got(data.size());
            EXPECT_EQ(comm.recv_bytes(got.data(), Count(got.size()), 0, 1).status,
                      Status::success);
            EXPECT_EQ(got, data);
            EXPECT_EQ(comm.send_bytes(got.data(), Count(got.size()), 0, 2).status,
                      Status::success);
            ++checks;
        }
    }, test::test_params());
    EXPECT_EQ(checks.load(), 2);
}

TEST(P2PThreaded, ManyRanksAllToOne) {
    constexpr int n = 5;
    std::atomic<int> sum{0};
    p2p::run_world(n, [&](Communicator& comm) {
        if (comm.rank() == 0) {
            for (int i = 1; i < n; ++i) {
                std::int32_t v = 0;
                const auto st = comm.recv_bytes(&v, 4, kAnySource, 9);
                EXPECT_EQ(st.status, Status::success);
                sum += v;
            }
        } else {
            const std::int32_t v = comm.rank() * 10;
            EXPECT_EQ(comm.send_bytes(&v, 4, 0, 9).status, Status::success);
        }
    }, test::test_params());
    EXPECT_EQ(sum.load(), 10 + 20 + 30 + 40);
}

} // namespace
} // namespace mpicd::p2p

namespace mpicd::p2p {
namespace {

TEST(P2PExtras, SendrecvBytesIsDeadlockFreeOnACycle) {
    std::atomic<int> ok_count{0};
    run_world(3, [&](Communicator& comm) {
        const int right = (comm.rank() + 1) % comm.size();
        const int left = (comm.rank() + comm.size() - 1) % comm.size();
        std::int32_t out = comm.rank() * 7;
        std::int32_t in = -1;
        const auto st = comm.sendrecv_bytes(&out, 4, right, 5, &in, 4, left, 5);
        EXPECT_EQ(st.status, Status::success);
        EXPECT_EQ(st.source, left);
        if (in == left * 7) ++ok_count;
    }, test::test_params());
    EXPECT_EQ(ok_count.load(), 3);
}

TEST(P2PExtras, WaitAllCollectsEveryRequest) {
    Universe uni(2, test::test_params());
    constexpr int kMsgs = 6;
    std::int32_t out[kMsgs], in[kMsgs];
    std::vector<Request> reqs;
    for (int i = 0; i < kMsgs; ++i) {
        in[i] = -1;
        reqs.push_back(uni.comm(1).irecv_bytes(&in[i], 4, 0, i));
    }
    for (int i = 0; i < kMsgs; ++i) {
        out[i] = i * 3;
        reqs.push_back(uni.comm(0).isend_bytes(&out[i], 4, 1, i));
    }
    EXPECT_EQ(wait_all(reqs), Status::success);
    for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(in[i], i * 3);
}

TEST(P2PExtras, WaitAllReportsFirstError) {
    Universe uni(2, test::test_params());
    std::int32_t v = 0;
    std::vector<Request> reqs;
    reqs.push_back(uni.comm(0).isend_bytes(&v, 4, 9, 0)); // invalid dest
    EXPECT_EQ(wait_all(reqs), Status::err_arg);
}

} // namespace
} // namespace mpicd::p2p
