// Parameterized tests over every DDTBench kernel: all four transfer
// strategies must deliver identical data.
#include <gtest/gtest.h>

#include "ddtbench/kernel.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"

namespace mpicd::ddtbench {
namespace {

class KernelTest : public ::testing::TestWithParam<std::string> {
protected:
    void SetUp() override {
        send_ = make_kernel(GetParam());
        recv_ = make_kernel(GetParam());
        ASSERT_NE(send_, nullptr);
        ASSERT_NE(recv_, nullptr);
        send_->resize(96 * 1024);
        recv_->resize(96 * 1024);
        send_->fill(3);
        recv_->clear();
        ASSERT_EQ(send_->payload_bytes(), recv_->payload_bytes());
    }

    std::unique_ptr<Kernel> send_, recv_;
};

TEST_P(KernelTest, TableInfoIsPopulated) {
    const auto info = send_->info();
    EXPECT_EQ(info.name, GetParam());
    EXPECT_FALSE(info.mpi_datatypes.empty());
    EXPECT_FALSE(info.loop_structure.empty());
}

TEST_P(KernelTest, ResizeTracksTarget) {
    for (const Count target : {Count(4096), Count(1 << 20)}) {
        send_->resize(target);
        // Within a factor of two of the request (granularity allowed).
        EXPECT_GE(send_->payload_bytes(), target / 2);
        EXPECT_LE(send_->payload_bytes(), target * 2);
    }
}

TEST_P(KernelTest, ManualPackUnpackRoundTrip) {
    ByteVec buf(static_cast<std::size_t>(send_->payload_bytes()));
    send_->manual_pack(buf.data());
    recv_->manual_unpack(buf.data());
    EXPECT_TRUE(recv_->verify(*send_));
}

TEST_P(KernelTest, FreshReceiverDoesNotVerify) {
    // Guards against a vacuous verify().
    EXPECT_FALSE(recv_->verify(*send_));
}

TEST_P(KernelTest, DatatypeMatchesManualPackSize) {
    const auto t = send_->datatype();
    ASSERT_NE(t, nullptr);
    ASSERT_TRUE(t->committed());
    EXPECT_EQ(t->size() * send_->dt_count(), send_->payload_bytes());
}

TEST_P(KernelTest, DerivedDatatypeTransfer) {
    p2p::Universe uni(2, test::test_params());
    auto rr = uni.comm(1).irecv(recv_->dt_buffer(), recv_->dt_count(),
                                recv_->datatype(), 0, 1);
    auto rs = uni.comm(0).isend(send_->dt_buffer(), send_->dt_count(),
                                send_->datatype(), 1, 1);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_TRUE(recv_->verify(*send_));
}

TEST_P(KernelTest, CustomPackTransfer) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = kernel_pack_type();
    auto rr = uni.comm(1).irecv_custom(recv_.get(), 1, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send_.get(), 1, type, 1, 1);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, send_->payload_bytes());
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_TRUE(recv_->verify(*send_));
}

TEST_P(KernelTest, CustomRegionTransferWhereSupported) {
    if (send_->region_count() == 0) {
        GTEST_SKIP() << "regions impracticable for " << GetParam();
    }
    p2p::Universe uni(2, test::test_params());
    const auto& type = kernel_region_type();
    auto rr = uni.comm(1).irecv_custom(recv_.get(), 1, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send_.get(), 1, type, 1, 1);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_TRUE(recv_->verify(*send_));
}

TEST_P(KernelTest, RegionFlagMatchesTableI) {
    EXPECT_EQ(send_->info().memory_regions, send_->region_count() > 0);
}

TEST_P(KernelTest, RegionsCoverPayload) {
    const Count n = send_->region_count();
    if (n == 0) GTEST_SKIP();
    std::vector<IovEntry> entries(static_cast<std::size_t>(n));
    send_->regions(entries.data());
    EXPECT_EQ(iov_total(entries), send_->payload_bytes());
}

TEST_P(KernelTest, LargeProblemRendezvousTransfer) {
    send_->resize(2 * 1024 * 1024);
    recv_->resize(2 * 1024 * 1024);
    send_->fill(9);
    recv_->clear();
    p2p::Universe uni(2, test::test_params());
    const auto& type = kernel_pack_type();
    auto rr = uni.comm(1).irecv_custom(recv_.get(), 1, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send_.get(), 1, type, 1, 1);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_TRUE(recv_->verify(*send_));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest, ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (auto& c : name)
                                 if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                             return name;
                         });

TEST(KernelRegistry, UnknownNameReturnsNull) {
    EXPECT_EQ(make_kernel("nope"), nullptr);
}

TEST(KernelRegistry, NamesMatchTableI) {
    const auto names = kernel_names();
    EXPECT_EQ(names.size(), 8u);
    for (const auto& n : names) {
        auto k = make_kernel(n);
        ASSERT_NE(k, nullptr) << n;
        EXPECT_EQ(k->info().name, n);
    }
}

} // namespace
} // namespace mpicd::ddtbench
