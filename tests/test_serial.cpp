#include <gtest/gtest.h>

#include "serial/archive.hpp"
#include "test_util.hpp"

namespace mpicd::serial {
namespace {

TEST(Archive, ScalarRoundTrip) {
    OArchive oa;
    oa.put_scalar<std::int32_t>(-7);
    oa.put_scalar<double>(3.25);
    oa.put_u8(200);
    IArchive ia(oa.stream());
    std::int32_t i = 0;
    double d = 0;
    std::uint8_t b = 0;
    ASSERT_EQ(ia.get_scalar(&i), Status::success);
    ASSERT_EQ(ia.get_scalar(&d), Status::success);
    ASSERT_EQ(ia.get_u8(&b), Status::success);
    EXPECT_EQ(i, -7);
    EXPECT_DOUBLE_EQ(d, 3.25);
    EXPECT_EQ(b, 200);
    EXPECT_TRUE(ia.exhausted());
}

TEST(Archive, VarintBoundaries) {
    OArchive oa;
    const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                                    0xFFFFFFFFull, ~std::uint64_t{0}};
    for (const auto v : values) oa.put_varint(v);
    IArchive ia(oa.stream());
    for (const auto v : values) {
        std::uint64_t got = 0;
        ASSERT_EQ(ia.get_varint(&got), Status::success);
        EXPECT_EQ(got, v);
    }
    EXPECT_TRUE(ia.exhausted());
}

TEST(Archive, VarintEncodingIsCompact) {
    OArchive oa;
    oa.put_varint(5);
    EXPECT_EQ(oa.stream().size(), 1u);
    OArchive ob;
    ob.put_varint(300);
    EXPECT_EQ(ob.stream().size(), 2u);
}

TEST(Archive, StringRoundTrip) {
    OArchive oa;
    oa.put_string("hello");
    oa.put_string("");
    oa.put_string(std::string(1000, 'x'));
    IArchive ia(oa.stream());
    std::string a, b, c;
    ASSERT_EQ(ia.get_string(&a), Status::success);
    ASSERT_EQ(ia.get_string(&b), Status::success);
    ASSERT_EQ(ia.get_string(&c), Status::success);
    EXPECT_EQ(a, "hello");
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(c.size(), 1000u);
}

TEST(Archive, VectorRoundTrip) {
    OArchive oa;
    const auto v = test::iota_vec<std::int64_t>(37, -5);
    oa.put_vector(v);
    IArchive ia(oa.stream());
    std::vector<std::int64_t> got;
    ASSERT_EQ(ia.get_vector(&got), Status::success);
    EXPECT_EQ(got, v);
}

TEST(Archive, InlineBlobWhenOobDisabled) {
    OArchive oa; // default policy: no out-of-band
    const ByteVec big = test::pattern_bytes(10000);
    oa.put_blob(big);
    EXPECT_TRUE(oa.oob().empty());
    IArchive ia(oa.stream());
    ConstBytes got;
    ASSERT_EQ(ia.get_blob(&got), Status::success);
    ASSERT_EQ(got.size(), big.size());
    EXPECT_EQ(std::memcmp(got.data(), big.data(), big.size()), 0);
}

TEST(Archive, OobBlobAboveThreshold) {
    OobPolicy policy{true, 100};
    OArchive oa(policy);
    const ByteVec small = test::pattern_bytes(50, 1);
    const ByteVec big = test::pattern_bytes(500, 2);
    oa.put_blob(small); // inline
    oa.put_blob(big);   // out-of-band, zero copy
    ASSERT_EQ(oa.oob().size(), 1u);
    EXPECT_EQ(oa.oob()[0].base, big.data());
    EXPECT_EQ(oa.oob()[0].len, 500);
    // The stream holds the small blob but only a descriptor for the big one.
    EXPECT_LT(oa.stream().size(), 100u);

    IArchive ia(oa.stream(), oa.oob());
    ConstBytes got_small, got_big;
    ASSERT_EQ(ia.get_blob(&got_small), Status::success);
    ASSERT_EQ(ia.get_blob(&got_big), Status::success);
    EXPECT_EQ(got_small.size(), 50u);
    EXPECT_EQ(got_big.data(), reinterpret_cast<const std::byte*>(big.data()));
}

TEST(Archive, TruncatedStreamFails) {
    OArchive oa;
    oa.put_scalar<double>(1.0);
    ByteVec cut(oa.stream().begin(), oa.stream().begin() + 3);
    IArchive ia(cut);
    double d = 0;
    EXPECT_EQ(ia.get_scalar(&d), Status::err_serialize);
}

TEST(Archive, CorruptBlobTagFails) {
    ByteVec bad{std::byte{7}}; // invalid blob tag
    IArchive ia(bad);
    ConstBytes got;
    EXPECT_EQ(ia.get_blob(&got), Status::err_serialize);
}

TEST(Archive, OobIndexOutOfRangeFails) {
    OobPolicy policy{true, 10};
    OArchive oa(policy);
    const ByteVec big = test::pattern_bytes(100);
    oa.put_blob(big);
    // Deserialize without providing the regions.
    IArchive ia(oa.stream());
    ConstBytes got;
    EXPECT_EQ(ia.get_blob(&got), Status::err_serialize);
}

TEST(Archive, GetRawBulkCopy) {
    OArchive oa;
    const ByteVec data = test::pattern_bytes(64);
    for (const auto b : data) oa.put_u8(static_cast<std::uint8_t>(b));
    IArchive ia(oa.stream());
    ByteVec out(64);
    ASSERT_EQ(ia.get_raw(out), Status::success);
    EXPECT_EQ(out, data);
    EXPECT_EQ(ia.get_raw(out), Status::err_serialize); // exhausted
}

} // namespace
} // namespace mpicd::serial
