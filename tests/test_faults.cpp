// Deterministic fault-schedule harness: table-driven fault injection
// against every protocol path (eager, rendezvous zero-copy, rendezvous
// pipelined, IOV scatter-gather), asserting that the reliable-delivery
// protocol recovers — or surfaces Status::timeout when recovery is
// impossible — with exact, reproducible schedules ("drop the 3rd packet
// on link 0->1", "corrupt byte 7 of the RTS").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netsim/fault.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"
#include "ucx/wire.hpp"

namespace mpicd {
namespace {

using netsim::FaultAction;
using netsim::FaultConfig;
using netsim::ScheduledFault;
using p2p::Universe;

// Wire parameters with a small retransmit budget so timeout tests finish
// in a handful of virtual milliseconds.
netsim::WireParams fault_params(Count eager_threshold = 1 << 15) {
    netsim::WireParams p;
    p.eager_threshold = eager_threshold;
    p.rndv_frag_size = 1024;
    p.rto_us = 20.0;
    p.max_retries = 4;
    return p;
}

const char* action_name(FaultAction a) {
    switch (a) {
        case FaultAction::drop: return "drop";
        case FaultAction::duplicate: return "duplicate";
        case FaultAction::reorder: return "reorder";
        case FaultAction::corrupt: return "corrupt";
        case FaultAction::delay: return "delay";
    }
    return "?";
}

ScheduledFault make_fault(FaultAction action, std::uint16_t kind, int src, int dst,
                          std::uint64_t nth = 1) {
    ScheduledFault f;
    f.src = src;
    f.dst = dst;
    f.action = action;
    f.kind_filter = kind;
    f.nth = nth;
    f.byte = 7; // corrupt: byte 7 of the concatenated header+payload
    f.bit = 3;
    f.delay_us = 40.0;
    return f;
}

std::uint64_t fault_count(const netsim::FaultCounters& c, FaultAction a) {
    switch (a) {
        case FaultAction::drop: return c.dropped;
        case FaultAction::duplicate: return c.duplicated;
        case FaultAction::reorder: return c.reordered;
        case FaultAction::corrupt: return c.corrupted;
        case FaultAction::delay: return c.delayed;
    }
    return 0;
}

// One transfer under one scheduled fault; returns the receive status and
// checks payload integrity.
struct PathResult {
    Status send_status = Status::success;
    Status recv_status = Status::success;
    bool payload_ok = false;
};

// --- Per-path drivers. Each runs rank 0 -> rank 1 with the given fault
// schedule installed before traffic and drives progress to completion.

PathResult run_eager(const std::vector<ScheduledFault>& faults) {
    Universe uni(2, fault_params(), FaultConfig{});
    for (const auto& f : faults) uni.fabric().faults().schedule(f);
    const ByteVec src = test::pattern_bytes(1024, 11);
    ByteVec dst(1024);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 1024, 0, 5);
    auto rs = uni.comm(0).isend_bytes(src.data(), 1024, 1, 5);
    PathResult out;
    out.send_status = rs.wait().status;
    if (ok(out.send_status)) out.recv_status = rr.wait().status;
    out.payload_ok = dst == src;
    return out;
}

PathResult run_rdma(const std::vector<ScheduledFault>& faults) {
    // Contiguous rendezvous: RTS 0->1, CTS 1->0, RDMA write, FIN 0->1.
    Universe uni(2, fault_params(256), FaultConfig{});
    for (const auto& f : faults) uni.fabric().faults().schedule(f);
    const ByteVec src = test::pattern_bytes(8192, 22);
    ByteVec dst(8192);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 8192, 0, 5);
    auto rs = uni.comm(0).isend_bytes(src.data(), 8192, 1, 5);
    PathResult out;
    out.send_status = rs.wait().status;
    out.recv_status = rr.wait().status;
    out.payload_ok = dst == src;
    EXPECT_EQ(uni.worker(0).stats().rndv_rdma, 1u);
    return out;
}

PathResult run_pipeline(const std::vector<ScheduledFault>& faults) {
    // Generic (derived-datatype) receive forces the pipelined fragment
    // protocol: RTS 0->1, CTS 1->0, FRAG stream 0->1.
    Universe uni(2, fault_params(256), FaultConfig{});
    for (const auto& f : faults) uni.fabric().faults().schedule(f);
    auto col = dt::Datatype::vector(512, 1, 2, dt::type_double());
    EXPECT_EQ(col->commit(), Status::success);
    std::vector<double> src(2 * 512), dst(2 * 512, 0.0);
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i);
    auto rr = uni.comm(1).irecv(dst.data(), 1, col, 0, 5);
    auto rs = uni.comm(0).isend(src.data(), 1, col, 1, 5);
    PathResult out;
    out.send_status = rs.wait().status;
    out.recv_status = rr.wait().status;
    out.payload_ok = true;
    for (std::size_t i = 0; i < src.size(); i += 2) {
        if (dst[i] != src[i]) out.payload_ok = false;
    }
    EXPECT_EQ(uni.worker(0).stats().rndv_pipeline, 1u);
    return out;
}

PathResult run_iov(const std::vector<ScheduledFault>& faults) {
    // Scatter-gather eager: two regions, one kEager packet on link 0->1.
    Universe uni(2, fault_params(), FaultConfig{});
    for (const auto& f : faults) uni.fabric().faults().schedule(f);
    ByteVec a = test::pattern_bytes(600, 33);
    ByteVec b = test::pattern_bytes(600, 44);
    ByteVec dst(1200);
    auto rid = uni.worker(1).tag_recv(
        7, ~ucx::Tag{0}, ucx::make_contig_recv(dst.data(), 1200));
    auto sid = uni.worker(0).tag_send(
        1, 7, ucx::make_iov({{a.data(), 600}, {b.data(), 600}}));
    while (!uni.worker(0).is_complete(sid) || !uni.worker(1).is_complete(rid))
        uni.progress_all();
    PathResult out;
    out.send_status = uni.worker(0).take_completion(sid).status;
    out.recv_status = uni.worker(1).take_completion(rid).status;
    out.payload_ok = std::equal(a.begin(), a.end(), dst.begin()) &&
                     std::equal(b.begin(), b.end(), dst.begin() + 600);
    EXPECT_EQ(uni.worker(0).stats().eager_sends, 1u);
    return out;
}

// --- Every fault class on every protocol path. The fault targets the
// path's data-bearing packet kind on link 0->1; the reliable protocol must
// deliver the payload intact regardless.

struct PathCase {
    const char* name;
    PathResult (*run)(const std::vector<ScheduledFault>&);
    std::uint16_t data_kind; // wire kind the schedule targets
};

const PathCase kPaths[] = {
    {"eager", run_eager, ucx::wire::kEager},
    {"rdma", run_rdma, ucx::wire::kRts},
    {"pipeline", run_pipeline, ucx::wire::kFrag},
    {"iov", run_iov, ucx::wire::kEager},
};

const FaultAction kActions[] = {FaultAction::drop, FaultAction::duplicate,
                                FaultAction::reorder, FaultAction::corrupt,
                                FaultAction::delay};

TEST(Faults, EveryClassOnEveryPath) {
    for (const auto& path : kPaths) {
        for (const FaultAction action : kActions) {
            SCOPED_TRACE(std::string(path.name) + " / " + action_name(action));
            const auto r =
                path.run({make_fault(action, path.data_kind, 0, 1, 1)});
            EXPECT_EQ(r.send_status, Status::success);
            EXPECT_EQ(r.recv_status, Status::success);
            EXPECT_TRUE(r.payload_ok);
        }
    }
}

// Faults against the reverse-direction control packet (CTS on 1->0).
TEST(Faults, CtsFaultsRecovered) {
    for (const FaultAction action :
         {FaultAction::drop, FaultAction::corrupt, FaultAction::duplicate}) {
        SCOPED_TRACE(action_name(action));
        for (const auto* path : {&kPaths[1], &kPaths[2]}) {
            SCOPED_TRACE(path->name);
            const auto r = path->run({make_fault(action, ucx::wire::kCts, 1, 0, 1)});
            EXPECT_EQ(r.send_status, Status::success);
            EXPECT_EQ(r.recv_status, Status::success);
            EXPECT_TRUE(r.payload_ok);
        }
    }
}

// "Drop the 3rd packet on link 0->1": the third FRAG of a pipelined
// rendezvous stream, counted by kind. The receiver must stall past the
// gap, accept the retransmission, and deliver in order.
TEST(Faults, DropThirdFragment) {
    const auto r = run_pipeline({make_fault(FaultAction::drop, ucx::wire::kFrag,
                                            0, 1, /*nth=*/3)});
    EXPECT_EQ(r.send_status, Status::success);
    EXPECT_EQ(r.recv_status, Status::success);
    EXPECT_TRUE(r.payload_ok);
}

// "Corrupt byte 7 of the RTS": the CRC must catch it, the receiver must
// discard silently, and the sender's retransmission must recover.
TEST(Faults, CorruptByte7OfRts) {
    Universe uni(2, fault_params(256), FaultConfig{});
    uni.fabric().faults().schedule(
        make_fault(FaultAction::corrupt, ucx::wire::kRts, 0, 1, 1));
    const ByteVec src = test::pattern_bytes(4096, 7);
    ByteVec dst(4096);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 4096, 0, 9);
    auto rs = uni.comm(0).isend_bytes(src.data(), 4096, 1, 9);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(dst, src);
    EXPECT_EQ(uni.worker(1).stats().corruption_detected, 1u);
    EXPECT_GE(uni.worker(0).stats().retransmits, 1u);
    EXPECT_EQ(uni.fabric().faults().counters().corrupted, 1u);
}

// Counter plumbing: each fired fault shows up in the injector counters and
// the matching worker counters.
TEST(Faults, CountersReflectSchedule) {
    const auto one_eager = [](Universe& uni) {
        const ByteVec src = test::pattern_bytes(1024, 11);
        ByteVec dst(1024);
        auto rr = uni.comm(1).irecv_bytes(dst.data(), 1024, 0, 5);
        auto rs = uni.comm(0).isend_bytes(src.data(), 1024, 1, 5);
        EXPECT_EQ(rs.wait().status, Status::success);
        EXPECT_EQ(rr.wait().status, Status::success);
        EXPECT_EQ(dst, src);
    };
    {
        Universe uni(2, fault_params(), FaultConfig{});
        uni.fabric().faults().schedule(
            make_fault(FaultAction::drop, ucx::wire::kEager, 0, 1, 1));
        one_eager(uni);
        EXPECT_EQ(uni.fabric().faults().counters().dropped, 1u);
        EXPECT_GE(uni.worker(0).stats().retransmits, 1u);
        EXPECT_GE(uni.worker(1).stats().acks_sent, 1u);
        EXPECT_GE(uni.worker(0).stats().acks_received, 1u);
    }
    {
        Universe uni(2, fault_params(), FaultConfig{});
        uni.fabric().faults().schedule(
            make_fault(FaultAction::duplicate, ucx::wire::kEager, 0, 1, 1));
        one_eager(uni);
        EXPECT_EQ(uni.fabric().faults().counters().duplicated, 1u);
        EXPECT_EQ(uni.worker(1).stats().duplicates_suppressed, 1u);
    }
}

// A delayed packet arrives late but intact; virtual time reflects the
// jitter.
TEST(Faults, DelayedPacketArrivesLate) {
    Universe lossless(2, fault_params(), FaultConfig{});
    Universe delayed(2, fault_params(), FaultConfig{});
    delayed.fabric().faults().schedule(
        make_fault(FaultAction::delay, ucx::wire::kEager, 0, 1, 1));
    SimTime t_lossless = 0.0, t_delayed = 0.0;
    for (auto* pair : {&lossless, &delayed}) {
        const ByteVec src = test::pattern_bytes(512, 3);
        ByteVec dst(512);
        auto rr = pair->comm(1).irecv_bytes(dst.data(), 512, 0, 1);
        auto rs = pair->comm(0).isend_bytes(src.data(), 512, 1, 1);
        (void)rs.wait();
        const auto st = rr.wait();
        EXPECT_EQ(st.status, Status::success);
        EXPECT_EQ(dst, src);
        (pair == &lossless ? t_lossless : t_delayed) = st.vtime;
    }
    // The schedule adds 40 virtual us to the packet's arrival.
    EXPECT_GE(t_delayed, t_lossless + 40.0);
}

// --- Timeout surfacing: when the fault schedule outlasts the retry
// budget, the operation must fail with Status::timeout instead of hanging.

TEST(Faults, EagerTimeoutWhenRetriesExhausted) {
    auto params = fault_params();
    params.max_retries = 2;
    FaultConfig cfg;
    cfg.drop = 1.0; // every packet (including acks) is lost
    Universe uni(2, params, cfg);
    const ByteVec src = test::pattern_bytes(256, 5);
    auto rs = uni.comm(0).isend_bytes(src.data(), 256, 1, 3);
    const auto st = rs.wait();
    EXPECT_EQ(st.status, Status::timeout);
    const auto s = uni.worker(0).stats();
    EXPECT_EQ(s.retransmits, 2u);
    EXPECT_GE(s.timeouts, 1u);
}

TEST(Faults, RtsTimeoutWhenRetriesExhausted) {
    auto params = fault_params(256);
    params.max_retries = 2;
    Universe uni(2, params, FaultConfig{});
    // Drop the RTS and both retransmissions: the rendezvous send fails.
    for (std::uint64_t nth = 1; nth <= 3; ++nth)
        uni.fabric().faults().schedule(
            make_fault(FaultAction::drop, ucx::wire::kRts, 0, 1, nth));
    const ByteVec src = test::pattern_bytes(4096, 5);
    auto rs = uni.comm(0).isend_bytes(src.data(), 4096, 1, 3);
    EXPECT_EQ(rs.wait().status, Status::timeout);
    EXPECT_GE(uni.worker(0).stats().timeouts, 1u);
}

// Losing every FIN kills the sender's rendezvous completion after its
// retries, and the receiver's operation watchdog fires instead of the
// progress loop spinning forever (the data itself already landed via
// RDMA, but the operation is reported failed on both sides).
TEST(Faults, FinLossTimesOutBothSides) {
    auto params = fault_params(256);
    params.max_retries = 2;
    Universe uni(2, params, FaultConfig{});
    for (std::uint64_t nth = 1; nth <= 3; ++nth)
        uni.fabric().faults().schedule(
            make_fault(FaultAction::drop, ucx::wire::kFin, 0, 1, nth));
    const ByteVec src = test::pattern_bytes(4096, 5);
    ByteVec dst(4096);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 4096, 0, 3);
    auto rs = uni.comm(0).isend_bytes(src.data(), 4096, 1, 3);
    EXPECT_EQ(rs.wait().status, Status::timeout);
    EXPECT_EQ(rr.wait().status, Status::timeout);
    EXPECT_GE(uni.worker(0).stats().timeouts, 1u);
    EXPECT_GE(uni.worker(1).stats().timeouts, 1u);
}

// Determinism: the same seed and traffic produce the same fault pattern
// and identical completion times; a different seed produces a different
// pattern.
TEST(Faults, RandomFaultsAreSeedDeterministic) {
    const auto run = [](std::uint64_t seed) {
        FaultConfig cfg;
        cfg.seed = seed;
        cfg.drop = 0.1;
        cfg.corrupt = 0.05;
        auto params = fault_params();
        params.max_retries = 8; // survive unlucky streaks
        Universe uni(2, params, cfg);
        for (int i = 0; i < 20; ++i) {
            const ByteVec src = test::pattern_bytes(512, 100u + i);
            ByteVec dst(512);
            auto rr = uni.comm(1).irecv_bytes(dst.data(), 512, 0, i);
            auto rs = uni.comm(0).isend_bytes(src.data(), 512, 1, i);
            EXPECT_EQ(rs.wait().status, Status::success);
            EXPECT_EQ(rr.wait().status, Status::success);
            EXPECT_EQ(dst, src);
        }
        struct Shape {
            std::uint64_t dropped, corrupted, retransmits;
        };
        const auto& c = uni.fabric().faults().counters();
        return Shape{c.dropped, c.corrupted, uni.worker(0).stats().retransmits};
    };
    const auto a1 = run(42), a2 = run(42), b = run(43);
    EXPECT_EQ(a1.dropped, a2.dropped);
    EXPECT_EQ(a1.corrupted, a2.corrupted);
    EXPECT_EQ(a1.retransmits, a2.retransmits);
    EXPECT_GT(a1.dropped + a1.corrupted, 0u);
    EXPECT_TRUE(b.dropped != a1.dropped || b.corrupted != a1.corrupted ||
                b.retransmits != a1.retransmits);
}

// With no faults configured the injector is bypassed and the reliable
// protocol stays off: no acks, no sequence numbers, zero new counters.
TEST(Faults, InertByDefault) {
    Universe uni(2, fault_params(), FaultConfig{});
    const ByteVec src = test::pattern_bytes(1024, 1);
    ByteVec dst(1024);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 1024, 0, 1);
    auto rs = uni.comm(0).isend_bytes(src.data(), 1024, 1, 1);
    (void)rs.wait();
    (void)rr.wait();
    EXPECT_EQ(dst, src);
    for (int r = 0; r < 2; ++r) {
        const auto s = uni.worker(r).stats();
        EXPECT_EQ(s.retransmits, 0u);
        EXPECT_EQ(s.acks_sent, 0u);
        EXPECT_EQ(s.acks_received, 0u);
        EXPECT_EQ(s.duplicates_suppressed, 0u);
        EXPECT_EQ(s.corruption_detected, 0u);
        EXPECT_EQ(s.timeouts, 0u);
    }
    EXPECT_EQ(uni.fabric().faults().counters().packets_seen, 0u);
}

// MPICD_RELIABLE-style forced reliability without faults: the ack/CRC
// protocol runs and everything still completes.
TEST(Faults, ForcedReliableLossless) {
    FaultConfig cfg;
    cfg.force_reliable = true;
    Universe uni(2, fault_params(256), cfg);
    const ByteVec src = test::pattern_bytes(8192, 9);
    ByteVec dst(8192);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 8192, 0, 1);
    auto rs = uni.comm(0).isend_bytes(src.data(), 8192, 1, 1);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(dst, src);
    EXPECT_GE(uni.worker(1).stats().acks_sent, 1u);
    EXPECT_EQ(uni.worker(0).stats().retransmits, 0u);
}

} // namespace
} // namespace mpicd
