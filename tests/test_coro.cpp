#include <gtest/gtest.h>

#include <stdexcept>

#include "base/bytes.hpp"
#include "coro/generator.hpp"

namespace mpicd::coro {
namespace {

generator<int> counting(int n) {
    for (int i = 0; i < n; ++i) co_yield i;
    co_return -1;
}

TEST(Generator, YieldsSequence) {
    auto g = counting(3);
    EXPECT_EQ(g.next(), std::optional<int>(0));
    EXPECT_EQ(g.next(), std::optional<int>(1));
    EXPECT_EQ(g.next(), std::optional<int>(2));
    EXPECT_EQ(g.next(), std::nullopt);
    EXPECT_TRUE(g.done());
    ASSERT_TRUE(g.result().has_value());
    EXPECT_EQ(*g.result(), -1);
}

TEST(Generator, EmptyGeneratorReturnsImmediately) {
    auto g = counting(0);
    EXPECT_EQ(g.next(), std::nullopt);
    EXPECT_EQ(*g.result(), -1);
}

TEST(Generator, NextAfterDoneIsStable) {
    auto g = counting(1);
    (void)g.next();
    EXPECT_EQ(g.next(), std::nullopt);
    EXPECT_EQ(g.next(), std::nullopt);
}

generator<int> throwing() {
    co_yield 1;
    throw std::runtime_error("boom");
}

TEST(Generator, ExceptionPropagates) {
    auto g = throwing();
    EXPECT_EQ(g.next(), std::optional<int>(1));
    EXPECT_THROW((void)g.next(), std::runtime_error);
}

TEST(Generator, MoveTransfersOwnership) {
    auto g = counting(2);
    EXPECT_EQ(g.next(), std::optional<int>(0));
    auto h = std::move(g);
    EXPECT_EQ(h.next(), std::optional<int>(1));
    EXPECT_EQ(h.next(), std::nullopt);
}

// The paper's Listing 9 pattern: suspend a loop nest mid-iteration when
// the destination fragment fills, resume into the same position later.
struct PackJob {
    const double* src = nullptr;
    double* dst = nullptr;
    Count dst_cnt = 0;
    Count dim1 = 0, dim3 = 0, ld = 0;
};

generator<Count> pack_coro(PackJob* job) {
    Count pos = 0;
    for (Count k = 0; k < job->dim3; ++k) {
        for (Count m = 0; m < job->dim1;) {
            const Count cnt = std::min(job->dst_cnt - pos, job->dim1 - m);
            for (Count e = 0; e < cnt; ++e, ++m) {
                job->dst[pos++] = job->src[m + k * job->ld];
            }
            if (pos == job->dst_cnt) {
                co_yield pos * Count(sizeof(double));
                pos = 0; // fresh fragment buffer
            }
        }
    }
    co_return pos * Count(sizeof(double));
}

TEST(Generator, ResumableLoopNestPacksStridedData) {
    constexpr Count dim1 = 7, dim3 = 5, ld = 11;
    std::vector<double> src(static_cast<std::size_t>(ld * dim3));
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i);

    // Reference: full pack.
    std::vector<double> expect;
    for (Count k = 0; k < dim3; ++k)
        for (Count m = 0; m < dim1; ++m)
            expect.push_back(src[static_cast<std::size_t>(m + k * ld)]);

    // Fragment-by-fragment with a buffer that does not divide the rows.
    constexpr Count frag = 4;
    std::vector<double> fragbuf(frag);
    PackJob job{src.data(), fragbuf.data(), frag, dim1, dim3, ld};
    auto gen = pack_coro(&job);
    std::vector<double> got;
    while (auto bytes = gen.next()) {
        const Count n = *bytes / Count(sizeof(double));
        got.insert(got.end(), fragbuf.begin(), fragbuf.begin() + n);
    }
    const Count tail = gen.result().value_or(0);
    got.insert(got.end(), fragbuf.begin(),
               fragbuf.begin() + tail / Count(sizeof(double)));
    EXPECT_EQ(got, expect);
}

} // namespace
} // namespace mpicd::coro
