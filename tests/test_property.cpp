// Property-style tests: randomized datatype trees, fragment-size sweeps,
// random Python-object graphs, and corrupt-input fuzzing. Seeds are fixed
// per test-case index, so failures reproduce deterministically.
#include <gtest/gtest.h>

#include <random>

#include "base/crc32.hpp"
#include "dt/convertor.hpp"
#include "dt/iovec.hpp"
#include "dt/signature.hpp"
#include "core/builtin_serialize.hpp"
#include "p2p/universe.hpp"
#include "pysim/pickle.hpp"
#include "test_util.hpp"

namespace mpicd {
namespace {

// --- Random datatype trees -----------------------------------------------------

dt::TypeRef random_type(std::mt19937& rng, int depth) {
    std::uniform_int_distribution<int> leaf_pick(0, 3);
    if (depth == 0) {
        switch (leaf_pick(rng)) {
            case 0: return dt::type_int32();
            case 1: return dt::type_double();
            case 2: return dt::type_byte();
            default: return dt::type_int64();
        }
    }
    std::uniform_int_distribution<int> kind_pick(0, 4);
    std::uniform_int_distribution<Count> small(1, 4);
    auto base = random_type(rng, depth - 1);
    switch (kind_pick(rng)) {
        case 0: return dt::Datatype::contiguous(small(rng), base);
        case 1: {
            const Count blocklen = small(rng);
            const Count stride = blocklen + small(rng); // positive gap
            return dt::Datatype::vector(small(rng), blocklen, stride, base);
        }
        case 2: {
            const Count nblocks = small(rng);
            std::vector<Count> blocklens, displs;
            Count at = 0;
            for (Count b = 0; b < nblocks; ++b) {
                const Count len = small(rng);
                blocklens.push_back(len);
                displs.push_back(at);
                at += len + small(rng);
            }
            return dt::Datatype::indexed(blocklens, displs, base);
        }
        case 3: {
            // Struct of the base plus an int32 at a non-overlapping offset.
            const Count blocklens[] = {1, 1};
            const Count displs[] = {0, base->ub() + 4};
            const dt::TypeRef types[] = {base, dt::type_int32()};
            return dt::Datatype::struct_(blocklens, displs, types);
        }
        default:
            return dt::Datatype::resized(base, base->lb(),
                                         base->extent() + 8 * small(rng));
    }
}

class RandomTypeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RandomTypeRoundTrip, PackUnpackIsIdentityOnSelectedBytes) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 13u);
    auto type = random_type(rng, 3);
    ASSERT_NE(type, nullptr);
    ASSERT_EQ(type->commit(), Status::success);
    const Count count = 1 + GetParam() % 4;
    const Count span = type->extent() * count + type->true_extent() + 64;

    // Source buffer with a pattern; pack, then unpack into a fresh buffer.
    ByteVec src = test::pattern_bytes(static_cast<std::size_t>(span),
                                      static_cast<std::uint32_t>(GetParam()));
    ByteVec dst(static_cast<std::size_t>(span), std::byte{0});
    // Anchor at an offset that keeps negative lb in range.
    const Count anchor = std::max<Count>(0, -type->true_lb());

    ByteVec packed(static_cast<std::size_t>(type->size() * count));
    Count used = 0;
    ASSERT_EQ(dt::Convertor::pack_all(type, src.data() + anchor, count, packed, &used),
              Status::success);
    ASSERT_EQ(used, type->size() * count);
    ASSERT_EQ(dt::Convertor::unpack_all(type, dst.data() + anchor, count, packed),
              Status::success);

    // Every byte covered by a segment must match; others stay zero.
    std::vector<bool> covered(static_cast<std::size_t>(span), false);
    for (Count e = 0; e < count; ++e) {
        for (const auto& seg : type->segments()) {
            const Count start = anchor + e * type->extent() + seg.offset;
            for (Count b = 0; b < seg.len; ++b)
                covered[static_cast<std::size_t>(start + b)] = true;
        }
    }
    for (std::size_t i = 0; i < covered.size(); ++i) {
        if (covered[i]) {
            EXPECT_EQ(dst[i], src[i]) << "selected byte " << i;
        } else {
            EXPECT_EQ(dst[i], std::byte{0}) << "untouched byte " << i;
        }
    }
}

TEST_P(RandomTypeRoundTrip, FragmentedPackMatchesMonolithic) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u + 7u);
    auto type = random_type(rng, 2);
    ASSERT_EQ(type->commit(), Status::success);
    const Count count = 3;
    const Count span = type->extent() * count + type->true_extent() + 64;
    ByteVec buf = test::pattern_bytes(static_cast<std::size_t>(span), 99);
    const Count anchor = std::max<Count>(0, -type->true_lb());

    ByteVec whole(static_cast<std::size_t>(type->size() * count));
    Count used = 0;
    ASSERT_EQ(dt::Convertor::pack_all(type, buf.data() + anchor, count, whole, &used),
              Status::success);

    std::uniform_int_distribution<std::size_t> frag_pick(1, 17);
    dt::Convertor cv(type, buf.data() + anchor, count);
    ByteVec stream;
    while (!cv.finished()) {
        ByteVec frag(frag_pick(rng));
        Count got = 0;
        ASSERT_EQ(cv.pack(frag, &got), Status::success);
        stream.insert(stream.end(), frag.begin(), frag.begin() + got);
    }
    EXPECT_EQ(stream, whole);
}

TEST_P(RandomTypeRoundTrip, SignatureSizeConsistency) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 5u);
    auto type = random_type(rng, 3);
    ASSERT_EQ(type->commit(), Status::success);
    // The signature's total byte size must equal MPI_Type_size.
    Count sig_bytes = 0;
    for (const auto& run : dt::signature(type, 1)) {
        sig_bytes += run.count * static_cast<Count>(dt::predef_size(run.kind));
    }
    EXPECT_EQ(sig_bytes, type->size());
}

TEST_P(RandomTypeRoundTrip, RegionExtractionCoversSize) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 57u + 3u);
    auto type = random_type(rng, 3);
    ASSERT_EQ(type->commit(), Status::success);
    ByteVec buf(static_cast<std::size_t>(type->extent() * 4 + type->true_extent() + 64));
    const Count anchor = std::max<Count>(0, -type->true_lb());
    std::vector<ConstIovEntry> regions;
    ASSERT_EQ(dt::extract_regions(type, buf.data() + anchor, 4, regions),
              Status::success);
    EXPECT_EQ(iov_total(std::span<const ConstIovEntry>(regions)), type->size() * 4);
    EXPECT_EQ(static_cast<Count>(regions.size()), dt::region_count(type, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeRoundTrip, ::testing::Range(0, 24));

// --- Transport size sweep -------------------------------------------------------

class TransferSizes : public ::testing::TestWithParam<Count> {};

TEST_P(TransferSizes, BytesRoundTripAcrossProtocols) {
    const Count n = GetParam();
    p2p::Universe uni(2, test::test_params());
    const ByteVec src = test::pattern_bytes(static_cast<std::size_t>(n),
                                            static_cast<std::uint32_t>(n + 1));
    ByteVec dst(static_cast<std::size_t>(n));
    auto rr = uni.comm(1).irecv_bytes(dst.data(), n, 0, 3);
    auto rs = uni.comm(0).isend_bytes(src.data(), n, 1, 3);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, n);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(src, dst);
}

TEST_P(TransferSizes, CustomVectorRoundTrip) {
    const Count n = GetParam();
    if (n < 8) GTEST_SKIP();
    using Sub = std::vector<std::int32_t>;
    p2p::Universe uni(2, test::test_params());
    // Split n bytes across 4 sub-vectors (int-aligned).
    std::vector<Sub> send(4), recv(4);
    const Count per = (n / 4) / 4 * 4;
    for (std::size_t i = 0; i < 4; ++i) {
        send[i].assign(static_cast<std::size_t>(std::max<Count>(1, per / 4)),
                       static_cast<std::int32_t>(i * 100));
        recv[i].resize(send[i].size());
    }
    const auto& type = core::custom_datatype_of<Sub>();
    auto rr = uni.comm(1).irecv_custom(recv.data(), 4, type, 0, 4);
    auto rs = uni.comm(0).isend_custom(send.data(), 4, type, 1, 4);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(rs.wait().status, Status::success);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(send[i], recv[i]);
}

INSTANTIATE_TEST_SUITE_P(PowersAndEdges, TransferSizes,
                         ::testing::Values<Count>(0, 1, 7, 64, 1024, 32767, 32768,
                                                  32769, 65536, 262144, 1048576,
                                                  1048577),
                         [](const auto& info) {
                             return "n" + std::to_string(info.param);
                         });

// --- Random Python objects -------------------------------------------------------

pysim::PyValue random_pyvalue(std::mt19937& rng, int depth) {
    std::uniform_int_distribution<int> pick(0, depth > 0 ? 7 : 4);
    switch (pick(rng)) {
        case 0: return pysim::PyValue();
        case 1: return pysim::PyValue(rng() % 2 == 0);
        case 2: return pysim::PyValue(static_cast<std::int64_t>(rng()) - (1 << 30));
        case 3: return pysim::PyValue(static_cast<double>(rng()) / 7.0);
        case 4: {
            std::string s;
            const std::size_t len = rng() % 40;
            for (std::size_t i = 0; i < len; ++i)
                s.push_back(static_cast<char>('a' + rng() % 26));
            return pysim::PyValue(std::move(s));
        }
        case 5: {
            pysim::PyList items;
            const std::size_t len = rng() % 4;
            for (std::size_t i = 0; i < len; ++i)
                items.push_back(random_pyvalue(rng, depth - 1));
            return pysim::PyValue(std::move(items));
        }
        case 6: {
            pysim::PyDict d;
            const std::size_t len = rng() % 4;
            for (std::size_t i = 0; i < len; ++i)
                d.emplace_back("k" + std::to_string(i), random_pyvalue(rng, depth - 1));
            return pysim::PyValue(std::move(d));
        }
        default: {
            const pysim::DType dtypes[] = {pysim::DType::u8, pysim::DType::i32,
                                           pysim::DType::f64};
            return pysim::PyValue(pysim::NdArray::pattern(
                dtypes[rng() % 3], {static_cast<Count>(rng() % 3000)}, rng()));
        }
    }
}

class RandomPickle : public ::testing::TestWithParam<int> {};

TEST_P(RandomPickle, InBandRoundTrip) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u + 1u);
    const auto v = random_pyvalue(rng, 3);
    pysim::Pickled p;
    ASSERT_EQ(pysim::dumps(v, pysim::DumpOptions{}, &p), Status::success);
    pysim::PyValue back;
    ASSERT_EQ(pysim::loads(p.stream, &back), Status::success);
    EXPECT_EQ(v, back);
}

TEST_P(RandomPickle, OutOfBandTwoPhaseRoundTrip) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271u + 11u);
    const auto v = random_pyvalue(rng, 3);
    pysim::DumpOptions opts;
    opts.out_of_band = true;
    opts.oob_threshold = 256;
    pysim::Pickled p;
    ASSERT_EQ(pysim::dumps(v, opts, &p), Status::success);
    pysim::PyValue back;
    std::vector<IovEntry> fill;
    ASSERT_EQ(pysim::loads_alloc(p.stream, &back, &fill), Status::success);
    ASSERT_EQ(fill.size(), p.oob.size());
    for (std::size_t i = 0; i < fill.size(); ++i) {
        ASSERT_EQ(fill[i].len, p.oob[i].len);
        std::memcpy(fill[i].base, p.oob[i].data, static_cast<std::size_t>(fill[i].len));
    }
    EXPECT_EQ(v, back);
}

TEST_P(RandomPickle, TruncatedStreamsNeverCrash) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 6364136223846793005ull + 3u);
    const auto v = random_pyvalue(rng, 3);
    pysim::Pickled p;
    ASSERT_EQ(pysim::dumps(v, pysim::DumpOptions{}, &p), Status::success);
    // Every strict prefix must fail cleanly (or parse to a smaller value —
    // never crash or succeed with trailing garbage).
    for (std::size_t cut = 0; cut < p.stream.size();
         cut += 1 + p.stream.size() / 37) {
        pysim::PyValue out;
        const Status st =
            pysim::loads(ConstBytes(p.stream.data(), cut), &out);
        EXPECT_NE(st, Status::success) << "prefix " << cut;
    }
}

TEST_P(RandomPickle, RandomBytesNeverCrash) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 69069u + 1u);
    ByteVec junk(256 + rng() % 1024);
    for (auto& b : junk) b = static_cast<std::byte>(rng());
    pysim::PyValue out;
    (void)pysim::loads(junk, &out); // status may be anything; must not crash
    std::vector<IovEntry> fill;
    (void)pysim::loads_alloc(junk, &out, &fill);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPickle, ::testing::Range(0, 16));

// --- CRC-32 detection properties (reliable-delivery protocol) ------------------

// Any single-bit flip anywhere in a message changes the CRC: the reliable
// protocol's corruption detector can never false-negative on the fault
// injector's single-bit-flip fault class.
TEST(CrcProperty, SingleBitFlipAlwaysDetected) {
    std::mt19937 rng(0xC2C5u);
    for (int trial = 0; trial < 64; ++trial) {
        ByteVec msg(1 + rng() % 512);
        for (auto& b : msg) b = static_cast<std::byte>(rng());
        const std::uint32_t clean = crc32(msg.data(), msg.size());
        // Exhaustive over small messages, sampled over large ones.
        const std::size_t stride = msg.size() > 64 ? 1 + msg.size() / 61 : 1;
        for (std::size_t byte = 0; byte < msg.size(); byte += stride) {
            for (int bit = 0; bit < 8; ++bit) {
                msg[byte] ^= static_cast<std::byte>(1u << bit);
                EXPECT_NE(crc32(msg.data(), msg.size()), clean)
                    << "byte " << byte << " bit " << bit;
                msg[byte] ^= static_cast<std::byte>(1u << bit);
            }
        }
        // Restored message must match the original CRC again.
        EXPECT_EQ(crc32(msg.data(), msg.size()), clean);
    }
}

// Single-byte corruption (any replacement value) is likewise always caught.
TEST(CrcProperty, SingleByteCorruptionAlwaysDetected) {
    std::mt19937 rng(0xBADCu);
    for (int trial = 0; trial < 128; ++trial) {
        ByteVec msg(1 + rng() % 256);
        for (auto& b : msg) b = static_cast<std::byte>(rng());
        const std::uint32_t clean = crc32(msg.data(), msg.size());
        const std::size_t at = rng() % msg.size();
        const std::byte old = msg[at];
        std::byte repl = static_cast<std::byte>(rng());
        if (repl == old) repl ^= std::byte{1};
        msg[at] = repl;
        EXPECT_NE(crc32(msg.data(), msg.size()), clean) << "trial " << trial;
    }
}

// Incremental (seeded) computation equals one-shot computation — the
// worker CRCs kind/seq, header and payload in separate calls.
TEST(CrcProperty, IncrementalMatchesOneShot) {
    std::mt19937 rng(0x1234u);
    for (int trial = 0; trial < 32; ++trial) {
        ByteVec msg(2 + rng() % 300);
        for (auto& b : msg) b = static_cast<std::byte>(rng());
        const std::uint32_t whole = crc32(msg.data(), msg.size());
        const std::size_t cut = 1 + rng() % (msg.size() - 1);
        const std::uint32_t part = crc32(msg.data() + cut, msg.size() - cut,
                                         crc32(msg.data(), cut));
        EXPECT_EQ(part, whole);
    }
}

} // namespace
} // namespace mpicd
