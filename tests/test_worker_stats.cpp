// Protocol-counter tests: assert which path (eager / rendezvous zero-copy /
// rendezvous pipeline) a transfer actually took.
#include <gtest/gtest.h>

#include "p2p/universe.hpp"
#include "p2p/communicator.hpp"
#include "test_util.hpp"

namespace mpicd::ucx {
namespace {

using p2p::Universe;

TEST(WorkerStats, SmallMessageIsEager) {
    Universe uni(2, test::test_params());
    ByteVec buf(1024), dst(1024);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 1024, 0, 1);
    auto rs = uni.comm(0).isend_bytes(buf.data(), 1024, 1, 1);
    (void)rr.wait();
    (void)rs.wait();
    const auto s = uni.worker(0).stats();
    EXPECT_EQ(s.eager_sends, 1u);
    EXPECT_EQ(s.rndv_sends, 0u);
    EXPECT_EQ(s.bytes_sent, 1024u);
    const auto r = uni.worker(1).stats();
    EXPECT_EQ(r.recv_completions, 1u);
    EXPECT_EQ(r.bytes_received, 1024u);
}

TEST(WorkerStats, LargeContigIsRendezvousRdma) {
    Universe uni(2, test::test_params());
    const std::size_t n = 128 * 1024;
    ByteVec buf(n), dst(n);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), Count(n), 0, 1);
    auto rs = uni.comm(0).isend_bytes(buf.data(), Count(n), 1, 1);
    (void)rs.wait();
    (void)rr.wait();
    const auto s = uni.worker(0).stats();
    EXPECT_EQ(s.rndv_sends, 1u);
    EXPECT_EQ(s.rndv_rdma, 1u);
    EXPECT_EQ(s.rndv_pipeline, 0u);
}

TEST(WorkerStats, GenericRecvForcesPipeline) {
    Universe uni(2, test::test_params());
    // A non-contiguous derived type large enough for rendezvous: the
    // receive side is a generic sink, so the pipeline path must run.
    auto col = dt::Datatype::vector(16 * 1024, 1, 2, dt::type_double());
    ASSERT_EQ(col->commit(), Status::success);
    std::vector<double> src(2 * 16 * 1024), dst(2 * 16 * 1024);
    auto rr = uni.comm(1).irecv(dst.data(), 1, col, 0, 1);
    auto rs = uni.comm(0).isend(src.data(), 1, col, 1, 1);
    (void)rs.wait();
    (void)rr.wait();
    const auto s = uni.worker(0).stats();
    EXPECT_EQ(s.rndv_pipeline, 1u);
    EXPECT_EQ(s.rndv_rdma, 0u);
}

TEST(WorkerStats, UnexpectedMessagesCounted) {
    Universe uni(2, test::test_params());
    ByteVec buf(64);
    auto rs1 = uni.comm(0).isend_bytes(buf.data(), 64, 1, 1);
    auto rs2 = uni.comm(0).isend_bytes(buf.data(), 64, 1, 2);
    (void)rs1.wait();
    (void)rs2.wait();
    uni.progress_all(); // both land unexpected
    EXPECT_EQ(uni.worker(1).stats().unexpected_msgs, 2u);
    ByteVec dst(64);
    (void)uni.comm(1).irecv_bytes(dst.data(), 64, 0, 1).wait();
    (void)uni.comm(1).irecv_bytes(dst.data(), 64, 0, 2).wait();
    // Matching later does not increment the counter again.
    EXPECT_EQ(uni.worker(1).stats().unexpected_msgs, 2u);
}

TEST(WorkerStats, IovEagerRangeIsWider) {
    // A 256 KiB IOV send stays eager (iov_eager_threshold = 1 MiB default)
    // while a contiguous send of the same size goes rendezvous.
    Universe uni(2, test::test_params());
    const std::size_t n = 256 * 1024;
    ByteVec a(n), b(n), dst(2 * n);
    auto rid = uni.worker(1).tag_recv(7, ~Tag{0},
                                      make_contig_recv(dst.data(), Count(2 * n)));
    (void)uni.worker(0).tag_send(
        1, 7, make_iov({{a.data(), Count(n)}, {b.data(), Count(n)}}));
    while (!uni.worker(1).is_complete(rid)) uni.progress_all();
    (void)uni.worker(1).take_completion(rid);
    const auto s = uni.worker(0).stats();
    EXPECT_EQ(s.eager_sends, 1u);
    EXPECT_EQ(s.rndv_sends, 0u);

    // The contiguous send of the same size takes rendezvous instead.
    auto rid2 = uni.worker(1).tag_recv(8, ~Tag{0},
                                       make_contig_recv(dst.data(), Count(n)));
    (void)uni.worker(0).tag_send(1, 8, make_contig_send(a.data(), Count(n)));
    while (!uni.worker(1).is_complete(rid2)) uni.progress_all();
    (void)uni.worker(1).take_completion(rid2);
    EXPECT_EQ(uni.worker(0).stats().rndv_sends, 1u);
}

// --- Reliable-delivery counters -------------------------------------------------

TEST(WorkerStats, ReliabilityCountersZeroWithoutFaults) {
    Universe uni(2, test::test_params(), netsim::FaultConfig{});
    ByteVec buf(2048), dst(2048);
    auto rr = uni.comm(1).irecv_bytes(dst.data(), 2048, 0, 1);
    auto rs = uni.comm(0).isend_bytes(buf.data(), 2048, 1, 1);
    (void)rr.wait();
    (void)rs.wait();
    for (int r = 0; r < 2; ++r) {
        const auto s = uni.worker(r).stats();
        EXPECT_EQ(s.retransmits, 0u);
        EXPECT_EQ(s.duplicates_suppressed, 0u);
        EXPECT_EQ(s.corruption_detected, 0u);
        EXPECT_EQ(s.acks_sent, 0u);
        EXPECT_EQ(s.acks_received, 0u);
        EXPECT_EQ(s.timeouts, 0u);
    }
}

TEST(WorkerStats, AcksBalanceUnderForcedReliability) {
    netsim::FaultConfig cfg;
    cfg.force_reliable = true;
    Universe uni(2, test::test_params(), cfg);
    ByteVec buf(1024), dst(1024);
    for (int i = 0; i < 4; ++i) {
        auto rr = uni.comm(1).irecv_bytes(dst.data(), 1024, 0, i);
        auto rs = uni.comm(0).isend_bytes(buf.data(), 1024, 1, i);
        (void)rs.wait();
        (void)rr.wait();
    }
    // Lossless wire: every data packet acked exactly once, nothing retried.
    const auto s0 = uni.worker(0).stats();
    const auto s1 = uni.worker(1).stats();
    EXPECT_EQ(s1.acks_sent, 4u);
    EXPECT_EQ(s0.acks_received, 4u);
    EXPECT_EQ(s0.retransmits, 0u);
    EXPECT_EQ(s1.duplicates_suppressed, 0u);
    EXPECT_EQ(s1.corruption_detected, 0u);
    EXPECT_EQ(s0.timeouts + s1.timeouts, 0u);
}

TEST(WorkerStats, RetransmitAndDuplicateCountersTrackFaults) {
    netsim::WireParams p = test::test_params();
    p.rto_us = 20.0;
    Universe uni(2, p, netsim::FaultConfig{});
    // One drop and one duplicate against two eager messages.
    netsim::ScheduledFault drop;
    drop.src = 0;
    drop.dst = 1;
    drop.action = netsim::FaultAction::drop;
    drop.kind_filter = wire::kEager;
    drop.nth = 1;
    uni.fabric().faults().schedule(drop);
    netsim::ScheduledFault dup = drop;
    dup.action = netsim::FaultAction::duplicate;
    dup.nth = 3; // the retransmit of #1 is the 2nd eager on the link
    uni.fabric().faults().schedule(dup);

    ByteVec buf(512), dst(512);
    for (int i = 0; i < 2; ++i) {
        auto rr = uni.comm(1).irecv_bytes(dst.data(), 512, 0, i);
        auto rs = uni.comm(0).isend_bytes(buf.data(), 512, 1, i);
        EXPECT_EQ(rs.wait().status, Status::success);
        EXPECT_EQ(rr.wait().status, Status::success);
    }
    const auto s0 = uni.worker(0).stats();
    const auto s1 = uni.worker(1).stats();
    EXPECT_EQ(s0.retransmits, 1u);
    EXPECT_EQ(s1.duplicates_suppressed, 1u);
    EXPECT_GE(s1.acks_sent, 2u);
    EXPECT_EQ(s0.timeouts, 0u);
}

} // namespace
} // namespace mpicd::ucx
