// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "base/bytes.hpp"
#include "netsim/wire_model.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"

namespace mpicd::test {

// Deterministic byte pattern.
inline ByteVec pattern_bytes(std::size_t n, std::uint32_t seed = 1) {
    ByteVec out(n);
    std::uint32_t x = seed * 2654435761u + 12345u;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        out[i] = static_cast<std::byte>(x);
    }
    return out;
}

template <typename T>
std::vector<T> iota_vec(std::size_t n, T start = T{}) {
    std::vector<T> v(n);
    std::iota(v.begin(), v.end(), start);
    return v;
}

// Default wire parameters for tests (independent of the environment).
inline netsim::WireParams test_params() {
    netsim::WireParams p;
    return p;
}

// A tiny eager threshold to force rendezvous in small tests.
inline netsim::WireParams rndv_params(Count threshold = 256) {
    netsim::WireParams p;
    p.eager_threshold = threshold;
    p.rndv_frag_size = 1024;
    return p;
}

} // namespace mpicd::test
