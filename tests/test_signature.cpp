#include <gtest/gtest.h>

#include "dt/signature.hpp"

namespace mpicd::dt {
namespace {

TEST(Signature, PredefinedRle) {
    const auto sig = signature(type_int32(), 5);
    ASSERT_EQ(sig.size(), 1u);
    EXPECT_EQ(sig[0].kind, Predef::int32);
    EXPECT_EQ(sig[0].count, 5);
}

TEST(Signature, StructSequence) {
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const TypeRef types[] = {type_int32(), type_double()};
    auto t = Datatype::struct_(blocklens, displs, types);
    const auto sig = signature(t, 1);
    ASSERT_EQ(sig.size(), 2u);
    EXPECT_EQ(sig[0].kind, Predef::int32);
    EXPECT_EQ(sig[0].count, 3);
    EXPECT_EQ(sig[1].kind, Predef::float64);
    EXPECT_EQ(sig[1].count, 1);
}

TEST(Signature, EquivalentAcrossConstructions) {
    // vector(2 blocks of 3 ints) == contiguous(6 ints) by signature.
    auto v = Datatype::vector(2, 3, 10, type_int32());
    auto c = Datatype::contiguous(6, type_int32());
    EXPECT_TRUE(signature_equivalent(v, 1, c, 1));
    EXPECT_TRUE(signature_equivalent(c, 2, v, 2));
}

TEST(Signature, CountSplitEquivalence) {
    // 2 elements of contiguous(3) == 3 elements of contiguous(2).
    auto a = Datatype::contiguous(3, type_double());
    auto b = Datatype::contiguous(2, type_double());
    EXPECT_TRUE(signature_equivalent(a, 2, b, 3));
}

TEST(Signature, DifferentLeafTypesNotEquivalent) {
    auto a = Datatype::contiguous(2, type_int32());
    auto b = Datatype::contiguous(2, type_float());
    EXPECT_FALSE(signature_equivalent(a, 1, b, 1));
}

TEST(Signature, OrderMatters) {
    const Count blocklens[] = {1, 1};
    const Count displs[] = {0, 8};
    const TypeRef t1[] = {type_int32(), type_double()};
    const TypeRef t2[] = {type_double(), type_int32()};
    auto a = Datatype::struct_(blocklens, displs, t1);
    auto b = Datatype::struct_(blocklens, displs, t2);
    EXPECT_FALSE(signature_equivalent(a, 1, b, 1));
}

TEST(Signature, MergesAcrossElements) {
    auto t = Datatype::contiguous(4, type_int32());
    const auto sig = signature(t, 3);
    ASSERT_EQ(sig.size(), 1u);
    EXPECT_EQ(sig[0].count, 12);
}

TEST(Signature, EmptyCases) {
    EXPECT_TRUE(signature(nullptr, 1).empty());
    EXPECT_TRUE(signature(type_int32(), 0).empty());
    auto empty = Datatype::contiguous(0, type_int32());
    EXPECT_TRUE(signature(empty, 3).empty());
}

TEST(Signature, BytesStable) {
    auto a = Datatype::vector(2, 3, 10, type_int32());
    auto b = Datatype::contiguous(6, type_int32());
    EXPECT_EQ(signature_bytes(a, 1), signature_bytes(b, 1));
    EXPECT_NE(signature_bytes(a, 1), signature_bytes(b, 2));
}

} // namespace
} // namespace mpicd::dt
