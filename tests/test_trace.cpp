// mpicd-trace and MetricsRegistry tests: concurrent writers against
// snapshot/reset (run under -DMPICD_SANITIZE=thread to prove the locking
// discipline), ring-wrap semantics, export formats, and — critically —
// that tracing is a pure observer: enabling it changes neither delivered
// bytes nor virtual completion times of a lossy exchange.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/metrics.hpp"
#include "base/trace.hpp"
#include "dt/datatype.hpp"
#include "netsim/fault.hpp"
#include "p2p/coll/nonblocking.hpp"
#include "p2p/coll/vcoll.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"
#include "ucx/wire.hpp"

namespace mpicd {
namespace {

std::vector<trace::Event> events_named(const char* name) {
    std::vector<trace::Event> out;
    for (const auto& ev : trace::snapshot()) {
        if (std::string(ev.name) == name) out.push_back(ev);
    }
    return out;
}

TEST(Trace, DisabledRecordsNothing) {
    trace::set_enabled(false);
    trace::reset();
    trace::instant("test", "off_event");
    { trace::Span s("test", "off_span"); }
    EXPECT_TRUE(events_named("off_event").empty());
    EXPECT_TRUE(events_named("off_span").empty());
}

TEST(Trace, SpanAndInstantRoundTrip) {
    trace::set_enabled(true);
    trace::reset();
    {
        trace::Span s("test", "rt_span");
        s.arg0("x", 41);
        s.arg1("y", 42);
        s.set_vtime(7.5);
    }
    trace::instant("test", "rt_inst", 3.25, "k", 9);
    trace::set_enabled(false);

    const auto spans = events_named("rt_span");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_STREQ(spans[0].cat, "test");
    EXPECT_GE(spans[0].dur_us, 0.0);
    EXPECT_EQ(spans[0].a0, 41u);
    EXPECT_EQ(spans[0].a1, 42u);
    EXPECT_DOUBLE_EQ(spans[0].vtime_us, 7.5);

    const auto insts = events_named("rt_inst");
    ASSERT_EQ(insts.size(), 1u);
    EXPECT_LT(insts[0].dur_us, 0.0); // instant, not a span
    EXPECT_DOUBLE_EQ(insts[0].vtime_us, 3.25);
    EXPECT_EQ(insts[0].a0, 9u);

    // The two rt_* events were recorded in order on one thread.
    EXPECT_LE(spans[0].ts_us, insts[0].ts_us);
    EXPECT_EQ(spans[0].tid, insts[0].tid);
}

TEST(Trace, RingWrapsKeepingNewest) {
    trace::set_enabled(true);
    trace::reset();
    trace::set_buffer_capacity(16);
    // A fresh thread gets a fresh 16-slot ring; write 100 events into it.
    std::thread t([] {
        for (int i = 0; i < 100; ++i) {
            trace::instant("wrap", "wrap_ev", -1.0, "i",
                           static_cast<std::uint64_t>(i));
        }
    });
    t.join();
    trace::set_enabled(false);

    auto evs = events_named("wrap_ev");
    ASSERT_EQ(evs.size(), 16u);
    // Newest events survive: i = 84..99, oldest-first after the sort.
    std::vector<std::uint64_t> is;
    for (const auto& ev : evs) is.push_back(ev.a0);
    std::sort(is.begin(), is.end());
    EXPECT_EQ(is.front(), 84u);
    EXPECT_EQ(is.back(), 99u);

    const auto s = trace::stats();
    EXPECT_GE(s.recorded, 100u);
    EXPECT_GE(s.dropped, 84u);
    trace::set_buffer_capacity(16384);
}

TEST(Trace, ConcurrentWritersSnapshotAndReset) {
    trace::set_enabled(true);
    trace::reset();
    constexpr int kThreads = 4;
    constexpr int kEvents = 2000;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([t] {
            for (int i = 0; i < kEvents; ++i) {
                if (i % 2 == 0) {
                    trace::instant("mt", "mt_ev", -1.0, "t",
                                   static_cast<std::uint64_t>(t));
                } else {
                    trace::Span s("mt", "mt_span");
                    s.arg0("i", static_cast<std::uint64_t>(i));
                }
            }
        });
    }
    // Reader thread: snapshot/stats/reset race against the writers.
    std::thread reader([] {
        for (int i = 0; i < 50; ++i) {
            (void)trace::snapshot();
            (void)trace::stats();
            if (i == 25) trace::reset();
        }
    });
    for (auto& w : writers) w.join();
    reader.join();
    trace::set_enabled(false);
    // Everything after the final reset is intact and well-formed.
    for (const auto& ev : trace::snapshot()) {
        ASSERT_NE(ev.cat, nullptr);
        ASSERT_NE(ev.name, nullptr);
    }
}

TEST(Trace, ChromeJsonContainsEvents) {
    trace::set_enabled(true);
    trace::reset();
    { trace::Span s("test", "json_span"); s.arg0("bytes", 128); }
    trace::instant("test", "json_inst", 2.0);
    trace::set_enabled(false);

    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    EXPECT_TRUE(trace::write_chrome_json(mem));
    std::fclose(mem);
    const std::string json(buf, len);
    std::free(buf);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"json_span\""), std::string::npos);
    EXPECT_NE(json.find("\"json_inst\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, TextTimelineRespectsLimit) {
    trace::set_enabled(true);
    trace::reset();
    for (int i = 0; i < 10; ++i) trace::instant("test", "txt_ev");
    trace::set_enabled(false);

    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    trace::write_text(mem, 3);
    std::fclose(mem);
    const std::string text(buf, len);
    std::free(buf);
    EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')),
              1 /* header */ + 3);
}

TEST(Metrics, CountersAccumulateAndSnapshot) {
    metrics().reset();
    metrics().add("testgrp", "a", 3);
    metrics().add("testgrp", "a", 4);
    auto& c = metrics().counter("testgrp", "b");
    c.fetch_add(5, std::memory_order_relaxed);
    std::uint64_t a = 0, b = 0;
    for (const auto& s : metrics().snapshot()) {
        if (s.group == "testgrp" && s.name == "a") a = s.value;
        if (s.group == "testgrp" && s.name == "b") b = s.value;
    }
    EXPECT_EQ(a, 7u);
    EXPECT_EQ(b, 5u);
    metrics().reset();
    for (const auto& s : metrics().snapshot()) {
        if (s.group == "testgrp") {
            EXPECT_EQ(s.value, 0u);
        }
    }
}

TEST(Metrics, ConcurrentAddsAreExact) {
    metrics().reset();
    constexpr int kThreads = 8;
    constexpr int kAdds = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            auto& c = metrics().counter("mtgrp", "hits");
            for (int i = 0; i < kAdds; ++i) {
                c.fetch_add(1, std::memory_order_relaxed);
                if (i % 512 == 0) (void)metrics().snapshot();
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(metrics().counter("mtgrp", "hits").load(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, JsonShapeIsNestedByGroup) {
    metrics().reset();
    metrics().add("zgrp", "n1", 1);
    metrics().add("zgrp", "n2", 2);
    const std::string json = metrics().to_json();
    EXPECT_NE(json.find("\"zgrp\": {"), std::string::npos);
    EXPECT_NE(json.find("\"n1\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"n2\": 2"), std::string::npos);
    // Built-in providers are merged into every snapshot.
    EXPECT_NE(json.find("\"pack\": {"), std::string::npos);
    EXPECT_NE(json.find("\"trace\": {"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Metrics, WorkerStatsFoldOnDestruction) {
    metrics().reset();
    {
        p2p::Universe uni(2);
        const ByteVec src = test::pattern_bytes(512, 7);
        ByteVec dst(512);
        auto rr = uni.comm(1).irecv_bytes(dst.data(), 512, 0, 3);
        auto rs = uni.comm(0).isend_bytes(src.data(), 512, 1, 3);
        EXPECT_EQ(rs.wait().status, Status::success);
        EXPECT_EQ(rr.wait().status, Status::success);
        EXPECT_EQ(dst, src);
    } // ~Universe -> ~Worker folds WorkerStats into the registry
    std::uint64_t eager = 0, recvd = 0;
    for (const auto& s : metrics().snapshot()) {
        if (s.group == "worker" && s.name == "eager_sends") eager = s.value;
        if (s.group == "worker" && s.name == "bytes_received") recvd = s.value;
    }
    EXPECT_GE(eager, 1u);
    EXPECT_GE(recvd, 512u);
}

// --- Tracing must be a pure observer --------------------------------------

struct LossyResult {
    ByteVec payload;
    SimTime send_vtime = 0.0;
    SimTime recv_vtime = 0.0;
    ucx::WorkerStats sender;
    ucx::WorkerStats receiver;
    // Fragment schedule as the wire histogram saw it (recorded whether or
    // not tracing is enabled, so it can compare an on-run to an off-run).
    std::uint64_t frag_count = 0;
    std::uint64_t frag_bytes = 0;
};

// One pipelined rendezvous transfer with a scheduled fragment drop, so the
// run exercises RTS/CTS, the fragment stream, a retransmit, and acks.
LossyResult run_lossy_exchange() {
    metrics().reset();
    netsim::WireParams p;
    p.eager_threshold = 256;
    p.rndv_frag_size = 1024;
    p.rto_us = 20.0;
    p.max_retries = 6;
    p2p::Universe uni(2, p, netsim::FaultConfig{});
    netsim::ScheduledFault f;
    f.src = 0;
    f.dst = 1;
    f.action = netsim::FaultAction::drop;
    f.kind_filter = ucx::wire::kFrag;
    f.nth = 2;
    uni.fabric().faults().schedule(f);

    auto col = dt::Datatype::vector(1024, 1, 2, dt::type_double());
    EXPECT_EQ(col->commit(), Status::success);
    std::vector<double> src(2048), dst(2048, 0.0);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<double>(i) * 0.5;
    auto rr = uni.comm(1).irecv(dst.data(), 1, col, 0, 9);
    auto rs = uni.comm(0).isend(src.data(), 1, col, 1, 9);
    LossyResult out;
    const auto ss = rs.wait();
    const auto sr = rr.wait();
    EXPECT_EQ(ss.status, Status::success);
    EXPECT_EQ(sr.status, Status::success);
    out.send_vtime = ss.vtime;
    out.recv_vtime = sr.vtime;
    out.sender = uni.worker(0).stats();
    out.receiver = uni.worker(1).stats();
    out.payload.resize(dst.size() * sizeof(double));
    std::memcpy(out.payload.data(), dst.data(), out.payload.size());
    for (const auto& h : metrics().hist_snapshot()) {
        if (h.group == "wire" && h.name == "frag_bytes") {
            out.frag_count = h.snap.count;
            out.frag_bytes = h.snap.sum;
        }
    }
    return out;
}

TEST(Trace, TracingIsAPureObserver) {
    trace::set_enabled(false);
    const LossyResult off = run_lossy_exchange();
    trace::set_enabled(true);
    trace::reset();
    const LossyResult on = run_lossy_exchange();
    trace::set_enabled(false);

    // The scheduled drop fired and recovery ran in both modes.
    EXPECT_GE(off.sender.retransmits, 1u);
    EXPECT_GE(on.sender.retransmits, 1u);
    // Delivered bytes and the protocol path are identical: tracing
    // observes the simulation, it never perturbs what arrives. Quantities
    // that depend on wall-clock interleaving are excluded — virtual
    // completion times (the generic pack path charges wall-measured host
    // cost into virtual time) and exact retransmit/ack counts (the RTO
    // timer samples virtual time from the progress loop, so a slow
    // scheduling of either run can add a spurious, duplicate-suppressed
    // retransmit with tracing on or off alike).
    EXPECT_EQ(on.payload, off.payload);
    EXPECT_GT(on.send_vtime, 0.0);
    EXPECT_GT(on.recv_vtime, 0.0);
    EXPECT_EQ(on.sender.eager_sends, off.sender.eager_sends);
    EXPECT_EQ(on.sender.rndv_sends, off.sender.rndv_sends);
    EXPECT_EQ(on.sender.rndv_pipeline, off.sender.rndv_pipeline);
    EXPECT_EQ(on.sender.rndv_rdma, off.sender.rndv_rdma);
    EXPECT_EQ(on.receiver.bytes_received, off.receiver.bytes_received);
    EXPECT_EQ(on.receiver.recv_completions, off.receiver.recv_completions);
    EXPECT_EQ(on.receiver.timeouts, off.receiver.timeouts);

    // The fragment schedule is byte-identical: the wire histogram records
    // with tracing on and off alike, and the span instrumentation must not
    // change how the transfer is cut into fragments.
    EXPECT_EQ(on.frag_count, off.frag_count);
    EXPECT_EQ(on.frag_bytes, off.frag_bytes);

    // And the traced run captured the interesting protocol events.
    EXPECT_FALSE(events_named("rndv_rts").empty());
    EXPECT_FALSE(events_named("rndv_cts").empty());
    EXPECT_FALSE(events_named("frag_send").empty());
    EXPECT_FALSE(events_named("retransmit").empty());
    EXPECT_FALSE(events_named("fault_drop").empty());

    // Span path: every event of the rendezvous transfer — wire, protocol,
    // retransmit, completion — carries one process-unique message id.
    std::uint64_t msg = 0;
    for (const auto& ev : events_named("send_post")) msg = ev.msg;
    ASSERT_NE(msg, 0u);
    for (const char* name : {"rndv_rts", "rndv_cts", "frag_send",
                             "retransmit", "recv_complete"}) {
        for (const auto& ev : events_named(name)) {
            EXPECT_EQ(ev.msg, msg) << name;
        }
    }
}

// --- Collective tracing must also be a pure observer ----------------------

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

struct LossyCollResult {
    // Per rank: (allreduce status, allgatherv status) and an FNV-1a hash
    // over both result payloads.
    std::vector<Status> ar_status;
    std::vector<Status> agv_status;
    std::vector<std::uint64_t> payload_hash;
    // Summed over all workers (wall-clock-independent wire behaviour).
    std::uint64_t bytes_received = 0;
    std::uint64_t eager_sends = 0;
    std::uint64_t retransmits = 0;
};

// Six ranks, three per node, running a hierarchical iallreduce +
// allgatherv mix with ONE deterministically scheduled eager drop on the
// leader uplink (0 -> 3). All payloads stay under the eager threshold and
// the RTO is generous, so exactly the dropped packet retransmits — which
// makes every wire-behaviour quantity comparable between a tracing-on
// and a tracing-off run.
LossyCollResult run_lossy_collectives() {
    constexpr int kRanks = 6;
    netsim::WireParams p = test::test_params();
    p.ranks_per_node = 3;
    p.eager_threshold = 4096;
    p.rto_us = 500.0;
    p.max_retries = 8;
    p2p::Universe uni(kRanks, p, netsim::FaultConfig{});
    netsim::ScheduledFault f;
    f.src = 0;
    f.dst = 3;
    f.action = netsim::FaultAction::drop;
    f.kind_filter = ucx::wire::kEager;
    f.nth = 1;
    uni.fabric().faults().schedule(f);

    LossyCollResult out;
    out.ar_status.resize(kRanks, Status::err_internal);
    out.agv_status.resize(kRanks, Status::err_internal);
    out.payload_hash.resize(kRanks, 0);
    std::vector<std::thread> threads;
    threads.reserve(kRanks);
    for (int r = 0; r < kRanks; ++r) {
        threads.emplace_back([&uni, &out, r] {
            auto& comm = uni.comm(r);
            std::vector<double> acc(64, static_cast<double>(r + 1));
            auto arq = p2p::coll::iallreduce(comm, acc.data(),
                                             Count(acc.size()),
                                             p2p::ReduceOp::sum);
            out.ar_status[static_cast<std::size_t>(r)] = arq.wait();

            std::vector<Count> counts(kRanks), displs(kRanks);
            Count total = 0;
            for (int i = 0; i < kRanks; ++i) {
                counts[static_cast<std::size_t>(i)] = Count((i + 1) * 32);
                displs[static_cast<std::size_t>(i)] = total;
                total += counts[static_cast<std::size_t>(i)];
            }
            ByteVec mine(static_cast<std::size_t>(
                counts[static_cast<std::size_t>(r)]));
            for (std::size_t i = 0; i < mine.size(); ++i)
                mine[i] = static_cast<std::byte>(r * 31 + int(i));
            ByteVec all(static_cast<std::size_t>(total));
            out.agv_status[static_cast<std::size_t>(r)] =
                p2p::coll::allgatherv_bytes(comm, mine.data(),
                                            Count(mine.size()), all.data(),
                                            counts, displs);
            std::uint64_t h = fnv1a(acc.data(),
                                    acc.size() * sizeof(double),
                                    14695981039346656037ull);
            h = fnv1a(all.data(), all.size(), h);
            out.payload_hash[static_cast<std::size_t>(r)] = h;
        });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < kRanks; ++r) {
        const auto st = uni.worker(r).stats();
        out.bytes_received += st.bytes_received;
        out.eager_sends += st.eager_sends;
        out.retransmits += st.retransmits;
    }
    return out;
}

TEST(Trace, CollTracingIsAPureObserver) {
    // The run pair is deterministic except for one wall-clock leak: if a
    // rank thread is descheduled >100 ms mid-collective (heavily loaded
    // CI host), CollOp::on_stall charges idle wall time into the virtual
    // clock and an in-flight packet can cross its RTO — one spurious
    // retransmit in whichever run got starved. That is host scheduling,
    // not a tracing effect, so retry the whole off/on pair when the wire
    // counters disagree: a genuine pure-observer violation is systematic
    // and fails every attempt, a descheduling artifact does not repeat.
    LossyCollResult off, on;
    for (int attempt = 0; attempt < 3; ++attempt) {
        trace::set_enabled(false);
        off = run_lossy_collectives();
        trace::set_enabled(true);
        trace::reset();
        on = run_lossy_collectives();
        trace::set_enabled(false);
        if (on.retransmits == off.retransmits &&
            on.bytes_received == off.bytes_received &&
            on.eager_sends == off.eager_sends)
            break;
    }

    // The scheduled leader-uplink drop fired and exactly recovered in
    // both modes (generous RTO: one retransmit, no timeout cascades).
    EXPECT_GE(off.retransmits, 1u);
    EXPECT_EQ(on.retransmits, off.retransmits);

    // Statuses, result payloads, and wire behaviour are identical: the
    // coll.* instrumentation (op ids, MsgScope stamping, round events)
    // never touches tags, packet contents, or the fragment schedule.
    EXPECT_EQ(on.ar_status, off.ar_status);
    EXPECT_EQ(on.agv_status, off.agv_status);
    for (const auto st : on.ar_status) EXPECT_EQ(st, Status::success);
    for (const auto st : on.agv_status) EXPECT_EQ(st, Status::success);
    EXPECT_EQ(on.payload_hash, off.payload_hash);
    EXPECT_EQ(on.bytes_received, off.bytes_received);
    EXPECT_EQ(on.eager_sends, off.eager_sends);

    // And the traced run captured the collective span vocabulary.
    EXPECT_FALSE(events_named("op_begin").empty());
    EXPECT_FALSE(events_named("round").empty());
    EXPECT_FALSE(events_named("step_send").empty());
    EXPECT_FALSE(events_named("step_recv").empty());
    EXPECT_FALSE(events_named("op_end").empty());
    // Every step instant carries a fresh non-zero msg id that attaches
    // the p2p span tree to the op's round.
    for (const auto& ev : events_named("step_send")) EXPECT_NE(ev.msg, 0u);
}

// --- Message-causal span tracing ------------------------------------------

TEST(Trace, MsgScopeNestsAndStampsEvents) {
    trace::set_enabled(true);
    trace::reset();
    const std::uint64_t id1 = trace::next_msg_id();
    const std::uint64_t id2 = trace::next_msg_id();
    EXPECT_NE(id1, 0u);
    EXPECT_LT(id1, id2); // process-unique, monotone
    EXPECT_EQ(trace::current_msg(), 0u);
    {
        const trace::MsgScope outer(id1);
        EXPECT_EQ(trace::current_msg(), id1);
        trace::instant("test", "msg_outer");
        {
            const trace::MsgScope inner(id2);
            EXPECT_EQ(trace::current_msg(), id2);
            trace::instant("test", "msg_inner");
        }
        EXPECT_EQ(trace::current_msg(), id1); // restored on scope exit
    }
    EXPECT_EQ(trace::current_msg(), 0u);
    trace::instant("test", "msg_none");
    trace::set_enabled(false);

    ASSERT_EQ(events_named("msg_outer").size(), 1u);
    EXPECT_EQ(events_named("msg_outer")[0].msg, id1);
    ASSERT_EQ(events_named("msg_inner").size(), 1u);
    EXPECT_EQ(events_named("msg_inner")[0].msg, id2);
    ASSERT_EQ(events_named("msg_none").size(), 1u);
    EXPECT_EQ(events_named("msg_none")[0].msg, 0u);
}

TEST(Trace, MsgScopeIsThreadLocal) {
    const std::uint64_t id = trace::next_msg_id();
    const trace::MsgScope scope(id);
    std::uint64_t other_thread_msg = ~std::uint64_t{0};
    std::thread t([&] { other_thread_msg = trace::current_msg(); });
    t.join();
    EXPECT_EQ(other_thread_msg, 0u);
    EXPECT_EQ(trace::current_msg(), id);
}

// Two concurrent messages over a lossy link — a clean eager send and a
// pipelined rendezvous whose 2nd fragment is dropped. From the trace alone
// the spans of both messages must reconstruct, and the retransmit penalty
// must be attributed to the lossy message's id, never the clean one's.
TEST(Trace, SpanReconstructionOverLossyFabric) {
    trace::set_enabled(true);
    trace::reset();
    constexpr int kEagerTag = 7;
    constexpr int kRndvTag = 9;
    {
        netsim::WireParams p;
        p.eager_threshold = 256;
        p.rndv_frag_size = 1024;
        p.rto_us = 20.0;
        p.max_retries = 6;
        p2p::Universe uni(2, p, netsim::FaultConfig{});
        netsim::ScheduledFault f;
        f.src = 0;
        f.dst = 1;
        f.action = netsim::FaultAction::drop;
        f.kind_filter = ucx::wire::kFrag;
        f.nth = 2;
        uni.fabric().faults().schedule(f);

        // The big message uses a strided datatype so it takes the
        // *pipelined* rendezvous (kFrag packets the scheduled drop can
        // hit); a contiguous buffer would go zero-copy RDMA instead.
        auto col = dt::Datatype::vector(1024, 1, 2, dt::type_double());
        ASSERT_EQ(col->commit(), Status::success);
        const ByteVec small = test::pattern_bytes(64, 3);
        ByteVec small_in(64);
        std::vector<double> big(2048), big_in(2048, 0.0);
        for (std::size_t i = 0; i < big.size(); ++i)
            big[i] = static_cast<double>(i);
        auto re = uni.comm(1).irecv_bytes(small_in.data(), 64, 0, kEagerTag);
        auto rb = uni.comm(1).irecv(big_in.data(), 1, col, 0, kRndvTag);
        auto se = uni.comm(0).isend_bytes(small.data(), 64, 1, kEagerTag);
        auto sb = uni.comm(0).isend(big.data(), 1, col, 1, kRndvTag);
        EXPECT_EQ(se.wait().status, Status::success);
        EXPECT_EQ(sb.wait().status, Status::success);
        EXPECT_EQ(re.wait().status, Status::success);
        EXPECT_EQ(rb.wait().status, Status::success);
        EXPECT_EQ(small_in, small);
    }
    trace::set_enabled(false);

    // Identify each message's id from its send_post (arg1 = wire tag;
    // the low 32 bits are the user tag).
    std::uint64_t eager_msg = 0, rndv_msg = 0;
    SimTime eager_post = -1.0, rndv_post = -1.0;
    for (const auto& ev : events_named("send_post")) {
        const int user_tag = static_cast<int>(ev.a1 & 0xFFFFFFFFull);
        if (user_tag == kEagerTag) {
            eager_msg = ev.msg;
            eager_post = ev.vtime_us;
        } else if (user_tag == kRndvTag) {
            rndv_msg = ev.msg;
            rndv_post = ev.vtime_us;
        }
    }
    ASSERT_NE(eager_msg, 0u);
    ASSERT_NE(rndv_msg, 0u);
    EXPECT_NE(eager_msg, rndv_msg);

    // Both spans are complete: posting and completion edges exist and
    // yield a positive end-to-end latency per message.
    SimTime eager_done = -1.0, rndv_done = -1.0;
    for (const auto& ev : events_named("recv_complete")) {
        if (ev.msg == eager_msg) eager_done = ev.vtime_us;
        if (ev.msg == rndv_msg) rndv_done = ev.vtime_us;
    }
    ASSERT_GE(eager_done, 0.0);
    ASSERT_GE(rndv_done, 0.0);
    EXPECT_GT(eager_done, eager_post);
    EXPECT_GT(rndv_done, rndv_post);

    // The retransmit penalty lands on the lossy rendezvous message — the
    // drop, the retransmit, and the fragment stream all carry its id; the
    // clean eager message shows none of them.
    const auto retransmits = events_named("retransmit");
    ASSERT_FALSE(retransmits.empty());
    for (const auto& ev : retransmits) EXPECT_EQ(ev.msg, rndv_msg);
    const auto drops = events_named("fault_drop");
    ASSERT_FALSE(drops.empty());
    for (const auto& ev : drops) EXPECT_EQ(ev.msg, rndv_msg);
    for (const auto& ev : events_named("frag_send"))
        EXPECT_EQ(ev.msg, rndv_msg);
}

} // namespace
} // namespace mpicd
