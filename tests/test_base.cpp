#include <gtest/gtest.h>

#include <cstdlib>

#include "base/bytes.hpp"
#include "base/config.hpp"
#include "base/stats.hpp"
#include "base/status.hpp"
#include "base/time.hpp"
#include "core/engine.hpp"
#include "dt/par_pack.hpp"

namespace mpicd {
namespace {

TEST(Status, EveryCodeHasAMessage) {
    for (int i = 0; i <= static_cast<int>(Status::err_serialize); ++i) {
        EXPECT_STRNE(to_cstring(static_cast<Status>(i)), "unknown status");
    }
}

TEST(Status, OkOnlyForSuccess) {
    EXPECT_TRUE(ok(Status::success));
    EXPECT_FALSE(ok(Status::err_arg));
    EXPECT_FALSE(ok(Status::err_truncate));
}

TEST(Status, ReturnIfErrorMacroPropagates) {
    auto inner = [](Status s) -> Status {
        MPICD_RETURN_IF_ERROR(s);
        return Status::success;
    };
    EXPECT_EQ(inner(Status::success), Status::success);
    EXPECT_EQ(inner(Status::err_pack), Status::err_pack);
}

TEST(Bytes, AlignUp) {
    EXPECT_EQ(align_up(0, 8), 0u);
    EXPECT_EQ(align_up(1, 8), 8u);
    EXPECT_EQ(align_up(8, 8), 8u);
    EXPECT_EQ(align_up(9, 8), 16u);
    EXPECT_EQ(align_up(15, 4), 16u);
}

TEST(Bytes, IovTotal) {
    int a = 0, b = 0;
    const IovEntry entries[] = {{&a, 4}, {&b, 4}, {nullptr, 0}};
    EXPECT_EQ(iov_total(std::span<const IovEntry>(entries)), 8);
    EXPECT_EQ(iov_total(std::span<const IovEntry>{}), 0);
}

TEST(Bytes, ObjectBytesViewsRepresentation) {
    const std::uint32_t v = 0x01020304;
    const auto bytes = object_bytes(v);
    ASSERT_EQ(bytes.size(), 4u);
    std::uint32_t back = 0;
    std::memcpy(&back, bytes.data(), 4);
    EXPECT_EQ(back, v);
}

TEST(Config, MissingVariableIsNullopt) {
    unsetenv("MPICD_TEST_UNSET_VAR");
    EXPECT_FALSE(env_double("MPICD_TEST_UNSET_VAR").has_value());
    EXPECT_FALSE(env_int("MPICD_TEST_UNSET_VAR").has_value());
    EXPECT_FALSE(env_string("MPICD_TEST_UNSET_VAR").has_value());
}

TEST(Config, ParsesValues) {
    setenv("MPICD_TEST_VAR", "3.5", 1);
    EXPECT_DOUBLE_EQ(env_double("MPICD_TEST_VAR").value(), 3.5);
    setenv("MPICD_TEST_VAR", "42", 1);
    EXPECT_EQ(env_int("MPICD_TEST_VAR").value(), 42);
    EXPECT_EQ(env_string("MPICD_TEST_VAR").value(), "42");
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, FallbacksApply) {
    unsetenv("MPICD_TEST_VAR");
    EXPECT_DOUBLE_EQ(env_double_or("MPICD_TEST_VAR", 7.0), 7.0);
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", -3), -3);
    setenv("MPICD_TEST_VAR", "2", 1);
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", -3), 2);
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, GarbageIsNullopt) {
    setenv("MPICD_TEST_VAR", "notanumber", 1);
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, TrailingGarbageIsRejected) {
    // "32k" parsed with a bare strtoll would silently yield 32 — the
    // classic mis-set threshold. The parser must reject it outright and
    // let the caller's default apply.
    setenv("MPICD_TEST_VAR", "32k", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", 7), 7);
    setenv("MPICD_TEST_VAR", "1.5x", 1);
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_DOUBLE_EQ(env_double_or("MPICD_TEST_VAR", 2.5), 2.5);
    setenv("MPICD_TEST_VAR", "12 34", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, TrailingWhitespaceIsAccepted) {
    setenv("MPICD_TEST_VAR", "42 ", 1);
    EXPECT_EQ(env_int("MPICD_TEST_VAR").value(), 42);
    setenv("MPICD_TEST_VAR", "3.5\t", 1);
    EXPECT_DOUBLE_EQ(env_double("MPICD_TEST_VAR").value(), 3.5);
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, OutOfRangeIsRejected) {
    setenv("MPICD_TEST_VAR", "1e999", 1);
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_DOUBLE_EQ(env_double_or("MPICD_TEST_VAR", 1.25), 1.25);
    setenv("MPICD_TEST_VAR", "99999999999999999999999999", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", 11), 11);
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, EmptyValueIsNullopt) {
    setenv("MPICD_TEST_VAR", "", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_FALSE(env_string("MPICD_TEST_VAR").has_value());
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, ParPackThreadsClampsToOneWorker) {
    // Zero or negative pool widths must degrade to one (serial) worker,
    // never to an empty or negatively-sized pool.
    setenv("MPICD_PAR_PACK_THREADS", "0", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 1);
    setenv("MPICD_PAR_PACK_THREADS", "-4", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 1);
    setenv("MPICD_PAR_PACK_THREADS", "9999", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 64);
    setenv("MPICD_PAR_PACK_THREADS", "3", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 3);
    // Malformed counts fall back to the default (>= 1 either way).
    setenv("MPICD_PAR_PACK_THREADS", "4k", 1);
    EXPECT_GE(dt::par_pack_workers_from_env(), 1);
    unsetenv("MPICD_PAR_PACK_THREADS");
}

TEST(Config, ParPackThresholdClampsToDisabled) {
    setenv("MPICD_PAR_PACK_THRESHOLD", "-1", 1);
    EXPECT_EQ(dt::par_pack_threshold_from_env(), 0);
    setenv("MPICD_PAR_PACK_THRESHOLD", "0", 1);
    EXPECT_EQ(dt::par_pack_threshold_from_env(), 0);
    setenv("MPICD_PAR_PACK_THRESHOLD", "65536", 1);
    EXPECT_EQ(dt::par_pack_threshold_from_env(), 65536);
    unsetenv("MPICD_PAR_PACK_THRESHOLD");
    EXPECT_EQ(dt::par_pack_threshold_from_env(), Count{2} << 20);
}

TEST(Config, CustomPackFragClampsToDefault) {
    // A non-positive fragment size would make every pack callback request
    // zero bytes and fail the send with err_pack; it must fall back.
    constexpr Count kDefault = 512 * 1024;
    setenv("MPICD_CUSTOM_PACK_FRAG", "0", 1);
    EXPECT_EQ(core::custom_pack_frag_from_env(), kDefault);
    setenv("MPICD_CUSTOM_PACK_FRAG", "-65536", 1);
    EXPECT_EQ(core::custom_pack_frag_from_env(), kDefault);
    setenv("MPICD_CUSTOM_PACK_FRAG", "4096", 1);
    EXPECT_EQ(core::custom_pack_frag_from_env(), 4096);
    unsetenv("MPICD_CUSTOM_PACK_FRAG");
    EXPECT_EQ(core::custom_pack_frag_from_env(), kDefault);
}

TEST(Stats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, MeanMinMax) {
    RunningStats s;
    for (const double v : {4.0, 2.0, 6.0}) s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Stats, SingleSampleHasNoDeviation) {
    RunningStats s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, ResetClears) {
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Time, HostTimerIsMonotonic) {
    HostTimer t;
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
    EXPECT_GE(t.elapsed_us(), 0.0);
}

TEST(Time, ScopedMeasureAccumulates) {
    SimTime acc = 0.0;
    {
        const ScopedMeasure m(acc);
        volatile double sink = 0;
        for (int i = 0; i < 10000; ++i) sink = sink + i;
    }
    EXPECT_GT(acc, 0.0);
    const SimTime first = acc;
    {
        const ScopedMeasure m(acc);
    }
    EXPECT_GE(acc, first);
}

} // namespace
} // namespace mpicd
