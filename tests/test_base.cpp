#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/bytes.hpp"
#include "base/config.hpp"
#include "base/flight_recorder.hpp"
#include "base/hist.hpp"
#include "base/metrics.hpp"
#include "base/pool.hpp"
#include "base/stats.hpp"
#include "base/status.hpp"
#include "base/time.hpp"
#include "base/trace.hpp"
#include "core/engine.hpp"
#include "dt/par_pack.hpp"

namespace mpicd {
namespace {

TEST(Status, EveryCodeHasAMessage) {
    for (int i = 0; i <= static_cast<int>(Status::err_serialize); ++i) {
        EXPECT_STRNE(to_cstring(static_cast<Status>(i)), "unknown status");
    }
}

TEST(Status, OkOnlyForSuccess) {
    EXPECT_TRUE(ok(Status::success));
    EXPECT_FALSE(ok(Status::err_arg));
    EXPECT_FALSE(ok(Status::err_truncate));
}

TEST(Status, ReturnIfErrorMacroPropagates) {
    auto inner = [](Status s) -> Status {
        MPICD_RETURN_IF_ERROR(s);
        return Status::success;
    };
    EXPECT_EQ(inner(Status::success), Status::success);
    EXPECT_EQ(inner(Status::err_pack), Status::err_pack);
}

TEST(Bytes, AlignUp) {
    EXPECT_EQ(align_up(0, 8), 0u);
    EXPECT_EQ(align_up(1, 8), 8u);
    EXPECT_EQ(align_up(8, 8), 8u);
    EXPECT_EQ(align_up(9, 8), 16u);
    EXPECT_EQ(align_up(15, 4), 16u);
}

TEST(Bytes, IovTotal) {
    int a = 0, b = 0;
    const IovEntry entries[] = {{&a, 4}, {&b, 4}, {nullptr, 0}};
    EXPECT_EQ(iov_total(std::span<const IovEntry>(entries)), 8);
    EXPECT_EQ(iov_total(std::span<const IovEntry>{}), 0);
}

TEST(Bytes, ObjectBytesViewsRepresentation) {
    const std::uint32_t v = 0x01020304;
    const auto bytes = object_bytes(v);
    ASSERT_EQ(bytes.size(), 4u);
    std::uint32_t back = 0;
    std::memcpy(&back, bytes.data(), 4);
    EXPECT_EQ(back, v);
}

TEST(Config, MissingVariableIsNullopt) {
    unsetenv("MPICD_TEST_UNSET_VAR");
    EXPECT_FALSE(env_double("MPICD_TEST_UNSET_VAR").has_value());
    EXPECT_FALSE(env_int("MPICD_TEST_UNSET_VAR").has_value());
    EXPECT_FALSE(env_string("MPICD_TEST_UNSET_VAR").has_value());
}

TEST(Config, ParsesValues) {
    setenv("MPICD_TEST_VAR", "3.5", 1);
    EXPECT_DOUBLE_EQ(env_double("MPICD_TEST_VAR").value(), 3.5);
    setenv("MPICD_TEST_VAR", "42", 1);
    EXPECT_EQ(env_int("MPICD_TEST_VAR").value(), 42);
    EXPECT_EQ(env_string("MPICD_TEST_VAR").value(), "42");
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, FallbacksApply) {
    unsetenv("MPICD_TEST_VAR");
    EXPECT_DOUBLE_EQ(env_double_or("MPICD_TEST_VAR", 7.0), 7.0);
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", -3), -3);
    setenv("MPICD_TEST_VAR", "2", 1);
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", -3), 2);
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, GarbageIsNullopt) {
    setenv("MPICD_TEST_VAR", "notanumber", 1);
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, TrailingGarbageIsRejected) {
    // "32k" parsed with a bare strtoll would silently yield 32 — the
    // classic mis-set threshold. The parser must reject it outright and
    // let the caller's default apply.
    setenv("MPICD_TEST_VAR", "32k", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", 7), 7);
    setenv("MPICD_TEST_VAR", "1.5x", 1);
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_DOUBLE_EQ(env_double_or("MPICD_TEST_VAR", 2.5), 2.5);
    setenv("MPICD_TEST_VAR", "12 34", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, TrailingWhitespaceIsAccepted) {
    setenv("MPICD_TEST_VAR", "42 ", 1);
    EXPECT_EQ(env_int("MPICD_TEST_VAR").value(), 42);
    setenv("MPICD_TEST_VAR", "3.5\t", 1);
    EXPECT_DOUBLE_EQ(env_double("MPICD_TEST_VAR").value(), 3.5);
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, OutOfRangeIsRejected) {
    setenv("MPICD_TEST_VAR", "1e999", 1);
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_DOUBLE_EQ(env_double_or("MPICD_TEST_VAR", 1.25), 1.25);
    setenv("MPICD_TEST_VAR", "99999999999999999999999999", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    EXPECT_EQ(env_int_or("MPICD_TEST_VAR", 11), 11);
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, EmptyValueIsNullopt) {
    setenv("MPICD_TEST_VAR", "", 1);
    EXPECT_FALSE(env_int("MPICD_TEST_VAR").has_value());
    EXPECT_FALSE(env_double("MPICD_TEST_VAR").has_value());
    EXPECT_FALSE(env_string("MPICD_TEST_VAR").has_value());
    unsetenv("MPICD_TEST_VAR");
}

TEST(Config, ParPackThreadsClampsToOneWorker) {
    // Zero or negative pool widths must degrade to one (serial) worker,
    // never to an empty or negatively-sized pool.
    setenv("MPICD_PAR_PACK_THREADS", "0", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 1);
    setenv("MPICD_PAR_PACK_THREADS", "-4", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 1);
    setenv("MPICD_PAR_PACK_THREADS", "9999", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 64);
    setenv("MPICD_PAR_PACK_THREADS", "3", 1);
    EXPECT_EQ(dt::par_pack_workers_from_env(), 3);
    // Malformed counts fall back to the default (>= 1 either way).
    setenv("MPICD_PAR_PACK_THREADS", "4k", 1);
    EXPECT_GE(dt::par_pack_workers_from_env(), 1);
    unsetenv("MPICD_PAR_PACK_THREADS");
}

TEST(Config, ParPackThresholdClampsToDisabled) {
    setenv("MPICD_PAR_PACK_THRESHOLD", "-1", 1);
    EXPECT_EQ(dt::par_pack_threshold_from_env(), 0);
    setenv("MPICD_PAR_PACK_THRESHOLD", "0", 1);
    EXPECT_EQ(dt::par_pack_threshold_from_env(), 0);
    setenv("MPICD_PAR_PACK_THRESHOLD", "65536", 1);
    EXPECT_EQ(dt::par_pack_threshold_from_env(), 65536);
    unsetenv("MPICD_PAR_PACK_THRESHOLD");
    EXPECT_EQ(dt::par_pack_threshold_from_env(), Count{2} << 20);
}

TEST(Config, CustomPackFragClampsToDefault) {
    // A non-positive fragment size would make every pack callback request
    // zero bytes and fail the send with err_pack; it must fall back.
    constexpr Count kDefault = 512 * 1024;
    setenv("MPICD_CUSTOM_PACK_FRAG", "0", 1);
    EXPECT_EQ(core::custom_pack_frag_from_env(), kDefault);
    setenv("MPICD_CUSTOM_PACK_FRAG", "-65536", 1);
    EXPECT_EQ(core::custom_pack_frag_from_env(), kDefault);
    setenv("MPICD_CUSTOM_PACK_FRAG", "4096", 1);
    EXPECT_EQ(core::custom_pack_frag_from_env(), 4096);
    unsetenv("MPICD_CUSTOM_PACK_FRAG");
    EXPECT_EQ(core::custom_pack_frag_from_env(), kDefault);
}

TEST(Config, FastPathEnvClampsToDefault) {
    // MPICD_FAST_PATH accepts exactly 0 or 1; anything else means the
    // default (enabled) rather than silently meaning something.
    setenv("MPICD_FAST_PATH", "0", 1);
    EXPECT_FALSE(core::fast_path_from_env());
    setenv("MPICD_FAST_PATH", "1", 1);
    EXPECT_TRUE(core::fast_path_from_env());
    setenv("MPICD_FAST_PATH", "7", 1);
    EXPECT_TRUE(core::fast_path_from_env());
    setenv("MPICD_FAST_PATH", "-1", 1);
    EXPECT_TRUE(core::fast_path_from_env());
    setenv("MPICD_FAST_PATH", "notanumber", 1);
    EXPECT_TRUE(core::fast_path_from_env()); // unparsable -> default
    unsetenv("MPICD_FAST_PATH");
    EXPECT_TRUE(core::fast_path_from_env());
}

TEST(Stats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, MeanMinMax) {
    RunningStats s;
    for (const double v : {4.0, 2.0, 6.0}) s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Stats, SingleSampleHasNoDeviation) {
    RunningStats s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, ResetClears) {
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Time, HostTimerIsMonotonic) {
    HostTimer t;
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
    EXPECT_GE(t.elapsed_us(), 0.0);
}

TEST(Time, ScopedMeasureAccumulates) {
    SimTime acc = 0.0;
    {
        const ScopedMeasure m(acc);
        volatile double sink = 0;
        for (int i = 0; i < 10000; ++i) sink = sink + i;
    }
    EXPECT_GT(acc, 0.0);
    const SimTime first = acc;
    {
        const ScopedMeasure m(acc);
    }
    EXPECT_GE(acc, first);
}

// --- Log2 histograms (base/hist.hpp) --------------------------------------

TEST(Hist, BucketMapping) {
    EXPECT_EQ(hist_bucket_index(0), 0);
    EXPECT_EQ(hist_bucket_index(1), 1);
    EXPECT_EQ(hist_bucket_index(2), 2);
    EXPECT_EQ(hist_bucket_index(3), 2);
    EXPECT_EQ(hist_bucket_index(4), 3);
    EXPECT_EQ(hist_bucket_index(1023), 10);
    EXPECT_EQ(hist_bucket_index(1024), 11);
    // Bucket i >= 1 covers [2^(i-1), 2^i); every value lands in the
    // half-open range of its own bucket.
    for (const std::uint64_t v : {1ull, 2ull, 3ull, 7ull, 8ull, 1000ull,
                                  (1ull << 40) + 17}) {
        const int i = hist_bucket_index(v);
        EXPECT_GE(v, hist_bucket_lo(i)) << v;
        EXPECT_LT(v, hist_bucket_hi(i)) << v;
    }
    EXPECT_EQ(hist_bucket_lo(0), 0u);
    EXPECT_EQ(hist_bucket_hi(0), 1u);
}

TEST(Hist, RecordAndSnapshot) {
    Histogram h;
    for (const std::uint64_t v : {0ull, 1ull, 5ull, 8ull, 1000ull}) h.record(v);
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.sum, 1014u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_DOUBLE_EQ(s.mean(), 1014.0 / 5.0);
    EXPECT_EQ(s.buckets[0], 1u);  // 0
    EXPECT_EQ(s.buckets[1], 1u);  // 1
    EXPECT_EQ(s.buckets[3], 1u);  // 5 in [4, 8)
    EXPECT_EQ(s.buckets[4], 1u);  // 8 in [8, 16)
    EXPECT_EQ(s.buckets[10], 1u); // 1000 in [512, 1024)
}

TEST(Hist, EmptySnapshotIsZero) {
    Histogram h;
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
}

TEST(Hist, PercentileInterpolatesWithinBucket) {
    // One observation per power-of-two bucket: ranks are unambiguous.
    Histogram h;
    h.record(1);
    h.record(2);
    h.record(4);
    h.record(8);
    const auto s = h.snapshot();
    // rank 1 -> bucket [1, 2), full-bucket interpolation reaches its
    // upper bound.
    EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 2.0); // rank clamps to 1
    // rank 2 -> bucket [2, 4).
    EXPECT_DOUBLE_EQ(s.percentile(50), 4.0);
    // The top never exceeds the observed max.
    EXPECT_DOUBLE_EQ(s.percentile(100), 8.0);
}

TEST(Hist, PercentileClampsToObservedMax) {
    Histogram h;
    h.record(1000); // bucket [512, 1024): interpolation would reach 1024
    const auto s = h.snapshot();
    EXPECT_DOUBLE_EQ(s.percentile(50), 1000.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 1000.0);
}

TEST(Hist, ResetClears) {
    Histogram h;
    h.record(7);
    h.reset();
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s.max, 0u);
}

TEST(Hist, ConcurrentRecordsAreExact) {
    Histogram h;
    constexpr int kThreads = 4;
    constexpr int kRecords = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kRecords; ++i) h.record(3);
        });
    }
    for (auto& t : threads) t.join();
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kRecords);
    EXPECT_EQ(s.sum, static_cast<std::uint64_t>(kThreads) * kRecords * 3);
    EXPECT_EQ(s.max, 3u);
    EXPECT_EQ(s.buckets[2], s.count); // 3 in [2, 4)
}

TEST(Hist, RegistryEmitsPercentilesInJson) {
    metrics().reset();
    auto& h = metrics().histogram("histgrp", "lat_ns");
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    bool found = false;
    for (const auto& s : metrics().hist_snapshot()) {
        if (s.group == "histgrp" && s.name == "lat_ns") {
            found = true;
            EXPECT_EQ(s.snap.count, 100u);
        }
    }
    EXPECT_TRUE(found);
    const std::string json = metrics().to_json();
    EXPECT_NE(json.find("\"histgrp\""), std::string::npos);
    EXPECT_NE(json.find("\"lat_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    metrics().reset();
    EXPECT_EQ(metrics().histogram("histgrp", "lat_ns").snapshot().count, 0u);
}

// --- Flight recorder (base/flight_recorder.hpp) ---------------------------

namespace {
std::string read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return {};
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
}
} // namespace

TEST(Flight, TriggerDumpsSourcesAndHeader) {
    const std::string path = std::string("mpicd_flight_test.txt");
    std::remove(path.c_str());
    flight::set_enabled(true, path);
    const std::uint64_t tok =
        flight::register_source("unit.source", [](std::FILE* out) {
            std::fprintf(out, "SOURCE_STATE_LINE\n");
        });
    trace::instant("flight_test", "pre_dump_event");
    flight::trigger("unit_test_reason", 42, 1.5);
    flight::unregister_source(tok);
    flight::set_enabled(false);
    trace::set_enabled(false);

    const std::string dump = read_file(path);
    EXPECT_NE(dump.find("mpicd flight recorder"), std::string::npos);
    EXPECT_NE(dump.find("reason: unit_test_reason"), std::string::npos);
    EXPECT_NE(dump.find("msg: 42"), std::string::npos);
    EXPECT_NE(dump.find("vt_us: 1.500"), std::string::npos);
    EXPECT_NE(dump.find("source: unit.source"), std::string::npos);
    EXPECT_NE(dump.find("SOURCE_STATE_LINE"), std::string::npos);
    // Arming the recorder turned tracing on, so the ring section holds
    // the event recorded just before the trigger.
    EXPECT_NE(dump.find("pre_dump_event"), std::string::npos);
    EXPECT_NE(dump.find("=== end dump ==="), std::string::npos);
    std::remove(path.c_str());
}

TEST(Flight, SelfDumpSubstitutesForTriggeringSource) {
    const std::string path = std::string("mpicd_flight_self.txt");
    std::remove(path.c_str());
    flight::set_enabled(true, path);
    const std::uint64_t tok =
        flight::register_source("self.source", [](std::FILE* out) {
            std::fprintf(out, "WRONG_REGISTERED_CALLBACK\n");
        });
    flight::trigger("self_test", 0, -1.0, tok, [](std::FILE* out) {
        std::fprintf(out, "SELF_DUMP_LINE\n");
    });
    flight::unregister_source(tok);
    flight::set_enabled(false);
    trace::set_enabled(false);

    const std::string dump = read_file(path);
    EXPECT_NE(dump.find("SELF_DUMP_LINE"), std::string::npos);
    EXPECT_EQ(dump.find("WRONG_REGISTERED_CALLBACK"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Flight, BudgetBoundsDumpsPerProcess) {
    const std::string path = std::string("mpicd_flight_budget.txt");
    std::remove(path.c_str());
    flight::set_enabled(true, path); // resets the dump budget
    for (int i = 0; i < 20; ++i) flight::trigger("budget_test");
    const std::uint64_t dumps = flight::dump_count();
    flight::set_enabled(false);
    trace::set_enabled(false);
    EXPECT_GE(dumps, 1u);
    EXPECT_LE(dumps, 4u); // MPICD_FLIGHT_MAX default
    std::remove(path.c_str());
}

TEST(Flight, DisarmedTriggerIsANoOp) {
    flight::set_enabled(false);
    const std::uint64_t before = flight::dump_count();
    flight::trigger("disarmed");
    EXPECT_EQ(flight::dump_count(), before);
}

// --- Slab buffer pool (base/pool.hpp) --------------------------------------

// Restores the pool's enabled state (tests run in one process; the pool is
// a process-wide singleton).
class PoolGuard {
public:
    PoolGuard() : prev_(BufferPool::instance().enabled()) {}
    ~PoolGuard() {
        BufferPool::instance().set_enabled(prev_);
        BufferPool::instance().trim();
    }

private:
    bool prev_;
};

void fill_pattern(PooledBuf& b, unsigned salt) {
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::byte>((i * 13 + salt) & 0xFF);
}

TEST(Pool, SizeClassesRoundUpToPowersOfTwo) {
    const PoolGuard guard;
    BufferPool::instance().set_enabled(true);
    EXPECT_EQ(PooledBuf::make(1).capacity(), BufferPool::kMinClass);
    EXPECT_EQ(PooledBuf::make(256).capacity(), 256u);
    EXPECT_EQ(PooledBuf::make(257).capacity(), 512u);
    EXPECT_EQ(PooledBuf::make(16 * 1024).capacity(), 16u * 1024);
    EXPECT_EQ(PooledBuf::make(BufferPool::kMaxClass).capacity(),
              BufferPool::kMaxClass);
    // Oversize requests get an exact, never-cached allocation.
    EXPECT_EQ(PooledBuf::make(BufferPool::kMaxClass + 1).capacity(),
              BufferPool::kMaxClass + 1);
}

TEST(Pool, CopySharesSlabWhenPoolOn) {
    const PoolGuard guard;
    BufferPool::instance().set_enabled(true);
    PooledBuf a = PooledBuf::make(1000);
    fill_pattern(a, 1);
    const std::uint64_t copied_before =
        datapath::bytes_copied().load(std::memory_order_relaxed);
    const PooledBuf b = a;
    EXPECT_EQ(b.data(), a.data()); // shared slab, no byte copy
    EXPECT_FALSE(a.unique());
    EXPECT_FALSE(b.unique());
    EXPECT_EQ(datapath::bytes_copied().load(std::memory_order_relaxed),
              copied_before);
}

TEST(Pool, CopyIsDeepWhenPoolOff) {
    const PoolGuard guard;
    BufferPool::instance().set_enabled(false);
    PooledBuf a = PooledBuf::make(1000);
    fill_pattern(a, 2);
    const PooledBuf b = a;
    ASSERT_EQ(b.size(), a.size());
    EXPECT_NE(b.data(), a.data()); // seed behaviour: a real copy
    EXPECT_TRUE(a.unique());
    EXPECT_TRUE(b.unique());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(Pool, EnsureUniqueDetachesSharedSlab) {
    const PoolGuard guard;
    BufferPool::instance().set_enabled(true);
    PooledBuf a = PooledBuf::make(4096);
    fill_pattern(a, 3);
    PooledBuf b = a;
    ASSERT_EQ(b.data(), a.data());
    b.ensure_unique();
    EXPECT_NE(b.data(), a.data());
    EXPECT_TRUE(a.unique());
    EXPECT_TRUE(b.unique());
    ASSERT_EQ(b.size(), a.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
    // Corrupting the detached copy must not touch the original.
    b[0] = static_cast<std::byte>(0xFF);
    EXPECT_NE(a[0], b[0]);
}

TEST(Pool, ShrinkToReslabsLargeUnusedTail) {
    const PoolGuard guard;
    BufferPool::instance().set_enabled(true);
    PooledBuf a = PooledBuf::make(64 * 1024);
    fill_pattern(a, 4);
    ByteVec expect(a.data(), a.data() + 100);
    a.shrink_to(100);
    EXPECT_EQ(a.size(), 100u);
    // A short read must not pin the full fragment-sized slab.
    EXPECT_EQ(a.capacity(), BufferPool::kMinClass);
    EXPECT_EQ(std::memcmp(a.data(), expect.data(), expect.size()), 0);
}

TEST(Pool, ShrinkToKeepsSlabWhenSharedOrClose) {
    const PoolGuard guard;
    BufferPool::instance().set_enabled(true);
    PooledBuf a = PooledBuf::make(8192);
    const PooledBuf share = a; // not unique: shrink must not re-slab
    a.shrink_to(10);
    EXPECT_EQ(a.size(), 10u);
    EXPECT_EQ(a.capacity(), 8192u);
    PooledBuf b = PooledBuf::make(8192);
    b.shrink_to(8000); // within the same class: nothing to reclaim
    EXPECT_EQ(b.capacity(), 8192u);
}

TEST(Pool, FreelistReusesReturnedSlabs) {
    const PoolGuard guard;
    BufferPool& pool = BufferPool::instance();
    pool.set_enabled(true);
    pool.trim();
    const PoolStats before = pool.stats();
    const std::byte* first = nullptr;
    {
        const PooledBuf a = PooledBuf::make(8192);
        first = a.data();
    } // released to the 8 KiB freelist
    const PooledBuf b = PooledBuf::make(8192);
    EXPECT_EQ(b.data(), first); // recycled, not reallocated
    const PoolStats after = pool.stats();
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_EQ(after.returns, before.returns + 1);
}

TEST(Pool, DisabledPoolCountsHeapAllocsAndTrims) {
    const PoolGuard guard;
    BufferPool& pool = BufferPool::instance();
    pool.set_enabled(true);
    { const PooledBuf warm = PooledBuf::make(4096); } // seeds the freelist
    EXPECT_GT(pool.stats().bytes_cached, 0u);
    pool.set_enabled(false); // disabling trims the cache
    EXPECT_EQ(pool.stats().bytes_cached, 0u);
    const PoolStats before = pool.stats();
    { const PooledBuf a = PooledBuf::make(4096); }
    const PoolStats after = pool.stats();
    EXPECT_EQ(after.heap_allocs, before.heap_allocs + 1);
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.bytes_cached, 0u); // pool-off slabs are never cached
}

TEST(Pool, OutstandingTracksLiveBuffers) {
    const PoolGuard guard;
    BufferPool& pool = BufferPool::instance();
    pool.set_enabled(true);
    const std::uint64_t base = pool.outstanding();
    {
        const PooledBuf a = PooledBuf::make(1024);
        const PooledBuf b = a; // shared: still ONE live slab
        EXPECT_EQ(pool.outstanding(), base + 1);
        const PooledBuf c = PooledBuf::make(512);
        EXPECT_EQ(pool.outstanding(), base + 2);
    }
    EXPECT_EQ(pool.outstanding(), base); // leak check
}

TEST(Pool, CopyOfCountsCopiedBytes) {
    const PoolGuard guard;
    BufferPool::instance().set_enabled(true);
    const ByteVec src(777, static_cast<std::byte>(0x5A));
    const std::uint64_t copied_before =
        datapath::bytes_copied().load(std::memory_order_relaxed);
    const PooledBuf b = PooledBuf::copy_of(src);
    ASSERT_EQ(b.size(), src.size());
    EXPECT_EQ(std::memcmp(b.data(), src.data(), src.size()), 0);
    EXPECT_EQ(datapath::bytes_copied().load(std::memory_order_relaxed),
              copied_before + 777);
}

} // namespace
} // namespace mpicd
