// Reliability soak: a seeded storm of mixed-datatype traffic through a
// lossy fabric (random drop + corruption + duplication + reordering) must
// deliver every payload byte-for-byte identical to a lossless reference
// run, with monotone virtual completion times per rank and a fully
// quiescent universe at the end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/pool.hpp"
#include "netsim/fault.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"

namespace mpicd {
namespace {

using netsim::FaultConfig;
using p2p::Universe;

netsim::WireParams soak_params() {
    netsim::WireParams p;
    p.eager_threshold = 1024; // exercise both protocols at small sizes
    p.rndv_frag_size = 512;
    p.rto_us = 25.0;
    p.max_retries = 10;
    return p;
}

// One message of the soak schedule. Sizes cycle through eager, rendezvous
// zero-copy (contig), rendezvous pipeline (derived type) and IOV paths.
enum class Shape { contig_eager, contig_rndv, derived, iov };

struct SoakRecord {
    Status status = Status::success;
    SimTime vtime = 0.0;
    bool payload_ok = false;
};

// Runs `n` messages rank 0 -> rank 1 under `cfg` and reports per-message
// results. Every payload is checked against the deterministic pattern.
// `derived` includes the generic-datatype pipeline shape; its unpack
// callbacks charge *measured* host time to the virtual clock, so runs that
// must be time-reproducible exclude it.
std::vector<SoakRecord> run_soak(int n, const FaultConfig& cfg,
                                 bool derived = true) {
    Universe uni(2, soak_params(), cfg);
    std::vector<SoakRecord> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Shape shape = static_cast<Shape>(i % 4);
        if (!derived && shape == Shape::derived) shape = Shape::contig_rndv;
        SoakRecord rec;
        switch (shape) {
            case Shape::contig_eager:
            case Shape::contig_rndv: {
                const std::size_t len =
                    shape == Shape::contig_eager ? 64 + (i % 7) * 100 : 2048 + (i % 5) * 512;
                const ByteVec src = test::pattern_bytes(len, 1000u + static_cast<unsigned>(i));
                ByteVec dst(len);
                auto rr = uni.comm(1).irecv_bytes(dst.data(), Count(len), 0, i);
                auto rs = uni.comm(0).isend_bytes(src.data(), Count(len), 1, i);
                const auto ss = rs.wait();
                const auto st = rr.wait();
                rec.status = ok(ss.status) ? st.status : ss.status;
                rec.vtime = st.vtime;
                rec.payload_ok = dst == src;
                break;
            }
            case Shape::derived: {
                // Strided doubles, large enough for the pipelined path.
                const std::size_t count = 256 + (i % 3) * 128;
                auto col = dt::Datatype::vector(Count(count), 1, 2, dt::type_double());
                EXPECT_EQ(col->commit(), Status::success);
                std::vector<double> src(2 * count), dst(2 * count, -1.0);
                for (std::size_t k = 0; k < src.size(); ++k)
                    src[k] = static_cast<double>(i) * 1e4 + static_cast<double>(k);
                auto rr = uni.comm(1).irecv(dst.data(), 1, col, 0, i);
                auto rs = uni.comm(0).isend(src.data(), 1, col, 1, i);
                const auto ss = rs.wait();
                const auto st = rr.wait();
                rec.status = ok(ss.status) ? st.status : ss.status;
                rec.vtime = st.vtime;
                rec.payload_ok = true;
                for (std::size_t k = 0; k < src.size(); k += 2)
                    if (dst[k] != src[k]) rec.payload_ok = false;
                break;
            }
            case Shape::iov: {
                // Scatter-gather send through the raw worker API (distinct
                // tag space from the communicator-encoded tags).
                ByteVec a = test::pattern_bytes(300 + (i % 4) * 64,
                                                2000u + static_cast<unsigned>(i));
                ByteVec b = test::pattern_bytes(200, 3000u + static_cast<unsigned>(i));
                ByteVec dst(a.size() + b.size());
                const ucx::Tag tag =
                    (ucx::Tag{0xFA} << 56) | static_cast<ucx::Tag>(i);
                auto rid = uni.worker(1).tag_recv(
                    tag, ~ucx::Tag{0},
                    ucx::make_contig_recv(dst.data(), Count(dst.size())));
                auto sid = uni.worker(0).tag_send(
                    1, tag,
                    ucx::make_iov({{a.data(), Count(a.size())},
                                   {b.data(), Count(b.size())}}));
                while (!uni.worker(0).is_complete(sid) ||
                       !uni.worker(1).is_complete(rid))
                    uni.progress_all();
                const auto sc = uni.worker(0).take_completion(sid);
                const auto rc = uni.worker(1).take_completion(rid);
                rec.status = ok(sc.status) ? rc.status : sc.status;
                rec.vtime = rc.vtime;
                rec.payload_ok =
                    std::equal(a.begin(), a.end(), dst.begin()) &&
                    std::equal(b.begin(), b.end(),
                               dst.begin() + static_cast<std::ptrdiff_t>(a.size()));
                break;
            }
        }
        out.push_back(rec);
    }
    // The universe must be fully quiescent: no pending retransmits, no
    // half-open rendezvous state, no stranded unexpected messages.
    for (int r = 0; r < 2; ++r) EXPECT_TRUE(uni.worker(r).idle()) << "rank " << r;
    return out;
}

TEST(ReliabilitySoak, LossyRunMatchesLosslessReference) {
    const int kMessages = 520;
    FaultConfig lossy;
    lossy.seed = 0x50AC;
    lossy.drop = 0.03;
    lossy.corrupt = 0.02;
    lossy.dup = 0.02;
    lossy.reorder = 0.02;

    const auto reference = run_soak(kMessages, FaultConfig{});
    const auto lossy_run = run_soak(kMessages, lossy);
    ASSERT_EQ(reference.size(), lossy_run.size());

    SimTime last = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        SCOPED_TRACE("message " + std::to_string(i));
        // Zero payload divergence vs the lossless reference.
        EXPECT_EQ(reference[i].status, Status::success);
        EXPECT_EQ(lossy_run[i].status, Status::success);
        EXPECT_TRUE(reference[i].payload_ok);
        EXPECT_TRUE(lossy_run[i].payload_ok);
        // Completion times are monotone (the driver is sequential, so each
        // receive completes no earlier than its predecessor).
        EXPECT_GE(lossy_run[i].vtime, last);
        last = lossy_run[i].vtime;
    }
}

TEST(ReliabilitySoak, PooledLossySoakByteIdentical) {
    // The slab pool must be invisible to the protocol: the same seeded
    // drop + dup + reorder (+ corruption, which forces copy-on-write of
    // shared retransmit payloads) storm delivers every payload intact with
    // the pool off (deep-copy seed behaviour) and on (shared slabs), and
    // the pool leak-checks to zero live buffers once each universe is torn
    // down.
    BufferPool& pool = BufferPool::instance();
    const bool prev = pool.enabled();
    FaultConfig cfg;
    cfg.seed = 0xB00F;
    cfg.drop = 0.04;
    cfg.dup = 0.03;
    cfg.reorder = 0.03;
    cfg.corrupt = 0.02;

    const int kMessages = 260;
    std::vector<SoakRecord> runs[2];
    for (const bool pool_on : {false, true}) {
        pool.set_enabled(pool_on);
        runs[pool_on ? 1 : 0] = run_soak(kMessages, cfg);
        // run_soak's universe is destroyed on return: every packet,
        // retransmit record and stash entry has released its buffer.
        EXPECT_EQ(pool.outstanding(), 0u)
            << "pool leak with pool " << (pool_on ? "on" : "off");
    }
    pool.set_enabled(prev);
    pool.trim();

    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
        SCOPED_TRACE("message " + std::to_string(i));
        EXPECT_EQ(runs[0][i].status, Status::success);
        EXPECT_EQ(runs[1][i].status, Status::success);
        EXPECT_TRUE(runs[0][i].payload_ok);
        EXPECT_TRUE(runs[1][i].payload_ok);
    }
}

TEST(ReliabilitySoak, SameSeedSameTimeline) {
    // Contig/IOV shapes only: their costs are fully modeled (no measured
    // host time), so the whole virtual timeline must be bit-reproducible.
    FaultConfig cfg;
    cfg.seed = 77;
    cfg.drop = 0.05;
    cfg.corrupt = 0.02;
    const auto a = run_soak(64, cfg, /*derived=*/false);
    const auto b = run_soak(64, cfg, /*derived=*/false);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].status, b[i].status) << i;
        EXPECT_EQ(a[i].vtime, b[i].vtime) << i;
    }
}

TEST(ReliabilitySoak, ConcurrentManyRankManyTagLossy) {
    // Concurrency soak for the hashed tag matcher: N ranks, each driven by
    // its own thread through the communicator API (Request::wait ->
    // Universe::progress(rank), so every thread progresses its own worker
    // and occasionally helps peers). Unique per-message tags keep the
    // pairing unambiguous even for the ANY_SOURCE receives, so the test
    // can assert exact payload identity while threads race through the
    // matcher, the sharded admission path and the completion registry.
    // This is the TSan target of tools/run_faults_matrix.sh.
    constexpr int kRanks = 6;
    constexpr int kMsgs = 24;
    FaultConfig cfg;
    cfg.seed = 0xC0C0;
    cfg.drop = 0.02;
    cfg.corrupt = 0.02;
    cfg.dup = 0.02;
    Universe uni(kRanks, soak_params(), cfg);

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kRanks);
    for (int rank = 0; rank < kRanks; ++rank) {
        threads.emplace_back([&, rank] {
            auto& comm = uni.comm(rank);
            const int right = (rank + 1) % kRanks;
            const int left = (rank + kRanks - 1) % kRanks;
            // Deep tag space: every message its own tag -> real bucket
            // depth in the matcher; every 3rd receive is ANY_SOURCE so
            // wildcard groups race with the exact hash buckets.
            std::vector<ByteVec> dsts(kMsgs), srcs(kMsgs);
            std::vector<p2p::Request> reqs;
            reqs.reserve(2 * kMsgs);
            for (int i = 0; i < kMsgs; ++i) {
                const std::size_t len = (i % 2 == 0)
                                            ? 64 + static_cast<std::size_t>(i % 7) * 96
                                            : 2048 + static_cast<std::size_t>(i % 5) * 512;
                dsts[static_cast<std::size_t>(i)].resize(len);
                const int src_filter = (i % 3 == 0) ? p2p::kAnySource : left;
                reqs.push_back(comm.irecv_bytes(
                    dsts[static_cast<std::size_t>(i)].data(), Count(len),
                    src_filter, 100 + i));
            }
            for (int i = 0; i < kMsgs; ++i) {
                const std::size_t len = (i % 2 == 0)
                                            ? 64 + static_cast<std::size_t>(i % 7) * 96
                                            : 2048 + static_cast<std::size_t>(i % 5) * 512;
                srcs[static_cast<std::size_t>(i)] = test::pattern_bytes(
                    len, static_cast<unsigned>(rank) * 1000u +
                             static_cast<unsigned>(i));
                reqs.push_back(comm.isend_bytes(
                    srcs[static_cast<std::size_t>(i)].data(), Count(len),
                    right, 100 + i));
            }
            if (p2p::wait_all(reqs) != Status::success) failures.fetch_add(1);
            // Every receive pairs with the left neighbour's i-th send.
            for (int i = 0; i < kMsgs; ++i) {
                const std::size_t len = dsts[static_cast<std::size_t>(i)].size();
                const ByteVec want = test::pattern_bytes(
                    len, static_cast<unsigned>(left) * 1000u +
                             static_cast<unsigned>(i));
                if (dsts[static_cast<std::size_t>(i)] != want) failures.fetch_add(1);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    for (int r = 0; r < kRanks; ++r)
        EXPECT_TRUE(uni.worker(r).idle()) << "rank " << r << " not quiescent";
}

} // namespace
} // namespace mpicd
