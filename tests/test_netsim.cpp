#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "netsim/fabric.hpp"
#include "netsim/wire_model.hpp"
#include "test_util.hpp"

namespace mpicd::netsim {
namespace {

WireParams simple_params() {
    WireParams p;
    p.latency_us = 1.0;
    p.bandwidth_Bpus = 1000.0; // 1 B/ns for easy arithmetic
    p.sg_entry_us = 0.5;
    return p;
}

TEST(WireModel, SerializeTime) {
    const auto p = simple_params();
    EXPECT_DOUBLE_EQ(p.serialize_time(0), 0.0);
    EXPECT_DOUBLE_EQ(p.serialize_time(1000), 1.0);
    EXPECT_DOUBLE_EQ(p.serialize_time(2500), 2.5);
}

TEST(WireModel, SgOverheadChargesEntriesBeyondFirst) {
    const auto p = simple_params();
    EXPECT_DOUBLE_EQ(p.sg_overhead(0), 0.0);
    EXPECT_DOUBLE_EQ(p.sg_overhead(1), 0.0);
    EXPECT_DOUBLE_EQ(p.sg_overhead(3), 1.0);
}

TEST(WireModel, EnvOverrides) {
    setenv("MPICD_LATENCY_US", "9.5", 1);
    setenv("MPICD_EAGER_THRESHOLD", "1234", 1);
    const auto p = WireParams::from_env();
    EXPECT_DOUBLE_EQ(p.latency_us, 9.5);
    EXPECT_EQ(p.eager_threshold, 1234);
    unsetenv("MPICD_LATENCY_US");
    unsetenv("MPICD_EAGER_THRESHOLD");
}

TEST(WireModel, UnitConversionsAreExact) {
    // 125 B/us per Gbps and 1000 B/us per GB/s are integer-valued doubles,
    // so a single multiply (or divide) is correctly rounded and the default
    // bandwidths convert without drift.
    EXPECT_EQ(kBpusPerGbps, 125.0);
    EXPECT_EQ(kBpusPerGBps, 1000.0);
    const WireParams d;
    EXPECT_EQ(d.bandwidth_gbps() * kBpusPerGbps, d.bandwidth_Bpus);
    EXPECT_EQ(d.host_copy_gBps() * kBpusPerGBps, d.host_copy_Bpus);
}

TEST(WireModel, PrintedDefaultsRoundTripBitIdentically) {
    // Re-exporting every printed default must reproduce the WireParams —
    // and every derived transfer-time quantity — bit for bit. This guards
    // both the %.17g print precision and the presence-based handling of
    // unit-converted knobs in from_env() (a convert-out/convert-back of an
    // unset variable would round twice and drift the model).
    const char* const names[] = {
        "MPICD_LATENCY_US",     "MPICD_BANDWIDTH_GBPS",
        "MPICD_SG_ENTRY_US",    "MPICD_HOST_COPY_GBPS",
        "MPICD_EAGER_THRESHOLD", "MPICD_IOV_EAGER_THRESHOLD",
        "MPICD_RNDV_FRAG_SIZE", "MPICD_RNDV_CTRL_US",
        "MPICD_FRAG_OVERHEAD_US", "MPICD_RAILS",
        "MPICD_RTO_US",         "MPICD_MAX_RETRIES",
        "MPICD_OP_TIMEOUT_US",  "MPICD_RANKS_PER_NODE",
        "MPICD_INTER_LATENCY_US", "MPICD_INTER_BANDWIDTH_GBPS",
    };
    for (const char* n : names) unsetenv(n);
    const WireParams base = WireParams::from_env();

    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    base.print(mem);
    std::fclose(mem);
    const std::string dump(buf, len);
    std::free(buf);

    // Export every printed NAME=value line back into the environment.
    std::size_t exported = 0;
    for (std::size_t pos = 0; pos < dump.size();) {
        const std::size_t eol = dump.find('\n', pos);
        const std::string line = dump.substr(pos, eol - pos);
        pos = eol == std::string::npos ? dump.size() : eol + 1;
        const std::size_t eq = line.find('=');
        ASSERT_NE(eq, std::string::npos) << line;
        setenv(line.substr(0, eq).c_str(), line.substr(eq + 1).c_str(), 1);
        ++exported;
    }
    EXPECT_EQ(exported, std::size(names));

    const WireParams rt = WireParams::from_env();
    for (const char* n : names) unsetenv(n);

    EXPECT_EQ(rt.latency_us, base.latency_us);
    EXPECT_EQ(rt.bandwidth_Bpus, base.bandwidth_Bpus);
    EXPECT_EQ(rt.sg_entry_us, base.sg_entry_us);
    EXPECT_EQ(rt.host_copy_Bpus, base.host_copy_Bpus);
    EXPECT_EQ(rt.eager_threshold, base.eager_threshold);
    EXPECT_EQ(rt.iov_eager_threshold, base.iov_eager_threshold);
    EXPECT_EQ(rt.rndv_frag_size, base.rndv_frag_size);
    EXPECT_EQ(rt.rndv_ctrl_us, base.rndv_ctrl_us);
    EXPECT_EQ(rt.frag_overhead_us, base.frag_overhead_us);
    EXPECT_EQ(rt.rails, base.rails);
    EXPECT_EQ(rt.rto_us, base.rto_us);
    EXPECT_EQ(rt.max_retries, base.max_retries);
    EXPECT_EQ(rt.op_timeout_us, base.op_timeout_us);
    EXPECT_EQ(rt.ranks_per_node, base.ranks_per_node);
    EXPECT_EQ(rt.inter_latency_us, base.inter_latency_us);
    EXPECT_EQ(rt.inter_bandwidth_Bpus, base.inter_bandwidth_Bpus);

    // Modeled transfer times derived from the round-tripped params are
    // bit-identical too — the property the wire model actually promises.
    for (const Count bytes : {1, 777, 4096, 1 << 20}) {
        EXPECT_EQ(rt.serialize_time(bytes), base.serialize_time(bytes));
        EXPECT_EQ(rt.host_copy_time(bytes), base.host_copy_time(bytes));
    }
    EXPECT_EQ(rt.sg_overhead(17), base.sg_overhead(17));
    EXPECT_EQ(rt.effective_op_timeout(), base.effective_op_timeout());
}

TEST(VirtualClock, AdvanceAndObserve) {
    VirtualClock c;
    EXPECT_DOUBLE_EQ(c.now(), 0.0);
    c.advance(2.0);
    EXPECT_DOUBLE_EQ(c.now(), 2.0);
    c.observe(1.0); // earlier time does not move the clock backwards
    EXPECT_DOUBLE_EQ(c.now(), 2.0);
    c.observe(5.0);
    EXPECT_DOUBLE_EQ(c.now(), 5.0);
    c.reset();
    EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(Fabric, DeliversPacketWithPayload) {
    Fabric f(2, simple_params());
    Packet pkt;
    pkt.src = 0;
    pkt.dst = 1;
    pkt.kind = 7;
    const ByteVec expected = test::pattern_bytes(100);
    pkt.payload = PooledBuf::copy_of(expected);
    const SimTime arrival = f.transmit(std::move(pkt), 0.0, 100);
    // 100 bytes at 1000 B/us + 1 us latency.
    EXPECT_DOUBLE_EQ(arrival, 0.1 + 1.0);
    auto got = f.poll(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->kind, 7);
    ASSERT_EQ(got->payload.size(), expected.size());
    EXPECT_EQ(std::memcmp(got->payload.data(), expected.data(),
                          expected.size()), 0);
    EXPECT_DOUBLE_EQ(got->arrival, arrival);
    EXPECT_FALSE(f.poll(1).has_value());
}

TEST(WireModel, TwoPlaneTopologyAssignsNodesAndPlanes) {
    WireParams p = simple_params();
    // Flat default: everything is one node, inter knobs inert.
    EXPECT_EQ(p.node_of(0), 0);
    EXPECT_EQ(p.node_of(7), 0);
    EXPECT_FALSE(p.cross_node(0, 7));
    EXPECT_DOUBLE_EQ(p.link_latency(0, 7), p.latency_us);
    // 2 ranks per node: endpoints 0,1 on node 0; 2,3 on node 1.
    p.ranks_per_node = 2;
    p.inter_latency_us = 10.0;
    p.inter_bandwidth_Bpus = 100.0;
    EXPECT_EQ(p.node_of(1), 0);
    EXPECT_EQ(p.node_of(2), 1);
    EXPECT_FALSE(p.cross_node(0, 1));
    EXPECT_TRUE(p.cross_node(1, 2));
    EXPECT_DOUBLE_EQ(p.link_latency(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(p.link_latency(0, 2), 10.0);
    EXPECT_DOUBLE_EQ(p.serialize_time_on(1000, 0, 1), 1.0);
    EXPECT_DOUBLE_EQ(p.serialize_time_on(1000, 0, 2), 10.0);
    // Negative inter knobs fall back to the intra plane.
    p.inter_latency_us = -1.0;
    p.inter_bandwidth_Bpus = -1.0;
    EXPECT_DOUBLE_EQ(p.link_latency(0, 2), p.latency_us);
    EXPECT_DOUBLE_EQ(p.serialize_time_on(1000, 0, 2), 1.0);
}

TEST(Fabric, InterNodeLinksPayInterPlaneCosts) {
    WireParams p = simple_params();
    p.ranks_per_node = 2;
    p.inter_latency_us = 5.0;
    p.inter_bandwidth_Bpus = 100.0; // 10x slower than intra
    Fabric f(4, p);
    Packet intra;
    intra.src = 0;
    intra.dst = 1;
    const SimTime a_intra = f.transmit(std::move(intra), 0.0, 1000);
    // 1000 B at 1000 B/us + 1 us intra latency.
    EXPECT_DOUBLE_EQ(a_intra, 1.0 + 1.0);
    Packet inter;
    inter.src = 0;
    inter.dst = 2;
    const SimTime a_inter = f.transmit(std::move(inter), 0.0, 1000);
    // 1000 B at 100 B/us + 5 us inter latency.
    EXPECT_DOUBLE_EQ(a_inter, 10.0 + 5.0);
    (void)f.poll(1);
    (void)f.poll(2);
}

TEST(Fabric, LinkSerializationQueuesBackToBack) {
    Fabric f(2, simple_params());
    Packet a, b;
    a.src = b.src = 0;
    a.dst = b.dst = 1;
    const SimTime t1 = f.transmit(std::move(a), 0.0, 1000);
    const SimTime t2 = f.transmit(std::move(b), 0.0, 1000);
    // Second packet waits for the first to finish serializing.
    EXPECT_DOUBLE_EQ(t1, 1.0 + 1.0);
    EXPECT_DOUBLE_EQ(t2, 2.0 + 1.0);
}

TEST(Fabric, IndependentLinksDoNotContend) {
    Fabric f(3, simple_params());
    Packet a, b;
    a.src = 0;
    a.dst = 1;
    b.src = 2;
    b.dst = 1;
    const SimTime t1 = f.transmit(std::move(a), 0.0, 1000);
    const SimTime t2 = f.transmit(std::move(b), 0.0, 1000);
    EXPECT_DOUBLE_EQ(t1, t2); // distinct links, same timing
}

TEST(Fabric, SgEntriesDelayStart) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    const SimTime t = f.transmit(std::move(a), 0.0, 1000, /*sg_entries=*/3);
    EXPECT_DOUBLE_EQ(t, 1.0 /*sg*/ + 1.0 /*wire*/ + 1.0 /*latency*/);
}

TEST(Fabric, ControlPacketsAreLatencyOnly) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    const SimTime t = f.transmit_control(std::move(a), 3.0);
    EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(Fabric, RdmaWriteMovesDataAndCharges) {
    Fabric f(2, simple_params());
    const ByteVec src = test::pattern_bytes(500);
    ByteVec dst(500);
    const SimTime t = f.rdma_write(0, 1, src.data(), dst.data(), 500, 0.0);
    EXPECT_EQ(src, dst);
    EXPECT_DOUBLE_EQ(t, 0.5 + 1.0);
}

TEST(Fabric, RdmaSharesLinkWithPackets) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    (void)f.transmit(std::move(a), 0.0, 1000); // link busy until t=1.0
    const SimTime t = f.rdma_cost(0, 1, 1000, 1, 0.0);
    EXPECT_DOUBLE_EQ(t, 1.0 + 1.0 + 1.0); // starts after the packet
}

TEST(Fabric, FifoOrderPerLink) {
    Fabric f(2, simple_params());
    for (int i = 0; i < 5; ++i) {
        Packet p;
        p.src = 0;
        p.dst = 1;
        p.kind = static_cast<std::uint16_t>(i);
        (void)f.transmit(std::move(p), 0.0, 10);
    }
    for (int i = 0; i < 5; ++i) {
        auto got = f.poll(1);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->kind, i);
    }
}

TEST(Fabric, ResetTimeClearsLinkState) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    (void)f.transmit(std::move(a), 0.0, 100000);
    (void)f.poll(1);
    f.reset_time();
    Packet b;
    b.src = 0;
    b.dst = 1;
    const SimTime t = f.transmit(std::move(b), 0.0, 1000);
    EXPECT_DOUBLE_EQ(t, 2.0);
    (void)f.poll(1);
}

TEST(Fabric, InboxEmptyReflectsState) {
    Fabric f(2, simple_params());
    EXPECT_TRUE(f.inbox_empty(1));
    Packet a;
    a.src = 0;
    a.dst = 1;
    (void)f.transmit(std::move(a), 0.0, 1);
    EXPECT_FALSE(f.inbox_empty(1));
    (void)f.poll(1);
    EXPECT_TRUE(f.inbox_empty(1));
}

} // namespace
} // namespace mpicd::netsim
