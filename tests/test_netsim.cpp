#include <gtest/gtest.h>

#include "netsim/fabric.hpp"
#include "netsim/wire_model.hpp"
#include "test_util.hpp"

namespace mpicd::netsim {
namespace {

WireParams simple_params() {
    WireParams p;
    p.latency_us = 1.0;
    p.bandwidth_Bpus = 1000.0; // 1 B/ns for easy arithmetic
    p.sg_entry_us = 0.5;
    return p;
}

TEST(WireModel, SerializeTime) {
    const auto p = simple_params();
    EXPECT_DOUBLE_EQ(p.serialize_time(0), 0.0);
    EXPECT_DOUBLE_EQ(p.serialize_time(1000), 1.0);
    EXPECT_DOUBLE_EQ(p.serialize_time(2500), 2.5);
}

TEST(WireModel, SgOverheadChargesEntriesBeyondFirst) {
    const auto p = simple_params();
    EXPECT_DOUBLE_EQ(p.sg_overhead(0), 0.0);
    EXPECT_DOUBLE_EQ(p.sg_overhead(1), 0.0);
    EXPECT_DOUBLE_EQ(p.sg_overhead(3), 1.0);
}

TEST(WireModel, EnvOverrides) {
    setenv("MPICD_LATENCY_US", "9.5", 1);
    setenv("MPICD_EAGER_THRESHOLD", "1234", 1);
    const auto p = WireParams::from_env();
    EXPECT_DOUBLE_EQ(p.latency_us, 9.5);
    EXPECT_EQ(p.eager_threshold, 1234);
    unsetenv("MPICD_LATENCY_US");
    unsetenv("MPICD_EAGER_THRESHOLD");
}

TEST(VirtualClock, AdvanceAndObserve) {
    VirtualClock c;
    EXPECT_DOUBLE_EQ(c.now(), 0.0);
    c.advance(2.0);
    EXPECT_DOUBLE_EQ(c.now(), 2.0);
    c.observe(1.0); // earlier time does not move the clock backwards
    EXPECT_DOUBLE_EQ(c.now(), 2.0);
    c.observe(5.0);
    EXPECT_DOUBLE_EQ(c.now(), 5.0);
    c.reset();
    EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(Fabric, DeliversPacketWithPayload) {
    Fabric f(2, simple_params());
    Packet pkt;
    pkt.src = 0;
    pkt.dst = 1;
    pkt.kind = 7;
    pkt.payload = test::pattern_bytes(100);
    const ByteVec expected = pkt.payload;
    const SimTime arrival = f.transmit(std::move(pkt), 0.0, 100);
    // 100 bytes at 1000 B/us + 1 us latency.
    EXPECT_DOUBLE_EQ(arrival, 0.1 + 1.0);
    auto got = f.poll(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->kind, 7);
    EXPECT_EQ(got->payload, expected);
    EXPECT_DOUBLE_EQ(got->arrival, arrival);
    EXPECT_FALSE(f.poll(1).has_value());
}

TEST(Fabric, LinkSerializationQueuesBackToBack) {
    Fabric f(2, simple_params());
    Packet a, b;
    a.src = b.src = 0;
    a.dst = b.dst = 1;
    const SimTime t1 = f.transmit(std::move(a), 0.0, 1000);
    const SimTime t2 = f.transmit(std::move(b), 0.0, 1000);
    // Second packet waits for the first to finish serializing.
    EXPECT_DOUBLE_EQ(t1, 1.0 + 1.0);
    EXPECT_DOUBLE_EQ(t2, 2.0 + 1.0);
}

TEST(Fabric, IndependentLinksDoNotContend) {
    Fabric f(3, simple_params());
    Packet a, b;
    a.src = 0;
    a.dst = 1;
    b.src = 2;
    b.dst = 1;
    const SimTime t1 = f.transmit(std::move(a), 0.0, 1000);
    const SimTime t2 = f.transmit(std::move(b), 0.0, 1000);
    EXPECT_DOUBLE_EQ(t1, t2); // distinct links, same timing
}

TEST(Fabric, SgEntriesDelayStart) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    const SimTime t = f.transmit(std::move(a), 0.0, 1000, /*sg_entries=*/3);
    EXPECT_DOUBLE_EQ(t, 1.0 /*sg*/ + 1.0 /*wire*/ + 1.0 /*latency*/);
}

TEST(Fabric, ControlPacketsAreLatencyOnly) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    const SimTime t = f.transmit_control(std::move(a), 3.0);
    EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(Fabric, RdmaWriteMovesDataAndCharges) {
    Fabric f(2, simple_params());
    const ByteVec src = test::pattern_bytes(500);
    ByteVec dst(500);
    const SimTime t = f.rdma_write(0, 1, src.data(), dst.data(), 500, 0.0);
    EXPECT_EQ(src, dst);
    EXPECT_DOUBLE_EQ(t, 0.5 + 1.0);
}

TEST(Fabric, RdmaSharesLinkWithPackets) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    (void)f.transmit(std::move(a), 0.0, 1000); // link busy until t=1.0
    const SimTime t = f.rdma_cost(0, 1, 1000, 1, 0.0);
    EXPECT_DOUBLE_EQ(t, 1.0 + 1.0 + 1.0); // starts after the packet
}

TEST(Fabric, FifoOrderPerLink) {
    Fabric f(2, simple_params());
    for (int i = 0; i < 5; ++i) {
        Packet p;
        p.src = 0;
        p.dst = 1;
        p.kind = static_cast<std::uint16_t>(i);
        (void)f.transmit(std::move(p), 0.0, 10);
    }
    for (int i = 0; i < 5; ++i) {
        auto got = f.poll(1);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->kind, i);
    }
}

TEST(Fabric, ResetTimeClearsLinkState) {
    Fabric f(2, simple_params());
    Packet a;
    a.src = 0;
    a.dst = 1;
    (void)f.transmit(std::move(a), 0.0, 100000);
    (void)f.poll(1);
    f.reset_time();
    Packet b;
    b.src = 0;
    b.dst = 1;
    const SimTime t = f.transmit(std::move(b), 0.0, 1000);
    EXPECT_DOUBLE_EQ(t, 2.0);
    (void)f.poll(1);
}

TEST(Fabric, InboxEmptyReflectsState) {
    Fabric f(2, simple_params());
    EXPECT_TRUE(f.inbox_empty(1));
    Packet a;
    a.src = 0;
    a.dst = 1;
    (void)f.transmit(std::move(a), 0.0, 1);
    EXPECT_FALSE(f.inbox_empty(1));
    (void)f.poll(1);
    EXPECT_TRUE(f.inbox_empty(1));
}

} // namespace
} // namespace mpicd::netsim
