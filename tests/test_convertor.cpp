#include <gtest/gtest.h>

#include <cstring>

#include "dt/convertor.hpp"
#include "test_util.hpp"

namespace mpicd::dt {
namespace {

// Struct-with-gap matching the paper's struct-simple layout.
struct Gapped {
    std::int32_t a, b, c;
    double d;
};

TypeRef gapped_type() {
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const TypeRef types[] = {type_int32(), type_double()};
    auto s = Datatype::struct_(blocklens, displs, types);
    auto r = Datatype::resized(s, 0, 24);
    (void)r->commit();
    return r;
}

TEST(Convertor, ContiguousPackIsIdentity) {
    auto t = Datatype::contiguous(8, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    auto data = test::iota_vec<std::int32_t>(8);
    ByteVec out(32);
    Count used = 0;
    ASSERT_EQ(Convertor::pack_all(t, data.data(), 1, out, &used), Status::success);
    EXPECT_EQ(used, 32);
    EXPECT_EQ(std::memcmp(out.data(), data.data(), 32), 0);
}

TEST(Convertor, GappedStructPacksFields) {
    auto t = gapped_type();
    Gapped g{1, 2, 3, 4.5};
    ByteVec out(20);
    Count used = 0;
    ASSERT_EQ(Convertor::pack_all(t, &g, 1, out, &used), Status::success);
    ASSERT_EQ(used, 20);
    std::int32_t abc[3];
    double d = 0;
    std::memcpy(abc, out.data(), 12);
    std::memcpy(&d, out.data() + 12, 8);
    EXPECT_EQ(abc[0], 1);
    EXPECT_EQ(abc[2], 3);
    EXPECT_DOUBLE_EQ(d, 4.5);
}

TEST(Convertor, RoundTripMultipleElements) {
    auto t = gapped_type();
    std::vector<Gapped> src(10), dst(10);
    for (int i = 0; i < 10; ++i) src[static_cast<std::size_t>(i)] = {i, i + 1, i + 2, i * 0.5};
    ByteVec packed(200);
    Count used = 0;
    ASSERT_EQ(Convertor::pack_all(t, src.data(), 10, packed, &used), Status::success);
    ASSERT_EQ(used, 200);
    ASSERT_EQ(Convertor::unpack_all(t, dst.data(), 10, packed), Status::success);
    for (int i = 0; i < 10; ++i) {
        const auto& s = src[static_cast<std::size_t>(i)];
        const auto& d = dst[static_cast<std::size_t>(i)];
        EXPECT_EQ(s.a, d.a);
        EXPECT_EQ(s.b, d.b);
        EXPECT_EQ(s.c, d.c);
        EXPECT_DOUBLE_EQ(s.d, d.d);
    }
}

TEST(Convertor, PartialPackAcrossFragments) {
    auto t = gapped_type();
    std::vector<Gapped> src(4);
    for (int i = 0; i < 4; ++i) src[static_cast<std::size_t>(i)] = {i, 10 + i, 20 + i, i * 1.5};
    ByteVec whole(80);
    Count used = 0;
    ASSERT_EQ(Convertor::pack_all(t, src.data(), 4, whole, &used), Status::success);

    // Pack again in odd-sized fragments; streams must agree.
    Convertor cv(t, src.data(), 4);
    ByteVec stream;
    ByteVec frag(7);
    while (!cv.finished()) {
        Count got = 0;
        ASSERT_EQ(cv.pack(frag, &got), Status::success);
        stream.insert(stream.end(), frag.begin(), frag.begin() + got);
    }
    EXPECT_EQ(stream, whole);
}

TEST(Convertor, PartialUnpackAcrossFragments) {
    auto t = gapped_type();
    std::vector<Gapped> src(4), dst(4);
    for (int i = 0; i < 4; ++i) src[static_cast<std::size_t>(i)] = {i, -i, i * 3, i * 0.25};
    ByteVec packed(80);
    Count used = 0;
    ASSERT_EQ(Convertor::pack_all(t, src.data(), 4, packed, &used), Status::success);

    Convertor cv(t, dst.data(), 4);
    std::size_t pos = 0;
    const std::size_t frag = 13;
    while (pos < packed.size()) {
        const std::size_t n = std::min(frag, packed.size() - pos);
        ASSERT_EQ(cv.unpack(ConstBytes(packed.data() + pos, n)), Status::success);
        pos += n;
    }
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(src[static_cast<std::size_t>(i)].a, dst[static_cast<std::size_t>(i)].a);
        EXPECT_DOUBLE_EQ(src[static_cast<std::size_t>(i)].d,
                         dst[static_cast<std::size_t>(i)].d);
    }
}

TEST(Convertor, SeekRandomAccess) {
    auto t = gapped_type();
    std::vector<Gapped> src(8);
    for (int i = 0; i < 8; ++i) src[static_cast<std::size_t>(i)] = {i, i, i, double(i)};
    ByteVec whole(160);
    Count used = 0;
    ASSERT_EQ(Convertor::pack_all(t, src.data(), 8, whole, &used), Status::success);

    Convertor cv(t, src.data(), 8);
    // Read bytes [50, 90) via seek.
    cv.seek(50);
    EXPECT_EQ(cv.position(), 50);
    ByteVec part(40);
    ASSERT_EQ(cv.pack(part, &used), Status::success);
    ASSERT_EQ(used, 40);
    EXPECT_EQ(std::memcmp(part.data(), whole.data() + 50, 40), 0);
}

TEST(Convertor, SeekClampsOutOfRange) {
    auto t = gapped_type();
    Gapped g{};
    Convertor cv(t, &g, 1);
    cv.seek(-5);
    EXPECT_EQ(cv.position(), 0);
    cv.seek(1000);
    EXPECT_EQ(cv.position(), 20);
    EXPECT_TRUE(cv.finished());
}

TEST(Convertor, PackShortReadAtEnd) {
    auto t = Datatype::contiguous(3, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    auto data = test::iota_vec<std::int32_t>(3);
    Convertor cv(t, data.data(), 1);
    ByteVec big(100);
    Count used = 0;
    ASSERT_EQ(cv.pack(big, &used), Status::success);
    EXPECT_EQ(used, 12);
    EXPECT_TRUE(cv.finished());
    // Further packs produce nothing.
    ASSERT_EQ(cv.pack(big, &used), Status::success);
    EXPECT_EQ(used, 0);
}

TEST(Convertor, UnpackOverflowIsError) {
    auto t = Datatype::contiguous(2, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    std::int32_t buf[2] = {};
    Convertor cv(t, buf, 1);
    ByteVec too_much(12);
    EXPECT_EQ(cv.unpack(too_much), Status::err_truncate);
}

TEST(Convertor, PackAllChecksDstSize) {
    auto t = Datatype::contiguous(4, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    std::int32_t buf[4] = {};
    ByteVec small(8);
    Count used = 0;
    EXPECT_EQ(Convertor::pack_all(t, buf, 1, small, &used), Status::err_truncate);
}

TEST(Convertor, UncommittedTypeRejected) {
    auto t = Datatype::contiguous(4, type_int32()); // not committed
    std::int32_t buf[4] = {};
    ByteVec out(16);
    Count used = 0;
    EXPECT_EQ(Convertor::pack_all(t, buf, 1, out, &used), Status::err_not_committed);
    EXPECT_EQ(Convertor::unpack_all(t, buf, 1, out), Status::err_not_committed);
}

TEST(Convertor, VectorTypeRoundTrip) {
    // Columns of a 6x8 int matrix.
    auto col = Datatype::vector(6, 1, 8, type_int32());
    ASSERT_EQ(col->commit(), Status::success);
    auto mat = test::iota_vec<std::int32_t>(48);
    ByteVec packed(24);
    Count used = 0;
    ASSERT_EQ(Convertor::pack_all(col, mat.data() + 3, 1, packed, &used),
              Status::success);
    for (int r = 0; r < 6; ++r) {
        std::int32_t v = 0;
        std::memcpy(&v, packed.data() + r * 4, 4);
        EXPECT_EQ(v, r * 8 + 3);
    }
    std::vector<std::int32_t> out(48, 0);
    ASSERT_EQ(Convertor::unpack_all(col, out.data() + 3, 1, packed), Status::success);
    for (int r = 0; r < 6; ++r)
        EXPECT_EQ(out[static_cast<std::size_t>(r * 8 + 3)], r * 8 + 3);
}

TEST(Convertor, ZeroSizeType) {
    auto t = Datatype::contiguous(0, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    Convertor cv(t, nullptr, 5);
    EXPECT_EQ(cv.total_packed(), 0);
    EXPECT_TRUE(cv.finished());
}

} // namespace
} // namespace mpicd::dt
