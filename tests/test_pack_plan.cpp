// Pack-plan compiler, parallel pack engine, iovec coalescing, and the
// descriptor cache: the compiled fast paths must be byte-identical to the
// generic per-segment convertor on every datatype shape, cursor position,
// and fragment boundary.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "base/stats.hpp"
#include "core/paper_types.hpp"
#include "ddtbench/kernel.hpp"
#include "dt/convertor.hpp"
#include "dt/pack_plan.hpp"
#include "dt/par_pack.hpp"
#include "dt/signature.hpp"
#include "p2p/dt_bridge.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"

namespace mpicd {
namespace {

// Force a multi-thread pool even on single-core CI hosts so the parallel
// determinism tests actually partition work. Runs before main(), i.e.
// before par_pack_workers() caches the env; overwrite=0 keeps an external
// override in charge.
struct EnvInit {
    EnvInit() { ::setenv("MPICD_PAR_PACK_THREADS", "3", 0); }
};
const EnvInit env_init;

// Same random tree shape as test_property, plus negative-stride hvectors
// (address order != pack order) to stress the plan compiler's stride runs.
dt::TypeRef random_type(std::mt19937& rng, int depth) {
    std::uniform_int_distribution<int> leaf_pick(0, 3);
    if (depth == 0) {
        switch (leaf_pick(rng)) {
            case 0: return dt::type_int32();
            case 1: return dt::type_double();
            case 2: return dt::type_byte();
            default: return dt::type_int64();
        }
    }
    std::uniform_int_distribution<int> kind_pick(0, 5);
    std::uniform_int_distribution<Count> small(1, 4);
    auto base = random_type(rng, depth - 1);
    switch (kind_pick(rng)) {
        case 0: return dt::Datatype::contiguous(small(rng), base);
        case 1: {
            const Count blocklen = small(rng);
            const Count stride = blocklen + small(rng); // positive gap
            return dt::Datatype::vector(small(rng), blocklen, stride, base);
        }
        case 2: {
            const Count nblocks = small(rng);
            std::vector<Count> blocklens, displs;
            Count at = 0;
            for (Count b = 0; b < nblocks; ++b) {
                const Count len = small(rng);
                blocklens.push_back(len);
                displs.push_back(at);
                at += len + small(rng);
            }
            return dt::Datatype::indexed(blocklens, displs, base);
        }
        case 3: {
            const Count blocklens[] = {1, 1};
            const Count displs[] = {0, base->ub() + 4};
            const dt::TypeRef types[] = {base, dt::type_int32()};
            return dt::Datatype::struct_(blocklens, displs, types);
        }
        case 4: {
            // Reversed blocks: pack order walks addresses downward.
            const Count bytes = base->extent() + small(rng) * 2;
            return dt::Datatype::hvector(small(rng) + 1, 1, -bytes, base);
        }
        default:
            return dt::Datatype::resized(base, base->lb(),
                                         base->extent() + 8 * small(rng));
    }
}

struct Harness {
    dt::TypeRef type;
    Count count = 0;
    Count anchor = 0;
    ByteVec buf; // pattern-filled user buffer
    [[nodiscard]] Count total() const { return type->size() * count; }
    [[nodiscard]] std::byte* base() { return buf.data() + anchor; }
};

Harness make_harness(unsigned seed, int depth) {
    std::mt19937 rng(seed * 6151u + 3u);
    Harness h;
    h.type = random_type(rng, depth);
    EXPECT_NE(h.type, nullptr);
    EXPECT_EQ(h.type->commit(), Status::success);
    h.count = 1 + static_cast<Count>(seed % 4);
    // hvector children can push true_lb negative in either direction;
    // anchor generously on both sides.
    const Count pad = h.type->true_extent() + 64;
    h.anchor = std::max<Count>(0, -h.type->true_lb()) + pad;
    const Count span = h.type->extent() * h.count + 2 * pad + h.anchor;
    h.buf = test::pattern_bytes(static_cast<std::size_t>(span), seed);
    return h;
}

class PlanVsGeneric : public ::testing::TestWithParam<int> {};

TEST_P(PlanVsGeneric, PackIsByteIdentical) {
    auto h = make_harness(static_cast<unsigned>(GetParam()), 3);
    ByteVec generic(static_cast<std::size_t>(h.total()));
    ByteVec plan(generic.size());
    Count used = 0;
    ASSERT_EQ(dt::Convertor::pack_all(h.type, h.base(), h.count, generic, &used,
                                      dt::PackMode::generic),
              Status::success);
    ASSERT_EQ(used, h.total());
    ASSERT_EQ(dt::Convertor::pack_all(h.type, h.base(), h.count, plan, &used,
                                      dt::PackMode::plan),
              Status::success);
    ASSERT_EQ(used, h.total());
    EXPECT_EQ(generic, plan);
}

TEST_P(PlanVsGeneric, UnpackIsByteIdentical) {
    auto h = make_harness(static_cast<unsigned>(GetParam()) + 1000u, 3);
    ByteVec packed(static_cast<std::size_t>(h.total()));
    Count used = 0;
    ASSERT_EQ(dt::Convertor::pack_all(h.type, h.base(), h.count, packed, &used,
                                      dt::PackMode::generic),
              Status::success);
    ByteVec via_generic(h.buf.size(), std::byte{0});
    ByteVec via_plan(h.buf.size(), std::byte{0});
    ASSERT_EQ(dt::Convertor::unpack_all(h.type, via_generic.data() + h.anchor,
                                        h.count, packed, dt::PackMode::generic),
              Status::success);
    ASSERT_EQ(dt::Convertor::unpack_all(h.type, via_plan.data() + h.anchor, h.count,
                                        packed, dt::PackMode::plan),
              Status::success);
    EXPECT_EQ(via_generic, via_plan);
}

TEST_P(PlanVsGeneric, RandomFragmentBoundariesMatchMonolithic) {
    auto h = make_harness(static_cast<unsigned>(GetParam()) + 2000u, 2);
    if (h.total() == 0) GTEST_SKIP();
    ByteVec whole(static_cast<std::size_t>(h.total()));
    Count used = 0;
    ASSERT_EQ(dt::Convertor::pack_all(h.type, h.base(), h.count, whole, &used,
                                      dt::PackMode::generic),
              Status::success);

    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 5u);
    std::uniform_int_distribution<Count> frag(1, std::max<Count>(1, h.total() / 3));
    ByteVec pieced(whole.size(), std::byte{0});
    dt::Convertor cv(h.type, h.base(), h.count, dt::PackMode::plan);
    Count at = 0;
    while (at < h.total()) {
        const Count want = std::min(frag(rng), h.total() - at);
        Count got = 0;
        ASSERT_EQ(cv.pack(MutBytes(pieced.data() + at,
                                   static_cast<std::size_t>(want)),
                          &got),
                  Status::success);
        ASSERT_EQ(got, want);
        at += got;
    }
    EXPECT_EQ(whole, pieced);

    // Scatter the stream back through random fragments + plan unpack.
    ByteVec out(h.buf.size(), std::byte{0});
    dt::Convertor ucv(h.type, out.data() + h.anchor, h.count, dt::PackMode::plan);
    at = 0;
    while (at < h.total()) {
        const Count want = std::min(frag(rng), h.total() - at);
        ASSERT_EQ(ucv.unpack(ConstBytes(whole.data() + at,
                                        static_cast<std::size_t>(want))),
                  Status::success);
        at += want;
    }
    ByteVec ref(h.buf.size(), std::byte{0});
    ASSERT_EQ(dt::Convertor::unpack_all(h.type, ref.data() + h.anchor, h.count,
                                        whole, dt::PackMode::generic),
              Status::success);
    EXPECT_EQ(ref, out);
}

TEST_P(PlanVsGeneric, ParallelMatchesSerial) {
    auto h = make_harness(static_cast<unsigned>(GetParam()) + 3000u, 3);
    ByteVec serial(static_cast<std::size_t>(h.total()));
    ByteVec par(serial.size());
    Count used = 0;
    ASSERT_EQ(dt::Convertor::pack_all(h.type, h.base(), h.count, serial, &used,
                                      dt::PackMode::generic),
              Status::success);
    ASSERT_EQ(dt::Convertor::pack_all(h.type, h.base(), h.count, par, &used,
                                      dt::PackMode::parallel),
              Status::success);
    EXPECT_EQ(serial, par);

    ByteVec out_serial(h.buf.size(), std::byte{0});
    ByteVec out_par(h.buf.size(), std::byte{0});
    ASSERT_EQ(dt::Convertor::unpack_all(h.type, out_serial.data() + h.anchor,
                                        h.count, serial, dt::PackMode::generic),
              Status::success);
    ASSERT_EQ(dt::Convertor::unpack_all(h.type, out_par.data() + h.anchor, h.count,
                                        serial, dt::PackMode::parallel),
              Status::success);
    EXPECT_EQ(out_serial, out_par);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanVsGeneric, ::testing::Range(0, 24));

// --- Edge cases ----------------------------------------------------------

TEST(PackPlan, ZeroCountAndEmptyBuffers) {
    const auto& t = dt::type_int32();
    ByteVec empty;
    Count used = 123;
    EXPECT_EQ(dt::Convertor::pack_all(t, nullptr, 0, empty, &used,
                                      dt::PackMode::plan),
              Status::success);
    EXPECT_EQ(used, 0);
    EXPECT_EQ(dt::Convertor::unpack_all(t, nullptr, 0, empty, dt::PackMode::plan),
              Status::success);
    EXPECT_EQ(dt::Convertor::pack_all(t, nullptr, 0, empty, &used,
                                      dt::PackMode::parallel),
              Status::success);
    EXPECT_EQ(used, 0);
}

TEST(PackPlan, CompilerFusesConstantStrideRuns) {
    // NAS_LU_y shape: constant-stride equal-length runs collapse to one
    // instruction that also fuses across elements.
    auto t = dt::Datatype::vector(16, 5, 20, dt::type_double());
    ASSERT_EQ(t->commit(), Status::success);
    const auto& plan = t->plan();
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->instrs.size(), 1u);
    EXPECT_EQ(plan->instrs[0].len, 40);
    EXPECT_EQ(plan->instrs[0].stride, 160);
    EXPECT_EQ(plan->instrs[0].reps, 16);
    EXPECT_EQ(plan->elem_size, t->size());
    // The raw vector's extent ends at the last block (2440 != 16*160), so
    // back-to-back elements do NOT continue the stride pattern...
    EXPECT_FALSE(plan->collapsible);
    // ...but resizing the extent to one full stride period makes the run
    // fuse across elements into a single kernel dispatch.
    auto padded = dt::Datatype::resized(t, 0, 16 * 160);
    ASSERT_EQ(padded->commit(), Status::success);
    ASSERT_NE(padded->plan(), nullptr);
    EXPECT_TRUE(padded->plan()->collapsible);
}

TEST(PackPlan, StructSimpleCompilesToTwoInstructions) {
    const auto t = core::struct_simple_dt();
    const auto& plan = t->plan();
    ASSERT_NE(plan, nullptr);
    ASSERT_EQ(plan->instrs.size(), 2u);
    EXPECT_EQ(plan->instrs[0].len, 12);
    EXPECT_EQ(plan->instrs[1].len, 8);
    EXPECT_FALSE(plan->collapsible);
}

TEST(PackPlan, LayoutFingerprintSeparatesLayoutsNotSignatures) {
    // Same leaf signature (8 doubles), different layouts.
    auto contig = dt::Datatype::contiguous(8, dt::type_double());
    auto strided = dt::Datatype::vector(8, 1, 2, dt::type_double());
    ASSERT_EQ(contig->commit(), Status::success);
    ASSERT_EQ(strided->commit(), Status::success);
    EXPECT_TRUE(dt::signature_equivalent(contig, 1, strided, 1));
    EXPECT_NE(dt::layout_fingerprint(contig), dt::layout_fingerprint(strided));
    // Same layout, independently built types: equal fingerprints.
    auto strided2 = dt::Datatype::vector(8, 1, 2, dt::type_double());
    ASSERT_EQ(strided2->commit(), Status::success);
    EXPECT_EQ(dt::layout_fingerprint(strided), dt::layout_fingerprint(strided2));
}

// --- Iovec coalescing ----------------------------------------------------

TEST(CoalesceIov, MergesOnlyExactAdjacency) {
    alignas(8) std::byte mem[64];
    std::vector<IovEntry> v = {
        {mem, 8},      {mem + 8, 8},  // adjacent: merge
        {mem + 24, 8},                // gap: keep
        {mem + 16, 8},                // out of order: keep
        {mem + 26, 4},                // gap after previous end: keep
    };
    const Count before = iov_total(v);
    const std::size_t removed = coalesce_iov(v);
    EXPECT_EQ(removed, 1u);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0].base, mem);
    EXPECT_EQ(v[0].len, 16);
    EXPECT_EQ(iov_total(v), before);
}

TEST(CoalesceIov, FromIndexLeavesPrefixAlone) {
    alignas(8) std::byte mem[64];
    std::vector<IovEntry> v = {{mem, 8}, {mem + 8, 8}, {mem + 16, 8}};
    EXPECT_EQ(coalesce_iov(v, 1), 1u);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0].len, 8);
    EXPECT_EQ(v[1].len, 16);
}

TEST(CoalesceIov, MilcFineRegionsCoalesceToCoarse) {
    auto kernel = ddtbench::make_kernel("MILC_su3_zd");
    ASSERT_NE(kernel, nullptr);
    kernel->resize(64 * 1024);
    const Count coarse = kernel->region_count();
    kernel->set_fine_regions(true);
    const Count fine = kernel->region_count();
    EXPECT_GT(fine, coarse);
    std::vector<IovEntry> entries(static_cast<std::size_t>(fine));
    kernel->regions(entries.data());
    const Count bytes = iov_total(entries);
    EXPECT_EQ(bytes, kernel->payload_bytes());
    coalesce_iov(entries);
    EXPECT_EQ(static_cast<Count>(entries.size()), coarse);
    EXPECT_EQ(iov_total(entries), bytes);
}

TEST(CoalesceIov, MilcFineRegionTransferDeliversIdenticalBytes) {
    auto send = ddtbench::make_kernel("MILC_su3_zd");
    auto recv = ddtbench::make_kernel("MILC_su3_zd");
    send->resize(64 * 1024);
    recv->resize(64 * 1024);
    send->fill(21);
    recv->clear();
    send->set_fine_regions(true);
    recv->set_fine_regions(true);
    const auto before = pack_stats().snapshot();
    p2p::Universe uni(2, test::test_params());
    const auto& type = ddtbench::kernel_region_type();
    auto rr = uni.comm(1).irecv_custom(recv.get(), 1, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send.get(), 1, type, 1, 1);
    EXPECT_EQ(rr.wait().status, Status::success);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_TRUE(recv->verify(*send));
    if (dt::pack_plan_enabled()) {
        const auto after = pack_stats().snapshot();
        EXPECT_GT(after.iov_entries_before - before.iov_entries_before,
                  after.iov_entries_after - before.iov_entries_after);
    }
}

// --- Descriptor cache ----------------------------------------------------

TEST(DescCache, ReusesContextForSameLayoutAndCount) {
    if (!dt::pack_plan_enabled()) GTEST_SKIP();
    p2p::desc_cache_clear();
    auto a = dt::Datatype::vector(8, 2, 4, dt::type_double());
    auto b = dt::Datatype::vector(8, 2, 4, dt::type_double()); // same layout
    ASSERT_EQ(a->commit(), Status::success);
    ASSERT_EQ(b->commit(), Status::success);
    double buf[64] = {};
    const auto before = pack_stats().snapshot();
    auto d1 = p2p::dt_send_desc(a, buf, 2);
    auto d2 = p2p::dt_send_desc(b, buf, 2); // hit: same layout + count
    auto d3 = p2p::dt_send_desc(a, buf, 3); // miss: different count
    const auto after = pack_stats().snapshot();
    EXPECT_EQ(p2p::desc_cache_size(), 2u);
    EXPECT_EQ(after.plan_cache_hits - before.plan_cache_hits, 1u);
    EXPECT_EQ(after.plan_cache_misses - before.plan_cache_misses, 2u);
    p2p::desc_cache_clear();
    EXPECT_EQ(p2p::desc_cache_size(), 0u);
}

TEST(DescCache, CachedDescriptorTransfersCorrectly) {
    // Two transfers with independently built same-layout types: the second
    // rides the cached context and must still deliver correct bytes.
    for (int round = 0; round < 2; ++round) {
        auto t = dt::Datatype::vector(64, 3, 5, dt::type_double());
        ASSERT_EQ(t->commit(), Status::success);
        const Count n = 64 * 5;
        std::vector<double> src(static_cast<std::size_t>(n)),
            dst(static_cast<std::size_t>(n), 0.0);
        for (std::size_t i = 0; i < src.size(); ++i)
            src[i] = static_cast<double>(i) + round * 1000.0;
        p2p::Universe uni(2, test::test_params());
        auto rr = uni.comm(1).irecv(dst.data(), 1, t, 0, 7);
        auto rs = uni.comm(0).isend(src.data(), 1, t, 1, 7);
        EXPECT_EQ(rr.wait().status, Status::success);
        EXPECT_EQ(rs.wait().status, Status::success);
        for (Count i = 0; i < 64; ++i) {
            for (Count j = 0; j < 3; ++j) {
                const auto idx = static_cast<std::size_t>(i * 5 + j);
                EXPECT_EQ(dst[idx], src[idx]) << idx;
            }
        }
    }
}

// --- Stats ---------------------------------------------------------------

TEST(PackStats, KernelBytesAccumulateOnPlanPath) {
    auto t = dt::Datatype::vector(32, 2, 4, dt::type_double());
    ASSERT_EQ(t->commit(), Status::success);
    ByteVec buf(static_cast<std::size_t>(t->extent()), std::byte{1});
    ByteVec packed(static_cast<std::size_t>(t->size()));
    Count used = 0;
    const auto before = pack_stats().snapshot();
    ASSERT_EQ(dt::Convertor::pack_all(t, buf.data(), 1, packed, &used,
                                      dt::PackMode::plan),
              Status::success);
    ASSERT_EQ(dt::Convertor::pack_all(t, buf.data(), 1, packed, &used,
                                      dt::PackMode::generic),
              Status::success);
    const auto after = pack_stats().snapshot();
    EXPECT_GE(after.kernel_bytes - before.kernel_bytes,
              static_cast<std::uint64_t>(t->size()));
    EXPECT_GE(after.generic_bytes - before.generic_bytes,
              static_cast<std::uint64_t>(t->size()));
}

} // namespace
} // namespace mpicd
