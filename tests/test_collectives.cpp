// Tests for the collectives extension (the paper's §VIII future work).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>

#include "core/builtin_serialize.hpp"
#include "p2p/coll/vcoll.hpp"
#include "p2p/collectives.hpp"
#include "p2p/runner.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"

namespace mpicd::p2p {
namespace {

class CollectiveWorld : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveWorld, BarrierCompletesEverywhere) {
    const int n = GetParam();
    std::atomic<int> done{0};
    run_world(n, [&](Communicator& comm) {
        EXPECT_EQ(barrier(comm), Status::success);
        EXPECT_EQ(barrier(comm), Status::success); // back-to-back
        ++done;
    }, test::test_params());
    EXPECT_EQ(done.load(), n);
}

TEST_P(CollectiveWorld, BcastBytesFromEveryRoot) {
    const int n = GetParam();
    for (int root = 0; root < n; ++root) {
        std::atomic<int> correct{0};
        run_world(n, [&](Communicator& comm) {
            ByteVec buf(4096);
            if (comm.rank() == root) buf = test::pattern_bytes(4096, 42);
            ASSERT_EQ(bcast_bytes(comm, buf.data(), 4096, root), Status::success);
            if (buf == test::pattern_bytes(4096, 42)) ++correct;
        }, test::test_params());
        EXPECT_EQ(correct.load(), n) << "root=" << root;
    }
}

TEST_P(CollectiveWorld, BcastLargeGoesRendezvous) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    const std::size_t big = 256 * 1024;
    run_world(n, [&](Communicator& comm) {
        ByteVec buf(big);
        if (comm.rank() == 0) buf = test::pattern_bytes(big, 7);
        ASSERT_EQ(bcast_bytes(comm, buf.data(), Count(big), 0), Status::success);
        if (buf == test::pattern_bytes(big, 7)) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, BcastDerivedDatatype) {
    const int n = GetParam();
    auto t = dt::Datatype::vector(64, 1, 2, dt::type_double());
    ASSERT_EQ(t->commit(), Status::success);
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        std::vector<double> grid(128, 0.0);
        if (comm.rank() == 0) {
            for (int i = 0; i < 128; i += 2) grid[static_cast<std::size_t>(i)] = i;
        }
        ASSERT_EQ(bcast(comm, grid.data(), 1, t, 0), Status::success);
        bool good = true;
        for (int i = 0; i < 128; ++i) {
            const double expect = i % 2 == 0 ? i : 0.0;
            if (grid[static_cast<std::size_t>(i)] != expect) good = false;
        }
        if (good) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, BcastCustomDatatype) {
    const int n = GetParam();
    using Sub = std::vector<std::int32_t>;
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        std::vector<Sub> obj(3);
        for (std::size_t i = 0; i < 3; ++i) obj[i].resize(200 * (i + 1));
        if (comm.rank() == 1) {
            for (std::size_t i = 0; i < 3; ++i) {
                std::iota(obj[i].begin(), obj[i].end(), int(i) * 1000);
            }
        }
        ASSERT_EQ(bcast_custom(comm, obj.data(), 3, core::custom_datatype_of<Sub>(),
                               /*root=*/1),
                  Status::success);
        bool good = true;
        for (std::size_t i = 0; i < 3; ++i) {
            if (obj[i][0] != int(i) * 1000 || obj[i].back() !=
                int(i) * 1000 + static_cast<int>(obj[i].size()) - 1)
                good = false;
        }
        if (good) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, GatherBytesAssemblesBlocks) {
    const int n = GetParam();
    std::atomic<bool> root_ok{false};
    run_world(n, [&](Communicator& comm) {
        std::int32_t mine = comm.rank() * 11;
        std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
        ASSERT_EQ(gather_bytes(comm, &mine, 4,
                               comm.rank() == 0 ? all.data() : nullptr, 0),
                  Status::success);
        if (comm.rank() == 0) {
            bool good = true;
            for (int i = 0; i < n; ++i) {
                if (all[static_cast<std::size_t>(i)] != i * 11) good = false;
            }
            root_ok = good;
        }
    }, test::test_params());
    EXPECT_TRUE(root_ok.load());
}

TEST_P(CollectiveWorld, AllreduceSumDoubles) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        double vals[3] = {1.0 * comm.rank(), 2.0, -1.0 * comm.rank()};
        ASSERT_EQ(allreduce(comm, vals, 3, ReduceOp::sum), Status::success);
        const double ranksum = n * (n - 1) / 2.0;
        if (vals[0] == ranksum && vals[1] == 2.0 * n && vals[2] == -ranksum)
            ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, AllreduceMinMaxInt64) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        std::int64_t mn = 100 + comm.rank();
        std::int64_t mx = 100 + comm.rank();
        ASSERT_EQ(allreduce(comm, &mn, 1, ReduceOp::min), Status::success);
        ASSERT_EQ(allreduce(comm, &mx, 1, ReduceOp::max), Status::success);
        if (mn == 100 && mx == 100 + n - 1) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

// Power-of-two and straggler world sizes.
INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveWorld, ::testing::Values(2, 3, 4, 5, 8));

TEST(Collectives, BcastUncommittedTypeRejected) {
    run_world(2, [&](Communicator& comm) {
        auto t = dt::Datatype::contiguous(4, dt::type_int32()); // not committed
        std::int32_t buf[4] = {};
        EXPECT_EQ(bcast(comm, buf, 1, t, 0), Status::err_not_committed);
    }, test::test_params());
}

// --- Regressions: the tag-space collision / aliasing bug class. -----------

// Pre-fix, the collectives rode user tags in the 0x7FFF0000 window: the
// double allreduce's internal bcast used 0x7FFF0006 — the int64
// allreduce's base tag — and any user message there was fair game for the
// collective's matcher (and vice versa). The reserved collective context
// (kCollContextBit) makes that structurally impossible: user traffic on
// exactly those tags must pass through untouched while allreduces of both
// element types run.
TEST(CollTagIsolation, UserTrafficOnHistoricalCollisionTags) {
    run_world(2, [&](Communicator& comm) {
        const int peer = 1 - comm.rank();
        const ByteVec expect = test::pattern_bytes(512, 77);
        ByteVec in(512);
        auto rr = comm.irecv_bytes(in.data(), 512, peer, 0x7FFF0006);
        double d[2] = {1.0 + comm.rank(), -2.0};
        std::int64_t q[2] = {10 + comm.rank(), 5};
        ASSERT_EQ(allreduce(comm, d, 2, ReduceOp::sum), Status::success);
        ASSERT_EQ(allreduce(comm, q, 2, ReduceOp::sum), Status::success);
        const ByteVec out = test::pattern_bytes(512, 77);
        ASSERT_EQ(comm.send_bytes(out.data(), 512, peer, 0x7FFF0006).status,
                  Status::success);
        EXPECT_EQ(rr.wait().status, Status::success);
        EXPECT_EQ(in, expect);
        EXPECT_EQ(d[0], 3.0);
        EXPECT_EQ(d[1], -4.0);
        EXPECT_EQ(q[0], 21);
        EXPECT_EQ(q[1], 10);
    }, test::test_params());
}

// Double and int64 allreduces in flight CONCURRENTLY: pre-fix their
// internal rounds shared the same user-tag window and cross-matched.
TEST_P(CollectiveWorld, InterleavedDoubleAndInt64Allreduces) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        double d = 1.5 * (comm.rank() + 1);
        std::int64_t q = 100 + comm.rank();
        coll::CollRequest reqs[2] = {
            coll::iallreduce(comm, &d, 1, ReduceOp::sum),
            coll::iallreduce(comm, &q, 1, ReduceOp::max),
        };
        ASSERT_EQ(coll::wait_all(reqs), Status::success);
        const double sum = 1.5 * n * (n + 1) / 2.0;
        if (d == sum && q == 100 + n - 1) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

// Pre-fix, barrier posted irecv and isend on the SAME token byte — a
// send/recv race on one address. Back-to-back barriers across many ranks
// exercise the separated-token dissemination rounds (also replayed under
// TSan by tools/run_faults_matrix.sh).
TEST(CollStress, BackToBackBarriers) {
    run_world(5, [&](Communicator& comm) {
        for (int i = 0; i < 25; ++i)
            ASSERT_EQ(barrier(comm), Status::success) << "iteration " << i;
    }, test::test_params());
}

// Pre-fix, gather_bytes memcpy'd the root's own block even when n == 0
// and send == nullptr (UB). Zero-byte and single-rank gathers must be
// clean no-ops.
TEST(CollEdge, GatherZeroBytesAndSingleRank) {
    run_world(3, [&](Communicator& comm) {
        EXPECT_EQ(gather_bytes(comm, nullptr, 0, nullptr, 0), Status::success);
    }, test::test_params());
    run_world(1, [&](Communicator& comm) {
        std::int32_t v = 7, out = -1;
        EXPECT_EQ(gather_bytes(comm, &v, 4, &out, 0), Status::success);
        EXPECT_EQ(out, 7);
        EXPECT_EQ(gather_bytes(comm, nullptr, 0, nullptr, 0), Status::success);
        EXPECT_EQ(bcast_bytes(comm, nullptr, 0, 0), Status::success);
        double d = 2.5;
        EXPECT_EQ(allreduce(comm, &d, 1, ReduceOp::sum), Status::success);
        EXPECT_EQ(d, 2.5);
        EXPECT_EQ(allreduce(comm, static_cast<double*>(nullptr), 0, ReduceOp::sum),
                  Status::success);
    }, test::test_params());
}

// The collective plane is reserved: a user-supplied communicator context
// carrying kCollContextBit is rejected at construction.
TEST(CollContext, UserContextWithCollBitRejected) {
    Universe uni(2, test::test_params());
    Communicator bad(uni, uni.worker(0), 0, 2,
                     static_cast<std::uint16_t>(kCollContextBit | 0x12));
    EXPECT_EQ(bad.status(), Status::err_arg);
    std::byte b{};
    EXPECT_EQ(bad.isend_bytes(&b, 1, 1, 0).wait().status, Status::err_arg);
}

// A rank failing LOCAL validation must not consume a tag block (the epoch
// counter stays in lockstep), so later collectives still pair up.
TEST(CollValidation, LocalErrorDoesNotDesyncTagEpoch) {
    run_world(2, [&](Communicator& comm) {
        double d = comm.rank();
        EXPECT_EQ(allreduce(comm, static_cast<double*>(nullptr), 3, ReduceOp::sum),
                  Status::err_arg);
        EXPECT_EQ(allreduce(comm, &d, -1, ReduceOp::sum), Status::err_arg);
        EXPECT_EQ(bcast_bytes(comm, &d, 8, 5), Status::err_arg); // root range
        ASSERT_EQ(allreduce(comm, &d, 1, ReduceOp::sum), Status::success);
        EXPECT_EQ(d, 1.0);
    }, test::test_params());
}

// --- Nonblocking overlap with point-to-point traffic. ---------------------

// A collective stays in flight while the same ranks run a p2p ring on
// tags inside the historical collision window; both complete and neither
// steals the other's messages.
TEST(CollOverlap, NonblockingCollectiveOverlapsP2P) {
    run_world(4, [&](Communicator& comm) {
        double d = comm.rank() + 1.0;
        auto cr = coll::iallreduce(comm, &d, 1, ReduceOp::sum);
        const int next = (comm.rank() + 1) % 4;
        const int prev = (comm.rank() + 3) % 4;
        for (int i = 0; i < 8; ++i) {
            std::int32_t out = comm.rank() * 100 + i, in = -1;
            auto rr = comm.irecv_bytes(&in, 4, prev, 0x7FFF0000 + i);
            auto rs = comm.isend_bytes(&out, 4, next, 0x7FFF0000 + i);
            EXPECT_EQ(rs.wait().status, Status::success);
            EXPECT_EQ(rr.wait().status, Status::success);
            EXPECT_EQ(in, prev * 100 + i);
        }
        EXPECT_EQ(cr.wait(), Status::success);
        EXPECT_DOUBLE_EQ(d, 10.0);
    }, test::test_params());
}

// --- v-variants. ----------------------------------------------------------

TEST_P(CollectiveWorld, GathervBytesVariableBlocks) {
    const int n = GetParam();
    std::atomic<bool> root_ok{false};
    run_world(n, [&](Communicator& comm) {
        const Count mine = comm.rank() + 1;
        const ByteVec send =
            test::pattern_bytes(static_cast<std::size_t>(mine),
                                static_cast<std::uint32_t>(comm.rank() + 1));
        std::vector<Count> counts(static_cast<std::size_t>(n));
        std::vector<Count> displs(static_cast<std::size_t>(n));
        Count off = 0;
        for (int i = 0; i < n; ++i) {
            counts[static_cast<std::size_t>(i)] = i + 1;
            displs[static_cast<std::size_t>(i)] = off;
            off += i + 1;
        }
        ByteVec recv(static_cast<std::size_t>(off));
        ASSERT_EQ(coll::gatherv_bytes(comm, send.data(), mine,
                                      comm.rank() == 0 ? recv.data() : nullptr,
                                      counts, displs, 0),
                  Status::success);
        if (comm.rank() == 0) {
            bool good = true;
            for (int i = 0; i < n; ++i) {
                const ByteVec expect = test::pattern_bytes(
                    static_cast<std::size_t>(i + 1),
                    static_cast<std::uint32_t>(i + 1));
                if (!std::equal(expect.begin(), expect.end(),
                                recv.begin() + displs[static_cast<std::size_t>(i)]))
                    good = false;
            }
            root_ok = good;
        }
    }, test::test_params());
    EXPECT_TRUE(root_ok.load());
}

TEST_P(CollectiveWorld, AllgathervBytesEveryRankAssembles) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        const Count mine = 3 * (comm.rank() + 1);
        const ByteVec send =
            test::pattern_bytes(static_cast<std::size_t>(mine),
                                static_cast<std::uint32_t>(comm.rank() + 50));
        std::vector<Count> counts(static_cast<std::size_t>(n));
        std::vector<Count> displs(static_cast<std::size_t>(n));
        Count off = 0;
        for (int i = 0; i < n; ++i) {
            counts[static_cast<std::size_t>(i)] = 3 * (i + 1);
            displs[static_cast<std::size_t>(i)] = off;
            off += 3 * (i + 1);
        }
        ByteVec recv(static_cast<std::size_t>(off));
        ASSERT_EQ(coll::allgatherv_bytes(comm, send.data(), mine, recv.data(),
                                         counts, displs),
                  Status::success);
        bool good = true;
        for (int i = 0; i < n; ++i) {
            const ByteVec expect = test::pattern_bytes(
                static_cast<std::size_t>(3 * (i + 1)),
                static_cast<std::uint32_t>(i + 50));
            if (!std::equal(expect.begin(), expect.end(),
                            recv.begin() + displs[static_cast<std::size_t>(i)]))
                good = false;
        }
        if (good) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, AlltoallvBytesExchangesBlocks) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        const int r = comm.rank();
        // Block r->p holds r+p+1 bytes seeded by (r, p); the count formula
        // is symmetric, so rank p's recvcounts[r] matches automatically.
        std::vector<Count> scounts(static_cast<std::size_t>(n));
        std::vector<Count> sdispls(static_cast<std::size_t>(n));
        Count soff = 0;
        for (int p = 0; p < n; ++p) {
            scounts[static_cast<std::size_t>(p)] = r + p + 1;
            sdispls[static_cast<std::size_t>(p)] = soff;
            soff += r + p + 1;
        }
        ByteVec send(static_cast<std::size_t>(soff));
        for (int p = 0; p < n; ++p) {
            const ByteVec blk = test::pattern_bytes(
                static_cast<std::size_t>(r + p + 1),
                static_cast<std::uint32_t>(r * 100 + p + 1));
            std::copy(blk.begin(), blk.end(),
                      send.begin() + sdispls[static_cast<std::size_t>(p)]);
        }
        ByteVec recv(static_cast<std::size_t>(soff)); // same total by symmetry
        ASSERT_EQ(coll::alltoallv_bytes(comm, send.data(), scounts, sdispls,
                                        recv.data(), scounts, sdispls),
                  Status::success);
        bool good = true;
        for (int p = 0; p < n; ++p) {
            const ByteVec expect = test::pattern_bytes(
                static_cast<std::size_t>(r + p + 1),
                static_cast<std::uint32_t>(p * 100 + r + 1));
            if (!std::equal(expect.begin(), expect.end(),
                            recv.begin() + sdispls[static_cast<std::size_t>(p)]))
                good = false;
        }
        if (good) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST(CollV, DerivedGathervAndAllgatherv) {
    const int n = 3;
    run_world(n, [&](Communicator& comm) {
        const int r = comm.rank();
        const Count mine = r + 1; // elements
        std::vector<std::int32_t> send(static_cast<std::size_t>(mine));
        for (Count i = 0; i < mine; ++i)
            send[static_cast<std::size_t>(i)] =
                r * 1000 + static_cast<std::int32_t>(i);
        std::vector<Count> counts = {1, 2, 3};
        std::vector<Count> displs = {0, 1, 3}; // element displacements
        const auto t = dt::type_int32();
        // gatherv to root 1.
        std::vector<std::int32_t> g(6, -1);
        ASSERT_EQ(coll::gatherv(comm, send.data(), mine, t,
                                r == 1 ? g.data() : nullptr, counts, displs, t,
                                /*root=*/1),
                  Status::success);
        if (r == 1) {
            const std::vector<std::int32_t> expect = {0, 1000, 1001,
                                                      2000, 2001, 2002};
            EXPECT_EQ(g, expect);
        }
        // allgatherv: every rank assembles the same vector.
        std::vector<std::int32_t> all(6, -1);
        ASSERT_EQ(coll::allgatherv(comm, send.data(), mine, t, all.data(),
                                   counts, displs, t),
                  Status::success);
        const std::vector<std::int32_t> expect = {0, 1000, 1001,
                                                  2000, 2001, 2002};
        EXPECT_EQ(all, expect);
    }, test::test_params());
}

TEST(CollV, DerivedAlltoallv) {
    const int n = 3;
    run_world(n, [&](Communicator& comm) {
        const int r = comm.rank();
        const auto t = dt::type_int32();
        // One element to every peer: element r*10+p goes r -> p.
        std::vector<Count> ones = {1, 1, 1};
        std::vector<Count> displs = {0, 1, 2};
        std::vector<std::int32_t> send(3), recv(3, -1);
        for (int p = 0; p < n; ++p)
            send[static_cast<std::size_t>(p)] = r * 10 + p;
        ASSERT_EQ(coll::alltoallv(comm, send.data(), ones, displs, t,
                                  recv.data(), ones, displs, t),
                  Status::success);
        for (int p = 0; p < n; ++p)
            EXPECT_EQ(recv[static_cast<std::size_t>(p)], p * 10 + r);
    }, test::test_params());
}

TEST(CollVCustom, GathervAndAllgathervCustomVariableSizes) {
    using Sub = std::vector<std::int32_t>;
    const int n = 3;
    run_world(n, [&](Communicator& comm) {
        const int r = comm.rank();
        Sub mine(static_cast<std::size_t>(100 * (r + 1)));
        std::iota(mine.begin(), mine.end(), r * 1000);
        // Pre-shaped receive objects: the receiver's own query callback
        // sets the expected packed size per source (§VI size contract).
        std::vector<Sub> recv(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            recv[static_cast<std::size_t>(i)].resize(
                static_cast<std::size_t>(100 * (i + 1)));
        std::vector<void*> ptrs;
        for (auto& s : recv) ptrs.push_back(&s);
        const auto check = [&](const char* what) {
            for (int i = 0; i < n; ++i) {
                const Sub& s = recv[static_cast<std::size_t>(i)];
                EXPECT_EQ(s.front(), i * 1000) << what;
                EXPECT_EQ(s.back(), i * 1000 + 100 * (i + 1) - 1) << what;
            }
        };
        ASSERT_EQ(coll::gatherv_custom(comm, &mine,
                                       core::custom_datatype_of<Sub>(),
                                       std::span<void* const>(ptrs), /*root=*/2),
                  Status::success);
        if (r == 2) check("gatherv_custom");
        for (auto& s : recv) std::fill(s.begin(), s.end(), -1);
        ASSERT_EQ(coll::allgatherv_custom(comm, &mine,
                                          core::custom_datatype_of<Sub>(),
                                          std::span<void* const>(ptrs)),
                  Status::success);
        check("allgatherv_custom");
    }, test::test_params());
}

TEST(CollVCustom, AlltoallvCustomVariableSizes) {
    using Sub = std::vector<std::int32_t>;
    const int n = 3;
    run_world(n, [&](Communicator& comm) {
        const int r = comm.rank();
        // r sends p a vector of 10*(r+p+1) elements starting at r*100+p.
        std::vector<Sub> send(static_cast<std::size_t>(n));
        std::vector<Sub> recv(static_cast<std::size_t>(n));
        std::vector<const void*> sptrs;
        std::vector<void*> rptrs;
        for (int p = 0; p < n; ++p) {
            auto& s = send[static_cast<std::size_t>(p)];
            s.resize(static_cast<std::size_t>(10 * (r + p + 1)));
            std::iota(s.begin(), s.end(), r * 100 + p);
            recv[static_cast<std::size_t>(p)].resize(
                static_cast<std::size_t>(10 * (r + p + 1)));
            sptrs.push_back(&s);
            rptrs.push_back(&recv[static_cast<std::size_t>(p)]);
        }
        ASSERT_EQ(coll::alltoallv_custom(comm,
                                         std::span<const void* const>(sptrs),
                                         std::span<void* const>(rptrs),
                                         core::custom_datatype_of<Sub>()),
                  Status::success);
        for (int p = 0; p < n; ++p) {
            const Sub& got = recv[static_cast<std::size_t>(p)];
            ASSERT_EQ(got.size(), static_cast<std::size_t>(10 * (r + p + 1)));
            EXPECT_EQ(got.front(), p * 100 + r);
        }
    }, test::test_params());
}

// --- Hierarchical algorithms on a two-level topology. ---------------------

netsim::WireParams two_level_params() {
    netsim::WireParams p = test::test_params();
    p.ranks_per_node = 2;
    p.inter_latency_us = 10.0;
    p.inter_bandwidth_Bpus = 1250.0; // 10x slower than the intra plane
    return p;
}

TEST(CollHier, CollectivesCorrectOnTwoLevelTopology) {
    const int n = 6; // three nodes of two
    const auto hier_before = coll::coll_counters().hier_selected.load();
    run_world(n, [&](Communicator& comm) {
        // bcast from a non-leader root.
        ByteVec buf(2048);
        if (comm.rank() == 3) buf = test::pattern_bytes(2048, 9);
        ASSERT_EQ(bcast_bytes(comm, buf.data(), 2048, 3), Status::success);
        EXPECT_EQ(buf, test::pattern_bytes(2048, 9));
        // gather to a member (non-leader) root.
        std::int32_t mine = comm.rank() * 3;
        std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
        ASSERT_EQ(gather_bytes(comm, &mine, 4,
                               comm.rank() == 5 ? all.data() : nullptr, 5),
                  Status::success);
        if (comm.rank() == 5)
            for (int i = 0; i < n; ++i)
                EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 3);
        // allreduce.
        double d = comm.rank() + 0.5;
        ASSERT_EQ(allreduce(comm, &d, 1, ReduceOp::sum), Status::success);
        EXPECT_DOUBLE_EQ(d, 18.0);
        // allgatherv (leader-aggregated superblocks).
        const Count mybytes = 4 * (comm.rank() + 1);
        const ByteVec send = test::pattern_bytes(
            static_cast<std::size_t>(mybytes),
            static_cast<std::uint32_t>(comm.rank() + 7));
        std::vector<Count> counts(static_cast<std::size_t>(n));
        std::vector<Count> displs(static_cast<std::size_t>(n));
        Count off = 0;
        for (int i = 0; i < n; ++i) {
            counts[static_cast<std::size_t>(i)] = 4 * (i + 1);
            displs[static_cast<std::size_t>(i)] = off;
            off += 4 * (i + 1);
        }
        ByteVec recv(static_cast<std::size_t>(off));
        ASSERT_EQ(coll::allgatherv_bytes(comm, send.data(), mybytes, recv.data(),
                                         counts, displs),
                  Status::success);
        for (int i = 0; i < n; ++i) {
            const ByteVec expect = test::pattern_bytes(
                static_cast<std::size_t>(4 * (i + 1)),
                static_cast<std::uint32_t>(i + 7));
            EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                                   recv.begin() +
                                       displs[static_cast<std::size_t>(i)]))
                << "source rank " << i;
        }
    }, two_level_params());
    // auto-selection must have picked the hierarchical family here.
    EXPECT_GT(coll::coll_counters().hier_selected.load(), hier_before);
}

// Flat and hierarchical algorithms must be observationally identical;
// force each in turn on the same two-level world (ragged last node).
TEST(CollHier, ForcedFlatAndHierAgree) {
    for (const auto algo : {coll::Algo::flat, coll::Algo::hier}) {
        coll::set_algo_override(algo);
        const int n = 5; // nodes {0,1}, {2,3}, {4} — ragged
        run_world(n, [&](Communicator& comm) {
            ByteVec buf(256);
            if (comm.rank() == 0) buf = test::pattern_bytes(256, 4);
            ASSERT_EQ(bcast_bytes(comm, buf.data(), 256, 0), Status::success);
            EXPECT_EQ(buf, test::pattern_bytes(256, 4));
            std::int64_t v = comm.rank();
            ASSERT_EQ(allreduce(comm, &v, 1, ReduceOp::sum), Status::success);
            EXPECT_EQ(v, 10);
            std::int32_t mine = comm.rank() + 1;
            std::vector<std::int32_t> g(static_cast<std::size_t>(n), -1);
            ASSERT_EQ(gather_bytes(comm, &mine, 4,
                                   comm.rank() == 2 ? g.data() : nullptr, 2),
                      Status::success);
            if (comm.rank() == 2)
                for (int i = 0; i < n; ++i)
                    EXPECT_EQ(g[static_cast<std::size_t>(i)], i + 1);
        }, two_level_params());
    }
    coll::set_algo_override(std::nullopt);
}

} // namespace
} // namespace mpicd::p2p
