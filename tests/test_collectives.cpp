// Tests for the collectives extension (the paper's §VIII future work).
#include <gtest/gtest.h>

#include <atomic>

#include "core/builtin_serialize.hpp"
#include "p2p/collectives.hpp"
#include "p2p/runner.hpp"
#include "test_util.hpp"

namespace mpicd::p2p {
namespace {

class CollectiveWorld : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveWorld, BarrierCompletesEverywhere) {
    const int n = GetParam();
    std::atomic<int> done{0};
    run_world(n, [&](Communicator& comm) {
        EXPECT_EQ(barrier(comm), Status::success);
        EXPECT_EQ(barrier(comm, 0x500), Status::success); // back-to-back
        ++done;
    }, test::test_params());
    EXPECT_EQ(done.load(), n);
}

TEST_P(CollectiveWorld, BcastBytesFromEveryRoot) {
    const int n = GetParam();
    for (int root = 0; root < n; ++root) {
        std::atomic<int> correct{0};
        run_world(n, [&](Communicator& comm) {
            ByteVec buf(4096);
            if (comm.rank() == root) buf = test::pattern_bytes(4096, 42);
            ASSERT_EQ(bcast_bytes(comm, buf.data(), 4096, root), Status::success);
            if (buf == test::pattern_bytes(4096, 42)) ++correct;
        }, test::test_params());
        EXPECT_EQ(correct.load(), n) << "root=" << root;
    }
}

TEST_P(CollectiveWorld, BcastLargeGoesRendezvous) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    const std::size_t big = 256 * 1024;
    run_world(n, [&](Communicator& comm) {
        ByteVec buf(big);
        if (comm.rank() == 0) buf = test::pattern_bytes(big, 7);
        ASSERT_EQ(bcast_bytes(comm, buf.data(), Count(big), 0), Status::success);
        if (buf == test::pattern_bytes(big, 7)) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, BcastDerivedDatatype) {
    const int n = GetParam();
    auto t = dt::Datatype::vector(64, 1, 2, dt::type_double());
    ASSERT_EQ(t->commit(), Status::success);
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        std::vector<double> grid(128, 0.0);
        if (comm.rank() == 0) {
            for (int i = 0; i < 128; i += 2) grid[static_cast<std::size_t>(i)] = i;
        }
        ASSERT_EQ(bcast(comm, grid.data(), 1, t, 0), Status::success);
        bool good = true;
        for (int i = 0; i < 128; ++i) {
            const double expect = i % 2 == 0 ? i : 0.0;
            if (grid[static_cast<std::size_t>(i)] != expect) good = false;
        }
        if (good) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, BcastCustomDatatype) {
    const int n = GetParam();
    using Sub = std::vector<std::int32_t>;
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        std::vector<Sub> obj(3);
        for (std::size_t i = 0; i < 3; ++i) obj[i].resize(200 * (i + 1));
        if (comm.rank() == 1) {
            for (std::size_t i = 0; i < 3; ++i) {
                std::iota(obj[i].begin(), obj[i].end(), int(i) * 1000);
            }
        }
        ASSERT_EQ(bcast_custom(comm, obj.data(), 3, core::custom_datatype_of<Sub>(),
                               /*root=*/1),
                  Status::success);
        bool good = true;
        for (std::size_t i = 0; i < 3; ++i) {
            if (obj[i][0] != int(i) * 1000 || obj[i].back() !=
                int(i) * 1000 + static_cast<int>(obj[i].size()) - 1)
                good = false;
        }
        if (good) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, GatherBytesAssemblesBlocks) {
    const int n = GetParam();
    std::atomic<bool> root_ok{false};
    run_world(n, [&](Communicator& comm) {
        std::int32_t mine = comm.rank() * 11;
        std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
        ASSERT_EQ(gather_bytes(comm, &mine, 4,
                               comm.rank() == 0 ? all.data() : nullptr, 0),
                  Status::success);
        if (comm.rank() == 0) {
            bool good = true;
            for (int i = 0; i < n; ++i) {
                if (all[static_cast<std::size_t>(i)] != i * 11) good = false;
            }
            root_ok = good;
        }
    }, test::test_params());
    EXPECT_TRUE(root_ok.load());
}

TEST_P(CollectiveWorld, AllreduceSumDoubles) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        double vals[3] = {1.0 * comm.rank(), 2.0, -1.0 * comm.rank()};
        ASSERT_EQ(allreduce(comm, vals, 3, ReduceOp::sum), Status::success);
        const double ranksum = n * (n - 1) / 2.0;
        if (vals[0] == ranksum && vals[1] == 2.0 * n && vals[2] == -ranksum)
            ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

TEST_P(CollectiveWorld, AllreduceMinMaxInt64) {
    const int n = GetParam();
    std::atomic<int> correct{0};
    run_world(n, [&](Communicator& comm) {
        std::int64_t mn = 100 + comm.rank();
        std::int64_t mx = 100 + comm.rank();
        ASSERT_EQ(allreduce(comm, &mn, 1, ReduceOp::min), Status::success);
        ASSERT_EQ(allreduce(comm, &mx, 1, ReduceOp::max), Status::success);
        if (mn == 100 && mx == 100 + n - 1) ++correct;
    }, test::test_params());
    EXPECT_EQ(correct.load(), n);
}

// Power-of-two and straggler world sizes.
INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveWorld, ::testing::Values(2, 3, 4, 5, 8));

TEST(Collectives, BcastUncommittedTypeRejected) {
    run_world(2, [&](Communicator& comm) {
        auto t = dt::Datatype::contiguous(4, dt::type_int32()); // not committed
        std::int32_t buf[4] = {};
        EXPECT_EQ(bcast(comm, buf, 1, t, 0), Status::err_not_committed);
    }, test::test_params());
}

} // namespace
} // namespace mpicd::p2p
