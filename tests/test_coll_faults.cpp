// Collective fault tolerance: every collective over a lossy fabric.
//
// With random faults armed the reliable-delivery protocol (CRC + ack +
// retransmit; docs/FAULTS.md) is active underneath every collective
// round. The contract asserted here is delivery-or-timeout: each rank's
// collective either completes with the correct result or fails with
// Status::timeout — never a hang (the test completing IS the no-hang
// assertion; request waits would abort the process otherwise) and never
// silent corruption. tools/run_faults_matrix.sh replays this file in its
// lossy and sanitizer legs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "base/flight_recorder.hpp"
#include "base/trace.hpp"
#include "core/builtin_serialize.hpp"
#include "netsim/fault.hpp"
#include "p2p/coll/vcoll.hpp"
#include "p2p/collectives.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"

namespace mpicd::p2p {
namespace {

// Like run_world, but with an explicit fault configuration (run_world
// takes faults from the environment only).
void run_world_faults(int nranks, const netsim::WireParams& params,
                      const netsim::FaultConfig& faults,
                      const std::function<void(Communicator&)>& fn) {
    Universe uni(nranks, params, faults);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
        threads.emplace_back([&uni, &fn, r] { fn(uni.comm(r)); });
    for (auto& t : threads) t.join();
}

// Small retransmit budget so injected losses resolve (either way) in a
// handful of virtual milliseconds.
netsim::WireParams lossy_params() {
    netsim::WireParams p = mpicd::test::test_params();
    p.rto_us = 20.0;
    p.max_retries = 6;
    return p;
}

netsim::FaultConfig lossy_faults(std::uint64_t seed) {
    netsim::FaultConfig f;
    f.seed = seed;
    f.drop = 0.01;
    f.dup = 0.01;
    f.reorder = 0.01;
    f.corrupt = 0.01;
    f.delay = 0.05;
    f.delay_max_us = 10.0;
    return f;
}

void expect_delivered_or_timeout(Status st, const char* what) {
    EXPECT_TRUE(st == Status::success || st == Status::timeout)
        << what << ": " << to_cstring(st);
}

constexpr std::uint64_t kSeeds[] = {1, 42, 999983};

TEST(CollFaults, BarrierUnderLoss) {
    for (const auto seed : kSeeds) {
        run_world_faults(4, lossy_params(), lossy_faults(seed),
                         [&](Communicator& comm) {
            for (int i = 0; i < 5; ++i)
                expect_delivered_or_timeout(barrier(comm), "barrier");
        });
    }
}

TEST(CollFaults, BcastEagerAndRendezvousUnderLoss) {
    for (const auto seed : kSeeds) {
        run_world_faults(4, lossy_params(), lossy_faults(seed),
                         [&](Communicator& comm) {
            // Eager-sized payload.
            ByteVec small(1024);
            if (comm.rank() == 0) small = mpicd::test::pattern_bytes(1024, 3);
            const Status s1 = bcast_bytes(comm, small.data(), 1024, 0);
            expect_delivered_or_timeout(s1, "bcast eager");
            if (ok(s1)) EXPECT_EQ(small, mpicd::test::pattern_bytes(1024, 3));
            // Rendezvous-sized payload.
            const std::size_t big = 128 * 1024;
            ByteVec large(big);
            if (comm.rank() == 1) large = mpicd::test::pattern_bytes(big, 5);
            const Status s2 = bcast_bytes(comm, large.data(), Count(big), 1);
            expect_delivered_or_timeout(s2, "bcast rndv");
            if (ok(s2)) EXPECT_EQ(large, mpicd::test::pattern_bytes(big, 5));
        });
    }
}

TEST(CollFaults, GatherUnderLoss) {
    for (const auto seed : kSeeds) {
        run_world_faults(4, lossy_params(), lossy_faults(seed),
                         [&](Communicator& comm) {
            std::int64_t mine = 1000 + comm.rank();
            std::vector<std::int64_t> all(4, -1);
            const Status st = gather_bytes(
                comm, &mine, 8, comm.rank() == 0 ? all.data() : nullptr, 0);
            expect_delivered_or_timeout(st, "gather");
            if (ok(st) && comm.rank() == 0)
                for (int i = 0; i < 4; ++i)
                    EXPECT_EQ(all[static_cast<std::size_t>(i)], 1000 + i);
        });
    }
}

TEST(CollFaults, AllreduceBothTypesUnderLoss) {
    for (const auto seed : kSeeds) {
        run_world_faults(4, lossy_params(), lossy_faults(seed),
                         [&](Communicator& comm) {
            double d = comm.rank() + 1.0;
            const Status s1 = allreduce(comm, &d, 1, ReduceOp::sum);
            expect_delivered_or_timeout(s1, "allreduce double");
            if (ok(s1)) EXPECT_DOUBLE_EQ(d, 10.0);
            std::int64_t q = 7 * (comm.rank() + 1);
            const Status s2 = allreduce(comm, &q, 1, ReduceOp::max);
            expect_delivered_or_timeout(s2, "allreduce int64");
            if (ok(s2)) EXPECT_EQ(q, 28);
        });
    }
}

TEST(CollFaults, VVariantsUnderLoss) {
    for (const auto seed : kSeeds) {
        run_world_faults(4, lossy_params(), lossy_faults(seed),
                         [&](Communicator& comm) {
            const int n = 4, r = comm.rank();
            const Count mine = 8 * (r + 1);
            const ByteVec send = mpicd::test::pattern_bytes(
                static_cast<std::size_t>(mine),
                static_cast<std::uint32_t>(r + 30));
            std::vector<Count> counts(4), displs(4);
            Count off = 0;
            for (int i = 0; i < n; ++i) {
                counts[static_cast<std::size_t>(i)] = 8 * (i + 1);
                displs[static_cast<std::size_t>(i)] = off;
                off += 8 * (i + 1);
            }
            ByteVec recv(static_cast<std::size_t>(off));
            const Status s1 = coll::allgatherv_bytes(comm, send.data(), mine,
                                                     recv.data(), counts, displs);
            expect_delivered_or_timeout(s1, "allgatherv");
            if (ok(s1)) {
                for (int i = 0; i < n; ++i) {
                    const ByteVec expect = mpicd::test::pattern_bytes(
                        static_cast<std::size_t>(8 * (i + 1)),
                        static_cast<std::uint32_t>(i + 30));
                    EXPECT_TRUE(std::equal(
                        expect.begin(), expect.end(),
                        recv.begin() + displs[static_cast<std::size_t>(i)]));
                }
            }
            // alltoallv: one 16-byte block to every peer.
            std::vector<Count> ones(4, 16), adispls = {0, 16, 32, 48};
            ByteVec a2asend(64), a2arecv(64);
            for (int p = 0; p < n; ++p) {
                const ByteVec blk = mpicd::test::pattern_bytes(
                    16, static_cast<std::uint32_t>(r * 10 + p));
                std::copy(blk.begin(), blk.end(),
                          a2asend.begin() +
                              adispls[static_cast<std::size_t>(p)]);
            }
            const Status s2 = coll::alltoallv_bytes(comm, a2asend.data(), ones,
                                                    adispls, a2arecv.data(),
                                                    ones, adispls);
            expect_delivered_or_timeout(s2, "alltoallv");
            if (ok(s2)) {
                for (int p = 0; p < n; ++p) {
                    const ByteVec expect = mpicd::test::pattern_bytes(
                        16, static_cast<std::uint32_t>(p * 10 + r));
                    EXPECT_TRUE(std::equal(
                        expect.begin(), expect.end(),
                        a2arecv.begin() +
                            adispls[static_cast<std::size_t>(p)]));
                }
            }
        });
    }
}

TEST(CollFaults, CustomBcastUnderLoss) {
    using Sub = std::vector<std::int32_t>;
    for (const auto seed : kSeeds) {
        run_world_faults(3, lossy_params(), lossy_faults(seed),
                         [&](Communicator& comm) {
            std::vector<Sub> obj(2);
            obj[0].resize(300);
            obj[1].resize(500);
            if (comm.rank() == 0) {
                std::iota(obj[0].begin(), obj[0].end(), 10);
                std::iota(obj[1].begin(), obj[1].end(), 9000);
            }
            const Status st = bcast_custom(comm, obj.data(), 2,
                                           core::custom_datatype_of<Sub>(), 0);
            expect_delivered_or_timeout(st, "bcast_custom");
            if (ok(st)) {
                EXPECT_EQ(obj[0].front(), 10);
                EXPECT_EQ(obj[0].back(), 10 + 299);
                EXPECT_EQ(obj[1].front(), 9000);
                EXPECT_EQ(obj[1].back(), 9000 + 499);
            }
        });
    }
}

// Heavy loss with a tiny retry budget: ranks are EXPECTED to time out;
// the assertion is that every rank returns (delivery-or-timeout, never a
// hang) and that the fault injector actually fired.
TEST(CollFaults, HeavyLossTimesOutCleanly) {
    netsim::WireParams p = lossy_params();
    p.rto_us = 10.0;
    p.max_retries = 3;
    netsim::FaultConfig f;
    f.seed = 7;
    f.drop = 0.30;
    std::atomic<int> returned{0};
    Universe uni(3, p, f);
    std::vector<std::thread> threads;
    for (int r = 0; r < 3; ++r) {
        threads.emplace_back([&uni, &returned, r] {
            auto& comm = uni.comm(r);
            double d = r;
            expect_delivered_or_timeout(allreduce(comm, &d, 1, ReduceOp::sum),
                                        "heavy-loss allreduce");
            expect_delivered_or_timeout(barrier(comm), "heavy-loss barrier");
            ++returned;
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(returned.load(), 3);
    EXPECT_GT(uni.fabric().faults().counters().dropped, 0u);
}

// A wedged collective must leave evidence. With the flight recorder
// armed, a loss-watchdog expiry triggers a dump carrying the live
// CollOp table — op id, family, algorithm, rounds and per-peer
// posted/completed step counts — so the dump names the step that never
// completed. force_reliable runs the protocol with zero injected loss:
// the watchdog arms (reliable() is true) but nothing is ever dropped,
// so the expiry comes purely from rank 0 never entering the barrier
// the other two ranks join.
TEST(CollFaults, WatchdogTimeoutTriggersFlightDump) {
    netsim::FaultConfig f;
    f.force_reliable = true;
    const std::string path = "mpicd_coll_flight.txt";
    std::remove(path.c_str());
    flight::set_enabled(true, path);
    std::atomic<int> timeouts{0};
    {
        Universe uni(3, lossy_params(), f);
        std::vector<std::thread> threads;
        for (int r = 1; r <= 2; ++r) {
            threads.emplace_back([&uni, &timeouts, r] {
                if (barrier(uni.comm(r)) == Status::timeout) ++timeouts;
            });
        }
        for (auto& t : threads) t.join();
    }
    flight::set_enabled(false);
    trace::set_enabled(false);

    EXPECT_EQ(timeouts.load(), 2);
    std::string dump;
    if (std::FILE* file = std::fopen(path.c_str(), "rb")) {
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
            dump.append(buf, n);
        std::fclose(file);
    }
    EXPECT_NE(dump.find("reason: coll_watchdog_expired"), std::string::npos);
    EXPECT_NE(dump.find("source: coll.ops"), std::string::npos);
    EXPECT_NE(dump.find("live collective ops:"), std::string::npos);
    EXPECT_NE(dump.find("fam=barrier"), std::string::npos);
    EXPECT_NE(dump.find("peer="), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace mpicd::p2p
