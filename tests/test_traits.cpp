// Tests for the CustomSerialize<T> trait layer and the paper's benchmark
// types (Listings 6–8).
#include <gtest/gtest.h>

#include "core/paper_types.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"

namespace mpicd::core {
namespace {

TEST(PaperTypes, LayoutsMatchTheListings) {
    // struct_vec / struct_simple have a 4-byte gap between c and d.
    EXPECT_EQ(offsetof(StructSimple, d), 16u);
    EXPECT_EQ(offsetof(StructVec, d), 16u);
    EXPECT_EQ(offsetof(StructVec, data), 24u);
    // struct_simple_no_gap is gap-free.
    EXPECT_EQ(offsetof(StructSimpleNoGap, c), 8u);
    EXPECT_EQ(sizeof(StructSimpleNoGap), 16u);
}

TEST(PaperTypes, DerivedDatatypesDescribeTheStructs) {
    auto t = struct_simple_dt();
    EXPECT_EQ(t->size(), kScalarPack);
    EXPECT_EQ(t->extent(), static_cast<Count>(sizeof(StructSimple)));
    EXPECT_FALSE(t->is_contiguous());

    auto ng = struct_simple_no_gap_dt();
    EXPECT_EQ(ng->size(), 16);
    EXPECT_TRUE(ng->is_contiguous());

    auto sv = struct_vec_dt();
    EXPECT_EQ(sv->size(), kScalarPack + 4 * Count(kStructVecData));
    EXPECT_EQ(sv->extent(), static_cast<Count>(sizeof(StructVec)));
}

TEST(Traits, StructSimpleRoundTrip) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructSimple>();
    std::vector<StructSimple> send(100), recv(100);
    for (int i = 0; i < 100; ++i)
        send[static_cast<std::size_t>(i)] = {i, i * 2, i * 3, i * 0.5};
    auto rr = uni.comm(1).irecv_custom(recv.data(), 100, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send.data(), 100, type, 1, 1);
    EXPECT_EQ(rs.wait().status, Status::success);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, 100 * kScalarPack); // gap not transferred
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].a, i);
        EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(i)].d, i * 0.5);
    }
}

TEST(Traits, StructVecRoundTripUsesRegions) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructVec>();
    std::vector<StructVec> send(4), recv(4);
    for (int i = 0; i < 4; ++i) {
        auto& s = send[static_cast<std::size_t>(i)];
        s.a = i;
        s.b = -i;
        s.c = i * 7;
        s.d = i * 1.25;
        for (std::size_t k = 0; k < kStructVecData; ++k)
            s.data[k] = static_cast<std::int32_t>(k + static_cast<std::size_t>(i));
    }
    auto rr = uni.comm(1).irecv_custom(recv.data(), 4, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send.data(), 4, type, 1, 1);
    EXPECT_EQ(rs.wait().status, Status::success);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, 4 * (kScalarPack + 4 * Count(kStructVecData)));
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].c, i * 7);
        EXPECT_EQ(std::memcmp(recv[static_cast<std::size_t>(i)].data,
                              send[static_cast<std::size_t>(i)].data,
                              sizeof(send[0].data)),
                  0);
    }
}

TEST(Traits, StructSimpleNoGapIsPureRegion) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructSimpleNoGap>();
    std::vector<StructSimpleNoGap> send(50), recv(50);
    for (int i = 0; i < 50; ++i) send[static_cast<std::size_t>(i)] = {i, i + 1, i * 0.5};
    auto rr = uni.comm(1).irecv_custom(recv.data(), 50, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send.data(), 50, type, 1, 1);
    EXPECT_EQ(rs.wait().status, Status::success);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, 50 * Count(sizeof(StructSimpleNoGap)));
    EXPECT_EQ(std::memcmp(recv.data(), send.data(), 50 * sizeof(StructSimpleNoGap)), 0);
}

TEST(Traits, DoubleVectorRoundTrip) {
    // The paper's double-vector type: count sub-vectors, lengths in-band,
    // payloads as regions.
    p2p::Universe uni(2, test::test_params());
    using Sub = std::vector<std::int32_t>;
    const auto& type = custom_datatype_of<Sub>();
    std::vector<Sub> send(8), recv(8);
    for (std::size_t i = 0; i < 8; ++i) {
        send[i] = test::iota_vec<std::int32_t>(64 * (i + 1), int(i));
        recv[i].resize(send[i].size()); // receiver knows the sizes (paper §VI)
    }
    auto rr = uni.comm(1).irecv_custom(recv.data(), 8, type, 0, 2);
    auto rs = uni.comm(0).isend_custom(send.data(), 8, type, 1, 2);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(rr.wait().status, Status::success);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(send[i], recv[i]);
}

TEST(Traits, DoubleVectorSizeMismatchIsUnpackError) {
    p2p::Universe uni(2, test::test_params());
    using Sub = std::vector<std::int32_t>;
    const auto& type = custom_datatype_of<Sub>();
    std::vector<Sub> send(2), recv(2);
    send[0] = test::iota_vec<std::int32_t>(32);
    send[1] = test::iota_vec<std::int32_t>(32);
    recv[0].resize(32);
    recv[1].resize(16); // wrong pre-size: regions cannot line up
    auto rr = uni.comm(1).irecv_custom(recv.data(), 2, type, 0, 2);
    auto rs = uni.comm(0).isend_custom(send.data(), 2, type, 1, 2);
    (void)rs.wait();
    const auto st = rr.wait();
    EXPECT_NE(st.status, Status::success);
}

TEST(Traits, CachedDatatypeIsSingleton) {
    const auto& a = custom_datatype_of<StructSimple>();
    const auto& b = custom_datatype_of<StructSimple>();
    EXPECT_EQ(&a, &b);
}

TEST(Traits, LargeCountRendezvous) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructSimple>();
    const int n = 4096; // 4096 * 20 B = 80 KiB packed > eager threshold
    std::vector<StructSimple> send(n), recv(n);
    for (int i = 0; i < n; ++i)
        send[static_cast<std::size_t>(i)] = {i, i ^ 0x55, -i, i * 0.125};
    auto rr = uni.comm(1).irecv_custom(recv.data(), n, type, 0, 3);
    auto rs = uni.comm(0).isend_custom(send.data(), n, type, 1, 3);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(rr.wait().status, Status::success);
    for (int i = 0; i < n; i += 997) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].b, i ^ 0x55);
        EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(i)].d, i * 0.125);
    }
}

} // namespace
} // namespace mpicd::core
