// Tests for the CustomSerialize<T> trait layer, the paper's benchmark
// types (Listings 6–8), and the zero-serialization fast path: wire
// classification pins, the concepts-based mpicd::send/recv API, and the
// MPICD_FAST_PATH=0 differential suite (docs/API.md §7).
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <utility>

#include "base/metrics.hpp"
#include "core/paper_types.hpp"
#include "netsim/fault.hpp"
#include "p2p/api.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"
#include "ucx/wire.hpp"

namespace mpicd::core {
namespace {

TEST(PaperTypes, LayoutsMatchTheListings) {
    // struct_vec / struct_simple have a 4-byte gap between c and d.
    EXPECT_EQ(offsetof(StructSimple, d), 16u);
    EXPECT_EQ(offsetof(StructVec, d), 16u);
    EXPECT_EQ(offsetof(StructVec, data), 24u);
    // struct_simple_no_gap is gap-free.
    EXPECT_EQ(offsetof(StructSimpleNoGap, c), 8u);
    EXPECT_EQ(sizeof(StructSimpleNoGap), 16u);
}

TEST(PaperTypes, DerivedDatatypesDescribeTheStructs) {
    auto t = struct_simple_dt();
    EXPECT_EQ(t->size(), kScalarPack);
    EXPECT_EQ(t->extent(), static_cast<Count>(sizeof(StructSimple)));
    EXPECT_FALSE(t->is_contiguous());

    auto ng = struct_simple_no_gap_dt();
    EXPECT_EQ(ng->size(), 16);
    EXPECT_TRUE(ng->is_contiguous());

    auto sv = struct_vec_dt();
    EXPECT_EQ(sv->size(), kScalarPack + 4 * Count(kStructVecData));
    EXPECT_EQ(sv->extent(), static_cast<Count>(sizeof(StructVec)));
}

TEST(Traits, StructSimpleRoundTrip) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructSimple>();
    std::vector<StructSimple> send(100), recv(100);
    for (int i = 0; i < 100; ++i)
        send[static_cast<std::size_t>(i)] = {i, i * 2, i * 3, i * 0.5};
    auto rr = uni.comm(1).irecv_custom(recv.data(), 100, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send.data(), 100, type, 1, 1);
    EXPECT_EQ(rs.wait().status, Status::success);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, 100 * kScalarPack); // gap not transferred
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].a, i);
        EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(i)].d, i * 0.5);
    }
}

TEST(Traits, StructVecRoundTripUsesRegions) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructVec>();
    std::vector<StructVec> send(4), recv(4);
    for (int i = 0; i < 4; ++i) {
        auto& s = send[static_cast<std::size_t>(i)];
        s.a = i;
        s.b = -i;
        s.c = i * 7;
        s.d = i * 1.25;
        for (std::size_t k = 0; k < kStructVecData; ++k)
            s.data[k] = static_cast<std::int32_t>(k + static_cast<std::size_t>(i));
    }
    auto rr = uni.comm(1).irecv_custom(recv.data(), 4, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send.data(), 4, type, 1, 1);
    EXPECT_EQ(rs.wait().status, Status::success);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, 4 * (kScalarPack + 4 * Count(kStructVecData)));
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].c, i * 7);
        EXPECT_EQ(std::memcmp(recv[static_cast<std::size_t>(i)].data,
                              send[static_cast<std::size_t>(i)].data,
                              sizeof(send[0].data)),
                  0);
    }
}

TEST(Traits, StructSimpleNoGapIsPureRegion) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructSimpleNoGap>();
    std::vector<StructSimpleNoGap> send(50), recv(50);
    for (int i = 0; i < 50; ++i) send[static_cast<std::size_t>(i)] = {i, i + 1, i * 0.5};
    auto rr = uni.comm(1).irecv_custom(recv.data(), 50, type, 0, 1);
    auto rs = uni.comm(0).isend_custom(send.data(), 50, type, 1, 1);
    EXPECT_EQ(rs.wait().status, Status::success);
    const auto st = rr.wait();
    EXPECT_EQ(st.status, Status::success);
    EXPECT_EQ(st.bytes, 50 * Count(sizeof(StructSimpleNoGap)));
    EXPECT_EQ(std::memcmp(recv.data(), send.data(), 50 * sizeof(StructSimpleNoGap)), 0);
}

TEST(Traits, DoubleVectorRoundTrip) {
    // The paper's double-vector type: count sub-vectors, lengths in-band,
    // payloads as regions.
    p2p::Universe uni(2, test::test_params());
    using Sub = std::vector<std::int32_t>;
    const auto& type = custom_datatype_of<Sub>();
    std::vector<Sub> send(8), recv(8);
    for (std::size_t i = 0; i < 8; ++i) {
        send[i] = test::iota_vec<std::int32_t>(64 * (i + 1), int(i));
        recv[i].resize(send[i].size()); // receiver knows the sizes (paper §VI)
    }
    auto rr = uni.comm(1).irecv_custom(recv.data(), 8, type, 0, 2);
    auto rs = uni.comm(0).isend_custom(send.data(), 8, type, 1, 2);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(rr.wait().status, Status::success);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(send[i], recv[i]);
}

TEST(Traits, DoubleVectorSizeMismatchIsUnpackError) {
    p2p::Universe uni(2, test::test_params());
    using Sub = std::vector<std::int32_t>;
    const auto& type = custom_datatype_of<Sub>();
    std::vector<Sub> send(2), recv(2);
    send[0] = test::iota_vec<std::int32_t>(32);
    send[1] = test::iota_vec<std::int32_t>(32);
    recv[0].resize(32);
    recv[1].resize(16); // wrong pre-size: regions cannot line up
    auto rr = uni.comm(1).irecv_custom(recv.data(), 2, type, 0, 2);
    auto rs = uni.comm(0).isend_custom(send.data(), 2, type, 1, 2);
    (void)rs.wait();
    const auto st = rr.wait();
    EXPECT_NE(st.status, Status::success);
}

TEST(Traits, CachedDatatypeIsSingleton) {
    const auto& a = custom_datatype_of<StructSimple>();
    const auto& b = custom_datatype_of<StructSimple>();
    EXPECT_EQ(&a, &b);
}

TEST(Traits, LargeCountRendezvous) {
    p2p::Universe uni(2, test::test_params());
    const auto& type = custom_datatype_of<StructSimple>();
    const int n = 4096; // 4096 * 20 B = 80 KiB packed > eager threshold
    std::vector<StructSimple> send(n), recv(n);
    for (int i = 0; i < n; ++i)
        send[static_cast<std::size_t>(i)] = {i, i ^ 0x55, -i, i * 0.125};
    auto rr = uni.comm(1).irecv_custom(recv.data(), n, type, 0, 3);
    auto rs = uni.comm(0).isend_custom(send.data(), n, type, 1, 3);
    EXPECT_EQ(rs.wait().status, Status::success);
    EXPECT_EQ(rr.wait().status, Status::success);
    for (int i = 0; i < n; i += 997) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].b, i ^ 0x55);
        EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(i)].d, i * 0.125);
    }
}

// ---------------------------------------------------------------------------
// Wire classification pins (docs/API.md §7). Compile-time contracts: a
// change that reclassifies any of these types is a wire-format change and
// must fail here, not in production.

static_assert(wire_class_v<int> == WireClass::trivially_wireable);
static_assert(wire_class_v<double> == WireClass::trivially_wireable);
// Padded structs ship raw (gap included) — still one CONTIG transfer.
static_assert(wire_class_v<StructSimple> == WireClass::trivially_wireable);
static_assert(wire_class_v<StructSimpleNoGap> == WireClass::trivially_wireable);
static_assert(wire_class_v<StructVec> == WireClass::trivially_wireable);
// std::pair fails is_trivially_copyable on a technicality (user-provided
// operator=) but is bitwise-safe; nested pairs/arrays recurse.
static_assert(wire_class_v<std::pair<int, double>> == WireClass::trivially_wireable);
static_assert(wire_class_v<std::pair<std::pair<int, float>, std::array<double, 3>>> ==
              WireClass::trivially_wireable);
static_assert(wire_class_v<std::array<std::pair<std::int16_t, char>, 4>> ==
              WireClass::trivially_wireable);
// Pointers are meaningless on the remote side.
static_assert(wire_class_v<int*> == WireClass::needs_serializer);
static_assert(wire_class_v<std::pair<int, char*>> == WireClass::needs_serializer);
// Contiguous containers of wireable elements lower to size+payload IOVs.
static_assert(wire_class_v<std::vector<std::int32_t>> ==
              WireClass::contiguous_resizable);
static_assert(wire_class_v<std::vector<StructSimple>> ==
              WireClass::contiguous_resizable);
static_assert(wire_class_v<std::vector<std::pair<int, double>>> ==
              WireClass::contiguous_resizable);
static_assert(wire_class_v<std::string> == WireClass::contiguous_resizable);
static_assert(wire_class_v<std::u32string> == WireClass::contiguous_resizable);
// Nested containers have heap indirection per element: NOT wireable, NOT
// resizable-contiguous; they need a real serializer.
static_assert(wire_class_v<std::vector<std::vector<int>>> ==
              WireClass::needs_serializer);
static_assert(wire_class_v<std::vector<std::string>> == WireClass::needs_serializer);
// vector<bool> is a bitset in disguise: no contiguous element storage.
static_assert(wire_class_v<std::vector<bool>> == WireClass::needs_serializer);

static_assert(TriviallyWireable<std::array<int, 8>>);
static_assert(!TriviallyWireable<std::vector<int>>);
static_assert(ContiguousResizable<std::vector<double>> && !ContiguousResizable<double>);
static_assert(HasCustomSerialize<StructSimple>);
static_assert(HasCustomSerialize<std::vector<std::int32_t>>);
static_assert(!HasCustomSerialize<std::vector<std::vector<int>>>);
static_assert(WireSendable<std::pair<int, int>>);
static_assert(WireSendable<std::vector<std::pair<int, double>>>);
static_assert(!WireSendable<std::vector<std::vector<int>>>);
static_assert(!WireSendable<std::vector<bool>>);
static_assert(!WireSendable<int*>);

} // namespace

// ---------------------------------------------------------------------------
// A heap-indirected type with its own serializer — the needs_serializer row
// of the dispatch table. Wire layout per element:
// [u64 payload bytes][i32 id][payload]. (Specialization must live at
// mpicd::core scope, hence outside the anonymous namespace.)

struct TestBlob {
    std::int32_t id = 0;
    std::vector<std::int32_t> data;
};

template <>
struct CustomSerialize<TestBlob> {
    struct State {
        ByteVec hdr;
        Count received = 0;
    };
    static constexpr bool inorder = false;

    static Status init(const TestBlob* buf, Count count, State& st) {
        std::size_t total = 0;
        for (Count i = 0; i < count; ++i)
            total += sizeof(std::uint64_t) + sizeof(std::int32_t) +
                     buf[i].data.size() * sizeof(std::int32_t);
        st.hdr.resize(total);
        std::size_t off = 0;
        for (Count i = 0; i < count; ++i) {
            const std::uint64_t len = buf[i].data.size() * sizeof(std::int32_t);
            std::memcpy(st.hdr.data() + off, &len, sizeof len);
            off += sizeof len;
            std::memcpy(st.hdr.data() + off, &buf[i].id, sizeof buf[i].id);
            off += sizeof buf[i].id;
            std::memcpy(st.hdr.data() + off, buf[i].data.data(),
                        static_cast<std::size_t>(len));
            off += static_cast<std::size_t>(len);
        }
        return Status::success;
    }
    static Status packed_size(State& st, const TestBlob*, Count, Count* size) {
        *size = static_cast<Count>(st.hdr.size());
        return Status::success;
    }
    static Status pack(State& st, const TestBlob*, Count, Count offset, void* dst,
                       Count dst_size, Count* used) {
        const Count total = static_cast<Count>(st.hdr.size());
        if (offset < 0 || offset > total) return Status::err_pack;
        const Count n = std::min(dst_size, total - offset);
        std::memcpy(dst, st.hdr.data() + offset, static_cast<std::size_t>(n));
        *used = n;
        return Status::success;
    }
    static Status unpack(State& st, TestBlob* buf, Count count, Count offset,
                         const void* src, Count src_size) {
        const Count total = static_cast<Count>(st.hdr.size());
        if (offset < 0 || offset + src_size > total) return Status::err_unpack;
        std::memcpy(st.hdr.data() + offset, src, static_cast<std::size_t>(src_size));
        st.received += src_size;
        if (st.received < total) return Status::success;
        std::size_t off = 0;
        for (Count i = 0; i < count; ++i) {
            std::uint64_t len = 0;
            std::memcpy(&len, st.hdr.data() + off, sizeof len);
            off += sizeof len;
            if (len != buf[i].data.size() * sizeof(std::int32_t))
                return Status::err_truncate;
            std::memcpy(&buf[i].id, st.hdr.data() + off, sizeof buf[i].id);
            off += sizeof buf[i].id;
            std::memcpy(buf[i].data.data(), st.hdr.data() + off,
                        static_cast<std::size_t>(len));
            off += static_cast<std::size_t>(len);
        }
        return Status::success;
    }
};

static_assert(NeedsSerializer<TestBlob>);
static_assert(HasCustomSerialize<TestBlob>);
static_assert(WireSendable<TestBlob>);

namespace {

// ---------------------------------------------------------------------------
// Differential suite: MPICD_FAST_PATH on vs off must deliver identical
// payloads and (for wire-compatible shapes, with the protocol choice
// pinned) identical wire-fragment schedules.

// The fast path sends wireable T as CONTIG (eager_threshold) where the
// fallback sends a one-region IOV (iov_eager_threshold); pinning the two
// thresholds equal makes both modes pick the same protocol, so fragment
// schedules are comparable.
netsim::WireParams pinned_params(Count eager, Count frag) {
    netsim::WireParams p;
    p.eager_threshold = eager;
    p.iov_eager_threshold = eager;
    p.rndv_frag_size = frag;
    return p;
}

template <typename T>
struct Exchanged {
    T value{};
    p2p::MsgStatus send_st;
    p2p::MsgStatus recv_st;
    std::uint64_t frag_count = 0;
    std::uint64_t frag_sum = 0;
    std::uint64_t retransmits = 0;
};

// One blocking mpicd::send/recv pair (receiver on its own thread: the
// rendezvous protocol needs both sides in flight) with the global knob
// forced to `fast`, capturing payload, fragment schedule, and retransmits.
template <typename T>
Exchanged<T> exchange_one(bool fast, const T& src, const netsim::WireParams& p,
                          const netsim::ScheduledFault* fault = nullptr) {
    metrics().reset();
    set_fast_path(fast);
    Exchanged<T> out;
    {
        p2p::Universe uni(2, p);
        if (fault) uni.fabric().faults().schedule(*fault);
        std::thread rx(
            [&] { out.recv_st = mpicd::recv(uni.comm(1), out.value, 0, 7); });
        out.send_st = mpicd::send(uni.comm(0), src, 1, 7);
        rx.join();
        out.retransmits = uni.worker(0).stats().retransmits;
    }
    for (const auto& h : metrics().hist_snapshot()) {
        if (h.group == "wire" && h.name == "frag_bytes") {
            out.frag_count = h.snap.count;
            out.frag_sum = h.snap.sum;
        }
    }
    set_fast_path(fast_path_from_env()); // restore the ambient default
    return out;
}

std::uint64_t counter_value(const char* group, const char* name) {
    for (const auto& s : metrics().snapshot())
        if (s.group == group && s.name == name) return s.value;
    return 0;
}

TEST(FastPath, WireableOnOffIdenticalEager) {
    std::array<std::int32_t, 64> src{};
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::int32_t>(i * 3 + 1);
    const auto p = pinned_params(4096, 4096);
    const auto on = exchange_one(true, src, p);
    const auto off = exchange_one(false, src, p);
    ASSERT_EQ(on.recv_st.status, Status::success);
    ASSERT_EQ(off.recv_st.status, Status::success);
    EXPECT_EQ(on.value, src);
    EXPECT_EQ(off.value, src);
    // Same bytes on the wire, same fragment schedule.
    EXPECT_EQ(on.recv_st.bytes, static_cast<Count>(sizeof src));
    EXPECT_EQ(on.frag_count, off.frag_count);
    EXPECT_EQ(on.frag_sum, off.frag_sum);
}

TEST(FastPath, WireableOnOffIdenticalRendezvous) {
    std::array<double, 4096> src{}; // 32 KiB >> pinned 1 KiB threshold
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<double>(i) * 0.75;
    const auto p = pinned_params(1024, 4096);
    const auto on = exchange_one(true, src, p);
    const auto off = exchange_one(false, src, p);
    ASSERT_EQ(on.recv_st.status, Status::success);
    ASSERT_EQ(off.recv_st.status, Status::success);
    EXPECT_EQ(on.value, src);
    EXPECT_EQ(off.value, src);
    EXPECT_GE(on.frag_count, 8u); // really took the fragmented path
    EXPECT_EQ(on.frag_count, off.frag_count);
    EXPECT_EQ(on.frag_sum, off.frag_sum);
}

TEST(FastPath, ResizableOnOffIdenticalEager) {
    const auto src = test::iota_vec<std::int32_t>(500, 11);
    const auto p = pinned_params(4096, 4096);
    const auto on = exchange_one(true, src, p);
    const auto off = exchange_one(false, src, p);
    ASSERT_EQ(on.recv_st.status, Status::success);
    ASSERT_EQ(off.recv_st.status, Status::success);
    EXPECT_EQ(on.value, src);
    EXPECT_EQ(off.value, src);
    // Two-entry size+payload IOV is wire-identical to the count==1
    // CustomSerialize<vector> lowering: u64 header + payload.
    EXPECT_EQ(on.recv_st.bytes,
              static_cast<Count>(sizeof(std::uint64_t) + 500 * sizeof(std::int32_t)));
    EXPECT_EQ(on.frag_count, off.frag_count);
    EXPECT_EQ(on.frag_sum, off.frag_sum);
}

TEST(FastPath, ResizableOnOffIdenticalRendezvous) {
    const auto src = test::iota_vec<std::int64_t>(8192, 5); // 64 KiB payload
    const auto p = pinned_params(1024, 4096);
    const auto on = exchange_one(true, src, p);
    const auto off = exchange_one(false, src, p);
    ASSERT_EQ(on.recv_st.status, Status::success);
    ASSERT_EQ(off.recv_st.status, Status::success);
    EXPECT_EQ(on.value, src);
    EXPECT_EQ(off.value, src);
    EXPECT_GE(on.frag_count, 8u);
    EXPECT_EQ(on.frag_count, off.frag_count);
    EXPECT_EQ(on.frag_sum, off.frag_sum);
}

TEST(FastPath, StringAndPairVectorBothModes) {
    const std::string s(10000, 'x');
    const auto p = pinned_params(1024, 4096);
    EXPECT_EQ(exchange_one(true, s, p).value, s);
    EXPECT_EQ(exchange_one(false, s, p).value, s);

    std::vector<std::pair<std::int32_t, double>> pv(300);
    for (std::size_t i = 0; i < pv.size(); ++i)
        pv[i] = {static_cast<std::int32_t>(i), static_cast<double>(i) * 0.5};
    EXPECT_EQ(exchange_one(true, pv, p).value, pv);
    EXPECT_EQ(exchange_one(false, pv, p).value, pv);
}

TEST(FastPath, EmptyVectorBothModes) {
    const std::vector<double> src;
    const auto p = pinned_params(4096, 4096);
    const auto on = exchange_one(true, src, p);
    const auto off = exchange_one(false, src, p);
    ASSERT_EQ(on.recv_st.status, Status::success);
    ASSERT_EQ(off.recv_st.status, Status::success);
    EXPECT_TRUE(on.value.empty());
    EXPECT_TRUE(off.value.empty());
    // Header-only message: exactly the u64 length.
    EXPECT_EQ(on.recv_st.bytes, static_cast<Count>(sizeof(std::uint64_t)));
}

TEST(FastPath, LossyRendezvousDeliversIdenticalPayload) {
    // Drop the rendezvous RTS: both modes' memory-exposing sinks take the
    // RDMA rendezvous (data moves by DMA, not droppable FRAG packets), so
    // the control channel is where loss can strike. Recovery (RTO +
    // retransmit) must deliver the same payload in both modes. Fragment
    // *schedules* are not compared here — the retransmit count depends on
    // wall-clock timer sampling (see test_trace.cpp).
    const auto src = test::iota_vec<std::int64_t>(8192, 3);
    auto p = pinned_params(1024, 4096);
    p.rto_us = 20.0;
    p.max_retries = 6;
    netsim::ScheduledFault f;
    f.src = 0;
    f.dst = 1;
    f.action = netsim::FaultAction::drop;
    f.kind_filter = ucx::wire::kRts;
    f.nth = 1;
    const auto on = exchange_one(true, src, p, &f);
    const auto off = exchange_one(false, src, p, &f);
    ASSERT_EQ(on.recv_st.status, Status::success);
    ASSERT_EQ(off.recv_st.status, Status::success);
    EXPECT_GE(on.retransmits, 1u);
    EXPECT_GE(off.retransmits, 1u);
    EXPECT_EQ(on.value, src);
    EXPECT_EQ(off.value, src);
}

TEST(FastPath, StructSimpleBothModesDeliver) {
    // A wireable type that *also* has a CustomSerialize: the fast path
    // ships all 24 raw bytes (gap included), the fallback packs 20 — both
    // must deliver the same field values.
    StructSimple src{7, -8, 9, 2.5};
    const auto p = pinned_params(4096, 4096);
    const auto on = exchange_one(true, src, p);
    const auto off = exchange_one(false, src, p);
    ASSERT_EQ(on.recv_st.status, Status::success);
    ASSERT_EQ(off.recv_st.status, Status::success);
    EXPECT_EQ(on.recv_st.bytes, static_cast<Count>(sizeof(StructSimple)));
    EXPECT_EQ(off.recv_st.bytes, kScalarPack);
    for (const auto* r : {&on.value, &off.value}) {
        EXPECT_EQ(r->a, 7);
        EXPECT_EQ(r->b, -8);
        EXPECT_EQ(r->c, 9);
        EXPECT_DOUBLE_EQ(r->d, 2.5);
    }
}

TEST(FastPath, BlobUsesSerializerBothModes) {
    TestBlob src;
    src.id = 42;
    src.data = test::iota_vec<std::int32_t>(257, 100);
    const auto p = pinned_params(4096, 4096);
    for (const bool fast : {true, false}) {
        metrics().reset();
        set_fast_path(fast);
        p2p::Universe uni(2, p);
        TestBlob dst;
        dst.data.resize(src.data.size()); // serializer path: pre-shaped receiver
        auto rr = [&] { return mpicd::recv(uni.comm(1), dst, 0, 4); };
        std::thread rx([&] { (void)rr(); });
        const auto sst = mpicd::send(uni.comm(0), src, 1, 4);
        rx.join();
        EXPECT_EQ(sst.status, Status::success);
        EXPECT_EQ(dst.id, 42);
        EXPECT_EQ(dst.data, src.data);
        // needs_serializer never touches the bypass counters, on or off.
        EXPECT_GE(counter_value("fastpath", "serializer_ops"), 2u);
        EXPECT_EQ(counter_value("fastpath", "hits_trivial"), 0u);
        EXPECT_EQ(counter_value("fastpath", "hits_resizable"), 0u);
    }
    set_fast_path(fast_path_from_env());
}

TEST(FastPath, CountersAccountBypassesAndFallbacks) {
    const auto src = test::iota_vec<std::int32_t>(128, 1);
    const std::pair<std::int64_t, std::int64_t> pod{1, 2};
    const auto p = pinned_params(4096, 4096);
    (void)exchange_one(true, src, p);  // resets metrics itself
    EXPECT_GE(counter_value("fastpath", "hits_resizable"), 2u); // send + recv
    EXPECT_GT(counter_value("fastpath", "bytes_bypassed"), 0u);
    EXPECT_GE(counter_value("fastpath", "plan_compiles_avoided"), 2u);
    // The whole point: no pack plan was compiled or looked up.
    EXPECT_EQ(counter_value("pack", "plans_compiled"), 0u);
    EXPECT_EQ(counter_value("pack", "plan_cache_hits"), 0u);

    (void)exchange_one(true, pod, p);
    EXPECT_GE(counter_value("fastpath", "hits_trivial"), 2u);

    (void)exchange_one(false, src, p);
    EXPECT_GE(counter_value("fastpath", "fallback_ops"), 2u);
    EXPECT_EQ(counter_value("fastpath", "hits_resizable"), 0u);
}

TEST(FastPath, CorruptStreamIsTruncateError) {
    core::set_fast_path(true);
    p2p::Universe uni(2, test::test_params());

    // (a) 10 bytes: too short to be [u64][k * sizeof(i32)] — must be
    // drained and reported, not resized into.
    const ByteVec junk = test::pattern_bytes(10, 3);
    ASSERT_EQ(uni.comm(0).send_bytes(junk.data(), 10, 1, 8).status,
              Status::success);
    std::vector<std::int32_t> dst(3, -1);
    const auto st = mpicd::recv(uni.comm(1), dst, 0, 8);
    EXPECT_EQ(st.status, Status::err_truncate);
    EXPECT_EQ(dst.size(), 3u); // untouched: no attacker-driven resize

    // (b) well-shaped length but a lying header: u64 announces 64 bytes,
    // 8 arrive.
    ByteVec lying(16);
    const std::uint64_t bogus = 64;
    std::memcpy(lying.data(), &bogus, sizeof bogus);
    ASSERT_EQ(uni.comm(0).send_bytes(lying.data(), 16, 1, 8).status,
              Status::success);
    const auto st2 = mpicd::recv(uni.comm(1), dst, 0, 8);
    EXPECT_EQ(st2.status, Status::err_truncate);

    // (c) the tag still works afterwards: the corrupt messages were
    // consumed, not left to shadow later traffic.
    const auto good = test::iota_vec<std::int32_t>(64, 9);
    ASSERT_EQ(mpicd::send(uni.comm(0), good, 1, 8).status, Status::success);
    EXPECT_EQ(mpicd::recv(uni.comm(1), dst, 0, 8).status, Status::success);
    EXPECT_EQ(dst, good);
    set_fast_path(fast_path_from_env());
}

TEST(FastPath, VectorHeaderBoundCheckRejectsCorruptLengths) {
    // Drive the CustomSerialize<vector> header validation directly with
    // corrupt wire bytes: lengths that are huge or not element-aligned
    // must return err_truncate and never resize the receive vector.
    using CS = CustomSerialize<std::vector<std::int32_t>>;
    std::vector<std::int32_t> dst[1];
    dst[0].resize(4);

    for (const std::uint64_t bad : {(std::uint64_t{1} << 40) + 1,  // unaligned
                                    std::uint64_t{1} << 40,        // absurd size
                                    std::uint64_t{12}}) {          // aligned, wrong
        typename CS::State st;
        ASSERT_EQ(CS::init(dst, 1, st), Status::success);
        EXPECT_EQ(CS::unpack(st, dst, 1, 0, &bad, sizeof bad),
                  Status::err_truncate);
        EXPECT_EQ(dst[0].size(), 4u); // no over-allocation from wire data
    }
    // The matching length is accepted.
    typename CS::State st;
    ASSERT_EQ(CS::init(dst, 1, st), Status::success);
    const std::uint64_t good = 4 * sizeof(std::int32_t);
    EXPECT_EQ(CS::unpack(st, dst, 1, 0, &good, sizeof good), Status::success);
}

} // namespace
} // namespace mpicd::core
