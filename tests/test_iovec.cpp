#include <gtest/gtest.h>

#include "dt/iovec.hpp"

namespace mpicd::dt {
namespace {

TEST(Iovec, ContiguousTypeOneRegion) {
    auto t = Datatype::contiguous(16, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    std::int32_t buf[64];
    std::vector<ConstIovEntry> out;
    ASSERT_EQ(extract_regions(t, buf, 4, out), Status::success);
    ASSERT_EQ(out.size(), 1u); // elements merge end-to-end
    EXPECT_EQ(out[0].base, buf);
    EXPECT_EQ(out[0].len, 256);
    EXPECT_EQ(region_count(t, 4), 1);
}

TEST(Iovec, StridedVectorRegions) {
    auto t = Datatype::vector(4, 2, 5, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    std::int32_t buf[32];
    std::vector<ConstIovEntry> out;
    ASSERT_EQ(extract_regions(t, buf, 1, out), Status::success);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[1].base, buf + 5);
    EXPECT_EQ(out[1].len, 8);
}

TEST(Iovec, GappedStructTwoRegionsPerElement) {
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const TypeRef types[] = {type_int32(), type_double()};
    auto s = Datatype::struct_(blocklens, displs, types);
    auto t = Datatype::resized(s, 0, 24);
    ASSERT_EQ(t->commit(), Status::success);
    alignas(8) std::byte buf[72];
    std::vector<ConstIovEntry> out;
    ASSERT_EQ(extract_regions(t, buf, 3, out), Status::success);
    // Element i's trailing double [16,24) abuts element i+1's leading ints
    // at [24,36): those runs merge, so 3 elements x 2 segments collapse to 4.
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(region_count(t, 3), 4);
    EXPECT_EQ(out[0].len, 12);  // first element's ints, before the gap
    EXPECT_EQ(out[1].len, 20);  // double + next element's ints
}

TEST(Iovec, MutableOverloadMatches) {
    auto t = Datatype::vector(3, 1, 2, type_double());
    ASSERT_EQ(t->commit(), Status::success);
    double buf[8];
    std::vector<IovEntry> out;
    ASSERT_EQ(extract_regions(t, buf, 1, out), Status::success);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[2].base, buf + 4);
}

TEST(Iovec, UncommittedRejected) {
    auto t = Datatype::contiguous(4, type_int32());
    std::int32_t buf[4];
    std::vector<ConstIovEntry> out;
    EXPECT_EQ(extract_regions(t, buf, 1, out), Status::err_not_committed);
}

TEST(Iovec, RegionCountCrossElementMerge) {
    // vector(2,1,2): the extent (12 B) ends exactly where the last segment
    // ends, so the next element's first segment is adjacent and merges:
    // 3 elements x 2 segments -> 4 regions.
    auto t = Datatype::vector(2, 1, 2, type_int32());
    ASSERT_EQ(t->commit(), Status::success);
    EXPECT_EQ(region_count(t, 3), 4);
    std::int32_t buf[12];
    std::vector<ConstIovEntry> out;
    ASSERT_EQ(extract_regions(t, buf, 3, out), Status::success);
    EXPECT_EQ(static_cast<Count>(out.size()), region_count(t, 3));
    // Contiguous: full merge.
    auto c = Datatype::contiguous(2, type_int32());
    ASSERT_EQ(c->commit(), Status::success);
    EXPECT_EQ(region_count(c, 5), 1);
    EXPECT_EQ(region_count(c, 0), 0);
}

} // namespace
} // namespace mpicd::dt
