#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "netsim/fault.hpp"
#include "test_util.hpp"
#include "ucx/worker.hpp"

namespace mpicd::ucx {
namespace {

using netsim::Fabric;

struct UcxPair : ::testing::Test {
    UcxPair() : fabric(2, test::test_params()), w0(fabric, 0), w1(fabric, 1) {}

    // One progress step over both workers. When neither finds work and a
    // timer is pending (retransmit / dup-ack / watchdog — armed whenever
    // MPICD_FAULT_* makes the fabric lossy, e.g. under the fault matrix),
    // jump virtual time to the earliest deadline so the timer can fire: a
    // raw worker pair has no Universe to escalate the clock for it.
    void drive() {
        const bool any0 = w0.progress();
        const bool any1 = w1.progress();
        if (!any0 && !any1) {
            const SimTime t = std::min(w0.next_timer(), w1.next_timer());
            if (t < std::numeric_limits<SimTime>::infinity()) {
                w0.observe_time(t);
                w1.observe_time(t);
            }
        }
    }

    void progress_until(RequestId id, Worker& owner) {
        for (int i = 0; i < 1'000'000 && !owner.is_complete(id); ++i) drive();
        ASSERT_TRUE(owner.is_complete(id));
    }

    // Wait for completion, then take it. take_completion() on an
    // incomplete request is undefined behaviour; under fault injection
    // even an eager send can still be waiting on its ack when the paired
    // recv finishes, so every take in these tests goes through here.
    Completion take(Worker& owner, RequestId id) {
        for (int i = 0; i < 1'000'000 && !owner.is_complete(id); ++i) drive();
        EXPECT_TRUE(owner.is_complete(id)) << "request never completed";
        if (!owner.is_complete(id)) return Completion{};
        return owner.take_completion(id);
    }

    Fabric fabric;
    Worker w0, w1;
};

TEST_F(UcxPair, EagerContigRoundTrip) {
    const ByteVec src = test::pattern_bytes(1000);
    ByteVec dst(1000);
    const auto rid = w1.tag_recv(42, ~Tag{0}, make_contig_recv(dst.data(), 1000));
    const auto sid = w0.tag_send(1, 42, make_contig_send(src.data(), 1000));
    progress_until(rid, w1);
    progress_until(sid, w0);
    const auto rc = take(w1, rid);
    EXPECT_EQ(rc.status, Status::success);
    EXPECT_EQ(rc.received_len, 1000);
    EXPECT_EQ(rc.sender_tag, 42u);
    EXPECT_GT(rc.vtime, 0.0);
    EXPECT_EQ(src, dst);
    (void)take(w0, sid);
}

TEST_F(UcxPair, UnexpectedEagerThenRecv) {
    const ByteVec src = test::pattern_bytes(64, 7);
    ByteVec dst(64);
    const auto sid = w0.tag_send(1, 9, make_contig_send(src.data(), 64));
    w1.progress(); // message lands in the unexpected queue
    const auto rid = w1.tag_recv(9, ~Tag{0}, make_contig_recv(dst.data(), 64));
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)take(w1, rid);
    (void)take(w0, sid);
}

TEST_F(UcxPair, RendezvousContigZeroCopy) {
    const std::size_t n = 256 * 1024; // above the 32 KiB eager threshold
    const ByteVec src = test::pattern_bytes(n, 3);
    ByteVec dst(n);
    const auto rid = w1.tag_recv(1, ~Tag{0}, make_contig_recv(dst.data(), Count(n)));
    const auto sid = w0.tag_send(1, 1, make_contig_send(src.data(), Count(n)));
    progress_until(sid, w0);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    const auto rc = take(w1, rid);
    EXPECT_EQ(rc.received_len, Count(n));
    (void)take(w0, sid);
}

TEST_F(UcxPair, IovGatherScatter) {
    ByteVec a = test::pattern_bytes(100, 1), b = test::pattern_bytes(200, 2);
    ByteVec c(120), d(180);
    const auto rid =
        w1.tag_recv(5, ~Tag{0}, make_iov({{c.data(), 120}, {d.data(), 180}}));
    const auto sid =
        w0.tag_send(1, 5, make_iov({{a.data(), 100}, {b.data(), 200}}));
    progress_until(rid, w1);
    // Concatenated stream a+b scattered across c+d.
    ByteVec stream;
    stream.insert(stream.end(), a.begin(), a.end());
    stream.insert(stream.end(), b.begin(), b.end());
    EXPECT_EQ(std::memcmp(c.data(), stream.data(), 120), 0);
    EXPECT_EQ(std::memcmp(d.data(), stream.data() + 120, 180), 0);
    (void)take(w1, rid);
    progress_until(sid, w0);
    (void)take(w0, sid);
}

TEST_F(UcxPair, IovRendezvousZeroCopy) {
    const std::size_t n = 64 * 1024;
    ByteVec a = test::pattern_bytes(n, 1), b = test::pattern_bytes(n, 2);
    ByteVec c(n), d(n);
    const auto rid = w1.tag_recv(
        5, ~Tag{0}, make_iov({{c.data(), Count(n)}, {d.data(), Count(n)}}));
    const auto sid = w0.tag_send(
        1, 5, make_iov({{a.data(), Count(n)}, {b.data(), Count(n)}}));
    progress_until(rid, w1);
    EXPECT_EQ(a, c);
    EXPECT_EQ(b, d);
    (void)take(w1, rid);
    progress_until(sid, w0);
    (void)take(w0, sid);
}

// A generic datatype that "packs" by XORing every byte with a key, so the
// test detects whether pack/unpack callbacks actually ran.
struct XorCtx {
    std::byte key;
};
struct XorState {
    XorCtx* ctx;
    const std::byte* src;
    std::byte* dst;
    Count len;
};

Status xor_start_pack(void* ctx, const void* buf, Count count, void** state) {
    *state = new XorState{static_cast<XorCtx*>(ctx),
                          static_cast<const std::byte*>(buf), nullptr, count};
    return Status::success;
}
Status xor_start_unpack(void* ctx, void* buf, Count count, void** state) {
    *state = new XorState{static_cast<XorCtx*>(ctx), nullptr,
                          static_cast<std::byte*>(buf), count};
    return Status::success;
}
Status xor_packed_size(void* state, Count* size) {
    *size = static_cast<XorState*>(state)->len;
    return Status::success;
}
Status xor_pack(void* state, Count offset, void* dst, Count dst_size, Count* used) {
    auto* st = static_cast<XorState*>(state);
    const Count n = std::min(dst_size, st->len - offset);
    for (Count i = 0; i < n; ++i)
        static_cast<std::byte*>(dst)[i] = st->src[offset + i] ^ st->ctx->key;
    *used = n;
    return Status::success;
}
Status xor_unpack(void* state, Count offset, const void* src, Count src_size) {
    auto* st = static_cast<XorState*>(state);
    if (offset + src_size > st->len) return Status::err_unpack;
    for (Count i = 0; i < src_size; ++i)
        st->dst[offset + i] =
            static_cast<const std::byte*>(src)[i] ^ st->ctx->key;
    return Status::success;
}
void xor_finish(void* state) { delete static_cast<XorState*>(state); }

GenericDesc xor_desc(XorCtx& ctx) {
    GenericDesc g;
    g.ops.start_pack = xor_start_pack;
    g.ops.start_unpack = xor_start_unpack;
    g.ops.packed_size = xor_packed_size;
    g.ops.pack = xor_pack;
    g.ops.unpack = xor_unpack;
    g.ops.finish = xor_finish;
    g.ops.ctx = &ctx;
    return g;
}

TEST_F(UcxPair, GenericEagerCallbacksRun) {
    XorCtx key{std::byte{0x5A}};
    const ByteVec src = test::pattern_bytes(500);
    ByteVec dst(500);
    auto gs = xor_desc(key);
    gs.send_buf = src.data();
    gs.count = 500;
    auto gr = xor_desc(key);
    gr.recv_buf = dst.data();
    gr.count = 500;
    const auto rid = w1.tag_recv(3, ~Tag{0}, gr);
    const auto sid = w0.tag_send(1, 3, gs);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst); // XOR applied twice cancels out
    (void)take(w1, rid);
    progress_until(sid, w0);
    (void)take(w0, sid);
}

TEST_F(UcxPair, GenericRendezvousPipelined) {
    XorCtx key{std::byte{0x33}};
    const std::size_t n = 3 * 512 * 1024 + 777; // several pipeline fragments
    const ByteVec src = test::pattern_bytes(n, 5);
    ByteVec dst(n);
    auto gs = xor_desc(key);
    gs.send_buf = src.data();
    gs.count = Count(n);
    auto gr = xor_desc(key);
    gr.recv_buf = dst.data();
    gr.count = Count(n);
    const auto rid = w1.tag_recv(3, ~Tag{0}, gr);
    const auto sid = w0.tag_send(1, 3, gs);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)take(w1, rid);
    progress_until(sid, w0);
    (void)take(w0, sid);
}

TEST_F(UcxPair, GenericToContigCrossKind) {
    XorCtx key{std::byte{0x00}}; // identity pack
    const ByteVec src = test::pattern_bytes(2048, 9);
    ByteVec dst(2048);
    auto gs = xor_desc(key);
    gs.send_buf = src.data();
    gs.count = 2048;
    const auto rid = w1.tag_recv(8, ~Tag{0}, make_contig_recv(dst.data(), 2048));
    const auto sid = w0.tag_send(1, 8, gs);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)take(w1, rid);
    progress_until(sid, w0);
    (void)take(w0, sid);
}

TEST_F(UcxPair, EagerTruncationReported) {
    const ByteVec src = test::pattern_bytes(100);
    ByteVec dst(60);
    const auto rid = w1.tag_recv(2, ~Tag{0}, make_contig_recv(dst.data(), 60));
    const auto sid = w0.tag_send(1, 2, make_contig_send(src.data(), 100));
    progress_until(rid, w1);
    const auto rc = take(w1, rid);
    EXPECT_EQ(rc.status, Status::err_truncate);
    EXPECT_EQ(rc.received_len, 60);
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), 60), 0);
    (void)take(w0, sid);
}

TEST_F(UcxPair, RendezvousTruncationAborts) {
    const std::size_t n = 128 * 1024;
    const ByteVec src = test::pattern_bytes(n);
    ByteVec dst(1024);
    const auto rid = w1.tag_recv(2, ~Tag{0}, make_contig_recv(dst.data(), 1024));
    const auto sid = w0.tag_send(1, 2, make_contig_send(src.data(), Count(n)));
    progress_until(rid, w1);
    progress_until(sid, w0);
    EXPECT_EQ(take(w1, rid).status, Status::err_truncate);
    EXPECT_EQ(take(w0, sid).status, Status::err_truncate);
}

TEST_F(UcxPair, TagMaskWildcard) {
    const ByteVec src = test::pattern_bytes(32);
    ByteVec dst(32);
    // Receive with the low 32 bits masked out: any tag matches.
    const auto rid = w1.tag_recv(0, 0, make_contig_recv(dst.data(), 32));
    const auto sid = w0.tag_send(1, 0xDEADBEEF, make_contig_send(src.data(), 32));
    progress_until(rid, w1);
    const auto rc = take(w1, rid);
    EXPECT_EQ(rc.sender_tag, 0xDEADBEEFu);
    EXPECT_EQ(src, dst);
    (void)take(w0, sid);
}

TEST_F(UcxPair, OrderingPreservedAmongMatches) {
    ByteVec a(4), b(4);
    const std::uint32_t va = 0x11111111, vb = 0x22222222;
    const auto s1 = w0.tag_send(1, 7, make_contig_send(&va, 4));
    const auto s2 = w0.tag_send(1, 7, make_contig_send(&vb, 4));
    const auto r1 = w1.tag_recv(7, ~Tag{0}, make_contig_recv(a.data(), 4));
    const auto r2 = w1.tag_recv(7, ~Tag{0}, make_contig_recv(b.data(), 4));
    progress_until(r1, w1);
    progress_until(r2, w1);
    std::uint32_t ga = 0, gb = 0;
    std::memcpy(&ga, a.data(), 4);
    std::memcpy(&gb, b.data(), 4);
    EXPECT_EQ(ga, va);
    EXPECT_EQ(gb, vb);
    (void)take(w1, r1);
    (void)take(w1, r2);
    (void)take(w0, s1);
    (void)take(w0, s2);
}

TEST_F(UcxPair, ProbeSeesUnexpected) {
    const ByteVec src = test::pattern_bytes(128);
    (void)w0.tag_send(1, 77, make_contig_send(src.data(), 128));
    w1.progress();
    const auto info = w1.probe(77, ~Tag{0});
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->total_len, 128);
    EXPECT_EQ(info->src, 0);
    // Probe is non-destructive.
    EXPECT_TRUE(w1.probe(77, ~Tag{0}).has_value());
}

TEST_F(UcxPair, ProbeSeesRendezvousSize) {
    const std::size_t n = 100 * 1024;
    const ByteVec src = test::pattern_bytes(n);
    (void)w0.tag_send(1, 78, make_contig_send(src.data(), Count(n)));
    w1.progress();
    const auto info = w1.probe(78, ~Tag{0});
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->total_len, Count(n));
}

TEST_F(UcxPair, MprobeRemovesFromMatching) {
    const ByteVec src = test::pattern_bytes(64);
    const auto sid = w0.tag_send(1, 5, make_contig_send(src.data(), 64));
    w1.progress();
    auto handle = w1.mprobe(5, ~Tag{0});
    ASSERT_TRUE(handle.has_value());
    EXPECT_EQ(handle->info.total_len, 64);
    // The message is no longer visible to probe or recv.
    EXPECT_FALSE(w1.probe(5, ~Tag{0}).has_value());
    ByteVec dst(64);
    const auto rid = w1.imrecv(*handle, make_contig_recv(dst.data(), 64));
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)take(w1, rid);
    (void)take(w0, sid);
}

TEST_F(UcxPair, ZeroByteMessage) {
    const auto rid = w1.tag_recv(1, ~Tag{0}, make_contig_recv(nullptr, 0));
    const auto sid = w0.tag_send(1, 1, make_contig_send(nullptr, 0));
    progress_until(rid, w1);
    EXPECT_EQ(take(w1, rid).received_len, 0);
    (void)take(w0, sid);
}

TEST_F(UcxPair, CancelUnmatchedRecv) {
    ByteVec dst(16);
    const auto rid = w1.tag_recv(99, ~Tag{0}, make_contig_recv(dst.data(), 16));
    EXPECT_TRUE(w1.cancel_recv(rid));
    EXPECT_FALSE(w1.cancel_recv(rid)); // already gone
}

// ---------------------------------------------------------------------------
// MPI matching-semantics conformance (gates the hashed TagMatcher; see
// docs/MATCHING.md). Every test here must hold under MPICD_TAG_MATCH=linear
// too — the semantics are the contract, the matcher is an implementation.

TEST_F(UcxPair, PerSrcTagFifoNonOvertaking) {
    // Many messages on ONE (src, tag) pair, interleaved with traffic on
    // other tags: receives posted in order must pair with sends in send
    // order (MPI 3.1 §3.5 non-overtaking), with the interleaved tags
    // building real bucket depth around them.
    constexpr int kMsgs = 16;
    std::vector<ByteVec> srcs, dsts;
    std::vector<RequestId> rids, sids, noise_rids, noise_sids;
    std::vector<ByteVec> noise_src(kMsgs), noise_dst(kMsgs);
    for (int i = 0; i < kMsgs; ++i) {
        srcs.push_back(test::pattern_bytes(256, 100u + static_cast<unsigned>(i)));
        dsts.emplace_back(256);
        rids.push_back(
            w1.tag_recv(7, ~Tag{0}, make_contig_recv(dsts[static_cast<std::size_t>(i)].data(), 256)));
        // Noise on a distinct tag per message.
        noise_src[static_cast<std::size_t>(i)] =
            test::pattern_bytes(64, 900u + static_cast<unsigned>(i));
        noise_dst[static_cast<std::size_t>(i)].resize(64);
        noise_rids.push_back(w1.tag_recv(
            1000 + static_cast<Tag>(i), ~Tag{0},
            make_contig_recv(noise_dst[static_cast<std::size_t>(i)].data(), 64)));
    }
    for (int i = 0; i < kMsgs; ++i) {
        sids.push_back(w0.tag_send(
            1, 7, make_contig_send(srcs[static_cast<std::size_t>(i)].data(), 256)));
        noise_sids.push_back(w0.tag_send(
            1, 1000 + static_cast<Tag>(i),
            make_contig_send(noise_src[static_cast<std::size_t>(i)].data(), 64)));
    }
    for (int i = 0; i < kMsgs; ++i) {
        progress_until(rids[static_cast<std::size_t>(i)], w1);
        progress_until(noise_rids[static_cast<std::size_t>(i)], w1);
    }
    for (int i = 0; i < kMsgs; ++i) {
        // The i-th posted receive got the i-th send's payload: no
        // overtaking within the (src, tag) pair.
        EXPECT_EQ(dsts[static_cast<std::size_t>(i)], srcs[static_cast<std::size_t>(i)])
            << "message " << i << " overtaken";
        EXPECT_EQ(noise_dst[static_cast<std::size_t>(i)],
                  noise_src[static_cast<std::size_t>(i)]);
        (void)take(w1, rids[static_cast<std::size_t>(i)]);
        (void)take(w1, noise_rids[static_cast<std::size_t>(i)]);
        (void)take(w0, sids[static_cast<std::size_t>(i)]);
        (void)take(w0, noise_sids[static_cast<std::size_t>(i)]);
    }
    EXPECT_TRUE(w0.idle());
    EXPECT_TRUE(w1.idle());
}

TEST_F(UcxPair, WildcardBeforeExactWinsByPostingOrder) {
    // A full-wildcard receive posted BEFORE an exact one must take the
    // first matching message even though the exact receive also matches.
    ByteVec wild_dst(64), exact_dst(64);
    const auto wild = w1.tag_recv(0, Tag{0}, make_contig_recv(wild_dst.data(), 64));
    const auto exact = w1.tag_recv(5, ~Tag{0}, make_contig_recv(exact_dst.data(), 64));
    const ByteVec first = test::pattern_bytes(64, 1);
    const ByteVec second = test::pattern_bytes(64, 2);
    const auto s1 = w0.tag_send(1, 5, make_contig_send(first.data(), 64));
    const auto s2 = w0.tag_send(1, 5, make_contig_send(second.data(), 64));
    progress_until(wild, w1);
    progress_until(exact, w1);
    EXPECT_EQ(wild_dst, first);   // earlier-posted wildcard took message 1
    EXPECT_EQ(exact_dst, second); // exact receive got the next one
    (void)take(w1, wild);
    (void)take(w1, exact);
    (void)take(w0, s1);
    (void)take(w0, s2);
}

TEST_F(UcxPair, ExactBeforeWildcardWinsByPostingOrder) {
    ByteVec wild_dst(64), exact_dst(64);
    const auto exact = w1.tag_recv(5, ~Tag{0}, make_contig_recv(exact_dst.data(), 64));
    const auto wild = w1.tag_recv(0, Tag{0}, make_contig_recv(wild_dst.data(), 64));
    const ByteVec on5 = test::pattern_bytes(64, 1);
    const ByteVec on9 = test::pattern_bytes(64, 2);
    const auto s1 = w0.tag_send(1, 5, make_contig_send(on5.data(), 64));
    const auto s2 = w0.tag_send(1, 9, make_contig_send(on9.data(), 64));
    progress_until(exact, w1);
    progress_until(wild, w1);
    EXPECT_EQ(exact_dst, on5); // the exact receive was posted first
    EXPECT_EQ(wild_dst, on9);  // the wildcard fell through to tag 9
    EXPECT_EQ(take(w1, wild).sender_tag, 9u);
    (void)take(w1, exact);
    (void)take(w0, s1);
    (void)take(w0, s2);
}

TEST_F(UcxPair, ProbeThenRecvConsistency) {
    // probe() must report exactly the message a subsequent matching recv
    // pairs with: same tag, same length, same payload.
    const ByteVec m1 = test::pattern_bytes(96, 1);
    const ByteVec m2 = test::pattern_bytes(128, 2);
    const auto s1 = w0.tag_send(1, 11, make_contig_send(m1.data(), 96));
    const auto s2 = w0.tag_send(1, 12, make_contig_send(m2.data(), 128));
    for (int i = 0; i < 100000 && !w1.probe(12, ~Tag{0}); ++i) drive();

    const auto info = w1.probe(0, Tag{0}); // wildcard: earliest arrival
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->tag, 11u);
    EXPECT_EQ(info->total_len, 96);
    // The wildcard recv pairs with the probed message, not the other one.
    ByteVec dst(static_cast<std::size_t>(info->total_len));
    const auto rid =
        w1.tag_recv(0, Tag{0}, make_contig_recv(dst.data(), info->total_len));
    progress_until(rid, w1);
    const auto rc = take(w1, rid);
    EXPECT_EQ(rc.sender_tag, info->tag);
    EXPECT_EQ(rc.received_len, info->total_len);
    EXPECT_EQ(dst, m1);
    // And the remaining message is still intact behind it.
    ByteVec dst2(128);
    const auto rid2 = w1.tag_recv(12, ~Tag{0}, make_contig_recv(dst2.data(), 128));
    progress_until(rid2, w1);
    EXPECT_EQ(dst2, m2);
    (void)take(w1, rid2);
    (void)take(w0, s1);
    (void)take(w0, s2);
}

TEST(UcxFaults, MatchedPairStabilityAcrossRetransmitDupFaults) {
    // Duplicate + corruption faults force retransmits and duplicate
    // suppression; matching must stay stable: every (send i -> recv i)
    // pairing delivers exactly once, intact, and no duplicate ever
    // double-matches a receive.
    netsim::FaultConfig cfg;
    cfg.seed = 0xBEEF;
    cfg.dup = 0.2;
    cfg.corrupt = 0.1;
    Fabric fabric(2, test::test_params(), cfg);
    Worker w0(fabric, 0), w1(fabric, 1);

    // Raw worker pair (no Universe): when both workers are quiescent, jump
    // virtual time to the earliest pending timer so corrupted packets get
    // retransmitted instead of stalling the loop.
    const auto drive = [&] {
        const bool any0 = w0.progress();
        const bool any1 = w1.progress();
        if (!any0 && !any1) {
            const SimTime t = std::min(w0.next_timer(), w1.next_timer());
            if (t < std::numeric_limits<SimTime>::infinity()) {
                w0.observe_time(t);
                w1.observe_time(t);
                w0.progress();
                w1.progress();
            }
        }
    };

    constexpr int kMsgs = 24;
    std::vector<ByteVec> srcs, dsts;
    std::vector<RequestId> rids;
    for (int i = 0; i < kMsgs; ++i) {
        srcs.push_back(test::pattern_bytes(200, 40u + static_cast<unsigned>(i)));
        dsts.emplace_back(200);
        rids.push_back(w1.tag_recv(
            3, ~Tag{0}, make_contig_recv(dsts[static_cast<std::size_t>(i)].data(), 200)));
    }
    for (int i = 0; i < kMsgs; ++i) {
        const auto sid = w0.tag_send(
            1, 3, make_contig_send(srcs[static_cast<std::size_t>(i)].data(), 200));
        // Sequential sends: completion (= ack under the reliable protocol)
        // before the next post keeps arrival order deterministic, so the
        // assertion isolates matching stability from transport reorder.
        for (int it = 0; it < 1'000'000 && !w0.is_complete(sid); ++it) drive();
        ASSERT_TRUE(w0.is_complete(sid));
        (void)w0.take_completion(sid);
    }
    for (int i = 0; i < kMsgs; ++i) {
        for (int it = 0;
             it < 1'000'000 && !w1.is_complete(rids[static_cast<std::size_t>(i)]);
             ++it)
            drive();
        ASSERT_TRUE(w1.is_complete(rids[static_cast<std::size_t>(i)]));
        const auto rc = w1.take_completion(rids[static_cast<std::size_t>(i)]);
        EXPECT_EQ(rc.status, Status::success);
        EXPECT_EQ(dsts[static_cast<std::size_t>(i)], srcs[static_cast<std::size_t>(i)])
            << "pairing " << i << " unstable under dup/retransmit";
    }
    // No stranded duplicates in the matching structures.
    EXPECT_TRUE(w1.idle());
    EXPECT_TRUE(w0.idle());
    EXPECT_GT(w1.stats().duplicates_suppressed +
                  w1.stats().corruption_detected,
              0u)
        << "fault layer injected nothing; the test exercised no faults";
}

TEST_F(UcxPair, VirtualTimeAdvancesWithTransfer) {
    const SimTime before = w1.now();
    const ByteVec src = test::pattern_bytes(4096);
    ByteVec dst(4096);
    const auto rid = w1.tag_recv(1, ~Tag{0}, make_contig_recv(dst.data(), 4096));
    (void)w0.tag_send(1, 1, make_contig_send(src.data(), 4096));
    progress_until(rid, w1);
    const auto rc = take(w1, rid);
    EXPECT_GT(rc.vtime, before);
    // At least one wire latency must have elapsed.
    EXPECT_GE(rc.vtime, test::test_params().latency_us);
}

} // namespace
} // namespace mpicd::ucx
