#include <gtest/gtest.h>

#include <cstring>

#include "test_util.hpp"
#include "ucx/worker.hpp"

namespace mpicd::ucx {
namespace {

using netsim::Fabric;

struct UcxPair : ::testing::Test {
    UcxPair() : fabric(2, test::test_params()), w0(fabric, 0), w1(fabric, 1) {}

    void progress_until(RequestId id, Worker& owner) {
        for (int i = 0; i < 1'000'000 && !owner.is_complete(id); ++i) {
            w0.progress();
            w1.progress();
        }
        ASSERT_TRUE(owner.is_complete(id));
    }

    Fabric fabric;
    Worker w0, w1;
};

TEST_F(UcxPair, EagerContigRoundTrip) {
    const ByteVec src = test::pattern_bytes(1000);
    ByteVec dst(1000);
    const auto rid = w1.tag_recv(42, ~Tag{0}, make_contig_recv(dst.data(), 1000));
    const auto sid = w0.tag_send(1, 42, make_contig_send(src.data(), 1000));
    progress_until(rid, w1);
    progress_until(sid, w0);
    const auto rc = w1.take_completion(rid);
    EXPECT_EQ(rc.status, Status::success);
    EXPECT_EQ(rc.received_len, 1000);
    EXPECT_EQ(rc.sender_tag, 42u);
    EXPECT_GT(rc.vtime, 0.0);
    EXPECT_EQ(src, dst);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, UnexpectedEagerThenRecv) {
    const ByteVec src = test::pattern_bytes(64, 7);
    ByteVec dst(64);
    const auto sid = w0.tag_send(1, 9, make_contig_send(src.data(), 64));
    w1.progress(); // message lands in the unexpected queue
    const auto rid = w1.tag_recv(9, ~Tag{0}, make_contig_recv(dst.data(), 64));
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)w1.take_completion(rid);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, RendezvousContigZeroCopy) {
    const std::size_t n = 256 * 1024; // above the 32 KiB eager threshold
    const ByteVec src = test::pattern_bytes(n, 3);
    ByteVec dst(n);
    const auto rid = w1.tag_recv(1, ~Tag{0}, make_contig_recv(dst.data(), Count(n)));
    const auto sid = w0.tag_send(1, 1, make_contig_send(src.data(), Count(n)));
    progress_until(sid, w0);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    const auto rc = w1.take_completion(rid);
    EXPECT_EQ(rc.received_len, Count(n));
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, IovGatherScatter) {
    ByteVec a = test::pattern_bytes(100, 1), b = test::pattern_bytes(200, 2);
    ByteVec c(120), d(180);
    const auto rid =
        w1.tag_recv(5, ~Tag{0}, make_iov({{c.data(), 120}, {d.data(), 180}}));
    const auto sid =
        w0.tag_send(1, 5, make_iov({{a.data(), 100}, {b.data(), 200}}));
    progress_until(rid, w1);
    // Concatenated stream a+b scattered across c+d.
    ByteVec stream;
    stream.insert(stream.end(), a.begin(), a.end());
    stream.insert(stream.end(), b.begin(), b.end());
    EXPECT_EQ(std::memcmp(c.data(), stream.data(), 120), 0);
    EXPECT_EQ(std::memcmp(d.data(), stream.data() + 120, 180), 0);
    (void)w1.take_completion(rid);
    progress_until(sid, w0);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, IovRendezvousZeroCopy) {
    const std::size_t n = 64 * 1024;
    ByteVec a = test::pattern_bytes(n, 1), b = test::pattern_bytes(n, 2);
    ByteVec c(n), d(n);
    const auto rid = w1.tag_recv(
        5, ~Tag{0}, make_iov({{c.data(), Count(n)}, {d.data(), Count(n)}}));
    const auto sid = w0.tag_send(
        1, 5, make_iov({{a.data(), Count(n)}, {b.data(), Count(n)}}));
    progress_until(rid, w1);
    EXPECT_EQ(a, c);
    EXPECT_EQ(b, d);
    (void)w1.take_completion(rid);
    progress_until(sid, w0);
    (void)w0.take_completion(sid);
}

// A generic datatype that "packs" by XORing every byte with a key, so the
// test detects whether pack/unpack callbacks actually ran.
struct XorCtx {
    std::byte key;
};
struct XorState {
    XorCtx* ctx;
    const std::byte* src;
    std::byte* dst;
    Count len;
};

Status xor_start_pack(void* ctx, const void* buf, Count count, void** state) {
    *state = new XorState{static_cast<XorCtx*>(ctx),
                          static_cast<const std::byte*>(buf), nullptr, count};
    return Status::success;
}
Status xor_start_unpack(void* ctx, void* buf, Count count, void** state) {
    *state = new XorState{static_cast<XorCtx*>(ctx), nullptr,
                          static_cast<std::byte*>(buf), count};
    return Status::success;
}
Status xor_packed_size(void* state, Count* size) {
    *size = static_cast<XorState*>(state)->len;
    return Status::success;
}
Status xor_pack(void* state, Count offset, void* dst, Count dst_size, Count* used) {
    auto* st = static_cast<XorState*>(state);
    const Count n = std::min(dst_size, st->len - offset);
    for (Count i = 0; i < n; ++i)
        static_cast<std::byte*>(dst)[i] = st->src[offset + i] ^ st->ctx->key;
    *used = n;
    return Status::success;
}
Status xor_unpack(void* state, Count offset, const void* src, Count src_size) {
    auto* st = static_cast<XorState*>(state);
    if (offset + src_size > st->len) return Status::err_unpack;
    for (Count i = 0; i < src_size; ++i)
        st->dst[offset + i] =
            static_cast<const std::byte*>(src)[i] ^ st->ctx->key;
    return Status::success;
}
void xor_finish(void* state) { delete static_cast<XorState*>(state); }

GenericDesc xor_desc(XorCtx& ctx) {
    GenericDesc g;
    g.ops.start_pack = xor_start_pack;
    g.ops.start_unpack = xor_start_unpack;
    g.ops.packed_size = xor_packed_size;
    g.ops.pack = xor_pack;
    g.ops.unpack = xor_unpack;
    g.ops.finish = xor_finish;
    g.ops.ctx = &ctx;
    return g;
}

TEST_F(UcxPair, GenericEagerCallbacksRun) {
    XorCtx key{std::byte{0x5A}};
    const ByteVec src = test::pattern_bytes(500);
    ByteVec dst(500);
    auto gs = xor_desc(key);
    gs.send_buf = src.data();
    gs.count = 500;
    auto gr = xor_desc(key);
    gr.recv_buf = dst.data();
    gr.count = 500;
    const auto rid = w1.tag_recv(3, ~Tag{0}, gr);
    const auto sid = w0.tag_send(1, 3, gs);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst); // XOR applied twice cancels out
    (void)w1.take_completion(rid);
    progress_until(sid, w0);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, GenericRendezvousPipelined) {
    XorCtx key{std::byte{0x33}};
    const std::size_t n = 3 * 512 * 1024 + 777; // several pipeline fragments
    const ByteVec src = test::pattern_bytes(n, 5);
    ByteVec dst(n);
    auto gs = xor_desc(key);
    gs.send_buf = src.data();
    gs.count = Count(n);
    auto gr = xor_desc(key);
    gr.recv_buf = dst.data();
    gr.count = Count(n);
    const auto rid = w1.tag_recv(3, ~Tag{0}, gr);
    const auto sid = w0.tag_send(1, 3, gs);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)w1.take_completion(rid);
    progress_until(sid, w0);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, GenericToContigCrossKind) {
    XorCtx key{std::byte{0x00}}; // identity pack
    const ByteVec src = test::pattern_bytes(2048, 9);
    ByteVec dst(2048);
    auto gs = xor_desc(key);
    gs.send_buf = src.data();
    gs.count = 2048;
    const auto rid = w1.tag_recv(8, ~Tag{0}, make_contig_recv(dst.data(), 2048));
    const auto sid = w0.tag_send(1, 8, gs);
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)w1.take_completion(rid);
    progress_until(sid, w0);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, EagerTruncationReported) {
    const ByteVec src = test::pattern_bytes(100);
    ByteVec dst(60);
    const auto rid = w1.tag_recv(2, ~Tag{0}, make_contig_recv(dst.data(), 60));
    const auto sid = w0.tag_send(1, 2, make_contig_send(src.data(), 100));
    progress_until(rid, w1);
    const auto rc = w1.take_completion(rid);
    EXPECT_EQ(rc.status, Status::err_truncate);
    EXPECT_EQ(rc.received_len, 60);
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), 60), 0);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, RendezvousTruncationAborts) {
    const std::size_t n = 128 * 1024;
    const ByteVec src = test::pattern_bytes(n);
    ByteVec dst(1024);
    const auto rid = w1.tag_recv(2, ~Tag{0}, make_contig_recv(dst.data(), 1024));
    const auto sid = w0.tag_send(1, 2, make_contig_send(src.data(), Count(n)));
    progress_until(rid, w1);
    progress_until(sid, w0);
    EXPECT_EQ(w1.take_completion(rid).status, Status::err_truncate);
    EXPECT_EQ(w0.take_completion(sid).status, Status::err_truncate);
}

TEST_F(UcxPair, TagMaskWildcard) {
    const ByteVec src = test::pattern_bytes(32);
    ByteVec dst(32);
    // Receive with the low 32 bits masked out: any tag matches.
    const auto rid = w1.tag_recv(0, 0, make_contig_recv(dst.data(), 32));
    const auto sid = w0.tag_send(1, 0xDEADBEEF, make_contig_send(src.data(), 32));
    progress_until(rid, w1);
    const auto rc = w1.take_completion(rid);
    EXPECT_EQ(rc.sender_tag, 0xDEADBEEFu);
    EXPECT_EQ(src, dst);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, OrderingPreservedAmongMatches) {
    ByteVec a(4), b(4);
    const std::uint32_t va = 0x11111111, vb = 0x22222222;
    const auto s1 = w0.tag_send(1, 7, make_contig_send(&va, 4));
    const auto s2 = w0.tag_send(1, 7, make_contig_send(&vb, 4));
    const auto r1 = w1.tag_recv(7, ~Tag{0}, make_contig_recv(a.data(), 4));
    const auto r2 = w1.tag_recv(7, ~Tag{0}, make_contig_recv(b.data(), 4));
    progress_until(r1, w1);
    progress_until(r2, w1);
    std::uint32_t ga = 0, gb = 0;
    std::memcpy(&ga, a.data(), 4);
    std::memcpy(&gb, b.data(), 4);
    EXPECT_EQ(ga, va);
    EXPECT_EQ(gb, vb);
    (void)w1.take_completion(r1);
    (void)w1.take_completion(r2);
    (void)w0.take_completion(s1);
    (void)w0.take_completion(s2);
}

TEST_F(UcxPair, ProbeSeesUnexpected) {
    const ByteVec src = test::pattern_bytes(128);
    (void)w0.tag_send(1, 77, make_contig_send(src.data(), 128));
    w1.progress();
    const auto info = w1.probe(77, ~Tag{0});
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->total_len, 128);
    EXPECT_EQ(info->src, 0);
    // Probe is non-destructive.
    EXPECT_TRUE(w1.probe(77, ~Tag{0}).has_value());
}

TEST_F(UcxPair, ProbeSeesRendezvousSize) {
    const std::size_t n = 100 * 1024;
    const ByteVec src = test::pattern_bytes(n);
    (void)w0.tag_send(1, 78, make_contig_send(src.data(), Count(n)));
    w1.progress();
    const auto info = w1.probe(78, ~Tag{0});
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->total_len, Count(n));
}

TEST_F(UcxPair, MprobeRemovesFromMatching) {
    const ByteVec src = test::pattern_bytes(64);
    const auto sid = w0.tag_send(1, 5, make_contig_send(src.data(), 64));
    w1.progress();
    auto handle = w1.mprobe(5, ~Tag{0});
    ASSERT_TRUE(handle.has_value());
    EXPECT_EQ(handle->info.total_len, 64);
    // The message is no longer visible to probe or recv.
    EXPECT_FALSE(w1.probe(5, ~Tag{0}).has_value());
    ByteVec dst(64);
    const auto rid = w1.imrecv(*handle, make_contig_recv(dst.data(), 64));
    progress_until(rid, w1);
    EXPECT_EQ(src, dst);
    (void)w1.take_completion(rid);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, ZeroByteMessage) {
    const auto rid = w1.tag_recv(1, ~Tag{0}, make_contig_recv(nullptr, 0));
    const auto sid = w0.tag_send(1, 1, make_contig_send(nullptr, 0));
    progress_until(rid, w1);
    EXPECT_EQ(w1.take_completion(rid).received_len, 0);
    (void)w0.take_completion(sid);
}

TEST_F(UcxPair, CancelUnmatchedRecv) {
    ByteVec dst(16);
    const auto rid = w1.tag_recv(99, ~Tag{0}, make_contig_recv(dst.data(), 16));
    EXPECT_TRUE(w1.cancel_recv(rid));
    EXPECT_FALSE(w1.cancel_recv(rid)); // already gone
}

TEST_F(UcxPair, VirtualTimeAdvancesWithTransfer) {
    const SimTime before = w1.now();
    const ByteVec src = test::pattern_bytes(4096);
    ByteVec dst(4096);
    const auto rid = w1.tag_recv(1, ~Tag{0}, make_contig_recv(dst.data(), 4096));
    (void)w0.tag_send(1, 1, make_contig_send(src.data(), 4096));
    progress_until(rid, w1);
    const auto rc = w1.take_completion(rid);
    EXPECT_GT(rc.vtime, before);
    // At least one wire latency must have elapsed.
    EXPECT_GE(rc.vtime, test::test_params().latency_us);
}

} // namespace
} // namespace mpicd::ucx
