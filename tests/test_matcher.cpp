// Differential property tests for the hashed tag matcher.
//
// A naive reference model — linear scans over FIFO queues, transcribed
// straight from the MPI matching rules — runs in lockstep with BOTH
// TagMatcher engines (hashed and linear) over thousands of seeded-random
// post / arrive / take / probe / cancel sequences with wildcard masks.
// Any divergence in match pairing (which receive pairs with which
// message) or in ordering is a failure; on mismatch the harness
// binary-searches the shortest failing operation prefix and reports the
// seed + prefix length so the case can be replayed and shrunk by hand.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "ucx/matcher.hpp"

namespace mpicd::ucx {
namespace {

// ---------------------------------------------------------------------------
// Reference model: the MPI matching rules, written as obviously as possible.

struct RefMatcher {
    struct Posted {
        RequestId id;
        Tag tag;
        Tag mask;
    };
    struct Unex {
        Tag tag;
        std::uint64_t uid; // message identity (msg_id)
    };
    std::vector<Posted> posted; // posting order
    std::vector<Unex> unex;     // arrival order

    void post_recv(RequestId id, Tag tag, Tag mask) {
        posted.push_back({id, tag, mask});
    }
    std::optional<RequestId> match_posted(Tag incoming) {
        for (std::size_t i = 0; i < posted.size(); ++i) {
            if (tag_matches(posted[i].tag, posted[i].mask, incoming)) {
                const RequestId id = posted[i].id;
                posted.erase(posted.begin() + static_cast<std::ptrdiff_t>(i));
                return id;
            }
        }
        return std::nullopt;
    }
    bool cancel_posted(RequestId id) {
        for (std::size_t i = 0; i < posted.size(); ++i) {
            if (posted[i].id == id) {
                posted.erase(posted.begin() + static_cast<std::ptrdiff_t>(i));
                return true;
            }
        }
        return false;
    }
    void add_unexpected(Tag tag, std::uint64_t uid) { unex.push_back({tag, uid}); }
    std::optional<std::uint64_t> take_unexpected(Tag tag, Tag mask) {
        for (std::size_t i = 0; i < unex.size(); ++i) {
            if (tag_matches(tag, mask, unex[i].tag)) {
                const std::uint64_t uid = unex[i].uid;
                unex.erase(unex.begin() + static_cast<std::ptrdiff_t>(i));
                return uid;
            }
        }
        return std::nullopt;
    }
    std::optional<std::uint64_t> peek_unexpected(Tag tag, Tag mask) const {
        for (const auto& u : unex) {
            if (tag_matches(tag, mask, u.tag)) return u.uid;
        }
        return std::nullopt;
    }
};

// ---------------------------------------------------------------------------
// Randomized operation stream.

enum class OpKind { post, arrive, take, peek, cancel };

struct Op {
    OpKind kind = OpKind::post;
    Tag tag = 0;
    Tag mask = ~Tag{0};
    std::size_t pick = 0; // cancel: index into the live posted-id set
};

// The p2p layer's wire tag layout, reproduced so the random tag space
// exercises realistic collision structure: [ctx(16) | src(16) | user(32)].
Tag compose_tag(std::uint64_t ctx, std::uint64_t src, std::uint64_t user) {
    return (ctx << 48) | (src << 32) | (user & 0xFFFFFFFFull);
}

constexpr Tag kFullMask = ~Tag{0};
constexpr Tag kCtxMask = 0xFFFFull << 48;
constexpr Tag kSrcMask = 0xFFFFull << 32;
constexpr Tag kUserMask = 0xFFFFFFFFull;

Op gen_op(std::mt19937_64& rng) {
    Op op;
    const std::uint64_t what = rng() % 100;
    if (what < 30) op.kind = OpKind::post;
    else if (what < 60) op.kind = OpKind::arrive;
    else if (what < 75) op.kind = OpKind::take;
    else if (what < 88) op.kind = OpKind::peek;
    else op.kind = OpKind::cancel;

    // Small value pools force collisions: a handful of contexts, sources
    // and user tags, so buckets build real depth and wildcard chains
    // compete with exact matches.
    op.tag = compose_tag(rng() % 3, rng() % 5, rng() % 7);
    switch (rng() % 10) {
        case 0: case 1: case 2: case 3:
            op.mask = kFullMask; break;                    // exact
        case 4: case 5:
            op.mask = kCtxMask | kUserMask; break;         // ANY_SOURCE
        case 6:
            op.mask = kCtxMask | kSrcMask; break;          // ANY_TAG
        case 7:
            op.mask = kCtxMask; break;                     // ANY_SOURCE+ANY_TAG
        case 8:
            op.mask = 0; break;                            // match anything
        default:
            op.mask = rng(); break;                        // adversarial mask
    }
    op.pick = static_cast<std::size_t>(rng());
    return op;
}

// Replays ops[0..n) through the reference model and one TagMatcher engine;
// returns the index of the first diverging operation, or n if none.
std::size_t first_divergence(const std::vector<Op>& ops, std::size_t n,
                             TagMatcher::Mode mode, std::string* why) {
    TagMatcher m(mode);
    RefMatcher ref;
    RequestId next_id = 1;
    std::uint64_t next_uid = 1;
    std::vector<RequestId> live; // posted ids not yet matched/cancelled
    // TagMatcher reports matched messages as UnexpectedMsg; identity rides
    // in msg_id.
    const auto mismatch = [&](std::size_t i, const std::string& detail) {
        if (why != nullptr) *why = "op " + std::to_string(i) + ": " + detail;
        return i;
    };
    for (std::size_t i = 0; i < n; ++i) {
        const Op& op = ops[i];
        switch (op.kind) {
            case OpKind::post: {
                // Mimics Worker::tag_recv: drain the unexpected queue
                // first, post only on miss.
                auto got = m.take_unexpected(op.tag, op.mask);
                auto want = ref.take_unexpected(op.tag, op.mask);
                if (got.has_value() != want.has_value())
                    return mismatch(i, "post: hit/miss divergence");
                if (got.has_value()) {
                    if (got->msg_id != *want)
                        return mismatch(i, "post: paired different messages");
                    break;
                }
                const RequestId id = next_id++;
                m.post_recv(id, op.tag, op.mask);
                ref.post_recv(id, op.tag, op.mask);
                live.push_back(id);
                break;
            }
            case OpKind::arrive: {
                // Mimics handle_eager/handle_rts: match a posted recv,
                // else park as unexpected.
                auto got = m.match_posted(op.tag);
                auto want = ref.match_posted(op.tag);
                if (got != want)
                    return mismatch(i, "arrive: matched different recvs");
                if (got.has_value()) {
                    std::erase(live, *got);
                } else {
                    const std::uint64_t uid = next_uid++;
                    UnexpectedMsg u;
                    u.tag = op.tag;
                    u.msg_id = uid;
                    m.add_unexpected(std::move(u));
                    ref.add_unexpected(op.tag, uid);
                }
                break;
            }
            case OpKind::take: {
                // Mimics mprobe: destructive match against the unexpected
                // queue.
                auto got = m.take_unexpected(op.tag, op.mask);
                auto want = ref.take_unexpected(op.tag, op.mask);
                if (got.has_value() != want.has_value())
                    return mismatch(i, "take: hit/miss divergence");
                if (got.has_value() && got->msg_id != *want)
                    return mismatch(i, "take: paired different messages");
                break;
            }
            case OpKind::peek: {
                const UnexpectedMsg* got = m.peek_unexpected(op.tag, op.mask);
                auto want = ref.peek_unexpected(op.tag, op.mask);
                if ((got != nullptr) != want.has_value())
                    return mismatch(i, "peek: hit/miss divergence");
                if (got != nullptr && got->msg_id != *want)
                    return mismatch(i, "peek: saw different messages");
                break;
            }
            case OpKind::cancel: {
                if (live.empty()) break;
                const RequestId id = live[op.pick % live.size()];
                // The matcher needs (tag, mask) to locate the entry; fish
                // them out of the reference model.
                Tag tag = 0, mask = 0;
                for (const auto& p : ref.posted) {
                    if (p.id == id) {
                        tag = p.tag;
                        mask = p.mask;
                        break;
                    }
                }
                const bool got = m.cancel_posted(id, tag, mask);
                const bool want = ref.cancel_posted(id);
                if (got != want)
                    return mismatch(i, "cancel: found/not-found divergence");
                if (got) std::erase(live, id);
                break;
            }
        }
        if (m.posted_size() != ref.posted.size())
            return mismatch(i, "posted_size divergence");
        if (m.unexpected_size() != ref.unex.size())
            return mismatch(i, "unexpected_size divergence");
    }
    return n;
}

// Runs one seed; on divergence, shrinks to the minimal failing prefix and
// fails with a replayable report.
void run_seed(std::uint64_t seed, std::size_t nops, TagMatcher::Mode mode) {
    std::mt19937_64 rng(seed);
    std::vector<Op> ops;
    ops.reserve(nops);
    for (std::size_t i = 0; i < nops; ++i) ops.push_back(gen_op(rng));

    std::string why;
    const std::size_t div = first_divergence(ops, ops.size(), mode, &why);
    if (div == ops.size()) return;

    // Shrink: binary-search the shortest prefix that still diverges (the
    // divergence index is monotone in the prefix length — a prefix that
    // contains the first diverging op still diverges).
    std::size_t lo = 1, hi = div + 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (first_divergence(ops, mid, mode, nullptr) < mid) hi = mid;
        else lo = mid + 1;
    }
    std::ostringstream msg;
    msg << "differential divergence: seed=" << seed << " mode="
        << (mode == TagMatcher::Mode::hashed ? "hashed" : "linear")
        << " first divergence at " << why
        << "; minimal failing prefix = " << lo << " ops (replay with"
        << " run_seed(" << seed << ", " << lo << "))";
    FAIL() << msg.str();
}

// ---------------------------------------------------------------------------
// The acceptance-criteria sweep: >= 20 seeds x >= 5000 ops, zero divergence.

TEST(MatcherDifferential, HashedMatchesReferenceAcrossSeeds) {
    for (std::uint64_t seed = 1; seed <= 24; ++seed)
        run_seed(seed * 0x9E3779B97F4A7C15ull + seed, 6000,
                 TagMatcher::Mode::hashed);
}

TEST(MatcherDifferential, LinearModeMatchesReferenceAcrossSeeds) {
    // The env escape hatch must stay seed-identical too: it is the
    // ablation baseline.
    for (std::uint64_t seed = 1; seed <= 20; ++seed)
        run_seed(seed * 0xD1B54A32D192ED03ull + seed, 5000,
                 TagMatcher::Mode::linear);
}

// ---------------------------------------------------------------------------
// Targeted unit tests for the ordering rules the differential sweep relies
// on statistically.

TEST(Matcher, ExactFifoPerTag) {
    TagMatcher m(TagMatcher::Mode::hashed);
    m.post_recv(1, 7, kFullMask);
    m.post_recv(2, 7, kFullMask);
    m.post_recv(3, 9, kFullMask);
    EXPECT_EQ(m.match_posted(7), std::optional<RequestId>(1));
    EXPECT_EQ(m.match_posted(7), std::optional<RequestId>(2));
    EXPECT_EQ(m.match_posted(7), std::nullopt);
    EXPECT_EQ(m.match_posted(9), std::optional<RequestId>(3));
    EXPECT_TRUE(m.empty());
}

TEST(Matcher, WildcardVsExactArbitratedByPostingOrder) {
    {
        // Wildcard posted first wins.
        TagMatcher m(TagMatcher::Mode::hashed);
        m.post_recv(1, 0, 0); // matches anything
        m.post_recv(2, 7, kFullMask);
        EXPECT_EQ(m.match_posted(7), std::optional<RequestId>(1));
        EXPECT_EQ(m.match_posted(7), std::optional<RequestId>(2));
    }
    {
        // Exact posted first wins; the wildcard then takes the next one.
        TagMatcher m(TagMatcher::Mode::hashed);
        m.post_recv(1, 7, kFullMask);
        m.post_recv(2, 0, 0);
        EXPECT_EQ(m.match_posted(7), std::optional<RequestId>(1));
        EXPECT_EQ(m.match_posted(9), std::optional<RequestId>(2));
    }
}

TEST(Matcher, UnexpectedArrivalOrderAcrossTags) {
    TagMatcher m(TagMatcher::Mode::hashed);
    for (std::uint64_t uid = 1; uid <= 3; ++uid) {
        UnexpectedMsg u;
        u.tag = (uid == 2) ? 5 : 9; // arrivals: 9, 5, 9
        u.msg_id = uid;
        m.add_unexpected(std::move(u));
    }
    // Wildcard take sees strict arrival order regardless of tag.
    auto a = m.take_unexpected(0, 0);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->msg_id, 1u);
    // Exact take of tag 9 skips over the parked tag-5 message but keeps
    // FIFO within tag 9.
    auto b = m.take_unexpected(9, kFullMask);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->msg_id, 3u);
    auto c = m.take_unexpected(5, kFullMask);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->msg_id, 2u);
    EXPECT_TRUE(m.empty());
}

TEST(Matcher, CancelRemovesOnlyTheTarget) {
    TagMatcher m(TagMatcher::Mode::hashed);
    m.post_recv(1, 7, kFullMask);
    m.post_recv(2, 7, kFullMask);
    EXPECT_TRUE(m.cancel_posted(1, 7, kFullMask));
    EXPECT_FALSE(m.cancel_posted(1, 7, kFullMask));
    EXPECT_EQ(m.match_posted(7), std::optional<RequestId>(2));
    EXPECT_TRUE(m.empty());
}

TEST(Matcher, ModeFromEnvSelectsLinear) {
    ::setenv("MPICD_TAG_MATCH", "linear", 1);
    EXPECT_EQ(TagMatcher::mode_from_env(), TagMatcher::Mode::linear);
    ::setenv("MPICD_TAG_MATCH", "hashed", 1);
    EXPECT_EQ(TagMatcher::mode_from_env(), TagMatcher::Mode::hashed);
    ::unsetenv("MPICD_TAG_MATCH");
    EXPECT_EQ(TagMatcher::mode_from_env(), TagMatcher::Mode::hashed);
}

TEST(Matcher, HashedProbeCostFlatForExactTags) {
    // The structural claim behind bench/stress_matching: with only exact
    // (full-mask) receives posted, the hashed matcher examines exactly one
    // mask group per incoming message, regardless of posted depth.
    for (const std::size_t depth : {16u, 1024u}) {
        TagMatcher m(TagMatcher::Mode::hashed);
        for (std::size_t i = 0; i < depth; ++i)
            m.post_recv(static_cast<RequestId>(i + 1),
                        compose_tag(0, 0, static_cast<std::uint64_t>(i)),
                        kFullMask);
        const std::uint64_t probes0 = m.local_stats().probes;
        const std::uint64_t scanned0 = m.local_stats().scanned_entries;
        for (std::size_t i = depth; i-- > 0;) {
            ASSERT_TRUE(
                m.match_posted(compose_tag(0, 0, static_cast<std::uint64_t>(i)))
                    .has_value());
        }
        const std::uint64_t probes = m.local_stats().probes - probes0;
        const std::uint64_t scanned = m.local_stats().scanned_entries - scanned0;
        EXPECT_EQ(probes, depth);
        EXPECT_EQ(scanned, depth); // exactly 1 group examined per match
    }
}

} // namespace
} // namespace mpicd::ucx
