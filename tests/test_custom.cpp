// Tests for the custom datatype API itself (creation validation, the
// lowering engine, error propagation from callbacks) — the paper's core
// contribution.
#include <gtest/gtest.h>

#include <cstring>

#include "core/engine.hpp"
#include "p2p/universe.hpp"
#include "test_util.hpp"

namespace mpicd::core {
namespace {

Status ok_state(void*, const void*, Count, void** state) {
    *state = nullptr;
    return Status::success;
}
Status ok_state_free(void*) { return Status::success; }
Status q0(void*, const void*, Count, Count* s) {
    *s = 0;
    return Status::success;
}
Status no_pack(void*, const void*, Count, Count, void*, Count, Count*) {
    return Status::err_internal;
}
Status no_unpack(void*, void*, Count, Count, const void*, Count) {
    return Status::err_internal;
}
Status rc1(void*, void*, Count, Count* n) {
    *n = 1;
    return Status::success;
}
Status rg1(void*, void*, Count, Count, void**, Count*) { return Status::success; }

TEST(CustomDatatypeCreate, RequiresMandatoryCallbacks) {
    CustomCallbacks cb;
    CustomDatatype out;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::err_arg);
    cb.query = q0;
    cb.pack = no_pack;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::err_arg); // missing unpack
    cb.unpack = no_unpack;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::success);
    EXPECT_TRUE(out.valid());
    EXPECT_FALSE(out.has_regions());
}

TEST(CustomDatatypeCreate, RegionCallbacksArePaired) {
    CustomCallbacks cb;
    cb.query = q0;
    cb.pack = no_pack;
    cb.unpack = no_unpack;
    cb.region_count = rc1; // region missing
    CustomDatatype out;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::err_arg);
    cb.region = rg1;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::success);
    EXPECT_TRUE(out.has_regions());
}

TEST(CustomDatatypeCreate, StateCallbacksArePaired) {
    CustomCallbacks cb;
    cb.query = q0;
    cb.pack = no_pack;
    cb.unpack = no_unpack;
    cb.state = ok_state; // free missing
    CustomDatatype out;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::err_arg);
    cb.state_free = ok_state_free;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::success);
}

TEST(CustomDatatypeCreate, NullOutRejected) {
    CustomCallbacks cb;
    cb.query = q0;
    cb.pack = no_pack;
    cb.unpack = no_unpack;
    EXPECT_EQ(CustomDatatype::create(cb, nullptr), Status::err_arg);
}

// --- A small "blob with header" type used to exercise the lowering: the
// packed portion is a 16-byte header, the payload is a memory region.
struct Blob {
    std::uint64_t magic = 0;
    std::uint64_t len = 0;
    ByteVec data;
};

struct BlobState {
    int pack_calls = 0;
    int unpack_calls = 0;
};

Status blob_state(void*, const void*, Count, void** state) {
    *state = new BlobState();
    return Status::success;
}
Status blob_state_free(void* state) {
    delete static_cast<BlobState*>(state);
    return Status::success;
}
Status blob_query(void*, const void* buf, Count count, Count* s) {
    (void)buf;
    *s = 16 * count;
    return Status::success;
}
Status blob_pack(void* state, const void* buf, Count count, Count offset, void* dst,
                 Count dst_size, Count* used) {
    auto* st = static_cast<BlobState*>(state);
    ++st->pack_calls;
    const auto* blobs = static_cast<const Blob*>(buf);
    ByteVec hdr(static_cast<std::size_t>(16 * count));
    for (Count i = 0; i < count; ++i) {
        std::memcpy(hdr.data() + i * 16, &blobs[i].magic, 8);
        std::memcpy(hdr.data() + i * 16 + 8, &blobs[i].len, 8);
    }
    const Count n = std::min(dst_size, static_cast<Count>(hdr.size()) - offset);
    std::memcpy(dst, hdr.data() + offset, static_cast<std::size_t>(n));
    *used = n;
    return Status::success;
}
Status blob_unpack(void* state, void* buf, Count count, Count offset, const void* src,
                   Count src_size) {
    auto* st = static_cast<BlobState*>(state);
    ++st->unpack_calls;
    auto* blobs = static_cast<Blob*>(buf);
    if (offset != 0 || src_size != 16 * count) return Status::err_unpack;
    for (Count i = 0; i < count; ++i) {
        std::memcpy(&blobs[i].magic, static_cast<const std::byte*>(src) + i * 16, 8);
        std::uint64_t len = 0;
        std::memcpy(&len, static_cast<const std::byte*>(src) + i * 16 + 8, 8);
        if (len != blobs[i].data.size()) return Status::err_unpack;
        blobs[i].len = len;
    }
    return Status::success;
}
Status blob_region_count(void*, void* buf, Count count, Count* n) {
    (void)buf;
    *n = count;
    return Status::success;
}
Status blob_region(void*, void* buf, Count count, Count n, void** bases, Count* lens) {
    auto* blobs = static_cast<Blob*>(buf);
    if (n != count) return Status::err_region;
    for (Count i = 0; i < count; ++i) {
        bases[i] = blobs[i].data.data();
        lens[i] = static_cast<Count>(blobs[i].data.size());
    }
    return Status::success;
}

CustomDatatype blob_type() {
    CustomCallbacks cb;
    cb.state = blob_state;
    cb.state_free = blob_state_free;
    cb.query = blob_query;
    cb.pack = blob_pack;
    cb.unpack = blob_unpack;
    cb.region_count = blob_region_count;
    cb.region = blob_region;
    CustomDatatype out;
    EXPECT_EQ(CustomDatatype::create(cb, &out), Status::success);
    return out;
}

TEST(CustomEngine, LowerSendBuildsPackedFirstIov) {
    p2p::Universe uni(2, test::test_params());
    const auto type = blob_type();
    Blob blobs[2];
    blobs[0].magic = 0xAAAA;
    blobs[0].len = 10;
    blobs[0].data = test::pattern_bytes(10, 1);
    blobs[1].magic = 0xBBBB;
    blobs[1].len = 20;
    blobs[1].data = test::pattern_bytes(20, 2);

    ucx::BufferDesc desc;
    ASSERT_EQ(lower_custom_send(type, blobs, 2, uni.worker(0), &desc),
              Status::success);
    const auto& iov = std::get<ucx::IovDesc>(desc);
    // First entry: the 32-byte packed header; then one region per blob.
    ASSERT_EQ(iov.entries.size(), 3u);
    EXPECT_EQ(iov.entries[0].len, 32);
    EXPECT_EQ(iov.entries[1].base, blobs[0].data.data());
    EXPECT_EQ(iov.entries[1].len, 10);
    EXPECT_EQ(iov.entries[2].len, 20);
    ASSERT_NE(iov.backing, nullptr);
    std::uint64_t magic = 0;
    std::memcpy(&magic, iov.backing->data(), 8);
    EXPECT_EQ(magic, 0xAAAAu);
}

TEST(CustomEngine, EndToEndRoundTrip) {
    p2p::Universe uni(2, test::test_params());
    const auto type = blob_type();
    Blob send[2], recv[2];
    for (int i = 0; i < 2; ++i) {
        send[i].magic = 100 + static_cast<std::uint64_t>(i);
        send[i].data = test::pattern_bytes(50 * (i + 1), static_cast<std::uint32_t>(i));
        send[i].len = send[i].data.size();
        recv[i].data.resize(send[i].data.size()); // receiver pre-sizes
    }
    auto rq_r = uni.comm(1).irecv_custom(recv, 2, type, 0, 5);
    auto rq_s = uni.comm(0).isend_custom(send, 2, type, 1, 5);
    const auto st_r = rq_r.wait();
    const auto st_s = rq_s.wait();
    EXPECT_EQ(st_r.status, Status::success);
    EXPECT_EQ(st_s.status, Status::success);
    EXPECT_EQ(st_r.bytes, 32 + 50 + 100);
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(recv[i].magic, send[i].magic);
        EXPECT_EQ(recv[i].len, send[i].len);
        EXPECT_EQ(recv[i].data, send[i].data);
    }
}

TEST(CustomEngine, RendezvousRoundTrip) {
    p2p::Universe uni(2, test::test_params());
    const auto type = blob_type();
    Blob send[1], recv[1];
    send[0].magic = 42;
    send[0].data = test::pattern_bytes(256 * 1024, 9); // forces rendezvous
    send[0].len = send[0].data.size();
    recv[0].data.resize(send[0].data.size());
    auto rq_r = uni.comm(1).irecv_custom(recv, 1, type, 0, 5);
    auto rq_s = uni.comm(0).isend_custom(send, 1, type, 1, 5);
    EXPECT_EQ(rq_r.wait().status, Status::success);
    EXPECT_EQ(rq_s.wait().status, Status::success);
    EXPECT_EQ(recv[0].data, send[0].data);
    EXPECT_EQ(recv[0].magic, 42u);
}

TEST(CustomEngine, GenericPipelineLoweringRejectsRegions) {
    p2p::Universe uni(2, test::test_params());
    const auto type = blob_type();
    Blob b;
    ucx::BufferDesc desc;
    EXPECT_EQ(lower_custom_send(type, &b, 1, uni.worker(0), &desc,
                                CustomLowering::generic_pipeline),
              Status::err_unsupported);
}

// Error propagation: a query callback that fails must surface to the user.
Status failing_query(void*, const void*, Count, Count*) { return Status::err_query; }

TEST(CustomEngine, QueryFailurePropagates) {
    p2p::Universe uni(2, test::test_params());
    CustomCallbacks cb;
    cb.query = failing_query;
    cb.pack = no_pack;
    cb.unpack = no_unpack;
    CustomDatatype type;
    ASSERT_EQ(CustomDatatype::create(cb, &type), Status::success);
    int dummy = 0;
    auto rq = uni.comm(0).isend_custom(&dummy, 1, type, 1, 1);
    EXPECT_EQ(rq.wait().status, Status::err_query);
}

Status failing_pack(void*, const void*, Count, Count, void*, Count, Count*) {
    return Status::err_pack;
}
Status query16(void*, const void*, Count, Count* s) {
    *s = 16;
    return Status::success;
}

TEST(CustomEngine, PackFailurePropagates) {
    p2p::Universe uni(2, test::test_params());
    CustomCallbacks cb;
    cb.query = query16;
    cb.pack = failing_pack;
    cb.unpack = no_unpack;
    CustomDatatype type;
    ASSERT_EQ(CustomDatatype::create(cb, &type), Status::success);
    int dummy = 0;
    auto rq = uni.comm(0).isend_custom(&dummy, 1, type, 1, 1);
    EXPECT_EQ(rq.wait().status, Status::err_pack);
}

Status failing_unpack(void*, void*, Count, Count, const void*, Count) {
    return Status::err_unpack;
}
Status identity_pack(void*, const void*, Count, Count offset, void* dst,
                     Count dst_size, Count* used) {
    const Count n = std::min<Count>(16 - offset, dst_size);
    std::memset(dst, 0xAB, static_cast<std::size_t>(n));
    *used = n;
    return Status::success;
}

TEST(CustomEngine, UnpackFailureSurfacesOnRecv) {
    p2p::Universe uni(2, test::test_params());
    CustomCallbacks cb;
    cb.query = query16;
    cb.pack = identity_pack;
    cb.unpack = failing_unpack;
    CustomDatatype type;
    ASSERT_EQ(CustomDatatype::create(cb, &type), Status::success);
    int dummy = 0;
    auto rq_r = uni.comm(1).irecv_custom(&dummy, 1, type, 0, 1);
    auto rq_s = uni.comm(0).isend_custom(&dummy, 1, type, 1, 1);
    EXPECT_EQ(rq_s.wait().status, Status::success);
    EXPECT_EQ(rq_r.wait().status, Status::err_unpack);
}

// State lifetime: the free callback must run exactly once per operation.
struct CountingCtx {
    int alive = 0;
    int total = 0;
};
Status counting_state(void* ctx, const void*, Count, void** state) {
    auto* c = static_cast<CountingCtx*>(ctx);
    ++c->alive;
    ++c->total;
    *state = ctx;
    return Status::success;
}
Status counting_free(void* state) {
    --static_cast<CountingCtx*>(state)->alive;
    return Status::success;
}

TEST(CustomEngine, StateFreedOncePerOperation) {
    p2p::Universe uni(2, test::test_params());
    CountingCtx ctx;
    CustomCallbacks cb;
    cb.state = counting_state;
    cb.state_free = counting_free;
    cb.query = query16;
    cb.pack = identity_pack;
    cb.unpack = [](void*, void*, Count, Count, const void*, Count) {
        return Status::success;
    };
    cb.context = &ctx;
    CustomDatatype type;
    ASSERT_EQ(CustomDatatype::create(cb, &type), Status::success);
    int dummy = 0;
    auto rq_r = uni.comm(1).irecv_custom(&dummy, 1, type, 0, 1);
    auto rq_s = uni.comm(0).isend_custom(&dummy, 1, type, 1, 1);
    EXPECT_EQ(rq_s.wait().status, Status::success);
    EXPECT_EQ(rq_r.wait().status, Status::success);
    EXPECT_EQ(ctx.total, 2); // one state per side
    EXPECT_EQ(ctx.alive, 0); // all freed
}

} // namespace
} // namespace mpicd::core
