// Cross-module integration scenarios: mixed traffic, interleaved datatype
// families, multithreaded ranks, and virtual-time consistency.
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "core/paper_types.hpp"
#include "ddtbench/kernel.hpp"
#include "p2p/collectives.hpp"
#include "p2p/runner.hpp"
#include "pysim/mpi4py_sim.hpp"
#include "serial/archive.hpp"
#include "test_util.hpp"

namespace mpicd {
namespace {

using p2p::Communicator;

TEST(Integration, MixedDatatypeTrafficInterleaved) {
    p2p::Universe uni(2, test::test_params());
    auto& c0 = uni.comm(0);
    auto& c1 = uni.comm(1);

    // Three in-flight messages of different families on distinct tags.
    const ByteVec raw = test::pattern_bytes(2000, 1);
    ByteVec raw_out(2000);

    std::vector<core::StructSimple> ss(32), ss_out(32);
    for (int i = 0; i < 32; ++i) ss[static_cast<std::size_t>(i)] = {i, i, i, i * 1.0};

    auto t = core::struct_simple_dt();
    std::vector<core::StructSimple> dt_in(16), dt_out(16);
    for (int i = 0; i < 16; ++i) dt_in[static_cast<std::size_t>(i)] = {-i, i, -i, i * 3.0};

    auto r1 = c1.irecv_bytes(raw_out.data(), 2000, 0, 1);
    auto r2 = c1.irecv_custom(ss_out.data(), 32,
                              core::custom_datatype_of<core::StructSimple>(), 0, 2);
    auto r3 = c1.irecv(dt_out.data(), 16, t, 0, 3);

    auto s1 = c0.isend_bytes(raw.data(), 2000, 1, 1);
    auto s2 = c0.isend_custom(ss.data(), 32,
                              core::custom_datatype_of<core::StructSimple>(), 1, 2);
    auto s3 = c0.isend(dt_in.data(), 16, t, 1, 3);

    EXPECT_EQ(r1.wait().status, Status::success);
    EXPECT_EQ(r2.wait().status, Status::success);
    EXPECT_EQ(r3.wait().status, Status::success);
    EXPECT_EQ(s1.wait().status, Status::success);
    EXPECT_EQ(s2.wait().status, Status::success);
    EXPECT_EQ(s3.wait().status, Status::success);

    EXPECT_EQ(raw, raw_out);
    EXPECT_DOUBLE_EQ(ss_out[31].d, 31.0);
    EXPECT_DOUBLE_EQ(dt_out[15].d, 45.0);
}

TEST(Integration, PingPongVirtualTimeMonotonic) {
    p2p::Universe uni(2, test::test_params());
    SimTime last = 0.0;
    ByteVec buf(4096), tmp(4096);
    for (int iter = 0; iter < 5; ++iter) {
        auto r = uni.comm(1).irecv_bytes(tmp.data(), 4096, 0, iter);
        auto s = uni.comm(0).isend_bytes(buf.data(), 4096, 1, iter);
        (void)s.wait();
        (void)r.wait();
        auto r2 = uni.comm(0).irecv_bytes(buf.data(), 4096, 1, 100 + iter);
        auto s2 = uni.comm(1).isend_bytes(tmp.data(), 4096, 0, 100 + iter);
        (void)s2.wait();
        const auto st = r2.wait();
        EXPECT_GT(st.vtime, last);
        last = st.vtime;
    }
}

TEST(Integration, EagerVsRendezvousBoundary) {
    // Exactly at, below and above the eager threshold.
    const auto params = test::test_params();
    p2p::Universe uni(2, params);
    for (const Count n : {params.eager_threshold - 1, params.eager_threshold,
                          params.eager_threshold + 1, params.eager_threshold * 4}) {
        const ByteVec src = test::pattern_bytes(static_cast<std::size_t>(n),
                                                static_cast<std::uint32_t>(n));
        ByteVec dst(static_cast<std::size_t>(n));
        auto r = uni.comm(1).irecv_bytes(dst.data(), n, 0, 1);
        auto s = uni.comm(0).isend_bytes(src.data(), n, 1, 1);
        EXPECT_EQ(r.wait().status, Status::success) << n;
        EXPECT_EQ(s.wait().status, Status::success) << n;
        EXPECT_EQ(src, dst) << n;
    }
}

TEST(Integration, ThreadedRanksExchangeSerializedObjects) {
    // Rank 0 serializes a config with the archive substrate, rank 1
    // receives bytes and deserializes — the "C++ application" story.
    std::atomic<bool> checked{false};
    p2p::run_world(2, [&](Communicator& comm) {
        if (comm.rank() == 0) {
            serial::OArchive ar;
            ar.put_string("simulation");
            ar.put_scalar<std::int64_t>(1234);
            ar.put_vector(test::iota_vec<double>(100));
            const auto& stream = ar.stream();
            EXPECT_EQ(
                comm.send_bytes(stream.data(), Count(stream.size()), 1, 1).status,
                Status::success);
        } else {
            const auto info = comm.probe(0, 1);
            ByteVec buf(static_cast<std::size_t>(info.bytes));
            EXPECT_EQ(comm.recv_bytes(buf.data(), info.bytes, 0, 1).status,
                      Status::success);
            serial::IArchive ia(buf);
            std::string name;
            std::int64_t id = 0;
            std::vector<double> values;
            ASSERT_EQ(ia.get_string(&name), Status::success);
            ASSERT_EQ(ia.get_scalar(&id), Status::success);
            ASSERT_EQ(ia.get_vector(&values), Status::success);
            EXPECT_EQ(name, "simulation");
            EXPECT_EQ(id, 1234);
            EXPECT_EQ(values.size(), 100u);
            EXPECT_DOUBLE_EQ(values[99], 99.0);
            checked = true;
        }
    }, test::test_params());
    EXPECT_TRUE(checked.load());
}

TEST(Integration, ThreadedConcurrentSendersSharedTag) {
    // The paper's §VI threading concern: several threads (ranks here)
    // sending to one receiver on the same tag — every message must arrive
    // intact because each custom message is a single "atomic" operation.
    constexpr int senders = 4;
    std::atomic<int> verified{0};
    p2p::run_world(senders + 1, [&](Communicator& comm) {
        using Sub = std::vector<std::int32_t>;
        const auto& type = core::custom_datatype_of<Sub>();
        if (comm.rank() == 0) {
            for (int m = 0; m < senders; ++m) {
                // Peek who's next, then receive their vector-of-vectors.
                const auto probe = comm.probe(p2p::kAnySource, 7);
                std::vector<Sub> got(3);
                for (auto& v : got) v.resize(256);
                EXPECT_EQ(comm
                              .recv_custom(got.data(), 3, type, probe.source, 7)
                              .status,
                          Status::success);
                for (const auto& v : got) {
                    EXPECT_EQ(v[0], probe.source * 1000);
                }
                ++verified;
            }
        } else {
            std::vector<Sub> data(3);
            for (auto& v : data) {
                v.assign(256, 0);
                v[0] = comm.rank() * 1000;
            }
            EXPECT_EQ(comm.send_custom(data.data(), 3, type, 0, 7).status,
                      Status::success);
        }
    }, test::test_params());
    EXPECT_EQ(verified.load(), senders);
}

TEST(Integration, PickleOverCustomMatchesOtherMethods) {
    // The same object must arrive identically under all three strategies.
    pysim::PyDict d;
    d.emplace_back("a", pysim::PyValue(pysim::NdArray::pattern(pysim::DType::f64,
                                                               {32768}, 1)));
    d.emplace_back("b", pysim::PyValue("metadata"));
    const pysim::PyValue obj{std::move(d)};
    for (const auto method :
         {pysim::PyXfer::basic, pysim::PyXfer::oob_multi, pysim::PyXfer::oob_cdt}) {
        pysim::PyValue got;
        pysim::PyXferOptions opts;
        opts.method = method;
        p2p::run_world(2, [&](Communicator& comm) {
            if (comm.rank() == 0) {
                EXPECT_EQ(pysim::send_pyobj(comm, obj, 1, 2, opts), Status::success);
            } else {
                EXPECT_EQ(pysim::recv_pyobj(comm, &got, 0, 2, opts), Status::success);
            }
        }, test::test_params());
        EXPECT_EQ(got, obj) << to_cstring(method);
    }
}

TEST(Integration, DdtbenchKernelOverThreadedWorld) {
    auto send = ddtbench::make_kernel("MILC_su3_zd");
    auto recv = ddtbench::make_kernel("MILC_su3_zd");
    send->resize(512 * 1024);
    recv->resize(512 * 1024);
    send->fill(11);
    recv->clear();
    p2p::run_world(2, [&](Communicator& comm) {
        const auto& type = ddtbench::kernel_region_type();
        if (comm.rank() == 0) {
            EXPECT_EQ(comm.send_custom(send.get(), 1, type, 1, 1).status,
                      Status::success);
        } else {
            EXPECT_EQ(comm.recv_custom(recv.get(), 1, type, 0, 1).status,
                      Status::success);
        }
    }, test::test_params());
    EXPECT_TRUE(recv->verify(*send));
}

} // namespace
} // namespace mpicd

namespace mpicd {
namespace {

// Soak test: a few hundred messages of random sizes and datatype families
// exchanged among 4 ranks concurrently, every payload verified, and every
// worker drained to idle at the end.
TEST(Integration, RandomTrafficSoak) {
    constexpr int kRanks = 4;
    constexpr int kRounds = 40;
    std::atomic<int> verified{0};
    p2p::run_world(kRanks, [&](Communicator& comm) {
        const int rank = comm.rank();
        std::mt19937 rng(static_cast<unsigned>(rank) * 40503u + 977u);
        std::uniform_int_distribution<std::size_t> size_pick(1, 96 * 1024);
        for (int round = 0; round < kRounds; ++round) {
            const int peer = (rank + 1 + round % (kRanks - 1)) % kRanks;
            // Each (src, dst, round) has a deterministic payload both sides
            // can compute.
            const auto out_seed =
                static_cast<std::uint32_t>(rank * 1000 + peer * 100 + round);
            std::mt19937 size_rng(out_seed);
            const std::size_t out_n = 1 + size_rng() % (96 * 1024);
            const ByteVec out = test::pattern_bytes(out_n, out_seed);

            const int src = [&] {
                for (int s = 0; s < kRanks; ++s) {
                    if (s != rank && (s + 1 + round % (kRanks - 1)) % kRanks == rank)
                        return s;
                }
                return -1;
            }();
            ASSERT_GE(src, 0);
            const auto in_seed =
                static_cast<std::uint32_t>(src * 1000 + rank * 100 + round);
            std::mt19937 in_rng(in_seed);
            const std::size_t in_n = 1 + in_rng() % (96 * 1024);
            ByteVec in(in_n);

            auto rr = comm.irecv_bytes(in.data(), Count(in_n), src, round);
            auto rs = comm.isend_bytes(out.data(), Count(out_n), peer, round);
            ASSERT_EQ(rr.wait().status, Status::success);
            ASSERT_EQ(rs.wait().status, Status::success);
            ASSERT_EQ(in, test::pattern_bytes(in_n, in_seed))
                << "rank " << rank << " round " << round;
            ++verified;
        }
        // Everyone synchronizes, then the transport must be fully drained.
        ASSERT_EQ(p2p::barrier(comm), Status::success);
        EXPECT_TRUE(comm.worker().idle());
    }, test::test_params());
    EXPECT_EQ(verified.load(), kRanks * kRounds);
}

} // namespace
} // namespace mpicd
