// Minimal C++20 generator coroutine.
//
// The paper (§V-C, Listing 9) uses std::generator to suspend a pack loop
// nest mid-iteration and resume it for the next fragment buffer. GCC 12
// ships C++20 coroutines but not std::generator (C++23), so this is the
// small subset needed: lazily-resumed values, exception propagation, and
// a final co_return value retrievable after exhaustion.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace mpicd::coro {

template <typename T>
class generator {
public:
    struct promise_type {
        std::optional<T> current;
        std::optional<T> result; // value passed to co_return
        std::exception_ptr exception;

        generator get_return_object() {
            return generator{std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        std::suspend_always yield_value(T value) {
            current = std::move(value);
            return {};
        }
        void return_value(T value) { result = std::move(value); }
        void unhandled_exception() { exception = std::current_exception(); }
    };

    generator() = default;
    explicit generator(std::coroutine_handle<promise_type> h) : handle_(h) {}
    generator(generator&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
    generator& operator=(generator&& other) noexcept {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }
    generator(const generator&) = delete;
    generator& operator=(const generator&) = delete;
    ~generator() { destroy(); }

    // Resume the coroutine; returns the next co_yield value, or nullopt
    // once the coroutine has co_returned (see result()).
    [[nodiscard]] std::optional<T> next() {
        if (!handle_ || handle_.done()) return std::nullopt;
        handle_.promise().current.reset();
        handle_.resume();
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
        if (handle_.done()) return std::nullopt;
        return handle_.promise().current;
    }

    [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

    // The co_return value; valid once done().
    [[nodiscard]] const std::optional<T>& result() const {
        static const std::optional<T> none;
        return handle_ ? handle_.promise().result : none;
    }

private:
    void destroy() {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }
    std::coroutine_handle<promise_type> handle_;
};

} // namespace mpicd::coro
