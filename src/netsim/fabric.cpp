#include "netsim/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mpicd::netsim {

Fabric::Fabric(int num_endpoints, WireParams params)
    : params_(params),
      inboxes_(static_cast<std::size_t>(num_endpoints)),
      link_free_at_(static_cast<std::size_t>(num_endpoints) *
                        static_cast<std::size_t>(num_endpoints) *
                        static_cast<std::size_t>(std::max(1, params.rails)),
                    0.0) {
    assert(num_endpoints > 0);
}

SimTime Fabric::transmit(Packet&& pkt, SimTime ready, Count wire_bytes,
                         Count sg_entries, int rail) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& free_at = link_free_at_[link_index(pkt.src, pkt.dst, rail)];
    const SimTime start = std::max(ready + params_.sg_overhead(sg_entries), free_at);
    const SimTime end = start + params_.serialize_time(wire_bytes);
    free_at = end;
    pkt.arrival = end + params_.latency_us;
    pkt.seq = next_seq_++;
    const SimTime arrival = pkt.arrival;
    inboxes_[static_cast<std::size_t>(pkt.dst)].q.push_back(std::move(pkt));
    lock.unlock();
    cv_.notify_all();
    return arrival;
}

SimTime Fabric::transmit_control(Packet&& pkt, SimTime ready) {
    std::unique_lock<std::mutex> lock(mutex_);
    pkt.arrival = ready + params_.latency_us;
    pkt.seq = next_seq_++;
    const SimTime arrival = pkt.arrival;
    inboxes_[static_cast<std::size_t>(pkt.dst)].q.push_back(std::move(pkt));
    lock.unlock();
    cv_.notify_all();
    return arrival;
}

std::optional<Packet> Fabric::poll(int ep) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& inbox = inboxes_[static_cast<std::size_t>(ep)];
    if (inbox.q.empty()) return std::nullopt;
    Packet pkt = std::move(inbox.q.front());
    inbox.q.pop_front();
    return pkt;
}

Packet Fabric::poll_blocking(int ep) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& inbox = inboxes_[static_cast<std::size_t>(ep)];
    cv_.wait(lock, [&] { return !inbox.q.empty(); });
    Packet pkt = std::move(inbox.q.front());
    inbox.q.pop_front();
    return pkt;
}

bool Fabric::inbox_empty(int ep) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inboxes_[static_cast<std::size_t>(ep)].q.empty();
}

SimTime Fabric::rdma_write(int src_ep, int dst_ep, const void* src, void* dst,
                           Count bytes, SimTime ready) {
    std::memcpy(dst, src, static_cast<std::size_t>(bytes));
    return rdma_cost(src_ep, dst_ep, bytes, 1, ready);
}

SimTime Fabric::rdma_cost(int src_ep, int dst_ep, Count bytes, Count sg_entries,
                          SimTime ready, int rail) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& free_at = link_free_at_[link_index(src_ep, dst_ep, rail)];
    const SimTime start = std::max(ready + params_.sg_overhead(sg_entries), free_at);
    const SimTime end = start + params_.serialize_time(bytes);
    free_at = end;
    return end + params_.latency_us;
}

void Fabric::reset_time() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& t : link_free_at_) t = 0.0;
}

} // namespace mpicd::netsim
