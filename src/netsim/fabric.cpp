#include "netsim/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "base/metrics.hpp"
#include "base/trace.hpp"

namespace mpicd::netsim {

namespace {

// All cross-node traffic between a node pair shares one uplink serializer
// per rail (link_free_slot), so a transfer can queue behind unrelated
// traffic. wire/uplink_wait_ns records that queuing delay for EVERY
// cross-node transfer (zeros included — the count is the transfer count,
// the sum the contention); a fabric.uplink_wait trace instant fires only
// when the wait is non-zero. This is what decomposes a hier-vs-flat
// collective win into "fewer uplink messages" vs "less queuing".
void record_uplink_wait(SimTime wait_us, SimTime start, Count wire_bytes) {
    static Histogram& h = metrics().histogram("wire", "uplink_wait_ns");
    const double wait_ns = wait_us * 1000.0;
    h.record(wait_ns > 0.0 ? static_cast<std::uint64_t>(wait_ns) : 0);
    if (wait_us > 0.0 && trace::enabled()) {
        // vt = serialization start; callers emit under the owning message's
        // MsgScope so the wait lands inside that message's span tree.
        trace::instant("fabric", "uplink_wait", start, "wait_ns",
                       static_cast<std::uint64_t>(wait_ns), "bytes",
                       static_cast<std::uint64_t>(wire_bytes));
    }
}

} // namespace

Fabric::Fabric(int num_endpoints, WireParams params, FaultConfig faults)
    : params_(params),
      inboxes_(static_cast<std::size_t>(num_endpoints)),
      link_free_at_(static_cast<std::size_t>(num_endpoints) *
                        static_cast<std::size_t>(num_endpoints) *
                        static_cast<std::size_t>(std::max(1, params.rails)),
                    0.0),
      injector_(num_endpoints, faults),
      limbo_(static_cast<std::size_t>(num_endpoints) *
             static_cast<std::size_t>(num_endpoints)) {
    assert(num_endpoints > 0);
    if (params_.ranks_per_node > 0) {
        node_count_ = static_cast<std::size_t>(
            (num_endpoints + params_.ranks_per_node - 1) / params_.ranks_per_node);
        node_link_free_at_.assign(node_count_ * node_count_ *
                                      static_cast<std::size_t>(
                                          std::max(1, params_.rails)),
                                  0.0);
    }
}

Fabric::~Fabric() {
    const FaultCounters& c = injector_.counters();
    if (c.packets_seen == 0) return; // injector never ran: keep groups clean
    MetricsRegistry& m = metrics();
    m.add("fault", "packets_seen", c.packets_seen);
    m.add("fault", "dropped", c.dropped);
    m.add("fault", "duplicated", c.duplicated);
    m.add("fault", "reordered", c.reordered);
    m.add("fault", "corrupted", c.corrupted);
    m.add("fault", "delayed", c.delayed);
}

void Fabric::push_locked(Packet&& pkt) {
    inboxes_[static_cast<std::size_t>(pkt.dst)].q.push_back(std::move(pkt));
}

void Fabric::deliver_locked(Packet&& pkt) {
    if (!injector_.active()) {
        push_locked(std::move(pkt));
        return;
    }
    const auto d = injector_.decide(
        pkt.src, pkt.dst, pkt.kind,
        static_cast<std::uint64_t>(pkt.header.size() + pkt.payload.size()));
    if (trace::enabled()) {
        if (d.drop) {
            trace::instant("net", "fault_drop", pkt.arrival, "kind", pkt.kind,
                           "seq", pkt.link_seq);
        }
        if (d.duplicate) {
            trace::instant("net", "fault_dup", pkt.arrival, "kind", pkt.kind,
                           "seq", pkt.link_seq);
        }
        if (d.reorder) {
            trace::instant("net", "fault_reorder", pkt.arrival, "kind",
                           pkt.kind, "seq", pkt.link_seq);
        }
        if (d.corrupt) {
            trace::instant("net", "fault_corrupt", pkt.arrival, "kind",
                           pkt.kind, "byte", d.corrupt_byte);
        }
        if (d.extra_delay_us > 0.0) {
            trace::instant("net", "fault_delay", pkt.arrival, "kind", pkt.kind,
                           "seq", pkt.link_seq);
        }
    }
    pkt.arrival += d.extra_delay_us;
    if (d.corrupt) {
        // Flip one bit of the concatenated header+payload bytes. The crc
        // field is deliberately left intact so the receiver can detect the
        // damage (a corrupted on-wire CRC is equivalent to a drop anyway).
        std::uint64_t i = d.corrupt_byte;
        std::byte* b = nullptr;
        if (i < pkt.header.size()) {
            b = &pkt.header[static_cast<std::size_t>(i)];
        } else if (i - pkt.header.size() < pkt.payload.size()) {
            // The payload slab may be shared with the sender's retransmit
            // queue; detach before flipping so the pristine copy survives
            // to be retransmitted.
            pkt.payload.ensure_unique();
            b = &pkt.payload[static_cast<std::size_t>(i - pkt.header.size())];
        }
        if (b != nullptr) *b ^= static_cast<std::byte>(1u << d.corrupt_bit);
    }
    // A packet leaving limbo has waited for exactly one successor on its
    // link; release it after the current packet is enqueued (the swap).
    const std::size_t l = static_cast<std::size_t>(pkt.src) * inboxes_.size() +
                          static_cast<std::size_t>(pkt.dst);
    std::optional<Packet> release;
    if (limbo_[l].has_value()) {
        release = std::move(*limbo_[l]);
        limbo_[l].reset();
    }
    if (!d.drop) {
        if (d.duplicate) {
            Packet copy = pkt; // same link_seq/crc: receiver dedups
            copy.arrival += params_.link_latency(pkt.src, pkt.dst);
            copy.seq = next_seq_++;
            if (d.reorder) {
                limbo_[l] = std::move(pkt);
                push_locked(std::move(copy));
            } else {
                push_locked(std::move(pkt));
                push_locked(std::move(copy));
            }
        } else if (d.reorder) {
            limbo_[l] = std::move(pkt);
        } else {
            push_locked(std::move(pkt));
        }
    }
    if (release.has_value()) push_locked(std::move(*release));
}

void Fabric::flush_limbo_locked(int ep) {
    for (auto& slot : limbo_) {
        if (slot.has_value() && slot->dst == ep) {
            push_locked(std::move(*slot));
            slot.reset();
        }
    }
}

SimTime Fabric::transmit(Packet&& pkt, SimTime ready, Count wire_bytes,
                         Count sg_entries, int rail) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& free_at = link_free_slot(pkt.src, pkt.dst, rail);
    const SimTime avail = ready + params_.sg_overhead(sg_entries);
    const SimTime start = std::max(avail, free_at);
    const SimTime end = start + params_.serialize_time_on(wire_bytes, pkt.src, pkt.dst);
    free_at = end;
    pkt.arrival = end + params_.link_latency(pkt.src, pkt.dst);
    pkt.seq = next_seq_++;
    const SimTime arrival = pkt.arrival;
    // Attribute this packet's events (tx + any fault instants from
    // deliver_locked) to the owning message, including retransmits fired
    // from timer context where no caller scope is open. Unattributed
    // packets keep whatever scope the caller holds.
    const trace::MsgScope msg_scope(
        pkt.msg_id != 0 ? pkt.msg_id : trace::current_msg());
    if (params_.cross_node(pkt.src, pkt.dst))
        record_uplink_wait(start - avail, start, wire_bytes);
    trace::instant("net", "tx", arrival, "kind", pkt.kind, "bytes",
                   static_cast<std::uint64_t>(wire_bytes));
    deliver_locked(std::move(pkt));
    lock.unlock();
    cv_.notify_all();
    return arrival;
}

SimTime Fabric::transmit_control(Packet&& pkt, SimTime ready) {
    std::unique_lock<std::mutex> lock(mutex_);
    pkt.arrival = ready + params_.link_latency(pkt.src, pkt.dst);
    pkt.seq = next_seq_++;
    const SimTime arrival = pkt.arrival;
    const trace::MsgScope msg_scope(
        pkt.msg_id != 0 ? pkt.msg_id : trace::current_msg());
    trace::instant("net", "tx_ctrl", arrival, "kind", pkt.kind, "seq",
                   pkt.link_seq);
    deliver_locked(std::move(pkt));
    lock.unlock();
    cv_.notify_all();
    return arrival;
}

std::optional<Packet> Fabric::poll(int ep) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& inbox = inboxes_[static_cast<std::size_t>(ep)];
    if (inbox.q.empty()) {
        // An empty poll releases any reorder-limbo packet for this
        // endpoint so a held packet can never be delayed unboundedly.
        flush_limbo_locked(ep);
        if (inbox.q.empty()) return std::nullopt;
    }
    Packet pkt = std::move(inbox.q.front());
    inbox.q.pop_front();
    return pkt;
}

Packet Fabric::poll_blocking(int ep) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& inbox = inboxes_[static_cast<std::size_t>(ep)];
    if (inbox.q.empty()) flush_limbo_locked(ep);
    cv_.wait(lock, [&] { return !inbox.q.empty(); });
    Packet pkt = std::move(inbox.q.front());
    inbox.q.pop_front();
    return pkt;
}

bool Fabric::inbox_empty(int ep) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& inbox = inboxes_[static_cast<std::size_t>(ep)];
    if (inbox.q.empty()) flush_limbo_locked(ep);
    return inbox.q.empty();
}

SimTime Fabric::rdma_write(int src_ep, int dst_ep, const void* src, void* dst,
                           Count bytes, SimTime ready) {
    std::memcpy(dst, src, static_cast<std::size_t>(bytes));
    datapath::add_copied(bytes);
    return rdma_cost(src_ep, dst_ep, bytes, 1, ready);
}

SimTime Fabric::rdma_cost(int src_ep, int dst_ep, Count bytes, Count sg_entries,
                          SimTime ready, int rail) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& free_at = link_free_slot(src_ep, dst_ep, rail);
    const SimTime avail = ready + params_.sg_overhead(sg_entries);
    const SimTime start = std::max(avail, free_at);
    const SimTime end = start + params_.serialize_time_on(bytes, src_ep, dst_ep);
    free_at = end;
    // rdma_cost runs synchronously under the caller's MsgScope, so the
    // uplink-wait instant is attributed to the rendezvous message.
    if (params_.cross_node(src_ep, dst_ep))
        record_uplink_wait(start - avail, start, bytes);
    return end + params_.link_latency(src_ep, dst_ep);
}

void Fabric::reset_time() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& t : link_free_at_) t = 0.0;
    for (auto& t : node_link_free_at_) t = 0.0;
}

} // namespace mpicd::netsim
