// Fault-injection stage of the simulated fabric.
//
// Sits between the protocol layer (src/ucx) and packet delivery: every
// packet handed to Fabric::transmit / transmit_control passes through a
// FaultInjector that may drop it, duplicate it, reorder it against the
// next packet on the same link, delay its arrival (jitter), or flip one
// bit of its header/payload bytes. Two sources of faults compose:
//
//  - *Scheduled* faults: an exact, table-driven schedule ("drop the 3rd
//    RTS on link 0->1") used by the deterministic test harness.
//  - *Random* faults: independent per-link Bernoulli draws from a seeded
//    std::mt19937_64, so a (seed, traffic) pair always reproduces the
//    same fault pattern. Every packet consumes a fixed number of draws,
//    so outcomes never shift the stream for later packets.
//
// With the default configuration (all probabilities zero, no schedule)
// the injector is inert: Fabric skips it entirely and the wire behaves
// byte-for-byte like the lossless seed fabric. Whenever the injector is
// active, the ucx worker automatically switches on its reliable-delivery
// protocol (CRC + ack + retransmit; see docs/FAULTS.md).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "base/time.hpp"

namespace mpicd::netsim {

// Env-tunable fault configuration (all MPICD_FAULT_* variables).
struct FaultConfig {
    // Seed for the per-link deterministic RNGs (MPICD_FAULT_SEED).
    std::uint64_t seed = 0xF4017u;
    // Independent per-packet probabilities in [0, 1].
    double drop = 0.0;    // MPICD_FAULT_DROP: packet vanishes after the wire
    double dup = 0.0;     // MPICD_FAULT_DUP: a second copy arrives later
    double reorder = 0.0; // MPICD_FAULT_REORDER: swapped with next packet on link
    double corrupt = 0.0; // MPICD_FAULT_CORRUPT: one bit of header/payload flips
    double delay = 0.0;   // MPICD_FAULT_DELAY: arrival jitter is added
    // Maximum extra arrival delay for a delayed packet, virtual us
    // (MPICD_FAULT_DELAY_US); actual jitter is uniform in (0, max].
    SimTime delay_max_us = 25.0;
    // Force the reliable-delivery protocol on even with no faults
    // (MPICD_RELIABLE=1); used to measure protocol overhead in isolation.
    bool force_reliable = false;

    [[nodiscard]] static FaultConfig from_env();

    // True when any random fault class can fire.
    [[nodiscard]] bool any_random() const noexcept {
        return drop > 0.0 || dup > 0.0 || reorder > 0.0 || corrupt > 0.0 ||
               delay > 0.0;
    }
};

// One entry of a deterministic fault schedule. `nth` counts matching
// packets on the (src, dst) link starting at 1; a packet matches when
// `kind_filter` is 0 (any) or equals the packet's wire kind (the ucx
// PacketKind values). Scheduled faults fire once and are independent of
// the random fault stream.
enum class FaultAction : std::uint8_t { drop, duplicate, reorder, corrupt, delay };

struct ScheduledFault {
    int src = -1;
    int dst = -1;
    FaultAction action = FaultAction::drop;
    std::uint16_t kind_filter = 0; // 0 = any packet kind
    std::uint64_t nth = 1;         // 1-based occurrence on the link
    // corrupt: byte index into the concatenated header+payload bytes
    // (clamped); bit index in [0,7].
    std::uint64_t byte = 0;
    std::uint8_t bit = 0;
    // delay: extra virtual arrival delay.
    SimTime delay_us = 0.0;
};

// Diagnostics: how many faults actually fired, by class.
struct FaultCounters {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;
    std::uint64_t packets_seen = 0;
};

class FaultInjector {
public:
    FaultInjector(int num_endpoints, FaultConfig cfg);

    // Active = at least one fault source can fire; the fabric bypasses the
    // injector entirely when this is false.
    [[nodiscard]] bool active() const noexcept {
        return cfg_.any_random() || scheduled_remaining_ > 0;
    }
    // The ucx layer runs its ack/CRC/retransmit protocol when this is true.
    // Sticky: once any fault source has ever been armed the whole run stays
    // in protocol, even after the last scheduled fault has fired.
    [[nodiscard]] bool reliable() const noexcept {
        return cfg_.any_random() || !schedule_.empty() || cfg_.force_reliable;
    }

    [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] const FaultCounters& counters() const noexcept { return counters_; }

    // Append a deterministic fault to the schedule (call before traffic).
    void schedule(const ScheduledFault& f);

    // The verdict for one packet. corrupt_byte indexes the concatenated
    // header+payload bytes.
    struct Decision {
        bool drop = false;
        bool duplicate = false;
        bool reorder = false;
        bool corrupt = false;
        std::uint64_t corrupt_byte = 0;
        std::uint8_t corrupt_bit = 0;
        SimTime extra_delay_us = 0.0;
    };

    // Decide the fate of the next packet on link src->dst with wire kind
    // `kind` and `nbytes` of corruptible (header+payload) bytes.
    // NOT thread-safe: the Fabric calls this under its own mutex.
    [[nodiscard]] Decision decide(int src, int dst, std::uint16_t kind,
                                  std::uint64_t nbytes);

    // Reset RNG streams, per-link packet ordinals and counters to the
    // initial state (the schedule is kept and re-armed).
    void reset();

private:
    [[nodiscard]] std::size_t link(int src, int dst) const noexcept {
        return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(dst);
    }

    FaultConfig cfg_;
    int n_ = 0;
    // Per-link RNG so the fault pattern on a link is independent of
    // traffic on other links (stable under interleaving changes).
    std::vector<std::mt19937_64> rng_;
    // Per-link ordinal of packets seen, total and by wire kind (for
    // schedule matching).
    struct LinkState {
        std::uint64_t seen_any = 0;
        std::vector<std::pair<std::uint16_t, std::uint64_t>> seen_by_kind;
        [[nodiscard]] std::uint64_t bump(std::uint16_t kind);
    };
    std::vector<LinkState> links_;
    std::vector<ScheduledFault> schedule_;
    std::vector<bool> fired_;
    std::size_t scheduled_remaining_ = 0;
    FaultCounters counters_;
};

} // namespace mpicd::netsim
