#include "netsim/wire_model.hpp"

#include "base/config.hpp"

namespace mpicd::netsim {

WireParams WireParams::from_env() {
    WireParams p;
    p.latency_us = env_double_or("MPICD_LATENCY_US", p.latency_us);
    // Unit-converted knobs are applied only when the variable is actually
    // set: converting the default out to env units and back would round
    // twice and drift the modeled transfer times between a run with no
    // overrides and a run that re-exports the printed defaults.
    if (const auto gbps = env_double("MPICD_BANDWIDTH_GBPS")) {
        p.bandwidth_Bpus = *gbps * kBpusPerGbps;
    }
    p.sg_entry_us = env_double_or("MPICD_SG_ENTRY_US", p.sg_entry_us);
    if (const auto gBps = env_double("MPICD_HOST_COPY_GBPS")) {
        p.host_copy_Bpus = *gBps * kBpusPerGBps;
    }
    p.eager_threshold = env_int_or("MPICD_EAGER_THRESHOLD", p.eager_threshold);
    p.iov_eager_threshold =
        env_int_or("MPICD_IOV_EAGER_THRESHOLD", p.iov_eager_threshold);
    p.rndv_frag_size = env_int_or("MPICD_RNDV_FRAG_SIZE", p.rndv_frag_size);
    p.rndv_ctrl_us = env_double_or("MPICD_RNDV_CTRL_US", p.rndv_ctrl_us);
    p.frag_overhead_us = env_double_or("MPICD_FRAG_OVERHEAD_US", p.frag_overhead_us);
    p.rails = static_cast<int>(env_int_or("MPICD_RAILS", p.rails));
    if (p.rails < 1) p.rails = 1;
    p.rto_us = env_double_or("MPICD_RTO_US", p.rto_us);
    p.max_retries = static_cast<int>(env_int_or("MPICD_MAX_RETRIES", p.max_retries));
    if (p.max_retries < 0) p.max_retries = 0;
    p.op_timeout_us = env_double_or("MPICD_OP_TIMEOUT_US", p.op_timeout_us);
    p.ranks_per_node =
        static_cast<int>(env_int_or("MPICD_RANKS_PER_NODE", p.ranks_per_node));
    if (p.ranks_per_node < 0) p.ranks_per_node = 0;
    p.inter_latency_us = env_double_or("MPICD_INTER_LATENCY_US", p.inter_latency_us);
    // Same presence-based conversion as MPICD_BANDWIDTH_GBPS; a negative
    // value is the "same as intra" sentinel and is carried through as-is so
    // the printed defaults round-trip.
    if (const auto gbps = env_double("MPICD_INTER_BANDWIDTH_GBPS")) {
        p.inter_bandwidth_Bpus = *gbps > 0.0 ? *gbps * kBpusPerGbps : *gbps;
    }
    return p;
}

void WireParams::print(std::FILE* out) const {
    // Every knob in the units its MPICD_* variable uses, with enough
    // precision (%.17g) that re-exporting a printed value reproduces the
    // double bit-for-bit.
    std::fprintf(out, "MPICD_LATENCY_US=%.17g\n", latency_us);
    std::fprintf(out, "MPICD_BANDWIDTH_GBPS=%.17g\n", bandwidth_gbps());
    std::fprintf(out, "MPICD_SG_ENTRY_US=%.17g\n", sg_entry_us);
    std::fprintf(out, "MPICD_HOST_COPY_GBPS=%.17g\n", host_copy_gBps());
    std::fprintf(out, "MPICD_EAGER_THRESHOLD=%lld\n",
                 static_cast<long long>(eager_threshold));
    std::fprintf(out, "MPICD_IOV_EAGER_THRESHOLD=%lld\n",
                 static_cast<long long>(iov_eager_threshold));
    std::fprintf(out, "MPICD_RNDV_FRAG_SIZE=%lld\n",
                 static_cast<long long>(rndv_frag_size));
    std::fprintf(out, "MPICD_RNDV_CTRL_US=%.17g\n", rndv_ctrl_us);
    std::fprintf(out, "MPICD_FRAG_OVERHEAD_US=%.17g\n", frag_overhead_us);
    std::fprintf(out, "MPICD_RAILS=%d\n", rails);
    std::fprintf(out, "MPICD_RTO_US=%.17g\n", rto_us);
    std::fprintf(out, "MPICD_MAX_RETRIES=%d\n", max_retries);
    std::fprintf(out, "MPICD_OP_TIMEOUT_US=%.17g\n", op_timeout_us);
    std::fprintf(out, "MPICD_RANKS_PER_NODE=%d\n", ranks_per_node);
    std::fprintf(out, "MPICD_INTER_LATENCY_US=%.17g\n", inter_latency_us);
    std::fprintf(out, "MPICD_INTER_BANDWIDTH_GBPS=%.17g\n",
                 inter_bandwidth_Bpus > 0.0 ? inter_bandwidth_Bpus / kBpusPerGbps
                                            : inter_bandwidth_Bpus);
}

} // namespace mpicd::netsim
