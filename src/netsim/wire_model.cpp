#include "netsim/wire_model.hpp"

#include "base/config.hpp"

namespace mpicd::netsim {

WireParams WireParams::from_env() {
    WireParams p;
    p.latency_us = env_double_or("MPICD_LATENCY_US", p.latency_us);
    const double gbps =
        env_double_or("MPICD_BANDWIDTH_GBPS", p.bandwidth_Bpus * 8.0 / 1000.0);
    p.bandwidth_Bpus = gbps * 1000.0 / 8.0;
    p.sg_entry_us = env_double_or("MPICD_SG_ENTRY_US", p.sg_entry_us);
    const double host_gBps =
        env_double_or("MPICD_HOST_COPY_GBPS", p.host_copy_Bpus / 1000.0);
    p.host_copy_Bpus = host_gBps * 1000.0;
    p.eager_threshold = env_int_or("MPICD_EAGER_THRESHOLD", p.eager_threshold);
    p.iov_eager_threshold =
        env_int_or("MPICD_IOV_EAGER_THRESHOLD", p.iov_eager_threshold);
    p.rndv_frag_size = env_int_or("MPICD_RNDV_FRAG_SIZE", p.rndv_frag_size);
    p.rndv_ctrl_us = env_double_or("MPICD_RNDV_CTRL_US", p.rndv_ctrl_us);
    p.frag_overhead_us = env_double_or("MPICD_FRAG_OVERHEAD_US", p.frag_overhead_us);
    p.rails = static_cast<int>(env_int_or("MPICD_RAILS", p.rails));
    if (p.rails < 1) p.rails = 1;
    p.rto_us = env_double_or("MPICD_RTO_US", p.rto_us);
    p.max_retries = static_cast<int>(env_int_or("MPICD_MAX_RETRIES", p.max_retries));
    if (p.max_retries < 0) p.max_retries = 0;
    p.op_timeout_us = env_double_or("MPICD_OP_TIMEOUT_US", p.op_timeout_us);
    return p;
}

} // namespace mpicd::netsim
