#include "netsim/fault.hpp"

#include <algorithm>
#include <cassert>

#include "base/config.hpp"

namespace mpicd::netsim {

FaultConfig FaultConfig::from_env() {
    FaultConfig c;
    c.seed = static_cast<std::uint64_t>(
        env_int_or("MPICD_FAULT_SEED", static_cast<std::int64_t>(c.seed)));
    c.drop = env_double_or("MPICD_FAULT_DROP", c.drop);
    c.dup = env_double_or("MPICD_FAULT_DUP", c.dup);
    c.reorder = env_double_or("MPICD_FAULT_REORDER", c.reorder);
    c.corrupt = env_double_or("MPICD_FAULT_CORRUPT", c.corrupt);
    c.delay = env_double_or("MPICD_FAULT_DELAY", c.delay);
    c.delay_max_us = env_double_or("MPICD_FAULT_DELAY_US", c.delay_max_us);
    c.force_reliable = env_int_or("MPICD_RELIABLE", 0) != 0;
    return c;
}

namespace {

// splitmix64: decorrelates per-link seeds derived from one user seed.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

FaultInjector::FaultInjector(int num_endpoints, FaultConfig cfg)
    : cfg_(cfg), n_(num_endpoints) {
    assert(num_endpoints > 0);
    const std::size_t nlinks =
        static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
    rng_.reserve(nlinks);
    for (std::size_t l = 0; l < nlinks; ++l)
        rng_.emplace_back(mix64(cfg_.seed ^ mix64(l + 1)));
    links_.resize(nlinks);
}

std::uint64_t FaultInjector::LinkState::bump(std::uint16_t kind) {
    ++seen_any;
    for (auto& [k, count] : seen_by_kind) {
        if (k == kind) return ++count;
    }
    seen_by_kind.emplace_back(kind, 1);
    return 1;
}

void FaultInjector::schedule(const ScheduledFault& f) {
    assert(f.src >= 0 && f.src < n_ && f.dst >= 0 && f.dst < n_);
    assert(f.nth >= 1);
    schedule_.push_back(f);
    fired_.push_back(false);
    ++scheduled_remaining_;
}

void FaultInjector::reset() {
    const std::size_t nlinks = rng_.size();
    rng_.clear();
    for (std::size_t l = 0; l < nlinks; ++l)
        rng_.emplace_back(mix64(cfg_.seed ^ mix64(l + 1)));
    links_.assign(nlinks, LinkState{});
    std::fill(fired_.begin(), fired_.end(), false);
    scheduled_remaining_ = schedule_.size();
    counters_ = FaultCounters{};
}

FaultInjector::Decision FaultInjector::decide(int src, int dst, std::uint16_t kind,
                                              std::uint64_t nbytes) {
    Decision d;
    auto& link_state = links_[link(src, dst)];
    const std::uint64_t nth_any = link_state.seen_any + 1;
    const std::uint64_t nth_kind = link_state.bump(kind);
    ++counters_.packets_seen;

    // Scheduled faults first: exact, independent of the random stream.
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        if (fired_[i]) continue;
        const ScheduledFault& f = schedule_[i];
        if (f.src != src || f.dst != dst) continue;
        if (f.kind_filter != 0 && f.kind_filter != kind) continue;
        if (f.nth != (f.kind_filter != 0 ? nth_kind : nth_any)) continue;
        fired_[i] = true;
        --scheduled_remaining_;
        switch (f.action) {
            case FaultAction::drop: d.drop = true; break;
            case FaultAction::duplicate: d.duplicate = true; break;
            case FaultAction::reorder: d.reorder = true; break;
            case FaultAction::corrupt:
                d.corrupt = true;
                d.corrupt_byte = nbytes > 0 ? std::min(f.byte, nbytes - 1) : 0;
                d.corrupt_bit = static_cast<std::uint8_t>(f.bit & 7u);
                break;
            case FaultAction::delay: d.extra_delay_us += f.delay_us; break;
        }
    }

    // Random faults: a fixed number of draws per packet so that outcomes
    // never shift the stream consumed by later packets on the link.
    if (cfg_.any_random()) {
        auto& rng = rng_[link(src, dst)];
        std::uniform_real_distribution<double> uni(0.0, 1.0);
        const double u_drop = uni(rng);
        const double u_dup = uni(rng);
        const double u_reorder = uni(rng);
        const double u_corrupt = uni(rng);
        const double u_delay = uni(rng);
        const std::uint64_t r_byte = rng();
        const std::uint64_t r_bit = rng();
        const double u_jitter = uni(rng);
        if (u_drop < cfg_.drop) d.drop = true;
        if (u_dup < cfg_.dup) d.duplicate = true;
        if (u_reorder < cfg_.reorder) d.reorder = true;
        if (u_corrupt < cfg_.corrupt && nbytes > 0) {
            d.corrupt = true;
            d.corrupt_byte = r_byte % nbytes;
            d.corrupt_bit = static_cast<std::uint8_t>(r_bit & 7u);
        }
        if (u_delay < cfg_.delay)
            d.extra_delay_us += u_jitter * cfg_.delay_max_us;
    }

    if (d.drop) ++counters_.dropped;
    if (d.duplicate) ++counters_.duplicated;
    if (d.reorder) ++counters_.reordered;
    if (d.corrupt) ++counters_.corrupted;
    if (d.extra_delay_us > 0.0) ++counters_.delayed;
    return d;
}

} // namespace mpicd::netsim
