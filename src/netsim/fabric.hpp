// Simulated network fabric.
//
// The fabric connects a fixed number of endpoints (one per simulated rank)
// with reliable, per-link FIFO delivery of packets. Time is *virtual*
// (microseconds, see base/time.hpp): each endpoint carries a VirtualClock,
// and the fabric models link serialization — a packet occupies its
// source->destination link for bytes/bandwidth microseconds, so
// back-to-back fragments queue behind each other exactly as on a real wire.
//
// The fabric moves raw packets only; protocols (eager, rendezvous, tag
// matching, datatype handling) live in src/ucx on top of this layer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "base/bytes.hpp"
#include "base/pool.hpp"
#include "base/time.hpp"
#include "netsim/fault.hpp"
#include "netsim/wire_model.hpp"

namespace mpicd::netsim {

// Per-endpoint virtual clock. Receiving a packet advances the local clock
// to at least the packet arrival time (standard conservative co-simulation).
class VirtualClock {
public:
    [[nodiscard]] SimTime now() const noexcept { return now_; }
    void advance(SimTime dt) noexcept { now_ += dt; }
    void observe(SimTime t) noexcept {
        if (t > now_) now_ = t;
    }
    void reset(SimTime t = 0.0) noexcept { now_ = t; }

private:
    SimTime now_ = 0.0;
};

// A packet on the simulated wire. `kind` and `header` are opaque to the
// fabric; the ucx layer defines them. The reliability fields (link_seq,
// crc, needs_ack) are likewise opaque: they are written by the ucx
// reliable-delivery layer and merely carried by the fabric. The fault
// injector may corrupt `header`/`payload` bytes but never the crc field —
// exactly the property that lets the receiver detect the corruption.
struct Packet {
    int src = -1;
    int dst = -1;
    std::uint16_t kind = 0;
    ByteVec header;      // small protocol header (always by copy)
    // Bulk payload carried by the wire (may be empty). Pool-backed: copying
    // a Packet (retransmit queue, duplicate injection) shares the slab when
    // the pool is enabled and deep-copies when it is not; anyone mutating
    // payload bytes in place must ensure_unique() first (the fault
    // injector's corruption stage is the only such site).
    PooledBuf payload;
    SimTime arrival = 0; // virtual arrival time at the destination
    std::uint64_t seq = 0;
    // Reliable-delivery fields (see src/ucx/worker.cpp, docs/FAULTS.md).
    std::uint64_t link_seq = 0; // per-sender sequence number (0 = unnumbered)
    std::uint32_t crc = 0;      // CRC-32 over kind + link_seq + header + payload
    bool needs_ack = false;     // receiver must acknowledge this packet
    // Observability fields, opaque to fabric and CRC alike: the message id
    // this packet belongs to (0 = control traffic with no owner) and the
    // sender's virtual time when the *message* was posted. Carried so the
    // receiver can attribute trace events and compute end-to-end latency
    // without a side channel; they never influence delivery, wire cost,
    // or the fragment schedule (see the pure-observer test).
    std::uint64_t msg_id = 0;
    SimTime post_vtime = -1.0;
};

class Fabric {
public:
    Fabric(int num_endpoints, WireParams params,
           FaultConfig faults = FaultConfig::from_env());
    // Folds the fault-injection counters into the process-wide
    // MetricsRegistry (group "fault") so snapshots outlive the fabric.
    ~Fabric();

    [[nodiscard]] int size() const noexcept { return static_cast<int>(inboxes_.size()); }
    [[nodiscard]] const WireParams& params() const noexcept { return params_; }

    // Fault-injection stage (inert by default). Tests use this to install
    // deterministic fault schedules before starting traffic.
    [[nodiscard]] FaultInjector& faults() noexcept { return injector_; }
    // True when the ucx layer must run its ack/CRC/retransmit protocol.
    [[nodiscard]] bool reliable() noexcept {
        const std::lock_guard<std::mutex> lock(mutex_);
        return injector_.reliable();
    }

    // Transmit a packet. `ready` is the sender's virtual time when the
    // packet is handed to the NIC; `wire_bytes` the number of bytes that
    // occupy the link (header + payload); `sg_entries` the number of
    // scatter-gather descriptors the NIC must walk; `rail` selects the
    // physical rail whose serialization budget the packet occupies.
    // Returns the arrival virtual time assigned to the packet. Thread-safe.
    SimTime transmit(Packet&& pkt, SimTime ready, Count wire_bytes, Count sg_entries = 1,
                     int rail = 0);

    // Transmit a zero-byte control packet (RTS/CTS/FIN): latency-only cost,
    // does not occupy link bandwidth.
    SimTime transmit_control(Packet&& pkt, SimTime ready);

    // Non-blocking poll of endpoint `ep`'s inbox; packets are delivered in
    // the order their transmissions were issued per link.
    [[nodiscard]] std::optional<Packet> poll(int ep);

    // Blocking variant used by threaded-rank examples.
    [[nodiscard]] Packet poll_blocking(int ep);

    [[nodiscard]] bool inbox_empty(int ep);

    // Direct memory transfer used to model RDMA (rendezvous zero-copy):
    // copies `bytes` from `src` to `dst` immediately for correctness, and
    // returns the virtual completion time of the transfer starting at
    // `ready`. Accounts link serialization like transmit().
    SimTime rdma_write(int src_ep, int dst_ep, const void* src, void* dst,
                       Count bytes, SimTime ready);

    // Virtual completion time for a gathered RDMA transfer with
    // `sg_entries` descriptors totalling `bytes` (copies done by caller).
    SimTime rdma_cost(int src_ep, int dst_ep, Count bytes, Count sg_entries,
                      SimTime ready, int rail = 0);

    // Reset all virtual state (link busy times). Inboxes must be empty.
    void reset_time();

private:
    struct Inbox {
        std::deque<Packet> q;
    };

    // Run the fault-injection stage and enqueue the packet (and any
    // duplicate / released reorder-limbo packet). Caller holds mutex_.
    void deliver_locked(Packet&& pkt);
    void push_locked(Packet&& pkt);
    // Release any reorder-limbo packet destined to `ep`. Caller holds
    // mutex_. Guarantees a held packet is delayed by at most one poll
    // round even when no further traffic crosses its link.
    void flush_limbo_locked(int ep);

    [[nodiscard]] std::size_t link_index(int src, int dst, int rail) const {
        return (static_cast<std::size_t>(src) * inboxes_.size() +
                static_cast<std::size_t>(dst)) *
                   static_cast<std::size_t>(params_.rails) +
               static_cast<std::size_t>(rail % params_.rails);
    }
    // Serializer for a transfer src -> dst. Intra-node links are
    // independent per endpoint pair (shared-memory-like). Cross-node
    // traffic shares ONE serializer per (source node, destination node,
    // rail) — the node uplink — so every rank pair between two nodes
    // contends for the same inter-plane capacity. This is what makes
    // leader-aggregated collectives physically cheaper than per-rank
    // direct exchange (docs/COLLECTIVES.md).
    [[nodiscard]] SimTime& link_free_slot(int src, int dst, int rail) {
        if (params_.cross_node(src, dst)) {
            const std::size_t idx =
                (static_cast<std::size_t>(params_.node_of(src)) * node_count_ +
                 static_cast<std::size_t>(params_.node_of(dst))) *
                    static_cast<std::size_t>(params_.rails) +
                static_cast<std::size_t>(rail % params_.rails);
            return node_link_free_at_[idx];
        }
        return link_free_at_[link_index(src, dst, rail)];
    }

    WireParams params_;
    std::vector<Inbox> inboxes_;
    std::vector<SimTime> link_free_at_; // [(src*n + dst)*rails + rail]
    std::size_t node_count_ = 1;
    std::vector<SimTime> node_link_free_at_; // [(srcnode*nodes + dstnode)*rails + rail]
    std::uint64_t next_seq_ = 0;
    FaultInjector injector_;
    // Reorder limbo: at most one held packet per (src, dst) link, released
    // after the next packet on the link (or on an empty poll).
    std::vector<std::optional<Packet>> limbo_; // [src*n + dst]
    std::mutex mutex_;
    std::condition_variable cv_;
};

} // namespace mpicd::netsim
