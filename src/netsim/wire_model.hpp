// Analytic wire-cost model for the simulated fabric.
//
// Calibrated to the paper's testbed (two nodes, ConnectX-5, 100 Gbps,
// UCX 1.12): one-way small-message latency ~1.3 us, link bandwidth
// 12.5 GB/s, eager->rendezvous switch at 32 KiB (the paper attributes the
// manual-pack bandwidth dip at 2^15 bytes to this switch). Every parameter
// can be overridden with an MPICD_* environment variable so that ablation
// benches (e.g. ablation_eager_threshold) can sweep them.
#pragma once

#include <cstdio>

#include "base/bytes.hpp"
#include "base/time.hpp"

namespace mpicd::netsim {

// Exact unit-conversion factors between the env-variable units and the
// internal bytes-per-microsecond fields. Both are integer-valued doubles,
// so converting a value costs exactly one correctly-rounded multiply (or
// divide) — the round-trip print -> setenv -> from_env is lossless.
inline constexpr double kBpusPerGbps = 1000.0 / 8.0; // == 125, exact
inline constexpr double kBpusPerGBps = 1000.0;

struct WireParams {
    // One-way per-message wire latency (us).
    SimTime latency_us = 1.3;
    // Link bandwidth in bytes per microsecond (12500 B/us == 12.5 GB/s).
    double bandwidth_Bpus = 12500.0;
    // Additional NIC cost per scatter-gather entry beyond the first (us).
    // This is what makes many-small-region iovecs lose to packing
    // (paper Fig. 10 discussion: NAS_LU_y, NAS_MG_x).
    SimTime sg_entry_us = 0.04;
    // Host memory copy bandwidth for simulator-internal copies that a real
    // host would also perform (eager bounce-buffer copy on the receiver).
    double host_copy_Bpus = 25000.0;
    // Eager/rendezvous protocol switch point (bytes of wire payload).
    Count eager_threshold = 32 * 1024;
    // Separate switch point for scatter-gather (IOV) sends. UCX selects
    // protocols differently for UCP_DATATYPE_IOV; the paper attributes the
    // absence of the 2^15 dip on the custom path to exactly this
    // (Fig. 7 discussion).
    Count iov_eager_threshold = 1024 * 1024;
    // Rendezvous pipeline fragment size (bytes).
    Count rndv_frag_size = 512 * 1024;
    // Extra one-way control-message cost for RTS and CTS (us each).
    SimTime rndv_ctrl_us = 3.0;
    // Per-fragment bookkeeping overhead in the rendezvous pipeline (us).
    SimTime frag_overhead_us = 0.3;
    // Independent network rails (ports/paths). Pipelined sends may stripe
    // fragments across rails ONLY when the datatype permits out-of-order
    // fragments (the paper's inorder flag, Listing 2, "would inhibit
    // potential out-of-order optimizations in advanced implementations").
    int rails = 2;

    // --- Two-level topology (intra-node fast plane vs. inter-node plane;
    // see docs/COLLECTIVES.md). Endpoints are assigned to nodes in rank
    // order, `ranks_per_node` per node; 0 (the default) keeps the seed's
    // flat single-plane model (every endpoint on one node). Links whose
    // endpoints sit on different nodes use the inter-node latency and
    // bandwidth below, and all cross-node traffic between a given pair of
    // nodes shares ONE uplink serializer per rail (Fabric::link_free_slot)
    // — intra-node links stay independent per endpoint pair. A negative
    // inter value means "same as the intra plane" so that overriding only
    // MPICD_RANKS_PER_NODE changes nothing until the inter plane is made
    // slower.
    int ranks_per_node = 0;                 // MPICD_RANKS_PER_NODE
    SimTime inter_latency_us = -1.0;        // MPICD_INTER_LATENCY_US
    double inter_bandwidth_Bpus = -1.0;     // MPICD_INTER_BANDWIDTH_GBPS

    // --- Reliable-delivery protocol (active only when the fault injector
    // is active or MPICD_RELIABLE=1; see docs/FAULTS.md). ---
    // Initial retransmit timeout in virtual us (MPICD_RTO_US); doubles on
    // every retry (exponential backoff).
    SimTime rto_us = 50.0;
    // Retransmit attempts before the request fails with Status::timeout
    // (MPICD_MAX_RETRIES).
    int max_retries = 8;
    // Receiver-side watchdog for an in-flight rendezvous operation: if no
    // packet for the operation arrives within this virtual interval, the
    // receive fails with Status::timeout instead of hanging
    // (MPICD_OP_TIMEOUT_US; 0 = derive from rto_us and max_retries).
    SimTime op_timeout_us = 0.0;

    // Read MPICD_LATENCY_US, MPICD_BANDWIDTH_GBPS, MPICD_SG_ENTRY_US,
    // MPICD_HOST_COPY_GBPS, MPICD_EAGER_THRESHOLD, MPICD_RNDV_FRAG_SIZE,
    // MPICD_RNDV_CTRL_US, MPICD_FRAG_OVERHEAD_US, MPICD_RTO_US,
    // MPICD_MAX_RETRIES, MPICD_OP_TIMEOUT_US, MPICD_RANKS_PER_NODE,
    // MPICD_INTER_LATENCY_US, MPICD_INTER_BANDWIDTH_GBPS.
    [[nodiscard]] static WireParams from_env();

    // The values the unit-converted env variables expect.
    [[nodiscard]] double bandwidth_gbps() const { return bandwidth_Bpus / kBpusPerGbps; }
    [[nodiscard]] double host_copy_gBps() const { return host_copy_Bpus / kBpusPerGBps; }

    // Dump every knob as MPICD_<name>=<value> in env-variable units, with
    // enough precision to round-trip through from_env() bit-identically.
    void print(std::FILE* out) const;

    // --- Topology helpers (pure; see Fabric for link-contention state).
    [[nodiscard]] int node_of(int ep) const noexcept {
        return ranks_per_node > 0 ? ep / ranks_per_node : 0;
    }
    [[nodiscard]] bool cross_node(int a, int b) const noexcept {
        return node_of(a) != node_of(b);
    }
    // Effective inter-node plane values (negative knobs = intra values).
    [[nodiscard]] SimTime effective_inter_latency() const noexcept {
        return inter_latency_us >= 0.0 ? inter_latency_us : latency_us;
    }
    [[nodiscard]] double effective_inter_bandwidth() const noexcept {
        return inter_bandwidth_Bpus > 0.0 ? inter_bandwidth_Bpus : bandwidth_Bpus;
    }
    [[nodiscard]] SimTime link_latency(int src, int dst) const noexcept {
        return cross_node(src, dst) ? effective_inter_latency() : latency_us;
    }
    [[nodiscard]] double link_bandwidth(int src, int dst) const noexcept {
        return cross_node(src, dst) ? effective_inter_bandwidth() : bandwidth_Bpus;
    }
    [[nodiscard]] SimTime serialize_time_on(Count bytes, int src, int dst) const {
        return static_cast<double>(bytes) / link_bandwidth(src, dst);
    }

    // Pure helpers (no link-contention state; see Fabric for serialization).
    [[nodiscard]] SimTime serialize_time(Count bytes) const {
        return static_cast<double>(bytes) / bandwidth_Bpus;
    }
    [[nodiscard]] SimTime sg_overhead(Count nentries) const {
        return nentries > 1 ? static_cast<double>(nentries - 1) * sg_entry_us : 0.0;
    }
    [[nodiscard]] SimTime host_copy_time(Count bytes) const {
        return static_cast<double>(bytes) / host_copy_Bpus;
    }
    // Effective receiver-side operation watchdog: explicitly configured, or
    // the worst-case span of a full retransmit backoff sequence plus slack.
    [[nodiscard]] SimTime effective_op_timeout() const {
        if (op_timeout_us > 0.0) return op_timeout_us;
        SimTime total = 0.0, rto = rto_us;
        for (int i = 0; i <= max_retries; ++i, rto *= 2.0) total += rto;
        return 2.0 * total + 100.0 * latency_us;
    }
};

} // namespace mpicd::netsim
