#include "dt/signature.hpp"

#include <cstring>

namespace mpicd::dt {

std::vector<SigRun> signature(const TypeRef& type, Count count) {
    std::vector<SigRun> out;
    if (type == nullptr || count <= 0) return out;
    std::vector<Predef> leaves;
    type->append_signature(leaves);
    if (leaves.empty()) return out;
    // RLE one element, then scale: the per-element sequence repeats, but a
    // trailing run may merge with the next element's leading run.
    std::vector<SigRun> one;
    for (const Predef p : leaves) {
        if (!one.empty() && one.back().kind == p) {
            ++one.back().count;
        } else {
            one.push_back({p, 1});
        }
    }
    if (one.size() == 1) {
        out.push_back({one[0].kind, one[0].count * count});
        return out;
    }
    for (Count i = 0; i < count; ++i) {
        for (const auto& run : one) {
            if (!out.empty() && out.back().kind == run.kind) {
                out.back().count += run.count;
            } else {
                out.push_back(run);
            }
        }
    }
    return out;
}

bool signature_equivalent(const TypeRef& a, Count na, const TypeRef& b, Count nb) {
    return signature(a, na) == signature(b, nb);
}

std::uint64_t layout_fingerprint(const TypeRef& type) {
    if (type == nullptr || !type->committed()) return 0;
    std::uint64_t h = 14695981039346656037ull; // FNV-1a offset basis
    const auto mix = [&h](Count v) {
        auto u = static_cast<std::uint64_t>(v);
        for (int i = 0; i < 8; ++i) {
            h ^= (u >> (i * 8)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    mix(type->extent());
    mix(type->size());
    for (const auto& s : type->segments()) {
        mix(s.offset);
        mix(s.len);
    }
    // Reserve 0 as the "no fingerprint" sentinel.
    return h == 0 ? 1 : h;
}

ByteVec signature_bytes(const TypeRef& type, Count count) {
    const auto sig = signature(type, count);
    ByteVec out(sig.size() * (sizeof(Predef) + sizeof(Count)));
    std::size_t pos = 0;
    for (const auto& run : sig) {
        std::memcpy(out.data() + pos, &run.kind, sizeof(Predef));
        pos += sizeof(Predef);
        std::memcpy(out.data() + pos, &run.count, sizeof(Count));
        pos += sizeof(Count);
    }
    return out;
}

} // namespace mpicd::dt
