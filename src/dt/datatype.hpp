// Derived-datatype engine: the classic MPI type-map model.
//
// This module is the stand-in for Open MPI's datatype engine — the baseline
// the paper compares its custom serialization API against ("rsmpi-derived-
// datatype" in Figs. 3–6). A datatype is an immutable tree built by the
// MPI-style constructors below; commit() flattens one element into an
// ordered list of contiguous byte segments (the type map with like-typed
// runs merged), which the Convertor then walks to pack/unpack.
//
// Simplifications vs. MPI (documented, not silently diverging):
//  - no alignment epsilon in ub (extent is max displacement based),
//  - displacements are signed 64-bit byte offsets (MPI_Count semantics),
//  - no Fortran-order subarrays (C order only).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "dt/predefined.hpp"

namespace mpicd::dt {

struct PackPlan; // dt/pack_plan.hpp

class Datatype;
// Shared immutable-after-commit handle. commit() must happen before a type
// is used concurrently from several threads.
using TypeRef = std::shared_ptr<Datatype>;

// One contiguous run of bytes within a single element's footprint,
// relative to the element origin. Order in the vector is type-map order
// (which is also pack order), NOT necessarily address order.
struct Segment {
    Count offset = 0; // signed displacement from element origin
    Count len = 0;    // bytes
};

enum class TypeKind : std::uint8_t {
    predefined,
    contiguous,
    vector,
    hvector,
    indexed,
    hindexed,
    indexed_block,
    struct_,
    resized,
    subarray,
};

class Datatype : public std::enable_shared_from_this<Datatype> {
public:
    // --- Constructors (MPI_Type_* equivalents). All validate arguments and
    // return nullptr via the status out-param on error.
    [[nodiscard]] static TypeRef predefined(Predef p);
    [[nodiscard]] static TypeRef contiguous(Count count, const TypeRef& base);
    // stride in elements of `base` (MPI_Type_vector).
    [[nodiscard]] static TypeRef vector(Count count, Count blocklen, Count stride,
                                        const TypeRef& base);
    // stride in bytes (MPI_Type_create_hvector).
    [[nodiscard]] static TypeRef hvector(Count count, Count blocklen, Count stride_bytes,
                                         const TypeRef& base);
    // displacements in elements of `base` (MPI_Type_indexed).
    [[nodiscard]] static TypeRef indexed(std::span<const Count> blocklens,
                                         std::span<const Count> displs,
                                         const TypeRef& base);
    // displacements in bytes (MPI_Type_create_hindexed).
    [[nodiscard]] static TypeRef hindexed(std::span<const Count> blocklens,
                                          std::span<const Count> displs_bytes,
                                          const TypeRef& base);
    [[nodiscard]] static TypeRef indexed_block(Count blocklen,
                                               std::span<const Count> displs,
                                               const TypeRef& base);
    // MPI_Type_create_struct.
    [[nodiscard]] static TypeRef struct_(std::span<const Count> blocklens,
                                         std::span<const Count> displs_bytes,
                                         std::span<const TypeRef> types);
    [[nodiscard]] static TypeRef resized(const TypeRef& base, Count lb, Count extent);
    // MPI_Type_create_subarray, C (row-major) order.
    [[nodiscard]] static TypeRef subarray(std::span<const Count> sizes,
                                          std::span<const Count> subsizes,
                                          std::span<const Count> starts,
                                          const TypeRef& base);

    // --- Queries.
    [[nodiscard]] TypeKind kind() const noexcept { return kind_; }
    [[nodiscard]] bool is_predefined() const noexcept {
        return kind_ == TypeKind::predefined;
    }
    [[nodiscard]] Predef predef() const noexcept { return predef_; }
    // Number of data bytes in one element (MPI_Type_size).
    [[nodiscard]] Count size() const noexcept { return size_; }
    // Footprint span of one element (MPI_Type_get_extent).
    [[nodiscard]] Count lb() const noexcept { return lb_; }
    [[nodiscard]] Count extent() const noexcept { return extent_; }
    [[nodiscard]] Count ub() const noexcept { return lb_ + extent_; }
    // Tightest span actually touched (MPI_Type_get_true_extent).
    [[nodiscard]] Count true_lb() const noexcept { return true_lb_; }
    [[nodiscard]] Count true_extent() const noexcept { return true_extent_; }
    [[nodiscard]] std::string name() const;

    // --- Commit: flatten to merged segments; idempotent.
    [[nodiscard]] Status commit();
    [[nodiscard]] bool committed() const noexcept { return committed_; }

    // One element's contiguous runs, in pack order. Valid after commit().
    [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
        return segments_;
    }
    // Prefix sums of segment lengths (segments().size()+1 entries).
    [[nodiscard]] const std::vector<Count>& packed_prefix() const noexcept {
        return packed_prefix_;
    }
    // A single element is one contiguous run starting at offset 0 whose
    // length equals the extent (so count>1 stays contiguous too).
    [[nodiscard]] bool is_contiguous() const noexcept { return contiguous_flag_; }

    // Compiled pack program over segments() (dt/pack_plan.hpp), built at
    // commit(); nullptr for empty types. Always compiled so explicit-mode
    // callers (tests, benches) can exercise it regardless of the
    // MPICD_PACK_PLAN gate, which only controls the default pack path.
    [[nodiscard]] const std::shared_ptr<const PackPlan>& plan() const noexcept {
        return plan_;
    }

    // Type-map leaf sequence in pack order (for signatures / equivalence).
    void append_signature(std::vector<Predef>& out) const;

protected:
    Datatype() = default;

private:

    // Flatten one element into `out` (segments appended in type-map order,
    // merging with the trailing segment when adjacent).
    void flatten(std::vector<Segment>& out, Count origin) const;
    static void append_segment(std::vector<Segment>& out, Count offset, Count len);

    TypeKind kind_ = TypeKind::predefined;
    Predef predef_ = Predef::byte_;
    Count count_ = 0;
    Count blocklen_ = 0;
    Count stride_ = 0; // bytes for hvector, elements for vector
    std::vector<Count> blocklens_;
    std::vector<Count> displs_; // bytes or elements depending on kind
    std::vector<TypeRef> children_;
    std::vector<Count> sub_sizes_, sub_subsizes_, sub_starts_;

    Count size_ = 0;
    Count lb_ = 0;
    Count extent_ = 0;
    Count true_lb_ = 0;
    Count true_extent_ = 0;

    bool committed_ = false;
    bool contiguous_flag_ = false;
    std::vector<Segment> segments_;
    std::vector<Count> packed_prefix_;
    std::shared_ptr<const PackPlan> plan_;
};

// Convenience: committed predefined singletons.
[[nodiscard]] const TypeRef& type_byte();
[[nodiscard]] const TypeRef& type_char();
[[nodiscard]] const TypeRef& type_int32();
[[nodiscard]] const TypeRef& type_uint32();
[[nodiscard]] const TypeRef& type_int64();
[[nodiscard]] const TypeRef& type_uint64();
[[nodiscard]] const TypeRef& type_float();
[[nodiscard]] const TypeRef& type_double();

template <typename T>
[[nodiscard]] const TypeRef& type_of() {
    if constexpr (std::is_same_v<T, std::int32_t>) return type_int32();
    else if constexpr (std::is_same_v<T, std::uint32_t>) return type_uint32();
    else if constexpr (std::is_same_v<T, std::int64_t>) return type_int64();
    else if constexpr (std::is_same_v<T, std::uint64_t>) return type_uint64();
    else if constexpr (std::is_same_v<T, float>) return type_float();
    else if constexpr (std::is_same_v<T, double>) return type_double();
    else if constexpr (std::is_same_v<T, char>) return type_char();
    else return type_byte();
}

} // namespace mpicd::dt
