// Convertor: stateful partial pack/unpack machine over a committed
// datatype, the analog of Open MPI's opal_convertor.
//
// A convertor walks (element, segment) positions over `count` elements laid
// out with the type's extent, copying segment-by-segment. Because a struct
// with an interior gap flattens to several small segments per element, the
// convertor performs many small memcpys for such types — this is precisely
// the baseline inefficiency the paper measures in Fig. 5 (struct-simple
// with gap) vs Fig. 6 (no gap, single memcpy).
//
// Supports random access through seek(): the pack stream position can be
// set to any virtual offset, which is what lets the transport's
// fragment-oriented callbacks (pack at `offset`) drive it.
#pragma once

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "dt/datatype.hpp"

namespace mpicd::dt {

// How a convertor (or one-shot helper) moves bytes:
//  - generic: the original per-segment memcpy loop, always available.
//  - plan: execute the compiled pack program for whole elements.
//  - parallel: plan + the worker pool for large buffers (pack_all only;
//    inside a Convertor it behaves like `plan` — the pool partitions work
//    by constructing plain sub-convertors, never recursively).
//  - auto_: `plan` when MPICD_PACK_PLAN is enabled (default), otherwise
//    generic; pack_all/unpack_all additionally upgrade to parallel above
//    MPICD_PAR_PACK_THRESHOLD.
enum class PackMode : std::uint8_t { generic, plan, parallel, auto_ };

class Convertor {
public:
    // `buf` is the user buffer holding `count` elements of `type`.
    // The type must be committed. Pack direction reads from buf;
    // unpack direction writes into it (pass the same pointer non-const).
    Convertor(TypeRef type, void* buf, Count count, PackMode mode = PackMode::auto_);

    [[nodiscard]] Count total_packed() const noexcept { return total_; }
    [[nodiscard]] Count position() const noexcept { return pos_; }
    [[nodiscard]] bool finished() const noexcept { return pos_ >= total_; }

    // Reposition the packed-stream cursor (O(log segments) via the
    // committed prefix sums).
    void seek(Count packed_offset);

    // Suppress this convertor's own dt.pack/dt.unpack trace spans. For
    // internal callers (the parallel pack engine) whose enclosing
    // par_pack/par_pack_part spans already delimit the same bytes — the
    // inner span would double-count the work in analysis and its cost is
    // material on µs-scale packs.
    void suppress_trace() noexcept { trace_suppressed_ = true; }

    // Copy up to dst.size() packed bytes starting at the cursor into dst;
    // advances the cursor. *used receives the bytes produced.
    [[nodiscard]] Status pack(MutBytes dst, Count* used);

    // Consume src at the cursor, scattering into the user buffer;
    // advances the cursor.
    [[nodiscard]] Status unpack(ConstBytes src);

    // One-shot helpers (MPI_Pack / MPI_Unpack equivalents). The PackMode
    // overloads let callers pin a path (benches, tests); the two-argument
    // forms use auto_, i.e. plan/parallel as gated by the env knobs.
    [[nodiscard]] static Status pack_all(const TypeRef& type, const void* buf,
                                         Count count, MutBytes dst, Count* used);
    [[nodiscard]] static Status pack_all(const TypeRef& type, const void* buf,
                                         Count count, MutBytes dst, Count* used,
                                         PackMode mode);
    [[nodiscard]] static Status unpack_all(const TypeRef& type, void* buf, Count count,
                                           ConstBytes src);
    [[nodiscard]] static Status unpack_all(const TypeRef& type, void* buf, Count count,
                                           ConstBytes src, PackMode mode);

private:
    // Decompose the cursor into (element index, segment index, bytes into
    // that segment).
    void locate(Count packed_offset, Count* elem, std::size_t* seg, Count* into) const;

    TypeRef type_;
    std::byte* buf_;
    // Compiled plan to run for whole-element spans; nullptr keeps every
    // byte on the generic per-segment loop.
    const PackPlan* plan_ = nullptr;
    Count count_ = 0;
    Count total_ = 0;
    Count pos_ = 0;
    // Cached cursor decomposition, kept in sync with pos_.
    Count elem_ = 0;
    std::size_t seg_ = 0;
    Count seg_into_ = 0;
    bool trace_suppressed_ = false;
};

} // namespace mpicd::dt
