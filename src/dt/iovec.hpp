// Region (iovec) extraction from derived datatypes: flattening a (buffer,
// type, count) triple into a list of contiguous memory regions. This is the
// direction MPICH's recent iovec extensions take (paper §VII) and it also
// powers the zero-copy send path for derived datatypes whose region count
// is small.
#pragma once

#include <vector>

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "dt/datatype.hpp"

namespace mpicd::dt {

// Append the regions of `count` elements of `type` rooted at `buf`.
// Adjacent regions (end-to-end in memory AND consecutive in pack order)
// are merged, so a contiguous type yields exactly one region.
[[nodiscard]] Status extract_regions(const TypeRef& type, const void* buf, Count count,
                                     std::vector<ConstIovEntry>& out);

[[nodiscard]] Status extract_regions(const TypeRef& type, void* buf, Count count,
                                     std::vector<IovEntry>& out);

// Number of regions that extraction would produce (without materializing).
[[nodiscard]] Count region_count(const TypeRef& type, Count count);

} // namespace mpicd::dt
