// Type signatures and datatype equivalence (cf. Kimpe et al., EuroMPI'10,
// discussed in the paper's related work). Two datatypes are
// signature-equivalent when they describe the same ordered sequence of
// predefined types — the condition under which a send with one type may be
// received with the other.
#pragma once

#include <vector>

#include "base/bytes.hpp"
#include "dt/datatype.hpp"

namespace mpicd::dt {

// Run-length-encoded signature entry.
struct SigRun {
    Predef kind;
    Count count;
    friend bool operator==(const SigRun&, const SigRun&) = default;
};

// Compute the RLE signature of `count` elements of `type`.
[[nodiscard]] std::vector<SigRun> signature(const TypeRef& type, Count count = 1);

// True when the signatures of (a, na) and (b, nb) are identical.
[[nodiscard]] bool signature_equivalent(const TypeRef& a, Count na, const TypeRef& b,
                                        Count nb);

// A stable byte serialization of a signature (for hashing / transmission).
[[nodiscard]] ByteVec signature_bytes(const TypeRef& type, Count count = 1);

// 64-bit FNV-1a hash of a committed type's *memory layout*: the flattened
// segment list plus extent and size. The signature names the leaf sequence
// two equivalent types share, but NOT where their bytes live — two
// signature-equivalent types may pack completely differently. Plan-cache
// keys therefore use this fingerprint (equal fingerprints ⇒ identical
// flattened layout ⇒ a compiled pack plan is shareable). Returns 0 for
// null/uncommitted types.
[[nodiscard]] std::uint64_t layout_fingerprint(const TypeRef& type);

} // namespace mpicd::dt
