// Parallel pack engine: a persistent worker pool that partitions the
// packed stream by offset and packs/unpacks the partitions concurrently.
//
// Partition boundaries are exact byte offsets into the packed stream —
// each worker constructs a plain Convertor and seek()s to its start (an
// O(log segments) operation over the committed prefix sums), so the result
// is byte-identical to a serial pack regardless of worker count or
// scheduling. Chunks are rounded up to whole elements when possible so the
// workers spend their time in the compiled-plan kernels, not in partial
// head/tail handling.
//
// Knobs:
//  - MPICD_PAR_PACK_THRESHOLD: packed-byte floor below which the auto path
//    stays serial (default 2 MiB; <= 0 disables the parallel auto path).
//  - MPICD_PAR_PACK_THREADS: pool width including the calling thread
//    (default min(4, hardware_concurrency)).
//
// Host time spent here is whatever the caller measures around the call, so
// virtual-time charging in the engine sees the parallel speedup for free.
#pragma once

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "dt/datatype.hpp"

namespace mpicd::dt {

// Packed-byte floor for the auto path; <= 0 means "never parallel".
[[nodiscard]] Count par_pack_threshold() noexcept;

// Pool width including the calling thread (>= 1).
[[nodiscard]] int par_pack_workers() noexcept;

// Uncached env reads behind the two getters above. The cached getters
// latch these at first use; tests call them directly to cover the
// clamping rules (THREADS <= 0 -> 1 serial worker, never a pool sized
// from a non-positive count; THRESHOLD <= 0 -> 0, parallel path off).
[[nodiscard]] Count par_pack_threshold_from_env() noexcept;
[[nodiscard]] int par_pack_workers_from_env() noexcept;

// True when an auto-mode pack of `total` packed bytes should go parallel:
// plans enabled, threshold reached, and more than one worker available.
[[nodiscard]] bool par_pack_eligible(Count total) noexcept;

// Pack/unpack all `count` elements, partitioning [0, size*count) among the
// pool. dst must hold (src must be exactly) size*count bytes.
[[nodiscard]] Status parallel_pack(const TypeRef& type, const void* buf, Count count,
                                   MutBytes dst, Count* used);
[[nodiscard]] Status parallel_unpack(const TypeRef& type, void* buf, Count count,
                                     ConstBytes src);

// Window variants over the packed-stream range [offset, offset + span)
// where span = min(dst/src.size(), total - offset). These serve the
// transport's fragment path, which packs at arbitrary stream offsets.
[[nodiscard]] Status parallel_pack_range(const TypeRef& type, const void* buf,
                                         Count count, Count offset, MutBytes dst,
                                         Count* used);
[[nodiscard]] Status parallel_unpack_range(const TypeRef& type, void* buf,
                                           Count count, Count offset,
                                           ConstBytes src);

} // namespace mpicd::dt
