// Predefined (primitive) datatype kinds, mirroring MPI's basic types.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpicd::dt {

enum class Predef : std::uint8_t {
    byte_,
    char_,
    int8,
    uint8,
    int16,
    uint16,
    int32,
    uint32,
    int64,
    uint64,
    float32,
    float64,
};

[[nodiscard]] constexpr std::size_t predef_size(Predef p) noexcept {
    switch (p) {
        case Predef::byte_:
        case Predef::char_:
        case Predef::int8:
        case Predef::uint8: return 1;
        case Predef::int16:
        case Predef::uint16: return 2;
        case Predef::int32:
        case Predef::uint32:
        case Predef::float32: return 4;
        case Predef::int64:
        case Predef::uint64:
        case Predef::float64: return 8;
    }
    return 0;
}

[[nodiscard]] constexpr const char* predef_name(Predef p) noexcept {
    switch (p) {
        case Predef::byte_: return "byte";
        case Predef::char_: return "char";
        case Predef::int8: return "int8";
        case Predef::uint8: return "uint8";
        case Predef::int16: return "int16";
        case Predef::uint16: return "uint16";
        case Predef::int32: return "int32";
        case Predef::uint32: return "uint32";
        case Predef::int64: return "int64";
        case Predef::uint64: return "uint64";
        case Predef::float32: return "float";
        case Predef::float64: return "double";
    }
    return "?";
}

// Map C++ arithmetic types onto Predef kinds (used by typed helpers).
template <typename T>
struct PredefOf;
template <> struct PredefOf<std::int8_t> { static constexpr Predef value = Predef::int8; };
template <> struct PredefOf<std::uint8_t> { static constexpr Predef value = Predef::uint8; };
template <> struct PredefOf<std::int16_t> { static constexpr Predef value = Predef::int16; };
template <> struct PredefOf<std::uint16_t> { static constexpr Predef value = Predef::uint16; };
template <> struct PredefOf<std::int32_t> { static constexpr Predef value = Predef::int32; };
template <> struct PredefOf<std::uint32_t> { static constexpr Predef value = Predef::uint32; };
template <> struct PredefOf<std::int64_t> { static constexpr Predef value = Predef::int64; };
template <> struct PredefOf<std::uint64_t> { static constexpr Predef value = Predef::uint64; };
template <> struct PredefOf<float> { static constexpr Predef value = Predef::float32; };
template <> struct PredefOf<double> { static constexpr Predef value = Predef::float64; };
template <> struct PredefOf<char> { static constexpr Predef value = Predef::char_; };

} // namespace mpicd::dt
