#include "dt/par_pack.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/config.hpp"
#include "base/stats.hpp"
#include "base/trace.hpp"
#include "dt/convertor.hpp"
#include "dt/pack_plan.hpp"

namespace mpicd::dt {

Count par_pack_threshold_from_env() noexcept {
    const Count v =
        static_cast<Count>(env_int_or("MPICD_PAR_PACK_THRESHOLD", Count{2} << 20));
    // A zero or negative floor means "never parallel", not "always":
    // normalize to 0 so par_pack_eligible's `thresh > 0` check disables
    // the path instead of comparing against a nonsense bound.
    return v > 0 ? v : 0;
}

int par_pack_workers_from_env() noexcept {
    const auto hw = static_cast<std::int64_t>(
        std::max(1u, std::thread::hardware_concurrency()));
    const auto n = env_int_or("MPICD_PAR_PACK_THREADS", std::min<std::int64_t>(4, hw));
    // <= 0 must clamp to exactly one (serial) worker — the pool must never
    // be sized from a non-positive count.
    return static_cast<int>(std::clamp<std::int64_t>(n, 1, 64));
}

Count par_pack_threshold() noexcept {
    static const Count v = par_pack_threshold_from_env();
    return v;
}

int par_pack_workers() noexcept {
    static const int v = par_pack_workers_from_env();
    return v;
}

bool par_pack_eligible(Count total) noexcept {
    const Count thresh = par_pack_threshold();
    return pack_plan_enabled() && thresh > 0 && total >= thresh &&
           par_pack_workers() > 1;
}

namespace {

// Persistent pool. Workers claim part indices from a shared atomic, so a
// slow worker never stalls the others; the calling thread participates and
// then waits only for stragglers.
class PackPool {
public:
    static PackPool& instance() {
        static PackPool pool;
        return pool;
    }

    void run(int nparts, std::function<void(int)> fn) {
        if (nparts <= 0) return;
        if (threads_.empty() || nparts == 1) {
            for (int i = 0; i < nparts; ++i) fn(i);
            return;
        }
        auto job = std::make_shared<Job>();
        job->fn = std::move(fn);
        job->nparts = nparts;
        {
            std::lock_guard<std::mutex> lk(mu_);
            job_ = job;
            ++generation_;
        }
        cv_.notify_all();
        // Caller participates.
        for (int i = job->next.fetch_add(1); i < nparts; i = job->next.fetch_add(1)) {
            job->fn(i);
            job->done.fetch_add(1, std::memory_order_acq_rel);
        }
        std::unique_lock<std::mutex> lk(mu_);
        done_cv_.wait(lk, [&] {
            return job->done.load(std::memory_order_acquire) >= nparts;
        });
        if (job_ == job) job_.reset();
    }

private:
    struct Job {
        std::function<void(int)> fn;
        int nparts = 0;
        std::atomic<int> next{0};
        std::atomic<int> done{0};
    };

    PackPool() {
        const int extra = par_pack_workers() - 1;
        threads_.reserve(static_cast<std::size_t>(std::max(0, extra)));
        for (int i = 0; i < extra; ++i) {
            threads_.emplace_back([this] { worker_loop(); });
        }
    }

    ~PackPool() {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    void worker_loop() {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            cv_.wait(lk, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_) return;
            seen = generation_;
            // Hold a reference so the job outlives run()'s stack frame even
            // if this worker is still draining when the caller returns.
            std::shared_ptr<Job> job = job_;
            lk.unlock();
            const int nparts = job->nparts;
            for (int i = job->next.fetch_add(1); i < nparts;
                 i = job->next.fetch_add(1)) {
                job->fn(i);
                if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 >= nparts) {
                    std::lock_guard<std::mutex> g(mu_);
                    done_cv_.notify_all();
                }
            }
            lk.lock();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::shared_ptr<Job> job_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

template <bool Pack>
Status run_range(const TypeRef& type, void* buf, Count count, Count offset,
                 std::byte* stream, Count span) {
    if (span <= 0) return Status::success;
    trace::Span fan_span("dt", Pack ? "par_pack" : "par_unpack");
    const Count elem = type->size();
    const int workers = par_pack_workers();
    // Chunk by packed offset, rounded up to whole elements so workers hit
    // the plan kernels instead of partial-element handling.
    Count chunk = (span + workers - 1) / workers;
    if (elem > 0 && chunk % elem != 0) chunk += elem - chunk % elem;
    const int nparts = static_cast<int>((span + chunk - 1) / chunk);
    if (fan_span.active()) {
        fan_span.arg0("bytes", static_cast<std::uint64_t>(span));
        fan_span.arg1("parts", static_cast<std::uint64_t>(nparts));
    }
    std::atomic<int> failures{0};
    PackPool::instance().run(nparts, [&](int p) {
        // A single-part fan is degenerate — the enclosing par_pack span
        // (parts=1) already delimits it exactly, so skip the part span.
        trace::Span part_span("dt", Pack ? "par_pack_part" : "par_unpack_part",
                              nparts == 1);
        part_span.arg0("part", static_cast<std::uint64_t>(p));
        const Count off = static_cast<Count>(p) * chunk;
        const Count len = std::min(chunk, span - off);
        Convertor cv(type, buf, count, PackMode::auto_);
        cv.suppress_trace();
        cv.seek(offset + off);
        if constexpr (Pack) {
            Count u = 0;
            if (cv.pack({stream + off, static_cast<std::size_t>(len)}, &u) !=
                    Status::success ||
                u != len) {
                failures.fetch_add(1, std::memory_order_relaxed);
            }
        } else {
            if (cv.unpack({stream + off, static_cast<std::size_t>(len)}) !=
                Status::success) {
                failures.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });
    if (nparts > 1) {
        pack_stats().parallel_packs.fetch_add(1, std::memory_order_relaxed);
    }
    return failures.load() == 0 ? Status::success : Status::err_internal;
}

} // namespace

Status parallel_pack_range(const TypeRef& type, const void* buf, Count count,
                           Count offset, MutBytes dst, Count* used) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    const Count total = type->size() * count;
    if (offset < 0 || offset > total) return Status::err_count;
    const Count span = std::min(static_cast<Count>(dst.size()), total - offset);
    const Status st = run_range<true>(type, const_cast<void*>(buf), count, offset,
                                      dst.data(), span);
    *used = st == Status::success ? span : 0;
    return st;
}

Status parallel_unpack_range(const TypeRef& type, void* buf, Count count,
                             Count offset, ConstBytes src) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    const Count total = type->size() * count;
    if (offset < 0 || offset + static_cast<Count>(src.size()) > total) {
        return Status::err_truncate;
    }
    return run_range<false>(type, buf, count, offset,
                            const_cast<std::byte*>(src.data()),
                            static_cast<Count>(src.size()));
}

Status parallel_pack(const TypeRef& type, const void* buf, Count count, MutBytes dst,
                     Count* used) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    const Count total = type->size() * count;
    if (static_cast<Count>(dst.size()) < total) return Status::err_truncate;
    return parallel_pack_range(type, buf, count, 0,
                               dst.first(static_cast<std::size_t>(total)), used);
}

Status parallel_unpack(const TypeRef& type, void* buf, Count count, ConstBytes src) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    if (static_cast<Count>(src.size()) != type->size() * count) {
        return Status::err_count;
    }
    return parallel_unpack_range(type, buf, count, 0, src);
}

} // namespace mpicd::dt
