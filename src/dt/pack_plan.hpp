// Pack-plan compiler: lowers a committed datatype's flattened segment list
// into a compact *pack program* executed by specialized copy kernels,
// following TEMPI's canonical-representation idea (Pearson et al.) and the
// Träff et al. guideline that a derived datatype should never lose to
// manual packing.
//
// IR: a plan is an ordered list of PackInstr, each describing `reps` copies
// of `len` bytes read from `offset + k*stride` (relative to the element
// origin) and written densely to the packed stream, in type-map order.
// Runs of equal-length, constant-stride segments collapse into a single
// instruction; 4/8/16-byte (and a few other common) widths dispatch to
// fixed-size copy kernels the compiler can inline into plain loads/stores
// instead of opaque memcpy calls.
//
// A plan packs whole elements. Partial elements (fragment boundaries that
// split an element) are handled by the Convertor's generic segment loop;
// the plan fast path covers every fully-contained element in a fragment,
// which is where virtually all bytes live.
//
// The plan *cache* maps (layout fingerprint, count) to the per-message
// descriptor context reused by p2p::dt_bridge; see plan_cache_* below and
// docs/PERF.md for the keying discussion (the type signature alone names
// the leaf sequence, not the memory layout, so the fingerprint hashes the
// flattened segments + extent on top of the signature semantics).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "base/bytes.hpp"
#include "dt/datatype.hpp"

namespace mpicd::dt {

enum class PackOp : std::uint8_t {
    copy,   // generic width (memcpy of `len` per rep)
    copy4,  // fixed 4-byte kernel
    copy8,  // fixed 8-byte kernel
    copy16, // fixed 16-byte kernel
};

struct PackInstr {
    PackOp op = PackOp::copy;
    Count offset = 0; // first source byte, relative to the element origin
    Count len = 0;    // bytes per rep
    Count stride = 0; // source distance between reps
    Count reps = 1;
};

struct PackPlan {
    std::vector<PackInstr> instrs;
    Count elem_size = 0; // packed bytes per element
    Count extent = 0;    // element-origin stride
    // True when the plan is a single instruction whose rep pattern
    // continues seamlessly across element boundaries
    // (stride * reps == extent): n elements then execute as ONE fused run
    // with n*reps reps — the big win for vector-like types.
    bool collapsible = false;

    [[nodiscard]] std::size_t instr_count() const noexcept { return instrs.size(); }
};

// Compile the segment list of one committed element. Returns nullptr for
// empty types (size 0), which have nothing to pack.
[[nodiscard]] std::shared_ptr<const PackPlan>
compile_plan(std::span<const Segment> segments, Count extent);

// Execute `nelems` whole elements: gather (pack) from `base` (the address
// of element 0's origin) into `dst`, or scatter (unpack) from `src`.
void plan_pack(const PackPlan& plan, const std::byte* base, Count nelems,
               std::byte* dst) noexcept;
void plan_unpack(const PackPlan& plan, std::byte* base, Count nelems,
                 const std::byte* src) noexcept;

// Master switch for the compiled path: MPICD_PACK_PLAN (default 1).
// With MPICD_PACK_PLAN=0 every consumer falls back to the generic
// segment-by-segment loop and the seed's lowering behaviour, preserving
// the paper-reproduction baselines byte for byte.
[[nodiscard]] bool pack_plan_enabled() noexcept;

// The plan *cache* that reuses lowered per-message descriptors across
// repeated sends of the same (type, count) lives one layer up, in
// p2p/dt_bridge (it caches transport descriptor contexts, which dt cannot
// name). The layout fingerprint it keys on is declared in dt/signature.hpp
// next to the signature machinery it extends.

} // namespace mpicd::dt
