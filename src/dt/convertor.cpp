#include "dt/convertor.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "base/stats.hpp"
#include "base/trace.hpp"
#include "dt/pack_plan.hpp"
#include "dt/par_pack.hpp"

namespace mpicd::dt {

Convertor::Convertor(TypeRef type, void* buf, Count count, PackMode mode)
    : type_(std::move(type)), buf_(static_cast<std::byte*>(buf)), count_(count) {
    assert(type_ != nullptr && type_->committed());
    assert(count_ >= 0);
    total_ = type_->size() * count_;
    if (mode != PackMode::generic &&
        (mode != PackMode::auto_ || pack_plan_enabled())) {
        plan_ = type_->plan().get();
    }
}

void Convertor::locate(Count packed_offset, Count* elem, std::size_t* seg,
                       Count* into) const {
    const Count elem_size = type_->size();
    if (elem_size == 0) {
        *elem = 0;
        *seg = 0;
        *into = 0;
        return;
    }
    *elem = packed_offset / elem_size;
    const Count rem = packed_offset % elem_size;
    const auto& prefix = type_->packed_prefix();
    // prefix is sorted; find the segment containing rem.
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), rem);
    const std::size_t s = static_cast<std::size_t>(it - prefix.begin()) - 1;
    *seg = s;
    *into = rem - prefix[s];
}

void Convertor::seek(Count packed_offset) {
    pos_ = std::clamp<Count>(packed_offset, 0, total_);
    locate(pos_, &elem_, &seg_, &seg_into_);
}

Status Convertor::pack(MutBytes dst, Count* used) {
    trace::Span span("dt", "pack", trace_suppressed_);
    const auto& segs = type_->segments();
    const Count extent = type_->extent();
    const Count elem_size = type_->size();
    Count produced = 0;
    Count want = std::min(static_cast<Count>(dst.size()), total_ - pos_);
    Count kernel_bytes = 0;
    Count generic_bytes = 0;
    while (want > 0) {
        // Plan fast path: at an element boundary with at least one whole
        // element wanted, run the compiled program over every whole element
        // in range. Head/tail partials (mid-element cursor, short trailing
        // span) fall through to the generic per-segment loop below, which
        // re-enters this path at the next element boundary.
        if (plan_ != nullptr && seg_ == 0 && seg_into_ == 0 && want >= elem_size) {
            const Count n = want / elem_size;
            const Count bytes = n * elem_size;
            plan_pack(*plan_, buf_ + elem_ * extent, n, dst.data() + produced);
            produced += bytes;
            want -= bytes;
            pos_ += bytes;
            elem_ += n;
            kernel_bytes += bytes;
            continue;
        }
        const Segment& s = segs[seg_];
        const Count n = std::min(s.len - seg_into_, want);
        const std::byte* src = buf_ + elem_ * extent + s.offset + seg_into_;
        std::memcpy(dst.data() + produced, src, static_cast<std::size_t>(n));
        produced += n;
        want -= n;
        pos_ += n;
        seg_into_ += n;
        generic_bytes += n;
        if (seg_into_ == s.len) {
            seg_into_ = 0;
            if (++seg_ == segs.size()) {
                seg_ = 0;
                ++elem_;
            }
        }
    }
    if (kernel_bytes > 0) {
        pack_stats().kernel_bytes.fetch_add(static_cast<std::uint64_t>(kernel_bytes),
                                            std::memory_order_relaxed);
    }
    if (generic_bytes > 0) {
        pack_stats().generic_bytes.fetch_add(static_cast<std::uint64_t>(generic_bytes),
                                             std::memory_order_relaxed);
    }
    if (span.active()) {
        span.arg0("bytes", static_cast<std::uint64_t>(produced));
        span.arg1("kernel", static_cast<std::uint64_t>(kernel_bytes));
    }
    *used = produced;
    return Status::success;
}

Status Convertor::unpack(ConstBytes src) {
    trace::Span span("dt", "unpack", trace_suppressed_);
    const auto& segs = type_->segments();
    const Count extent = type_->extent();
    const Count elem_size = type_->size();
    Count consumed = 0;
    Count have = static_cast<Count>(src.size());
    if (have > total_ - pos_) return Status::err_truncate;
    Count kernel_bytes = 0;
    Count generic_bytes = 0;
    while (have > 0) {
        if (plan_ != nullptr && seg_ == 0 && seg_into_ == 0 && have >= elem_size) {
            const Count n = have / elem_size;
            const Count bytes = n * elem_size;
            plan_unpack(*plan_, buf_ + elem_ * extent, n, src.data() + consumed);
            consumed += bytes;
            have -= bytes;
            pos_ += bytes;
            elem_ += n;
            kernel_bytes += bytes;
            continue;
        }
        const Segment& s = segs[seg_];
        const Count n = std::min(s.len - seg_into_, have);
        std::byte* dst = buf_ + elem_ * extent + s.offset + seg_into_;
        std::memcpy(dst, src.data() + consumed, static_cast<std::size_t>(n));
        consumed += n;
        have -= n;
        pos_ += n;
        seg_into_ += n;
        generic_bytes += n;
        if (seg_into_ == s.len) {
            seg_into_ = 0;
            if (++seg_ == segs.size()) {
                seg_ = 0;
                ++elem_;
            }
        }
    }
    if (kernel_bytes > 0) {
        pack_stats().kernel_bytes.fetch_add(static_cast<std::uint64_t>(kernel_bytes),
                                            std::memory_order_relaxed);
    }
    if (generic_bytes > 0) {
        pack_stats().generic_bytes.fetch_add(static_cast<std::uint64_t>(generic_bytes),
                                             std::memory_order_relaxed);
    }
    if (span.active()) {
        span.arg0("bytes", static_cast<std::uint64_t>(consumed));
        span.arg1("kernel", static_cast<std::uint64_t>(kernel_bytes));
    }
    return Status::success;
}

Status Convertor::pack_all(const TypeRef& type, const void* buf, Count count,
                           MutBytes dst, Count* used) {
    return pack_all(type, buf, count, dst, used, PackMode::auto_);
}

Status Convertor::pack_all(const TypeRef& type, const void* buf, Count count,
                           MutBytes dst, Count* used, PackMode mode) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    const Count total = type->size() * count;
    if (static_cast<Count>(dst.size()) < total) return Status::err_truncate;
    if (mode == PackMode::parallel ||
        (mode == PackMode::auto_ && par_pack_eligible(total))) {
        return parallel_pack(type, buf, count, dst, used);
    }
    Convertor cv(type, const_cast<void*>(buf), count, mode);
    return cv.pack(dst, used);
}

Status Convertor::unpack_all(const TypeRef& type, void* buf, Count count,
                             ConstBytes src) {
    return unpack_all(type, buf, count, src, PackMode::auto_);
}

Status Convertor::unpack_all(const TypeRef& type, void* buf, Count count,
                             ConstBytes src, PackMode mode) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    const Count total = type->size() * count;
    if (static_cast<Count>(src.size()) != total) return Status::err_count;
    if (mode == PackMode::parallel ||
        (mode == PackMode::auto_ && par_pack_eligible(total))) {
        return parallel_unpack(type, buf, count, src);
    }
    Convertor cv(type, buf, count, mode);
    return cv.unpack(src);
}

} // namespace mpicd::dt
