#include "dt/convertor.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mpicd::dt {

Convertor::Convertor(TypeRef type, void* buf, Count count)
    : type_(std::move(type)), buf_(static_cast<std::byte*>(buf)), count_(count) {
    assert(type_ != nullptr && type_->committed());
    assert(count_ >= 0);
    total_ = type_->size() * count_;
}

void Convertor::locate(Count packed_offset, Count* elem, std::size_t* seg,
                       Count* into) const {
    const Count elem_size = type_->size();
    if (elem_size == 0) {
        *elem = 0;
        *seg = 0;
        *into = 0;
        return;
    }
    *elem = packed_offset / elem_size;
    const Count rem = packed_offset % elem_size;
    const auto& prefix = type_->packed_prefix();
    // prefix is sorted; find the segment containing rem.
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), rem);
    const std::size_t s = static_cast<std::size_t>(it - prefix.begin()) - 1;
    *seg = s;
    *into = rem - prefix[s];
}

void Convertor::seek(Count packed_offset) {
    pos_ = std::clamp<Count>(packed_offset, 0, total_);
    locate(pos_, &elem_, &seg_, &seg_into_);
}

Status Convertor::pack(MutBytes dst, Count* used) {
    const auto& segs = type_->segments();
    const Count extent = type_->extent();
    Count produced = 0;
    Count want = std::min(static_cast<Count>(dst.size()), total_ - pos_);
    while (want > 0) {
        const Segment& s = segs[seg_];
        const Count n = std::min(s.len - seg_into_, want);
        const std::byte* src = buf_ + elem_ * extent + s.offset + seg_into_;
        std::memcpy(dst.data() + produced, src, static_cast<std::size_t>(n));
        produced += n;
        want -= n;
        pos_ += n;
        seg_into_ += n;
        if (seg_into_ == s.len) {
            seg_into_ = 0;
            if (++seg_ == segs.size()) {
                seg_ = 0;
                ++elem_;
            }
        }
    }
    *used = produced;
    return Status::success;
}

Status Convertor::unpack(ConstBytes src) {
    const auto& segs = type_->segments();
    const Count extent = type_->extent();
    Count consumed = 0;
    Count have = static_cast<Count>(src.size());
    if (have > total_ - pos_) return Status::err_truncate;
    while (have > 0) {
        const Segment& s = segs[seg_];
        const Count n = std::min(s.len - seg_into_, have);
        std::byte* dst = buf_ + elem_ * extent + s.offset + seg_into_;
        std::memcpy(dst, src.data() + consumed, static_cast<std::size_t>(n));
        consumed += n;
        have -= n;
        pos_ += n;
        seg_into_ += n;
        if (seg_into_ == s.len) {
            seg_into_ = 0;
            if (++seg_ == segs.size()) {
                seg_ = 0;
                ++elem_;
            }
        }
    }
    return Status::success;
}

Status Convertor::pack_all(const TypeRef& type, const void* buf, Count count,
                           MutBytes dst, Count* used) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    Convertor cv(type, const_cast<void*>(buf), count);
    if (static_cast<Count>(dst.size()) < cv.total_packed()) return Status::err_truncate;
    return cv.pack(dst, used);
}

Status Convertor::unpack_all(const TypeRef& type, void* buf, Count count,
                             ConstBytes src) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    Convertor cv(type, buf, count);
    if (static_cast<Count>(src.size()) != cv.total_packed()) return Status::err_count;
    return cv.unpack(src);
}

} // namespace mpicd::dt
