#include "dt/iovec.hpp"

namespace mpicd::dt {

namespace {

template <typename Entry, typename Ptr>
Status extract_impl(const TypeRef& type, Ptr buf, Count count,
                    std::vector<Entry>& out) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    if (count < 0) return Status::err_count;
    auto* base = reinterpret_cast<std::conditional_t<
        std::is_const_v<std::remove_pointer_t<Ptr>>, const std::byte*, std::byte*>>(buf);
    const Count extent = type->extent();
    const auto& segs = type->segments();
    for (Count i = 0; i < count; ++i) {
        for (const auto& s : segs) {
            auto* p = base + i * extent + s.offset;
            if (!out.empty()) {
                auto* prev_end =
                    static_cast<decltype(p)>(out.back().base) + out.back().len;
                if (prev_end == p) {
                    out.back().len += s.len;
                    continue;
                }
            }
            out.push_back({p, s.len});
        }
    }
    return Status::success;
}

} // namespace

Status extract_regions(const TypeRef& type, const void* buf, Count count,
                       std::vector<ConstIovEntry>& out) {
    return extract_impl(type, static_cast<const std::byte*>(buf), count, out);
}

Status extract_regions(const TypeRef& type, void* buf, Count count,
                       std::vector<IovEntry>& out) {
    return extract_impl(type, static_cast<std::byte*>(buf), count, out);
}

Count region_count(const TypeRef& type, Count count) {
    if (type == nullptr || !type->committed() || count <= 0) return 0;
    const auto& segs = type->segments();
    if (segs.empty()) return 0;
    // Elements merge across the boundary when the last segment of element i
    // ends exactly where the first segment of element i+1 begins.
    const bool merge_across =
        segs.back().offset + segs.back().len == type->extent() + segs.front().offset;
    const Count per_elem = static_cast<Count>(segs.size());
    if (merge_across) return per_elem * count - (count - 1);
    return per_elem * count;
}

} // namespace mpicd::dt
