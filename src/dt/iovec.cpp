#include "dt/iovec.hpp"

#include "base/stats.hpp"

namespace mpicd::dt {

namespace {

template <typename Entry, typename Ptr>
Status extract_impl(const TypeRef& type, Ptr buf, Count count,
                    std::vector<Entry>& out) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    if (count < 0) return Status::err_count;
    auto* base = reinterpret_cast<std::conditional_t<
        std::is_const_v<std::remove_pointer_t<Ptr>>, const std::byte*, std::byte*>>(buf);
    const Count extent = type->extent();
    const auto& segs = type->segments();
    // Emit the raw per-segment entries, then run the shared coalescing pass
    // over the appended tail (allowing the first new entry to merge into the
    // caller's existing last entry, as pack order continues across the call).
    const std::size_t start = out.size();
    out.reserve(start + static_cast<std::size_t>(count) * segs.size());
    for (Count i = 0; i < count; ++i) {
        for (const auto& s : segs) {
            out.push_back({base + i * extent + s.offset, s.len});
        }
    }
    const std::size_t raw = out.size() - start;
    coalesce_iov(out, start == 0 ? 0 : start - 1);
    auto& ps = pack_stats();
    ps.iov_entries_before.fetch_add(static_cast<std::uint64_t>(raw),
                                    std::memory_order_relaxed);
    ps.iov_entries_after.fetch_add(static_cast<std::uint64_t>(out.size() - start),
                                   std::memory_order_relaxed);
    return Status::success;
}

} // namespace

Status extract_regions(const TypeRef& type, const void* buf, Count count,
                       std::vector<ConstIovEntry>& out) {
    return extract_impl(type, static_cast<const std::byte*>(buf), count, out);
}

Status extract_regions(const TypeRef& type, void* buf, Count count,
                       std::vector<IovEntry>& out) {
    return extract_impl(type, static_cast<std::byte*>(buf), count, out);
}

Count region_count(const TypeRef& type, Count count) {
    if (type == nullptr || !type->committed() || count <= 0) return 0;
    const auto& segs = type->segments();
    if (segs.empty()) return 0;
    // Elements merge across the boundary when the last segment of element i
    // ends exactly where the first segment of element i+1 begins.
    const bool merge_across =
        segs.back().offset + segs.back().len == type->extent() + segs.front().offset;
    const Count per_elem = static_cast<Count>(segs.size());
    if (merge_across) return per_elem * count - (count - 1);
    return per_elem * count;
}

} // namespace mpicd::dt
