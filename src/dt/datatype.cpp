#include "dt/datatype.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "dt/pack_plan.hpp"

namespace mpicd::dt {

namespace {

// Guard against pathological flattenings (documented limit).
constexpr std::size_t kMaxSegments = std::size_t{1} << 24;

struct Footprint {
    Count lb = 0, ub = 0, true_lb = 0, true_ub = 0;
    bool any = false;

    void add(Count disp, Count nblk, Count elem_extent, const Datatype& t) {
        if (nblk <= 0) return;
        const Count l = disp + t.lb();
        const Count u = disp + (nblk - 1) * elem_extent + t.ub();
        const Count tl = disp + t.true_lb();
        const Count tu = disp + (nblk - 1) * elem_extent + t.true_lb() + t.true_extent();
        if (!any) {
            lb = l; ub = u; true_lb = tl; true_ub = tu;
            any = true;
        } else {
            lb = std::min(lb, l);
            ub = std::max(ub, u);
            true_lb = std::min(true_lb, tl);
            true_ub = std::max(true_ub, tu);
        }
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Factories

namespace {
struct DatatypeAccess : Datatype {};
TypeRef make_type() { return std::make_shared<DatatypeAccess>(); }
} // namespace

// Private-constructor workaround: Datatype's default constructor is private,
// so factories build through a derived accessor type.

TypeRef Datatype::predefined(Predef p) {
    auto t = make_type();
    t->kind_ = TypeKind::predefined;
    t->predef_ = p;
    t->size_ = static_cast<Count>(predef_size(p));
    t->extent_ = t->size_;
    t->true_extent_ = t->size_;
    return t;
}

TypeRef Datatype::contiguous(Count count, const TypeRef& base) {
    if (count < 0 || base == nullptr) return nullptr;
    auto t = make_type();
    t->kind_ = TypeKind::contiguous;
    t->count_ = count;
    t->children_.push_back(base);
    t->size_ = count * base->size();
    if (count > 0) {
        Footprint fp;
        fp.add(0, count, base->extent(), *base);
        t->lb_ = fp.lb;
        t->extent_ = fp.ub - fp.lb;
        t->true_lb_ = fp.true_lb;
        t->true_extent_ = fp.true_ub - fp.true_lb;
    }
    return t;
}

TypeRef Datatype::vector(Count count, Count blocklen, Count stride, const TypeRef& base) {
    if (count < 0 || blocklen < 0 || base == nullptr) return nullptr;
    auto t = make_type();
    t->kind_ = TypeKind::vector;
    t->count_ = count;
    t->blocklen_ = blocklen;
    t->stride_ = stride;
    t->children_.push_back(base);
    t->size_ = count * blocklen * base->size();
    Footprint fp;
    for (Count i = 0; i < count; ++i) {
        fp.add(i * stride * base->extent(), blocklen, base->extent(), *base);
    }
    if (fp.any) {
        t->lb_ = fp.lb;
        t->extent_ = fp.ub - fp.lb;
        t->true_lb_ = fp.true_lb;
        t->true_extent_ = fp.true_ub - fp.true_lb;
    }
    return t;
}

TypeRef Datatype::hvector(Count count, Count blocklen, Count stride_bytes,
                          const TypeRef& base) {
    if (count < 0 || blocklen < 0 || base == nullptr) return nullptr;
    auto t = make_type();
    t->kind_ = TypeKind::hvector;
    t->count_ = count;
    t->blocklen_ = blocklen;
    t->stride_ = stride_bytes;
    t->children_.push_back(base);
    t->size_ = count * blocklen * base->size();
    Footprint fp;
    for (Count i = 0; i < count; ++i) {
        fp.add(i * stride_bytes, blocklen, base->extent(), *base);
    }
    if (fp.any) {
        t->lb_ = fp.lb;
        t->extent_ = fp.ub - fp.lb;
        t->true_lb_ = fp.true_lb;
        t->true_extent_ = fp.true_ub - fp.true_lb;
    }
    return t;
}

TypeRef Datatype::indexed(std::span<const Count> blocklens, std::span<const Count> displs,
                          const TypeRef& base) {
    if (base == nullptr || blocklens.size() != displs.size()) return nullptr;
    for (const Count b : blocklens)
        if (b < 0) return nullptr;
    auto t = make_type();
    t->kind_ = TypeKind::indexed;
    t->count_ = static_cast<Count>(blocklens.size());
    t->blocklens_.assign(blocklens.begin(), blocklens.end());
    t->displs_.assign(displs.begin(), displs.end());
    t->children_.push_back(base);
    Footprint fp;
    for (std::size_t i = 0; i < blocklens.size(); ++i) {
        t->size_ += blocklens[i] * base->size();
        fp.add(displs[i] * base->extent(), blocklens[i], base->extent(), *base);
    }
    if (fp.any) {
        t->lb_ = fp.lb;
        t->extent_ = fp.ub - fp.lb;
        t->true_lb_ = fp.true_lb;
        t->true_extent_ = fp.true_ub - fp.true_lb;
    }
    return t;
}

TypeRef Datatype::hindexed(std::span<const Count> blocklens,
                           std::span<const Count> displs_bytes, const TypeRef& base) {
    if (base == nullptr || blocklens.size() != displs_bytes.size()) return nullptr;
    for (const Count b : blocklens)
        if (b < 0) return nullptr;
    auto t = make_type();
    t->kind_ = TypeKind::hindexed;
    t->count_ = static_cast<Count>(blocklens.size());
    t->blocklens_.assign(blocklens.begin(), blocklens.end());
    t->displs_.assign(displs_bytes.begin(), displs_bytes.end());
    t->children_.push_back(base);
    Footprint fp;
    for (std::size_t i = 0; i < blocklens.size(); ++i) {
        t->size_ += blocklens[i] * base->size();
        fp.add(displs_bytes[i], blocklens[i], base->extent(), *base);
    }
    if (fp.any) {
        t->lb_ = fp.lb;
        t->extent_ = fp.ub - fp.lb;
        t->true_lb_ = fp.true_lb;
        t->true_extent_ = fp.true_ub - fp.true_lb;
    }
    return t;
}

TypeRef Datatype::indexed_block(Count blocklen, std::span<const Count> displs,
                                const TypeRef& base) {
    if (base == nullptr || blocklen < 0) return nullptr;
    auto t = make_type();
    t->kind_ = TypeKind::indexed_block;
    t->count_ = static_cast<Count>(displs.size());
    t->blocklen_ = blocklen;
    t->displs_.assign(displs.begin(), displs.end());
    t->children_.push_back(base);
    Footprint fp;
    for (const Count d : displs) {
        t->size_ += blocklen * base->size();
        fp.add(d * base->extent(), blocklen, base->extent(), *base);
    }
    if (fp.any) {
        t->lb_ = fp.lb;
        t->extent_ = fp.ub - fp.lb;
        t->true_lb_ = fp.true_lb;
        t->true_extent_ = fp.true_ub - fp.true_lb;
    }
    return t;
}

TypeRef Datatype::struct_(std::span<const Count> blocklens,
                          std::span<const Count> displs_bytes,
                          std::span<const TypeRef> types) {
    if (blocklens.size() != displs_bytes.size() || blocklens.size() != types.size())
        return nullptr;
    for (std::size_t i = 0; i < types.size(); ++i) {
        if (types[i] == nullptr || blocklens[i] < 0) return nullptr;
    }
    auto t = make_type();
    t->kind_ = TypeKind::struct_;
    t->count_ = static_cast<Count>(blocklens.size());
    t->blocklens_.assign(blocklens.begin(), blocklens.end());
    t->displs_.assign(displs_bytes.begin(), displs_bytes.end());
    t->children_.assign(types.begin(), types.end());
    Footprint fp;
    for (std::size_t i = 0; i < types.size(); ++i) {
        t->size_ += blocklens[i] * types[i]->size();
        fp.add(displs_bytes[i], blocklens[i], types[i]->extent(), *types[i]);
    }
    if (fp.any) {
        t->lb_ = fp.lb;
        t->extent_ = fp.ub - fp.lb;
        t->true_lb_ = fp.true_lb;
        t->true_extent_ = fp.true_ub - fp.true_lb;
    }
    return t;
}

TypeRef Datatype::resized(const TypeRef& base, Count lb, Count extent) {
    if (base == nullptr || extent < 0) return nullptr;
    auto t = make_type();
    t->kind_ = TypeKind::resized;
    t->children_.push_back(base);
    t->size_ = base->size();
    t->lb_ = lb;
    t->extent_ = extent;
    t->true_lb_ = base->true_lb();
    t->true_extent_ = base->true_extent();
    return t;
}

TypeRef Datatype::subarray(std::span<const Count> sizes, std::span<const Count> subsizes,
                           std::span<const Count> starts, const TypeRef& base) {
    if (base == nullptr || sizes.empty() || sizes.size() != subsizes.size() ||
        sizes.size() != starts.size())
        return nullptr;
    Count full = 1, sub = 1;
    for (std::size_t d = 0; d < sizes.size(); ++d) {
        if (sizes[d] <= 0 || subsizes[d] < 0 || starts[d] < 0 ||
            starts[d] + subsizes[d] > sizes[d])
            return nullptr;
        full *= sizes[d];
        sub *= subsizes[d];
    }
    auto t = make_type();
    t->kind_ = TypeKind::subarray;
    t->children_.push_back(base);
    t->sub_sizes_.assign(sizes.begin(), sizes.end());
    t->sub_subsizes_.assign(subsizes.begin(), subsizes.end());
    t->sub_starts_.assign(starts.begin(), starts.end());
    t->size_ = sub * base->size();
    t->lb_ = 0;
    t->extent_ = full * base->extent();
    // True footprint: offsets of the first and last selected element.
    if (sub > 0) {
        Count first = 0, last = 0, stride = base->extent();
        for (std::size_t d = sizes.size(); d-- > 0;) {
            first += starts[d] * stride;
            last += (starts[d] + subsizes[d] - 1) * stride;
            stride *= sizes[d];
        }
        // Strides accumulate from the innermost dimension outward.
        // Recompute properly: C order means last dim is innermost.
        first = 0;
        last = 0;
        Count row_stride = base->extent();
        std::vector<Count> strides(sizes.size());
        for (std::size_t d = sizes.size(); d-- > 0;) {
            strides[d] = row_stride;
            row_stride *= sizes[d];
        }
        for (std::size_t d = 0; d < sizes.size(); ++d) {
            first += starts[d] * strides[d];
            last += (starts[d] + subsizes[d] - 1) * strides[d];
        }
        t->true_lb_ = first + base->true_lb();
        t->true_extent_ = last - first + base->true_extent();
    }
    return t;
}

// ---------------------------------------------------------------------------
// Flattening / commit

void Datatype::append_segment(std::vector<Segment>& out, Count offset, Count len) {
    if (len <= 0) return;
    if (!out.empty() && out.back().offset + out.back().len == offset) {
        out.back().len += len;
        return;
    }
    out.push_back({offset, len});
}

void Datatype::flatten(std::vector<Segment>& out, Count origin) const {
    if (out.size() > kMaxSegments) return; // caller checks after commit
    switch (kind_) {
        case TypeKind::predefined:
            append_segment(out, origin, size_);
            break;
        case TypeKind::contiguous: {
            const auto& c = *children_[0];
            for (Count i = 0; i < count_; ++i) c.flatten(out, origin + i * c.extent());
            break;
        }
        case TypeKind::vector: {
            const auto& c = *children_[0];
            for (Count i = 0; i < count_; ++i) {
                const Count block = origin + i * stride_ * c.extent();
                for (Count j = 0; j < blocklen_; ++j)
                    c.flatten(out, block + j * c.extent());
            }
            break;
        }
        case TypeKind::hvector: {
            const auto& c = *children_[0];
            for (Count i = 0; i < count_; ++i) {
                const Count block = origin + i * stride_;
                for (Count j = 0; j < blocklen_; ++j)
                    c.flatten(out, block + j * c.extent());
            }
            break;
        }
        case TypeKind::indexed: {
            const auto& c = *children_[0];
            for (std::size_t i = 0; i < blocklens_.size(); ++i) {
                const Count block = origin + displs_[i] * c.extent();
                for (Count j = 0; j < blocklens_[i]; ++j)
                    c.flatten(out, block + j * c.extent());
            }
            break;
        }
        case TypeKind::hindexed: {
            const auto& c = *children_[0];
            for (std::size_t i = 0; i < blocklens_.size(); ++i) {
                const Count block = origin + displs_[i];
                for (Count j = 0; j < blocklens_[i]; ++j)
                    c.flatten(out, block + j * c.extent());
            }
            break;
        }
        case TypeKind::indexed_block: {
            const auto& c = *children_[0];
            for (const Count d : displs_) {
                const Count block = origin + d * c.extent();
                for (Count j = 0; j < blocklen_; ++j)
                    c.flatten(out, block + j * c.extent());
            }
            break;
        }
        case TypeKind::struct_: {
            for (std::size_t i = 0; i < children_.size(); ++i) {
                const auto& c = *children_[i];
                const Count block = origin + displs_[i];
                for (Count j = 0; j < blocklens_[i]; ++j)
                    c.flatten(out, block + j * c.extent());
            }
            break;
        }
        case TypeKind::resized:
            children_[0]->flatten(out, origin);
            break;
        case TypeKind::subarray: {
            const auto& c = *children_[0];
            const std::size_t ndims = sub_sizes_.size();
            std::vector<Count> strides(ndims);
            Count s = c.extent();
            for (std::size_t d = ndims; d-- > 0;) {
                strides[d] = s;
                s *= sub_sizes_[d];
            }
            // Iterate the outer dims; the innermost dim is a contiguous run
            // of subsizes[last] base elements.
            std::vector<Count> idx(ndims, 0);
            const Count inner = ndims > 0 ? sub_subsizes_[ndims - 1] : 0;
            bool done = false;
            // Handle empty selections.
            for (std::size_t d = 0; d < ndims; ++d)
                if (sub_subsizes_[d] == 0) done = true;
            while (!done) {
                Count off = origin;
                for (std::size_t d = 0; d + 1 < ndims; ++d)
                    off += (sub_starts_[d] + idx[d]) * strides[d];
                off += sub_starts_[ndims - 1] * strides[ndims - 1];
                for (Count j = 0; j < inner; ++j)
                    c.flatten(out, off + j * strides[ndims - 1]);
                // Advance the outer multi-index.
                done = true;
                for (std::size_t d = ndims - 1; d-- > 0;) {
                    if (++idx[d] < sub_subsizes_[d]) {
                        done = false;
                        break;
                    }
                    idx[d] = 0;
                }
                if (ndims == 1) done = true;
            }
            break;
        }
    }
}

Status Datatype::commit() {
    if (committed_) return Status::success;
    segments_.clear();
    flatten(segments_, 0);
    if (segments_.size() > kMaxSegments) {
        segments_.clear();
        return Status::err_unsupported;
    }
    packed_prefix_.resize(segments_.size() + 1);
    packed_prefix_[0] = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i)
        packed_prefix_[i + 1] = packed_prefix_[i] + segments_[i].len;
    assert(packed_prefix_.back() == size_);
    contiguous_flag_ =
        (size_ == 0) ||
        (segments_.size() == 1 && segments_[0].offset == 0 &&
         segments_[0].len == size_ && extent_ == size_ && lb_ == 0);
    plan_ = compile_plan(segments_, extent_);
    committed_ = true;
    return Status::success;
}

void Datatype::append_signature(std::vector<Predef>& out) const {
    switch (kind_) {
        case TypeKind::predefined:
            out.push_back(predef_);
            break;
        case TypeKind::contiguous:
            for (Count i = 0; i < count_; ++i) children_[0]->append_signature(out);
            break;
        case TypeKind::vector:
        case TypeKind::hvector:
            for (Count i = 0; i < count_ * blocklen_; ++i)
                children_[0]->append_signature(out);
            break;
        case TypeKind::indexed:
        case TypeKind::hindexed:
            for (const Count b : blocklens_)
                for (Count j = 0; j < b; ++j) children_[0]->append_signature(out);
            break;
        case TypeKind::indexed_block:
            for (Count i = 0; i < count_ * blocklen_; ++i)
                children_[0]->append_signature(out);
            break;
        case TypeKind::struct_:
            for (std::size_t i = 0; i < children_.size(); ++i)
                for (Count j = 0; j < blocklens_[i]; ++j)
                    children_[i]->append_signature(out);
            break;
        case TypeKind::resized:
            children_[0]->append_signature(out);
            break;
        case TypeKind::subarray: {
            Count n = 1;
            for (const Count s : sub_subsizes_) n *= s;
            for (Count i = 0; i < n; ++i) children_[0]->append_signature(out);
            break;
        }
    }
}

std::string Datatype::name() const {
    switch (kind_) {
        case TypeKind::predefined: return predef_name(predef_);
        case TypeKind::contiguous: return "contiguous(" + children_[0]->name() + ")";
        case TypeKind::vector: return "vector(" + children_[0]->name() + ")";
        case TypeKind::hvector: return "hvector(" + children_[0]->name() + ")";
        case TypeKind::indexed: return "indexed(" + children_[0]->name() + ")";
        case TypeKind::hindexed: return "hindexed(" + children_[0]->name() + ")";
        case TypeKind::indexed_block: return "indexed_block(" + children_[0]->name() + ")";
        case TypeKind::struct_: return "struct";
        case TypeKind::resized: return "resized(" + children_[0]->name() + ")";
        case TypeKind::subarray: return "subarray(" + children_[0]->name() + ")";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Predefined singletons

namespace {
TypeRef make_committed(Predef p) {
    auto t = Datatype::predefined(p);
    (void)t->commit();
    return t;
}
} // namespace

const TypeRef& type_byte() {
    static const TypeRef t = make_committed(Predef::byte_);
    return t;
}
const TypeRef& type_char() {
    static const TypeRef t = make_committed(Predef::char_);
    return t;
}
const TypeRef& type_int32() {
    static const TypeRef t = make_committed(Predef::int32);
    return t;
}
const TypeRef& type_uint32() {
    static const TypeRef t = make_committed(Predef::uint32);
    return t;
}
const TypeRef& type_int64() {
    static const TypeRef t = make_committed(Predef::int64);
    return t;
}
const TypeRef& type_uint64() {
    static const TypeRef t = make_committed(Predef::uint64);
    return t;
}
const TypeRef& type_float() {
    static const TypeRef t = make_committed(Predef::float32);
    return t;
}
const TypeRef& type_double() {
    static const TypeRef t = make_committed(Predef::float64);
    return t;
}

} // namespace mpicd::dt
