#include "dt/pack_plan.hpp"

#include <cstring>

#include "base/config.hpp"
#include "base/stats.hpp"
#include "base/trace.hpp"

namespace mpicd::dt {

bool pack_plan_enabled() noexcept {
    static const bool v = env_int_or("MPICD_PACK_PLAN", 1) != 0;
    return v;
}

// ---------------------------------------------------------------------------
// Compiler

std::shared_ptr<const PackPlan> compile_plan(std::span<const Segment> segments,
                                             Count extent) {
    if (segments.empty()) return nullptr;
    trace::Span span("dt", "plan_compile");
    span.arg0("segments", static_cast<std::uint64_t>(segments.size()));
    auto plan = std::make_shared<PackPlan>();
    plan->extent = extent;
    for (const auto& s : segments) plan->elem_size += s.len;

    // Greedily group maximal runs of equal-length, constant-stride segments.
    std::size_t i = 0;
    while (i < segments.size()) {
        const Count len = segments[i].len;
        std::size_t j = i + 1;
        Count stride = 0;
        if (j < segments.size() && segments[j].len == len) {
            stride = segments[j].offset - segments[i].offset;
            // A fixed-width kernel reads [offset + k*stride, +len); reps may
            // only grow while the stride stays constant. Negative or
            // overlapping strides are legal (type maps are not
            // address-ordered) — the kernels only ever read, so any stride
            // executes correctly.
            while (j < segments.size() && segments[j].len == len &&
                   segments[j].offset - segments[j - 1].offset == stride) {
                ++j;
            }
        }
        PackInstr in;
        in.offset = segments[i].offset;
        in.len = len;
        in.reps = static_cast<Count>(j - i);
        in.stride = in.reps > 1 ? stride : len;
        switch (len) {
            case 4: in.op = PackOp::copy4; break;
            case 8: in.op = PackOp::copy8; break;
            case 16: in.op = PackOp::copy16; break;
            default: in.op = PackOp::copy; break;
        }
        plan->instrs.push_back(in);
        i = j;
    }

    // Cross-element fusion: a single run whose stride pattern lands the
    // next rep exactly on the next element's first rep.
    if (plan->instrs.size() == 1) {
        const auto& in = plan->instrs[0];
        plan->collapsible = in.stride * in.reps == extent;
    }

    pack_stats().plans_compiled.fetch_add(1, std::memory_order_relaxed);
    span.arg1("instrs", static_cast<std::uint64_t>(plan->instrs.size()));
    return plan;
}

// ---------------------------------------------------------------------------
// Kernels
//
// `Pack` selects direction at compile time so one executor serves both
// pack (gather into the stream) and unpack (scatter back out of it).

namespace {

template <std::size_t W, bool Pack>
inline void fixed_run(std::byte* mem, Count stride, Count reps,
                      std::byte*& stream_mut) noexcept {
    std::byte* stream = stream_mut;
    for (Count r = 0; r < reps; ++r) {
        if constexpr (Pack) {
            std::memcpy(stream, mem, W);
        } else {
            std::memcpy(mem, stream, W);
        }
        stream += W;
        mem += stride;
    }
    stream_mut = stream;
}

template <bool Pack>
inline void generic_run(std::byte* mem, Count len, Count stride, Count reps,
                        std::byte*& stream_mut) noexcept {
    // Dispatch a handful of common widths to fixed copies once per run, so
    // the rep loop body is plain loads/stores instead of a libc memcpy call
    // with a runtime size.
    switch (len) {
        case 12: fixed_run<12, Pack>(mem, stride, reps, stream_mut); return;
        case 20: fixed_run<20, Pack>(mem, stride, reps, stream_mut); return;
        case 24: fixed_run<24, Pack>(mem, stride, reps, stream_mut); return;
        case 32: fixed_run<32, Pack>(mem, stride, reps, stream_mut); return;
        case 40: fixed_run<40, Pack>(mem, stride, reps, stream_mut); return;
        case 48: fixed_run<48, Pack>(mem, stride, reps, stream_mut); return;
        case 64: fixed_run<64, Pack>(mem, stride, reps, stream_mut); return;
        default: break;
    }
    std::byte* stream = stream_mut;
    for (Count r = 0; r < reps; ++r) {
        if constexpr (Pack) {
            std::memcpy(stream, mem, static_cast<std::size_t>(len));
        } else {
            std::memcpy(mem, stream, static_cast<std::size_t>(len));
        }
        stream += len;
        mem += stride;
    }
    stream_mut = stream;
}

template <bool Pack>
inline void exec_instr(const PackInstr& in, std::byte* elem, Count reps,
                       std::byte*& stream) noexcept {
    std::byte* mem = elem + in.offset;
    switch (in.op) {
        case PackOp::copy4: fixed_run<4, Pack>(mem, in.stride, reps, stream); break;
        case PackOp::copy8: fixed_run<8, Pack>(mem, in.stride, reps, stream); break;
        case PackOp::copy16: fixed_run<16, Pack>(mem, in.stride, reps, stream); break;
        case PackOp::copy: generic_run<Pack>(mem, in.len, in.stride, reps, stream); break;
    }
}

// Fused kernel for the ubiquitous two-segment struct element (the Fig. 5
// gap struct compiles to exactly this shape): both copy widths fixed at
// compile time and a single per-element loop, so there is no per-element
// instruction dispatch at all.
template <std::size_t W0, std::size_t W1, bool Pack>
void elem2_run(std::byte* base, Count off0, Count off1, Count extent, Count nelems,
               std::byte* stream) noexcept {
    for (Count e = 0; e < nelems; ++e) {
        std::byte* m = base + e * extent;
        if constexpr (Pack) {
            std::memcpy(stream, m + off0, W0);
            std::memcpy(stream + W0, m + off1, W1);
        } else {
            std::memcpy(m + off0, stream, W0);
            std::memcpy(m + off1, stream + W0, W1);
        }
        stream += W0 + W1;
    }
}

template <std::size_t W0, bool Pack>
bool elem2_second(Count len1, std::byte* base, Count off0, Count off1, Count extent,
                  Count nelems, std::byte* stream) noexcept {
    switch (len1) {
        case 4: elem2_run<W0, 4, Pack>(base, off0, off1, extent, nelems, stream); break;
        case 8: elem2_run<W0, 8, Pack>(base, off0, off1, extent, nelems, stream); break;
        case 12: elem2_run<W0, 12, Pack>(base, off0, off1, extent, nelems, stream); break;
        case 16: elem2_run<W0, 16, Pack>(base, off0, off1, extent, nelems, stream); break;
        case 20: elem2_run<W0, 20, Pack>(base, off0, off1, extent, nelems, stream); break;
        case 24: elem2_run<W0, 24, Pack>(base, off0, off1, extent, nelems, stream); break;
        default: return false;
    }
    return true;
}

template <bool Pack>
bool elem2_dispatch(const PackPlan& plan, std::byte* base, Count nelems,
                    std::byte* stream) noexcept {
    const PackInstr& a = plan.instrs[0];
    const PackInstr& b = plan.instrs[1];
    if (a.reps != 1 || b.reps != 1) return false;
    switch (a.len) {
        case 4:
            return elem2_second<4, Pack>(b.len, base, a.offset, b.offset, plan.extent,
                                         nelems, stream);
        case 8:
            return elem2_second<8, Pack>(b.len, base, a.offset, b.offset, plan.extent,
                                         nelems, stream);
        case 12:
            return elem2_second<12, Pack>(b.len, base, a.offset, b.offset, plan.extent,
                                          nelems, stream);
        case 16:
            return elem2_second<16, Pack>(b.len, base, a.offset, b.offset, plan.extent,
                                          nelems, stream);
        case 20:
            return elem2_second<20, Pack>(b.len, base, a.offset, b.offset, plan.extent,
                                          nelems, stream);
        case 24:
            return elem2_second<24, Pack>(b.len, base, a.offset, b.offset, plan.extent,
                                          nelems, stream);
        default: return false;
    }
}

template <bool Pack>
void execute(const PackPlan& plan, std::byte* base, Count nelems,
             std::byte* stream) noexcept {
    if (nelems <= 0) return;
    if (plan.collapsible) {
        // One fused run across all elements: a single dispatch, one tight
        // rep loop over the whole message.
        exec_instr<Pack>(plan.instrs[0], base, plan.instrs[0].reps * nelems, stream);
        return;
    }
    if (plan.instrs.size() == 1) {
        const PackInstr& in = plan.instrs[0];
        for (Count e = 0; e < nelems; ++e) {
            exec_instr<Pack>(in, base + e * plan.extent, in.reps, stream);
        }
        return;
    }
    if (plan.instrs.size() == 2 &&
        elem2_dispatch<Pack>(plan, base, nelems, stream)) {
        return;
    }
    for (Count e = 0; e < nelems; ++e) {
        std::byte* elem = base + e * plan.extent;
        for (const PackInstr& in : plan.instrs) {
            exec_instr<Pack>(in, elem, in.reps, stream);
        }
    }
}

} // namespace

void plan_pack(const PackPlan& plan, const std::byte* base, Count nelems,
               std::byte* dst) noexcept {
    execute<true>(plan, const_cast<std::byte*>(base), nelems, dst);
}

void plan_unpack(const PackPlan& plan, std::byte* base, Count nelems,
                 const std::byte* src) noexcept {
    execute<false>(plan, base, nelems, const_cast<std::byte*>(src));
}

} // namespace mpicd::dt
