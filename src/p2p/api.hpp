// mpicd::send / mpicd::recv — the concepts-based ergonomic API.
//
// Statically dispatches every WireSendable T to the fastest legal transfer
// (docs/API.md §7):
//
//   WireClass               fast path (MPICD_FAST_PATH=1, default)
//   ---------               -------------------------------------
//   trivially_wireable      CONTIG transfer of the raw object bytes
//   contiguous_resizable    two-entry IOV: u64 payload length + payload
//   needs_serializer        CustomSerialize<T> custom-datatype lowering
//
// With MPICD_FAST_PATH=0 the first two classes fall back to the
// CustomSerialize machinery (the type's own specialization when it has
// one, WireFallbackSerialize<T> otherwise) — byte-identical wire behavior
// to the pre-fast-path library.
//
// Receive-side shape discovery: contiguous-resizable receives probe the
// matching message first and resize the container from the *actual* wire
// size — the element count implied by the incoming bytes is validated
// (minimum header, element-size divisibility, header/payload agreement)
// before any allocation, so corrupt input surfaces as err_truncate instead
// of an over-allocation. The CustomSerialize<T> specialization (and the
// classification itself) must be visible at the call site.
#pragma once

#include <cstring>
#include <memory>

#include "core/builtin_serialize.hpp"
#include "core/engine.hpp"
#include "core/traits.hpp"
#include "p2p/communicator.hpp"

namespace mpicd {

namespace detail_api {

// The CustomSerialize-backed datatype used when the fast path is off (or
// for NeedsSerializer types): the type's own specialization wins, wireable
// types without one use the raw-bytes fallback adapter.
template <typename T>
[[nodiscard]] const core::CustomDatatype& slow_datatype() {
    if constexpr (core::HasCustomSerialize<T>) {
        return core::custom_datatype_of<T>();
    } else {
        return core::wire_fallback_datatype_of<T>();
    }
}

inline void note_fallback() {
    core::fastpath_counters().fallback_ops.fetch_add(1, std::memory_order_relaxed);
}

inline void note_serializer() {
    core::fastpath_counters().serializer_ops.fetch_add(1,
                                                       std::memory_order_relaxed);
}

// Drain a probed message into scratch storage so a validation failure does
// not leave it queued to confuse a later receive on the same tag.
inline p2p::MsgStatus drain_message(p2p::Communicator& comm,
                                    const p2p::ProbeResult& pr) {
    ByteVec scratch(static_cast<std::size_t>(pr.bytes));
    p2p::MsgStatus st =
        comm.recv_bytes(scratch.data(), pr.bytes, pr.source, pr.tag);
    st.status = Status::err_truncate;
    return st;
}

} // namespace detail_api

// --- send ------------------------------------------------------------------

template <typename T>
    requires core::WireSendable<T>
p2p::MsgStatus send(p2p::Communicator& comm, const T& obj, int dst, int tag) {
    if constexpr (core::TriviallyWireable<T>) {
        if (core::fast_path_enabled())
            return comm.isend_wire(&obj, static_cast<Count>(sizeof(T)), dst, tag)
                .wait();
        detail_api::note_fallback();
        return comm.send_custom(&obj, 1, detail_api::slow_datatype<T>(), dst, tag);
    } else if constexpr (core::ContiguousResizable<T>) {
        using U = typename T::value_type;
        const Count bytes = static_cast<Count>(obj.size() * sizeof(U));
        if (core::fast_path_enabled())
            return comm.isend_sized(obj.data(), bytes, dst, tag).wait();
        detail_api::note_fallback();
        return comm.send_custom(&obj, 1, core::custom_datatype_of<T>(), dst, tag);
    } else {
        detail_api::note_serializer();
        return comm.send_custom(&obj, 1, core::custom_datatype_of<T>(), dst, tag);
    }
}

// --- recv ------------------------------------------------------------------

template <typename T>
    requires core::WireSendable<T>
p2p::MsgStatus recv(p2p::Communicator& comm, T& obj, int src, int tag) {
    if constexpr (core::TriviallyWireable<T>) {
        if (core::fast_path_enabled()) {
            p2p::MsgStatus st =
                comm.irecv_wire(&obj, static_cast<Count>(sizeof(T)), src, tag)
                    .wait();
            if (ok(st.status) && st.bytes != static_cast<Count>(sizeof(T)))
                st.status = Status::err_truncate;
            return st;
        }
        detail_api::note_fallback();
        return comm.recv_custom(&obj, 1, detail_api::slow_datatype<T>(), src, tag);
    } else if constexpr (core::ContiguousResizable<T>) {
        using U = typename T::value_type;
        // Discover the wire size first; the per-(source, tag) FIFO
        // matching guarantees the receive posted below lands on the
        // message just probed.
        const p2p::ProbeResult pr = comm.probe(src, tag);
        constexpr Count kHdr = static_cast<Count>(sizeof(std::uint64_t));
        const Count payload = pr.bytes - kHdr;
        if (pr.bytes < kHdr || payload % static_cast<Count>(sizeof(U)) != 0)
            return detail_api::drain_message(comm, pr);
        obj.resize(static_cast<std::size_t>(payload) / sizeof(U));
        if (core::fast_path_enabled()) {
            auto hdr = std::make_shared<ByteVec>();
            p2p::MsgStatus st =
                comm.irecv_sized(hdr, payload > 0 ? obj.data() : nullptr, payload,
                                 pr.source, pr.tag)
                    .wait();
            if (ok(st.status)) {
                std::uint64_t announced = 0;
                std::memcpy(&announced, hdr->data(), sizeof announced);
                if (st.bytes != pr.bytes ||
                    announced != static_cast<std::uint64_t>(payload))
                    st.status = Status::err_truncate;
            }
            return st;
        }
        detail_api::note_fallback();
        return comm.recv_custom(&obj, 1, core::custom_datatype_of<T>(), pr.source,
                                pr.tag);
    } else {
        detail_api::note_serializer();
        return comm.recv_custom(&obj, 1, core::custom_datatype_of<T>(), src, tag);
    }
}

} // namespace mpicd
