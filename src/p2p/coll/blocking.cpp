// Blocking collectives: thin waits over the nonblocking state machines.
#include "p2p/collectives.hpp"

namespace mpicd::p2p {

Status barrier(Communicator& comm) { return coll::ibarrier(comm).wait(); }

Status bcast_bytes(Communicator& comm, void* buf, Count n, int root) {
    return coll::ibcast_bytes(comm, buf, n, root).wait();
}

Status bcast(Communicator& comm, void* buf, Count count, const dt::TypeRef& type,
             int root) {
    return coll::ibcast(comm, buf, count, type, root).wait();
}

Status bcast_custom(Communicator& comm, void* buf, Count count,
                    const core::CustomDatatype& type, int root) {
    return coll::ibcast_custom(comm, buf, count, type, root).wait();
}

Status gather_bytes(Communicator& comm, const void* send, Count n, void* recv,
                    int root) {
    return coll::igather_bytes(comm, send, n, recv, root).wait();
}

Status allreduce(Communicator& comm, double* data, Count count, ReduceOp op) {
    return coll::iallreduce(comm, data, count, op).wait();
}

Status allreduce(Communicator& comm, std::int64_t* data, Count count, ReduceOp op) {
    return coll::iallreduce(comm, data, count, op).wait();
}

} // namespace mpicd::p2p
