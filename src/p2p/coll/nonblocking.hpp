// Nonblocking collectives over the reserved collective tag plane.
//
// Each call starts a CollOp state machine (see coll/request.hpp) and
// returns immediately; the returned CollRequest completes as the op's
// rounds drain, driven from the owning worker's progress hook — so these
// overlap with point-to-point traffic and with each other. Algorithms:
//   ibarrier        dissemination (always flat: the payload is one token
//                   byte, there is nothing for a leader to aggregate)
//   ibcast*         binomial tree; hierarchical: root -> node leaders
//                   (binomial on the inter-node plane) -> node members
//   igather_bytes   linear fan-in; hierarchical: members -> node leader,
//                   leaders forward one aggregated node block to the root
//   iallreduce      binomial-tree reduce to rank 0 + binomial broadcast;
//                   hierarchical: intra-node reduce to leaders, the same
//                   binomial reduce+broadcast among leaders, intra-node
//                   result scatter
// Algorithm selection is per operation via coll::select_algo (auto: hier
// exactly when the fabric topology is two-level; MPICD_COLL_ALGO or
// set_algo_override force it).
//
// Buffer lifetime follows the MPI nonblocking contract: every buffer
// passed here must stay valid (and, for send buffers, unmodified) until
// the returned request completes.
#pragma once

#include <cstdint>

#include "p2p/coll/request.hpp"

namespace mpicd::p2p {

// Element-wise reduction operator for allreduce. On doubles, min/max
// combine with std::min/std::max, so a NaN contribution wins when it is
// the accumulated (left) argument and loses when it is the incoming
// (right) argument — NaN handling is therefore combination-order
// dependent and NOT the IEEE minNum/maxNum "ignore NaN" semantics. Ranks
// needing deterministic NaN behavior must filter inputs first.
enum class ReduceOp { sum, min, max };

} // namespace mpicd::p2p

namespace mpicd::p2p::coll {

// Synchronize all ranks.
[[nodiscard]] CollRequest ibarrier(Communicator& comm);

// Broadcast `n` raw bytes from `root`.
[[nodiscard]] CollRequest ibcast_bytes(Communicator& comm, void* buf, Count n,
                                       int root);

// Broadcast `count` elements of a committed derived datatype from `root`.
[[nodiscard]] CollRequest ibcast(Communicator& comm, void* buf, Count count,
                                 const dt::TypeRef& type, int root);

// Broadcast a custom-datatype buffer from `root`. Every rank passes its
// own pre-shaped object; non-roots receive into it, and each receiver's
// own query callback determines the expected packed size (the §VI size
// contract).
[[nodiscard]] CollRequest ibcast_custom(Communicator& comm, void* buf, Count count,
                                        const core::CustomDatatype& type, int root);

// Gather `n` bytes from every rank into `recv` (rank i's block at byte
// offset i*n) at the root; `recv` may be null on non-roots (and at the
// root when n == 0).
[[nodiscard]] CollRequest igather_bytes(Communicator& comm, const void* send,
                                        Count n, void* recv, int root);

// Element-wise allreduce over doubles / int64 (in place in `data`).
[[nodiscard]] CollRequest iallreduce(Communicator& comm, double* data, Count count,
                                     ReduceOp op);
[[nodiscard]] CollRequest iallreduce(Communicator& comm, std::int64_t* data,
                                     Count count, ReduceOp op);

} // namespace mpicd::p2p::coll
