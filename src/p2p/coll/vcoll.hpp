// v-variant collectives: per-rank variable counts (MPI_Gatherv /
// MPI_Allgatherv / MPI_Alltoallv analogs) over raw bytes, derived
// datatypes, and custom datatypes.
//
// Byte and derived variants take explicit per-rank counts and
// displacements (bytes for the _bytes family, elements of the receive
// type for the derived family), mirroring the MPI calling convention.
//
// The custom-datatype variants work at OBJECT granularity instead: every
// rank contributes one custom-typed object and receivers pass one
// pre-shaped object per source rank. The per-rank "variable extent" lives
// inside the objects themselves — each receiver's own query callback
// determines the expected packed size of each incoming object (the §VI
// size contract), so no count/displacement arrays are exchanged at all.
//
// allgatherv_bytes is topology-aware (flat direct exchange vs node-leader
// aggregation; see docs/COLLECTIVES.md). The other v-variants always use
// direct point-to-point exchange on the collective tag plane. Zero-count
// blocks move no wire traffic on either side.
//
// All functions block and must be entered by every rank in the same
// order. Spans must hold comm.size() entries (err_arg otherwise; counts
// at non-root ranks of gatherv are not read and may be empty).
#pragma once

#include <span>

#include "p2p/coll/request.hpp"

namespace mpicd::p2p::coll {

// --- Raw bytes (counts/displacements in bytes). ---------------------------
[[nodiscard]] Status gatherv_bytes(Communicator& comm, const void* send,
                                   Count sendn, void* recv,
                                   std::span<const Count> recvcounts,
                                   std::span<const Count> displs, int root);
[[nodiscard]] Status allgatherv_bytes(Communicator& comm, const void* send,
                                      Count sendn, void* recv,
                                      std::span<const Count> counts,
                                      std::span<const Count> displs);
[[nodiscard]] Status alltoallv_bytes(Communicator& comm, const void* send,
                                     std::span<const Count> sendcounts,
                                     std::span<const Count> sdispls, void* recv,
                                     std::span<const Count> recvcounts,
                                     std::span<const Count> rdispls);

// --- Derived datatypes (counts in elements, displacements in elements of
// the receive type's extent, as in MPI). -----------------------------------
[[nodiscard]] Status gatherv(Communicator& comm, const void* send, Count sendcount,
                             const dt::TypeRef& sendtype, void* recv,
                             std::span<const Count> recvcounts,
                             std::span<const Count> displs,
                             const dt::TypeRef& recvtype, int root);
[[nodiscard]] Status allgatherv(Communicator& comm, const void* send,
                                Count sendcount, const dt::TypeRef& sendtype,
                                void* recv, std::span<const Count> recvcounts,
                                std::span<const Count> displs,
                                const dt::TypeRef& recvtype);
[[nodiscard]] Status alltoallv(Communicator& comm, const void* send,
                               std::span<const Count> sendcounts,
                               std::span<const Count> sdispls,
                               const dt::TypeRef& sendtype, void* recv,
                               std::span<const Count> recvcounts,
                               std::span<const Count> rdispls,
                               const dt::TypeRef& recvtype);

// --- Custom datatypes (one object per rank pair; see the header note).
// gatherv_custom: `recv` holds comm.size() pre-shaped objects at the root
// (ignored elsewhere; recv[root] receives the root's own object through a
// loopback transfer so the pack/unpack callbacks run for it too).
[[nodiscard]] Status gatherv_custom(Communicator& comm, const void* send,
                                    const core::CustomDatatype& type,
                                    std::span<void* const> recv, int root);
// allgatherv_custom: every rank passes comm.size() pre-shaped objects.
[[nodiscard]] Status allgatherv_custom(Communicator& comm, const void* send,
                                       const core::CustomDatatype& type,
                                       std::span<void* const> recv);
// alltoallv_custom: `send` holds one object per destination rank, `recv`
// one pre-shaped object per source rank.
[[nodiscard]] Status alltoallv_custom(Communicator& comm,
                                      std::span<const void* const> send,
                                      std::span<void* const> recv,
                                      const core::CustomDatatype& type);

} // namespace mpicd::p2p::coll
