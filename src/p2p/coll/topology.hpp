// Two-level topology model for collective algorithm selection.
//
// The simulated fabric assigns endpoints to nodes in rank order
// (MPICD_RANKS_PER_NODE; see netsim/wire_model.hpp): links inside a node
// run on the fast intra plane, links between nodes on the (typically
// slower) inter plane. TopologyMap exposes that structure to the
// collective algorithms so they can route bulk traffic through one
// leader per node instead of hammering the inter-node plane with
// per-rank messages (docs/COLLECTIVES.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "base/bytes.hpp"

namespace mpicd {
class Histogram;
}

namespace mpicd::p2p {
class Communicator;
}

namespace mpicd::p2p::coll {

struct TopologyMap {
    int size = 1;
    int rank = 0;
    // Ranks per node as modeled by the fabric; size (a single node) when
    // the fabric is flat. Nodes are contiguous rank ranges, the lowest
    // rank of each node is its leader.
    int ranks_per_node = 1;
    int node_count = 1;

    [[nodiscard]] static TopologyMap create(Communicator& comm);

    [[nodiscard]] int node_of(int r) const noexcept { return r / ranks_per_node; }
    [[nodiscard]] int leader_of(int r) const noexcept {
        return node_of(r) * ranks_per_node;
    }
    [[nodiscard]] bool is_leader(int r) const noexcept { return r == leader_of(r); }
    [[nodiscard]] bool cross_node(int a, int b) const noexcept {
        return node_of(a) != node_of(b);
    }
    // First rank of node b / one past its last rank (the last node may be
    // ragged when size is not a multiple of ranks_per_node).
    [[nodiscard]] int node_begin(int b) const noexcept { return b * ranks_per_node; }
    [[nodiscard]] int node_end(int b) const noexcept {
        const int e = (b + 1) * ranks_per_node;
        return e < size ? e : size;
    }
    [[nodiscard]] int node_size(int b) const noexcept {
        return node_end(b) - node_begin(b);
    }
    [[nodiscard]] std::vector<int> leaders() const {
        std::vector<int> ls(static_cast<std::size_t>(node_count));
        for (int b = 0; b < node_count; ++b)
            ls[static_cast<std::size_t>(b)] = node_begin(b);
        return ls;
    }
    // A hierarchical algorithm only has something to aggregate when there
    // are at least two nodes and at least one node holds several ranks.
    [[nodiscard]] bool two_level() const noexcept {
        return node_count > 1 && ranks_per_node > 1;
    }
};

// Collective algorithm family. `flat` ignores the node structure
// (binomial / dissemination / direct exchange over ranks); `hier` routes
// bulk traffic through one leader per node.
enum class Algo { flat, hier };

// Pick the algorithm for a collective on `topo`: MPICD_COLL_ALGO
// (flat | hier | auto, cached on first use) or a set_algo_override()
// from bench/test code wins; `auto` selects hier exactly when the
// topology is two-level. Increments the coll/flat_selected or
// coll/hier_selected counter.
[[nodiscard]] Algo select_algo(const TopologyMap& topo);

// Force an algorithm (or std::nullopt to return to env/auto selection).
void set_algo_override(std::optional<Algo> algo) noexcept;

// Collective operation family — the coarse identity carried by coll.*
// trace events and the per-family metrics histograms. Values are stable
// (they appear numerically in trace args); append only.
enum class Fam : std::uint8_t {
    barrier = 0,
    bcast = 1,
    gather = 2,
    allreduce = 3,
    gatherv = 4,
    allgatherv = 5,
    alltoallv = 6,
};

[[nodiscard]] const char* fam_name(Fam f) noexcept;
[[nodiscard]] const char* algo_name(Algo a) noexcept;

// Per-(family, algorithm) op histograms in the "coll" metrics group:
// coll/op_latency_ns_<fam>_<algo> (end-to-end virtual-time latency of one
// rank's participation) and coll/op_rounds_<fam>_<algo> (state-machine
// rounds run). Created lazily on first record so benches that never run a
// family do not grow empty histogram entries in their JSON artifacts;
// references are stable for the process lifetime.
struct OpHists {
    Histogram& latency_ns;
    Histogram& rounds;
};
[[nodiscard]] OpHists& op_hists(Fam f, Algo a);

// coll/* counters in the MetricsRegistry: collectives started, algorithm
// selections, and payload bytes hierarchical algorithms pushed across the
// inter-node plane. References are stable for the process lifetime.
struct CollCounters {
    std::atomic<std::uint64_t>& ops;           // collective operations started
    std::atomic<std::uint64_t>& flat_selected; // select_algo -> flat
    std::atomic<std::uint64_t>& hier_selected; // select_algo -> hier
    std::atomic<std::uint64_t>& leader_bytes;  // hier payload bytes inter-node
};
[[nodiscard]] CollCounters& coll_counters() noexcept;

} // namespace mpicd::p2p::coll
