#include "p2p/coll/nonblocking.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "p2p/coll/schedule.hpp"

namespace mpicd::p2p::coll {

namespace {

// ---------------------------------------------------------------------------
// Barrier: dissemination. Round k: send a token to (rank + 2^k) % n,
// receive one from (rank - 2^k) % n; after ceil(log2(n)) rounds every rank
// transitively heard from every other. The send and receive tokens are
// DISTINCT bytes: the historical implementation posted irecv and isend on
// the same byte, a read/write race on lossy interleavings.
class BarrierOp final : public CollOp {
public:
    explicit BarrierOp(Communicator& comm)
        : CollOp(comm, Fam::barrier), rounds_(log2_rounds(topo_.size)) {}

private:
    void next_phase() override {
        if (round_ >= rounds_) {
            finish();
            return;
        }
        const int k = round_++;
        const int dist = 1 << k;
        const int n = topo_.size;
        const int dst = (topo_.rank + dist) % n;
        const int src = (topo_.rank - dist % n + n) % n;
        const auto ctag = tag(static_cast<std::uint32_t>(k));
        step_recv(src, ctag, [&] {
            return comm_.coll_irecv_bytes(&recv_token_, 1, src, ctag);
        });
        step_send(dst, ctag, [&] {
            return comm_.coll_isend_bytes(&send_token_, 1, dst, ctag);
        });
    }

    const int rounds_;
    int round_ = 0;
    std::byte send_token_{};
    std::byte recv_token_{};
};

// ---------------------------------------------------------------------------
// Bcast: one schedule (who do I receive from, who do I send to), two
// algorithms, any payload family. The payload posters are closures so the
// same machine serves raw bytes, derived datatypes and custom datatypes.

struct BcastSchedule {
    int recv_from = -1;     // -1: this rank starts with the data
    std::vector<int> sends; // forward to these ranks, in order
};

BcastSchedule flat_bcast_schedule(const TopologyMap& t, int root) {
    BcastSchedule s;
    const int vr = to_vrank(t.rank, root, t.size);
    if (vr != 0) s.recv_from = from_vrank(bin_parent(vr), root, t.size);
    for (const int kid : bin_children(vr, t.size))
        s.sends.push_back(from_vrank(kid, root, t.size));
    return s;
}

BcastSchedule hier_bcast_schedule(const TopologyMap& t, int root) {
    BcastSchedule s;
    const int r = t.rank;
    const int rb = t.node_of(root);
    if (t.is_leader(r)) {
        // Leaders run the inter-node binomial tree AND the intra-node
        // distribution — including when the leader IS the root (it simply
        // has no parent then).
        const int vb = to_vrank(t.node_of(r), rb, t.node_count);
        if (r != root) {
            s.recv_from = vb == 0
                              ? root // own-node leader fed directly by the root
                              : t.node_begin(from_vrank(bin_parent(vb), rb,
                                                        t.node_count));
        }
        // Inter-node subtrees first so deep paths start earliest.
        for (const int kid : bin_children(vb, t.node_count))
            s.sends.push_back(t.node_begin(from_vrank(kid, rb, t.node_count)));
        const int b = t.node_of(r);
        for (int m = t.node_begin(b); m < t.node_end(b); ++m)
            if (m != r && m != root) s.sends.push_back(m);
    } else if (r == root) {
        // Non-leader root: hand the payload to the node leader, which runs
        // the tree.
        s.sends.push_back(t.leader_of(root));
    } else {
        s.recv_from = t.leader_of(r);
    }
    return s;
}

class BcastOp final : public CollOp {
public:
    using Poster = std::function<Request(int peer, std::uint32_t ctag)>;

    BcastOp(Communicator& comm, int root, Count bytes_hint, Poster post_send,
            Poster post_recv)
        : CollOp(comm, Fam::bcast),
          bytes_hint_(bytes_hint),
          algo_(select_algo(topo_)),
          send_(std::move(post_send)),
          recv_(std::move(post_recv)),
          sched_(algo_ == Algo::hier ? hier_bcast_schedule(topo_, root)
                                     : flat_bcast_schedule(topo_, root)) {
        note_algo(algo_);
    }

private:
    void next_phase() override {
        // Phase 0: receive (skipped for ranks that start with the data);
        // phase 1: forward to everyone downstream at once; then done.
        if (phase_ == 0) {
            phase_ = 1;
            if (sched_.recv_from >= 0) {
                const int src = sched_.recv_from;
                step_recv(src, tag(0), [&] { return recv_(src, tag(0)); });
                return;
            }
            // Fall through to the send phase without a round trip.
        }
        if (phase_ == 1) {
            phase_ = 2;
            for (const int dst : sched_.sends) {
                if (algo_ == Algo::hier && topo_.cross_node(topo_.rank, dst))
                    coll_counters().leader_bytes.fetch_add(
                        static_cast<std::uint64_t>(bytes_hint_),
                        std::memory_order_relaxed);
                step_send(dst, tag(0), [&] { return send_(dst, tag(0)); });
            }
            if (!sched_.sends.empty()) return;
        }
        finish();
    }

    const Count bytes_hint_;
    const Algo algo_;
    const Poster send_;
    const Poster recv_;
    const BcastSchedule sched_;
    int phase_ = 0;
};

// ---------------------------------------------------------------------------
// Gather (raw bytes): rank i's n-byte block lands at byte offset i*n in
// the root's receive buffer. Flat: linear fan-in. Hierarchical: members
// send to their node leader, which forwards ONE aggregated node block to
// the root (nodes are contiguous rank ranges, so a node block is a
// contiguous slice of the final buffer).
class GatherBytesOp final : public CollOp {
public:
    GatherBytesOp(Communicator& comm, const void* send, Count n, void* recv,
                  int root)
        : CollOp(comm, Fam::gather),
          send_(send),
          recv_(recv),
          n_(n),
          root_(root),
          algo_(select_algo(topo_)) {
        note_algo(algo_);
    }

private:
    [[nodiscard]] std::byte* recv_at(Count byte_off) const noexcept {
        return static_cast<std::byte*>(recv_) + byte_off;
    }
    // The n == 0 guard: memcpy with a null/invalid pointer is UB even for
    // zero bytes (the historical root-side copy missed this).
    static void copy_block(void* dst, const void* src, Count n) noexcept {
        if (n > 0) std::memcpy(dst, src, static_cast<std::size_t>(n));
    }

    void next_phase() override {
        const int r = topo_.rank;
        if (phase_ == 0) {
            phase_ = 1;
            // n == 0: nothing to move — complete locally on every rank (n
            // is uniform across ranks by the collective contract, so no
            // rank posts a message). This is where the historical n == 0
            // memcpy UB lived; see copy_block.
            if (n_ == 0) {
                finish();
                return;
            }
            if (topo_.size == 1) {
                copy_block(recv_at(static_cast<Count>(r) * n_), send_, n_);
                finish();
                return;
            }
            if (algo_ == Algo::flat) {
                if (r == root_) {
                    for (int src = 0; src < topo_.size; ++src) {
                        if (src == r) continue;
                        step_recv(src, tag(0), [&] {
                            return comm_.coll_irecv_bytes(
                                recv_at(static_cast<Count>(src) * n_), n_, src,
                                tag(0));
                        });
                    }
                    copy_block(recv_at(static_cast<Count>(r) * n_), send_, n_);
                } else {
                    step_send(root_, tag(0), [&] {
                        return comm_.coll_isend_bytes(send_, n_, root_, tag(0));
                    });
                }
                return;
            }
            post_hier_phase0();
            return;
        }
        if (phase_ == 1) {
            phase_ = 2;
            // Hierarchical leaders forward their aggregated node block once
            // every member contribution arrived.
            if (algo_ == Algo::hier && topo_.is_leader(r) && r != root_) {
                const Count block = static_cast<Count>(stage_.size());
                if (topo_.cross_node(r, root_))
                    coll_counters().leader_bytes.fetch_add(
                        static_cast<std::uint64_t>(block),
                        std::memory_order_relaxed);
                step_send(root_, tag(1), [&] {
                    return comm_.coll_isend_bytes(stage_.data(), block, root_,
                                                  tag(1));
                });
                return;
            }
        }
        finish();
    }

    void post_hier_phase0() {
        const int r = topo_.rank;
        const int lead = topo_.leader_of(r);
        if (r == root_) {
            for (int b = 0; b < topo_.node_count; ++b) {
                const Count base = static_cast<Count>(topo_.node_begin(b)) * n_;
                const Count block = static_cast<Count>(topo_.node_size(b)) * n_;
                if (b != topo_.node_of(r)) {
                    // One aggregated block per remote node, from its leader.
                    const int leader = topo_.node_begin(b);
                    step_recv(leader, tag(1), [&] {
                        return comm_.coll_irecv_bytes(recv_at(base), block,
                                                      leader, tag(1));
                    });
                } else if (topo_.is_leader(r)) {
                    // Root doubles as its node's leader: members deliver
                    // straight into the final buffer.
                    for (int m = topo_.node_begin(b); m < topo_.node_end(b); ++m) {
                        if (m == r) continue;
                        step_recv(m, tag(0), [&] {
                            return comm_.coll_irecv_bytes(
                                recv_at(static_cast<Count>(m) * n_), n_, m,
                                tag(0));
                        });
                    }
                    copy_block(recv_at(static_cast<Count>(r) * n_), send_, n_);
                } else {
                    // Root is a plain member of its node: contribute through
                    // the leader and take the whole node block back from it.
                    step_send(lead, tag(0), [&] {
                        return comm_.coll_isend_bytes(send_, n_, lead, tag(0));
                    });
                    step_recv(lead, tag(1), [&] {
                        return comm_.coll_irecv_bytes(recv_at(base), block,
                                                      lead, tag(1));
                    });
                }
            }
            return;
        }
        if (topo_.is_leader(r)) {
            const int b = topo_.node_of(r);
            stage_.resize(
                static_cast<std::size_t>(topo_.node_size(b)) *
                static_cast<std::size_t>(n_));
            for (int m = topo_.node_begin(b); m < topo_.node_end(b); ++m) {
                const Count off =
                    static_cast<Count>(m - topo_.node_begin(b)) * n_;
                if (m == r) {
                    copy_block(stage_.data() + off, send_, n_);
                } else {
                    step_recv(m, tag(0), [&] {
                        return comm_.coll_irecv_bytes(stage_.data() + off, n_,
                                                      m, tag(0));
                    });
                }
            }
            return;
        }
        step_send(lead, tag(0), [&] {
            return comm_.coll_isend_bytes(send_, n_, lead, tag(0));
        });
    }

    const void* send_;
    void* recv_;
    const Count n_;
    const int root_;
    const Algo algo_;
    std::vector<std::byte> stage_; // leader aggregation buffer
    int phase_ = 0;
};

// ---------------------------------------------------------------------------
// Allreduce: binomial-tree reduce to a root + binomial broadcast back.
// Flat runs the tree over all ranks (rooted at rank 0); hierarchical
// reduces each node onto its leader, runs the same tree over leaders only
// (the inter-node plane carries node_count instead of size messages per
// sweep), then scatters the result inside each node.
template <typename T>
class AllreduceOp final : public CollOp {
public:
    // Reduce-tree subtags: flat rounds k use tag(k); leader rounds
    // tag(8 + k); broadcast tag(40); intra-node gather/scatter tags
    // 48/49. log2(kMaxWorldSize) == 16 < 24 keeps the planes disjoint.
    static constexpr std::uint32_t kLeaderRoundBase = 8;
    static constexpr std::uint32_t kBcastTag = 40;
    static constexpr std::uint32_t kNodeGatherTag = 48;
    static constexpr std::uint32_t kNodeScatterTag = 49;

    AllreduceOp(Communicator& comm, T* data, Count count, ReduceOp op)
        : CollOp(comm, Fam::allreduce),
          data_(data),
          count_(count),
          op_(op),
          algo_(select_algo(topo_)) {
        note_algo(algo_);
        if (algo_ == Algo::hier) {
            mode_ = topo_.is_leader(topo_.rank) ? Mode::node_gather
                                                : Mode::node_send;
        } else {
            mode_ = Mode::reduce;
        }
    }

private:
    enum class Mode {
        node_send,    // member: hand the local vector to the leader
        node_gather,  // leader: collect member vectors
        reduce,       // binomial reduce rounds (all ranks or leaders only)
        bcast_recv,   // wait for the reduced result
        bcast_send,   // forward the result down the binomial tree
        node_scatter, // leader: push the result to node members
        node_result,  // member: wait for the result
        finished,
    };

    void combine(T* dst, const T* src) const noexcept {
        for (Count i = 0; i < count_; ++i) {
            switch (op_) {
                case ReduceOp::sum: dst[i] += src[i]; break;
                case ReduceOp::min: dst[i] = std::min(dst[i], src[i]); break;
                case ReduceOp::max: dst[i] = std::max(dst[i], src[i]); break;
            }
        }
    }

    [[nodiscard]] Count bytes() const noexcept {
        return count_ * static_cast<Count>(sizeof(T));
    }

    // The rank's position and world inside the reduce/bcast tree: all
    // ranks in flat mode, the leader-index space in hier mode.
    [[nodiscard]] int tree_rank() const noexcept {
        return algo_ == Algo::hier ? topo_.node_of(topo_.rank) : topo_.rank;
    }
    [[nodiscard]] int tree_size() const noexcept {
        return algo_ == Algo::hier ? topo_.node_count : topo_.size;
    }
    [[nodiscard]] int tree_peer_rank(int tr) const noexcept {
        return algo_ == Algo::hier ? topo_.node_begin(tr) : tr;
    }
    [[nodiscard]] std::uint32_t round_tag(int k) const noexcept {
        return tag((algo_ == Algo::hier ? kLeaderRoundBase : 0) +
                   static_cast<std::uint32_t>(k));
    }

    void track_tree_send(int tr, std::uint32_t ctag) {
        const int peer = tree_peer_rank(tr);
        if (algo_ == Algo::hier && topo_.cross_node(topo_.rank, peer))
            coll_counters().leader_bytes.fetch_add(
                static_cast<std::uint64_t>(bytes()), std::memory_order_relaxed);
        step_send(peer, ctag, [&] {
            return comm_.coll_isend_bytes(data_, bytes(), peer, ctag);
        });
    }

    void next_phase() override {
        // Zero elements: complete locally on every rank (count is uniform,
        // so no rank posts a message and no zero-byte wire traffic flows).
        if (count_ == 0) {
            finish();
            return;
        }
        switch (mode_) {
            case Mode::node_send: {
                // Member: contribute, then wait for the reduced result.
                const int lead = topo_.leader_of(topo_.rank);
                step_send(lead, tag(kNodeGatherTag), [&] {
                    return comm_.coll_isend_bytes(data_, bytes(), lead,
                                                  tag(kNodeGatherTag));
                });
                mode_ = Mode::node_result;
                return;
            }
            case Mode::node_result: {
                const int lead = topo_.leader_of(topo_.rank);
                step_recv(lead, tag(kNodeScatterTag), [&] {
                    return comm_.coll_irecv_bytes(data_, bytes(), lead,
                                                  tag(kNodeScatterTag));
                });
                mode_ = Mode::finished;
                return;
            }
            case Mode::node_gather: {
                const int b = topo_.node_of(topo_.rank);
                const int members = topo_.node_size(b) - 1;
                if (members > 0) {
                    node_tmp_.resize(static_cast<std::size_t>(members) *
                                     static_cast<std::size_t>(count_));
                    Count off = 0;
                    for (int m = topo_.node_begin(b); m < topo_.node_end(b);
                         ++m) {
                        if (m == topo_.rank) continue;
                        T* dst = node_tmp_.data() + off;
                        step_recv(m, tag(kNodeGatherTag), [&] {
                            return comm_.coll_irecv_bytes(
                                dst, bytes(), m, tag(kNodeGatherTag));
                        });
                        off += count_;
                    }
                }
                mode_ = Mode::reduce;
                if (members > 0) return;
                [[fallthrough]];
            }
            case Mode::reduce: {
                if (!node_tmp_.empty()) {
                    // Member contributions just drained: fold them in.
                    for (std::size_t i = 0; i < node_tmp_.size();
                         i += static_cast<std::size_t>(count_))
                        combine(data_, node_tmp_.data() + i);
                    node_tmp_.clear();
                }
                if (combine_pending_) {
                    combine(data_, tmp_.data());
                    combine_pending_ = false;
                }
                const int tr = tree_rank();
                const int tn = tree_size();
                const int rounds = log2_rounds(tn);
                while (round_ < rounds) {
                    const int k = round_++;
                    const int bit = 1 << k;
                    if ((tr & bit) != 0) {
                        // Lower bits are zero (we would have left the
                        // reduction in an earlier round otherwise): hand the
                        // partial result up and switch to waiting for the
                        // broadcast.
                        track_tree_send(tr - bit, round_tag(k));
                        mode_ = Mode::bcast_recv;
                        return;
                    }
                    if (tr + bit < tn) {
                        tmp_.resize(static_cast<std::size_t>(count_));
                        const int peer = tree_peer_rank(tr + bit);
                        step_recv(peer, round_tag(k), [&] {
                            return comm_.coll_irecv_bytes(tmp_.data(), bytes(),
                                                          peer, round_tag(k));
                        });
                        combine_pending_ = true;
                        return;
                    }
                    // No partner this round (ragged world); keep going.
                }
                // Tree root: the reduction is complete, broadcast it back.
                mode_ = Mode::bcast_send;
                [[fallthrough]];
            }
            case Mode::bcast_recv:
            case Mode::bcast_send: {
                const int tr = tree_rank();
                if (mode_ == Mode::bcast_recv && !bcast_received_) {
                    bcast_received_ = true;
                    const int peer = tree_peer_rank(bin_parent(tr));
                    step_recv(peer, tag(kBcastTag), [&] {
                        return comm_.coll_irecv_bytes(data_, bytes(), peer,
                                                      tag(kBcastTag));
                    });
                    return;
                }
                for (const int kid : bin_children(tr, tree_size()))
                    track_tree_send(kid, tag(kBcastTag));
                mode_ = algo_ == Algo::hier ? Mode::node_scatter : Mode::finished;
                if (!done_sending_check_())
                    return;
                [[fallthrough]];
            }
            case Mode::node_scatter: {
                if (mode_ == Mode::node_scatter) {
                    const int b = topo_.node_of(topo_.rank);
                    for (int m = topo_.node_begin(b); m < topo_.node_end(b);
                         ++m) {
                        if (m == topo_.rank) continue;
                        step_send(m, tag(kNodeScatterTag), [&] {
                            return comm_.coll_isend_bytes(
                                data_, bytes(), m, tag(kNodeScatterTag));
                        });
                    }
                    mode_ = Mode::finished;
                    if (topo_.node_size(b) > 1) return;
                }
                [[fallthrough]];
            }
            case Mode::finished: finish(); return;
        }
    }

    // True when the bcast_send phase posted nothing (leaf rank) and the
    // fallthrough into the next stage should happen immediately.
    [[nodiscard]] bool done_sending_check_() const noexcept {
        return bin_children(tree_rank(), tree_size()).empty();
    }

    T* data_;
    const Count count_;
    const ReduceOp op_;
    const Algo algo_;
    Mode mode_;
    int round_ = 0;
    bool combine_pending_ = false;
    bool bcast_received_ = false;
    std::vector<T> tmp_;      // pairwise reduce partner buffer
    std::vector<T> node_tmp_; // leader: member contributions
};

Status validate_root(const Communicator& comm, int root) {
    if (!ok(comm.status())) return comm.status();
    if (root < 0 || root >= comm.size()) return Status::err_arg;
    return Status::success;
}

} // namespace

// ---------------------------------------------------------------------------
// Factories

CollRequest ibarrier(Communicator& comm) {
    if (!ok(comm.status())) return error_request(comm.status());
    return launch(comm, std::make_shared<BarrierOp>(comm));
}

CollRequest ibcast_bytes(Communicator& comm, void* buf, Count n, int root) {
    if (const Status st = validate_root(comm, root); !ok(st))
        return error_request(st);
    if (n < 0 || (n > 0 && buf == nullptr)) return error_request(Status::err_arg);
    // Zero bytes: immediately complete on every rank (n is uniform).
    if (n == 0) return error_request(Status::success);
    return launch(comm, std::make_shared<BcastOp>(
                            comm, root, n,
                            [&comm, buf, n](int peer, std::uint32_t ctag) {
                                return comm.coll_isend_bytes(buf, n, peer, ctag);
                            },
                            [&comm, buf, n](int peer, std::uint32_t ctag) {
                                return comm.coll_irecv_bytes(buf, n, peer, ctag);
                            }));
}

CollRequest ibcast(Communicator& comm, void* buf, Count count,
                   const dt::TypeRef& type, int root) {
    if (const Status st = validate_root(comm, root); !ok(st))
        return error_request(st);
    if (type == nullptr || count < 0) return error_request(Status::err_arg);
    if (!type->committed()) return error_request(Status::err_not_committed);
    const Count hint = type->size() * count;
    return launch(comm, std::make_shared<BcastOp>(
                            comm, root, hint,
                            [&comm, buf, count, type](int peer, std::uint32_t ctag) {
                                return comm.coll_isend(buf, count, type, peer, ctag);
                            },
                            [&comm, buf, count, type](int peer, std::uint32_t ctag) {
                                return comm.coll_irecv(buf, count, type, peer, ctag);
                            }));
}

CollRequest ibcast_custom(Communicator& comm, void* buf, Count count,
                          const core::CustomDatatype& type, int root) {
    if (const Status st = validate_root(comm, root); !ok(st))
        return error_request(st);
    if (count < 0) return error_request(Status::err_arg);
    // The packed size is not knowable here without running the sender's
    // query callback; hier accounting uses 0 (the ablation benches measure
    // byte-payload collectives).
    return launch(comm,
                  std::make_shared<BcastOp>(
                      comm, root, 0,
                      [&comm, buf, count, &type](int peer, std::uint32_t ctag) {
                          return comm.coll_isend_custom(buf, count, type, peer,
                                                        ctag);
                      },
                      [&comm, buf, count, &type](int peer, std::uint32_t ctag) {
                          return comm.coll_irecv_custom(buf, count, type, peer,
                                                        ctag);
                      }));
}

CollRequest igather_bytes(Communicator& comm, const void* send, Count n,
                          void* recv, int root) {
    if (const Status st = validate_root(comm, root); !ok(st))
        return error_request(st);
    if (n < 0 || (n > 0 && send == nullptr)) return error_request(Status::err_arg);
    if (comm.rank() == root && n > 0 && recv == nullptr)
        return error_request(Status::err_arg);
    return launch(comm, std::make_shared<GatherBytesOp>(comm, send, n, recv, root));
}

CollRequest iallreduce(Communicator& comm, double* data, Count count,
                       ReduceOp op) {
    if (!ok(comm.status())) return error_request(comm.status());
    if (count < 0 || (count > 0 && data == nullptr))
        return error_request(Status::err_arg);
    return launch(comm, std::make_shared<AllreduceOp<double>>(comm, data, count, op));
}

CollRequest iallreduce(Communicator& comm, std::int64_t* data, Count count,
                       ReduceOp op) {
    if (!ok(comm.status())) return error_request(comm.status());
    if (count < 0 || (count > 0 && data == nullptr))
        return error_request(Status::err_arg);
    return launch(comm,
                  std::make_shared<AllreduceOp<std::int64_t>>(comm, data, count, op));
}

} // namespace mpicd::p2p::coll
