#include "p2p/coll/vcoll.hpp"

#include <cstring>
#include <initializer_list>
#include <vector>

#include "base/trace.hpp"

namespace mpicd::p2p::coll {

namespace {

// Every blocking v-collective reserves one tag block, mirroring the
// nonblocking ops, so concurrent p2p traffic and later collectives can
// never alias its rounds. Subtags: 0 = data / member->leader, 1 =
// leader<->leader superblocks, 2 = leader->member result.
constexpr std::uint32_t kStride = 64;

[[nodiscard]] std::byte* at(void* base, Count off) noexcept {
    return static_cast<std::byte*>(base) + off;
}
[[nodiscard]] const std::byte* at(const void* base, Count off) noexcept {
    return static_cast<const std::byte*>(base) + off;
}

void copy_block(void* dst, const void* src, Count n) noexcept {
    if (n > 0) std::memcpy(dst, src, static_cast<std::size_t>(n));
}

[[nodiscard]] bool spans_cover(const Communicator& comm,
                               std::initializer_list<std::size_t> sizes) {
    for (const std::size_t s : sizes)
        if (s < static_cast<std::size_t>(comm.size())) return false;
    return true;
}

void note_op() { coll_counters().ops.fetch_add(1, std::memory_order_relaxed); }

// The blocking v-collectives are not CollOps, but they speak the same
// observability vocabulary (docs/OBSERVABILITY.md §collectives): the same
// (context << 32 | tag block) op id, the same coll.op_begin / coll.round /
// coll.step_send / coll.step_recv / coll.op_end instants, and the same
// coll/op_latency_ns_* / op_rounds_* histograms. OpScope is the per-call
// observer — destructor-based so an early error return still closes the
// op (record the final status via done()). Pure observer: msg ids and
// instants never touch the transport.
class OpScope {
public:
    OpScope(Communicator& comm, Fam fam, Algo algo, std::uint32_t base)
        : comm_(comm),
          fam_(fam),
          algo_(algo),
          op_id_((static_cast<std::uint64_t>(comm.context()) << 32) | base),
          begin_vtime_(comm.now()) {
        if (trace::enabled()) {
            trace::instant("coll", "op_begin", begin_vtime_, "op", op_id_,
                           "rank", static_cast<std::uint64_t>(comm.rank()),
                           "fam", static_cast<std::uint64_t>(fam_), "algo",
                           algo_ == Algo::hier ? 1 : 0);
        }
    }
    ~OpScope() {
        const SimTime now = comm_.now();
        auto& h = op_hists(fam_, algo_);
        const double lat_ns = (now - begin_vtime_) * 1000.0;
        h.latency_ns.record(lat_ns > 0.0 ? static_cast<std::uint64_t>(lat_ns)
                                         : 0);
        h.rounds.record(rounds_);
        if (trace::enabled()) {
            trace::instant("coll", "op_end", now, "op", op_id_, "rank",
                           static_cast<std::uint64_t>(comm_.rank()), "status",
                           static_cast<std::uint64_t>(status_), "rounds",
                           rounds_);
        }
    }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

    // Start of the next posting stage (one coll.round instant).
    void round() {
        if (trace::enabled()) {
            trace::instant("coll", "round", comm_.now(), "op", op_id_, "rank",
                           static_cast<std::uint64_t>(comm_.rank()), "round",
                           rounds_);
        }
        ++rounds_;
    }

    template <typename PostFn>
    Request send(int peer, std::uint32_t sub, PostFn&& post) {
        return step(true, peer, sub, static_cast<PostFn&&>(post));
    }
    template <typename PostFn>
    Request recv(int peer, std::uint32_t sub, PostFn&& post) {
        return step(false, peer, sub, static_cast<PostFn&&>(post));
    }

    // Record the op's final status; returns it unchanged so call sites
    // read `return tr.done(wait_all(...))`.
    Status done(Status st) noexcept {
        status_ = st;
        return st;
    }

private:
    template <typename PostFn>
    Request step(bool is_send, int peer, std::uint32_t sub, PostFn&& post) {
        if (!trace::enabled()) return post();
        const trace::MsgScope scope(trace::next_msg_id());
        trace::instant("coll", is_send ? "step_send" : "step_recv",
                       comm_.now(), "op", op_id_, "rank",
                       static_cast<std::uint64_t>(comm_.rank()), "peer",
                       static_cast<std::uint64_t>(peer), "sub", sub);
        return post();
    }

    Communicator& comm_;
    const Fam fam_;
    const Algo algo_;
    const std::uint64_t op_id_;
    const SimTime begin_vtime_;
    std::uint32_t rounds_ = 0;
    Status status_ = Status::success;
};

} // namespace

// ---------------------------------------------------------------------------
// Raw bytes

Status gatherv_bytes(Communicator& comm, const void* send, Count sendn,
                     void* recv, std::span<const Count> recvcounts,
                     std::span<const Count> displs, int root) {
    if (!ok(comm.status())) return comm.status();
    if (root < 0 || root >= comm.size() || sendn < 0) return Status::err_arg;
    if (sendn > 0 && send == nullptr) return Status::err_arg;
    const int n = comm.size(), r = comm.rank();
    if (r == root) {
        if (!spans_cover(comm, {recvcounts.size(), displs.size()}))
            return Status::err_arg;
        if (recvcounts[static_cast<std::size_t>(r)] != sendn)
            return Status::err_arg;
        for (int src = 0; src < n; ++src) {
            const Count c = recvcounts[static_cast<std::size_t>(src)];
            if (c < 0 || (c > 0 && recv == nullptr)) return Status::err_arg;
        }
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::gatherv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    if (r == root) {
        for (int src = 0; src < n; ++src) {
            const Count c = recvcounts[static_cast<std::size_t>(src)];
            if (c == 0) continue;
            if (src == r) {
                copy_block(at(recv, displs[static_cast<std::size_t>(src)]), send, c);
            } else {
                reqs.push_back(tr.recv(src, 0, [&] {
                    return comm.coll_irecv_bytes(
                        at(recv, displs[static_cast<std::size_t>(src)]), c, src,
                        base);
                }));
            }
        }
    } else if (sendn > 0) {
        reqs.push_back(tr.send(root, 0, [&] {
            return comm.coll_isend_bytes(send, sendn, root, base);
        }));
    }
    return tr.done(wait_all(std::span<Request>(reqs)));
}

namespace {

Status allgatherv_flat(Communicator& comm, const void* send, Count sendn,
                       void* recv, std::span<const Count> counts,
                       std::span<const Count> displs, std::uint32_t base,
                       OpScope& tr) {
    const int n = comm.size(), r = comm.rank();
    tr.round();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count c = counts[static_cast<std::size_t>(peer)];
        if (peer == r) {
            copy_block(at(recv, displs[static_cast<std::size_t>(peer)]), send, c);
            continue;
        }
        if (c > 0)
            reqs.push_back(tr.recv(peer, 0, [&] {
                return comm.coll_irecv_bytes(
                    at(recv, displs[static_cast<std::size_t>(peer)]), c, peer,
                    base);
            }));
        if (sendn > 0)
            reqs.push_back(tr.send(peer, 0, [&] {
                return comm.coll_isend_bytes(send, sendn, peer, base);
            }));
    }
    return wait_all(std::span<Request>(reqs));
}

// Hierarchical allgatherv: members hand their block to the node leader;
// leaders exchange ONE aggregated superblock per node pair on the
// inter-node plane (the packed layout orders blocks by rank, so each
// node's superblock is contiguous); leaders then push the full packed
// result to their members, who scatter it into their own displacements.
Status allgatherv_hier(Communicator& comm, const void* send, Count sendn,
                       void* recv, std::span<const Count> counts,
                       std::span<const Count> displs, std::uint32_t base,
                       const TopologyMap& topo, OpScope& tr) {
    const int n = comm.size(), r = comm.rank();
    // Packed offsets: rank i's block at packed[i]; node superblocks are
    // contiguous because nodes are contiguous rank ranges.
    std::vector<Count> packed(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i)
        packed[static_cast<std::size_t>(i) + 1] =
            packed[static_cast<std::size_t>(i)] + counts[static_cast<std::size_t>(i)];
    const Count total = packed[static_cast<std::size_t>(n)];

    const int lead = topo.leader_of(r);
    if (!topo.is_leader(r)) {
        // Member: contribute, then take the packed result and scatter it.
        {
            tr.round();
            std::vector<Request> reqs;
            if (sendn > 0)
                reqs.push_back(tr.send(lead, 0, [&] {
                    return comm.coll_isend_bytes(send, sendn, lead, base);
                }));
            MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
        }
        std::vector<std::byte> all(static_cast<std::size_t>(total));
        {
            tr.round();
            std::vector<Request> reqs;
            if (total > 0)
                reqs.push_back(tr.recv(lead, 2, [&] {
                    return comm.coll_irecv_bytes(all.data(), total, lead,
                                                 base + 2);
                }));
            MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
        }
        for (int i = 0; i < n; ++i)
            copy_block(at(recv, displs[static_cast<std::size_t>(i)]),
                       all.data() + packed[static_cast<std::size_t>(i)],
                       counts[static_cast<std::size_t>(i)]);
        return Status::success;
    }

    // Leader: assemble the packed buffer from the node's contributions.
    const int b = topo.node_of(r);
    std::vector<std::byte> all(static_cast<std::size_t>(total));
    {
        tr.round();
        std::vector<Request> reqs;
        for (int m = topo.node_begin(b); m < topo.node_end(b); ++m) {
            const Count c = counts[static_cast<std::size_t>(m)];
            if (m == r) {
                copy_block(all.data() + packed[static_cast<std::size_t>(m)], send, c);
            } else if (c > 0) {
                reqs.push_back(tr.recv(m, 0, [&] {
                    return comm.coll_irecv_bytes(
                        all.data() + packed[static_cast<std::size_t>(m)], c, m,
                        base);
                }));
            }
        }
        MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
    }
    {
        // Superblock exchange with every other leader (inter-node plane).
        tr.round();
        const Count own_off = packed[static_cast<std::size_t>(topo.node_begin(b))];
        const Count own_len =
            packed[static_cast<std::size_t>(topo.node_end(b))] - own_off;
        std::vector<Request> reqs;
        for (int bb = 0; bb < topo.node_count; ++bb) {
            if (bb == b) continue;
            const int peer = topo.node_begin(bb);
            const Count off = packed[static_cast<std::size_t>(topo.node_begin(bb))];
            const Count len =
                packed[static_cast<std::size_t>(topo.node_end(bb))] - off;
            if (len > 0)
                reqs.push_back(tr.recv(peer, 1, [&] {
                    return comm.coll_irecv_bytes(all.data() + off, len, peer,
                                                 base + 1);
                }));
            if (own_len > 0) {
                coll_counters().leader_bytes.fetch_add(
                    static_cast<std::uint64_t>(own_len), std::memory_order_relaxed);
                reqs.push_back(tr.send(peer, 1, [&] {
                    return comm.coll_isend_bytes(all.data() + own_off, own_len,
                                                 peer, base + 1);
                }));
            }
        }
        MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
    }
    {
        // Push the packed result to the node's members.
        tr.round();
        std::vector<Request> reqs;
        for (int m = topo.node_begin(b); m < topo.node_end(b); ++m) {
            if (m == r || total == 0) continue;
            reqs.push_back(tr.send(m, 2, [&] {
                return comm.coll_isend_bytes(all.data(), total, m, base + 2);
            }));
        }
        MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
    }
    for (int i = 0; i < n; ++i)
        copy_block(at(recv, displs[static_cast<std::size_t>(i)]),
                   all.data() + packed[static_cast<std::size_t>(i)],
                   counts[static_cast<std::size_t>(i)]);
    return Status::success;
}

} // namespace

Status allgatherv_bytes(Communicator& comm, const void* send, Count sendn,
                        void* recv, std::span<const Count> counts,
                        std::span<const Count> displs) {
    if (!ok(comm.status())) return comm.status();
    if (!spans_cover(comm, {counts.size(), displs.size()})) return Status::err_arg;
    if (sendn < 0 || (sendn > 0 && send == nullptr)) return Status::err_arg;
    if (counts[static_cast<std::size_t>(comm.rank())] != sendn)
        return Status::err_arg;
    for (int i = 0; i < comm.size(); ++i) {
        const Count c = counts[static_cast<std::size_t>(i)];
        if (c < 0 || (c > 0 && recv == nullptr)) return Status::err_arg;
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    const TopologyMap topo = TopologyMap::create(comm);
    const Algo algo = select_algo(topo);
    OpScope tr(comm, Fam::allgatherv, algo, base);
    if (algo == Algo::hier)
        return tr.done(allgatherv_hier(comm, send, sendn, recv, counts, displs,
                                       base, topo, tr));
    return tr.done(
        allgatherv_flat(comm, send, sendn, recv, counts, displs, base, tr));
}

Status alltoallv_bytes(Communicator& comm, const void* send,
                       std::span<const Count> sendcounts,
                       std::span<const Count> sdispls, void* recv,
                       std::span<const Count> recvcounts,
                       std::span<const Count> rdispls) {
    if (!ok(comm.status())) return comm.status();
    if (!spans_cover(comm, {sendcounts.size(), sdispls.size(), recvcounts.size(),
                            rdispls.size()}))
        return Status::err_arg;
    const int n = comm.size(), r = comm.rank();
    for (int peer = 0; peer < n; ++peer) {
        const Count sc = sendcounts[static_cast<std::size_t>(peer)];
        const Count rc = recvcounts[static_cast<std::size_t>(peer)];
        if (sc < 0 || rc < 0) return Status::err_arg;
        if (sc > 0 && send == nullptr) return Status::err_arg;
        if (rc > 0 && recv == nullptr) return Status::err_arg;
    }
    if (sendcounts[static_cast<std::size_t>(r)] !=
        recvcounts[static_cast<std::size_t>(r)])
        return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::alltoallv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count sc = sendcounts[static_cast<std::size_t>(peer)];
        const Count rc = recvcounts[static_cast<std::size_t>(peer)];
        if (peer == r) {
            copy_block(at(recv, rdispls[static_cast<std::size_t>(peer)]),
                       at(send, sdispls[static_cast<std::size_t>(peer)]), sc);
            continue;
        }
        if (rc > 0)
            reqs.push_back(tr.recv(peer, 0, [&] {
                return comm.coll_irecv_bytes(
                    at(recv, rdispls[static_cast<std::size_t>(peer)]), rc, peer,
                    base);
            }));
        if (sc > 0)
            reqs.push_back(tr.send(peer, 0, [&] {
                return comm.coll_isend_bytes(
                    at(send, sdispls[static_cast<std::size_t>(peer)]), sc, peer,
                    base);
            }));
    }
    return tr.done(wait_all(std::span<Request>(reqs)));
}

// ---------------------------------------------------------------------------
// Derived datatypes

Status gatherv(Communicator& comm, const void* send, Count sendcount,
               const dt::TypeRef& sendtype, void* recv,
               std::span<const Count> recvcounts, std::span<const Count> displs,
               const dt::TypeRef& recvtype, int root) {
    if (!ok(comm.status())) return comm.status();
    if (root < 0 || root >= comm.size() || sendcount < 0) return Status::err_arg;
    if (sendtype == nullptr) return Status::err_arg;
    if (!sendtype->committed()) return Status::err_not_committed;
    const int n = comm.size(), r = comm.rank();
    if (r == root) {
        if (recvtype == nullptr) return Status::err_arg;
        if (!recvtype->committed()) return Status::err_not_committed;
        if (!spans_cover(comm, {recvcounts.size(), displs.size()}))
            return Status::err_arg;
        for (int src = 0; src < n; ++src)
            if (recvcounts[static_cast<std::size_t>(src)] < 0)
                return Status::err_arg;
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::gatherv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    if (r == root) {
        for (int src = 0; src < n; ++src) {
            const Count c = recvcounts[static_cast<std::size_t>(src)];
            if (c == 0) continue;
            void* dst = at(recv, displs[static_cast<std::size_t>(src)] *
                                     recvtype->extent());
            // Typed self-delivery goes through the loopback link so the
            // send/receive type pair is honored like any other rank's.
            reqs.push_back(tr.recv(src, 0, [&] {
                return comm.coll_irecv(dst, c, recvtype, src, base);
            }));
        }
        if (sendcount > 0)
            reqs.push_back(tr.send(r, 0, [&] {
                return comm.coll_isend(send, sendcount, sendtype, r, base);
            }));
    } else if (sendcount > 0) {
        reqs.push_back(tr.send(root, 0, [&] {
            return comm.coll_isend(send, sendcount, sendtype, root, base);
        }));
    }
    return tr.done(wait_all(std::span<Request>(reqs)));
}

Status allgatherv(Communicator& comm, const void* send, Count sendcount,
                  const dt::TypeRef& sendtype, void* recv,
                  std::span<const Count> recvcounts, std::span<const Count> displs,
                  const dt::TypeRef& recvtype) {
    if (!ok(comm.status())) return comm.status();
    if (sendtype == nullptr || recvtype == nullptr || sendcount < 0)
        return Status::err_arg;
    if (!sendtype->committed() || !recvtype->committed())
        return Status::err_not_committed;
    if (!spans_cover(comm, {recvcounts.size(), displs.size()}))
        return Status::err_arg;
    const int n = comm.size();
    for (int i = 0; i < n; ++i)
        if (recvcounts[static_cast<std::size_t>(i)] < 0) return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::allgatherv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count c = recvcounts[static_cast<std::size_t>(peer)];
        if (c > 0) {
            void* dst = at(recv, displs[static_cast<std::size_t>(peer)] *
                                     recvtype->extent());
            reqs.push_back(tr.recv(peer, 0, [&] {
                return comm.coll_irecv(dst, c, recvtype, peer, base);
            }));
        }
        if (sendcount > 0)
            reqs.push_back(tr.send(peer, 0, [&] {
                return comm.coll_isend(send, sendcount, sendtype, peer, base);
            }));
    }
    return tr.done(wait_all(std::span<Request>(reqs)));
}

Status alltoallv(Communicator& comm, const void* send,
                 std::span<const Count> sendcounts, std::span<const Count> sdispls,
                 const dt::TypeRef& sendtype, void* recv,
                 std::span<const Count> recvcounts, std::span<const Count> rdispls,
                 const dt::TypeRef& recvtype) {
    if (!ok(comm.status())) return comm.status();
    if (sendtype == nullptr || recvtype == nullptr) return Status::err_arg;
    if (!sendtype->committed() || !recvtype->committed())
        return Status::err_not_committed;
    if (!spans_cover(comm, {sendcounts.size(), sdispls.size(), recvcounts.size(),
                            rdispls.size()}))
        return Status::err_arg;
    const int n = comm.size();
    for (int i = 0; i < n; ++i)
        if (sendcounts[static_cast<std::size_t>(i)] < 0 ||
            recvcounts[static_cast<std::size_t>(i)] < 0)
            return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::alltoallv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count sc = sendcounts[static_cast<std::size_t>(peer)];
        const Count rc = recvcounts[static_cast<std::size_t>(peer)];
        if (rc > 0) {
            void* dst = at(recv, rdispls[static_cast<std::size_t>(peer)] *
                                     recvtype->extent());
            reqs.push_back(tr.recv(peer, 0, [&] {
                return comm.coll_irecv(dst, rc, recvtype, peer, base);
            }));
        }
        if (sc > 0) {
            const void* src = at(send, sdispls[static_cast<std::size_t>(peer)] *
                                           sendtype->extent());
            reqs.push_back(tr.send(peer, 0, [&] {
                return comm.coll_isend(src, sc, sendtype, peer, base);
            }));
        }
    }
    return tr.done(wait_all(std::span<Request>(reqs)));
}

// ---------------------------------------------------------------------------
// Custom datatypes (object granularity; receiver-side §VI size contract)

Status gatherv_custom(Communicator& comm, const void* send,
                      const core::CustomDatatype& type,
                      std::span<void* const> recv, int root) {
    if (!ok(comm.status())) return comm.status();
    if (root < 0 || root >= comm.size() || send == nullptr) return Status::err_arg;
    const int n = comm.size(), r = comm.rank();
    if (r == root) {
        if (recv.size() < static_cast<std::size_t>(n)) return Status::err_arg;
        for (int src = 0; src < n; ++src)
            if (recv[static_cast<std::size_t>(src)] == nullptr)
                return Status::err_arg;
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::gatherv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    if (r == root) {
        for (int src = 0; src < n; ++src)
            reqs.push_back(tr.recv(src, 0, [&] {
                return comm.coll_irecv_custom(
                    recv[static_cast<std::size_t>(src)], 1, type, src, base);
            }));
    }
    // Every rank — including the root, via the loopback link, so the
    // pack/unpack callbacks run for its own object too — contributes one
    // object.
    reqs.push_back(tr.send(root, 0, [&] {
        return comm.coll_isend_custom(send, 1, type, root, base);
    }));
    return tr.done(wait_all(std::span<Request>(reqs)));
}

Status allgatherv_custom(Communicator& comm, const void* send,
                         const core::CustomDatatype& type,
                         std::span<void* const> recv) {
    if (!ok(comm.status())) return comm.status();
    if (send == nullptr) return Status::err_arg;
    const int n = comm.size();
    if (recv.size() < static_cast<std::size_t>(n)) return Status::err_arg;
    for (int peer = 0; peer < n; ++peer)
        if (recv[static_cast<std::size_t>(peer)] == nullptr)
            return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::allgatherv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        reqs.push_back(tr.recv(peer, 0, [&] {
            return comm.coll_irecv_custom(recv[static_cast<std::size_t>(peer)],
                                          1, type, peer, base);
        }));
        reqs.push_back(tr.send(peer, 0, [&] {
            return comm.coll_isend_custom(send, 1, type, peer, base);
        }));
    }
    return tr.done(wait_all(std::span<Request>(reqs)));
}

Status alltoallv_custom(Communicator& comm, std::span<const void* const> send,
                        std::span<void* const> recv,
                        const core::CustomDatatype& type) {
    if (!ok(comm.status())) return comm.status();
    const int n = comm.size();
    if (send.size() < static_cast<std::size_t>(n) ||
        recv.size() < static_cast<std::size_t>(n))
        return Status::err_arg;
    for (int peer = 0; peer < n; ++peer)
        if (send[static_cast<std::size_t>(peer)] == nullptr ||
            recv[static_cast<std::size_t>(peer)] == nullptr)
            return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    OpScope tr(comm, Fam::alltoallv, Algo::flat, base);
    tr.round();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        reqs.push_back(tr.recv(peer, 0, [&] {
            return comm.coll_irecv_custom(recv[static_cast<std::size_t>(peer)],
                                          1, type, peer, base);
        }));
        reqs.push_back(tr.send(peer, 0, [&] {
            return comm.coll_isend_custom(
                send[static_cast<std::size_t>(peer)], 1, type, peer, base);
        }));
    }
    return tr.done(wait_all(std::span<Request>(reqs)));
}

} // namespace mpicd::p2p::coll
