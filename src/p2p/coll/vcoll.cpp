#include "p2p/coll/vcoll.hpp"

#include <cstring>
#include <initializer_list>
#include <vector>

namespace mpicd::p2p::coll {

namespace {

// Every blocking v-collective reserves one tag block, mirroring the
// nonblocking ops, so concurrent p2p traffic and later collectives can
// never alias its rounds. Subtags: 0 = data / member->leader, 1 =
// leader<->leader superblocks, 2 = leader->member result.
constexpr std::uint32_t kStride = 64;

[[nodiscard]] std::byte* at(void* base, Count off) noexcept {
    return static_cast<std::byte*>(base) + off;
}
[[nodiscard]] const std::byte* at(const void* base, Count off) noexcept {
    return static_cast<const std::byte*>(base) + off;
}

void copy_block(void* dst, const void* src, Count n) noexcept {
    if (n > 0) std::memcpy(dst, src, static_cast<std::size_t>(n));
}

[[nodiscard]] bool spans_cover(const Communicator& comm,
                               std::initializer_list<std::size_t> sizes) {
    for (const std::size_t s : sizes)
        if (s < static_cast<std::size_t>(comm.size())) return false;
    return true;
}

void note_op() { coll_counters().ops.fetch_add(1, std::memory_order_relaxed); }

} // namespace

// ---------------------------------------------------------------------------
// Raw bytes

Status gatherv_bytes(Communicator& comm, const void* send, Count sendn,
                     void* recv, std::span<const Count> recvcounts,
                     std::span<const Count> displs, int root) {
    if (!ok(comm.status())) return comm.status();
    if (root < 0 || root >= comm.size() || sendn < 0) return Status::err_arg;
    if (sendn > 0 && send == nullptr) return Status::err_arg;
    const int n = comm.size(), r = comm.rank();
    if (r == root) {
        if (!spans_cover(comm, {recvcounts.size(), displs.size()}))
            return Status::err_arg;
        if (recvcounts[static_cast<std::size_t>(r)] != sendn)
            return Status::err_arg;
        for (int src = 0; src < n; ++src) {
            const Count c = recvcounts[static_cast<std::size_t>(src)];
            if (c < 0 || (c > 0 && recv == nullptr)) return Status::err_arg;
        }
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    if (r == root) {
        for (int src = 0; src < n; ++src) {
            const Count c = recvcounts[static_cast<std::size_t>(src)];
            if (c == 0) continue;
            if (src == r) {
                copy_block(at(recv, displs[static_cast<std::size_t>(src)]), send, c);
            } else {
                reqs.push_back(comm.coll_irecv_bytes(
                    at(recv, displs[static_cast<std::size_t>(src)]), c, src, base));
            }
        }
    } else if (sendn > 0) {
        reqs.push_back(comm.coll_isend_bytes(send, sendn, root, base));
    }
    return wait_all(std::span<Request>(reqs));
}

namespace {

Status allgatherv_flat(Communicator& comm, const void* send, Count sendn,
                       void* recv, std::span<const Count> counts,
                       std::span<const Count> displs, std::uint32_t base) {
    const int n = comm.size(), r = comm.rank();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count c = counts[static_cast<std::size_t>(peer)];
        if (peer == r) {
            copy_block(at(recv, displs[static_cast<std::size_t>(peer)]), send, c);
            continue;
        }
        if (c > 0)
            reqs.push_back(comm.coll_irecv_bytes(
                at(recv, displs[static_cast<std::size_t>(peer)]), c, peer, base));
        if (sendn > 0)
            reqs.push_back(comm.coll_isend_bytes(send, sendn, peer, base));
    }
    return wait_all(std::span<Request>(reqs));
}

// Hierarchical allgatherv: members hand their block to the node leader;
// leaders exchange ONE aggregated superblock per node pair on the
// inter-node plane (the packed layout orders blocks by rank, so each
// node's superblock is contiguous); leaders then push the full packed
// result to their members, who scatter it into their own displacements.
Status allgatherv_hier(Communicator& comm, const void* send, Count sendn,
                       void* recv, std::span<const Count> counts,
                       std::span<const Count> displs, std::uint32_t base,
                       const TopologyMap& topo) {
    const int n = comm.size(), r = comm.rank();
    // Packed offsets: rank i's block at packed[i]; node superblocks are
    // contiguous because nodes are contiguous rank ranges.
    std::vector<Count> packed(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i)
        packed[static_cast<std::size_t>(i) + 1] =
            packed[static_cast<std::size_t>(i)] + counts[static_cast<std::size_t>(i)];
    const Count total = packed[static_cast<std::size_t>(n)];

    const int lead = topo.leader_of(r);
    if (!topo.is_leader(r)) {
        // Member: contribute, then take the packed result and scatter it.
        {
            std::vector<Request> reqs;
            if (sendn > 0)
                reqs.push_back(comm.coll_isend_bytes(send, sendn, lead, base));
            MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
        }
        std::vector<std::byte> all(static_cast<std::size_t>(total));
        {
            std::vector<Request> reqs;
            if (total > 0)
                reqs.push_back(
                    comm.coll_irecv_bytes(all.data(), total, lead, base + 2));
            MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
        }
        for (int i = 0; i < n; ++i)
            copy_block(at(recv, displs[static_cast<std::size_t>(i)]),
                       all.data() + packed[static_cast<std::size_t>(i)],
                       counts[static_cast<std::size_t>(i)]);
        return Status::success;
    }

    // Leader: assemble the packed buffer from the node's contributions.
    const int b = topo.node_of(r);
    std::vector<std::byte> all(static_cast<std::size_t>(total));
    {
        std::vector<Request> reqs;
        for (int m = topo.node_begin(b); m < topo.node_end(b); ++m) {
            const Count c = counts[static_cast<std::size_t>(m)];
            if (m == r) {
                copy_block(all.data() + packed[static_cast<std::size_t>(m)], send, c);
            } else if (c > 0) {
                reqs.push_back(comm.coll_irecv_bytes(
                    all.data() + packed[static_cast<std::size_t>(m)], c, m, base));
            }
        }
        MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
    }
    {
        // Superblock exchange with every other leader (inter-node plane).
        const Count own_off = packed[static_cast<std::size_t>(topo.node_begin(b))];
        const Count own_len =
            packed[static_cast<std::size_t>(topo.node_end(b))] - own_off;
        std::vector<Request> reqs;
        for (int bb = 0; bb < topo.node_count; ++bb) {
            if (bb == b) continue;
            const int peer = topo.node_begin(bb);
            const Count off = packed[static_cast<std::size_t>(topo.node_begin(bb))];
            const Count len =
                packed[static_cast<std::size_t>(topo.node_end(bb))] - off;
            if (len > 0)
                reqs.push_back(
                    comm.coll_irecv_bytes(all.data() + off, len, peer, base + 1));
            if (own_len > 0) {
                coll_counters().leader_bytes.fetch_add(
                    static_cast<std::uint64_t>(own_len), std::memory_order_relaxed);
                reqs.push_back(comm.coll_isend_bytes(all.data() + own_off, own_len,
                                                     peer, base + 1));
            }
        }
        MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
    }
    {
        // Push the packed result to the node's members.
        std::vector<Request> reqs;
        for (int m = topo.node_begin(b); m < topo.node_end(b); ++m) {
            if (m == r || total == 0) continue;
            reqs.push_back(comm.coll_isend_bytes(all.data(), total, m, base + 2));
        }
        MPICD_RETURN_IF_ERROR(wait_all(std::span<Request>(reqs)));
    }
    for (int i = 0; i < n; ++i)
        copy_block(at(recv, displs[static_cast<std::size_t>(i)]),
                   all.data() + packed[static_cast<std::size_t>(i)],
                   counts[static_cast<std::size_t>(i)]);
    return Status::success;
}

} // namespace

Status allgatherv_bytes(Communicator& comm, const void* send, Count sendn,
                        void* recv, std::span<const Count> counts,
                        std::span<const Count> displs) {
    if (!ok(comm.status())) return comm.status();
    if (!spans_cover(comm, {counts.size(), displs.size()})) return Status::err_arg;
    if (sendn < 0 || (sendn > 0 && send == nullptr)) return Status::err_arg;
    if (counts[static_cast<std::size_t>(comm.rank())] != sendn)
        return Status::err_arg;
    for (int i = 0; i < comm.size(); ++i) {
        const Count c = counts[static_cast<std::size_t>(i)];
        if (c < 0 || (c > 0 && recv == nullptr)) return Status::err_arg;
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    const TopologyMap topo = TopologyMap::create(comm);
    if (select_algo(topo) == Algo::hier)
        return allgatherv_hier(comm, send, sendn, recv, counts, displs, base, topo);
    return allgatherv_flat(comm, send, sendn, recv, counts, displs, base);
}

Status alltoallv_bytes(Communicator& comm, const void* send,
                       std::span<const Count> sendcounts,
                       std::span<const Count> sdispls, void* recv,
                       std::span<const Count> recvcounts,
                       std::span<const Count> rdispls) {
    if (!ok(comm.status())) return comm.status();
    if (!spans_cover(comm, {sendcounts.size(), sdispls.size(), recvcounts.size(),
                            rdispls.size()}))
        return Status::err_arg;
    const int n = comm.size(), r = comm.rank();
    for (int peer = 0; peer < n; ++peer) {
        const Count sc = sendcounts[static_cast<std::size_t>(peer)];
        const Count rc = recvcounts[static_cast<std::size_t>(peer)];
        if (sc < 0 || rc < 0) return Status::err_arg;
        if (sc > 0 && send == nullptr) return Status::err_arg;
        if (rc > 0 && recv == nullptr) return Status::err_arg;
    }
    if (sendcounts[static_cast<std::size_t>(r)] !=
        recvcounts[static_cast<std::size_t>(r)])
        return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count sc = sendcounts[static_cast<std::size_t>(peer)];
        const Count rc = recvcounts[static_cast<std::size_t>(peer)];
        if (peer == r) {
            copy_block(at(recv, rdispls[static_cast<std::size_t>(peer)]),
                       at(send, sdispls[static_cast<std::size_t>(peer)]), sc);
            continue;
        }
        if (rc > 0)
            reqs.push_back(comm.coll_irecv_bytes(
                at(recv, rdispls[static_cast<std::size_t>(peer)]), rc, peer, base));
        if (sc > 0)
            reqs.push_back(comm.coll_isend_bytes(
                at(send, sdispls[static_cast<std::size_t>(peer)]), sc, peer, base));
    }
    return wait_all(std::span<Request>(reqs));
}

// ---------------------------------------------------------------------------
// Derived datatypes

Status gatherv(Communicator& comm, const void* send, Count sendcount,
               const dt::TypeRef& sendtype, void* recv,
               std::span<const Count> recvcounts, std::span<const Count> displs,
               const dt::TypeRef& recvtype, int root) {
    if (!ok(comm.status())) return comm.status();
    if (root < 0 || root >= comm.size() || sendcount < 0) return Status::err_arg;
    if (sendtype == nullptr) return Status::err_arg;
    if (!sendtype->committed()) return Status::err_not_committed;
    const int n = comm.size(), r = comm.rank();
    if (r == root) {
        if (recvtype == nullptr) return Status::err_arg;
        if (!recvtype->committed()) return Status::err_not_committed;
        if (!spans_cover(comm, {recvcounts.size(), displs.size()}))
            return Status::err_arg;
        for (int src = 0; src < n; ++src)
            if (recvcounts[static_cast<std::size_t>(src)] < 0)
                return Status::err_arg;
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    if (r == root) {
        for (int src = 0; src < n; ++src) {
            const Count c = recvcounts[static_cast<std::size_t>(src)];
            if (c == 0) continue;
            void* dst = at(recv, displs[static_cast<std::size_t>(src)] *
                                     recvtype->extent());
            // Typed self-delivery goes through the loopback link so the
            // send/receive type pair is honored like any other rank's.
            reqs.push_back(comm.coll_irecv(dst, c, recvtype, src, base));
        }
        if (sendcount > 0)
            reqs.push_back(comm.coll_isend(send, sendcount, sendtype, r, base));
    } else if (sendcount > 0) {
        reqs.push_back(comm.coll_isend(send, sendcount, sendtype, root, base));
    }
    return wait_all(std::span<Request>(reqs));
}

Status allgatherv(Communicator& comm, const void* send, Count sendcount,
                  const dt::TypeRef& sendtype, void* recv,
                  std::span<const Count> recvcounts, std::span<const Count> displs,
                  const dt::TypeRef& recvtype) {
    if (!ok(comm.status())) return comm.status();
    if (sendtype == nullptr || recvtype == nullptr || sendcount < 0)
        return Status::err_arg;
    if (!sendtype->committed() || !recvtype->committed())
        return Status::err_not_committed;
    if (!spans_cover(comm, {recvcounts.size(), displs.size()}))
        return Status::err_arg;
    const int n = comm.size();
    for (int i = 0; i < n; ++i)
        if (recvcounts[static_cast<std::size_t>(i)] < 0) return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count c = recvcounts[static_cast<std::size_t>(peer)];
        if (c > 0) {
            void* dst = at(recv, displs[static_cast<std::size_t>(peer)] *
                                     recvtype->extent());
            reqs.push_back(comm.coll_irecv(dst, c, recvtype, peer, base));
        }
        if (sendcount > 0)
            reqs.push_back(comm.coll_isend(send, sendcount, sendtype, peer, base));
    }
    return wait_all(std::span<Request>(reqs));
}

Status alltoallv(Communicator& comm, const void* send,
                 std::span<const Count> sendcounts, std::span<const Count> sdispls,
                 const dt::TypeRef& sendtype, void* recv,
                 std::span<const Count> recvcounts, std::span<const Count> rdispls,
                 const dt::TypeRef& recvtype) {
    if (!ok(comm.status())) return comm.status();
    if (sendtype == nullptr || recvtype == nullptr) return Status::err_arg;
    if (!sendtype->committed() || !recvtype->committed())
        return Status::err_not_committed;
    if (!spans_cover(comm, {sendcounts.size(), sdispls.size(), recvcounts.size(),
                            rdispls.size()}))
        return Status::err_arg;
    const int n = comm.size();
    for (int i = 0; i < n; ++i)
        if (sendcounts[static_cast<std::size_t>(i)] < 0 ||
            recvcounts[static_cast<std::size_t>(i)] < 0)
            return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        const Count sc = sendcounts[static_cast<std::size_t>(peer)];
        const Count rc = recvcounts[static_cast<std::size_t>(peer)];
        if (rc > 0) {
            void* dst = at(recv, rdispls[static_cast<std::size_t>(peer)] *
                                     recvtype->extent());
            reqs.push_back(comm.coll_irecv(dst, rc, recvtype, peer, base));
        }
        if (sc > 0) {
            const void* src = at(send, sdispls[static_cast<std::size_t>(peer)] *
                                           sendtype->extent());
            reqs.push_back(comm.coll_isend(src, sc, sendtype, peer, base));
        }
    }
    return wait_all(std::span<Request>(reqs));
}

// ---------------------------------------------------------------------------
// Custom datatypes (object granularity; receiver-side §VI size contract)

Status gatherv_custom(Communicator& comm, const void* send,
                      const core::CustomDatatype& type,
                      std::span<void* const> recv, int root) {
    if (!ok(comm.status())) return comm.status();
    if (root < 0 || root >= comm.size() || send == nullptr) return Status::err_arg;
    const int n = comm.size(), r = comm.rank();
    if (r == root) {
        if (recv.size() < static_cast<std::size_t>(n)) return Status::err_arg;
        for (int src = 0; src < n; ++src)
            if (recv[static_cast<std::size_t>(src)] == nullptr)
                return Status::err_arg;
    }
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    if (r == root) {
        for (int src = 0; src < n; ++src)
            reqs.push_back(comm.coll_irecv_custom(
                recv[static_cast<std::size_t>(src)], 1, type, src, base));
    }
    // Every rank — including the root, via the loopback link, so the
    // pack/unpack callbacks run for its own object too — contributes one
    // object.
    reqs.push_back(comm.coll_isend_custom(send, 1, type, root, base));
    return wait_all(std::span<Request>(reqs));
}

Status allgatherv_custom(Communicator& comm, const void* send,
                         const core::CustomDatatype& type,
                         std::span<void* const> recv) {
    if (!ok(comm.status())) return comm.status();
    if (send == nullptr) return Status::err_arg;
    const int n = comm.size();
    if (recv.size() < static_cast<std::size_t>(n)) return Status::err_arg;
    for (int peer = 0; peer < n; ++peer)
        if (recv[static_cast<std::size_t>(peer)] == nullptr)
            return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        reqs.push_back(comm.coll_irecv_custom(recv[static_cast<std::size_t>(peer)],
                                              1, type, peer, base));
        reqs.push_back(comm.coll_isend_custom(send, 1, type, peer, base));
    }
    return wait_all(std::span<Request>(reqs));
}

Status alltoallv_custom(Communicator& comm, std::span<const void* const> send,
                        std::span<void* const> recv,
                        const core::CustomDatatype& type) {
    if (!ok(comm.status())) return comm.status();
    const int n = comm.size();
    if (send.size() < static_cast<std::size_t>(n) ||
        recv.size() < static_cast<std::size_t>(n))
        return Status::err_arg;
    for (int peer = 0; peer < n; ++peer)
        if (send[static_cast<std::size_t>(peer)] == nullptr ||
            recv[static_cast<std::size_t>(peer)] == nullptr)
            return Status::err_arg;
    const auto base = comm.coll_reserve_tags(kStride);
    note_op();
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
        reqs.push_back(comm.coll_irecv_custom(recv[static_cast<std::size_t>(peer)],
                                              1, type, peer, base));
        reqs.push_back(comm.coll_isend_custom(
            send[static_cast<std::size_t>(peer)], 1, type, peer, base));
    }
    return wait_all(std::span<Request>(reqs));
}

} // namespace mpicd::p2p::coll
