#include "p2p/coll/request.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "base/flight_recorder.hpp"
#include "base/log.hpp"
#include "p2p/universe.hpp"

namespace mpicd::p2p::coll {

namespace {

// Live-op registry backing the flight-recorder "coll.ops" source: when a
// transport failure (or a collective watchdog) triggers a dump, the table
// of in-flight collectives with per-peer progress is the context that
// tells a stuck barrier round apart from a lost allreduce fragment.
// Leaked, like the trace/metrics registries: ops may be dumped from
// atexit/crash paths.
struct OpRegistry {
    std::mutex mu;
    std::vector<CollOp*> ops;
};

OpRegistry& op_registry() {
    static OpRegistry* reg = new OpRegistry();
    return *reg;
}

// Token of the registered "coll.ops" source; passed as self_token when a
// CollOp triggers a dump while holding its own mutex (the recorder then
// runs the op-provided closure instead of the registered callback).
std::atomic<std::uint64_t> g_coll_source_token{0};

} // namespace

CollOp::CollOp(Communicator& comm, Fam fam)
    : comm_(comm),
      topo_(TopologyMap::create(comm)),
      fam_(fam),
      base_tag_(comm.coll_reserve_tags(kCollTagStride)),
      op_id_((static_cast<std::uint64_t>(comm.context()) << 32) | base_tag_),
      begin_vtime_(comm.now()) {
    coll_counters().ops.fetch_add(1, std::memory_order_relaxed);
    // Register the flight source once, OUTSIDE the registry mutex:
    // flight::trigger holds the recorder's lock while invoking callbacks
    // that take the registry mutex, so nesting them here in the opposite
    // order would be a lock-order inversion.
    static std::once_flag flight_once;
    std::call_once(flight_once, [] {
        g_coll_source_token.store(
            flight::register_source("coll.ops",
                                    [](std::FILE* f) { dump_all(f, nullptr); }),
            std::memory_order_release);
    });
    {
        OpRegistry& reg = op_registry();
        const std::lock_guard<std::mutex> lock(reg.mu);
        reg.ops.push_back(this);
    }
    // Arm the loss watchdog only when the reliable-delivery protocol is on
    // (i.e. a fault injector is active): on a lossless fabric every posted
    // request completes, so no watchdog is needed — or wanted, since a
    // rank can legitimately sit in a collective for unbounded virtual time
    // waiting for a late peer. Under loss, a peer whose retransmit budget
    // ran out leaves our eager receive unmatchable forever; the budget is
    // itself bounded by effective_op_timeout(), so several multiples of it
    // with no completion means no packet is coming.
    auto& fabric = comm.worker().fabric();
    if (fabric.reliable()) {
        watchdog_us_ = 4.0 * fabric.params().effective_op_timeout();
        last_move_vtime_ = comm.now();
    }
}

CollOp::~CollOp() {
    OpRegistry& reg = op_registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    auto& ops = reg.ops;
    ops.erase(std::remove(ops.begin(), ops.end(), this), ops.end());
}

void CollOp::track_step(Request rq, int peer, bool is_send) {
    pending_.push_back(std::move(rq));
    pending_peer_.push_back(peer);
    if (peer < 0) return;
    for (PeerProgress& p : peers_) {
        if (p.peer == peer) {
            (is_send ? p.sends : p.recvs) += 1;
            return;
        }
    }
    PeerProgress p;
    p.peer = peer;
    (is_send ? p.sends : p.recvs) = 1;
    peers_.push_back(p);
}

void CollOp::enter_phase() {
    if (trace::enabled()) {
        trace::instant("coll", "round", comm_.now(), "op", op_id_, "rank",
                       static_cast<std::uint64_t>(topo_.rank), "round",
                       rounds_run_);
    }
    ++rounds_run_;
    next_phase();
}

void CollOp::complete_locked() {
    const SimTime now = comm_.now();
    auto& h = op_hists(fam_, algo_);
    const double lat_ns = (now - begin_vtime_) * 1000.0;
    h.latency_ns.record(lat_ns > 0.0 ? static_cast<std::uint64_t>(lat_ns) : 0);
    h.rounds.record(rounds_run_);
    if (trace::enabled()) {
        trace::instant(
            "coll", "op_end", now, "op", op_id_, "rank",
            static_cast<std::uint64_t>(topo_.rank), "status",
            static_cast<std::uint64_t>(status_.load(std::memory_order_relaxed)),
            "rounds", rounds_run_);
    }
}

bool CollOp::advance() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (done_.load(std::memory_order_relaxed)) return false;
    bool moved = false;
    if (!started_) {
        started_ = true;
        moved = true;
        if (trace::enabled()) {
            trace::instant("coll", "op_begin", begin_vtime_, "op", op_id_,
                           "rank", static_cast<std::uint64_t>(topo_.rank),
                           "fam", static_cast<std::uint64_t>(fam_), "algo",
                           algo_ == Algo::hier ? 1 : 0);
        }
        enter_phase();
    }
    for (std::size_t i = 0; i < pending_.size();) {
        MsgStatus st;
        if (pending_[i].poll(&st)) {
            if (!ok(st.status) && ok(status_.load(std::memory_order_relaxed)))
                status_.store(st.status, std::memory_order_relaxed);
            const int peer = pending_peer_[i];
            if (peer >= 0) {
                for (PeerProgress& p : peers_) {
                    if (p.peer == peer) {
                        ++p.completed;
                        break;
                    }
                }
            }
            pending_[i] = std::move(pending_.back());
            pending_.pop_back();
            pending_peer_[i] = pending_peer_.back();
            pending_peer_.pop_back();
            moved = true;
        } else {
            ++i;
        }
    }
    // Enter the next phase(s). On error no further phase is posted: the op
    // finishes as soon as the already-posted requests drain (each of them
    // individually completes or times out under the reliability watchdogs,
    // so an erroring collective can never hang).
    while (pending_.empty() && !finishing_ &&
           ok(status_.load(std::memory_order_relaxed))) {
        moved = true;
        enter_phase();
    }
    if (watchdog_us_ > 0.0 && !pending_.empty()) {
        const SimTime now = comm_.now();
        if (moved) {
            last_move_vtime_ = now;
        } else if (now - last_move_vtime_ > watchdog_us_) {
            // Nothing completed for several full retransmit budgets: a
            // peer gave up (or never arrived) and no packet is coming.
            // Abandon the posted requests — their tags sit in this op's
            // reserved block, which the forward-only epoch counter never
            // hands out again, so a stale posted receive can never match
            // a later collective's traffic.
            if (ok(status_.load(std::memory_order_relaxed)))
                status_.store(Status::timeout, std::memory_order_relaxed);
            if (flight::enabled()) {
                // Dump BEFORE abandoning so the stuck pending table is
                // still visible. We hold mu_, so this op substitutes its
                // own dump per the recorder's deadlock rule.
                flight::trigger(
                    "coll_watchdog_expired", 0, now,
                    g_coll_source_token.load(std::memory_order_acquire),
                    [this](std::FILE* f) { dump_all(f, this); });
            }
            pending_.clear();
            pending_peer_.clear();
            finishing_ = true;
            moved = true;
        }
    }
    if (pending_.empty() &&
        (finishing_ || !ok(status_.load(std::memory_order_relaxed)))) {
        complete_locked();
        done_.store(true, std::memory_order_release);
        moved = true;
    }
    return moved;
}

void CollOp::dump_state(std::FILE* f) {
    std::fprintf(
        f,
        "  op=%llx fam=%s algo=%s rank=%d rounds=%u pending=%zu status=%d "
        "done=%d begin_vt=%.3f last_move_vt=%.3f\n",
        static_cast<unsigned long long>(op_id_), fam_name(fam_),
        algo_name(algo_), topo_.rank, rounds_run_, pending_.size(),
        static_cast<int>(status_.load(std::memory_order_relaxed)),
        done_.load(std::memory_order_relaxed) ? 1 : 0, begin_vtime_,
        last_move_vtime_);
    for (const PeerProgress& p : peers_) {
        std::fprintf(f, "    peer=%d sends=%u recvs=%u completed=%u\n", p.peer,
                     p.sends, p.recvs, p.completed);
    }
}

void CollOp::dump_all(std::FILE* f, CollOp* self) {
    OpRegistry& reg = op_registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    std::fprintf(f, "  live collective ops: %zu\n", reg.ops.size());
    for (CollOp* op : reg.ops) {
        if (op == self) {
            op->dump_state(f); // the triggering thread already holds mu_
        } else if (op->mu_.try_lock()) {
            const std::lock_guard<std::mutex> oplock(op->mu_, std::adopt_lock);
            op->dump_state(f);
        } else {
            std::fprintf(f, "  op=%llx <busy>\n",
                         static_cast<unsigned long long>(op->op_id_));
        }
    }
}

void CollOp::on_stall() {
    if (watchdog_us_ <= 0.0) return;
    if (done_.load(std::memory_order_acquire)) return;
    // Virtual time only moves when packets or timers are processed; once
    // every rank's retransmit budget is spent the fabric is quiescent and
    // the clock freezes short of the watchdog deadline. Charge idle wall
    // time as virtual time so the deadline is reachable.
    comm_.advance_time(watchdog_us_ / 16.0);
    (void)advance();
}

CollRequest launch(Communicator& comm, std::shared_ptr<CollOp> op) {
    CollRequest rq;
    rq.uni_ = &comm.universe();
    rq.ep_ = comm.worker().endpoint();
    rq.op_ = op;
    // Phase 0 posts synchronously: by the time this collective call
    // returns, the rank's initial receives exist, so a peer entering later
    // can never mistake other traffic for them.
    (void)op->advance();
    if (!op->done()) {
        ucx::Worker* w = &comm.worker();
        // The hook can run on another rank's progress thread before this
        // thread has stored the registration token, so the token slot is
        // atomic. If the hook observes done() while the token is still 0
        // it skips self-removal; the cleanup check below (and any later
        // hook invocation) removes it instead. Tokens are unique and
        // removal of an absent token is a no-op, so the possible double
        // remove is harmless.
        auto token = std::make_shared<std::atomic<std::uint64_t>>(0);
        const std::uint64_t id = w->add_progress_hook([op, token, w]() {
            const bool moved = op->advance();
            // Self-removal is safe: the hook runner iterates a snapshot.
            if (op->done()) {
                const std::uint64_t t =
                    token->load(std::memory_order_acquire);
                if (t != 0) w->remove_progress_hook(t);
            }
            return moved;
        });
        token->store(id, std::memory_order_release);
        if (op->done()) w->remove_progress_hook(id);
    }
    return rq;
}

CollRequest error_request(Status st) {
    CollRequest rq;
    rq.early_error_ = st;
    return rq;
}

bool CollRequest::test() {
    if (op_ == nullptr) return true;
    if (op_->done()) return true;
    uni_->progress(ep_);
    // The progress hook normally advanced the op just now; the direct call
    // covers the case where another thread held the worker busy flag.
    (void)op_->advance();
    return op_->done();
}

Status CollRequest::wait() {
    if (op_ == nullptr) return early_error_;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::seconds(120);
    auto last_progress = start;
    auto last_nudge = start;
    int idle = 0;
    while (!op_->done()) {
        const bool progressed = uni_->progress(ep_);
        const bool moved = op_->advance();
        if (op_->done()) break;
        if (progressed || moved) {
            idle = 0;
            last_progress = std::chrono::steady_clock::now();
            continue;
        }
        if (++idle > 256) {
            std::this_thread::yield();
            idle = 0;
            const auto now = std::chrono::steady_clock::now();
            // Globally idle for a long wall-clock stretch: let the op's
            // loss watchdog see virtual time move (no-op on lossless
            // fabrics, where the watchdog is disarmed). The wall-clock
            // thresholds keep a merely-descheduled peer thread (e.g.
            // under a sanitizer) from being mistaken for a dead one.
            if (now - last_progress > std::chrono::milliseconds(100) &&
                now - last_nudge > std::chrono::milliseconds(100)) {
                op_->on_stall();
                last_nudge = now;
            }
            if (now > deadline) {
                MPICD_LOG_ERROR(
                    "CollRequest::wait deadlocked (no progress for 120 s)");
                std::abort();
            }
        }
    }
    return op_->status();
}

Status wait_all(std::span<CollRequest> requests) {
    Status first = Status::success;
    for (auto& rq : requests) {
        const Status st = rq.wait();
        if (ok(first) && !ok(st)) first = st;
    }
    return first;
}

} // namespace mpicd::p2p::coll
