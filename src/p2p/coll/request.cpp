#include "p2p/coll/request.hpp"

#include <chrono>
#include <thread>

#include "base/log.hpp"
#include "p2p/universe.hpp"

namespace mpicd::p2p::coll {

CollOp::CollOp(Communicator& comm)
    : comm_(comm),
      topo_(TopologyMap::create(comm)),
      base_tag_(comm.coll_reserve_tags(kCollTagStride)) {
    coll_counters().ops.fetch_add(1, std::memory_order_relaxed);
    // Arm the loss watchdog only when the reliable-delivery protocol is on
    // (i.e. a fault injector is active): on a lossless fabric every posted
    // request completes, so no watchdog is needed — or wanted, since a
    // rank can legitimately sit in a collective for unbounded virtual time
    // waiting for a late peer. Under loss, a peer whose retransmit budget
    // ran out leaves our eager receive unmatchable forever; the budget is
    // itself bounded by effective_op_timeout(), so several multiples of it
    // with no completion means no packet is coming.
    auto& fabric = comm.worker().fabric();
    if (fabric.reliable()) {
        watchdog_us_ = 4.0 * fabric.params().effective_op_timeout();
        last_move_vtime_ = comm.now();
    }
}

bool CollOp::advance() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (done_.load(std::memory_order_relaxed)) return false;
    bool moved = false;
    if (!started_) {
        started_ = true;
        moved = true;
        next_phase();
    }
    for (std::size_t i = 0; i < pending_.size();) {
        MsgStatus st;
        if (pending_[i].poll(&st)) {
            if (!ok(st.status) && ok(status_.load(std::memory_order_relaxed)))
                status_.store(st.status, std::memory_order_relaxed);
            pending_[i] = std::move(pending_.back());
            pending_.pop_back();
            moved = true;
        } else {
            ++i;
        }
    }
    // Enter the next phase(s). On error no further phase is posted: the op
    // finishes as soon as the already-posted requests drain (each of them
    // individually completes or times out under the reliability watchdogs,
    // so an erroring collective can never hang).
    while (pending_.empty() && !finishing_ &&
           ok(status_.load(std::memory_order_relaxed))) {
        moved = true;
        next_phase();
    }
    if (watchdog_us_ > 0.0 && !pending_.empty()) {
        const SimTime now = comm_.now();
        if (moved) {
            last_move_vtime_ = now;
        } else if (now - last_move_vtime_ > watchdog_us_) {
            // Nothing completed for several full retransmit budgets: a
            // peer gave up (or never arrived) and no packet is coming.
            // Abandon the posted requests — their tags sit in this op's
            // reserved block, which the forward-only epoch counter never
            // hands out again, so a stale posted receive can never match
            // a later collective's traffic.
            if (ok(status_.load(std::memory_order_relaxed)))
                status_.store(Status::timeout, std::memory_order_relaxed);
            pending_.clear();
            finishing_ = true;
            moved = true;
        }
    }
    if (pending_.empty() &&
        (finishing_ || !ok(status_.load(std::memory_order_relaxed)))) {
        done_.store(true, std::memory_order_release);
        moved = true;
    }
    return moved;
}

void CollOp::on_stall() {
    if (watchdog_us_ <= 0.0) return;
    if (done_.load(std::memory_order_acquire)) return;
    // Virtual time only moves when packets or timers are processed; once
    // every rank's retransmit budget is spent the fabric is quiescent and
    // the clock freezes short of the watchdog deadline. Charge idle wall
    // time as virtual time so the deadline is reachable.
    comm_.advance_time(watchdog_us_ / 16.0);
    (void)advance();
}

CollRequest launch(Communicator& comm, std::shared_ptr<CollOp> op) {
    CollRequest rq;
    rq.uni_ = &comm.universe();
    rq.ep_ = comm.worker().endpoint();
    rq.op_ = op;
    // Phase 0 posts synchronously: by the time this collective call
    // returns, the rank's initial receives exist, so a peer entering later
    // can never mistake other traffic for them.
    (void)op->advance();
    if (!op->done()) {
        ucx::Worker* w = &comm.worker();
        auto token = std::make_shared<std::uint64_t>(0);
        *token = w->add_progress_hook([op, token, w]() {
            const bool moved = op->advance();
            // Self-removal is safe: the hook runner iterates a snapshot.
            if (op->done()) w->remove_progress_hook(*token);
            return moved;
        });
    }
    return rq;
}

CollRequest error_request(Status st) {
    CollRequest rq;
    rq.early_error_ = st;
    return rq;
}

bool CollRequest::test() {
    if (op_ == nullptr) return true;
    if (op_->done()) return true;
    uni_->progress(ep_);
    // The progress hook normally advanced the op just now; the direct call
    // covers the case where another thread held the worker busy flag.
    (void)op_->advance();
    return op_->done();
}

Status CollRequest::wait() {
    if (op_ == nullptr) return early_error_;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::seconds(120);
    auto last_progress = start;
    auto last_nudge = start;
    int idle = 0;
    while (!op_->done()) {
        const bool progressed = uni_->progress(ep_);
        const bool moved = op_->advance();
        if (op_->done()) break;
        if (progressed || moved) {
            idle = 0;
            last_progress = std::chrono::steady_clock::now();
            continue;
        }
        if (++idle > 256) {
            std::this_thread::yield();
            idle = 0;
            const auto now = std::chrono::steady_clock::now();
            // Globally idle for a long wall-clock stretch: let the op's
            // loss watchdog see virtual time move (no-op on lossless
            // fabrics, where the watchdog is disarmed). The wall-clock
            // thresholds keep a merely-descheduled peer thread (e.g.
            // under a sanitizer) from being mistaken for a dead one.
            if (now - last_progress > std::chrono::milliseconds(100) &&
                now - last_nudge > std::chrono::milliseconds(100)) {
                op_->on_stall();
                last_nudge = now;
            }
            if (now > deadline) {
                MPICD_LOG_ERROR(
                    "CollRequest::wait deadlocked (no progress for 120 s)");
                std::abort();
            }
        }
    }
    return op_->status();
}

Status wait_all(std::span<CollRequest> requests) {
    Status first = Status::success;
    for (auto& rq : requests) {
        const Status st = rq.wait();
        if (ok(first) && !ok(st)) first = st;
    }
    return first;
}

} // namespace mpicd::p2p::coll
