#include "p2p/coll/topology.hpp"

#include <array>
#include <mutex>
#include <string>

#include "base/config.hpp"
#include "base/log.hpp"
#include "base/metrics.hpp"
#include "p2p/communicator.hpp"

namespace mpicd::p2p::coll {

TopologyMap TopologyMap::create(Communicator& comm) {
    TopologyMap t;
    t.size = comm.size();
    t.rank = comm.rank();
    const int rpn = comm.worker().fabric().params().ranks_per_node;
    // A flat fabric (rpn == 0) or one node wide enough for the whole world
    // degenerates to a single node.
    t.ranks_per_node = (rpn > 0 && rpn < t.size) ? rpn : t.size;
    t.node_count = (t.size + t.ranks_per_node - 1) / t.ranks_per_node;
    return t;
}

namespace {

// -1 = unset; otherwise static_cast<int>(Algo).
std::atomic<int> g_algo_override{-1};

enum class AlgoMode { automatic, flat, hier };

AlgoMode algo_mode_from_env() {
    const auto v = env_string("MPICD_COLL_ALGO");
    if (!v || v->empty() || *v == "auto") return AlgoMode::automatic;
    if (*v == "flat") return AlgoMode::flat;
    if (*v == "hier") return AlgoMode::hier;
    // Reached at most once (the result is cached below).
    MPICD_LOG_WARN("MPICD_COLL_ALGO='" << *v
                                       << "' is not auto/flat/hier; using auto");
    return AlgoMode::automatic;
}

AlgoMode algo_mode() {
    static const AlgoMode mode = algo_mode_from_env();
    return mode;
}

} // namespace

void set_algo_override(std::optional<Algo> algo) noexcept {
    g_algo_override.store(algo ? static_cast<int>(*algo) : -1,
                          std::memory_order_relaxed);
}

Algo select_algo(const TopologyMap& topo) {
    Algo a = Algo::flat;
    const int ov = g_algo_override.load(std::memory_order_relaxed);
    if (ov >= 0) {
        a = static_cast<Algo>(ov);
    } else {
        switch (algo_mode()) {
            case AlgoMode::flat: a = Algo::flat; break;
            case AlgoMode::hier: a = Algo::hier; break;
            case AlgoMode::automatic:
                a = topo.two_level() ? Algo::hier : Algo::flat;
                break;
        }
    }
    // A forced hier on a single-node topology has no leaders to use.
    if (a == Algo::hier && !topo.two_level()) a = Algo::flat;
    auto& c = coll_counters();
    if (a == Algo::hier)
        c.hier_selected.fetch_add(1, std::memory_order_relaxed);
    else
        c.flat_selected.fetch_add(1, std::memory_order_relaxed);
    return a;
}

const char* fam_name(Fam f) noexcept {
    switch (f) {
        case Fam::barrier: return "barrier";
        case Fam::bcast: return "bcast";
        case Fam::gather: return "gather";
        case Fam::allreduce: return "allreduce";
        case Fam::gatherv: return "gatherv";
        case Fam::allgatherv: return "allgatherv";
        case Fam::alltoallv: return "alltoallv";
    }
    return "unknown";
}

const char* algo_name(Algo a) noexcept {
    return a == Algo::hier ? "hier" : "flat";
}

OpHists& op_hists(Fam f, Algo a) {
    constexpr std::size_t kAlgos = 2;
    constexpr std::size_t kSlots = 7 * kAlgos;
    static std::mutex mu;
    static std::array<std::atomic<OpHists*>, kSlots> slots{};
    const std::size_t i = static_cast<std::size_t>(f) * kAlgos +
                          (a == Algo::hier ? 1 : 0);
    OpHists* p = slots[i].load(std::memory_order_acquire);
    if (p == nullptr) {
        const std::lock_guard<std::mutex> lock(mu);
        p = slots[i].load(std::memory_order_relaxed);
        if (p == nullptr) {
            const std::string suffix =
                std::string("_") + fam_name(f) + "_" + algo_name(a);
            // Leaked: histogram references must stay valid from atexit
            // dumps, matching the registry's own lifetime.
            p = new OpHists{
                metrics().histogram("coll", "op_latency_ns" + suffix),
                metrics().histogram("coll", "op_rounds" + suffix),
            };
            slots[i].store(p, std::memory_order_release);
        }
    }
    return *p;
}

CollCounters& coll_counters() noexcept {
    static CollCounters c{
        metrics().counter("coll", "ops"),
        metrics().counter("coll", "flat_selected"),
        metrics().counter("coll", "hier_selected"),
        metrics().counter("coll", "leader_bytes"),
    };
    return c;
}

} // namespace mpicd::p2p::coll
