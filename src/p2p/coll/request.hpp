// CollOp / CollRequest: the nonblocking collective machinery.
//
// Every collective is a small state machine (a CollOp subclass) that posts
// point-to-point operations on the communicator's reserved collective tag
// plane (Communicator::coll_*) in phases. The machine is advanced from two
// places:
//  - a worker progress hook (ucx::Worker::add_progress_hook), so a
//    collective keeps moving whenever this rank's endpoint is progressed —
//    including when the rank is busy with unrelated p2p traffic, which is
//    what makes the nonblocking collectives overlap with p2p work;
//  - CollRequest::test()/wait(), which also drive Universe::progress so a
//    rank blocked only on the collective still pumps the fabric.
//
// advance() is serialized by the op's own mutex; inside it only
// non-progressing completion polls (Request::poll) and new coll_* posts
// happen, so it is safe in hook context (worker busy flag held, protocol
// mutex released).
//
// Observability (docs/OBSERVABILITY.md §collectives): every op carries a
// process-unique op id — (communicator context << 32) | reserved tag
// block. Tag blocks come from the forward-only per-communicator epoch
// counter, which every rank advances in lockstep, so the SAME id names
// the same collective instance on every rank: one trace file groups all
// ranks' events of one op. With tracing on, the op emits coll.op_begin /
// coll.round / coll.step_send / coll.step_recv / coll.op_end instants,
// and each point-to-point step opens a fresh trace MsgScope so the
// message's whole packet/pack span tree hangs off the step. Always on
// (tracing or not), completion records coll/op_latency_ns_* and
// coll/op_rounds_* histograms, and live ops register with the flight
// recorder so a collective timing out under fault injection dumps the op
// state table with per-peer round progress.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "base/trace.hpp"
#include "p2p/coll/topology.hpp"
#include "p2p/communicator.hpp"

namespace mpicd::p2p::coll {

class CollOp {
public:
    CollOp(Communicator& comm, Fam fam);
    virtual ~CollOp();
    CollOp(const CollOp&) = delete;
    CollOp& operator=(const CollOp&) = delete;

    // Advance the state machine: poll tracked requests, enter the next
    // phase(s) when the current one drained. Returns true if anything
    // moved. Thread-safe; never drives fabric progress.
    bool advance();

    [[nodiscard]] bool done() const noexcept {
        return done_.load(std::memory_order_acquire);
    }
    // First error any tracked request completed with (success while
    // running). Stable once done() is true.
    [[nodiscard]] Status status() const noexcept {
        return status_.load(std::memory_order_acquire);
    }

    // Called by CollRequest::wait after a long streak of globally idle
    // progress calls: advances this rank's virtual clock so the loss
    // watchdog (armed only under an active fault injector) can fire even
    // when the whole fabric is quiescent — e.g. every peer's retransmit
    // budget is already exhausted and no timer remains to escalate to.
    void on_stall();

protected:
    // Contiguous collective-tag block reserved per operation; phases and
    // rounds index into it (subtag < kCollTagStride always, with room to
    // spare — the deepest schedule uses ~2*log2(kMaxWorldSize) rounds).
    static constexpr std::uint32_t kCollTagStride = 64;

    // Post the operations of the next phase via the step helpers, or call
    // finish(). Invoked under the op mutex whenever no tracked request
    // remains; must do one or the other (posting nothing without finishing
    // would spin). Not called again after finish() or after an error is
    // recorded.
    virtual void next_phase() = 0;

    // Post one point-to-point step of this op. `post` runs the actual
    // comm_.coll_* call; `peer` / `ctag` name the step for tracing and
    // the flight-recorder progress table. With tracing on the post runs
    // inside a fresh MsgScope and a coll.step_send/step_recv instant
    // records (op, rank, peer, sub) next to the new msg id — that instant
    // is the join point attaching the message's span tree to this op's
    // round. Msg ids are opaque to the transport (never touch CRC, timing
    // or the fragment schedule), so tracing stays a pure observer.
    template <typename PostFn>
    void step_send(int peer, std::uint32_t ctag, PostFn&& post) {
        post_step(true, peer, ctag, static_cast<PostFn&&>(post));
    }
    template <typename PostFn>
    void step_recv(int peer, std::uint32_t ctag, PostFn&& post) {
        post_step(false, peer, ctag, static_cast<PostFn&&>(post));
    }

    // Untraced tracking (no peer attribution); prefer the step helpers.
    void track(Request rq) { track_step(std::move(rq), -1, false); }

    // Record the algorithm the subclass selected (selection runs in
    // subclass ctors, after this base is built). Defaults to flat.
    void note_algo(Algo a) noexcept { algo_ = a; }

    void finish() noexcept { finishing_ = true; }
    [[nodiscard]] std::uint32_t tag(std::uint32_t subtag) const noexcept {
        return base_tag_ + subtag;
    }
    [[nodiscard]] std::uint64_t op_id() const noexcept { return op_id_; }

    Communicator& comm_;
    const TopologyMap topo_;

private:
    template <typename PostFn>
    void post_step(bool is_send, int peer, std::uint32_t ctag, PostFn&& post) {
        if (trace::enabled()) {
            const trace::MsgScope scope(trace::next_msg_id());
            trace::instant("coll", is_send ? "step_send" : "step_recv",
                           comm_.now(), "op", op_id_, "rank",
                           static_cast<std::uint64_t>(topo_.rank), "peer",
                           static_cast<std::uint64_t>(peer), "sub",
                           ctag - base_tag_);
            track_step(post(), peer, is_send);
        } else {
            track_step(post(), peer, is_send);
        }
    }

    void track_step(Request rq, int peer, bool is_send);
    // Emit the coll.round instant and run the subclass phase (under mu_).
    void enter_phase();
    // Metrics + coll.op_end at the done transition (under mu_).
    void complete_locked();
    // One line of op state + per-peer progress; mu_ must be held (or
    // known-unlocked via try_lock by the flight dump path).
    void dump_state(std::FILE* f);
    // Flight-recorder dump of every live op; `self` is the op whose mutex
    // the triggering thread already holds (dumped without locking), all
    // others are try_lock'ed and print "<busy>" when contended.
    static void dump_all(std::FILE* f, CollOp* self);

    const Fam fam_;
    Algo algo_ = Algo::flat;
    const std::uint32_t base_tag_;
    const std::uint64_t op_id_;
    const SimTime begin_vtime_;
    std::mutex mu_;
    std::vector<Request> pending_;   // posted, not yet completed
    std::vector<int> pending_peer_;  // peer of pending_[i] (-1 = unknown)
    // Per-peer post/completion counts for the flight-recorder table: when
    // a collective times out, "peer 7: 2 posted, 0 completed" is the
    // straggler attribution a raw pending count cannot give.
    struct PeerProgress {
        int peer = -1;
        std::uint32_t sends = 0;
        std::uint32_t recvs = 0;
        std::uint32_t completed = 0;
    };
    std::vector<PeerProgress> peers_;
    std::uint32_t rounds_run_ = 0;
    bool started_ = false;
    bool finishing_ = false;
    std::atomic<Status> status_{Status::success};
    std::atomic<bool> done_{false};
    // Loss watchdog (fault-injected fabrics only; 0 = disarmed). The
    // point-to-point reliability watchdogs cover a receive only once its
    // rendezvous started; a collective waiting on a peer that already gave
    // up (retransmit budget exhausted) would otherwise wait forever on an
    // eager receive no sender will ever satisfy. If no tracked request
    // completes for `watchdog_us_` of virtual time, the op fails with
    // Status::timeout and ABANDONS its posted requests — safe because the
    // op's reserved tag block is never reused (the epoch counter only
    // moves forward), so an abandoned receive can never match later
    // traffic.
    SimTime watchdog_us_ = 0.0;
    SimTime last_move_vtime_ = 0.0;
};

// Handle to an in-flight collective. Copyable (shared state); composable:
// hold several and wait in any order, or pass a batch to wait_all below.
class CollRequest {
public:
    CollRequest() = default;

    [[nodiscard]] bool valid() const noexcept { return op_ != nullptr; }

    // Nonblocking completion check; progresses the universe once (the
    // worker progress hook advances the op as a side effect).
    [[nodiscard]] bool test();

    // Progress until complete; aborts after a long wall-clock interval
    // with no completion (a deadlock in test code). Returns the
    // collective's status. An invalid (default) request is err_arg.
    Status wait();

private:
    friend CollRequest launch(Communicator& comm, std::shared_ptr<CollOp> op);
    friend CollRequest error_request(Status st);

    Universe* uni_ = nullptr;
    int ep_ = -1;
    std::shared_ptr<CollOp> op_;
    // Validation failed before any op was created (also the result of a
    // default-constructed request). No tag block was reserved, so a rank
    // failing local validation does not desynchronize the epoch counter.
    Status early_error_ = Status::err_arg;
};

// Start `op`: run its first phase synchronously (so every rank's initial
// receives/sends are posted on entry, preserving collective entry order)
// and install a worker progress hook that keeps advancing it until done.
[[nodiscard]] CollRequest launch(Communicator& comm, std::shared_ptr<CollOp> op);

// An already-failed request carrying a local validation error.
[[nodiscard]] CollRequest error_request(Status st);

// Wait for every collective request; returns the first non-success status
// (all requests are waited regardless).
[[nodiscard]] Status wait_all(std::span<CollRequest> requests);

} // namespace mpicd::p2p::coll
