// CollOp / CollRequest: the nonblocking collective machinery.
//
// Every collective is a small state machine (a CollOp subclass) that posts
// point-to-point operations on the communicator's reserved collective tag
// plane (Communicator::coll_*) in phases. The machine is advanced from two
// places:
//  - a worker progress hook (ucx::Worker::add_progress_hook), so a
//    collective keeps moving whenever this rank's endpoint is progressed —
//    including when the rank is busy with unrelated p2p traffic, which is
//    what makes the nonblocking collectives overlap with p2p work;
//  - CollRequest::test()/wait(), which also drive Universe::progress so a
//    rank blocked only on the collective still pumps the fabric.
//
// advance() is serialized by the op's own mutex; inside it only
// non-progressing completion polls (Request::poll) and new coll_* posts
// happen, so it is safe in hook context (worker busy flag held, protocol
// mutex released).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "p2p/coll/topology.hpp"
#include "p2p/communicator.hpp"

namespace mpicd::p2p::coll {

class CollOp {
public:
    explicit CollOp(Communicator& comm);
    virtual ~CollOp() = default;
    CollOp(const CollOp&) = delete;
    CollOp& operator=(const CollOp&) = delete;

    // Advance the state machine: poll tracked requests, enter the next
    // phase(s) when the current one drained. Returns true if anything
    // moved. Thread-safe; never drives fabric progress.
    bool advance();

    [[nodiscard]] bool done() const noexcept {
        return done_.load(std::memory_order_acquire);
    }
    // First error any tracked request completed with (success while
    // running). Stable once done() is true.
    [[nodiscard]] Status status() const noexcept {
        return status_.load(std::memory_order_acquire);
    }

    // Called by CollRequest::wait after a long streak of globally idle
    // progress calls: advances this rank's virtual clock so the loss
    // watchdog (armed only under an active fault injector) can fire even
    // when the whole fabric is quiescent — e.g. every peer's retransmit
    // budget is already exhausted and no timer remains to escalate to.
    void on_stall();

protected:
    // Contiguous collective-tag block reserved per operation; phases and
    // rounds index into it (subtag < kCollTagStride always, with room to
    // spare — the deepest schedule uses ~2*log2(kMaxWorldSize) rounds).
    static constexpr std::uint32_t kCollTagStride = 64;

    // Post the operations of the next phase via track(), or call finish().
    // Invoked under the op mutex whenever no tracked request remains; must
    // do one or the other (posting nothing without finishing would spin).
    // Not called again after finish() or after an error is recorded.
    virtual void next_phase() = 0;

    void track(Request rq) { pending_.push_back(std::move(rq)); }
    void finish() noexcept { finishing_ = true; }
    [[nodiscard]] std::uint32_t tag(std::uint32_t subtag) const noexcept {
        return base_tag_ + subtag;
    }

    Communicator& comm_;
    const TopologyMap topo_;

private:
    const std::uint32_t base_tag_;
    std::mutex mu_;
    std::vector<Request> pending_; // posted, not yet completed
    bool started_ = false;
    bool finishing_ = false;
    std::atomic<Status> status_{Status::success};
    std::atomic<bool> done_{false};
    // Loss watchdog (fault-injected fabrics only; 0 = disarmed). The
    // point-to-point reliability watchdogs cover a receive only once its
    // rendezvous started; a collective waiting on a peer that already gave
    // up (retransmit budget exhausted) would otherwise wait forever on an
    // eager receive no sender will ever satisfy. If no tracked request
    // completes for `watchdog_us_` of virtual time, the op fails with
    // Status::timeout and ABANDONS its posted requests — safe because the
    // op's reserved tag block is never reused (the epoch counter only
    // moves forward), so an abandoned receive can never match later
    // traffic.
    SimTime watchdog_us_ = 0.0;
    SimTime last_move_vtime_ = 0.0;
};

// Handle to an in-flight collective. Copyable (shared state); composable:
// hold several and wait in any order, or pass a batch to wait_all below.
class CollRequest {
public:
    CollRequest() = default;

    [[nodiscard]] bool valid() const noexcept { return op_ != nullptr; }

    // Nonblocking completion check; progresses the universe once (the
    // worker progress hook advances the op as a side effect).
    [[nodiscard]] bool test();

    // Progress until complete; aborts after a long wall-clock interval
    // with no completion (a deadlock in test code). Returns the
    // collective's status. An invalid (default) request is err_arg.
    Status wait();

private:
    friend CollRequest launch(Communicator& comm, std::shared_ptr<CollOp> op);
    friend CollRequest error_request(Status st);

    Universe* uni_ = nullptr;
    int ep_ = -1;
    std::shared_ptr<CollOp> op_;
    // Validation failed before any op was created (also the result of a
    // default-constructed request). No tag block was reserved, so a rank
    // failing local validation does not desynchronize the epoch counter.
    Status early_error_ = Status::err_arg;
};

// Start `op`: run its first phase synchronously (so every rank's initial
// receives/sends are posted on entry, preserving collective entry order)
// and install a worker progress hook that keeps advancing it until done.
[[nodiscard]] CollRequest launch(Communicator& comm, std::shared_ptr<CollOp> op);

// An already-failed request carrying a local validation error.
[[nodiscard]] CollRequest error_request(Status st);

// Wait for every collective request; returns the first non-success status
// (all requests are waited regardless).
[[nodiscard]] Status wait_all(std::span<CollRequest> requests);

} // namespace mpicd::p2p::coll
