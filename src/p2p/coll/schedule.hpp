// Communication schedules shared by the collective algorithms: binomial
// trees (bcast / reduce) and dissemination rounds (barrier). All helpers
// work in a root-rotated virtual rank space so any rank can be the root.
#pragma once

#include <vector>

namespace mpicd::p2p::coll {

// ceil(log2(n)) — the number of dissemination / binomial rounds for n
// participants (0 for n <= 1).
[[nodiscard]] constexpr int log2_rounds(int n) noexcept {
    int rounds = 0;
    for (int span = 1; span < n; span <<= 1) ++rounds;
    return rounds;
}

// Virtual rank of `rank` in the tree rooted at `root` (and back).
[[nodiscard]] constexpr int to_vrank(int rank, int root, int n) noexcept {
    return (rank - root + n) % n;
}
[[nodiscard]] constexpr int from_vrank(int vrank, int root, int n) noexcept {
    return (vrank + root) % n;
}

// Binomial-tree parent of virtual rank `vr` (-1 for the root). The tree
// clears the lowest set bit: vr receives from vr - 2^k where 2^k is the
// lowest set bit of vr.
[[nodiscard]] constexpr int bin_parent(int vr) noexcept {
    return vr == 0 ? -1 : vr - (vr & -vr);
}

// Binomial-tree children of virtual rank `vr` among n participants, in the
// order a binomial bcast reaches them (largest subtree first). vr's
// children are vr + 2^k for every 2^k above vr's lowest set bit (all bits
// for the root) that stays below n.
[[nodiscard]] inline std::vector<int> bin_children(int vr, int n) {
    std::vector<int> kids;
    const int low = vr == 0 ? n : (vr & -vr);
    for (int bit = 1; bit < low && vr + bit < n; bit <<= 1) kids.push_back(vr + bit);
    // Largest subtree first so deep subtrees start earliest.
    for (std::size_t i = 0, j = kids.size(); i + 1 < j; ++i, --j)
        std::swap(kids[i], kids[j - 1]);
    return kids;
}

} // namespace mpicd::p2p::coll
