#include "p2p/universe.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "p2p/communicator.hpp"

namespace mpicd::p2p {

Universe::Universe(int nranks, netsim::WireParams params,
                   netsim::FaultConfig faults)
    : fabric_(nranks, params, faults) {
    assert(nranks > 0);
    workers_.reserve(static_cast<std::size_t>(nranks));
    comms_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        workers_.push_back(std::make_unique<ucx::Worker>(fabric_, r));
    }
    for (int r = 0; r < nranks; ++r) {
        comms_.push_back(
            std::make_unique<Communicator>(*this, *workers_[static_cast<std::size_t>(r)],
                                           r, nranks, /*context=*/0));
    }
}

Universe::~Universe() = default;

Communicator& Universe::comm(int rank) {
    assert(rank >= 0 && rank < size());
    return *comms_[static_cast<std::size_t>(rank)];
}

bool Universe::progress_all() {
    bool any = false;
    for (auto& w : workers_) any = w->progress() || any;
    if (any || !fabric_.reliable()) return any;
    // Quiescent fabric with the reliable protocol armed: the only way
    // forward is a virtual-time timer (retransmit deadline or operation
    // watchdog). Jump every clock to the earliest one and progress again.
    SimTime t = std::numeric_limits<SimTime>::infinity();
    for (auto& w : workers_) t = std::min(t, w->next_timer());
    if (!std::isfinite(t)) return false;
    for (auto& w : workers_) w->observe_time(t);
    for (auto& w : workers_) any = w->progress() || any;
    return any;
}

} // namespace mpicd::p2p
