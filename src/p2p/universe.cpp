#include "p2p/universe.hpp"

#include <cassert>

#include "p2p/communicator.hpp"

namespace mpicd::p2p {

Universe::Universe(int nranks, netsim::WireParams params)
    : fabric_(nranks, params) {
    assert(nranks > 0);
    workers_.reserve(static_cast<std::size_t>(nranks));
    comms_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        workers_.push_back(std::make_unique<ucx::Worker>(fabric_, r));
    }
    for (int r = 0; r < nranks; ++r) {
        comms_.push_back(
            std::make_unique<Communicator>(*this, *workers_[static_cast<std::size_t>(r)],
                                           r, nranks, /*context=*/0));
    }
}

Universe::~Universe() = default;

Communicator& Universe::comm(int rank) {
    assert(rank >= 0 && rank < size());
    return *comms_[static_cast<std::size_t>(rank)];
}

bool Universe::progress_all() {
    bool any = false;
    for (auto& w : workers_) any = w->progress() || any;
    return any;
}

} // namespace mpicd::p2p
