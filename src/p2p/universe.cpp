#include "p2p/universe.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "p2p/coll/topology.hpp"
#include "p2p/communicator.hpp"

namespace mpicd::p2p {

Universe::Universe(int nranks, netsim::WireParams params,
                   netsim::FaultConfig faults)
    : fabric_(nranks, params, faults) {
    assert(nranks > 0);
    // Materialize the fastpath/* counter group up front so every metrics
    // snapshot (and thus every BENCH_*.json) reports bypass rates, zero or
    // not.
    (void)core::fastpath_counters();
    // Same for coll/*: collective op counts and algorithm selections.
    (void)coll::coll_counters();
    workers_.reserve(static_cast<std::size_t>(nranks));
    comms_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        workers_.push_back(std::make_unique<ucx::Worker>(fabric_, r));
    }
    for (int r = 0; r < nranks; ++r) {
        comms_.push_back(
            std::make_unique<Communicator>(*this, *workers_[static_cast<std::size_t>(r)],
                                           r, nranks, /*context=*/0));
    }
}

Universe::~Universe() = default;

Communicator& Universe::comm(int rank) {
    assert(rank >= 0 && rank < size());
    return *comms_[static_cast<std::size_t>(rank)];
}

bool Universe::progress_all() {
    bool any = false;
    for (auto& w : workers_) any = w->progress() || any;
    if (any || !fabric_.reliable()) return any;
    return escalate_timers();
}

bool Universe::progress(int rank) {
    assert(rank >= 0 && rank < size());
    bool any = workers_[static_cast<std::size_t>(rank)]->progress();
    if (any) return true;
    // Own worker idle: help peers so a single thread driving both ends of
    // a transfer (the deterministic benchmark mode) still converges. Busy
    // peers — ones another rank thread is already progressing — are
    // skipped, not waited on.
    for (int r = 0; r < size(); ++r) {
        if (r == rank) continue;
        any = workers_[static_cast<std::size_t>(r)]->progress() || any;
    }
    if (any || !fabric_.reliable()) return any;
    // Quiescent fabric with the reliable protocol armed: the only way
    // forward is a virtual-time timer (retransmit deadline or operation
    // watchdog).
    return escalate_timers();
}

bool Universe::escalate_timers() {
    const std::lock_guard<std::mutex> lock(escalate_mutex_);
    // Re-verify global quiescence under the escalation lock: if any rank
    // thread is mid-progress or any inbox still holds packets, those
    // packets may logically precede the timer deadline — escalating now
    // would fire timers for live operations. Bail out; the caller's
    // progress loop retries and the packets get drained first.
    for (const auto& w : workers_)
        if (w->progress_active()) return false;
    for (int ep = 0; ep < size(); ++ep)
        if (!fabric_.inbox_empty(ep)) return false;
    // Jump every clock to the earliest timer and progress again.
    SimTime t = std::numeric_limits<SimTime>::infinity();
    for (auto& w : workers_) t = std::min(t, w->next_timer());
    if (!std::isfinite(t)) return false;
    for (auto& w : workers_) w->observe_time(t);
    bool any = false;
    for (auto& w : workers_) any = w->progress() || any;
    return any;
}

} // namespace mpicd::p2p
