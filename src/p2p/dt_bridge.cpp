#include "p2p/dt_bridge.hpp"

#include "dt/convertor.hpp"

namespace mpicd::p2p {

namespace {

// Context shared by all callbacks of one operation; owned via the
// descriptor's keepalive anchor.
struct DtCtx {
    dt::TypeRef type;
};

struct DtState {
    dt::Convertor cv;
};

Status dt_start_pack(void* ctx, const void* buf, Count count, void** state) {
    auto* c = static_cast<DtCtx*>(ctx);
    *state = new DtState{dt::Convertor(c->type, const_cast<void*>(buf), count)};
    return Status::success;
}

Status dt_start_unpack(void* ctx, void* buf, Count count, void** state) {
    auto* c = static_cast<DtCtx*>(ctx);
    *state = new DtState{dt::Convertor(c->type, buf, count)};
    return Status::success;
}

Status dt_packed_size(void* state, Count* size) {
    *size = static_cast<DtState*>(state)->cv.total_packed();
    return Status::success;
}

Status dt_pack(void* state, Count offset, void* dst, Count dst_size, Count* used) {
    auto& cv = static_cast<DtState*>(state)->cv;
    if (cv.position() != offset) cv.seek(offset);
    return cv.pack(MutBytes(static_cast<std::byte*>(dst),
                            static_cast<std::size_t>(dst_size)),
                   used);
}

Status dt_unpack(void* state, Count offset, const void* src, Count src_size) {
    auto& cv = static_cast<DtState*>(state)->cv;
    if (cv.position() != offset) cv.seek(offset);
    return cv.unpack(ConstBytes(static_cast<const std::byte*>(src),
                                static_cast<std::size_t>(src_size)));
}

void dt_finish(void* state) { delete static_cast<DtState*>(state); }

ucx::GenericDesc make_desc(const dt::TypeRef& type, Count count) {
    auto ctx = std::make_shared<DtCtx>();
    ctx->type = type;
    ucx::GenericDesc g;
    g.ops.start_pack = dt_start_pack;
    g.ops.start_unpack = dt_start_unpack;
    g.ops.packed_size = dt_packed_size;
    g.ops.pack = dt_pack;
    g.ops.unpack = dt_unpack;
    g.ops.finish = dt_finish;
    g.ops.ctx = ctx.get();
    g.ops.inorder = true; // the convertor is cheapest when driven in order
    g.count = count;
    g.keepalive = std::move(ctx);
    return g;
}

} // namespace

ucx::BufferDesc dt_send_desc(const dt::TypeRef& type, const void* buf, Count count) {
    auto g = make_desc(type, count);
    g.send_buf = buf;
    return g;
}

ucx::BufferDesc dt_recv_desc(const dt::TypeRef& type, void* buf, Count count) {
    auto g = make_desc(type, count);
    g.recv_buf = buf;
    return g;
}

} // namespace mpicd::p2p
