#include "p2p/dt_bridge.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "base/stats.hpp"
#include "base/trace.hpp"
#include "dt/convertor.hpp"
#include "dt/pack_plan.hpp"
#include "dt/par_pack.hpp"
#include "dt/signature.hpp"

namespace mpicd::p2p {

namespace {

// Context shared by all callbacks of one operation; owned via the
// descriptor's keepalive anchor. Immutable after construction, so a single
// instance may back any number of concurrent descriptors — which is what
// lets the (layout, count) cache below hand the same context to repeated
// sends of the same shape.
struct DtCtx {
    dt::TypeRef type;
    Count count = 0; // the count this context was built (and cached) for
};

struct DtState {
    dt::Convertor cv;
    const DtCtx* ctx;
    void* buf;
    Count count;
};

Status dt_start_pack(void* ctx, const void* buf, Count count, void** state) {
    auto* c = static_cast<DtCtx*>(ctx);
    *state = new DtState{dt::Convertor(c->type, const_cast<void*>(buf), count), c,
                         const_cast<void*>(buf), count};
    return Status::success;
}

Status dt_start_unpack(void* ctx, void* buf, Count count, void** state) {
    auto* c = static_cast<DtCtx*>(ctx);
    *state = new DtState{dt::Convertor(c->type, buf, count), c, buf, count};
    return Status::success;
}

Status dt_packed_size(void* state, Count* size) {
    *size = static_cast<DtState*>(state)->cv.total_packed();
    return Status::success;
}

Status dt_pack(void* state, Count offset, void* dst, Count dst_size, Count* used) {
    auto* s = static_cast<DtState*>(state);
    // Large fragments go through the parallel engine (partitioned by packed
    // offset, byte-identical to the serial path). The serial convertor's
    // cursor is left untouched; its next use re-seeks as needed.
    if (dt::par_pack_eligible(dst_size)) {
        return dt::parallel_pack_range(
            s->ctx->type, s->buf, s->count, offset,
            MutBytes(static_cast<std::byte*>(dst), static_cast<std::size_t>(dst_size)),
            used);
    }
    auto& cv = s->cv;
    if (cv.position() != offset) cv.seek(offset);
    return cv.pack(MutBytes(static_cast<std::byte*>(dst),
                            static_cast<std::size_t>(dst_size)),
                   used);
}

Status dt_unpack(void* state, Count offset, const void* src, Count src_size) {
    auto* s = static_cast<DtState*>(state);
    if (dt::par_pack_eligible(src_size)) {
        return dt::parallel_unpack_range(
            s->ctx->type, s->buf, s->count, offset,
            ConstBytes(static_cast<const std::byte*>(src),
                       static_cast<std::size_t>(src_size)));
    }
    auto& cv = s->cv;
    if (cv.position() != offset) cv.seek(offset);
    return cv.unpack(ConstBytes(static_cast<const std::byte*>(src),
                                static_cast<std::size_t>(src_size)));
}

void dt_finish(void* state) { delete static_cast<DtState*>(state); }

// --- (layout fingerprint, count) -> shared context cache ----------------

struct CacheKey {
    std::uint64_t fp;
    Count count;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
        return static_cast<std::size_t>(
            k.fp ^ (static_cast<std::uint64_t>(k.count) * 0x9E3779B97F4A7C15ull));
    }
};

constexpr std::size_t kDescCacheCap = 256;

std::mutex g_cache_mu;
std::unordered_map<CacheKey, std::shared_ptr<DtCtx>, CacheKeyHash>& cache_map() {
    static std::unordered_map<CacheKey, std::shared_ptr<DtCtx>, CacheKeyHash> m;
    return m;
}

// Fingerprints hash the layout; equal layouts are interchangeable for
// packing, but a hash collision between different layouts must not alias.
// Verify the cheap invariants plus the full segment list on every hit.
bool same_layout(const dt::TypeRef& a, const dt::TypeRef& b) {
    if (a.get() == b.get()) return true;
    if (a->extent() != b->extent() || a->size() != b->size()) return false;
    const auto& sa = a->segments();
    const auto& sb = b->segments();
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
        if (sa[i].offset != sb[i].offset || sa[i].len != sb[i].len) return false;
    }
    return true;
}

std::shared_ptr<DtCtx> lookup_ctx(const dt::TypeRef& type, Count count) {
    if (!dt::pack_plan_enabled()) return nullptr;
    const std::uint64_t fp = dt::layout_fingerprint(type);
    if (fp == 0) return nullptr;
    const CacheKey key{fp, count};
    std::lock_guard<std::mutex> lk(g_cache_mu);
    auto& map = cache_map();
    if (auto it = map.find(key); it != map.end()) {
        if (same_layout(it->second->type, type)) {
            pack_stats().plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
            trace::instant("p2p", "desc_cache_hit", -1.0, "fp", fp, "count",
                           static_cast<std::uint64_t>(count));
            return it->second;
        }
        // True fingerprint collision: evict the stale entry and rebuild.
        map.erase(it);
    }
    pack_stats().plan_cache_misses.fetch_add(1, std::memory_order_relaxed);
    trace::instant("p2p", "desc_cache_miss", -1.0, "fp", fp, "count",
                   static_cast<std::uint64_t>(count));
    auto ctx = std::make_shared<DtCtx>();
    ctx->type = type;
    ctx->count = count;
    if (map.size() >= kDescCacheCap) map.erase(map.begin());
    map.emplace(key, ctx);
    return ctx;
}

ucx::GenericDesc make_desc(const dt::TypeRef& type, Count count) {
    std::shared_ptr<DtCtx> ctx = lookup_ctx(type, count);
    if (ctx == nullptr) {
        ctx = std::make_shared<DtCtx>();
        ctx->type = type;
        ctx->count = count;
    }
    ucx::GenericDesc g;
    g.ops.start_pack = dt_start_pack;
    g.ops.start_unpack = dt_start_unpack;
    g.ops.packed_size = dt_packed_size;
    g.ops.pack = dt_pack;
    g.ops.unpack = dt_unpack;
    g.ops.finish = dt_finish;
    g.ops.ctx = ctx.get();
    g.ops.inorder = true; // the convertor is cheapest when driven in order
    g.count = count;
    g.keepalive = std::move(ctx);
    return g;
}

} // namespace

ucx::BufferDesc dt_send_desc(const dt::TypeRef& type, const void* buf, Count count) {
    auto g = make_desc(type, count);
    g.send_buf = buf;
    return g;
}

ucx::BufferDesc dt_recv_desc(const dt::TypeRef& type, void* buf, Count count) {
    auto g = make_desc(type, count);
    g.recv_buf = buf;
    return g;
}

std::size_t desc_cache_size() {
    std::lock_guard<std::mutex> lk(g_cache_mu);
    return cache_map().size();
}

void desc_cache_clear() {
    std::lock_guard<std::mutex> lk(g_cache_mu);
    cache_map().clear();
}

} // namespace mpicd::p2p