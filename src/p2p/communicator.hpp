// Communicator: the MPI-like point-to-point interface of the mpicd
// prototype — blocking and nonblocking send/recv over three datatype
// families (raw bytes / derived datatypes / custom datatypes), probe,
// matched probe (Mprobe), and virtual-time access.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "base/time.hpp"
#include "core/custom_type.hpp"
#include "core/engine.hpp"
#include "dt/datatype.hpp"
#include "ucx/worker.hpp"

namespace mpicd::p2p {

class Universe;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

// Completion record of a receive (or send) operation; the analog of
// MPI_Status plus the virtual completion time.
struct MsgStatus {
    Status status = Status::success;
    int source = -1;
    int tag = 0;
    Count bytes = 0;     // payload bytes transferred
    SimTime vtime = 0.0; // virtual completion time at this rank
};

// Probe result (MPI_Probe / MPI_Mprobe analog).
struct ProbeResult {
    int source = -1;
    int tag = 0;
    Count bytes = 0;
};

// Matched-probe message handle (MPI_Message analog).
struct Message {
    ucx::MessageHandle handle;
    ProbeResult info;
    [[nodiscard]] bool valid() const noexcept { return handle.valid(); }
};

class Request {
public:
    Request() = default;

    [[nodiscard]] bool valid() const noexcept { return id_ != ucx::kInvalidRequest; }

    // Nonblocking completion check; progresses the universe once.
    [[nodiscard]] bool test(MsgStatus* out = nullptr);

    // Completion check WITHOUT driving progress. Safe to call from a
    // worker progress hook (see ucx::Worker::add_progress_hook), where
    // re-entering progress() on the same worker would be a no-op and
    // helping peers could recurse into the time-escalation machinery.
    [[nodiscard]] bool poll(MsgStatus* out = nullptr);

    // Progress until complete. Aborts (with a log message) if no progress
    // is possible for a long wall-clock interval — a deadlock in test code.
    MsgStatus wait();

private:
    friend class Communicator;

    bool finalize_locked_completion(ucx::Completion&& comp, MsgStatus* out);

    Universe* uni_ = nullptr;
    ucx::Worker* worker_ = nullptr;
    ucx::RequestId id_ = ucx::kInvalidRequest;
    std::shared_ptr<core::CustomRecvOp> custom_; // deferred unpack, recv side
    bool done_ = false;
    MsgStatus result_;
    Status early_error_ = Status::success; // lowering failed before posting
};

// Widest world the wire tag layout can address: the source rank rides in a
// 16-bit field, so ranks 0..65535 are representable and anything larger
// would silently alias (rank 65536 would encode as rank 0).
inline constexpr int kMaxWorldSize = 1 << 16;

// Top bit of the 16-bit wire-tag context field: set on every collective
// message, clear on every point-to-point message. This carves the tag
// space into two planes that can never match each other, which is the
// structural fix for the historical 0x7FFF0006-class collisions where a
// collective's internal traffic landed on a user tag (see
// docs/COLLECTIVES.md). User-supplied communicator contexts must leave
// the bit clear.
inline constexpr std::uint16_t kCollContextBit = 0x8000;

class Communicator {
public:
    // Ranks/sizes outside the wire tag layout's range are rejected: the
    // communicator is marked invalid and every operation returns
    // Status::err_arg instead of silently truncating the source field.
    Communicator(Universe& uni, ucx::Worker& worker, int rank, int size,
                 std::uint16_t context);

    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int size() const noexcept { return size_; }
    // Construction validity (MPI error-state analog): Status::err_arg when
    // rank/size fell outside the wire tag layout's addressable range.
    [[nodiscard]] Status status() const noexcept { return ctor_status_; }
    // Wire-tag context id. Collective-op trace ids embed it (high word)
    // next to the reserved tag block (low word) so op ids stay unique
    // across communicators sharing one trace.
    [[nodiscard]] std::uint16_t context() const noexcept { return context_; }
    [[nodiscard]] Universe& universe() noexcept { return uni_; }
    [[nodiscard]] ucx::Worker& worker() noexcept { return worker_; }

    // --- Virtual time.
    [[nodiscard]] SimTime now() { return worker_.now(); }
    // Charge locally measured host work (e.g. manual packing in an
    // application) to this rank's virtual clock.
    void advance_time(SimTime dt) { worker_.advance_time(dt); }

    // --- Raw byte messages (MPI_BYTE path; the "baseline" in the paper).
    [[nodiscard]] Request isend_bytes(const void* p, Count n, int dst, int tag);
    [[nodiscard]] Request irecv_bytes(void* p, Count n, int src, int tag);

    // --- Derived datatypes (classic MPI; Open MPI-like engine).
    [[nodiscard]] Request isend(const void* buf, Count count, const dt::TypeRef& type,
                                int dst, int tag);
    [[nodiscard]] Request irecv(void* buf, Count count, const dt::TypeRef& type,
                                int src, int tag);

    // --- Zero-serialization fast path (backend of mpicd::send/recv in
    // p2p/api.hpp; see docs/API.md §7). isend_wire/irecv_wire move a
    // trivially-wireable object as one CONTIG transfer borrowing the user
    // buffer; isend_sized/irecv_sized move a contiguous-resizable payload
    // as a two-entry IOV (staged u64 payload-byte-count + the payload
    // itself, wire-identical to the CustomSerialize<std::vector<U>>
    // lowering for count == 1). All four skip pack-plan compilation,
    // descriptor-cache lookups and the pack/unpack callbacks entirely and
    // account to the fastpath/* counters.
    [[nodiscard]] Request isend_wire(const void* p, Count n, int dst, int tag);
    [[nodiscard]] Request irecv_wire(void* p, Count n, int src, int tag);
    [[nodiscard]] Request isend_sized(const void* payload, Count n, int dst,
                                      int tag);
    // `hdr` receives the sender's 8-byte length header (resized by the
    // call); the caller validates it against the delivered payload after
    // completion.
    [[nodiscard]] Request irecv_sized(std::shared_ptr<ByteVec> hdr, void* payload,
                                      Count n, int src, int tag);

    // --- Custom datatypes (the paper's API).
    [[nodiscard]] Request isend_custom(const void* buf, Count count,
                                       const core::CustomDatatype& type, int dst,
                                       int tag,
                                       core::CustomLowering lowering =
                                           core::CustomLowering::iov);
    [[nodiscard]] Request irecv_custom(void* buf, Count count,
                                       const core::CustomDatatype& type, int src,
                                       int tag,
                                       core::CustomLowering lowering =
                                           core::CustomLowering::iov);

    // --- Blocking wrappers.
    MsgStatus send_bytes(const void* p, Count n, int dst, int tag);
    MsgStatus recv_bytes(void* p, Count n, int src, int tag);
    MsgStatus send(const void* buf, Count count, const dt::TypeRef& type, int dst,
                   int tag);
    MsgStatus recv(void* buf, Count count, const dt::TypeRef& type, int src, int tag);
    MsgStatus send_custom(const void* buf, Count count,
                          const core::CustomDatatype& type, int dst, int tag);
    MsgStatus recv_custom(void* buf, Count count, const core::CustomDatatype& type,
                          int src, int tag);

    // Combined send+receive (MPI_Sendrecv pattern): both operations are
    // posted before either is waited on, so it is deadlock-free when every
    // rank of a cycle calls it.
    MsgStatus sendrecv_bytes(const void* sendbuf, Count sendn, int dst, int sendtag,
                             void* recvbuf, Count recvn, int src, int recvtag);

    // --- Probe family.
    [[nodiscard]] std::optional<ProbeResult> iprobe(int src, int tag);
    [[nodiscard]] ProbeResult probe(int src, int tag); // blocking
    [[nodiscard]] std::optional<Message> improbe(int src, int tag);
    [[nodiscard]] Message mprobe(int src, int tag); // blocking
    [[nodiscard]] Request imrecv(Message& msg, void* p, Count n);

    // --- Collective tag plane (used by src/p2p/coll/; see
    // docs/COLLECTIVES.md). Collective traffic rides wire tags whose
    // context field carries kCollContextBit, so it can never match (or be
    // matched by) any point-to-point operation — including a user irecv
    // with kAnyTag/kAnySource, whose mask still pins the context field.
    //
    // Tags come from a per-communicator epoch counter: every rank enters
    // the communicator's collectives in the same order (the usual MPI
    // ordering requirement), so independently incremented counters agree
    // across ranks without any exchange. Each collective reserves a
    // contiguous block of `n` tags (its internal rounds/phases index into
    // the block) and the counter wraps harmlessly at 2^32: concurrent
    // outstanding collectives never span anywhere near 4 billion tags.
    [[nodiscard]] std::uint32_t coll_reserve_tags(std::uint32_t n);
    [[nodiscard]] Request coll_isend_bytes(const void* p, Count n, int dst,
                                           std::uint32_t ctag);
    [[nodiscard]] Request coll_irecv_bytes(void* p, Count n, int src,
                                           std::uint32_t ctag);
    [[nodiscard]] Request coll_isend(const void* buf, Count count,
                                     const dt::TypeRef& type, int dst,
                                     std::uint32_t ctag);
    [[nodiscard]] Request coll_irecv(void* buf, Count count,
                                     const dt::TypeRef& type, int src,
                                     std::uint32_t ctag);
    [[nodiscard]] Request coll_isend_custom(const void* buf, Count count,
                                            const core::CustomDatatype& type,
                                            int dst, std::uint32_t ctag);
    [[nodiscard]] Request coll_irecv_custom(void* buf, Count count,
                                            const core::CustomDatatype& type,
                                            int src, std::uint32_t ctag);

private:
    friend class Request;

    [[nodiscard]] ucx::Tag encode_send_tag(int tag) const;
    void encode_recv_tag(int src, int tag, ucx::Tag* t, ucx::Tag* mask) const;
    // Collective-plane encoders: context | kCollContextBit, full 32-bit
    // unsigned collective tag in the user field.
    [[nodiscard]] ucx::Tag encode_coll_send_tag(std::uint32_t ctag) const;
    void encode_coll_recv_tag(int src, std::uint32_t ctag, ucx::Tag* t,
                              ucx::Tag* mask) const;
    [[nodiscard]] Status check_coll_peer(int peer) const;
    // Shared custom-datatype lowering used by both tag planes.
    [[nodiscard]] Request isend_custom_wiretag(const void* buf, Count count,
                                               const core::CustomDatatype& type,
                                               int dst, ucx::Tag wire_tag,
                                               core::CustomLowering lowering);
    [[nodiscard]] Request irecv_custom_wiretag(void* buf, Count count,
                                               const core::CustomDatatype& type,
                                               ucx::Tag t, ucx::Tag mask,
                                               core::CustomLowering lowering);
    // Argument validation at tag-encode time (see the constructor note):
    // negative user tags would alias large positives in the 32-bit user
    // field, out-of-range peers would alias through the 16-bit source
    // field.
    [[nodiscard]] Status check_send(int dst, int tag) const;
    [[nodiscard]] Status check_recv(int src, int tag) const;
    Request make_request(ucx::RequestId id);
    Request make_error_request(Status st);

    Universe& uni_;
    ucx::Worker& worker_;
    int rank_;
    int size_;
    std::uint16_t context_;
    Status ctor_status_ = Status::success; // err_arg when rank/size overflow
    // Collective tag epoch (see coll_reserve_tags). Each rank holds its own
    // Communicator object, so this is a per-(rank, communicator) counter
    // that stays in lockstep across ranks by the collective-ordering rule.
    std::atomic<std::uint32_t> coll_epoch_{0};
};

// Wait for every request; returns the first non-success status (all
// requests are waited regardless).
[[nodiscard]] Status wait_all(std::span<Request> requests);

// Decode the source rank / user tag from a wire tag (used internally and
// by tests).
[[nodiscard]] int decode_tag_source(ucx::Tag t) noexcept;
[[nodiscard]] int decode_tag_user(ucx::Tag t) noexcept;

} // namespace mpicd::p2p
