#include "p2p/runner.hpp"

#include <thread>
#include <vector>

namespace mpicd::p2p {

void run_world(int nranks, const std::function<void(Communicator&)>& fn,
               netsim::WireParams params) {
    Universe uni(nranks, params);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        threads.emplace_back([&uni, &fn, r] { fn(uni.comm(r)); });
    }
    for (auto& t : threads) t.join();
}

} // namespace mpicd::p2p
