#include "p2p/collectives.hpp"

#include <cstring>
#include <vector>

namespace mpicd::p2p {

namespace {

// Binomial-tree schedule shared by the bcast variants: `recv_from` is -1
// for the root; `send_to` lists children in send order (real ranks).
struct BcastSchedule {
    int recv_from = -1;
    std::vector<int> send_to;
};

BcastSchedule bcast_schedule(int rank, int size, int root) {
    BcastSchedule s;
    const int vrank = (rank - root + size) % size;
    int mask = 1;
    while (mask < size) {
        if (vrank & mask) {
            s.recv_from = ((vrank - mask) + root) % size;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < size) {
            s.send_to.push_back(((vrank + mask) % size + root) % size);
        }
        mask >>= 1;
    }
    return s;
}

template <typename T>
void apply_op(T* acc, const T* in, Count count, ReduceOp op) {
    for (Count i = 0; i < count; ++i) {
        switch (op) {
            case ReduceOp::sum: acc[i] += in[i]; break;
            case ReduceOp::min: acc[i] = std::min(acc[i], in[i]); break;
            case ReduceOp::max: acc[i] = std::max(acc[i], in[i]); break;
        }
    }
}

// reduce-to-root + bcast implementation of allreduce. Logarithmic fan-in
// matters little at the simulated scale; correctness and simplicity win.
template <typename T>
Status allreduce_impl(Communicator& comm, T* data, Count count, ReduceOp op,
                      int tag) {
    const int rank = comm.rank();
    const int size = comm.size();
    const Count bytes = count * static_cast<Count>(sizeof(T));
    if (rank == 0) {
        std::vector<T> incoming(static_cast<std::size_t>(count));
        for (int src = 1; src < size; ++src) {
            const auto st = comm.recv_bytes(incoming.data(), bytes, src, tag);
            MPICD_RETURN_IF_ERROR(st.status);
            apply_op(data, incoming.data(), count, op);
        }
    } else {
        MPICD_RETURN_IF_ERROR(comm.send_bytes(data, bytes, 0, tag).status);
    }
    return bcast_bytes(comm, data, bytes, /*root=*/0, tag + 1);
}

} // namespace

Status barrier(Communicator& comm, int tag) {
    const int rank = comm.rank();
    const int size = comm.size();
    char token = 0;
    for (int k = 1, round = 0; k < size; k <<= 1, ++round) {
        const int to = (rank + k) % size;
        const int from = (rank - k + size) % size;
        auto rr = comm.irecv_bytes(&token, 1, from, tag + round);
        auto rs = comm.isend_bytes(&token, 1, to, tag + round);
        MPICD_RETURN_IF_ERROR(rs.wait().status);
        MPICD_RETURN_IF_ERROR(rr.wait().status);
    }
    return Status::success;
}

Status bcast_bytes(Communicator& comm, void* buf, Count n, int root, int tag) {
    const auto sched = bcast_schedule(comm.rank(), comm.size(), root);
    if (sched.recv_from >= 0) {
        MPICD_RETURN_IF_ERROR(comm.recv_bytes(buf, n, sched.recv_from, tag).status);
    }
    for (const int dst : sched.send_to) {
        MPICD_RETURN_IF_ERROR(comm.send_bytes(buf, n, dst, tag).status);
    }
    return Status::success;
}

Status bcast(Communicator& comm, void* buf, Count count, const dt::TypeRef& type,
             int root, int tag) {
    if (type == nullptr || !type->committed()) return Status::err_not_committed;
    const auto sched = bcast_schedule(comm.rank(), comm.size(), root);
    if (sched.recv_from >= 0) {
        MPICD_RETURN_IF_ERROR(
            comm.irecv(buf, count, type, sched.recv_from, tag).wait().status);
    }
    for (const int dst : sched.send_to) {
        MPICD_RETURN_IF_ERROR(comm.isend(buf, count, type, dst, tag).wait().status);
    }
    return Status::success;
}

Status bcast_custom(Communicator& comm, void* buf, Count count,
                    const core::CustomDatatype& type, int root, int tag) {
    const auto sched = bcast_schedule(comm.rank(), comm.size(), root);
    if (sched.recv_from >= 0) {
        MPICD_RETURN_IF_ERROR(
            comm.irecv_custom(buf, count, type, sched.recv_from, tag).wait().status);
    }
    for (const int dst : sched.send_to) {
        MPICD_RETURN_IF_ERROR(
            comm.isend_custom(buf, count, type, dst, tag).wait().status);
    }
    return Status::success;
}

Status gather_bytes(Communicator& comm, const void* send, Count n, void* recv,
                    int root, int tag) {
    const int rank = comm.rank();
    const int size = comm.size();
    if (rank != root) {
        return comm.send_bytes(send, n, root, tag).status;
    }
    if (recv == nullptr && n > 0) return Status::err_buffer;
    auto* out = static_cast<std::byte*>(recv);
    std::memcpy(out + static_cast<std::size_t>(rank) * static_cast<std::size_t>(n),
                send, static_cast<std::size_t>(n));
    // Post every receive up front so arrival order cannot deadlock.
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size - 1));
    for (int src = 0; src < size; ++src) {
        if (src == root) continue;
        reqs.push_back(comm.irecv_bytes(
            out + static_cast<std::size_t>(src) * static_cast<std::size_t>(n), n, src,
            tag));
    }
    for (auto& rq : reqs) MPICD_RETURN_IF_ERROR(rq.wait().status);
    return Status::success;
}

Status allreduce(Communicator& comm, double* data, Count count, ReduceOp op,
                 int tag) {
    return allreduce_impl(comm, data, count, op, tag);
}

Status allreduce(Communicator& comm, std::int64_t* data, Count count, ReduceOp op,
                 int tag) {
    return allreduce_impl(comm, data, count, op, tag);
}

} // namespace mpicd::p2p
