#include "p2p/communicator.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "base/log.hpp"
#include "base/trace.hpp"
#include "core/traits.hpp"
#include "p2p/dt_bridge.hpp"
#include "p2p/universe.hpp"

namespace mpicd::p2p {

namespace {

// Wire tag layout: [16-bit context | 16-bit source rank | 32-bit user tag].
constexpr int kSrcShift = 32;
constexpr int kCtxShift = 48;
constexpr ucx::Tag kUserMask = 0xFFFFFFFFull;
constexpr ucx::Tag kSrcMask = 0xFFFFull << kSrcShift;
constexpr ucx::Tag kCtxMask = 0xFFFFull << kCtxShift;

// Wall-clock deadlock guard for wait() loops in test code.
constexpr auto kWaitDeadline = std::chrono::seconds(120);

} // namespace

int decode_tag_source(ucx::Tag t) noexcept {
    return static_cast<int>((t & kSrcMask) >> kSrcShift);
}

int decode_tag_user(ucx::Tag t) noexcept {
    return static_cast<int>(t & kUserMask);
}

// ---------------------------------------------------------------------------
// Request

bool Request::finalize_locked_completion(ucx::Completion&& comp, MsgStatus* out) {
    result_.status = comp.status;
    result_.bytes = comp.received_len;
    result_.source = decode_tag_source(comp.sender_tag);
    result_.tag = decode_tag_user(comp.sender_tag);
    result_.vtime = comp.vtime;
    if (custom_ != nullptr) {
        // Deferred custom unpack: run it under the message id the wire
        // events were attributed to, so the engine's custom_unpack span
        // lands in the same per-message trace group.
        const trace::MsgScope msg_scope(comp.msg_id);
        const Status st = custom_->finish(*worker_);
        if (ok(result_.status) && !ok(st)) result_.status = st;
        result_.vtime = worker_->now();
        custom_.reset();
    }
    done_ = true;
    if (out != nullptr) *out = result_;
    return true;
}

bool Request::poll(MsgStatus* out) {
    if (done_) {
        if (out != nullptr) *out = result_;
        return true;
    }
    if (!ok(early_error_)) {
        result_.status = early_error_;
        done_ = true;
        if (out != nullptr) *out = result_;
        return true;
    }
    if (!valid()) {
        result_.status = Status::err_arg;
        done_ = true;
        if (out != nullptr) *out = result_;
        return true;
    }
    if (!worker_->is_complete(id_)) return false;
    return finalize_locked_completion(worker_->take_completion(id_), out);
}

bool Request::test(MsgStatus* out) {
    if (poll(out)) return true;
    uni_->progress(worker_->endpoint());
    return poll(out);
}

MsgStatus Request::wait() {
    MsgStatus st;
    const auto deadline = std::chrono::steady_clock::now() + kWaitDeadline;
    int idle = 0;
    while (!test(&st)) {
        if (++idle > 1024) {
            std::this_thread::yield();
            idle = 0;
            if (std::chrono::steady_clock::now() > deadline) {
                MPICD_LOG_ERROR("Request::wait deadlocked (no progress for 120 s)");
                std::abort();
            }
        }
    }
    return st;
}

// ---------------------------------------------------------------------------
// Communicator

Communicator::Communicator(Universe& uni, ucx::Worker& worker, int rank, int size,
                           std::uint16_t context)
    : uni_(uni), worker_(worker), rank_(rank), size_(size), context_(context) {
    // The 16-bit source field addresses ranks 0..65535; a wider world (or a
    // negative/out-of-world rank) would alias through the mask in
    // encode_send_tag. Mark the communicator invalid instead.
    if (rank < 0 || size <= 0 || rank >= size || size > kMaxWorldSize)
        ctor_status_ = Status::err_arg;
    // The top context bit selects the collective plane; a user context
    // carrying it would let point-to-point traffic alias collective
    // internals — the exact bug class the plane exists to prevent.
    if ((context & kCollContextBit) != 0) ctor_status_ = Status::err_arg;
}

Status Communicator::check_send(int dst, int tag) const {
    if (!ok(ctor_status_)) return ctor_status_;
    if (dst < 0 || dst >= size_) return Status::err_arg;
    // A negative user tag would alias a large positive one through the
    // 32-bit user field (kAnyTag is only meaningful on the receive side).
    if (tag < 0) return Status::err_arg;
    return Status::success;
}

Status Communicator::check_recv(int src, int tag) const {
    if (!ok(ctor_status_)) return ctor_status_;
    if (src != kAnySource && (src < 0 || src >= size_)) return Status::err_arg;
    if (tag != kAnyTag && tag < 0) return Status::err_arg;
    return Status::success;
}

ucx::Tag Communicator::encode_send_tag(int tag) const {
    return (static_cast<ucx::Tag>(context_) << kCtxShift) |
           (static_cast<ucx::Tag>(static_cast<std::uint16_t>(rank_)) << kSrcShift) |
           (static_cast<ucx::Tag>(static_cast<std::uint32_t>(tag)) & kUserMask);
}

void Communicator::encode_recv_tag(int src, int tag, ucx::Tag* t, ucx::Tag* mask) const {
    ucx::Tag m = kCtxMask;
    ucx::Tag v = static_cast<ucx::Tag>(context_) << kCtxShift;
    if (src != kAnySource) {
        m |= kSrcMask;
        v |= static_cast<ucx::Tag>(static_cast<std::uint16_t>(src)) << kSrcShift;
    }
    if (tag != kAnyTag) {
        m |= kUserMask;
        v |= static_cast<ucx::Tag>(static_cast<std::uint32_t>(tag)) & kUserMask;
    }
    *t = v;
    *mask = m;
}

ucx::Tag Communicator::encode_coll_send_tag(std::uint32_t ctag) const {
    const auto ctx = static_cast<std::uint16_t>(context_ | kCollContextBit);
    return (static_cast<ucx::Tag>(ctx) << kCtxShift) |
           (static_cast<ucx::Tag>(static_cast<std::uint16_t>(rank_)) << kSrcShift) |
           static_cast<ucx::Tag>(ctag);
}

void Communicator::encode_coll_recv_tag(int src, std::uint32_t ctag, ucx::Tag* t,
                                        ucx::Tag* mask) const {
    // Collective receives are always fully pinned: known source, known
    // collective tag — wildcards have no business on this plane.
    const auto ctx = static_cast<std::uint16_t>(context_ | kCollContextBit);
    *t = (static_cast<ucx::Tag>(ctx) << kCtxShift) |
         (static_cast<ucx::Tag>(static_cast<std::uint16_t>(src)) << kSrcShift) |
         static_cast<ucx::Tag>(ctag);
    *mask = kCtxMask | kSrcMask | kUserMask;
}

Status Communicator::check_coll_peer(int peer) const {
    if (!ok(ctor_status_)) return ctor_status_;
    if (peer < 0 || peer >= size_) return Status::err_arg;
    return Status::success;
}

std::uint32_t Communicator::coll_reserve_tags(std::uint32_t n) {
    return coll_epoch_.fetch_add(n, std::memory_order_relaxed);
}

Request Communicator::coll_isend_bytes(const void* p, Count n, int dst,
                                       std::uint32_t ctag) {
    if (n < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_coll_peer(dst); !ok(st))
        return make_error_request(st);
    return make_request(worker_.tag_send(dst, encode_coll_send_tag(ctag),
                                         ucx::make_contig_send(p, n)));
}

Request Communicator::coll_irecv_bytes(void* p, Count n, int src,
                                       std::uint32_t ctag) {
    if (n < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_coll_peer(src); !ok(st))
        return make_error_request(st);
    ucx::Tag t = 0, mask = 0;
    encode_coll_recv_tag(src, ctag, &t, &mask);
    return make_request(worker_.tag_recv(t, mask, ucx::make_contig_recv(p, n)));
}

Request Communicator::coll_isend(const void* buf, Count count,
                                 const dt::TypeRef& type, int dst,
                                 std::uint32_t ctag) {
    if (type == nullptr || count < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_coll_peer(dst); !ok(st))
        return make_error_request(st);
    if (!type->committed()) return make_error_request(Status::err_not_committed);
    if (type->is_contiguous()) {
        return make_request(
            worker_.tag_send(dst, encode_coll_send_tag(ctag),
                             ucx::make_contig_send(buf, type->size() * count)));
    }
    return make_request(worker_.tag_send(dst, encode_coll_send_tag(ctag),
                                         dt_send_desc(type, buf, count)));
}

Request Communicator::coll_irecv(void* buf, Count count, const dt::TypeRef& type,
                                 int src, std::uint32_t ctag) {
    if (type == nullptr || count < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_coll_peer(src); !ok(st))
        return make_error_request(st);
    if (!type->committed()) return make_error_request(Status::err_not_committed);
    ucx::Tag t = 0, mask = 0;
    encode_coll_recv_tag(src, ctag, &t, &mask);
    if (type->is_contiguous()) {
        return make_request(worker_.tag_recv(
            t, mask, ucx::make_contig_recv(buf, type->size() * count)));
    }
    return make_request(worker_.tag_recv(t, mask, dt_recv_desc(type, buf, count)));
}

Request Communicator::coll_isend_custom(const void* buf, Count count,
                                        const core::CustomDatatype& type, int dst,
                                        std::uint32_t ctag) {
    if (const Status st = check_coll_peer(dst); !ok(st))
        return make_error_request(st);
    return isend_custom_wiretag(buf, count, type, dst, encode_coll_send_tag(ctag),
                                core::CustomLowering::iov);
}

Request Communicator::coll_irecv_custom(void* buf, Count count,
                                        const core::CustomDatatype& type, int src,
                                        std::uint32_t ctag) {
    if (const Status st = check_coll_peer(src); !ok(st))
        return make_error_request(st);
    ucx::Tag t = 0, mask = 0;
    encode_coll_recv_tag(src, ctag, &t, &mask);
    return irecv_custom_wiretag(buf, count, type, t, mask,
                                core::CustomLowering::iov);
}

Request Communicator::make_request(ucx::RequestId id) {
    Request rq;
    rq.uni_ = &uni_;
    rq.worker_ = &worker_;
    rq.id_ = id;
    return rq;
}

Request Communicator::make_error_request(Status st) {
    Request rq;
    rq.uni_ = &uni_;
    rq.worker_ = &worker_;
    rq.early_error_ = st;
    return rq;
}

Request Communicator::isend_bytes(const void* p, Count n, int dst, int tag) {
    if (n < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_send(dst, tag); !ok(st))
        return make_error_request(st);
    return make_request(
        worker_.tag_send(dst, encode_send_tag(tag), ucx::make_contig_send(p, n)));
}

Request Communicator::irecv_bytes(void* p, Count n, int src, int tag) {
    if (n < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_recv(src, tag); !ok(st))
        return make_error_request(st);
    ucx::Tag t = 0, mask = 0;
    encode_recv_tag(src, tag, &t, &mask);
    return make_request(worker_.tag_recv(t, mask, ucx::make_contig_recv(p, n)));
}

// ---------------------------------------------------------------------------
// Zero-serialization fast path (see docs/API.md §7).

namespace {

constexpr Count kSizedHeaderBytes =
    static_cast<Count>(sizeof(std::uint64_t));

void note_fastpath(core::WireClass cls, Count payload_bytes, bool send) {
    auto& fp = core::fastpath_counters();
    if (cls == core::WireClass::trivially_wireable)
        fp.hits_trivial.fetch_add(1, std::memory_order_relaxed);
    else
        fp.hits_resizable.fetch_add(1, std::memory_order_relaxed);
    fp.bytes_bypassed.fetch_add(static_cast<std::uint64_t>(payload_bytes),
                                std::memory_order_relaxed);
    // One lowering (state/query/pack plan work) skipped per operation.
    fp.plan_compiles_avoided.fetch_add(1, std::memory_order_relaxed);
    trace::instant("p2p", send ? "fastpath_send" : "fastpath_recv", -1.0, "class",
                   static_cast<std::uint64_t>(cls), "bytes",
                   static_cast<std::uint64_t>(payload_bytes));
}

} // namespace

Request Communicator::isend_wire(const void* p, Count n, int dst, int tag) {
    if (n < 0 || (n > 0 && p == nullptr)) return make_error_request(Status::err_arg);
    if (const Status st = check_send(dst, tag); !ok(st))
        return make_error_request(st);
    note_fastpath(core::WireClass::trivially_wireable, n, /*send=*/true);
    return make_request(
        worker_.tag_send(dst, encode_send_tag(tag), ucx::make_contig_send(p, n)));
}

Request Communicator::irecv_wire(void* p, Count n, int src, int tag) {
    if (n < 0 || (n > 0 && p == nullptr)) return make_error_request(Status::err_arg);
    if (const Status st = check_recv(src, tag); !ok(st))
        return make_error_request(st);
    note_fastpath(core::WireClass::trivially_wireable, n, /*send=*/false);
    ucx::Tag t = 0, mask = 0;
    encode_recv_tag(src, tag, &t, &mask);
    return make_request(worker_.tag_recv(t, mask, ucx::make_contig_recv(p, n)));
}

Request Communicator::isend_sized(const void* payload, Count n, int dst, int tag) {
    if (n < 0 || (n > 0 && payload == nullptr))
        return make_error_request(Status::err_arg);
    if (const Status st = check_send(dst, tag); !ok(st))
        return make_error_request(st);
    note_fastpath(core::WireClass::contiguous_resizable, n, /*send=*/true);
    ucx::IovDesc iov;
    iov.backing =
        std::make_shared<ByteVec>(static_cast<std::size_t>(kSizedHeaderBytes));
    const std::uint64_t len = static_cast<std::uint64_t>(n);
    std::memcpy(iov.backing->data(), &len, sizeof len);
    iov.entries.push_back({iov.backing->data(), kSizedHeaderBytes});
    // The payload entry borrows the user buffer — zero send-side copies.
    if (n > 0) iov.entries.push_back({const_cast<void*>(payload), n});
    return make_request(
        worker_.tag_send(dst, encode_send_tag(tag), std::move(iov)));
}

Request Communicator::irecv_sized(std::shared_ptr<ByteVec> hdr, void* payload,
                                  Count n, int src, int tag) {
    if (hdr == nullptr || n < 0 || (n > 0 && payload == nullptr))
        return make_error_request(Status::err_arg);
    if (const Status st = check_recv(src, tag); !ok(st))
        return make_error_request(st);
    note_fastpath(core::WireClass::contiguous_resizable, n, /*send=*/false);
    hdr->resize(static_cast<std::size_t>(kSizedHeaderBytes));
    ucx::IovDesc iov;
    iov.backing = std::move(hdr);
    iov.entries.push_back({iov.backing->data(), kSizedHeaderBytes});
    if (n > 0) iov.entries.push_back({payload, n});
    ucx::Tag t = 0, mask = 0;
    encode_recv_tag(src, tag, &t, &mask);
    return make_request(worker_.tag_recv(t, mask, std::move(iov)));
}

Request Communicator::isend(const void* buf, Count count, const dt::TypeRef& type,
                            int dst, int tag) {
    if (type == nullptr || count < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_send(dst, tag); !ok(st))
        return make_error_request(st);
    if (!type->committed()) return make_error_request(Status::err_not_committed);
    if (type->is_contiguous()) {
        return make_request(worker_.tag_send(
            dst, encode_send_tag(tag),
            ucx::make_contig_send(buf, type->size() * count)));
    }
    return make_request(
        worker_.tag_send(dst, encode_send_tag(tag), dt_send_desc(type, buf, count)));
}

Request Communicator::irecv(void* buf, Count count, const dt::TypeRef& type, int src,
                            int tag) {
    if (type == nullptr || count < 0) return make_error_request(Status::err_arg);
    if (const Status st = check_recv(src, tag); !ok(st))
        return make_error_request(st);
    if (!type->committed()) return make_error_request(Status::err_not_committed);
    ucx::Tag t = 0, mask = 0;
    encode_recv_tag(src, tag, &t, &mask);
    if (type->is_contiguous()) {
        return make_request(
            worker_.tag_recv(t, mask, ucx::make_contig_recv(buf, type->size() * count)));
    }
    return make_request(worker_.tag_recv(t, mask, dt_recv_desc(type, buf, count)));
}

Request Communicator::isend_custom_wiretag(const void* buf, Count count,
                                           const core::CustomDatatype& type,
                                           int dst, ucx::Tag wire_tag,
                                           core::CustomLowering lowering) {
    // Allocate the message id before lowering so the engine's pack/lowering
    // spans and the transport's wire events all carry one id (tag_send
    // adopts an open scope instead of allocating its own).
    const trace::MsgScope msg_scope(trace::next_msg_id());
    ucx::BufferDesc desc;
    const Status st = core::lower_custom_send(type, buf, count, worker_, &desc, lowering);
    if (!ok(st)) return make_error_request(st);
    return make_request(worker_.tag_send(dst, wire_tag, std::move(desc)));
}

Request Communicator::irecv_custom_wiretag(void* buf, Count count,
                                           const core::CustomDatatype& type,
                                           ucx::Tag t, ucx::Tag mask,
                                           core::CustomLowering lowering) {
    auto op = std::make_shared<core::CustomRecvOp>();
    const Status st =
        core::lower_custom_recv(type, buf, count, worker_, op.get(), lowering);
    if (!ok(st)) return make_error_request(st);
    Request rq = make_request(worker_.tag_recv(t, mask, std::move(op->desc())));
    rq.custom_ = std::move(op);
    return rq;
}

Request Communicator::isend_custom(const void* buf, Count count,
                                   const core::CustomDatatype& type, int dst, int tag,
                                   core::CustomLowering lowering) {
    if (const Status st = check_send(dst, tag); !ok(st))
        return make_error_request(st);
    return isend_custom_wiretag(buf, count, type, dst, encode_send_tag(tag),
                                lowering);
}

Request Communicator::irecv_custom(void* buf, Count count,
                                   const core::CustomDatatype& type, int src, int tag,
                                   core::CustomLowering lowering) {
    if (const Status st = check_recv(src, tag); !ok(st))
        return make_error_request(st);
    ucx::Tag t = 0, mask = 0;
    encode_recv_tag(src, tag, &t, &mask);
    return irecv_custom_wiretag(buf, count, type, t, mask, lowering);
}

MsgStatus Communicator::send_bytes(const void* p, Count n, int dst, int tag) {
    return isend_bytes(p, n, dst, tag).wait();
}
MsgStatus Communicator::recv_bytes(void* p, Count n, int src, int tag) {
    return irecv_bytes(p, n, src, tag).wait();
}
MsgStatus Communicator::send(const void* buf, Count count, const dt::TypeRef& type,
                             int dst, int tag) {
    return isend(buf, count, type, dst, tag).wait();
}
MsgStatus Communicator::recv(void* buf, Count count, const dt::TypeRef& type, int src,
                             int tag) {
    return irecv(buf, count, type, src, tag).wait();
}
MsgStatus Communicator::send_custom(const void* buf, Count count,
                                    const core::CustomDatatype& type, int dst,
                                    int tag) {
    return isend_custom(buf, count, type, dst, tag).wait();
}
MsgStatus Communicator::recv_custom(void* buf, Count count,
                                    const core::CustomDatatype& type, int src,
                                    int tag) {
    return irecv_custom(buf, count, type, src, tag).wait();
}

MsgStatus Communicator::sendrecv_bytes(const void* sendbuf, Count sendn, int dst,
                                       int sendtag, void* recvbuf, Count recvn,
                                       int src, int recvtag) {
    Request rr = irecv_bytes(recvbuf, recvn, src, recvtag);
    Request rs = isend_bytes(sendbuf, sendn, dst, sendtag);
    const MsgStatus recv_st = rr.wait();
    const MsgStatus send_st = rs.wait();
    if (!ok(recv_st.status)) return recv_st;
    if (!ok(send_st.status)) {
        MsgStatus st = recv_st;
        st.status = send_st.status;
        return st;
    }
    return recv_st;
}

Status wait_all(std::span<Request> requests) {
    Status first = Status::success;
    for (auto& rq : requests) {
        const auto st = rq.wait();
        if (ok(first) && !ok(st.status)) first = st.status;
    }
    return first;
}

std::optional<ProbeResult> Communicator::iprobe(int src, int tag) {
    if (!ok(check_recv(src, tag))) return std::nullopt;
    uni_.progress(worker_.endpoint());
    ucx::Tag t = 0, mask = 0;
    encode_recv_tag(src, tag, &t, &mask);
    const auto info = worker_.probe(t, mask);
    if (!info) return std::nullopt;
    return ProbeResult{decode_tag_source(info->tag), decode_tag_user(info->tag),
                       info->total_len};
}

ProbeResult Communicator::probe(int src, int tag) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    int idle = 0;
    while (true) {
        if (auto r = iprobe(src, tag)) return *r;
        if (++idle > 1024) {
            std::this_thread::yield();
            idle = 0;
            if (std::chrono::steady_clock::now() > deadline) {
                MPICD_LOG_ERROR("probe deadlocked (no matching message for 120 s)");
                std::abort();
            }
        }
    }
}

std::optional<Message> Communicator::improbe(int src, int tag) {
    if (!ok(check_recv(src, tag))) return std::nullopt;
    uni_.progress(worker_.endpoint());
    ucx::Tag t = 0, mask = 0;
    encode_recv_tag(src, tag, &t, &mask);
    const auto handle = worker_.mprobe(t, mask);
    if (!handle) return std::nullopt;
    Message msg;
    msg.handle = *handle;
    msg.info = ProbeResult{decode_tag_source(handle->info.tag),
                           decode_tag_user(handle->info.tag), handle->info.total_len};
    return msg;
}

Message Communicator::mprobe(int src, int tag) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    int idle = 0;
    while (true) {
        if (auto m = improbe(src, tag)) return *m;
        if (++idle > 1024) {
            std::this_thread::yield();
            idle = 0;
            if (std::chrono::steady_clock::now() > deadline) {
                MPICD_LOG_ERROR("mprobe deadlocked (no matching message for 120 s)");
                std::abort();
            }
        }
    }
}

Request Communicator::imrecv(Message& msg, void* p, Count n) {
    if (!msg.valid() || n < 0) return make_error_request(Status::err_arg);
    const ucx::RequestId id = worker_.imrecv(msg.handle, ucx::make_contig_recv(p, n));
    msg.handle = ucx::MessageHandle{};
    if (id == ucx::kInvalidRequest) return make_error_request(Status::err_arg);
    return make_request(id);
}

} // namespace mpicd::p2p
