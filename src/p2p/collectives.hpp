// Collective operations — the paper's future-work extension (§VIII: "We
// also leave the integration with collective operations as future work").
//
// Blocking wrappers around the nonblocking collectives in
// p2p/coll/nonblocking.hpp; see that header (and docs/COLLECTIVES.md) for
// the algorithms and the topology-aware selection. The v-variants
// (per-rank variable counts) live in p2p/coll/vcoll.hpp.
//
// All collective traffic runs on a reserved tag context
// (kCollContextBit), so it can never collide with point-to-point
// traffic on ANY user tag — the tag parameters the historical API took
// (and the 0x7FFF0000-window convention they implied) are gone.
//
// Custom datatypes are supported for bcast (every non-root receives with
// its own custom type, so the receive-side size contract of §VI holds);
// reductions over custom types would need the predefined-type information
// the paper discusses in §VI and are intentionally not offered.
//
// All collectives here block until completion and must be entered by
// every rank of the universe in the same order (they progress the fabric
// internally).
#pragma once

#include "p2p/coll/nonblocking.hpp"

namespace mpicd::p2p {

// Synchronize all ranks (dissemination barrier).
[[nodiscard]] Status barrier(Communicator& comm);

// Broadcast `n` raw bytes from `root` (binomial tree; hierarchical on
// two-level topologies).
[[nodiscard]] Status bcast_bytes(Communicator& comm, void* buf, Count n, int root);

// Broadcast `count` elements of a committed derived datatype from `root`.
[[nodiscard]] Status bcast(Communicator& comm, void* buf, Count count,
                           const dt::TypeRef& type, int root);

// Broadcast a custom-datatype buffer from `root`. Every rank passes its
// own (pre-shaped) object; non-roots receive into it.
[[nodiscard]] Status bcast_custom(Communicator& comm, void* buf, Count count,
                                  const core::CustomDatatype& type, int root);

// Gather `n` bytes from every rank into `recv` (rank i's block at i*n) at
// the root; `recv` may be null on non-roots (and everywhere when n == 0).
[[nodiscard]] Status gather_bytes(Communicator& comm, const void* send, Count n,
                                  void* recv, int root);

// Element-wise allreduce over doubles / int64 (binomial-tree reduction to
// rank 0 followed by a binomial broadcast — NOT recursive doubling; see
// docs/COLLECTIVES.md for the cost model and the NaN semantics of
// ReduceOp::min/max, which follow std::min/std::max).
[[nodiscard]] Status allreduce(Communicator& comm, double* data, Count count,
                               ReduceOp op);
[[nodiscard]] Status allreduce(Communicator& comm, std::int64_t* data, Count count,
                               ReduceOp op);

} // namespace mpicd::p2p
