// Collective operations — the paper's future-work extension (§VIII: "We
// also leave the integration with collective operations as future work").
//
// This module provides the standard set over contiguous byte payloads and
// derived datatypes, built from point-to-point primitives with the usual
// logarithmic algorithms:
//   barrier     dissemination
//   bcast       binomial tree
//   gather      linear fan-in to the root
//   allreduce   recursive doubling (doubles / int64, sum/min/max)
//
// Custom datatypes are supported for bcast (every non-root receives with
// its own custom type, so the receive-side size contract of §VI holds);
// reductions over custom types would need the predefined-type information
// the paper discusses in §VI and are intentionally not offered.
//
// All collectives are blocking and must be entered by every rank of the
// universe (they progress the fabric internally).
#pragma once

#include "core/custom_type.hpp"
#include "p2p/communicator.hpp"

namespace mpicd::p2p {

enum class ReduceOp { sum, min, max };

// Synchronize all ranks (dissemination barrier).
[[nodiscard]] Status barrier(Communicator& comm, int tag = 0x7FFF0000);

// Broadcast `n` raw bytes from `root` (binomial tree).
[[nodiscard]] Status bcast_bytes(Communicator& comm, void* buf, Count n, int root,
                                 int tag = 0x7FFF0001);

// Broadcast `count` elements of a committed derived datatype from `root`.
[[nodiscard]] Status bcast(Communicator& comm, void* buf, Count count,
                           const dt::TypeRef& type, int root, int tag = 0x7FFF0002);

// Broadcast a custom-datatype buffer from `root`. Every rank passes its
// own (pre-shaped) object; non-roots receive into it.
[[nodiscard]] Status bcast_custom(Communicator& comm, void* buf, Count count,
                                  const core::CustomDatatype& type, int root,
                                  int tag = 0x7FFF0003);

// Gather `n` bytes from every rank into `recv` (rank i's block at i*n) at
// the root; `recv` may be null on non-roots.
[[nodiscard]] Status gather_bytes(Communicator& comm, const void* send, Count n,
                                  void* recv, int root, int tag = 0x7FFF0004);

// Element-wise allreduce over doubles / int64 (recursive doubling with a
// linear fallback for non-power-of-two stragglers).
[[nodiscard]] Status allreduce(Communicator& comm, double* data, Count count,
                               ReduceOp op, int tag = 0x7FFF0005);
[[nodiscard]] Status allreduce(Communicator& comm, std::int64_t* data, Count count,
                               ReduceOp op, int tag = 0x7FFF0006);

} // namespace mpicd::p2p
