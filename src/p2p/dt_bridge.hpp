// Bridge from the derived-datatype engine (dt::Convertor) to the
// transport's generic-datatype callbacks. This is how "Open MPI style"
// derived-datatype sends work in this library: non-contiguous types are
// packed/unpacked through the convertor, pipelined by the transport — the
// baseline the paper's custom API is compared against.
#pragma once

#include <memory>

#include "dt/datatype.hpp"
#include "ucx/datatype.hpp"

namespace mpicd::p2p {

// Build a generic send descriptor over (buf, count, type).
[[nodiscard]] ucx::BufferDesc dt_send_desc(const dt::TypeRef& type, const void* buf,
                                           Count count);

// Build a generic receive descriptor over (buf, count, type).
[[nodiscard]] ucx::BufferDesc dt_recv_desc(const dt::TypeRef& type, void* buf,
                                           Count count);

// --- Descriptor-context cache -------------------------------------------
//
// Descriptors built above share an immutable per-(layout, count) context
// (callback table target, pinned pack plan, packed totals). Repeated sends
// of the same datatype shape — the common case in halo exchanges and
// bench loops — reuse the cached context instead of rebuilding it. Keyed
// by dt::layout_fingerprint() + count and verified against the full
// segment list on hit, so signature-equivalent-but-differently-laid-out
// types can never alias. Active only when MPICD_PACK_PLAN is enabled.

// Number of cached descriptor contexts (for tests/benches).
[[nodiscard]] std::size_t desc_cache_size();

// Drop every cached context (for tests; in-flight descriptors keep theirs
// alive through the keepalive anchor).
void desc_cache_clear();

} // namespace mpicd::p2p
