// Bridge from the derived-datatype engine (dt::Convertor) to the
// transport's generic-datatype callbacks. This is how "Open MPI style"
// derived-datatype sends work in this library: non-contiguous types are
// packed/unpacked through the convertor, pipelined by the transport — the
// baseline the paper's custom API is compared against.
#pragma once

#include <memory>

#include "dt/datatype.hpp"
#include "ucx/datatype.hpp"

namespace mpicd::p2p {

// Build a generic send descriptor over (buf, count, type).
[[nodiscard]] ucx::BufferDesc dt_send_desc(const dt::TypeRef& type, const void* buf,
                                           Count count);

// Build a generic receive descriptor over (buf, count, type).
[[nodiscard]] ucx::BufferDesc dt_recv_desc(const dt::TypeRef& type, void* buf,
                                           Count count);

} // namespace mpicd::p2p
