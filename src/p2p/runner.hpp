// Threaded rank harness: runs one function per rank, each on its own
// thread, sharing a Universe — the moral equivalent of `mpirun -n N` for
// this in-process simulator. Used by the examples and the C API.
#pragma once

#include <functional>

#include "netsim/wire_model.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"

namespace mpicd::p2p {

// Spawns `nranks` threads, calls fn(comm) on each with that rank's world
// communicator, and joins them. Exceptions escaping a rank are fatal.
void run_world(int nranks, const std::function<void(Communicator&)>& fn,
               netsim::WireParams params = netsim::WireParams::from_env());

} // namespace mpicd::p2p
