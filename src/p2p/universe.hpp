// Universe: an in-process "job" of simulated MPI ranks.
//
// The paper's testbed is two physical nodes; here every rank is an endpoint
// on the simulated fabric. Ranks may be driven from one thread
// (deterministic benchmark mode: post nonblocking operations on several
// communicators and progress the whole universe) or one thread per rank
// (examples; see p2p/runner.hpp).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "netsim/fabric.hpp"
#include "ucx/worker.hpp"

namespace mpicd::p2p {

class Communicator;

class Universe {
public:
    explicit Universe(int nranks,
                      netsim::WireParams params = netsim::WireParams::from_env(),
                      netsim::FaultConfig faults = netsim::FaultConfig::from_env());
    ~Universe();
    Universe(const Universe&) = delete;
    Universe& operator=(const Universe&) = delete;

    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    // The world communicator as seen by `rank`.
    [[nodiscard]] Communicator& comm(int rank);

    [[nodiscard]] ucx::Worker& worker(int rank) {
        return *workers_[static_cast<std::size_t>(rank)];
    }
    [[nodiscard]] netsim::Fabric& fabric() noexcept { return fabric_; }

    // Progress every rank's protocol engine once; returns true if any
    // packet was handled anywhere. When the fabric is quiescent but
    // reliable-delivery timers are pending (a packet was lost), jumps
    // virtual time to the earliest timer so retransmission/timeout always
    // makes progress — a lost packet can never stall the simulation.
    bool progress_all();

    // Per-rank progress engine: drives `rank`'s own worker, and only when
    // that worker is out of work opportunistically helps peers (each
    // worker's progress() is serialized by its own busy flag, so helpers
    // skip rather than contend). Helping is what keeps single-threaded
    // drivers — one thread waiting on both ends of a transfer — live; a
    // thread-per-rank driver almost always finds peers busy with their
    // own threads. Falls back to the same timer escalation as
    // progress_all() when the whole fabric is quiescent.
    bool progress(int rank);

private:
    // Jump virtual time to the earliest pending reliable-delivery timer
    // and progress every worker once; false if no timer is pending.
    //
    // Escalation is only legal when the fabric is GLOBALLY quiescent:
    // every inbox empty and no worker mid-progress on another thread.
    // Otherwise a concurrent rank thread may hold packets that would have
    // arrived before the timer deadline, and jumping the clocks past them
    // fires retransmit/watchdog timers for operations that are actually
    // alive (in the worst case failing a receive whose rendezvous data is
    // still in flight). The check and the jump are serialized so racing
    // escalators cannot compound jumps either; false when the quiescence
    // check fails (the caller just retries its progress loop).
    bool escalate_timers();

    std::mutex escalate_mutex_;
    netsim::Fabric fabric_;
    std::vector<std::unique_ptr<ucx::Worker>> workers_;
    std::vector<std::unique_ptr<Communicator>> comms_;
};

} // namespace mpicd::p2p
