// Universe: an in-process "job" of simulated MPI ranks.
//
// The paper's testbed is two physical nodes; here every rank is an endpoint
// on the simulated fabric. Ranks may be driven from one thread
// (deterministic benchmark mode: post nonblocking operations on several
// communicators and progress the whole universe) or one thread per rank
// (examples; see p2p/runner.hpp).
#pragma once

#include <memory>
#include <vector>

#include "netsim/fabric.hpp"
#include "ucx/worker.hpp"

namespace mpicd::p2p {

class Communicator;

class Universe {
public:
    explicit Universe(int nranks,
                      netsim::WireParams params = netsim::WireParams::from_env(),
                      netsim::FaultConfig faults = netsim::FaultConfig::from_env());
    ~Universe();
    Universe(const Universe&) = delete;
    Universe& operator=(const Universe&) = delete;

    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    // The world communicator as seen by `rank`.
    [[nodiscard]] Communicator& comm(int rank);

    [[nodiscard]] ucx::Worker& worker(int rank) {
        return *workers_[static_cast<std::size_t>(rank)];
    }
    [[nodiscard]] netsim::Fabric& fabric() noexcept { return fabric_; }

    // Progress every rank's protocol engine once; returns true if any
    // packet was handled anywhere. When the fabric is quiescent but
    // reliable-delivery timers are pending (a packet was lost), jumps
    // virtual time to the earliest timer so retransmission/timeout always
    // makes progress — a lost packet can never stall the simulation.
    bool progress_all();

private:
    netsim::Fabric fabric_;
    std::vector<std::unique_ptr<ucx::Worker>> workers_;
    std::vector<std::unique_ptr<Communicator>> comms_;
};

} // namespace mpicd::p2p
