// Built-in CustomSerialize implementations.
//
// StagedHeaderSerialize: a reusable pattern where the packed (in-band)
// portion of a type is staged in a header buffer in the per-operation
// state — built at init time on the send side, accumulated fragment by
// fragment and applied on completion on the receive side. Memory regions
// (the out-of-band portion) are delegated to the derived policy.
//
// Receive-side contract (paper §VI): the receiving object must already
// have the correct shape; incoming size metadata is *validated*, not used
// to allocate, because regions are pinned before the data arrives.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "core/traits.hpp"

namespace mpicd::core {

template <typename T, typename Policy>
struct StagedHeaderSerialize {
    struct State {
        ByteVec hdr;
        Count received = 0;
    };
    static constexpr bool inorder = false;

    static Status init(const T* buf, Count count, State& st) {
        st.hdr.resize(static_cast<std::size_t>(Policy::header_bytes(buf, count)));
        Policy::build_header(buf, count, st.hdr);
        return Status::success;
    }

    static Status packed_size(State& st, const T* /*buf*/, Count /*count*/,
                              Count* size) {
        *size = static_cast<Count>(st.hdr.size());
        return Status::success;
    }

    static Status pack(State& st, const T* /*buf*/, Count /*count*/, Count offset,
                       void* dst, Count dst_size, Count* used) {
        const Count total = static_cast<Count>(st.hdr.size());
        if (offset < 0 || offset > total) return Status::err_pack;
        const Count n = std::min(dst_size, total - offset);
        std::memcpy(dst, st.hdr.data() + offset, static_cast<std::size_t>(n));
        *used = n;
        return Status::success;
    }

    static Status unpack(State& st, T* buf, Count count, Count offset,
                         const void* src, Count src_size) {
        const Count total = static_cast<Count>(st.hdr.size());
        if (offset < 0 || offset + src_size > total) return Status::err_unpack;
        std::memcpy(st.hdr.data() + offset, src, static_cast<std::size_t>(src_size));
        st.received += src_size;
        if (st.received == total) return Policy::apply_header(buf, count, st.hdr);
        return Status::success;
    }
};

// --- std::vector<U> elements: lengths packed in-band, payloads as regions.
template <typename U>
struct VectorPolicy {
    using Elem = std::vector<U>;
    // Wireable, not merely trivially copyable: std::pair elements (whose
    // user-provided operator= defeats is_trivially_copyable) are bitwise-
    // safe and must serialize the same way the fast path ships them.
    static_assert(is_trivially_wireable_v<U>);

    static Count header_bytes(const Elem* /*buf*/, Count count) {
        return count * static_cast<Count>(sizeof(std::uint64_t));
    }
    static void build_header(const Elem* buf, Count count, ByteVec& hdr) {
        auto* lens = reinterpret_cast<std::uint64_t*>(hdr.data());
        for (Count i = 0; i < count; ++i)
            lens[i] = buf[i].size() * sizeof(U);
    }
    // Receive side: the incoming lengths must match the pre-sized vectors
    // (the receiver is required to know the sizes in advance). Every length
    // is bound-checked against the wire bytes before it is trusted: a
    // corrupt or truncated header must surface as err_truncate, never as a
    // resize/over-allocation driven by attacker-controlled wire data.
    static Status apply_header(Elem* buf, Count count, const ByteVec& hdr) {
        if (hdr.size() <
            static_cast<std::size_t>(count) * sizeof(std::uint64_t))
            return Status::err_truncate;
        const auto* lens = reinterpret_cast<const std::uint64_t*>(hdr.data());
        for (Count i = 0; i < count; ++i) {
            if (lens[i] % sizeof(U) != 0) return Status::err_truncate;
            if (lens[i] != buf[i].size() * sizeof(U)) return Status::err_truncate;
        }
        return Status::success;
    }
};

// Constrained so that e.g. CustomSerialize<std::vector<std::vector<int>>>
// stays *incomplete* instead of hard-erroring in a static_assert — the
// HasCustomSerialize concept (core/traits.hpp) must be able to evaluate to
// false for element types that cannot be serialized this way. vector<bool>
// is excluded because it has no contiguous element storage to expose as a
// region.
template <typename U>
    requires(is_trivially_wireable_v<U> && !std::is_same_v<U, bool>)
struct CustomSerialize<std::vector<U>>
    : StagedHeaderSerialize<std::vector<U>, VectorPolicy<U>> {
    using Base = StagedHeaderSerialize<std::vector<U>, VectorPolicy<U>>;
    using State = typename Base::State;

    static Status region_count(State&, std::vector<U>* /*buf*/, Count count,
                               Count* n) {
        *n = count;
        return Status::success;
    }
    static Status regions(State&, std::vector<U>* buf, Count count, Count n,
                          void** bases, Count* lens) {
        if (n != count) return Status::err_region;
        for (Count i = 0; i < count; ++i) {
            bases[i] = buf[i].data();
            lens[i] = static_cast<Count>(buf[i].size() * sizeof(U));
        }
        return Status::success;
    }
};

// --- Trivially copyable element type sent as one zero-copy region.
// Usage: template <> struct CustomSerialize<MyPod> : TrivialRegionSerialize<MyPod> {};
template <typename T>
struct TrivialRegionSerialize {
    static_assert(std::is_trivially_copyable_v<T>);
    struct State {};
    static constexpr bool inorder = false;

    static Status init(const T*, Count, State&) { return Status::success; }
    static Status packed_size(State&, const T*, Count, Count* size) {
        *size = 0;
        return Status::success;
    }
    static Status pack(State&, const T*, Count, Count, void*, Count, Count*) {
        return Status::err_internal; // nothing to pack
    }
    static Status unpack(State&, T*, Count, Count, const void*, Count) {
        return Status::err_internal;
    }
    static Status region_count(State&, T*, Count, Count* n) {
        *n = 1;
        return Status::success;
    }
    static Status regions(State&, T* buf, Count count, Count n, void** bases,
                          Count* lens) {
        if (n != 1) return Status::err_region;
        bases[0] = buf;
        lens[0] = count * static_cast<Count>(sizeof(T));
        return Status::success;
    }
};

// --- std::basic_string<C>: byte length in-band, characters as one region.
// The wire layout for count == 1 (one u64 length + one payload region) is
// byte-identical to the fast path's two-entry size+payload IOV, which is
// what makes MPICD_FAST_PATH=0 wire-compatible for strings.
template <typename C>
struct StringPolicy {
    using Elem = std::basic_string<C>;
    static_assert(std::is_trivially_copyable_v<C>);

    static Count header_bytes(const Elem* /*buf*/, Count count) {
        return count * static_cast<Count>(sizeof(std::uint64_t));
    }
    static void build_header(const Elem* buf, Count count, ByteVec& hdr) {
        auto* lens = reinterpret_cast<std::uint64_t*>(hdr.data());
        for (Count i = 0; i < count; ++i)
            lens[i] = buf[i].size() * sizeof(C);
    }
    static Status apply_header(Elem* buf, Count count, const ByteVec& hdr) {
        if (hdr.size() <
            static_cast<std::size_t>(count) * sizeof(std::uint64_t))
            return Status::err_truncate;
        const auto* lens = reinterpret_cast<const std::uint64_t*>(hdr.data());
        for (Count i = 0; i < count; ++i) {
            if (lens[i] % sizeof(C) != 0) return Status::err_truncate;
            if (lens[i] != buf[i].size() * sizeof(C)) return Status::err_truncate;
        }
        return Status::success;
    }
};

template <typename C>
    requires std::is_trivially_copyable_v<C>
struct CustomSerialize<std::basic_string<C>>
    : StagedHeaderSerialize<std::basic_string<C>, StringPolicy<C>> {
    using Base = StagedHeaderSerialize<std::basic_string<C>, StringPolicy<C>>;
    using State = typename Base::State;

    static Status region_count(State&, std::basic_string<C>* /*buf*/, Count count,
                               Count* n) {
        *n = count;
        return Status::success;
    }
    static Status regions(State&, std::basic_string<C>* buf, Count count, Count n,
                          void** bases, Count* lens) {
        if (n != count) return Status::err_region;
        for (Count i = 0; i < count; ++i) {
            bases[i] = buf[i].data();
            lens[i] = static_cast<Count>(buf[i].size() * sizeof(C));
        }
        return Status::success;
    }
};

// --- Fallback serializer for the fast path's MPICD_FAST_PATH=0 mode:
// trivially *wireable* types (which includes std::pair / std::array shapes
// that fail is_trivially_copyable on a technicality) sent as one zero-copy
// region of raw object bytes. Wire bytes are identical to the enabled fast
// path's CONTIG transfer — only the descriptor kind differs.
template <typename T>
struct WireFallbackSerialize {
    static_assert(is_trivially_wireable_v<T>);
    struct State {};
    static constexpr bool inorder = false;

    static Status init(const T*, Count, State&) { return Status::success; }
    static Status packed_size(State&, const T*, Count, Count* size) {
        *size = 0;
        return Status::success;
    }
    static Status pack(State&, const T*, Count, Count, void*, Count, Count*) {
        return Status::err_internal; // nothing to pack
    }
    static Status unpack(State&, T*, Count, Count, const void*, Count) {
        return Status::err_internal;
    }
    static Status region_count(State&, T*, Count, Count* n) {
        *n = 1;
        return Status::success;
    }
    static Status regions(State&, T* buf, Count count, Count n, void** bases,
                          Count* lens) {
        if (n != 1) return Status::err_region;
        bases[0] = buf;
        lens[0] = count * static_cast<Count>(sizeof(T));
        return Status::success;
    }
};

// Committed datatype for a wireable T that has no CustomSerialize of its
// own (cached per T, same lifetime rules as custom_datatype_of).
template <typename T>
[[nodiscard]] const CustomDatatype& wire_fallback_datatype_of() {
    return detail::Adapter<T, WireFallbackSerialize<T>>::datatype();
}

} // namespace mpicd::core
