#include "core/custom_type.hpp"

namespace mpicd::core {

Status CustomDatatype::create(const CustomCallbacks& cb, CustomDatatype* out) {
    if (out == nullptr) return Status::err_arg;
    if (cb.query == nullptr || cb.pack == nullptr || cb.unpack == nullptr)
        return Status::err_arg;
    // Region callbacks come as a pair or not at all.
    if ((cb.region_count == nullptr) != (cb.region == nullptr))
        return Status::err_arg;
    // State management likewise: a free function without a constructor
    // (or vice versa) is a usage error.
    if ((cb.state == nullptr) != (cb.state_free == nullptr)) return Status::err_arg;
    out->cb_ = cb;
    return Status::success;
}

Status CustomDatatype::make_state(const void* buf, Count count, void** state) const {
    *state = nullptr;
    if (cb_.state == nullptr) return Status::success;
    const Status st = cb_.state(cb_.context, buf, count, state);
    return ok(st) ? Status::success : Status::err_state;
}

void CustomDatatype::free_state(void* state) const {
    if (cb_.state_free != nullptr && state != nullptr) (void)cb_.state_free(state);
}

} // namespace mpicd::core
