#include "core/engine.hpp"

#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/config.hpp"
#include "base/log.hpp"
#include "base/metrics.hpp"
#include "base/stats.hpp"
#include "base/trace.hpp"
#include "dt/pack_plan.hpp"

namespace mpicd::core {

Count custom_pack_frag_from_env() {
    constexpr Count kDefault = 512 * 1024;
    const Count v = env_int_or("MPICD_CUSTOM_PACK_FRAG", kDefault);
    if (v <= 0) {
        MPICD_LOG_WARN("config: MPICD_CUSTOM_PACK_FRAG=" << v
                       << " is not positive; using the default " << kDefault);
        return kDefault;
    }
    return v;
}

Count custom_pack_frag_size() {
    static const Count v = custom_pack_frag_from_env();
    return v;
}

bool fast_path_from_env() {
    const std::int64_t v = env_int_or("MPICD_FAST_PATH", 1);
    if (v != 0 && v != 1) {
        // Same warn-once contract as the other knobs: out-of-range values
        // clamp to the default instead of silently meaning something.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            MPICD_LOG_WARN("config: MPICD_FAST_PATH=" << v
                           << " is not 0 or 1; using the default 1 (enabled)");
        }
        return true;
    }
    return v != 0;
}

namespace {
// -1 = read the environment on first use; 0/1 = explicit.
std::atomic<int> g_fast_path{-1};
} // namespace

bool fast_path_enabled() noexcept {
    const int v = g_fast_path.load(std::memory_order_relaxed);
    if (v >= 0) return v != 0;
    const bool on = fast_path_from_env();
    g_fast_path.store(on ? 1 : 0, std::memory_order_relaxed);
    return on;
}

void set_fast_path(bool on) noexcept {
    g_fast_path.store(on ? 1 : 0, std::memory_order_relaxed);
}

FastPathCounters& fastpath_counters() noexcept {
    static FastPathCounters c{
        metrics().counter("fastpath", "hits_trivial"),
        metrics().counter("fastpath", "hits_resizable"),
        metrics().counter("fastpath", "bytes_bypassed"),
        metrics().counter("fastpath", "plan_compiles_avoided"),
        metrics().counter("fastpath", "fallback_ops"),
        metrics().counter("fastpath", "serializer_ops"),
    };
    return c;
}

namespace {

// Bridge from the transport's generic-datatype callbacks to a custom
// datatype's pack/unpack callbacks (generic_pipeline lowering).
struct GenericBridge {
    const CustomDatatype* type = nullptr;
    const void* cbuf = nullptr;
    void* mbuf = nullptr;
    Count count = 0;
    void* user_state = nullptr;
};

Status bridge_start_pack(void* ctx, const void* buf, Count count, void** state) {
    auto* type = static_cast<const CustomDatatype*>(ctx);
    auto bridge = std::make_unique<GenericBridge>();
    bridge->type = type;
    bridge->cbuf = buf;
    bridge->count = count;
    MPICD_RETURN_IF_ERROR(type->make_state(buf, count, &bridge->user_state));
    *state = bridge.release();
    return Status::success;
}

Status bridge_start_unpack(void* ctx, void* buf, Count count, void** state) {
    auto* type = static_cast<const CustomDatatype*>(ctx);
    auto bridge = std::make_unique<GenericBridge>();
    bridge->type = type;
    bridge->cbuf = buf;
    bridge->mbuf = buf;
    bridge->count = count;
    MPICD_RETURN_IF_ERROR(type->make_state(buf, count, &bridge->user_state));
    *state = bridge.release();
    return Status::success;
}

Status bridge_packed_size(void* state, Count* size) {
    auto* b = static_cast<GenericBridge*>(state);
    return b->type->callbacks().query(b->user_state, b->cbuf, b->count, size);
}

Status bridge_pack(void* state, Count offset, void* dst, Count dst_size, Count* used) {
    auto* b = static_cast<GenericBridge*>(state);
    return b->type->callbacks().pack(b->user_state, b->cbuf, b->count, offset, dst,
                                     dst_size, used);
}

Status bridge_unpack(void* state, Count offset, const void* src, Count src_size) {
    auto* b = static_cast<GenericBridge*>(state);
    return b->type->callbacks().unpack(b->user_state, b->mbuf, b->count, offset, src,
                                       src_size);
}

void bridge_finish(void* state) {
    auto* b = static_cast<GenericBridge*>(state);
    b->type->free_state(b->user_state);
    delete b;
}

ucx::GenericOps make_bridge_ops(const CustomDatatype& type) {
    ucx::GenericOps ops;
    ops.start_pack = bridge_start_pack;
    ops.start_unpack = bridge_start_unpack;
    ops.packed_size = bridge_packed_size;
    ops.pack = bridge_pack;
    ops.unpack = bridge_unpack;
    ops.finish = bridge_finish;
    ops.ctx = const_cast<CustomDatatype*>(&type);
    ops.inorder = type.inorder();
    return ops;
}

// Query regions of `buf` through the type's region callbacks; appends
// non-empty regions to `entries`. Caller measures the time around this.
Status collect_regions(const CustomDatatype& type, void* state, void* buf, Count count,
                       std::vector<IovEntry>& entries, Count* region_bytes) {
    *region_bytes = 0;
    if (!type.has_regions()) return Status::success;
    const auto& cb = type.callbacks();
    Count n = 0;
    MPICD_RETURN_IF_ERROR(cb.region_count(state, buf, count, &n));
    if (n < 0) return Status::err_region;
    if (n == 0) return Status::success;
    std::vector<void*> bases(static_cast<std::size_t>(n), nullptr);
    std::vector<Count> lens(static_cast<std::size_t>(n), 0);
    MPICD_RETURN_IF_ERROR(cb.region(state, buf, count, n, bases.data(), lens.data()));
    for (Count i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (lens[idx] < 0 || (lens[idx] > 0 && bases[idx] == nullptr))
            return Status::err_region;
        if (lens[idx] == 0) continue;
        entries.push_back({bases[idx], lens[idx]});
        *region_bytes += lens[idx];
    }
    return Status::success;
}

// Coalesce exactly-adjacent scatter/gather entries before the descriptor
// reaches Worker::tag_send. The wire stream is the in-order concatenation
// of the entries, so merging only exact adjacency leaves delivered bytes
// unchanged while shrinking the SG list the transport charges per entry.
// Gated with the rest of the pack-plan machinery so MPICD_PACK_PLAN=0
// reproduces the ungrouped seed descriptors.
void coalesce_entries(std::vector<IovEntry>& entries) {
    if (!dt::pack_plan_enabled()) return;
    const std::size_t before = entries.size();
    coalesce_iov(entries);
    auto& ps = pack_stats();
    ps.iov_entries_before.fetch_add(static_cast<std::uint64_t>(before),
                                    std::memory_order_relaxed);
    ps.iov_entries_after.fetch_add(static_cast<std::uint64_t>(entries.size()),
                                   std::memory_order_relaxed);
}

// --- Descriptor skeleton hints ------------------------------------------
//
// The user callbacks (query/region) must run for every operation — packed
// size and region layout may depend on object contents — so unlike the
// derived-datatype plan cache the custom path cannot reuse lowered
// descriptors outright. What repeats is the descriptor *skeleton*: entry
// counts for the same (type, count) pair. Remember them and pre-reserve,
// so steady-state lowering does no vector growth.
struct SkeletonHint {
    Count entries = 0;
};

std::mutex g_skel_mu;
std::unordered_map<const CustomDatatype*,
                   std::unordered_map<Count, SkeletonHint>>&
skel_map() {
    static std::unordered_map<const CustomDatatype*,
                              std::unordered_map<Count, SkeletonHint>>
        m;
    return m;
}

void skeleton_reserve(const CustomDatatype& type, Count count,
                      std::vector<IovEntry>& entries) {
    if (!dt::pack_plan_enabled()) return;
    std::lock_guard<std::mutex> lk(g_skel_mu);
    const auto it = skel_map().find(&type);
    if (it == skel_map().end()) return;
    const auto jt = it->second.find(count);
    if (jt == it->second.end()) return;
    entries.reserve(static_cast<std::size_t>(jt->second.entries));
    pack_stats().skeleton_hits.fetch_add(1, std::memory_order_relaxed);
}

void skeleton_remember(const CustomDatatype& type, Count count,
                       const std::vector<IovEntry>& entries) {
    if (!dt::pack_plan_enabled()) return;
    std::lock_guard<std::mutex> lk(g_skel_mu);
    if (skel_map().size() > 256) skel_map().clear(); // unbounded types guard
    auto& per_type = skel_map()[&type];
    if (per_type.size() > 64) per_type.clear(); // unbounded counts guard
    per_type[count] = SkeletonHint{static_cast<Count>(entries.size())};
}

} // namespace

Status lower_custom_send(const CustomDatatype& type, const void* buf, Count count,
                         ucx::Worker& worker, ucx::BufferDesc* out,
                         CustomLowering lowering) {
    if (!type.valid() || out == nullptr || count < 0) return Status::err_arg;

    if (lowering == CustomLowering::generic_pipeline) {
        if (type.has_regions()) return Status::err_unsupported;
        ucx::GenericDesc g;
        g.ops = make_bridge_ops(type);
        g.send_buf = buf;
        g.count = count;
        *out = std::move(g);
        return Status::success;
    }

    trace::Span lower_span("engine", "sg_lower_send");
    lower_span.arg0("count", static_cast<std::uint64_t>(count));
    SimTime host_cost = 0.0;
    void* state = nullptr;
    Status st = Status::success;
    std::shared_ptr<ByteVec> backing;
    std::vector<IovEntry> entries;
    {
        const ScopedMeasure measure(host_cost);
        skeleton_reserve(type, count, entries);
        st = type.make_state(buf, count, &state);
        Count packed = 0;
        if (ok(st)) st = type.callbacks().query(state, buf, count, &packed);
        if (ok(st) && packed < 0) st = Status::err_query;
        if (ok(st) && packed > 0) {
            backing = std::make_shared<ByteVec>(static_cast<std::size_t>(packed));
            const Count frag = custom_pack_frag_size();
            Count offset = 0;
            SimTime pack_cost = 0.0;
            {
                const ScopedMeasure pack_measure(pack_cost);
                while (ok(st) && offset < packed) {
                    const Count want = std::min(frag, packed - offset);
                    trace::Span frag_span("engine", "custom_pack_frag");
                    frag_span.arg0("offset", static_cast<std::uint64_t>(offset));
                    Count used = 0;
                    st = type.callbacks().pack(state, buf, count, offset,
                                               backing->data() + offset, want, &used);
                    if (ok(st) && (used <= 0 || used > want)) st = Status::err_pack;
                    if (ok(st)) offset += used;
                    frag_span.arg1("used",
                                   ok(st) ? static_cast<std::uint64_t>(used) : 0);
                }
            }
            // The SG path packs here (the transport only gathers the iov),
            // so this is where the pack-throughput samples come from.
            // Sub-0.05us samples are timer noise, same rule as the worker.
            if (ok(st) && pack_cost >= 0.05) {
                static Histogram& hist =
                    metrics().histogram("pack", "throughput_mbps");
                hist.record(static_cast<std::uint64_t>(
                    static_cast<double>(packed) / pack_cost));
            }
            if (ok(st)) entries.push_back({backing->data(), packed});
        }
        if (ok(st)) {
            Count region_bytes = 0;
            trace::Span region_span("engine", "regions");
            st = collect_regions(type, state, const_cast<void*>(buf), count, entries,
                                 &region_bytes);
            region_span.arg0("bytes", static_cast<std::uint64_t>(region_bytes));
        }
        if (ok(st)) {
            const std::size_t before = entries.size();
            coalesce_entries(entries);
            if (entries.size() != before) {
                trace::instant("engine", "iov_coalesce", -1.0, "before",
                               static_cast<std::uint64_t>(before), "after",
                               static_cast<std::uint64_t>(entries.size()));
            }
            skeleton_remember(type, count, entries);
        }
        type.free_state(state);
    }
    worker.advance_time(host_cost);
    lower_span.arg1("entries", static_cast<std::uint64_t>(entries.size()));
    if (!ok(st)) return st;

    ucx::IovDesc iov;
    iov.entries = std::move(entries);
    iov.backing = std::move(backing);
    *out = std::move(iov);
    return Status::success;
}

// ---------------------------------------------------------------------------
// Receive side

CustomRecvOp::~CustomRecvOp() {
    if (!finished_ && type_ != nullptr) type_->free_state(state_);
}

CustomRecvOp::CustomRecvOp(CustomRecvOp&& other) noexcept
    : desc_(std::move(other.desc_)),
      type_(other.type_),
      state_(other.state_),
      buf_(other.buf_),
      count_(other.count_),
      packed_size_(other.packed_size_),
      total_(other.total_),
      packed_(std::move(other.packed_)),
      finished_(other.finished_) {
    other.finished_ = true;
    other.state_ = nullptr;
}

CustomRecvOp& CustomRecvOp::operator=(CustomRecvOp&& other) noexcept {
    if (this != &other) {
        this->~CustomRecvOp();
        new (this) CustomRecvOp(std::move(other));
    }
    return *this;
}

Status CustomRecvOp::finish(ucx::Worker& worker) {
    if (finished_) return Status::success;
    trace::Span span("engine", "custom_unpack");
    span.arg0("bytes", static_cast<std::uint64_t>(packed_size_));
    SimTime host_cost = 0.0;
    Status st = Status::success;
    {
        const ScopedMeasure measure(host_cost);
        if (packed_size_ > 0) {
            st = type_->callbacks().unpack(state_, buf_, count_, 0, packed_->data(),
                                           packed_size_);
        }
        type_->free_state(state_);
    }
    worker.advance_time(host_cost);
    finished_ = true;
    state_ = nullptr;
    return ok(st) ? Status::success : st;
}

Status lower_custom_recv(const CustomDatatype& type, void* buf, Count count,
                         ucx::Worker& worker, CustomRecvOp* out,
                         CustomLowering lowering) {
    if (!type.valid() || out == nullptr || count < 0) return Status::err_arg;

    if (lowering == CustomLowering::generic_pipeline) {
        if (type.has_regions()) return Status::err_unsupported;
        ucx::GenericDesc g;
        g.ops = make_bridge_ops(type);
        g.recv_buf = buf;
        g.count = count;
        out->desc_ = std::move(g);
        out->type_ = &type;
        out->finished_ = true; // state handled by the transport bridge
        return Status::success;
    }

    trace::Span lower_span("engine", "sg_lower_recv");
    lower_span.arg0("count", static_cast<std::uint64_t>(count));
    SimTime host_cost = 0.0;
    void* state = nullptr;
    Status st = Status::success;
    Count packed = 0;
    std::shared_ptr<ByteVec> backing;
    std::vector<IovEntry> entries;
    Count region_bytes = 0;
    {
        const ScopedMeasure measure(host_cost);
        skeleton_reserve(type, count, entries);
        st = type.make_state(buf, count, &state);
        if (ok(st)) st = type.callbacks().query(state, buf, count, &packed);
        if (ok(st) && packed < 0) st = Status::err_query;
        if (ok(st) && packed > 0) {
            backing = std::make_shared<ByteVec>(static_cast<std::size_t>(packed));
            entries.push_back({backing->data(), packed});
        }
        if (ok(st)) st = collect_regions(type, state, buf, count, entries, &region_bytes);
        if (ok(st)) {
            coalesce_entries(entries);
            skeleton_remember(type, count, entries);
        }
    }
    worker.advance_time(host_cost);
    lower_span.arg1("entries", static_cast<std::uint64_t>(entries.size()));
    if (!ok(st)) {
        type.free_state(state);
        return st;
    }

    ucx::IovDesc iov;
    iov.entries = std::move(entries);
    iov.backing = backing;
    out->desc_ = std::move(iov);
    out->type_ = &type;
    out->state_ = state;
    out->buf_ = buf;
    out->count_ = count;
    out->packed_size_ = packed;
    out->total_ = packed + region_bytes;
    out->packed_ = std::move(backing);
    out->finished_ = false;
    return Status::success;
}

} // namespace mpicd::core
