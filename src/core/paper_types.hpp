// The evaluation datatypes from the paper (Listings 6–8) with their
// CustomSerialize implementations. Shared by tests and benchmarks.
//
// All three structs reproduce the Rust #[repr(C)] layouts: three 32-bit
// ints followed by a double leaves a 4-byte alignment gap between `c` and
// `d` in struct_vec / struct_simple; struct_simple_no_gap removes the
// third int and with it the gap.
//
// The scalar fields pack *directly* from the structs into the fragment
// buffer at the requested virtual offset (single pass, like the paper's
// Rust trait implementations) — no staging copy. Fragments that split an
// element mid-record are handled through a 20-byte scratch; out-of-order /
// partial unpack falls back to an assembly buffer.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/builtin_serialize.hpp"
#include "dt/datatype.hpp"

namespace mpicd::core {

inline constexpr std::size_t kStructVecData = 2048;

// Paper Listing 6 (struct-vec): scalars packed in-band, `data` exposed as
// a memory region.
struct StructVec {
    std::int32_t a = 0, b = 0, c = 0;
    // 4-byte alignment gap here, as in the paper.
    double d = 0.0;
    std::int32_t data[kStructVecData] = {};
};
// 12 B scalars + 4 B gap + 8 B double + 8192 B data.
static_assert(sizeof(StructVec) == 24 + 4 * kStructVecData);

// Paper Listing 7 (struct-simple): scalars only, still with the gap.
struct StructSimple {
    std::int32_t a = 0, b = 0, c = 0;
    double d = 0.0;
};
static_assert(sizeof(StructSimple) == 24);

// Paper Listing 8 (struct-simple-no-gap): contiguous C layout.
struct StructSimpleNoGap {
    std::int32_t a = 0, b = 0;
    double c = 0.0;
};
static_assert(sizeof(StructSimpleNoGap) == 16);

// Packed size of the scalar fields of StructVec / StructSimple
// (paper Listing 1: 3 ints + 1 double, gap elided).
inline constexpr Count kScalarPack = 3 * 4 + 8;

namespace detail_paper {

// One packed 20-byte record of the scalar fields.
template <typename S>
inline void store_record(const S& s, std::byte* rec) {
    std::memcpy(rec, &s.a, 12);
    std::memcpy(rec + 12, &s.d, 8);
}
template <typename S>
inline void load_record(S& s, const std::byte* rec) {
    std::memcpy(&s.a, rec, 12);
    std::memcpy(&s.d, rec + 12, 8);
}

// Direct-from-struct packing of the scalar fields at any virtual offset.
template <typename S>
struct FieldDirectSerialize {
    struct State {
        ByteVec assembly; // lazily allocated for fragmented unpack
        Count received = 0;
    };
    static constexpr bool inorder = false;

    static Status init(const S*, Count, State&) { return Status::success; }

    static Status packed_size(State&, const S*, Count count, Count* size) {
        *size = count * kScalarPack;
        return Status::success;
    }

    static Status pack(State&, const S* buf, Count count, Count offset, void* dst,
                       Count dst_size, Count* used) {
        const Count total = count * kScalarPack;
        if (offset < 0 || offset > total) return Status::err_pack;
        Count n = std::min(dst_size, total - offset);
        *used = n;
        auto* out = static_cast<std::byte*>(dst);
        Count elem = offset / kScalarPack;
        Count into = offset % kScalarPack;
        while (n > 0) {
            if (into == 0 && n >= kScalarPack) {
                store_record(buf[elem], out);
                out += kScalarPack;
                n -= kScalarPack;
                ++elem;
            } else {
                std::byte rec[kScalarPack];
                store_record(buf[elem], rec);
                const Count take = std::min(n, kScalarPack - into);
                std::memcpy(out, rec + into, static_cast<std::size_t>(take));
                out += take;
                n -= take;
                into = 0;
                ++elem;
            }
        }
        return Status::success;
    }

    static Status unpack(State& st, S* buf, Count count, Count offset,
                         const void* src, Count src_size) {
        const Count total = count * kScalarPack;
        if (offset < 0 || offset + src_size > total) return Status::err_unpack;
        // Fast path: the whole packed stream in one call (the iov lowering
        // always lands here) and record-aligned fragments.
        if (offset % kScalarPack == 0 && src_size % kScalarPack == 0 &&
            st.assembly.empty()) {
            const auto* in = static_cast<const std::byte*>(src);
            for (Count e = offset / kScalarPack; src_size > 0;
                 ++e, in += kScalarPack, src_size -= kScalarPack) {
                load_record(buf[e], in);
            }
            return Status::success;
        }
        // Fallback: assemble fragments, apply once complete.
        if (st.assembly.empty()) st.assembly.resize(static_cast<std::size_t>(total));
        std::memcpy(st.assembly.data() + offset, src,
                    static_cast<std::size_t>(src_size));
        st.received += src_size;
        if (st.received >= total) {
            for (Count e = 0; e < count; ++e)
                load_record(buf[e], st.assembly.data() + e * kScalarPack);
        }
        return Status::success;
    }
};

} // namespace detail_paper

// struct-vec: scalars in-band + one region per element for `data`.
template <>
struct CustomSerialize<StructVec> : detail_paper::FieldDirectSerialize<StructVec> {
    using Base = detail_paper::FieldDirectSerialize<StructVec>;
    using State = typename Base::State;

    static Status region_count(State&, StructVec*, Count count, Count* n) {
        *n = count;
        return Status::success;
    }
    static Status regions(State&, StructVec* buf, Count count, Count n, void** bases,
                          Count* lens) {
        if (n != count) return Status::err_region;
        for (Count i = 0; i < count; ++i) {
            bases[i] = buf[i].data;
            lens[i] = static_cast<Count>(sizeof(buf[i].data));
        }
        return Status::success;
    }
};

// struct-simple: fully packed (no regions).
template <>
struct CustomSerialize<StructSimple>
    : detail_paper::FieldDirectSerialize<StructSimple> {};

// struct-simple-no-gap: contiguous, a single zero-copy region.
template <>
struct CustomSerialize<StructSimpleNoGap>
    : TrivialRegionSerialize<StructSimpleNoGap> {};

// --- Derived-datatype (rsmpi-like) constructions for the same types, used
// as the Open MPI baseline in Figs. 3–6.
[[nodiscard]] inline dt::TypeRef struct_vec_dt() {
    const Count blocklens[] = {3, 1, kStructVecData};
    const Count displs[] = {0, 16, 24};
    const dt::TypeRef types[] = {dt::type_int32(), dt::type_double(), dt::type_int32()};
    auto t = dt::Datatype::struct_(blocklens, displs, types);
    auto r = dt::Datatype::resized(t, 0, static_cast<Count>(sizeof(StructVec)));
    (void)r->commit();
    return r;
}

[[nodiscard]] inline dt::TypeRef struct_simple_dt() {
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const dt::TypeRef types[] = {dt::type_int32(), dt::type_double()};
    auto t = dt::Datatype::struct_(blocklens, displs, types);
    auto r = dt::Datatype::resized(t, 0, static_cast<Count>(sizeof(StructSimple)));
    (void)r->commit();
    return r;
}

[[nodiscard]] inline dt::TypeRef struct_simple_no_gap_dt() {
    const Count blocklens[] = {2, 1};
    const Count displs[] = {0, 8};
    const dt::TypeRef types[] = {dt::type_int32(), dt::type_double()};
    auto t = dt::Datatype::struct_(blocklens, displs, types);
    auto r = dt::Datatype::resized(t, 0, static_cast<Count>(sizeof(StructSimpleNoGap)));
    (void)r->commit();
    return r;
}

} // namespace mpicd::core
