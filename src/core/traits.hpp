// CustomSerialize<T>: the C++ trait mirror of the paper's Rust traits.
//
// The mpicd prototype exposes the custom datatype machinery to Rust through
// a trait implemented per type; here the same role is played by a template
// specialization. Specialize CustomSerialize<T> with:
//
//   struct State;                       // per-operation state (Listing 3)
//   static constexpr bool inorder;      // Listing 2 inorder flag
//   static Status init(const T* buf, Count count, State& st);
//   static Status packed_size(State&, const T* buf, Count count, Count* size);
//   static Status pack(State&, const T* buf, Count count, Count offset,
//                      void* dst, Count dst_size, Count* used);
//   static Status unpack(State&, T* buf, Count count, Count offset,
//                        const void* src, Count src_size);
//   // optional (memory regions, Listing 5):
//   static Status region_count(State&, T* buf, Count count, Count* n);
//   static Status regions(State&, T* buf, Count count, Count n,
//                         void** bases, Count* lens);
//
// custom_datatype_of<T>() erases the specialization into a CustomDatatype
// usable with Communicator::{isend,irecv}_custom and the C API.
#pragma once

#include <memory>
#include <type_traits>

#include "core/custom_type.hpp"

namespace mpicd::core {

template <typename T>
struct CustomSerialize; // specialize per type

namespace detail {

template <typename T>
concept HasRegions = requires(typename CustomSerialize<T>::State& st, T* buf,
                              Count count, Count* n, void** bases, Count* lens) {
    { CustomSerialize<T>::region_count(st, buf, count, n) } -> std::same_as<Status>;
    { CustomSerialize<T>::regions(st, buf, count, Count{}, bases, lens) }
        -> std::same_as<Status>;
};

template <typename T>
class Adapter {
    using CS = CustomSerialize<T>;
    using State = typename CS::State;

    static Status state_fn(void* /*context*/, const void* src, Count count,
                           void** state) {
        auto op = std::make_unique<State>();
        MPICD_RETURN_IF_ERROR(CS::init(static_cast<const T*>(src), count, *op));
        *state = op.release();
        return Status::success;
    }
    static Status state_free_fn(void* state) {
        delete static_cast<State*>(state);
        return Status::success;
    }
    static Status query_fn(void* state, const void* buf, Count count, Count* size) {
        return CS::packed_size(*static_cast<State*>(state), static_cast<const T*>(buf),
                               count, size);
    }
    static Status pack_fn(void* state, const void* buf, Count count, Count offset,
                          void* dst, Count dst_size, Count* used) {
        return CS::pack(*static_cast<State*>(state), static_cast<const T*>(buf), count,
                        offset, dst, dst_size, used);
    }
    static Status unpack_fn(void* state, void* buf, Count count, Count offset,
                            const void* src, Count src_size) {
        return CS::unpack(*static_cast<State*>(state), static_cast<T*>(buf), count,
                          offset, src, src_size);
    }
    static Status region_count_fn(void* state, void* buf, Count count, Count* n) {
        if constexpr (HasRegions<T>) {
            return CS::region_count(*static_cast<State*>(state), static_cast<T*>(buf),
                                    count, n);
        } else {
            (void)state; (void)buf; (void)count; (void)n;
            return Status::err_internal;
        }
    }
    static Status region_fn(void* state, void* buf, Count count, Count n, void** bases,
                            Count* lens) {
        if constexpr (HasRegions<T>) {
            return CS::regions(*static_cast<State*>(state), static_cast<T*>(buf), count,
                               n, bases, lens);
        } else {
            (void)state; (void)buf; (void)count; (void)n; (void)bases; (void)lens;
            return Status::err_internal;
        }
    }

public:
    [[nodiscard]] static const CustomDatatype& datatype() {
        static const CustomDatatype dt = [] {
            CustomCallbacks cb;
            cb.state = state_fn;
            cb.state_free = state_free_fn;
            cb.query = query_fn;
            cb.pack = pack_fn;
            cb.unpack = unpack_fn;
            if constexpr (HasRegions<T>) {
                cb.region_count = region_count_fn;
                cb.region = region_fn;
            }
            cb.inorder = CS::inorder;
            CustomDatatype out;
            const Status st = CustomDatatype::create(cb, &out);
            (void)st; // the adapter always provides a complete callback set
            return out;
        }();
        return dt;
    }
};

} // namespace detail

// The process-wide committed custom datatype for T (cached, like RSMPI's
// first-use datatype caching the paper describes in §II-D).
template <typename T>
[[nodiscard]] const CustomDatatype& custom_datatype_of() {
    return detail::Adapter<T>::datatype();
}

} // namespace mpicd::core
