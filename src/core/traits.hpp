// CustomSerialize<T>: the C++ trait mirror of the paper's Rust traits.
//
// The mpicd prototype exposes the custom datatype machinery to Rust through
// a trait implemented per type; here the same role is played by a template
// specialization. Specialize CustomSerialize<T> with:
//
//   struct State;                       // per-operation state (Listing 3)
//   static constexpr bool inorder;      // Listing 2 inorder flag
//   static Status init(const T* buf, Count count, State& st);
//   static Status packed_size(State&, const T* buf, Count count, Count* size);
//   static Status pack(State&, const T* buf, Count count, Count offset,
//                      void* dst, Count dst_size, Count* used);
//   static Status unpack(State&, T* buf, Count count, Count offset,
//                        const void* src, Count src_size);
//   // optional (memory regions, Listing 5):
//   static Status region_count(State&, T* buf, Count count, Count* n);
//   static Status regions(State&, T* buf, Count count, Count n,
//                         void** bases, Count* lens);
//
// custom_datatype_of<T>() erases the specialization into a CustomDatatype
// usable with Communicator::{isend,irecv}_custom and the C API.
//
// On top of the serialization trait sits the compile-time *wire
// classification* used by the zero-serialization fast path (docs/API.md §7):
// every T falls into exactly one WireClass, and mpicd::send/recv
// (p2p/api.hpp) statically route each class to the cheapest legal transfer.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/custom_type.hpp"

namespace mpicd::core {

template <typename T>
struct CustomSerialize; // specialize per type

// ---------------------------------------------------------------------------
// Wire classification (the unsafe_mpi observation: trivially-copyable
// aggregates need no serialization at all — raw size + bytes suffice).

enum class WireClass {
    trivially_wireable,   // one CONTIG transfer of the object bytes
    contiguous_resizable, // two-entry IOV: u64 payload length + payload
    needs_serializer,     // CustomSerialize<T> (today's path)
};

// A type whose object representation can go on the wire verbatim. Beyond
// std::is_trivially_copyable this excludes pointers (meaningless on the
// remote side) and raw arrays (no assignable receive object), and
// *includes* two formally-non-trivial but bitwise-safe shapes:
// std::pair (its user-provided operator= defeats is_trivially_copyable)
// and std::array, both recursively over their members.
template <typename T>
struct is_trivially_wireable
    : std::bool_constant<std::is_trivially_copyable_v<T> &&
                         !std::is_pointer_v<T> && !std::is_member_pointer_v<T> &&
                         !std::is_array_v<T> && !std::is_void_v<T>> {};

template <typename A, typename B>
struct is_trivially_wireable<std::pair<A, B>>
    : std::bool_constant<is_trivially_wireable<A>::value &&
                         is_trivially_wireable<B>::value &&
                         std::is_trivially_destructible_v<std::pair<A, B>>> {};

template <typename U, std::size_t N>
struct is_trivially_wireable<std::array<U, N>>
    : std::bool_constant<is_trivially_wireable<U>::value> {};

template <typename T>
inline constexpr bool is_trivially_wireable_v = is_trivially_wireable<T>::value;

// wire_traits<T>::value — the WireClass of T. Only default-allocator
// vectors/strings classify as contiguous_resizable (the fallback serializer
// and the wire header are defined for exactly those); vector<bool> is a
// bitset in disguise and has no contiguous element storage.
template <typename T>
struct wire_traits {
    static constexpr WireClass value = is_trivially_wireable_v<T>
                                           ? WireClass::trivially_wireable
                                           : WireClass::needs_serializer;
};

template <typename U>
struct wire_traits<std::vector<U>> {
    static constexpr WireClass value =
        (is_trivially_wireable_v<U> && !std::is_same_v<U, bool>)
            ? WireClass::contiguous_resizable
            : WireClass::needs_serializer;
};

template <typename C>
struct wire_traits<std::basic_string<C>> {
    static constexpr WireClass value = is_trivially_wireable_v<C>
                                           ? WireClass::contiguous_resizable
                                           : WireClass::needs_serializer;
};

template <typename T>
inline constexpr WireClass wire_class_v = wire_traits<T>::value;

// Concepts over the classification, used by mpicd::send/recv to pick the
// transfer path at compile time.
template <typename T>
concept TriviallyWireable = wire_class_v<T> == WireClass::trivially_wireable;

template <typename T>
concept ContiguousResizable = wire_class_v<T> == WireClass::contiguous_resizable;

// True when CustomSerialize<T> is specialized (complete) in this
// translation unit — the specialization must be visible at the call site.
template <typename T>
concept HasCustomSerialize = requires { sizeof(CustomSerialize<T>); };

template <typename T>
concept NeedsSerializer = wire_class_v<T> == WireClass::needs_serializer;

// Anything mpicd::send/recv can move: a wire-classified shape, or a type
// with an explicit serializer.
template <typename T>
concept WireSendable =
    TriviallyWireable<T> || ContiguousResizable<T> || HasCustomSerialize<T>;

namespace detail {

template <typename T, typename CS>
concept HasRegionsCS = requires(typename CS::State& st, T* buf, Count count,
                                Count* n, void** bases, Count* lens) {
    { CS::region_count(st, buf, count, n) } -> std::same_as<Status>;
    { CS::regions(st, buf, count, Count{}, bases, lens) } -> std::same_as<Status>;
};

template <typename T>
concept HasRegions = HasRegionsCS<T, CustomSerialize<T>>;

// Erases a CustomSerialize-shaped trait class CS into CustomDatatype
// callbacks. CS defaults to the type's own specialization; the fast path's
// MPICD_FAST_PATH=0 fallback substitutes WireFallbackSerialize<T> for
// types that have no specialization of their own.
template <typename T, typename CS = CustomSerialize<T>>
class Adapter {
    using State = typename CS::State;

    static Status state_fn(void* /*context*/, const void* src, Count count,
                           void** state) {
        auto op = std::make_unique<State>();
        MPICD_RETURN_IF_ERROR(CS::init(static_cast<const T*>(src), count, *op));
        *state = op.release();
        return Status::success;
    }
    static Status state_free_fn(void* state) {
        delete static_cast<State*>(state);
        return Status::success;
    }
    static Status query_fn(void* state, const void* buf, Count count, Count* size) {
        return CS::packed_size(*static_cast<State*>(state), static_cast<const T*>(buf),
                               count, size);
    }
    static Status pack_fn(void* state, const void* buf, Count count, Count offset,
                          void* dst, Count dst_size, Count* used) {
        return CS::pack(*static_cast<State*>(state), static_cast<const T*>(buf), count,
                        offset, dst, dst_size, used);
    }
    static Status unpack_fn(void* state, void* buf, Count count, Count offset,
                            const void* src, Count src_size) {
        return CS::unpack(*static_cast<State*>(state), static_cast<T*>(buf), count,
                          offset, src, src_size);
    }
    static Status region_count_fn(void* state, void* buf, Count count, Count* n) {
        if constexpr (HasRegionsCS<T, CS>) {
            return CS::region_count(*static_cast<State*>(state), static_cast<T*>(buf),
                                    count, n);
        } else {
            (void)state; (void)buf; (void)count; (void)n;
            return Status::err_internal;
        }
    }
    static Status region_fn(void* state, void* buf, Count count, Count n, void** bases,
                            Count* lens) {
        if constexpr (HasRegionsCS<T, CS>) {
            return CS::regions(*static_cast<State*>(state), static_cast<T*>(buf), count,
                               n, bases, lens);
        } else {
            (void)state; (void)buf; (void)count; (void)n; (void)bases; (void)lens;
            return Status::err_internal;
        }
    }

public:
    [[nodiscard]] static const CustomDatatype& datatype() {
        static const CustomDatatype dt = [] {
            CustomCallbacks cb;
            cb.state = state_fn;
            cb.state_free = state_free_fn;
            cb.query = query_fn;
            cb.pack = pack_fn;
            cb.unpack = unpack_fn;
            if constexpr (HasRegionsCS<T, CS>) {
                cb.region_count = region_count_fn;
                cb.region = region_fn;
            }
            cb.inorder = CS::inorder;
            CustomDatatype out;
            const Status st = CustomDatatype::create(cb, &out);
            (void)st; // the adapter always provides a complete callback set
            return out;
        }();
        return dt;
    }
};

} // namespace detail

// The process-wide committed custom datatype for T (cached, like RSMPI's
// first-use datatype caching the paper describes in §II-D).
template <typename T>
[[nodiscard]] const CustomDatatype& custom_datatype_of() {
    return detail::Adapter<T>::datatype();
}

} // namespace mpicd::core
