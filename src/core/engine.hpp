// Custom-datatype engine: lowers a (CustomDatatype, buffer, count) triple
// onto a transport BufferDesc, exactly the way the paper's prototype maps
// custom types onto UCP_DATATYPE_IOV: the packed bytes are the first iovec
// entry, followed by the application-exposed memory regions.
//
// Two lowerings are provided:
//  - iov (default, the paper's): the packed portion is materialized up
//    front through fragment-wise pack callbacks, regions ride zero-copy;
//  - generic_pipeline (ablation A2 in DESIGN.md): the pack callbacks are
//    driven lazily by the transport's fragment pipeline, honoring the
//    `inorder` flag; regions are not used. An advanced MPI could choose
//    this per message; comparing both is instructive.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "base/time.hpp"
#include "core/custom_type.hpp"
#include "ucx/datatype.hpp"
#include "ucx/worker.hpp"

namespace mpicd::core {

enum class CustomLowering {
    iov,              // packed-first iovec (paper prototype behaviour)
    generic_pipeline, // transport-driven fragment pack/unpack
};

// Fragment size used when materializing the packed portion. Mirrors the
// pipeline buffer size a real implementation would use.
[[nodiscard]] Count custom_pack_frag_size();

// Uncached env read behind custom_pack_frag_size(). A non-positive
// MPICD_CUSTOM_PACK_FRAG would make the fragment loop request zero bytes
// per pack callback and fail every send with err_pack, so values <= 0
// fall back to the default. Tests call this directly to cover the clamp.
[[nodiscard]] Count custom_pack_frag_from_env();

// --- Zero-serialization fast path (docs/API.md §7) -------------------------
//
// MPICD_FAST_PATH gates whether mpicd::send/recv route trivially-wireable
// and contiguous-resizable types straight to CONTIG / two-entry IOV
// transfers. Default ON; 0 restores the CustomSerialize lowering (wire
// behavior byte-identical to the pre-fast-path library).

// Cached process-wide switch (first use reads the environment). Benches
// and tests flip it at runtime with set_fast_path().
[[nodiscard]] bool fast_path_enabled() noexcept;
void set_fast_path(bool on) noexcept;

// Uncached env read behind fast_path_enabled(): values other than 0/1 are
// clamped to the default (on) with a warn-once message, matching the other
// MPICD_* knobs. Tests call this directly to cover the clamp.
[[nodiscard]] bool fast_path_from_env();

// fastpath/* counters in the MetricsRegistry: operations served per wire
// class, payload bytes that bypassed the pack machinery, and the pack-plan
// compilations / serializer lowerings that were skipped. References are
// stable for the process lifetime (hot paths cache this struct).
struct FastPathCounters {
    std::atomic<std::uint64_t>& hits_trivial;      // CONTIG fast sends+recvs
    std::atomic<std::uint64_t>& hits_resizable;    // two-entry IOV ops
    std::atomic<std::uint64_t>& bytes_bypassed;    // payload bytes, no pack copy
    std::atomic<std::uint64_t>& plan_compiles_avoided; // lowerings skipped
    std::atomic<std::uint64_t>& fallback_ops;      // eligible ops run with knob off
    std::atomic<std::uint64_t>& serializer_ops;    // NeedsSerializer dispatches
};
[[nodiscard]] FastPathCounters& fastpath_counters() noexcept;

// --- Send side -------------------------------------------------------------

// Lower a custom-type send buffer. Host work (query/pack callbacks) is
// measured and charged to `worker`'s virtual clock. On success `out` is
// ready for Worker::tag_send; all state has been freed (the packed bytes
// are owned by the descriptor's backing store).
[[nodiscard]] Status lower_custom_send(const CustomDatatype& type, const void* buf,
                                       Count count, ucx::Worker& worker,
                                       ucx::BufferDesc* out,
                                       CustomLowering lowering = CustomLowering::iov);

// --- Receive side ------------------------------------------------------------

// A lowered custom-type receive: the descriptor plus the deferred unpack
// step that scatters the packed portion into the user object once the
// transport completes. The paper's receive-side contract applies: the
// receiving object must already describe the expected sizes (query and
// region callbacks run on the *receive* buffer before any data arrives).
class CustomRecvOp {
public:
    CustomRecvOp() = default;
    ~CustomRecvOp();
    CustomRecvOp(CustomRecvOp&&) noexcept;
    CustomRecvOp& operator=(CustomRecvOp&&) noexcept;
    CustomRecvOp(const CustomRecvOp&) = delete;
    CustomRecvOp& operator=(const CustomRecvOp&) = delete;

    [[nodiscard]] ucx::BufferDesc& desc() noexcept { return desc_; }

    // Run the deferred unpack (if any); measured time is charged to
    // `worker`. Idempotent: the second call is a no-op.
    [[nodiscard]] Status finish(ucx::Worker& worker);

    [[nodiscard]] Count expected_packed() const noexcept { return packed_size_; }
    [[nodiscard]] Count expected_total() const noexcept { return total_; }

private:
    friend Status lower_custom_recv(const CustomDatatype&, void*, Count, ucx::Worker&,
                                    CustomRecvOp*, CustomLowering);

    ucx::BufferDesc desc_;
    const CustomDatatype* type_ = nullptr; // borrowed; must outlive the op
    void* state_ = nullptr;
    void* buf_ = nullptr;
    Count count_ = 0;
    Count packed_size_ = 0;
    Count total_ = 0;
    std::shared_ptr<ByteVec> packed_; // shared with desc_ backing
    bool finished_ = true;            // becomes false when unpack is pending
};

[[nodiscard]] Status lower_custom_recv(const CustomDatatype& type, void* buf,
                                       Count count, ucx::Worker& worker,
                                       CustomRecvOp* out,
                                       CustomLowering lowering = CustomLowering::iov);

} // namespace mpicd::core
