// Custom datatype API — the paper's primary contribution (Listings 2–5).
//
// A custom datatype is a set of application callbacks that give the MPI
// library two capabilities the classic derived-datatype interface lacks:
//   i)  fragment-oriented packing of non-contiguous / serialized data with
//       virtual offsets (pack/unpack callbacks), and
//   ii) extraction of contiguous memory regions that can go on the wire
//       with no copy at all (region callbacks -> scatter-gather iovec).
// Per-operation *state* objects carry application context between callback
// invocations of a single send or receive (Listing 3).
//
// This header is the C++ face; src/core/capi.hpp exposes the exact C
// signatures from the paper on top of it.
#pragma once

#include "base/bytes.hpp"
#include "base/status.hpp"

namespace mpicd::core {

// Callback signatures, mirroring paper Listings 3–5 with C++ Status in
// place of int error codes. All pointers follow the paper's contracts.
struct CustomCallbacks {
    // Listing 3: per-operation state management. `state` may be left null
    // by simple types; it is threaded through every other callback.
    Status (*state)(void* context, const void* src, Count src_count,
                    void** state) = nullptr;
    Status (*state_free)(void* state) = nullptr;

    // Listing 4: total packed size of the in-band (packed) portion.
    Status (*query)(void* state, const void* buf, Count count,
                    Count* packed_size) = nullptr;
    // Pack up to dst_size bytes at virtual offset `offset` of the packed
    // stream into dst. May fill the buffer only partially (*used < dst_size).
    Status (*pack)(void* state, const void* buf, Count count, Count offset,
                   void* dst, Count dst_size, Count* used) = nullptr;
    // Unpack one fragment of the packed stream received at `offset`.
    Status (*unpack)(void* state, void* buf, Count count, Count offset,
                     const void* src, Count src_size) = nullptr;

    // Listing 5: memory-region (iovec) extraction. Optional as a pair;
    // a type with no regions is fully packed.
    Status (*region_count)(void* state, void* buf, Count count,
                           Count* region_count) = nullptr;
    Status (*region)(void* state, void* buf, Count count, Count region_count,
                     void* reg_bases[], Count reg_lens[]) = nullptr;

    // Opaque application context passed to the state callback (Listing 2).
    void* context = nullptr;
    // Paper Listing 2: when true the implementation must deliver packed
    // fragments in increasing-offset order, inhibiting out-of-order
    // optimizations.
    bool inorder = false;
};

// An immutable committed custom datatype (MPI_Type_create_custom result).
class CustomDatatype {
public:
    // Validates the callback set: query/pack/unpack are mandatory;
    // region_count and region must be provided together.
    [[nodiscard]] static Status create(const CustomCallbacks& cb, CustomDatatype* out);

    CustomDatatype() = default;

    [[nodiscard]] const CustomCallbacks& callbacks() const noexcept { return cb_; }
    [[nodiscard]] bool inorder() const noexcept { return cb_.inorder; }
    [[nodiscard]] bool has_regions() const noexcept {
        return cb_.region_count != nullptr;
    }
    [[nodiscard]] bool valid() const noexcept { return cb_.pack != nullptr; }

    // Convenience wrappers that tolerate null optional callbacks.
    [[nodiscard]] Status make_state(const void* buf, Count count, void** state) const;
    void free_state(void* state) const;

private:
    CustomCallbacks cb_{};
};

} // namespace mpicd::core
