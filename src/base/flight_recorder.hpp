// Post-mortem flight recorder (see docs/OBSERVABILITY.md).
//
// When armed via MPICD_FLIGHT_RECORDER=<path>, protocol-level failures —
// a request failing with Status::timeout, a CRC-rejected packet, watchdog
// escalation — append a dump to <path>: the trigger reason, the newest
// trace-ring events, and the state of every registered source (each ucx
// worker registers one that prints its in-flight message table, pending
// retransmit queue, and per-peer protocol state).
//
// Arming the recorder also enables tracing (the ring would otherwise be
// empty at dump time). Disarmed, every trigger site costs one relaxed
// atomic load.
//
// Deadlock rule: trigger sites usually hold their own worker's mutex, so
// a worker passes its own registration token plus a `self_dump` closure —
// the recorder calls that closure instead of the registered callback for
// the triggering source, and every *other* source's callback must acquire
// its lock with try_lock and print "<busy>" on failure.
//
// Env knobs:
//   MPICD_FLIGHT_RECORDER=p  arm; append dumps to file p ("-" = stderr)
//   MPICD_FLIGHT_MAX=n       dump at most n times per process (default 4)
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace mpicd::flight {

namespace detail {
// -1 = not yet initialized from the environment, 0 = disarmed, 1 = armed.
extern std::atomic<int> g_state;
int init_from_env() noexcept;
} // namespace detail

// The one-load gate every trigger site checks first.
[[nodiscard]] inline bool enabled() noexcept {
    const int s = detail::g_state.load(std::memory_order_relaxed);
    return s > 0 || (s < 0 && detail::init_from_env() > 0);
}

// Programmatic arm/disarm (tests). Arming with an empty path sends dumps
// to stderr.
void set_enabled(bool on, const std::string& path = std::string());

// Writes one source's state into a dump in progress.
using DumpFn = std::function<void(std::FILE*)>;

// Register a named dump source; returns a token (never 0) to unregister
// with (sources deregister in their destructor). Cheap; sources are only
// consulted when a dump fires.
std::uint64_t register_source(std::string name, DumpFn fn);
void unregister_source(std::uint64_t token);

// Append one dump: header (reason, message id if known, wall/virtual
// time), the newest trace-ring events, then every source. `self_token` /
// `self_dump` substitute for the triggering source per the deadlock rule
// above. No-op when disarmed or the per-process dump budget is spent.
void trigger(const char* reason, std::uint64_t msg_id = 0,
             double vtime_us = -1.0, std::uint64_t self_token = 0,
             const DumpFn& self_dump = nullptr);

// Dumps written so far (tests).
[[nodiscard]] std::uint64_t dump_count() noexcept;

} // namespace mpicd::flight
