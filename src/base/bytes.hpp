// Byte-span aliases and small helpers used across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace mpicd {

using ConstBytes = std::span<const std::byte>;
using MutBytes = std::span<std::byte>;
using ByteVec = std::vector<std::byte>;

// MPI-style large count (the paper's callbacks all use MPI_Count).
// `long long` rather than int64_t so it is the SAME type as the C API's
// MPI_Count on every platform (int64_t is `long` on LP64).
using Count = long long;
static_assert(sizeof(Count) == 8);

[[nodiscard]] inline ConstBytes as_bytes_of(const void* p, std::size_t n) noexcept {
    return {static_cast<const std::byte*>(p), n};
}

[[nodiscard]] inline MutBytes as_mut_bytes_of(void* p, std::size_t n) noexcept {
    return {static_cast<std::byte*>(p), n};
}

template <typename T>
[[nodiscard]] ConstBytes object_bytes(const T& v) noexcept {
    return as_bytes_of(&v, sizeof(T));
}

[[nodiscard]] constexpr std::size_t align_up(std::size_t n, std::size_t a) noexcept {
    return (n + a - 1) / a * a;
}

// Copy `src` into `dst` at `offset`, growing `dst` as needed.
inline void append_bytes(ByteVec& dst, ConstBytes src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

// A single scatter/gather entry — the unit of the paper's "memory region"
// concept (Listing 5) and of the UCP iovec datatype.
struct IovEntry {
    void* base = nullptr;
    Count len = 0; // bytes
};

struct ConstIovEntry {
    const void* base = nullptr;
    Count len = 0; // bytes
};

[[nodiscard]] inline Count iov_total(std::span<const IovEntry> iov) noexcept {
    Count t = 0;
    for (const auto& e : iov) t += e.len;
    return t;
}

[[nodiscard]] inline Count iov_total(std::span<const ConstIovEntry> iov) noexcept {
    Count t = 0;
    for (const auto& e : iov) t += e.len;
    return t;
}

} // namespace mpicd
