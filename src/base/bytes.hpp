// Byte-span aliases and small helpers used across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace mpicd {

using ConstBytes = std::span<const std::byte>;
using MutBytes = std::span<std::byte>;
using ByteVec = std::vector<std::byte>;

// MPI-style large count (the paper's callbacks all use MPI_Count).
// `long long` rather than int64_t so it is the SAME type as the C API's
// MPI_Count on every platform (int64_t is `long` on LP64).
using Count = long long;
static_assert(sizeof(Count) == 8);

[[nodiscard]] inline ConstBytes as_bytes_of(const void* p, std::size_t n) noexcept {
    return {static_cast<const std::byte*>(p), n};
}

[[nodiscard]] inline MutBytes as_mut_bytes_of(void* p, std::size_t n) noexcept {
    return {static_cast<std::byte*>(p), n};
}

template <typename T>
[[nodiscard]] ConstBytes object_bytes(const T& v) noexcept {
    return as_bytes_of(&v, sizeof(T));
}

[[nodiscard]] constexpr std::size_t align_up(std::size_t n, std::size_t a) noexcept {
    return (n + a - 1) / a * a;
}

// Copy `src` into `dst` at `offset`, growing `dst` as needed.
inline void append_bytes(ByteVec& dst, ConstBytes src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

// A single scatter/gather entry — the unit of the paper's "memory region"
// concept (Listing 5) and of the UCP iovec datatype.
struct IovEntry {
    void* base = nullptr;
    Count len = 0; // bytes
};

struct ConstIovEntry {
    const void* base = nullptr;
    Count len = 0; // bytes
};

[[nodiscard]] inline Count iov_total(std::span<const IovEntry> iov) noexcept {
    Count t = 0;
    for (const auto& e : iov) t += e.len;
    return t;
}

[[nodiscard]] inline Count iov_total(std::span<const ConstIovEntry> iov) noexcept {
    Count t = 0;
    for (const auto& e : iov) t += e.len;
    return t;
}

// Merge runs of exactly-adjacent entries in place (entry i+1 starts at the
// byte where entry i ends). Only exact adjacency may be merged: the gathered
// stream is the concatenation of the entries in order, so merging anything
// else (gaps, overlaps, out-of-address-order neighbours) would change the
// delivered bytes. Entries before `from` are left untouched (an appender
// can pass from = old_size - 1 to allow its first new entry to merge into
// the existing tail without revisiting the rest). Returns the number of
// entries eliminated.
template <typename Entry>
inline std::size_t coalesce_iov(std::vector<Entry>& v, std::size_t from = 0) {
    if (v.size() < 2 || from + 1 >= v.size()) return 0;
    std::size_t out = from;
    for (std::size_t i = from + 1; i < v.size(); ++i) {
        const auto* prev_end =
            static_cast<const std::byte*>(v[out].base) + v[out].len;
        if (static_cast<const std::byte*>(v[i].base) == prev_end) {
            v[out].len += v[i].len;
        } else {
            v[++out] = v[i];
        }
    }
    const std::size_t removed = v.size() - (out + 1);
    v.resize(out + 1);
    return removed;
}

} // namespace mpicd
