#include "base/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "base/stats.hpp"
#include "base/trace.hpp"

namespace mpicd {

struct MetricsRegistry::Impl {
    mutable std::mutex mu;
    // Nested maps keep snapshots naturally sorted by (group, name); the
    // atomics are heap-anchored so references stay valid across rehashing.
    std::map<std::string, std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>>>
        groups;
};

MetricsRegistry& MetricsRegistry::instance() noexcept {
    // Leaked on purpose: counters and JSON dumps must stay usable from
    // atexit hooks and destructors of objects with static storage.
    static MetricsRegistry* reg = new MetricsRegistry();
    return *reg;
}

MetricsRegistry& metrics() noexcept { return MetricsRegistry::instance(); }

MetricsRegistry::Impl& MetricsRegistry::impl() const noexcept {
    static Impl* impl = new Impl();
    return *impl;
}

std::atomic<std::uint64_t>& MetricsRegistry::counter(const std::string& group,
                                                     const std::string& name) {
    Impl& im = impl();
    const std::lock_guard<std::mutex> lock(im.mu);
    auto& slot = im.groups[group][name];
    if (slot == nullptr) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
    return *slot;
}

void MetricsRegistry::add(const std::string& group, const std::string& name,
                          std::uint64_t delta) {
    counter(group, name).fetch_add(delta, std::memory_order_relaxed);
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
    std::vector<MetricSample> out;
    {
        Impl& im = impl();
        const std::lock_guard<std::mutex> lock(im.mu);
        for (const auto& [group, names] : im.groups) {
            for (const auto& [name, value] : names) {
                out.push_back(
                    {group, name, value->load(std::memory_order_relaxed)});
            }
        }
    }
    append_pack_metrics(out);
    trace::append_metrics(out);
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return a.group != b.group ? a.group < b.group : a.name < b.name;
    });
    return out;
}

void MetricsRegistry::reset() {
    {
        Impl& im = impl();
        const std::lock_guard<std::mutex> lock(im.mu);
        for (auto& [group, names] : im.groups) {
            for (auto& [name, value] : names) {
                value->store(0, std::memory_order_relaxed);
            }
        }
    }
    pack_stats().reset();
}

void MetricsRegistry::write_json(std::FILE* out, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const auto samples = snapshot();
    std::fprintf(out, "{");
    std::string open_group;
    bool first_group = true;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const MetricSample& s = samples[i];
        if (s.group != open_group) {
            if (!open_group.empty()) std::fprintf(out, "\n%s  }", pad.c_str());
            std::fprintf(out, "%s\n%s  \"%s\": {", first_group ? "" : ",",
                         pad.c_str(), s.group.c_str());
            open_group = s.group;
            first_group = false;
            std::fprintf(out, "\n%s    \"%s\": %llu", pad.c_str(), s.name.c_str(),
                         static_cast<unsigned long long>(s.value));
        } else {
            std::fprintf(out, ",\n%s    \"%s\": %llu", pad.c_str(),
                         s.name.c_str(),
                         static_cast<unsigned long long>(s.value));
        }
    }
    if (!open_group.empty()) std::fprintf(out, "\n%s  }", pad.c_str());
    std::fprintf(out, "\n%s}", pad.c_str());
}

std::string MetricsRegistry::to_json(int indent) const {
    std::string out;
    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    if (mem == nullptr) return "{}";
    write_json(mem, indent);
    std::fclose(mem);
    out.assign(buf, len);
    std::free(buf);
    return out;
}

} // namespace mpicd
