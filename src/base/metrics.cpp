#include "base/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "base/pool.hpp"
#include "base/stats.hpp"
#include "base/trace.hpp"

namespace mpicd {

struct MetricsRegistry::Impl {
    mutable std::mutex mu;
    // Nested maps keep snapshots naturally sorted by (group, name); the
    // atomics are heap-anchored so references stay valid across rehashing.
    std::map<std::string, std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>>>
        groups;
    std::map<std::string, std::map<std::string, std::unique_ptr<Histogram>>>
        hists;
};

MetricsRegistry& MetricsRegistry::instance() noexcept {
    // Leaked on purpose: counters and JSON dumps must stay usable from
    // atexit hooks and destructors of objects with static storage.
    static MetricsRegistry* reg = new MetricsRegistry();
    return *reg;
}

MetricsRegistry& metrics() noexcept { return MetricsRegistry::instance(); }

MetricsRegistry::Impl& MetricsRegistry::impl() const noexcept {
    static Impl* impl = new Impl();
    return *impl;
}

std::atomic<std::uint64_t>& MetricsRegistry::counter(const std::string& group,
                                                     const std::string& name) {
    Impl& im = impl();
    const std::lock_guard<std::mutex> lock(im.mu);
    auto& slot = im.groups[group][name];
    if (slot == nullptr) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
    return *slot;
}

void MetricsRegistry::add(const std::string& group, const std::string& name,
                          std::uint64_t delta) {
    counter(group, name).fetch_add(delta, std::memory_order_relaxed);
}

Histogram& MetricsRegistry::histogram(const std::string& group,
                                      const std::string& name) {
    Impl& im = impl();
    const std::lock_guard<std::mutex> lock(im.mu);
    auto& slot = im.hists[group][name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<HistSample> MetricsRegistry::hist_snapshot() const {
    std::vector<HistSample> out;
    Impl& im = impl();
    const std::lock_guard<std::mutex> lock(im.mu);
    for (const auto& [group, names] : im.hists) {
        for (const auto& [name, hist] : names) {
            out.push_back({group, name, hist->snapshot()});
        }
    }
    return out; // nested maps keep (group, name) order
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
    std::vector<MetricSample> out;
    {
        Impl& im = impl();
        const std::lock_guard<std::mutex> lock(im.mu);
        for (const auto& [group, names] : im.groups) {
            for (const auto& [name, value] : names) {
                out.push_back(
                    {group, name, value->load(std::memory_order_relaxed)});
            }
        }
    }
    append_pack_metrics(out);
    append_pool_metrics(out);
    trace::append_metrics(out);
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return a.group != b.group ? a.group < b.group : a.name < b.name;
    });
    return out;
}

void MetricsRegistry::reset() {
    {
        Impl& im = impl();
        const std::lock_guard<std::mutex> lock(im.mu);
        for (auto& [group, names] : im.groups) {
            for (auto& [name, value] : names) {
                value->store(0, std::memory_order_relaxed);
            }
        }
        for (auto& [group, names] : im.hists) {
            for (auto& [name, hist] : names) hist->reset();
        }
    }
    pack_stats().reset();
    reset_pool_metrics();
}

void MetricsRegistry::write_json(std::FILE* out, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    // Counters render as bare numbers, histograms as one-line objects;
    // merging both into one name-sorted map per group keeps each group a
    // single JSON object regardless of which kind a name is.
    std::map<std::string, std::map<std::string, std::string>> rendered;
    for (const auto& s : snapshot()) {
        rendered[s.group][s.name] = std::to_string(s.value);
    }
    for (const auto& h : hist_snapshot()) {
        const Histogram::Snapshot& s = h.snap;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "{\"count\": %llu, \"sum\": %llu, \"max\": %llu, "
                      "\"mean\": %.3f, \"p50\": %.3f, \"p95\": %.3f, "
                      "\"p99\": %.3f}",
                      static_cast<unsigned long long>(s.count),
                      static_cast<unsigned long long>(s.sum),
                      static_cast<unsigned long long>(s.max), s.mean(),
                      s.percentile(50.0), s.percentile(95.0),
                      s.percentile(99.0));
        rendered[h.group][h.name] = buf;
    }
    std::fprintf(out, "{");
    bool first_group = true;
    for (const auto& [group, names] : rendered) {
        std::fprintf(out, "%s\n%s  \"%s\": {", first_group ? "" : ",",
                     pad.c_str(), group.c_str());
        first_group = false;
        bool first_name = true;
        for (const auto& [name, value] : names) {
            std::fprintf(out, "%s\n%s    \"%s\": %s", first_name ? "" : ",",
                         pad.c_str(), name.c_str(), value.c_str());
            first_name = false;
        }
        std::fprintf(out, "\n%s  }", pad.c_str());
    }
    std::fprintf(out, "\n%s}", pad.c_str());
}

std::string MetricsRegistry::to_json(int indent) const {
    std::string out;
    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    if (mem == nullptr) return "{}";
    write_json(mem, indent);
    std::fclose(mem);
    out.assign(buf, len);
    std::free(buf);
    return out;
}

} // namespace mpicd
