// Slab buffer pool for the transport hot datapath (see docs/PERF.md §8).
//
// Every payload-sized allocation on the pack/transport path — eager send
// buffers, rendezvous pipeline fragments, the RDMA bounce buffer,
// netsim::Packet payloads, retransmit-queue copies and the receive-side
// fragment stash — goes through BufferPool::acquire() and comes back as a
// refcounted RAII PooledBuf handle backed by a size-classed slab:
//
//  - pool ON (MPICD_POOL=1, the default): slabs are recycled through
//    per-class freelists, so a steady-state rendezvous stream performs no
//    heap allocation at all; *copies* of a PooledBuf share the slab
//    (refcount), so the reliable-delivery retransmit queue re-references
//    the payload instead of duplicating it. In-place mutation of a shared
//    buffer must call ensure_unique() first (copy-on-write) — the fault
//    injector's corruption stage is the only such site.
//  - pool OFF (MPICD_POOL=0): acquire() degenerates to plain heap
//    allocation and copies are deep copies — byte-for-byte the seed
//    behaviour, used as the ablation baseline
//    (bench/ablation_datapath.cpp asserts the wire schedule is identical
//    in both modes, including over a lossy fabric).
//
// Copy-amplification accounting: every transport memcpy site adds to the
// process-wide datapath::bytes_copied() counter and every completed
// receive adds to datapath::bytes_delivered(); their ratio (copy_amp) is
// embedded in every BENCH_<name>.json (see bench/common.hpp). Deep
// copies, copy-on-write detaches and shrink re-slabs count themselves.
//
// Thread-safety: acquire/release take one pool mutex (slabs move between
// threads, e.g. sender-allocated payloads released by the receiver rank);
// the refcount and all counters are atomics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "base/bytes.hpp"

namespace mpicd {

struct MetricSample;

// ---------------------------------------------------------------------------
// Copy-amplification counters (group "datapath" in the MetricsRegistry).

namespace datapath {

[[nodiscard]] std::atomic<std::uint64_t>& bytes_copied() noexcept;
[[nodiscard]] std::atomic<std::uint64_t>& bytes_delivered() noexcept;
// Bytes moved region-to-region by the simulated NIC's scatter-gather DMA
// (the zero-copy rendezvous path): no host CPU touches them, so they are
// deliberately NOT part of bytes_copied / copy_amp.
[[nodiscard]] std::atomic<std::uint64_t>& bytes_dma() noexcept;

// One relaxed add per memcpy site / receive completion (same pattern as
// the pack-path counters in base/stats.hpp).
inline void add_copied(Count n) noexcept {
    if (n > 0)
        bytes_copied().fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
}
inline void add_delivered(Count n) noexcept {
    if (n > 0)
        bytes_delivered().fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
}
inline void add_dma(Count n) noexcept {
    if (n > 0)
        bytes_dma().fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
}

} // namespace datapath

// ---------------------------------------------------------------------------
// Slab header, stored immediately in front of the payload bytes so one
// allocation carries refcount + class + data (16 bytes, keeps the payload
// 16-aligned under the usual operator-new guarantees).

struct PoolSlab {
    std::atomic<std::uint32_t> refs{1};
    std::uint16_t cls = 0xFFFF;  // size-class index; 0xFFFF = unclassed
    std::uint16_t flags = 0;     // kSlabShareable
    std::size_t cap = 0;         // usable payload bytes
    [[nodiscard]] std::byte* data() noexcept {
        return reinterpret_cast<std::byte*>(this + 1);
    }
    [[nodiscard]] const std::byte* data() const noexcept {
        return reinterpret_cast<const std::byte*>(this + 1);
    }
};

inline constexpr std::uint16_t kSlabShareable = 1; // copies share (refcount)
inline constexpr std::uint16_t kSlabNoClass = 0xFFFF;

// ---------------------------------------------------------------------------
// PooledBuf: refcounted RAII handle over a slab. The logical size lives in
// the handle, so a shrink (short custom-type read) or a shared view never
// touches the slab itself.

class PooledBuf {
public:
    PooledBuf() noexcept = default;
    // Copy: shares the slab when it is shareable (pool was on at acquire
    // time), deep-copies otherwise — deep copies count into
    // datapath::bytes_copied().
    PooledBuf(const PooledBuf& other);
    PooledBuf& operator=(const PooledBuf& other);
    PooledBuf(PooledBuf&& other) noexcept
        : slab_(other.slab_), size_(other.size_) {
        other.slab_ = nullptr;
        other.size_ = 0;
    }
    PooledBuf& operator=(PooledBuf&& other) noexcept;
    ~PooledBuf();

    // Acquire an uninitialized buffer of `n` bytes from the process pool.
    [[nodiscard]] static PooledBuf make(std::size_t n);
    // Acquire + copy `src` in (counted as copied bytes).
    [[nodiscard]] static PooledBuf copy_of(ConstBytes src);

    [[nodiscard]] std::byte* data() noexcept {
        return slab_ != nullptr ? slab_->data() : nullptr;
    }
    [[nodiscard]] const std::byte* data() const noexcept {
        return slab_ != nullptr ? slab_->data() : nullptr;
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return slab_ != nullptr ? slab_->cap : 0;
    }
    [[nodiscard]] MutBytes span() noexcept { return {data(), size_}; }
    [[nodiscard]] ConstBytes cspan() const noexcept { return {data(), size_}; }
    [[nodiscard]] std::byte& operator[](std::size_t i) noexcept {
        return data()[i];
    }
    [[nodiscard]] const std::byte& operator[](std::size_t i) const noexcept {
        return data()[i];
    }

    // Drop this handle's reference (buffer becomes empty).
    void reset() noexcept;

    // Logically shrink to `n` bytes (n <= size()). When this handle is the
    // sole owner and the shrink frees at least a whole smaller size class,
    // the bytes move to a right-sized slab so a short-read fragment does
    // not pin full-fragment memory for its wire + retransmit lifetime.
    void shrink_to(std::size_t n);

    // Copy-on-write: after this call the handle is the sole owner of its
    // bytes. Required before any in-place mutation of a possibly-shared
    // buffer (e.g. fault-injected corruption must not damage the
    // retransmit queue's pristine copy).
    void ensure_unique();

    [[nodiscard]] bool unique() const noexcept {
        return slab_ == nullptr ||
               slab_->refs.load(std::memory_order_acquire) == 1;
    }
    // True when copies of this handle share the slab (pool-backed).
    [[nodiscard]] bool shareable() const noexcept {
        return slab_ != nullptr && (slab_->flags & kSlabShareable) != 0;
    }

private:
    friend class BufferPool;
    PoolSlab* slab_ = nullptr;
    std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// BufferPool: process-wide size-classed freelists.

struct PoolStats {
    std::uint64_t hits = 0;        // acquires served from a freelist
    std::uint64_t misses = 0;      // acquires that hit the heap (pool on)
    std::uint64_t heap_allocs = 0; // acquires with the pool disabled
    std::uint64_t returns = 0;     // slabs returned to a freelist
    std::uint64_t frees = 0;       // slabs released to the heap
    std::uint64_t bytes_cached = 0; // currently cached (gauge)
    std::uint64_t outstanding = 0;  // live PooledBuf-owned slabs (gauge)
};

class BufferPool {
public:
    // Size classes: powers of two, kMinClass .. kMaxClass; larger requests
    // fall back to exact heap allocations (never cached).
    static constexpr std::size_t kMinClass = 256;
    static constexpr std::size_t kMaxClass = std::size_t{4} << 20; // 4 MiB
    static constexpr std::size_t kNumClasses = 15; // 256 B .. 4 MiB

    // The process-wide instance (leaked on purpose, like the metrics
    // registry: buffers may be released from static destructors).
    [[nodiscard]] static BufferPool& instance() noexcept;

    // Env knobs, read once at first use:
    //   MPICD_POOL            enable pooling (default 1)
    //   MPICD_POOL_MAX_PER_CLASS  cached slabs per size class (default 32)
    //   MPICD_POOL_MAX_BYTES  total cached byte cap (default 32 MiB)
    [[nodiscard]] PooledBuf acquire(std::size_t n);

    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }
    // Runtime switch used by the ablation bench and the pooled soak test;
    // affects buffers acquired from now on (outstanding buffers keep the
    // semantics they were born with). Disabling trims the freelists.
    void set_enabled(bool on);

    // Free every cached slab.
    void trim();

    [[nodiscard]] PoolStats stats() const noexcept;
    // Live buffers — the leak check: zero once every packet, request and
    // stash entry has been destroyed.
    [[nodiscard]] std::uint64_t outstanding() const noexcept {
        return outstanding_.load(std::memory_order_relaxed);
    }

private:
    friend class PooledBuf;
    friend void reset_pool_metrics() noexcept;
    BufferPool();
    [[nodiscard]] static std::uint16_t class_for(std::size_t n) noexcept;
    [[nodiscard]] static PoolSlab* new_slab(std::size_t cap, std::uint16_t cls,
                                            bool shareable);
    [[nodiscard]] PoolSlab* take(std::size_t n); // slab with refs == 1
    void release(PoolSlab* s) noexcept;          // refcount already zero

    std::atomic<bool> enabled_{true};
    std::size_t max_per_class_ = 32;
    std::size_t max_bytes_ = std::size_t{32} << 20;

    mutable std::mutex mutex_;
    std::vector<PoolSlab*> freelists_[kNumClasses];
    std::size_t bytes_cached_ = 0; // under mutex_; mirrored for stats()

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> heap_allocs_{0};
    std::atomic<std::uint64_t> returns_{0};
    std::atomic<std::uint64_t> frees_{0};
    std::atomic<std::uint64_t> bytes_cached_pub_{0};
    std::atomic<std::uint64_t> outstanding_{0};
};

// MetricsRegistry provider: appends the pool counters (group "pool") and
// the copy-amplification counters (group "datapath") to `out`; the reset
// hook zeroes the monotonic counters (gauges — bytes_cached, outstanding —
// track live state and are left alone). Wired into base/metrics.cpp.
void append_pool_metrics(std::vector<MetricSample>& out);
void reset_pool_metrics() noexcept;

} // namespace mpicd
