// Status codes shared by every layer of the library.
//
// The paper's API propagates errors through integer return values from each
// callback ("each callback returns either MPI_SUCCESS or an error value").
// We mirror that: the C++ layers use `Status`, the C API maps it onto
// MPI_SUCCESS / MPI_ERR_* style integers (see core/capi.hpp).
#pragma once

#include <cstdint>

namespace mpicd {

enum class Status : std::int32_t {
    success = 0,
    // Generic argument / usage errors.
    err_arg,          // invalid argument
    err_count,        // bad count
    err_type,         // invalid or mismatched datatype
    err_buffer,       // invalid buffer
    err_truncate,     // receive buffer too small for incoming message
    err_pending,      // operation still in progress
    // Datatype-engine errors.
    err_not_committed,  // datatype used before commit
    err_unsupported,    // operation not supported for this datatype kind
    // Custom-serialization errors (propagated from user callbacks).
    err_pack,         // pack callback failed
    err_unpack,       // unpack callback failed
    err_query,        // query callback failed
    err_region,       // region callback failed or inconsistent region data
    err_state,        // state-creation callback failed
    // Transport errors.
    err_internal,     // invariant violation inside the library
    err_no_match,     // probe with no matching message (internal use)
    err_serialize,    // serialization substrate failure (bad stream, etc.)
    // Reliable-delivery protocol (see docs/FAULTS.md).
    timeout,          // retransmit retries exhausted / peer unreachable
};

[[nodiscard]] constexpr const char* to_cstring(Status s) noexcept {
    switch (s) {
        case Status::success: return "success";
        case Status::err_arg: return "invalid argument";
        case Status::err_count: return "invalid count";
        case Status::err_type: return "invalid datatype";
        case Status::err_buffer: return "invalid buffer";
        case Status::err_truncate: return "message truncated";
        case Status::err_pending: return "operation pending";
        case Status::err_not_committed: return "datatype not committed";
        case Status::err_unsupported: return "unsupported operation";
        case Status::err_pack: return "pack callback failed";
        case Status::err_unpack: return "unpack callback failed";
        case Status::err_query: return "query callback failed";
        case Status::err_region: return "region callback failed";
        case Status::err_state: return "state callback failed";
        case Status::err_internal: return "internal error";
        case Status::err_no_match: return "no matching message";
        case Status::err_serialize: return "serialization error";
        case Status::timeout: return "operation timed out";
    }
    return "unknown status";
}

[[nodiscard]] constexpr bool ok(Status s) noexcept { return s == Status::success; }

// Early-return helper: propagate any non-success status to the caller.
#define MPICD_RETURN_IF_ERROR(expr)                                   \
    do {                                                              \
        ::mpicd::Status mpicd_status_ = (expr);                       \
        if (!::mpicd::ok(mpicd_status_)) return mpicd_status_;        \
    } while (0)

} // namespace mpicd
