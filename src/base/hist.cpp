#include "base/hist.hpp"

#include <algorithm>
#include <bit>

namespace mpicd {

int hist_bucket_index(std::uint64_t value) noexcept {
    return static_cast<int>(std::bit_width(value));
}

std::uint64_t hist_bucket_lo(int index) noexcept {
    if (index <= 0) return 0;
    return std::uint64_t{1} << (index - 1);
}

std::uint64_t hist_bucket_hi(int index) noexcept {
    if (index <= 0) return 1;
    if (index >= Histogram::kBuckets) return ~std::uint64_t{0};
    return std::uint64_t{1} << index;
}

void Histogram::record(std::uint64_t value) noexcept {
    const int idx =
        std::min(hist_bucket_index(value), Histogram::kBuckets - 1);
    buckets_[static_cast<std::size_t>(idx)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (int i = 0; i < kBuckets; ++i) {
        s.buckets[static_cast<std::size_t>(i)] =
            buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
    }
    return s;
}

void Histogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::mean() const noexcept {
    if (count == 0) return 0.0;
    return static_cast<double>(sum) / static_cast<double>(count);
}

double Histogram::Snapshot::percentile(double p) const noexcept {
    if (count == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    // Target rank in [1, count]: the k-th smallest observation, allowing a
    // fractional k for interpolation between ranks.
    const double rank =
        std::max(1.0, p / 100.0 * static_cast<double>(count));
    std::uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t in_bucket =
            buckets[static_cast<std::size_t>(i)];
        if (in_bucket == 0) continue;
        if (static_cast<double>(cum + in_bucket) >= rank) {
            const double lo = static_cast<double>(hist_bucket_lo(i));
            const double hi = static_cast<double>(hist_bucket_hi(i));
            const double frac =
                (rank - static_cast<double>(cum)) /
                static_cast<double>(in_bucket);
            const double est = lo + frac * (hi - lo);
            // Never report beyond the observed maximum (the top bucket's
            // upper bound can exceed it by up to 2x).
            return std::min(est, static_cast<double>(max));
        }
        cum += in_bucket;
    }
    return static_cast<double>(max);
}

} // namespace mpicd
