// mpicd-trace: low-overhead structured tracing for the pack/transport
// stack (see docs/OBSERVABILITY.md).
//
// Every instrumented site records a compact event into a per-thread ring
// buffer carrying two timestamps: wall time (microseconds since the trace
// epoch, a steady clock) and, where the site knows it, the rank's virtual
// netsim time. Whole operations can then be read on one timeline: plan
// cache hit -> pack fragments -> SG lowering -> eager/rendezvous packets
// -> acks/retransmits.
//
// Overhead contract: with tracing disabled (the default) every site costs
// exactly one branch on a cached atomic flag — no locks, no allocation,
// no clock reads. Enabled, a site takes its own thread's ring lock
// (uncontended) and one steady-clock read.
//
// Message causality: every send/recv operation owns a process-unique
// message id (next_msg_id()). Layers thread it with a thread-local
// MsgScope — any event recorded inside the scope is stamped with the id
// automatically — and the ucx wire carries it inside every packet the
// message produces, so one trace file reconstructs the full per-message
// span tree (pack -> lower -> packets incl. retransmits -> unpack); see
// tools/trace_analyze.py.
//
// Env knobs:
//   MPICD_TRACE=1        enable event recording from process start
//   MPICD_TRACE_FILE=p   dump at process exit: Chrome trace-event JSON
//                        (open in Perfetto / chrome://tracing) unless `p`
//                        ends in ".txt", then the compact text timeline.
//                        Also flushed best-effort from fatal signals and
//                        std::terminate, so crashes keep their trace.
//   MPICD_TRACE_BUF=n    per-thread ring capacity in events (default 16384,
//                        clamped to [64, 2^22]; the ring wraps, keeping
//                        the newest events)
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/metrics.hpp"

namespace mpicd::trace {

// One recorded event. String fields must point at storage that outlives
// the trace (string literals at every call site in practice).
struct Event {
    const char* cat = nullptr;  // layer: "dt", "core", "p2p", "ucx", "net"
    const char* name = nullptr; // event name, e.g. "custom_pack_frag"
    const char* k0 = nullptr;   // optional numeric args (name, value)
    std::uint64_t a0 = 0;
    const char* k1 = nullptr;
    std::uint64_t a1 = 0;
    // Third/fourth arg pair: collective-op events need (op, rank, peer,
    // round) side by side; packing them into two values would make every
    // consumer decode bitfields. nullptr keys cost nothing at export.
    const char* k2 = nullptr;
    std::uint64_t a2 = 0;
    const char* k3 = nullptr;
    std::uint64_t a3 = 0;
    std::uint64_t msg = 0;   // message id (0 = not message-scoped)
    double ts_us = 0.0;      // wall time since trace epoch
    double dur_us = -1.0;    // >= 0: span ("X" phase); < 0: instant ("i")
    double vtime_us = -1.0;  // virtual netsim time; < 0: not applicable
    std::uint32_t tid = 0;   // trace-local thread id (dense, starts at 1)
};

namespace detail {
// -1 = not yet initialized from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_state;
// The thread's open message scope; events recorded while it is non-zero
// are stamped with this id (unless the site set one explicitly).
extern thread_local std::uint64_t g_current_msg;
int init_from_env() noexcept;
void record(Event&& ev);
[[nodiscard]] double wall_now_us() noexcept;
} // namespace detail

// The one-branch gate every instrumented site checks first.
[[nodiscard]] inline bool enabled() noexcept {
    const int s = detail::g_state.load(std::memory_order_relaxed);
    return s > 0 || (s < 0 && detail::init_from_env() > 0);
}

// Programmatic override of MPICD_TRACE (tests, demos).
void set_enabled(bool on);

// Ring capacity for threads that have not recorded yet (existing rings
// keep their size). Overrides MPICD_TRACE_BUF; clamped to >= 16.
void set_buffer_capacity(std::size_t events);

// --- Message identity -------------------------------------------------------

// Allocate a process-unique message id (one relaxed fetch_add; always
// available, ids are never 0). Every send/recv operation draws one and
// threads it through pack, lowering, the wire, and unpack.
[[nodiscard]] std::uint64_t next_msg_id() noexcept;

// The message id of the innermost open MsgScope on this thread (0 = none).
[[nodiscard]] inline std::uint64_t current_msg() noexcept {
    return detail::g_current_msg;
}

// RAII message scope: while alive, every event this thread records is
// stamped with `id`. Scopes nest; the previous id is restored on exit.
// Cheap enough to open unconditionally (two thread-local stores).
class MsgScope {
public:
    explicit MsgScope(std::uint64_t id) noexcept
        : prev_(detail::g_current_msg) {
        detail::g_current_msg = id;
    }
    ~MsgScope() { detail::g_current_msg = prev_; }
    MsgScope(const MsgScope&) = delete;
    MsgScope& operator=(const MsgScope&) = delete;

private:
    std::uint64_t prev_;
};

// Record an instant event; a no-op when tracing is off (sites that
// compute args should still check enabled() first to skip that work).
void instant(const char* cat, const char* name, double vtime_us = -1.0,
             const char* k0 = nullptr, std::uint64_t a0 = 0,
             const char* k1 = nullptr, std::uint64_t a1 = 0,
             const char* k2 = nullptr, std::uint64_t a2 = 0,
             const char* k3 = nullptr, std::uint64_t a3 = 0);

// RAII span: captures the wall clock at construction when tracing is on,
// records a complete ("X") event at destruction. Args and the virtual
// timestamp may be filled in while the span is open.
class Span {
public:
    // `suppressed` skips the span entirely (both clock reads and the ring
    // store) — for call sites that are already covered by an enclosing
    // span and would double-count the same work in analysis.
    Span(const char* cat, const char* name, bool suppressed = false) {
        if (!suppressed && enabled()) {
            active_ = true;
            ev_.cat = cat;
            ev_.name = name;
            ev_.ts_us = detail::wall_now_us();
        }
    }
    ~Span() { finish(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    [[nodiscard]] bool active() const noexcept { return active_; }
    void arg0(const char* key, std::uint64_t value) noexcept {
        ev_.k0 = key;
        ev_.a0 = value;
    }
    void arg1(const char* key, std::uint64_t value) noexcept {
        ev_.k1 = key;
        ev_.a1 = value;
    }
    void set_vtime(double vtime_us) noexcept { ev_.vtime_us = vtime_us; }

    // Record the event now (idempotent; the destructor becomes a no-op).
    void finish() {
        if (!active_) return;
        active_ = false;
        ev_.dur_us = detail::wall_now_us() - ev_.ts_us;
        detail::record(static_cast<Event&&>(ev_));
    }

private:
    Event ev_;
    bool active_ = false;
};

// --- Inspection & export ---------------------------------------------------

struct TraceStats {
    std::uint64_t recorded = 0; // events ever emitted
    std::uint64_t dropped = 0;  // events overwritten by ring wrap
    std::uint64_t buffered = 0; // events currently held
    std::uint32_t threads = 0;  // rings (threads that recorded)
};
[[nodiscard]] TraceStats stats();

// Merged view of every thread ring, sorted by wall timestamp.
[[nodiscard]] std::vector<Event> snapshot();

// Discard all buffered events (rings stay registered; counters restart).
void reset();

// Chrome trace-event JSON ({"traceEvents": [...]}); true on success.
bool write_chrome_json(std::FILE* out);
bool write_chrome_json(const std::string& path);

// Compact text timeline, one event per line; `max_events` > 0 limits the
// output to the newest events.
void write_text(std::FILE* out, std::size_t max_events = 0);

// Contribution to MetricsRegistry snapshots (group "trace").
void append_metrics(std::vector<MetricSample>& out);

} // namespace mpicd::trace
