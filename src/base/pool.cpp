#include "base/pool.hpp"

#include <bit>
#include <cstring>
#include <new>

#include "base/config.hpp"
#include "base/metrics.hpp"

namespace mpicd {

// ---------------------------------------------------------------------------
// datapath counters

namespace datapath {

std::atomic<std::uint64_t>& bytes_copied() noexcept {
    static std::atomic<std::uint64_t> v{0};
    return v;
}

std::atomic<std::uint64_t>& bytes_delivered() noexcept {
    static std::atomic<std::uint64_t> v{0};
    return v;
}

std::atomic<std::uint64_t>& bytes_dma() noexcept {
    static std::atomic<std::uint64_t> v{0};
    return v;
}

} // namespace datapath

// ---------------------------------------------------------------------------
// PooledBuf

PooledBuf::PooledBuf(const PooledBuf& other) {
    if (other.slab_ == nullptr) return;
    if (other.shareable()) {
        other.slab_->refs.fetch_add(1, std::memory_order_relaxed);
        slab_ = other.slab_;
        size_ = other.size_;
    } else {
        // Pool-off semantics: a copy is a real copy, exactly like the
        // ByteVec it replaces (this is what the ablation measures).
        *this = copy_of(other.cspan());
    }
}

PooledBuf& PooledBuf::operator=(const PooledBuf& other) {
    if (this == &other) return *this;
    PooledBuf tmp(other);
    *this = std::move(tmp);
    return *this;
}

PooledBuf& PooledBuf::operator=(PooledBuf&& other) noexcept {
    if (this == &other) return *this;
    reset();
    slab_ = other.slab_;
    size_ = other.size_;
    other.slab_ = nullptr;
    other.size_ = 0;
    return *this;
}

PooledBuf::~PooledBuf() { reset(); }

PooledBuf PooledBuf::make(std::size_t n) {
    return BufferPool::instance().acquire(n);
}

PooledBuf PooledBuf::copy_of(ConstBytes src) {
    PooledBuf b = BufferPool::instance().acquire(src.size());
    if (!src.empty()) {
        std::memcpy(b.data(), src.data(), src.size());
        datapath::add_copied(static_cast<Count>(src.size()));
    }
    return b;
}

void PooledBuf::reset() noexcept {
    if (slab_ != nullptr) {
        if (slab_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            BufferPool::instance().release(slab_);
        slab_ = nullptr;
    }
    size_ = 0;
}

void PooledBuf::shrink_to(std::size_t n) {
    if (n >= size_) return;
    size_ = n;
    if (slab_ == nullptr || !unique()) return;
    // Re-slab only when the shrink frees at least a whole smaller size
    // class; otherwise the logical shrink is enough.
    if (slab_->cls == kSlabNoClass || slab_->cap < 2 * BufferPool::kMinClass ||
        n >= slab_->cap / 2)
        return;
    PooledBuf smaller = BufferPool::instance().acquire(n);
    if (smaller.capacity() >= slab_->cap) return; // same class, keep original
    if (n != 0) {
        std::memcpy(smaller.data(), data(), n);
        datapath::add_copied(static_cast<Count>(n));
    }
    *this = std::move(smaller);
    size_ = n;
}

void PooledBuf::ensure_unique() {
    if (slab_ == nullptr || unique()) return;
    PooledBuf fresh = BufferPool::instance().acquire(size_);
    if (size_ != 0) {
        std::memcpy(fresh.data(), data(), size_);
        datapath::add_copied(static_cast<Count>(size_));
    }
    *this = std::move(fresh);
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool& BufferPool::instance() noexcept {
    static BufferPool* pool = new BufferPool(); // leaked: see header
    return *pool;
}

BufferPool::BufferPool() {
    enabled_.store(env_int_or("MPICD_POOL", 1) != 0,
                   std::memory_order_relaxed);
    const std::int64_t per_class =
        env_int_or("MPICD_POOL_MAX_PER_CLASS", 32);
    max_per_class_ = per_class > 0 ? static_cast<std::size_t>(per_class) : 0;
    const std::int64_t max_bytes =
        env_int_or("MPICD_POOL_MAX_BYTES", std::int64_t{32} << 20);
    max_bytes_ = max_bytes > 0 ? static_cast<std::size_t>(max_bytes) : 0;
}

std::uint16_t BufferPool::class_for(std::size_t n) noexcept {
    if (n > kMaxClass) return kSlabNoClass;
    const std::size_t need = n < kMinClass ? kMinClass : n;
    // need >= kMinClass, so bit_width(need - 1) >= bit_width(kMinClass - 1).
    return static_cast<std::uint16_t>(std::bit_width(need - 1) -
                                      std::bit_width(kMinClass - 1));
}

PoolSlab* BufferPool::new_slab(std::size_t cap, std::uint16_t cls,
                               bool shareable) {
    void* mem = ::operator new(sizeof(PoolSlab) + cap);
    auto* s = new (mem) PoolSlab();
    s->cls = cls;
    s->flags = shareable ? kSlabShareable : 0;
    s->cap = cap;
    return s;
}

PooledBuf BufferPool::acquire(std::size_t n) {
    PooledBuf b;
    b.size_ = n;
    b.slab_ = take(n);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    return b;
}

PoolSlab* BufferPool::take(std::size_t n) {
    const bool on = enabled();
    const std::uint16_t cls = class_for(n);
    if (!on || cls == kSlabNoClass) {
        // Pool off (seed behaviour) or oversize: exact heap allocation.
        (on ? misses_ : heap_allocs_).fetch_add(1, std::memory_order_relaxed);
        return new_slab(n, on ? cls : kSlabNoClass, on);
    }
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto& fl = freelists_[cls];
        if (!fl.empty()) {
            PoolSlab* s = fl.back();
            fl.pop_back();
            bytes_cached_ -= s->cap;
            bytes_cached_pub_.store(bytes_cached_, std::memory_order_relaxed);
            hits_.fetch_add(1, std::memory_order_relaxed);
            s->refs.store(1, std::memory_order_relaxed);
            return s;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return new_slab(kMinClass << cls, cls, true);
}

void BufferPool::release(PoolSlab* s) noexcept {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    const std::uint16_t cls = s->cls;
    if (cls != kSlabNoClass && (s->flags & kSlabShareable) != 0 && enabled()) {
        std::lock_guard<std::mutex> lk(mutex_);
        auto& fl = freelists_[cls];
        if (fl.size() < max_per_class_ &&
            bytes_cached_ + s->cap <= max_bytes_) {
            fl.push_back(s);
            bytes_cached_ += s->cap;
            bytes_cached_pub_.store(bytes_cached_, std::memory_order_relaxed);
            returns_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
    frees_.fetch_add(1, std::memory_order_relaxed);
    s->~PoolSlab();
    ::operator delete(s);
}

void BufferPool::set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    if (!on) trim();
}

void BufferPool::trim() {
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto& fl : freelists_) {
        for (PoolSlab* s : fl) {
            frees_.fetch_add(1, std::memory_order_relaxed);
            s->~PoolSlab();
            ::operator delete(s);
        }
        fl.clear();
    }
    bytes_cached_ = 0;
    bytes_cached_pub_.store(0, std::memory_order_relaxed);
}

PoolStats BufferPool::stats() const noexcept {
    PoolStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.heap_allocs = heap_allocs_.load(std::memory_order_relaxed);
    st.returns = returns_.load(std::memory_order_relaxed);
    st.frees = frees_.load(std::memory_order_relaxed);
    st.bytes_cached = bytes_cached_pub_.load(std::memory_order_relaxed);
    st.outstanding = outstanding_.load(std::memory_order_relaxed);
    return st;
}

// ---------------------------------------------------------------------------
// MetricsRegistry provider

void append_pool_metrics(std::vector<MetricSample>& out) {
    const PoolStats st = BufferPool::instance().stats();
    out.push_back({"pool", "hits", st.hits});
    out.push_back({"pool", "misses", st.misses});
    out.push_back({"pool", "heap_allocs", st.heap_allocs});
    out.push_back({"pool", "returns", st.returns});
    out.push_back({"pool", "frees", st.frees});
    out.push_back({"pool", "bytes_cached", st.bytes_cached});
    out.push_back({"pool", "outstanding", st.outstanding});
    out.push_back({"datapath", "bytes_copied",
                   datapath::bytes_copied().load(std::memory_order_relaxed)});
    out.push_back({"datapath", "bytes_delivered",
                   datapath::bytes_delivered().load(std::memory_order_relaxed)});
    out.push_back({"datapath", "bytes_dma",
                   datapath::bytes_dma().load(std::memory_order_relaxed)});
}

void reset_pool_metrics() noexcept {
    BufferPool& p = BufferPool::instance();
    p.hits_.store(0, std::memory_order_relaxed);
    p.misses_.store(0, std::memory_order_relaxed);
    p.heap_allocs_.store(0, std::memory_order_relaxed);
    p.returns_.store(0, std::memory_order_relaxed);
    p.frees_.store(0, std::memory_order_relaxed);
    datapath::bytes_copied().store(0, std::memory_order_relaxed);
    datapath::bytes_delivered().store(0, std::memory_order_relaxed);
    datapath::bytes_dma().store(0, std::memory_order_relaxed);
}

} // namespace mpicd
