#include "base/log.hpp"

#include <cstdio>
#include <mutex>

#include "base/config.hpp"

namespace mpicd {

namespace {

LogLevel parse_level() {
    auto s = env_string("MPICD_LOG");
    if (!s) return LogLevel::warn;
    if (*s == "error") return LogLevel::error;
    if (*s == "warn") return LogLevel::warn;
    if (*s == "info") return LogLevel::info;
    if (*s == "debug") return LogLevel::debug;
    return LogLevel::warn;
}

constexpr const char* level_name(LogLevel l) {
    switch (l) {
        case LogLevel::error: return "ERROR";
        case LogLevel::warn: return "WARN";
        case LogLevel::info: return "INFO";
        case LogLevel::debug: return "DEBUG";
    }
    return "?";
}

std::mutex g_log_mutex;

} // namespace

LogLevel log_level() noexcept {
    static const LogLevel level = parse_level();
    return level;
}

void log_emit(LogLevel level, const std::string& msg) {
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[mpicd %s] %s\n", level_name(level), msg.c_str());
}

} // namespace mpicd
