// Log2-bucket histograms for latency/throughput distributions (see
// docs/OBSERVABILITY.md).
//
// A Histogram is a fixed array of 64 power-of-two buckets: value v lands
// in bucket bit_width(v) (bucket 0 holds only v == 0, bucket i >= 1 holds
// [2^(i-1), 2^i)). Recording is one relaxed fetch_add per counter — no
// locks, no allocation — so hot paths (per-message completion, per-
// fragment send) can record unconditionally. Percentiles are estimated
// from a snapshot by linear interpolation inside the covering bucket,
// which bounds the relative error by the bucket width (a factor of 2).
//
// Histograms live in the MetricsRegistry next to the scalar counters and
// are emitted into every BENCH_<name>.json as
//   {"count": n, "sum": s, "max": m, "mean": x, "p50": a, "p95": b, "p99": c}
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace mpicd {

class Histogram {
public:
    static constexpr int kBuckets = 64;

    // Point-in-time copy of a histogram; all derived statistics are
    // computed on snapshots so they are self-consistent.
    struct Snapshot {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t max = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        [[nodiscard]] double mean() const noexcept;
        // p in [0, 100]. Linear interpolation within the covering log2
        // bucket, clamped to the observed max. Returns 0 when empty.
        [[nodiscard]] double percentile(double p) const noexcept;
    };

    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    // Record one observation (relaxed atomics; safe from any thread).
    void record(std::uint64_t value) noexcept;

    [[nodiscard]] Snapshot snapshot() const noexcept;
    void reset() noexcept;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

// Bucket index for a value: 0 for 0, otherwise the bit width (so bucket i
// covers [2^(i-1), 2^i)). Exposed for the unit tests.
[[nodiscard]] int hist_bucket_index(std::uint64_t value) noexcept;

// Inclusive lower / exclusive upper bound of a bucket (bucket 0 is the
// degenerate [0, 1) range).
[[nodiscard]] std::uint64_t hist_bucket_lo(int index) noexcept;
[[nodiscard]] std::uint64_t hist_bucket_hi(int index) noexcept;

} // namespace mpicd
