// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) used by the
// reliable-delivery protocol to detect payload/header corruption injected
// by the netsim fault layer (and, on a real wire, by the link itself).
//
// Header-only; the table is built once at first use. The incremental form
// (pass the previous value as `seed`) lets the worker checksum
// header + payload without concatenating them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mpicd {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

// Incremental CRC-32: crc32(b, crc32(a)) == crc32(a ++ b).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n,
                                         std::uint32_t seed = 0) {
    const auto& table = detail::crc32_table();
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace mpicd
