// Minimal leveled logger, controlled by MPICD_LOG (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace mpicd {

enum class LogLevel : int { error = 0, warn = 1, info = 2, debug = 3 };

[[nodiscard]] LogLevel log_level() noexcept;
void log_emit(LogLevel level, const std::string& msg);

#define MPICD_LOG(level, ...)                                                 \
    do {                                                                      \
        if (static_cast<int>(level) <= static_cast<int>(::mpicd::log_level())) { \
            std::ostringstream mpicd_log_os_;                                 \
            mpicd_log_os_ << __VA_ARGS__;                                     \
            ::mpicd::log_emit(level, mpicd_log_os_.str());                    \
        }                                                                     \
    } while (0)

#define MPICD_LOG_ERROR(...) MPICD_LOG(::mpicd::LogLevel::error, __VA_ARGS__)
#define MPICD_LOG_WARN(...) MPICD_LOG(::mpicd::LogLevel::warn, __VA_ARGS__)
#define MPICD_LOG_INFO(...) MPICD_LOG(::mpicd::LogLevel::info, __VA_ARGS__)
#define MPICD_LOG_DEBUG(...) MPICD_LOG(::mpicd::LogLevel::debug, __VA_ARGS__)

} // namespace mpicd
