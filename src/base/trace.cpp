#include "base/trace.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>

#include "base/config.hpp"
#include "base/log.hpp"

namespace mpicd::trace {

namespace detail {

std::atomic<int> g_state{-1};
thread_local std::uint64_t g_current_msg = 0;

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr std::size_t kDefaultCapacity = 16384;
constexpr std::size_t kMinCapacity = 16;
// Clamp range for the MPICD_TRACE_BUF env knob (programmatic
// set_buffer_capacity keeps the looser kMinCapacity floor for tests).
constexpr std::int64_t kEnvMinCapacity = 64;
constexpr std::int64_t kEnvMaxCapacity = std::int64_t{1} << 22;

std::atomic<std::uint64_t> g_next_msg{1};

std::atomic<std::size_t> g_capacity{0}; // 0 = not resolved yet

// Per-thread ring buffer. Writers lock only their own ring (uncontended in
// steady state); snapshot/dump walks the registry and locks each ring in
// turn, so concurrent tracing and dumping is safe under TSan.
// Invariant: buf.size() == min(recorded, cap) and next == recorded % cap.
// The buffer is reserved up front but grown one push_back at a time, so a
// ring created inside a wall-measured pack scope costs one untouched
// allocation there, not a multi-hundred-µs zero-fill of the whole ring
// (which would be charged into virtual time as host packing work).
struct Ring {
    std::mutex mu;
    std::vector<Event> buf;
    std::size_t cap = 0;  // fixed at construction
    std::size_t next = 0; // next write position
    std::uint64_t recorded = 0;
    std::uint32_t tid = 0;
};

struct Registry {
    std::mutex mu;
    std::vector<std::shared_ptr<Ring>> rings;
    std::uint32_t next_tid = 1;
};

// Leaked: rings must survive thread exit and stay readable from atexit.
Registry& registry() {
    static Registry* reg = new Registry();
    return *reg;
}

SteadyClock::time_point epoch() {
    static const SteadyClock::time_point t0 = SteadyClock::now();
    return t0;
}

std::size_t ring_capacity() {
    std::size_t cap = g_capacity.load(std::memory_order_relaxed);
    if (cap == 0) {
        // env_int_or rejects garbage/ERANGE (warning once); a value that
        // parses but falls outside the sane range is clamped, also with a
        // one-time warning — a 4-event ring or a 2^40-event ring are both
        // configuration mistakes, not requests.
        const std::int64_t env = env_int_or(
            "MPICD_TRACE_BUF", static_cast<std::int64_t>(kDefaultCapacity));
        std::int64_t clamped = env;
        if (clamped < kEnvMinCapacity) clamped = kEnvMinCapacity;
        if (clamped > kEnvMaxCapacity) clamped = kEnvMaxCapacity;
        if (clamped != env) {
            static std::once_flag warned;
            std::call_once(warned, [env, clamped] {
                MPICD_LOG_WARN("MPICD_TRACE_BUF="
                               << env << " out of range ["
                               << kEnvMinCapacity << ", " << kEnvMaxCapacity
                               << "]; using " << clamped);
            });
        }
        cap = static_cast<std::size_t>(clamped);
        g_capacity.store(cap, std::memory_order_relaxed);
    }
    return cap;
}

Ring& thread_ring() {
    thread_local std::shared_ptr<Ring> ring = [] {
        auto r = std::make_shared<Ring>();
        r->cap = ring_capacity();
        r->buf.reserve(r->cap);
        Registry& reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mu);
        r->tid = reg.next_tid++;
        reg.rings.push_back(r);
        return r;
    }();
    return *ring;
}

void dump_env_file();
void install_crash_hooks();

} // namespace

double wall_now_us() noexcept {
    return std::chrono::duration<double, std::micro>(SteadyClock::now() -
                                                     epoch())
        .count();
}

int init_from_env() noexcept {
    int expected = -1;
    const bool on = env_int_or("MPICD_TRACE", 0) != 0;
    if (g_state.compare_exchange_strong(expected, on ? 1 : 0)) {
        if (on) {
            (void)epoch(); // pin the trace epoch at enable time
            if (env_string("MPICD_TRACE_FILE")) {
                std::atexit(dump_env_file);
                install_crash_hooks();
            }
        }
        return on ? 1 : 0;
    }
    return expected; // lost the race: another thread initialized
}

void record(Event&& ev) {
    Ring& ring = thread_ring();
    const std::lock_guard<std::mutex> lock(ring.mu);
    ev.tid = ring.tid;
    if (ev.msg == 0) ev.msg = g_current_msg;
    if (ring.buf.size() < ring.cap) {
        ring.buf.push_back(ev); // growth phase: next == buf.size()
    } else {
        ring.buf[ring.next] = ev;
    }
    if (++ring.next == ring.cap) ring.next = 0;
    ++ring.recorded;
}

namespace {

void dump_env_file() {
    const auto path = env_string("MPICD_TRACE_FILE");
    if (!path) return;
    if (path->size() > 4 && path->compare(path->size() - 4, 4, ".txt") == 0) {
        std::FILE* f = std::fopen(path->c_str(), "w");
        if (f == nullptr) return;
        write_text(f);
        std::fclose(f);
        return;
    }
    (void)write_chrome_json(*path);
}

// --- Best-effort flush on abnormal exit ------------------------------------
//
// A crashed test used to lose its whole trace (the only flush was atexit).
// These hooks dump MPICD_TRACE_FILE from fatal signals and std::terminate.
// They are not strictly async-signal-safe (ring locks, fopen); that is an
// accepted trade for a path whose alternative is losing all evidence, and
// the flag below makes the flush idempotent so handler re-entry (e.g.
// terminate -> abort -> SIGABRT) writes at most once.

std::atomic<bool> g_crash_flushed{false};

void crash_flush_once() noexcept {
    if (g_crash_flushed.exchange(true)) return;
    dump_env_file();
}

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_with_flush() {
    crash_flush_once();
    if (g_prev_terminate != nullptr) g_prev_terminate();
    std::abort();
}

void crash_signal_handler(int sig) {
    crash_flush_once();
    // Restore the default disposition and re-raise so the process still
    // dies the way the runner expects (core dump, non-zero exit).
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

void install_crash_hooks() {
    static std::once_flag once;
    std::call_once(once, [] {
        const int signals[] = {SIGSEGV, SIGABRT, SIGFPE, SIGILL,
#ifdef SIGBUS
                               SIGBUS,
#endif
        };
        for (const int sig : signals) {
            if (std::signal(sig, crash_signal_handler) == SIG_ERR) {
                MPICD_LOG_WARN("trace: cannot hook signal " << sig);
            }
        }
        g_prev_terminate = std::set_terminate(terminate_with_flush);
    });
}

} // namespace

} // namespace detail

std::uint64_t next_msg_id() noexcept {
    return detail::g_next_msg.fetch_add(1, std::memory_order_relaxed);
}

void set_enabled(bool on) {
    (void)detail::epoch();
    detail::g_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_buffer_capacity(std::size_t events) {
    detail::g_capacity.store(std::max(events, detail::kMinCapacity),
                             std::memory_order_relaxed);
}

void instant(const char* cat, const char* name, double vtime_us,
             const char* k0, std::uint64_t a0, const char* k1,
             std::uint64_t a1, const char* k2, std::uint64_t a2,
             const char* k3, std::uint64_t a3) {
    if (!enabled()) return;
    Event ev;
    ev.cat = cat;
    ev.name = name;
    ev.k0 = k0;
    ev.a0 = a0;
    ev.k1 = k1;
    ev.a1 = a1;
    ev.k2 = k2;
    ev.a2 = a2;
    ev.k3 = k3;
    ev.a3 = a3;
    ev.ts_us = detail::wall_now_us();
    ev.vtime_us = vtime_us;
    detail::record(static_cast<Event&&>(ev));
}

TraceStats stats() {
    TraceStats s;
    detail::Registry& reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
        const std::lock_guard<std::mutex> rlock(ring->mu);
        s.recorded += ring->recorded;
        const std::uint64_t held =
            std::min<std::uint64_t>(ring->recorded, ring->buf.size());
        s.buffered += held;
        s.dropped += ring->recorded - held;
        ++s.threads;
    }
    return s;
}

std::vector<Event> snapshot() {
    std::vector<Event> out;
    {
        detail::Registry& reg = detail::registry();
        const std::lock_guard<std::mutex> lock(reg.mu);
        for (const auto& ring : reg.rings) {
            const std::lock_guard<std::mutex> rlock(ring->mu);
            const std::size_t cap = ring->buf.size();
            const std::size_t held = static_cast<std::size_t>(
                std::min<std::uint64_t>(ring->recorded, cap));
            // Oldest surviving event first: the ring wrapped iff
            // recorded > cap, in which case `next` is the oldest slot.
            const std::size_t start =
                ring->recorded > cap ? ring->next : 0;
            for (std::size_t i = 0; i < held; ++i) {
                out.push_back(ring->buf[(start + i) % cap]);
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });
    return out;
}

void reset() {
    detail::Registry& reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
        const std::lock_guard<std::mutex> rlock(ring->mu);
        ring->buf.clear(); // keeps the reservation; restores the invariant
        ring->next = 0;
        ring->recorded = 0;
    }
}

namespace {

void write_event_json(std::FILE* out, const Event& ev, bool first) {
    // Chrome trace-event format: "X" = complete (needs dur), "i" = instant.
    const bool span = ev.dur_us >= 0.0;
    std::fprintf(out,
                 "%s    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
                 "\"pid\": 1, \"tid\": %u, \"ts\": %.3f",
                 first ? "" : ",\n", ev.name, ev.cat, span ? "X" : "i", ev.tid,
                 ev.ts_us);
    if (span) std::fprintf(out, ", \"dur\": %.3f", ev.dur_us);
    if (!span) std::fprintf(out, ", \"s\": \"t\"");
    std::fprintf(out, ", \"args\": {");
    bool first_arg = true;
    if (ev.vtime_us >= 0.0) {
        std::fprintf(out, "\"vt_us\": %.3f", ev.vtime_us);
        first_arg = false;
    }
    if (ev.msg != 0) {
        std::fprintf(out, "%s\"msg\": %llu", first_arg ? "" : ", ",
                     static_cast<unsigned long long>(ev.msg));
        first_arg = false;
    }
    if (ev.k0 != nullptr) {
        std::fprintf(out, "%s\"%s\": %llu", first_arg ? "" : ", ", ev.k0,
                     static_cast<unsigned long long>(ev.a0));
        first_arg = false;
    }
    if (ev.k1 != nullptr) {
        std::fprintf(out, "%s\"%s\": %llu", first_arg ? "" : ", ", ev.k1,
                     static_cast<unsigned long long>(ev.a1));
        first_arg = false;
    }
    if (ev.k2 != nullptr) {
        std::fprintf(out, "%s\"%s\": %llu", first_arg ? "" : ", ", ev.k2,
                     static_cast<unsigned long long>(ev.a2));
        first_arg = false;
    }
    if (ev.k3 != nullptr) {
        std::fprintf(out, "%s\"%s\": %llu", first_arg ? "" : ", ", ev.k3,
                     static_cast<unsigned long long>(ev.a3));
    }
    std::fprintf(out, "}}");
}

} // namespace

bool write_chrome_json(std::FILE* out) {
    const auto events = snapshot();
    const TraceStats s = stats();
    std::fprintf(out, "{\n  \"displayTimeUnit\": \"ms\",\n");
    std::fprintf(out,
                 "  \"otherData\": {\"recorded\": %llu, \"dropped\": %llu},\n",
                 static_cast<unsigned long long>(s.recorded),
                 static_cast<unsigned long long>(s.dropped));
    std::fprintf(out, "  \"traceEvents\": [\n");
    for (std::size_t i = 0; i < events.size(); ++i) {
        write_event_json(out, events[i], i == 0);
    }
    std::fprintf(out, "\n  ]\n}\n");
    return std::ferror(out) == 0;
}

bool write_chrome_json(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        MPICD_LOG_WARN("trace: cannot write " << path);
        return false;
    }
    const bool ok = write_chrome_json(f);
    std::fclose(f);
    return ok;
}

void write_text(std::FILE* out, std::size_t max_events) {
    auto events = snapshot();
    const std::size_t begin =
        max_events > 0 && events.size() > max_events
            ? events.size() - max_events
            : 0;
    std::fprintf(out, "# mpicd trace: %zu events (wall us | vt us | tid | "
                      "cat.name dur args)\n",
                 events.size() - begin);
    for (std::size_t i = begin; i < events.size(); ++i) {
        const Event& ev = events[i];
        std::fprintf(out, "%12.3f ", ev.ts_us);
        if (ev.vtime_us >= 0.0) {
            std::fprintf(out, "%12.3f ", ev.vtime_us);
        } else {
            std::fprintf(out, "%12s ", "-");
        }
        std::fprintf(out, "[t%02u] %s.%s", ev.tid, ev.cat, ev.name);
        if (ev.msg != 0) {
            std::fprintf(out, " msg=%llu",
                         static_cast<unsigned long long>(ev.msg));
        }
        if (ev.dur_us >= 0.0) std::fprintf(out, " dur=%.3fus", ev.dur_us);
        if (ev.k0 != nullptr) {
            std::fprintf(out, " %s=%llu", ev.k0,
                         static_cast<unsigned long long>(ev.a0));
        }
        if (ev.k1 != nullptr) {
            std::fprintf(out, " %s=%llu", ev.k1,
                         static_cast<unsigned long long>(ev.a1));
        }
        if (ev.k2 != nullptr) {
            std::fprintf(out, " %s=%llu", ev.k2,
                         static_cast<unsigned long long>(ev.a2));
        }
        if (ev.k3 != nullptr) {
            std::fprintf(out, " %s=%llu", ev.k3,
                         static_cast<unsigned long long>(ev.a3));
        }
        std::fprintf(out, "\n");
    }
    std::fflush(out);
}

void append_metrics(std::vector<MetricSample>& out) {
    const TraceStats s = stats();
    out.push_back({"trace", "events_recorded", s.recorded});
    out.push_back({"trace", "events_dropped", s.dropped});
    out.push_back({"trace", "events_buffered", s.buffered});
    out.push_back({"trace", "threads", s.threads});
}

} // namespace mpicd::trace
