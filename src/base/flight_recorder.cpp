#include "base/flight_recorder.hpp"

#include <mutex>
#include <vector>

#include "base/config.hpp"
#include "base/log.hpp"
#include "base/trace.hpp"

namespace mpicd::flight {

namespace detail {

std::atomic<int> g_state{-1};

namespace {

constexpr std::uint64_t kDefaultMaxDumps = 4;
constexpr std::size_t kRingEventsInDump = 64;

struct Source {
    std::uint64_t token = 0;
    std::string name;
    DumpFn fn;
};

struct Recorder {
    std::mutex mu;
    std::string path;           // empty = stderr
    std::uint64_t max_dumps = kDefaultMaxDumps;
    std::uint64_t dumps = 0;
    std::uint64_t next_token = 1;
    std::vector<Source> sources;
};

// Leaked: sources unregister from destructors that may run after main.
Recorder& recorder() {
    static Recorder* r = new Recorder();
    return *r;
}

} // namespace

int init_from_env() noexcept {
    const auto path = env_string("MPICD_FLIGHT_RECORDER");
    const bool on = path.has_value() && !path->empty();
    int expected = -1;
    if (g_state.compare_exchange_strong(expected, on ? 1 : 0)) {
        if (on) {
            Recorder& rec = recorder();
            const std::lock_guard<std::mutex> lock(rec.mu);
            rec.path = *path == "-" ? std::string() : *path;
            const std::int64_t max = env_int_or(
                "MPICD_FLIGHT_MAX",
                static_cast<std::int64_t>(kDefaultMaxDumps));
            rec.max_dumps =
                max > 0 ? static_cast<std::uint64_t>(max) : kDefaultMaxDumps;
            // A dump without ring events answers nothing; arming the
            // recorder therefore turns tracing on.
            trace::set_enabled(true);
        }
        return on ? 1 : 0;
    }
    return expected;
}

} // namespace detail

void set_enabled(bool on, const std::string& path) {
    detail::Recorder& rec = detail::recorder();
    {
        const std::lock_guard<std::mutex> lock(rec.mu);
        rec.path = path;
        rec.dumps = 0;
    }
    detail::g_state.store(on ? 1 : 0, std::memory_order_relaxed);
    if (on) trace::set_enabled(true);
}

std::uint64_t register_source(std::string name, DumpFn fn) {
    // Resolve env arming now, not at the first failure: arming enables
    // tracing, and doing that lazily at trigger time would hand the first
    // dump an empty event ring.
    (void)enabled();
    detail::Recorder& rec = detail::recorder();
    const std::lock_guard<std::mutex> lock(rec.mu);
    const std::uint64_t token = rec.next_token++;
    rec.sources.push_back({token, std::move(name), std::move(fn)});
    return token;
}

void unregister_source(std::uint64_t token) {
    detail::Recorder& rec = detail::recorder();
    const std::lock_guard<std::mutex> lock(rec.mu);
    for (auto it = rec.sources.begin(); it != rec.sources.end(); ++it) {
        if (it->token == token) {
            rec.sources.erase(it);
            return;
        }
    }
}

void trigger(const char* reason, std::uint64_t msg_id, double vtime_us,
             std::uint64_t self_token, const DumpFn& self_dump) {
    if (!enabled()) return;
    detail::Recorder& rec = detail::recorder();
    const std::lock_guard<std::mutex> lock(rec.mu);
    if (rec.dumps >= rec.max_dumps) return;
    ++rec.dumps;

    std::FILE* out = stderr;
    const bool own = !rec.path.empty();
    if (own) {
        out = std::fopen(rec.path.c_str(), "a");
        if (out == nullptr) {
            MPICD_LOG_WARN("flight: cannot append to " << rec.path);
            return;
        }
    }

    std::fprintf(out,
                 "=== mpicd flight recorder: dump %llu/%llu ===\n"
                 "reason: %s\n",
                 static_cast<unsigned long long>(rec.dumps),
                 static_cast<unsigned long long>(rec.max_dumps), reason);
    if (msg_id != 0) {
        std::fprintf(out, "msg: %llu\n",
                     static_cast<unsigned long long>(msg_id));
    }
    std::fprintf(out, "wall_us: %.3f\n", trace::detail::wall_now_us());
    if (vtime_us >= 0.0) std::fprintf(out, "vt_us: %.3f\n", vtime_us);

    std::fprintf(out, "--- newest trace events ---\n");
    trace::write_text(out, detail::kRingEventsInDump);

    for (const auto& src : rec.sources) {
        std::fprintf(out, "--- source: %s ---\n", src.name.c_str());
        if (src.token == self_token) {
            if (self_dump) {
                self_dump(out);
            } else {
                std::fprintf(out, "<triggering source, no self dump>\n");
            }
        } else if (src.fn) {
            src.fn(out);
        }
    }
    std::fprintf(out, "=== end dump ===\n");
    std::fflush(out);
    if (own) std::fclose(out);
}

std::uint64_t dump_count() noexcept {
    detail::Recorder& rec = detail::recorder();
    const std::lock_guard<std::mutex> lock(rec.mu);
    return rec.dumps;
}

} // namespace mpicd::flight
