// Environment-driven configuration.
//
// Every tunable of the simulated fabric and of the library defaults can be
// overridden with MPICD_* environment variables; see netsim/wire_model.hpp
// for the fabric parameters that consume these.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mpicd {

// Returns the value of `name` if set and parseable, otherwise nullopt.
[[nodiscard]] std::optional<double> env_double(const char* name);
[[nodiscard]] std::optional<std::int64_t> env_int(const char* name);
[[nodiscard]] std::optional<std::string> env_string(const char* name);

// Convenience: env override with a default.
[[nodiscard]] double env_double_or(const char* name, double fallback);
[[nodiscard]] std::int64_t env_int_or(const char* name, std::int64_t fallback);

} // namespace mpicd
