// Unified metrics registry (see docs/OBSERVABILITY.md).
//
// One process-wide home for every counter family the stack accumulates:
//  - explicit counters created on demand via counter()/add() — the ucx
//    worker folds its WorkerStats in on destruction, the fabric its fault
//    counters;
//  - built-in providers: the pack-path counters (base/stats.hpp) and the
//    trace ring-buffer bookkeeping (base/trace.hpp) are merged into every
//    snapshot without double-counting their hot-path storage;
//  - log2-bucket histograms (base/hist.hpp) created via histogram() —
//    message latency, pack throughput, fragment sizes — emitted with
//    count/sum/max/mean and p50/p95/p99.
//
// snapshot() is cheap and thread-safe; write_json() emits the nested
// {"group": {"name": value}} object that bench/common.hpp embeds in every
// BENCH_<name>.json artifact; histogram entries appear inside their group
// as nested objects.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/hist.hpp"

namespace mpicd {

struct MetricSample {
    std::string group;
    std::string name;
    std::uint64_t value = 0;
};

struct HistSample {
    std::string group;
    std::string name;
    Histogram::Snapshot snap;
};

class MetricsRegistry {
public:
    // The process-wide instance (never destroyed, safe from atexit hooks).
    [[nodiscard]] static MetricsRegistry& instance() noexcept;

    // Stable-address counter for (group, name); created zeroed on first
    // use. The returned reference lives for the whole process, so hot
    // paths should look it up once and cache the reference.
    [[nodiscard]] std::atomic<std::uint64_t>& counter(const std::string& group,
                                                      const std::string& name);

    // Convenience: counter(group, name) += delta.
    void add(const std::string& group, const std::string& name,
             std::uint64_t delta);

    // Stable-address log2 histogram for (group, name); created empty on
    // first use, lives for the whole process. A scalar counter and a
    // histogram may not share a (group, name).
    [[nodiscard]] Histogram& histogram(const std::string& group,
                                       const std::string& name);

    // All counters — explicit ones plus the built-in providers — sorted by
    // (group, name).
    [[nodiscard]] std::vector<MetricSample> snapshot() const;

    // All histograms (snapshotted), sorted by (group, name).
    [[nodiscard]] std::vector<HistSample> hist_snapshot() const;

    // Zero every explicit counter, every histogram, and the provider-owned
    // counters (pack-path stats, trace bookkeeping).
    void reset();

    // JSON object {"group": {"name": value, ...}, ...}; `indent` spaces
    // prefix every emitted line (write_json emits no leading/trailing
    // newline around the object itself).
    void write_json(std::FILE* out, int indent = 0) const;
    [[nodiscard]] std::string to_json(int indent = 0) const;

private:
    MetricsRegistry() = default;
    struct Impl;
    [[nodiscard]] Impl& impl() const noexcept;
};

// Shorthand for MetricsRegistry::instance().
[[nodiscard]] MetricsRegistry& metrics() noexcept;

} // namespace mpicd
