#include "base/stats.hpp"

#include <cmath>

#include "base/metrics.hpp"

namespace mpicd {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const noexcept {
    if (n_ < 2) return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

// ---------------------------------------------------------------------------
// PackStats

PackStatsSnapshot PackStats::snapshot() const noexcept {
    PackStatsSnapshot s;
    s.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
    s.plan_cache_misses = plan_cache_misses.load(std::memory_order_relaxed);
    s.plans_compiled = plans_compiled.load(std::memory_order_relaxed);
    s.kernel_bytes = kernel_bytes.load(std::memory_order_relaxed);
    s.generic_bytes = generic_bytes.load(std::memory_order_relaxed);
    s.iov_entries_before = iov_entries_before.load(std::memory_order_relaxed);
    s.iov_entries_after = iov_entries_after.load(std::memory_order_relaxed);
    s.parallel_packs = parallel_packs.load(std::memory_order_relaxed);
    s.skeleton_hits = skeleton_hits.load(std::memory_order_relaxed);
    return s;
}

void PackStats::reset() noexcept {
    plan_cache_hits.store(0, std::memory_order_relaxed);
    plan_cache_misses.store(0, std::memory_order_relaxed);
    plans_compiled.store(0, std::memory_order_relaxed);
    kernel_bytes.store(0, std::memory_order_relaxed);
    generic_bytes.store(0, std::memory_order_relaxed);
    iov_entries_before.store(0, std::memory_order_relaxed);
    iov_entries_after.store(0, std::memory_order_relaxed);
    parallel_packs.store(0, std::memory_order_relaxed);
    skeleton_hits.store(0, std::memory_order_relaxed);
}

void PackStats::print(std::FILE* out) const {
    const PackStatsSnapshot s = snapshot();
    std::fprintf(out, "# pack-path stats\n");
    std::fprintf(out, "plan_cache_hits      %llu\n",
                 static_cast<unsigned long long>(s.plan_cache_hits));
    std::fprintf(out, "plan_cache_misses    %llu\n",
                 static_cast<unsigned long long>(s.plan_cache_misses));
    std::fprintf(out, "plans_compiled       %llu\n",
                 static_cast<unsigned long long>(s.plans_compiled));
    std::fprintf(out, "kernel_bytes         %llu\n",
                 static_cast<unsigned long long>(s.kernel_bytes));
    std::fprintf(out, "generic_bytes        %llu\n",
                 static_cast<unsigned long long>(s.generic_bytes));
    std::fprintf(out, "iov_entries_before   %llu\n",
                 static_cast<unsigned long long>(s.iov_entries_before));
    std::fprintf(out, "iov_entries_after    %llu\n",
                 static_cast<unsigned long long>(s.iov_entries_after));
    std::fprintf(out, "parallel_packs       %llu\n",
                 static_cast<unsigned long long>(s.parallel_packs));
    std::fprintf(out, "skeleton_hits        %llu\n",
                 static_cast<unsigned long long>(s.skeleton_hits));
    std::fflush(out);
}

PackStats& pack_stats() noexcept {
    static PackStats instance;
    return instance;
}

void append_pack_metrics(std::vector<MetricSample>& out) {
    const PackStatsSnapshot s = pack_stats().snapshot();
    out.push_back({"pack", "plan_cache_hits", s.plan_cache_hits});
    out.push_back({"pack", "plan_cache_misses", s.plan_cache_misses});
    out.push_back({"pack", "plans_compiled", s.plans_compiled});
    out.push_back({"pack", "kernel_bytes", s.kernel_bytes});
    out.push_back({"pack", "generic_bytes", s.generic_bytes});
    out.push_back({"pack", "iov_entries_before", s.iov_entries_before});
    out.push_back({"pack", "iov_entries_after", s.iov_entries_after});
    out.push_back({"pack", "parallel_packs", s.parallel_packs});
    out.push_back({"pack", "skeleton_hits", s.skeleton_hits});
}

} // namespace mpicd
