#include "base/stats.hpp"

#include <cmath>

namespace mpicd {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const noexcept {
    if (n_ < 2) return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

} // namespace mpicd
