// Virtual-time plumbing.
//
// Benchmarks in this repository report *virtual time*: the sum of
//  - modeled costs (wire latency/bandwidth, protocol round trips,
//    scatter-gather entry overhead, NIC-side copies), and
//  - measured host work (datatype-engine pack loops, user pack/unpack
//    callbacks, manual packing) timed with a monotonic clock.
// See DESIGN.md §5. SimTime is in microseconds.
#pragma once

#include <chrono>

namespace mpicd {

// Microseconds of virtual time.
using SimTime = double;

// Monotonic host timer used to charge real CPU work to the virtual clock.
class HostTimer {
public:
    HostTimer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    // Elapsed host time in microseconds.
    [[nodiscard]] SimTime elapsed_us() const {
        const auto d = clock::now() - start_;
        return std::chrono::duration<double, std::micro>(d).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

// RAII helper: adds the measured duration of its scope to an accumulator.
class ScopedMeasure {
public:
    explicit ScopedMeasure(SimTime& acc) : acc_(acc) {}
    ~ScopedMeasure() { acc_ += timer_.elapsed_us(); }
    ScopedMeasure(const ScopedMeasure&) = delete;
    ScopedMeasure& operator=(const ScopedMeasure&) = delete;

private:
    SimTime& acc_;
    HostTimer timer_;
};

} // namespace mpicd
