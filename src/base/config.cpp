#include "base/config.hpp"

#include <cstdlib>

namespace mpicd {

std::optional<std::string> env_string(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return std::nullopt;
    return std::string(v);
}

std::optional<double> env_double(const char* name) {
    auto s = env_string(name);
    if (!s) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(s->c_str(), &end);
    if (end == s->c_str()) return std::nullopt;
    return v;
}

std::optional<std::int64_t> env_int(const char* name) {
    auto s = env_string(name);
    if (!s) return std::nullopt;
    char* end = nullptr;
    const long long v = std::strtoll(s->c_str(), &end, 10);
    if (end == s->c_str()) return std::nullopt;
    return static_cast<std::int64_t>(v);
}

double env_double_or(const char* name, double fallback) {
    return env_double(name).value_or(fallback);
}

std::int64_t env_int_or(const char* name, std::int64_t fallback) {
    return env_int(name).value_or(fallback);
}

} // namespace mpicd
