#include "base/config.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <set>

#include "base/log.hpp"

namespace mpicd {

namespace {

// A malformed value must not silently alter behaviour: warn once per
// variable (not per read — hot paths may re-read) and let the caller fall
// back to its default.
void warn_malformed(const char* name, const std::string& value,
                    const char* why) {
    static std::mutex mu;
    static std::set<std::string>* warned = new std::set<std::string>();
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (!warned->insert(name).second) return;
    }
    MPICD_LOG_WARN("config: ignoring " << name << "=\"" << value << "\" ("
                                       << why << "); using the default");
}

// After strtod/strtoll, the rest of the string may only be whitespace;
// trailing garbage ("32k", "1.5x") means the value was not what the user
// thinks it was.
[[nodiscard]] bool only_trailing_space(const char* end) {
    while (*end != '\0') {
        if (!std::isspace(static_cast<unsigned char>(*end))) return false;
        ++end;
    }
    return true;
}

} // namespace

std::optional<std::string> env_string(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return std::nullopt;
    return std::string(v);
}

std::optional<double> env_double(const char* name) {
    auto s = env_string(name);
    if (!s) return std::nullopt;
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s->c_str(), &end);
    if (end == s->c_str() || !only_trailing_space(end)) {
        warn_malformed(name, *s, "not a number");
        return std::nullopt;
    }
    if (errno == ERANGE) {
        warn_malformed(name, *s, "out of range");
        return std::nullopt;
    }
    return v;
}

std::optional<std::int64_t> env_int(const char* name) {
    auto s = env_string(name);
    if (!s) return std::nullopt;
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s->c_str(), &end, 10);
    if (end == s->c_str() || !only_trailing_space(end)) {
        warn_malformed(name, *s, "not an integer");
        return std::nullopt;
    }
    if (errno == ERANGE) {
        warn_malformed(name, *s, "out of range");
        return std::nullopt;
    }
    return static_cast<std::int64_t>(v);
}

double env_double_or(const char* name, double fallback) {
    return env_double(name).value_or(fallback);
}

std::int64_t env_int_or(const char* name, std::int64_t fallback) {
    return env_int(name).value_or(fallback);
}

} // namespace mpicd
