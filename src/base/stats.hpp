// Streaming statistics accumulator used by the benchmark harness to report
// mean / min / max / stddev over repeated ping-pong iterations (the paper
// reports the average of four runs with error bars), plus the global
// pack-path counters (plan cache, copy kernels, iovec coalescing, parallel
// pack engine) that the benches print under MPICD_PACK_STATS=1.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace mpicd {

class RunningStats {
public:
    void add(double x) noexcept;
    void reset() noexcept { *this = RunningStats{}; }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
    [[nodiscard]] double stddev() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0; // Welford accumulator
    double min_ = 0.0;
    double max_ = 0.0;
};

// ---------------------------------------------------------------------------
// Pack-path observability (see docs/PERF.md).
//
// Process-wide counters updated from the datatype engine's hot paths; each
// site accumulates locally and performs a single relaxed atomic add per
// pack/unpack call, so the counters are cheap enough to stay always-on.

struct PackStatsSnapshot {
    std::uint64_t plan_cache_hits = 0;
    std::uint64_t plan_cache_misses = 0;
    std::uint64_t plans_compiled = 0;
    std::uint64_t kernel_bytes = 0;    // packed/unpacked via compiled-plan kernels
    std::uint64_t generic_bytes = 0;   // packed/unpacked via the generic segment loop
    std::uint64_t iov_entries_before = 0; // scatter-gather entries pre-coalescing
    std::uint64_t iov_entries_after = 0;  // entries actually handed to the wire
    std::uint64_t parallel_packs = 0;     // parallel pack-engine invocations
    std::uint64_t skeleton_hits = 0;      // custom-type descriptor skeleton reuses
};

class PackStats {
public:
    std::atomic<std::uint64_t> plan_cache_hits{0};
    std::atomic<std::uint64_t> plan_cache_misses{0};
    std::atomic<std::uint64_t> plans_compiled{0};
    std::atomic<std::uint64_t> kernel_bytes{0};
    std::atomic<std::uint64_t> generic_bytes{0};
    std::atomic<std::uint64_t> iov_entries_before{0};
    std::atomic<std::uint64_t> iov_entries_after{0};
    std::atomic<std::uint64_t> parallel_packs{0};
    std::atomic<std::uint64_t> skeleton_hits{0};

    [[nodiscard]] PackStatsSnapshot snapshot() const noexcept;
    void reset() noexcept;
    // Human-readable dump (one line per nonzero counter).
    void print(std::FILE* out) const;
};

// The process-wide instance.
[[nodiscard]] PackStats& pack_stats() noexcept;

// MetricsRegistry provider: appends every pack-path counter to `out`
// under group "pack" (see base/metrics.hpp).
struct MetricSample;
void append_pack_metrics(std::vector<MetricSample>& out);

} // namespace mpicd
