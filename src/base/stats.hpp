// Streaming statistics accumulator used by the benchmark harness to report
// mean / min / max / stddev over repeated ping-pong iterations (the paper
// reports the average of four runs with error bars).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpicd {

class RunningStats {
public:
    void add(double x) noexcept;
    void reset() noexcept { *this = RunningStats{}; }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
    [[nodiscard]] double stddev() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0; // Welford accumulator
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace mpicd
