/* capi.h — C API for the custom datatype prototype.
 *
 * This header exposes the exact interface proposed in the paper
 * (Listings 2-5: MPI_Type_create_custom and its callback typedefs)
 * together with the minimal MPI surface needed to use it: communicator
 * queries, point-to-point operations, probe / matched probe, and the
 * classic derived-datatype constructors, all backed by the simulated
 * fabric. Ranks run as threads of one process via MPIX_Run_world (the
 * moral equivalent of mpirun for this prototype), so MPI_COMM_WORLD is
 * resolved per thread.
 *
 * Handles are opaque pointers; every function returns MPI_SUCCESS or an
 * MPI_ERR_* code. The header is consumable from C (and from C++).
 */
#ifndef MPICD_CAPI_H
#define MPICD_CAPI_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef long long MPI_Count;

typedef struct mpicd_comm_s* MPI_Comm;
typedef struct mpicd_datatype_s* MPI_Datatype;
typedef struct mpicd_request_s* MPI_Request;
typedef struct mpicd_message_s* MPI_Message;

typedef struct MPI_Status {
    int MPI_SOURCE;
    int MPI_TAG;
    int MPI_ERROR;
    MPI_Count count_; /* internal: transferred bytes */
} MPI_Status;

/* --- Error codes ---------------------------------------------------------- */
#define MPI_SUCCESS 0
#define MPI_ERR_ARG 1
#define MPI_ERR_COUNT 2
#define MPI_ERR_TYPE 3
#define MPI_ERR_BUFFER 4
#define MPI_ERR_TRUNCATE 5
#define MPI_ERR_PENDING 6
#define MPI_ERR_INTERN 7
#define MPI_ERR_OTHER 8

/* --- Wildcards / sentinels ------------------------------------------------- */
#define MPI_ANY_SOURCE (-1)
#define MPI_ANY_TAG (-1)
#define MPI_STATUS_IGNORE ((MPI_Status*)0)
#define MPI_STATUSES_IGNORE ((MPI_Status*)0)
#define MPI_REQUEST_NULL ((MPI_Request)0)
#define MPI_DATATYPE_NULL ((MPI_Datatype)0)

/* --- World handle / predefined datatypes (function-backed handles) -------- */
MPI_Comm MPIX_Comm_world(void);
#define MPI_COMM_WORLD (MPIX_Comm_world())

MPI_Datatype MPIX_Type_byte(void);
MPI_Datatype MPIX_Type_char(void);
MPI_Datatype MPIX_Type_int(void);
MPI_Datatype MPIX_Type_int64(void);
MPI_Datatype MPIX_Type_float(void);
MPI_Datatype MPIX_Type_double(void);
#define MPI_BYTE (MPIX_Type_byte())
#define MPI_CHAR (MPIX_Type_char())
#define MPI_INT (MPIX_Type_int())
#define MPI_INT64_T (MPIX_Type_int64())
#define MPI_FLOAT (MPIX_Type_float())
#define MPI_DOUBLE (MPIX_Type_double())

/* --- Custom datatype callback typedefs (paper Listings 3-5) ---------------- */
typedef int(MPI_Type_custom_state_function)(
    /* Context passed to create function */ void* context,
    /* Buffer provided to MPI */ const void* src,
    /* Count provided to MPI */ MPI_Count src_count,
    /* Out: State to be passed into callbacks */ void** state);

typedef int(MPI_Type_custom_state_free_function)(void* state);

typedef int(MPI_Type_custom_query_function)(
    /* State information */ void* state,
    /* User-provided buffer (not packed) */ const void* buf,
    /* Count passed to MPI */ MPI_Count count,
    /* Expected bytes to be packed */ MPI_Count* packed_size);

typedef int(MPI_Type_custom_pack_function)(
    /* State information for packing */ void* state,
    /* Pointer to custom object to be packed */ const void* buf,
    /* Number of elements of custom type */ MPI_Count count,
    /* Virtual offset into the packed buffer */ MPI_Count offset,
    /* Destination buffer */ void* dst,
    /* Size of destination buffer */ MPI_Count dst_size,
    /* Out: Number of bytes used */ MPI_Count* used);

typedef int(MPI_Type_custom_unpack_function)(
    /* State information for unpacking */ void* state,
    /* Pointer to object to unpack data into */ void* buf,
    /* Number of objects to unpack */ MPI_Count count,
    /* Virtual offset into the unpacked buffer */ MPI_Count offset,
    /* Incoming buffer to be unpacked */ const void* src,
    /* Size of current buffer to be unpacked */ MPI_Count src_size);

typedef int(MPI_Type_custom_region_count_function)(
    void* state,
    /* Buffer pointer */ void* buf,
    /* Number of elements in send buffer */ MPI_Count count,
    /* Out: Number of memory regions */ MPI_Count* region_count);

typedef int(MPI_Type_custom_region_function)(
    void* state,
    /* Buffer pointer */ void* buf,
    /* Number of elements in send buffer */ MPI_Count count,
    /* Number of regions */ MPI_Count region_count,
    /* Out: start of each region */ void* reg_bases[],
    /* Out: length of each region */ MPI_Count reg_lens[],
    /* Out: MPI types for each region */ MPI_Datatype reg_types[]);

/* --- The datatype create function (paper Listing 2) ------------------------ */
int MPI_Type_create_custom(
    MPI_Type_custom_state_function* statefn,
    MPI_Type_custom_state_free_function* freefn,
    MPI_Type_custom_query_function* queryfn,
    MPI_Type_custom_pack_function* packfn,
    MPI_Type_custom_unpack_function* unpackfn,
    MPI_Type_custom_region_count_function* region_countfn,
    MPI_Type_custom_region_function* regionfn,
    void* context,
    /* Flag indicating in-order pack requirement */ int inorder,
    MPI_Datatype* type);

/* --- Classic derived datatypes --------------------------------------------- */
int MPI_Type_contiguous(MPI_Count count, MPI_Datatype oldtype, MPI_Datatype* newtype);
int MPI_Type_vector(MPI_Count count, MPI_Count blocklength, MPI_Count stride,
                    MPI_Datatype oldtype, MPI_Datatype* newtype);
int MPI_Type_indexed(MPI_Count count, const MPI_Count blocklengths[],
                     const MPI_Count displacements[], MPI_Datatype oldtype,
                     MPI_Datatype* newtype);
int MPI_Type_create_struct(MPI_Count count, const MPI_Count blocklengths[],
                           const MPI_Count displacements[] /* bytes */,
                           const MPI_Datatype types[], MPI_Datatype* newtype);
int MPI_Type_create_resized(MPI_Datatype oldtype, MPI_Count lb, MPI_Count extent,
                            MPI_Datatype* newtype);
int MPI_Type_commit(MPI_Datatype* type);
int MPI_Type_free(MPI_Datatype* type);
int MPI_Type_size(MPI_Datatype type, MPI_Count* size);
int MPI_Type_get_extent(MPI_Datatype type, MPI_Count* lb, MPI_Count* extent);

/* --- Communicator / point-to-point ----------------------------------------- */
int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);

int MPI_Send(const void* buf, MPI_Count count, MPI_Datatype type, int dest, int tag,
             MPI_Comm comm);
int MPI_Recv(void* buf, MPI_Count count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status);
int MPI_Isend(const void* buf, MPI_Count count, MPI_Datatype type, int dest, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, MPI_Count count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request requests[], MPI_Status statuses[]);

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status);
int MPI_Mprobe(int source, int tag, MPI_Comm comm, MPI_Message* message,
               MPI_Status* status);
int MPI_Imrecv(void* buf, MPI_Count count, MPI_Datatype type, MPI_Message* message,
               MPI_Request* request);

int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, MPI_Count* count);

int MPI_Sendrecv(const void* sendbuf, MPI_Count sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, MPI_Count recvcount,
                 MPI_Datatype recvtype, int source, int recvtag, MPI_Comm comm,
                 MPI_Status* status);

/* --- Pack / Unpack (classic MPI_Pack semantics over the datatype engine) --- */
int MPI_Pack(const void* inbuf, MPI_Count incount, MPI_Datatype type, void* outbuf,
             MPI_Count outsize, MPI_Count* position, MPI_Comm comm);
int MPI_Unpack(const void* inbuf, MPI_Count insize, MPI_Count* position,
               void* outbuf, MPI_Count outcount, MPI_Datatype type, MPI_Comm comm);
int MPI_Pack_size(MPI_Count incount, MPI_Datatype type, MPI_Comm comm,
                  MPI_Count* size);

/* --- Collectives (extension; see src/p2p/collectives.hpp) ------------------- */
int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buf, MPI_Count count, MPI_Datatype type, int root,
              MPI_Comm comm);
int MPI_Gather(const void* sendbuf, MPI_Count sendcount, MPI_Datatype sendtype,
               void* recvbuf, MPI_Count recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm);

/* --- Prototype harness ------------------------------------------------------ */
/* Run `fn(arg)` once per rank, each on its own thread sharing a simulated
 * fabric; MPI_COMM_WORLD inside fn refers to that rank. Returns when all
 * ranks finish. */
int MPIX_Run_world(int nranks, void (*fn)(void* arg), void* arg);

/* Virtual time of the calling rank (microseconds; see DESIGN.md section 5). */
double MPIX_Wtime_virtual(void);
/* Charge locally measured host work to the rank's virtual clock. */
void MPIX_Advance_time(double microseconds);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* MPICD_CAPI_H */
