// Implementation of the C API (capi.h) over the C++ core.
#include "capi/capi.h"

#include <memory>
#include <vector>

#include "core/custom_type.hpp"
#include "dt/datatype.hpp"
#include "dt/convertor.hpp"
#include "p2p/collectives.hpp"
#include "p2p/runner.hpp"

using mpicd::Count;
using mpicd::Status;

// --- Handle definitions ------------------------------------------------------

namespace {

// C callback table captured at MPI_Type_create_custom time; lives inside
// the datatype handle so trampolines can reach it.
struct CTable {
    MPI_Type_custom_state_function* statefn = nullptr;
    MPI_Type_custom_state_free_function* freefn = nullptr;
    MPI_Type_custom_query_function* queryfn = nullptr;
    MPI_Type_custom_pack_function* packfn = nullptr;
    MPI_Type_custom_unpack_function* unpackfn = nullptr;
    MPI_Type_custom_region_count_function* region_countfn = nullptr;
    MPI_Type_custom_region_function* regionfn = nullptr;
    void* context = nullptr;
};

} // namespace

struct mpicd_datatype_s {
    bool custom = false;
    bool predefined = false;
    mpicd::dt::TypeRef dt;
    mpicd::core::CustomDatatype ctype;
    CTable ctable;
};

struct mpicd_comm_s {
    mpicd::p2p::Communicator* comm = nullptr;
};

struct mpicd_request_s {
    mpicd::p2p::Request rq;
};

struct mpicd_message_s {
    mpicd::p2p::Message msg;
};

namespace {

// --- Status mapping ----------------------------------------------------------

int to_mpi_err(Status s) {
    switch (s) {
        case Status::success: return MPI_SUCCESS;
        case Status::err_arg: return MPI_ERR_ARG;
        case Status::err_count: return MPI_ERR_COUNT;
        case Status::err_type:
        case Status::err_not_committed:
        case Status::err_unsupported: return MPI_ERR_TYPE;
        case Status::err_buffer: return MPI_ERR_BUFFER;
        case Status::err_truncate: return MPI_ERR_TRUNCATE;
        case Status::err_pending: return MPI_ERR_PENDING;
        case Status::err_internal: return MPI_ERR_INTERN;
        default: return MPI_ERR_OTHER;
    }
}

Status from_user_rc(int rc, Status on_error) {
    return rc == MPI_SUCCESS ? Status::success : on_error;
}

// --- Thread-local world ------------------------------------------------------

thread_local mpicd_comm_s tls_world{};

// --- Custom-callback trampolines ----------------------------------------------

struct CapiState {
    const CTable* table = nullptr;
    void* user_state = nullptr;
};

Status tramp_state(void* context, const void* src, Count src_count, void** state) {
    const auto* table = static_cast<const CTable*>(context);
    auto st = std::make_unique<CapiState>();
    st->table = table;
    if (table->statefn != nullptr) {
        const int rc = table->statefn(table->context, src, src_count, &st->user_state);
        if (rc != MPI_SUCCESS) return Status::err_state;
    }
    *state = st.release();
    return Status::success;
}

Status tramp_state_free(void* state) {
    auto* st = static_cast<CapiState*>(state);
    if (st->table->freefn != nullptr) (void)st->table->freefn(st->user_state);
    delete st;
    return Status::success;
}

Status tramp_query(void* state, const void* buf, Count count, Count* packed_size) {
    auto* st = static_cast<CapiState*>(state);
    return from_user_rc(st->table->queryfn(st->user_state, buf, count, packed_size),
                        Status::err_query);
}

Status tramp_pack(void* state, const void* buf, Count count, Count offset, void* dst,
                  Count dst_size, Count* used) {
    auto* st = static_cast<CapiState*>(state);
    return from_user_rc(
        st->table->packfn(st->user_state, buf, count, offset, dst, dst_size, used),
        Status::err_pack);
}

Status tramp_unpack(void* state, void* buf, Count count, Count offset, const void* src,
                    Count src_size) {
    auto* st = static_cast<CapiState*>(state);
    return from_user_rc(
        st->table->unpackfn(st->user_state, buf, count, offset, src, src_size),
        Status::err_unpack);
}

Status tramp_region_count(void* state, void* buf, Count count, Count* region_count) {
    auto* st = static_cast<CapiState*>(state);
    return from_user_rc(
        st->table->region_countfn(st->user_state, buf, count, region_count),
        Status::err_region);
}

Status tramp_region(void* state, void* buf, Count count, Count region_count,
                    void* reg_bases[], Count reg_lens[]) {
    auto* st = static_cast<CapiState*>(state);
    // The C signature also yields per-region datatypes (paper Listing 5);
    // reg_lens counts elements of that type (bytes when the type is null /
    // MPI_BYTE). Convert to byte lengths for the engine.
    std::vector<MPI_Datatype> types(static_cast<std::size_t>(region_count), nullptr);
    const int rc = st->table->regionfn(st->user_state, buf, count, region_count,
                                       reg_bases, reg_lens, types.data());
    if (rc != MPI_SUCCESS) return Status::err_region;
    for (Count i = 0; i < region_count; ++i) {
        const MPI_Datatype t = types[static_cast<std::size_t>(i)];
        if (t == nullptr) continue; // already bytes
        if (t->custom || t->dt == nullptr || !t->dt->is_contiguous())
            return Status::err_region;
        reg_lens[i] *= t->dt->size();
    }
    return Status::success;
}

// --- Datatype handle helpers ---------------------------------------------------

MPI_Datatype make_predef_handle(const mpicd::dt::TypeRef& t) {
    auto* h = new mpicd_datatype_s();
    h->dt = t;
    h->predefined = true;
    return h;
}

int start_op(MPI_Comm comm, MPI_Datatype type, bool send, void* rbuf, const void* sbuf,
             MPI_Count count, int peer, int tag, mpicd::p2p::Request* out) {
    if (comm == nullptr || comm->comm == nullptr || type == nullptr)
        return MPI_ERR_ARG;
    auto& c = *comm->comm;
    if (type->custom) {
        *out = send ? c.isend_custom(sbuf, count, type->ctype, peer, tag)
                    : c.irecv_custom(rbuf, count, type->ctype, peer, tag);
    } else {
        if (type->dt == nullptr) return MPI_ERR_TYPE;
        if (!type->dt->committed()) return MPI_ERR_TYPE;
        *out = send ? c.isend(sbuf, count, type->dt, peer, tag)
                    : c.irecv(rbuf, count, type->dt, peer, tag);
    }
    return MPI_SUCCESS;
}

void fill_status(const mpicd::p2p::MsgStatus& st, MPI_Status* out) {
    if (out == MPI_STATUS_IGNORE) return;
    out->MPI_SOURCE = st.source;
    out->MPI_TAG = st.tag;
    out->MPI_ERROR = to_mpi_err(st.status);
    out->count_ = st.bytes;
}

} // namespace

// --- World / predefined handles ------------------------------------------------

extern "C" {

MPI_Comm MPIX_Comm_world(void) { return &tls_world; }

MPI_Datatype MPIX_Type_byte(void) {
    static MPI_Datatype h = make_predef_handle(mpicd::dt::type_byte());
    return h;
}
MPI_Datatype MPIX_Type_char(void) {
    static MPI_Datatype h = make_predef_handle(mpicd::dt::type_char());
    return h;
}
MPI_Datatype MPIX_Type_int(void) {
    static MPI_Datatype h = make_predef_handle(mpicd::dt::type_int32());
    return h;
}
MPI_Datatype MPIX_Type_int64(void) {
    static MPI_Datatype h = make_predef_handle(mpicd::dt::type_int64());
    return h;
}
MPI_Datatype MPIX_Type_float(void) {
    static MPI_Datatype h = make_predef_handle(mpicd::dt::type_float());
    return h;
}
MPI_Datatype MPIX_Type_double(void) {
    static MPI_Datatype h = make_predef_handle(mpicd::dt::type_double());
    return h;
}

// --- MPI_Type_create_custom (paper Listing 2) -----------------------------------

int MPI_Type_create_custom(MPI_Type_custom_state_function* statefn,
                           MPI_Type_custom_state_free_function* freefn,
                           MPI_Type_custom_query_function* queryfn,
                           MPI_Type_custom_pack_function* packfn,
                           MPI_Type_custom_unpack_function* unpackfn,
                           MPI_Type_custom_region_count_function* region_countfn,
                           MPI_Type_custom_region_function* regionfn, void* context,
                           int inorder, MPI_Datatype* type) {
    if (type == nullptr || queryfn == nullptr || packfn == nullptr ||
        unpackfn == nullptr)
        return MPI_ERR_ARG;
    if ((region_countfn == nullptr) != (regionfn == nullptr)) return MPI_ERR_ARG;

    auto h = std::make_unique<mpicd_datatype_s>();
    h->custom = true;
    h->ctable = CTable{statefn, freefn, queryfn,   packfn,
                       unpackfn, region_countfn, regionfn, context};

    mpicd::core::CustomCallbacks cb;
    cb.state = tramp_state;
    cb.state_free = tramp_state_free;
    cb.query = tramp_query;
    cb.pack = tramp_pack;
    cb.unpack = tramp_unpack;
    if (region_countfn != nullptr) {
        cb.region_count = tramp_region_count;
        cb.region = tramp_region;
    }
    cb.context = &h->ctable;
    cb.inorder = inorder != 0;
    const Status st = mpicd::core::CustomDatatype::create(cb, &h->ctype);
    if (!ok(st)) return to_mpi_err(st);
    *type = h.release();
    return MPI_SUCCESS;
}

// --- Classic derived datatypes ---------------------------------------------------

int MPI_Type_contiguous(MPI_Count count, MPI_Datatype oldtype, MPI_Datatype* newtype) {
    if (newtype == nullptr || oldtype == nullptr || oldtype->custom) return MPI_ERR_ARG;
    auto t = mpicd::dt::Datatype::contiguous(count, oldtype->dt);
    if (t == nullptr) return MPI_ERR_ARG;
    auto* h = new mpicd_datatype_s();
    h->dt = std::move(t);
    *newtype = h;
    return MPI_SUCCESS;
}

int MPI_Type_vector(MPI_Count count, MPI_Count blocklength, MPI_Count stride,
                    MPI_Datatype oldtype, MPI_Datatype* newtype) {
    if (newtype == nullptr || oldtype == nullptr || oldtype->custom) return MPI_ERR_ARG;
    auto t = mpicd::dt::Datatype::vector(count, blocklength, stride, oldtype->dt);
    if (t == nullptr) return MPI_ERR_ARG;
    auto* h = new mpicd_datatype_s();
    h->dt = std::move(t);
    *newtype = h;
    return MPI_SUCCESS;
}

int MPI_Type_indexed(MPI_Count count, const MPI_Count blocklengths[],
                     const MPI_Count displacements[], MPI_Datatype oldtype,
                     MPI_Datatype* newtype) {
    if (newtype == nullptr || oldtype == nullptr || oldtype->custom || count < 0)
        return MPI_ERR_ARG;
    auto t = mpicd::dt::Datatype::indexed(
        std::span<const Count>(blocklengths, static_cast<std::size_t>(count)),
        std::span<const Count>(displacements, static_cast<std::size_t>(count)),
        oldtype->dt);
    if (t == nullptr) return MPI_ERR_ARG;
    auto* h = new mpicd_datatype_s();
    h->dt = std::move(t);
    *newtype = h;
    return MPI_SUCCESS;
}

int MPI_Type_create_struct(MPI_Count count, const MPI_Count blocklengths[],
                           const MPI_Count displacements[], const MPI_Datatype types[],
                           MPI_Datatype* newtype) {
    if (newtype == nullptr || count < 0) return MPI_ERR_ARG;
    std::vector<mpicd::dt::TypeRef> refs;
    refs.reserve(static_cast<std::size_t>(count));
    for (MPI_Count i = 0; i < count; ++i) {
        if (types[i] == nullptr || types[i]->custom) return MPI_ERR_ARG;
        refs.push_back(types[i]->dt);
    }
    auto t = mpicd::dt::Datatype::struct_(
        std::span<const Count>(blocklengths, static_cast<std::size_t>(count)),
        std::span<const Count>(displacements, static_cast<std::size_t>(count)), refs);
    if (t == nullptr) return MPI_ERR_ARG;
    auto* h = new mpicd_datatype_s();
    h->dt = std::move(t);
    *newtype = h;
    return MPI_SUCCESS;
}

int MPI_Type_create_resized(MPI_Datatype oldtype, MPI_Count lb, MPI_Count extent,
                            MPI_Datatype* newtype) {
    if (newtype == nullptr || oldtype == nullptr || oldtype->custom) return MPI_ERR_ARG;
    auto t = mpicd::dt::Datatype::resized(oldtype->dt, lb, extent);
    if (t == nullptr) return MPI_ERR_ARG;
    auto* h = new mpicd_datatype_s();
    h->dt = std::move(t);
    *newtype = h;
    return MPI_SUCCESS;
}

int MPI_Type_commit(MPI_Datatype* type) {
    if (type == nullptr || *type == nullptr) return MPI_ERR_ARG;
    if ((*type)->custom) return MPI_SUCCESS; // custom types are born committed
    return to_mpi_err((*type)->dt->commit());
}

int MPI_Type_free(MPI_Datatype* type) {
    if (type == nullptr || *type == nullptr) return MPI_ERR_ARG;
    if (!(*type)->predefined) delete *type;
    *type = MPI_DATATYPE_NULL;
    return MPI_SUCCESS;
}

int MPI_Type_size(MPI_Datatype type, MPI_Count* size) {
    if (type == nullptr || size == nullptr || type->custom) return MPI_ERR_TYPE;
    *size = type->dt->size();
    return MPI_SUCCESS;
}

int MPI_Type_get_extent(MPI_Datatype type, MPI_Count* lb, MPI_Count* extent) {
    if (type == nullptr || type->custom) return MPI_ERR_TYPE;
    if (lb != nullptr) *lb = type->dt->lb();
    if (extent != nullptr) *extent = type->dt->extent();
    return MPI_SUCCESS;
}

// --- Communicator / point-to-point ------------------------------------------------

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
    if (comm == nullptr || comm->comm == nullptr || rank == nullptr)
        return MPI_ERR_ARG;
    *rank = comm->comm->rank();
    return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
    if (comm == nullptr || comm->comm == nullptr || size == nullptr)
        return MPI_ERR_ARG;
    *size = comm->comm->size();
    return MPI_SUCCESS;
}

int MPI_Isend(const void* buf, MPI_Count count, MPI_Datatype type, int dest, int tag,
              MPI_Comm comm, MPI_Request* request) {
    if (request == nullptr) return MPI_ERR_ARG;
    auto h = std::make_unique<mpicd_request_s>();
    const int rc = start_op(comm, type, true, nullptr, buf, count, dest, tag, &h->rq);
    if (rc != MPI_SUCCESS) return rc;
    *request = h.release();
    return MPI_SUCCESS;
}

int MPI_Irecv(void* buf, MPI_Count count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request) {
    if (request == nullptr) return MPI_ERR_ARG;
    auto h = std::make_unique<mpicd_request_s>();
    const int rc = start_op(comm, type, false, buf, nullptr, count, source, tag, &h->rq);
    if (rc != MPI_SUCCESS) return rc;
    *request = h.release();
    return MPI_SUCCESS;
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
    if (request == nullptr || *request == MPI_REQUEST_NULL) return MPI_ERR_ARG;
    const auto st = (*request)->rq.wait();
    fill_status(st, status);
    delete *request;
    *request = MPI_REQUEST_NULL;
    return to_mpi_err(st.status);
}

int MPI_Waitall(int count, MPI_Request requests[], MPI_Status statuses[]) {
    int rc = MPI_SUCCESS;
    for (int i = 0; i < count; ++i) {
        MPI_Status* st =
            statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[i];
        const int r = MPI_Wait(&requests[i], st);
        if (r != MPI_SUCCESS) rc = r;
    }
    return rc;
}

int MPI_Send(const void* buf, MPI_Count count, MPI_Datatype type, int dest, int tag,
             MPI_Comm comm) {
    MPI_Request rq = MPI_REQUEST_NULL;
    const int rc = MPI_Isend(buf, count, type, dest, tag, comm, &rq);
    if (rc != MPI_SUCCESS) return rc;
    return MPI_Wait(&rq, MPI_STATUS_IGNORE);
}

int MPI_Recv(void* buf, MPI_Count count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
    MPI_Request rq = MPI_REQUEST_NULL;
    const int rc = MPI_Irecv(buf, count, type, source, tag, comm, &rq);
    if (rc != MPI_SUCCESS) return rc;
    return MPI_Wait(&rq, status);
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
    if (comm == nullptr || comm->comm == nullptr) return MPI_ERR_ARG;
    const auto info = comm->comm->probe(source, tag);
    if (status != MPI_STATUS_IGNORE) {
        status->MPI_SOURCE = info.source;
        status->MPI_TAG = info.tag;
        status->MPI_ERROR = MPI_SUCCESS;
        status->count_ = info.bytes;
    }
    return MPI_SUCCESS;
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status) {
    if (comm == nullptr || comm->comm == nullptr || flag == nullptr)
        return MPI_ERR_ARG;
    const auto info = comm->comm->iprobe(source, tag);
    *flag = info.has_value() ? 1 : 0;
    if (info && status != MPI_STATUS_IGNORE) {
        status->MPI_SOURCE = info->source;
        status->MPI_TAG = info->tag;
        status->MPI_ERROR = MPI_SUCCESS;
        status->count_ = info->bytes;
    }
    return MPI_SUCCESS;
}

int MPI_Mprobe(int source, int tag, MPI_Comm comm, MPI_Message* message,
               MPI_Status* status) {
    if (comm == nullptr || comm->comm == nullptr || message == nullptr)
        return MPI_ERR_ARG;
    auto h = std::make_unique<mpicd_message_s>();
    h->msg = comm->comm->mprobe(source, tag);
    if (status != MPI_STATUS_IGNORE) {
        status->MPI_SOURCE = h->msg.info.source;
        status->MPI_TAG = h->msg.info.tag;
        status->MPI_ERROR = MPI_SUCCESS;
        status->count_ = h->msg.info.bytes;
    }
    *message = h.release();
    return MPI_SUCCESS;
}

int MPI_Imrecv(void* buf, MPI_Count count, MPI_Datatype type, MPI_Message* message,
               MPI_Request* request) {
    if (message == nullptr || *message == nullptr || request == nullptr ||
        type == nullptr)
        return MPI_ERR_ARG;
    // Matched receives deliver raw bytes; the caller sizes the buffer from
    // the probe status. (Derived/custom imrecv is future work, as in the
    // paper's discussion of receive-side size limitations.)
    if (type->custom || !type->dt->is_contiguous()) return MPI_ERR_TYPE;
    mpicd_comm_s* world = MPIX_Comm_world();
    if (world->comm == nullptr) return MPI_ERR_ARG;
    auto h = std::make_unique<mpicd_request_s>();
    h->rq = world->comm->imrecv((*message)->msg, buf, count * type->dt->size());
    delete *message;
    *message = nullptr;
    *request = h.release();
    return MPI_SUCCESS;
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, MPI_Count* count) {
    if (status == nullptr || type == nullptr || count == nullptr) return MPI_ERR_ARG;
    if (type->custom) return MPI_ERR_TYPE; // see paper §VI: needs new API
    const Count size = type->dt->size();
    if (size == 0) {
        *count = 0;
        return MPI_SUCCESS;
    }
    if (status->count_ % size != 0) return MPI_ERR_TYPE;
    *count = status->count_ / size;
    return MPI_SUCCESS;
}

int MPI_Sendrecv(const void* sendbuf, MPI_Count sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, MPI_Count recvcount,
                 MPI_Datatype recvtype, int source, int recvtag, MPI_Comm comm,
                 MPI_Status* status) {
    MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
    int rc = MPI_Irecv(recvbuf, recvcount, recvtype, source, recvtag, comm, &reqs[0]);
    if (rc != MPI_SUCCESS) return rc;
    rc = MPI_Isend(sendbuf, sendcount, sendtype, dest, sendtag, comm, &reqs[1]);
    if (rc != MPI_SUCCESS) {
        (void)MPI_Wait(&reqs[0], MPI_STATUS_IGNORE);
        return rc;
    }
    const int rr = MPI_Wait(&reqs[0], status);
    const int rs = MPI_Wait(&reqs[1], MPI_STATUS_IGNORE);
    return rr != MPI_SUCCESS ? rr : rs;
}

int MPI_Pack(const void* inbuf, MPI_Count incount, MPI_Datatype type, void* outbuf,
             MPI_Count outsize, MPI_Count* position, MPI_Comm /*comm*/) {
    if (type == nullptr || type->custom || position == nullptr) return MPI_ERR_TYPE;
    if (!type->dt->committed()) return MPI_ERR_TYPE;
    const Count need = type->dt->size() * incount;
    if (*position + need > outsize) return MPI_ERR_TRUNCATE;
    Count used = 0;
    const Status st = mpicd::dt::Convertor::pack_all(
        type->dt, inbuf, incount,
        mpicd::MutBytes(static_cast<std::byte*>(outbuf) + *position,
                        static_cast<std::size_t>(need)),
        &used);
    if (!ok(st)) return to_mpi_err(st);
    *position += used;
    return MPI_SUCCESS;
}

int MPI_Unpack(const void* inbuf, MPI_Count insize, MPI_Count* position,
               void* outbuf, MPI_Count outcount, MPI_Datatype type,
               MPI_Comm /*comm*/) {
    if (type == nullptr || type->custom || position == nullptr) return MPI_ERR_TYPE;
    if (!type->dt->committed()) return MPI_ERR_TYPE;
    const Count need = type->dt->size() * outcount;
    if (*position + need > insize) return MPI_ERR_TRUNCATE;
    const Status st = mpicd::dt::Convertor::unpack_all(
        type->dt, outbuf, outcount,
        mpicd::ConstBytes(static_cast<const std::byte*>(inbuf) + *position,
                          static_cast<std::size_t>(need)));
    if (!ok(st)) return to_mpi_err(st);
    *position += need;
    return MPI_SUCCESS;
}

int MPI_Pack_size(MPI_Count incount, MPI_Datatype type, MPI_Comm /*comm*/,
                  MPI_Count* size) {
    if (type == nullptr || type->custom || size == nullptr) return MPI_ERR_TYPE;
    *size = type->dt->size() * incount;
    return MPI_SUCCESS;
}

int MPI_Barrier(MPI_Comm comm) {
    if (comm == nullptr || comm->comm == nullptr) return MPI_ERR_ARG;
    return to_mpi_err(mpicd::p2p::barrier(*comm->comm));
}

int MPI_Bcast(void* buf, MPI_Count count, MPI_Datatype type, int root,
              MPI_Comm comm) {
    if (comm == nullptr || comm->comm == nullptr || type == nullptr)
        return MPI_ERR_ARG;
    if (type->custom) {
        return to_mpi_err(
            mpicd::p2p::bcast_custom(*comm->comm, buf, count, type->ctype, root));
    }
    return to_mpi_err(mpicd::p2p::bcast(*comm->comm, buf, count, type->dt, root));
}

int MPI_Gather(const void* sendbuf, MPI_Count sendcount, MPI_Datatype sendtype,
               void* recvbuf, MPI_Count recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm) {
    if (comm == nullptr || comm->comm == nullptr || sendtype == nullptr ||
        sendtype->custom)
        return MPI_ERR_ARG;
    if (!sendtype->dt->is_contiguous()) return MPI_ERR_TYPE; // contiguous only
    if (recvtype != nullptr && !recvtype->custom && recvtype->dt->is_contiguous() &&
        recvtype->dt->size() * recvcount != sendtype->dt->size() * sendcount)
        return MPI_ERR_COUNT;
    return to_mpi_err(mpicd::p2p::gather_bytes(
        *comm->comm, sendbuf, sendtype->dt->size() * sendcount, recvbuf, root));
}

int MPIX_Run_world(int nranks, void (*fn)(void* arg), void* arg) {
    if (nranks <= 0 || fn == nullptr) return MPI_ERR_ARG;
    mpicd::p2p::run_world(nranks, [fn, arg](mpicd::p2p::Communicator& comm) {
        tls_world.comm = &comm;
        fn(arg);
        tls_world.comm = nullptr;
    });
    return MPI_SUCCESS;
}

double MPIX_Wtime_virtual(void) {
    return tls_world.comm != nullptr ? tls_world.comm->now() : 0.0;
}

void MPIX_Advance_time(double microseconds) {
    if (tls_world.comm != nullptr) tls_world.comm->advance_time(microseconds);
}

} // extern "C"
