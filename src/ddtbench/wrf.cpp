// WRF halo exchanges (x_vec / y_vec): a struct of strided vectors.
//
// Three atmosphere fields share one halo message: two 3D arrays
// A1[km][jm][im], A2[km][jm][im] and one 4D array B[2][km][jm][im].
// The x-direction halo selects a width-w slab in the innermost dimension
// (3/4-deep loop nests of tiny non-contiguous blocks); the y-direction
// halo selects width-w in the middle dimension (larger contiguous rows).
// Either way the block structure is too fine/heterogeneous for memory
// regions to be practical, matching Table I.
#include <cstring>
#include <vector>

#include "ddtbench/kernel.hpp"

namespace mpicd::ddtbench {
namespace detail {

namespace {

enum class WrfDir { x, y };

class Wrf final : public Kernel {
public:
    explicit Wrf(WrfDir dir) : dir_(dir) { resize(64 * 1024); }

    TableInfo info() const override {
        return {dir_ == WrfDir::x ? "WRF_x_vec" : "WRF_y_vec",
                "struct of strided vectors", "3/4/5 nested loops (non-contiguous)",
                false};
    }

    void resize(Count target_bytes) override {
        im_ = 32;
        jm_ = 16;
        w_ = 2;
        // Payload per km level: x: 4 arrays' worth of jm*w doubles;
        //                       y: 4 arrays' worth of w*im doubles.
        const Count per_km = dir_ == WrfDir::x ? 4 * jm_ * w_ * 8 : 4 * w_ * im_ * 8;
        km_ = std::max<Count>(1, target_bytes / per_km);
        const Count arr3 = km_ * jm_ * im_;
        a1_.assign(static_cast<std::size_t>(arr3), 0.0);
        a2_.assign(static_cast<std::size_t>(arr3), 0.0);
        b_.assign(static_cast<std::size_t>(2 * arr3), 0.0);
        i0_ = im_ / 2 - w_ / 2;
        j0_ = jm_ / 2 - w_ / 2;
        type_cache_.reset();
    }

    Count payload_bytes() const override {
        return dir_ == WrfDir::x ? 4 * km_ * jm_ * w_ * 8 : 4 * km_ * w_ * im_ * 8;
    }

    void fill(unsigned seed) override {
        fill_arr(a1_, seed + 1);
        fill_arr(a2_, seed + 2);
        fill_arr(b_, seed + 3);
    }
    void clear() override {
        std::fill(a1_.begin(), a1_.end(), 0.0);
        std::fill(a2_.begin(), a2_.end(), 0.0);
        std::fill(b_.begin(), b_.end(), 0.0);
    }

    bool verify(const Kernel& sent_base) const override {
        const auto& sent = dynamic_cast<const Wrf&>(sent_base);
        if (sent.km_ != km_ || sent.dir_ != dir_) return false;
        ByteVec mine(static_cast<std::size_t>(payload_bytes()));
        ByteVec theirs(static_cast<std::size_t>(payload_bytes()));
        manual_pack(mine.data());
        sent.manual_pack(theirs.data());
        return mine == theirs;
    }

    void manual_pack(std::byte* dst) const override {
        auto* out = reinterpret_cast<double*>(dst);
        std::size_t pos = 0;
        pack_arr(a1_.data(), 1, out, pos);
        pack_arr(a2_.data(), 1, out, pos);
        pack_arr(b_.data(), 2, out, pos); // extra m loop: the 4/5-deep nest
    }
    void manual_unpack(const std::byte* src) override {
        const auto* in = reinterpret_cast<const double*>(src);
        std::size_t pos = 0;
        unpack_arr(a1_.data(), 1, in, pos);
        unpack_arr(a2_.data(), 1, in, pos);
        unpack_arr(b_.data(), 2, in, pos);
    }

    dt::TypeRef datatype() const override {
        if (type_cache_ == nullptr) type_cache_ = build_datatype();
        return type_cache_;
    }
    Count dt_count() const override { return 1; }
    const void* dt_buffer() const override { return a1_.data(); }
    void* dt_buffer() override { return a1_.data(); }

private:
    void fill_arr(std::vector<double>& a, unsigned seed) {
        for (std::size_t i = 0; i < a.size(); ++i)
            a[i] = static_cast<double>(i % 32749) * 0.125 + seed;
    }

    // Loop nest per array: (m,) k, j, i over the halo slab.
    void pack_arr(const double* a, Count mdim, double* out, std::size_t& pos) const {
        const Count plane = jm_ * im_;
        for (Count m = 0; m < mdim; ++m) {
            for (Count k = 0; k < km_; ++k) {
                const Count base = (m * km_ + k) * plane;
                if (dir_ == WrfDir::x) {
                    for (Count j = 0; j < jm_; ++j)
                        for (Count i = 0; i < w_; ++i)
                            out[pos++] =
                                a[static_cast<std::size_t>(base + j * im_ + i0_ + i)];
                } else {
                    for (Count j = 0; j < w_; ++j)
                        for (Count i = 0; i < im_; ++i)
                            out[pos++] =
                                a[static_cast<std::size_t>(base + (j0_ + j) * im_ + i)];
                }
            }
        }
    }
    void unpack_arr(double* a, Count mdim, const double* in, std::size_t& pos) {
        const Count plane = jm_ * im_;
        for (Count m = 0; m < mdim; ++m) {
            for (Count k = 0; k < km_; ++k) {
                const Count base = (m * km_ + k) * plane;
                if (dir_ == WrfDir::x) {
                    for (Count j = 0; j < jm_; ++j)
                        for (Count i = 0; i < w_; ++i)
                            a[static_cast<std::size_t>(base + j * im_ + i0_ + i)] =
                                in[pos++];
                } else {
                    for (Count j = 0; j < w_; ++j)
                        for (Count i = 0; i < im_; ++i)
                            a[static_cast<std::size_t>(base + (j0_ + j) * im_ + i)] =
                                in[pos++];
                }
            }
        }
    }

    dt::TypeRef build_datatype() const {
        // Per 3D array: the x halo is km*jm blocks of w doubles with stride
        // im; the y halo is km blocks of w*im doubles with stride jm*im.
        dt::TypeRef halo3;
        if (dir_ == WrfDir::x) {
            halo3 = dt::Datatype::vector(km_ * jm_, w_, im_, dt::type_double());
        } else {
            halo3 = dt::Datatype::vector(km_, w_ * im_, jm_ * im_, dt::type_double());
        }
        // The 4D array is two consecutive 3D arrays.
        const auto halo4 = dt::Datatype::hvector(2, 1, km_ * jm_ * im_ * 8, halo3);

        const auto byte_off = [&](const void* p) {
            return static_cast<Count>(reinterpret_cast<const std::byte*>(p) -
                                      reinterpret_cast<const std::byte*>(a1_.data()));
        };
        const Count halo_disp = (dir_ == WrfDir::x ? i0_ : j0_ * im_) * 8;
        const Count blocklens[] = {1, 1, 1};
        const Count displs[] = {halo_disp, byte_off(a2_.data()) + halo_disp,
                                byte_off(b_.data()) + halo_disp};
        const dt::TypeRef types[] = {halo3, halo3, halo4};
        auto t = dt::Datatype::struct_(blocklens, displs, types);
        (void)t->commit();
        return t;
    }

    WrfDir dir_;
    Count im_ = 0, jm_ = 0, km_ = 0, w_ = 0, i0_ = 0, j0_ = 0;
    std::vector<double> a1_, a2_, b_;
    mutable dt::TypeRef type_cache_;
};

} // namespace

std::unique_ptr<Kernel> make_wrf_x_vec() {
    return std::make_unique<Wrf>(WrfDir::x);
}
std::unique_ptr<Kernel> make_wrf_y_vec() {
    return std::make_unique<Wrf>(WrfDir::y);
}

} // namespace detail
} // namespace mpicd::ddtbench
