// LAMMPS_full: molecular-dynamics atom exchange.
//
// Six per-atom quantities (x[3], v[3] doubles; q double; type, mask,
// molecule ints) live in separate arrays inside one slab; a subset of
// atoms selected by an index list is exchanged. The manual pack is a
// single loop touching all six arrays with non-unit stride (Table I), the
// derived datatype is a struct of indexed(-block) types, and memory
// regions are impracticable (3 doubles here, an int there).
#include <cstring>
#include <vector>

#include "ddtbench/kernel.hpp"

namespace mpicd::ddtbench {
namespace detail {

namespace {

// Per selected atom: 3 doubles x + 3 doubles v + 1 double q + 3 ints.
constexpr Count kAtomPayload = 3 * 8 + 3 * 8 + 8 + 3 * 4;

class LammpsFull final : public Kernel {
public:
    LammpsFull() { resize(64 * 1024); }

    TableInfo info() const override {
        return {"LAMMPS_full", "indexed, struct",
                "single loop, 6 arrays (non-unit stride)", false};
    }

    void resize(Count target_bytes) override {
        icount_ = std::max<Count>(1, target_bytes / kAtomPayload);
        natoms_ = icount_ * 2;
        x_.assign(static_cast<std::size_t>(3 * natoms_), 0.0);
        v_.assign(static_cast<std::size_t>(3 * natoms_), 0.0);
        q_.assign(static_cast<std::size_t>(natoms_), 0.0);
        type_.assign(static_cast<std::size_t>(natoms_), 0);
        mask_.assign(static_cast<std::size_t>(natoms_), 0);
        molecule_.assign(static_cast<std::size_t>(natoms_), 0);
        // Every other atom, a non-unit-stride gather.
        idx_.resize(static_cast<std::size_t>(icount_));
        for (Count i = 0; i < icount_; ++i) idx_[static_cast<std::size_t>(i)] = 2 * i;
        type_cache_.reset();
    }

    Count payload_bytes() const override { return icount_ * kAtomPayload; }

    void fill(unsigned seed) override {
        for (Count a = 0; a < natoms_; ++a) {
            const auto i = static_cast<std::size_t>(a);
            for (int d = 0; d < 3; ++d) {
                x_[i * 3 + d] = 0.5 * static_cast<double>(a * 3 + d) + seed;
                v_[i * 3 + d] = -0.25 * static_cast<double>(a * 3 + d) - seed;
            }
            q_[i] = 0.125 * static_cast<double>(a) + seed;
            type_[i] = static_cast<std::int32_t>(a % 7 + seed);
            mask_[i] = static_cast<std::int32_t>(a % 3);
            molecule_[i] = static_cast<std::int32_t>(a / 4);
        }
    }

    void clear() override {
        std::fill(x_.begin(), x_.end(), 0.0);
        std::fill(v_.begin(), v_.end(), 0.0);
        std::fill(q_.begin(), q_.end(), 0.0);
        std::fill(type_.begin(), type_.end(), 0);
        std::fill(mask_.begin(), mask_.end(), 0);
        std::fill(molecule_.begin(), molecule_.end(), 0);
    }

    bool verify(const Kernel& sent_base) const override {
        const auto& sent = dynamic_cast<const LammpsFull&>(sent_base);
        if (sent.icount_ != icount_) return false;
        for (const Count a : idx_) {
            const auto i = static_cast<std::size_t>(a);
            for (int d = 0; d < 3; ++d) {
                if (x_[i * 3 + d] != sent.x_[i * 3 + d]) return false;
                if (v_[i * 3 + d] != sent.v_[i * 3 + d]) return false;
            }
            if (q_[i] != sent.q_[i] || type_[i] != sent.type_[i] ||
                mask_[i] != sent.mask_[i] || molecule_[i] != sent.molecule_[i])
                return false;
        }
        return true;
    }

    // Single loop over the index list, gathering from six arrays — the
    // LAMMPS pack_exchange pattern.
    void manual_pack(std::byte* dst) const override {
        for (Count n = 0; n < icount_; ++n) {
            const auto i = static_cast<std::size_t>(idx_[static_cast<std::size_t>(n)]);
            std::memcpy(dst, &x_[i * 3], 24);
            std::memcpy(dst + 24, &v_[i * 3], 24);
            std::memcpy(dst + 48, &q_[i], 8);
            std::memcpy(dst + 56, &type_[i], 4);
            std::memcpy(dst + 60, &mask_[i], 4);
            std::memcpy(dst + 64, &molecule_[i], 4);
            dst += kAtomPayload;
        }
    }

    void manual_unpack(const std::byte* src) override {
        for (Count n = 0; n < icount_; ++n) {
            const auto i = static_cast<std::size_t>(idx_[static_cast<std::size_t>(n)]);
            std::memcpy(&x_[i * 3], src, 24);
            std::memcpy(&v_[i * 3], src + 24, 24);
            std::memcpy(&q_[i], src + 48, 8);
            std::memcpy(&type_[i], src + 56, 4);
            std::memcpy(&mask_[i], src + 60, 4);
            std::memcpy(&molecule_[i], src + 64, 4);
            src += kAtomPayload;
        }
    }

    // Struct of indexed types over the six arrays, rooted at x_ (absolute
    // byte displacements to the other arrays, MPI_BOTTOM style).
    dt::TypeRef datatype() const override {
        if (type_cache_ == nullptr) type_cache_ = build_datatype();
        return type_cache_;
    }
    Count dt_count() const override { return 1; }
    const void* dt_buffer() const override { return x_.data(); }
    void* dt_buffer() override { return x_.data(); }

private:
    dt::TypeRef build_datatype() const {
        // Indexed selections, one per array.
        std::vector<Count> xdispls(static_cast<std::size_t>(icount_));
        std::vector<Count> adispls(static_cast<std::size_t>(icount_));
        for (Count i = 0; i < icount_; ++i) {
            xdispls[static_cast<std::size_t>(i)] = 3 * idx_[static_cast<std::size_t>(i)];
            adispls[static_cast<std::size_t>(i)] = idx_[static_cast<std::size_t>(i)];
        }
        const auto vec3 = dt::Datatype::indexed_block(3, xdispls, dt::type_double());
        const auto scal_d = dt::Datatype::indexed_block(1, adispls, dt::type_double());
        const auto scal_i = dt::Datatype::indexed_block(1, adispls, dt::type_int32());

        const auto byte_off = [&](const void* p) {
            return static_cast<Count>(reinterpret_cast<const std::byte*>(p) -
                                      reinterpret_cast<const std::byte*>(x_.data()));
        };
        const Count blocklens[] = {1, 1, 1, 1, 1, 1};
        const Count displs[] = {0,
                                byte_off(v_.data()),
                                byte_off(q_.data()),
                                byte_off(type_.data()),
                                byte_off(mask_.data()),
                                byte_off(molecule_.data())};
        const dt::TypeRef types[] = {vec3, vec3, scal_d, scal_i, scal_i, scal_i};
        auto t = dt::Datatype::struct_(blocklens, displs, types);
        (void)t->commit();
        return t;
    }

    Count natoms_ = 0;
    Count icount_ = 0;
    std::vector<Count> idx_;
    std::vector<double> x_, v_, q_;
    std::vector<std::int32_t> type_, mask_, molecule_;
    mutable dt::TypeRef type_cache_;
};

} // namespace

std::unique_ptr<Kernel> make_lammps_full() { return std::make_unique<LammpsFull>(); }

} // namespace detail
} // namespace mpicd::ddtbench
