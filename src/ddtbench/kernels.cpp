#include "ddtbench/kernel.hpp"

#include <cstring>

namespace mpicd::ddtbench {

namespace {

// --- kernel_pack_type callbacks ---------------------------------------------

struct PackState {
    ByteVec staged;
    bool packed = false;
    Count received = 0;
};

Status kp_state(void* /*context*/, const void* src, Count src_count, void** state) {
    if (src == nullptr || src_count != 1) return Status::err_arg;
    *state = new PackState();
    return Status::success;
}

Status kp_state_free(void* state) {
    delete static_cast<PackState*>(state);
    return Status::success;
}

Status kp_query(void* /*state*/, const void* buf, Count /*count*/, Count* packed_size) {
    *packed_size = static_cast<const Kernel*>(buf)->payload_bytes();
    return Status::success;
}

Status kp_pack(void* state, const void* buf, Count /*count*/, Count offset, void* dst,
               Count dst_size, Count* used) {
    auto* st = static_cast<PackState*>(state);
    const auto* kernel = static_cast<const Kernel*>(buf);
    const Count total = kernel->payload_bytes();
    if (!st->packed) {
        st->staged.resize(static_cast<std::size_t>(total));
        kernel->manual_pack(st->staged.data());
        st->packed = true;
    }
    if (offset < 0 || offset > total) return Status::err_pack;
    const Count n = std::min(dst_size, total - offset);
    std::memcpy(dst, st->staged.data() + offset, static_cast<std::size_t>(n));
    *used = n;
    return Status::success;
}

Status kp_unpack(void* state, void* buf, Count /*count*/, Count offset, const void* src,
                 Count src_size) {
    auto* st = static_cast<PackState*>(state);
    auto* kernel = static_cast<Kernel*>(buf);
    const Count total = kernel->payload_bytes();
    if (offset < 0 || offset + src_size > total) return Status::err_unpack;
    if (st->staged.size() != static_cast<std::size_t>(total)) {
        st->staged.resize(static_cast<std::size_t>(total));
    }
    std::memcpy(st->staged.data() + offset, src, static_cast<std::size_t>(src_size));
    st->received += src_size;
    if (st->received == total) kernel->manual_unpack(st->staged.data());
    return Status::success;
}

// --- kernel_region_type callbacks -------------------------------------------

Status kr_query(void* /*state*/, const void* /*buf*/, Count /*count*/,
                Count* packed_size) {
    *packed_size = 0;
    return Status::success;
}

Status kr_nopack(void*, const void*, Count, Count, void*, Count, Count*) {
    return Status::err_internal;
}

Status kr_nounpack(void*, void*, Count, Count, const void*, Count) {
    return Status::err_internal;
}

Status kr_region_count(void* /*state*/, void* buf, Count /*count*/, Count* n) {
    *n = static_cast<Kernel*>(buf)->region_count();
    return *n > 0 ? Status::success : Status::err_region;
}

Status kr_region(void* /*state*/, void* buf, Count /*count*/, Count n, void* bases[],
                 Count lens[]) {
    auto* kernel = static_cast<Kernel*>(buf);
    if (n != kernel->region_count()) return Status::err_region;
    std::vector<IovEntry> entries(static_cast<std::size_t>(n));
    kernel->regions(entries.data());
    for (Count i = 0; i < n; ++i) {
        bases[i] = entries[static_cast<std::size_t>(i)].base;
        lens[i] = entries[static_cast<std::size_t>(i)].len;
    }
    return Status::success;
}

} // namespace

const core::CustomDatatype& kernel_pack_type() {
    static const core::CustomDatatype type = [] {
        core::CustomCallbacks cb;
        cb.state = kp_state;
        cb.state_free = kp_state_free;
        cb.query = kp_query;
        cb.pack = kp_pack;
        cb.unpack = kp_unpack;
        cb.inorder = false;
        core::CustomDatatype out;
        (void)core::CustomDatatype::create(cb, &out);
        return out;
    }();
    return type;
}

const core::CustomDatatype& kernel_region_type() {
    static const core::CustomDatatype type = [] {
        core::CustomCallbacks cb;
        cb.query = kr_query;
        cb.pack = kr_nopack;
        cb.unpack = kr_nounpack;
        cb.region_count = kr_region_count;
        cb.region = kr_region;
        cb.inorder = false;
        core::CustomDatatype out;
        (void)core::CustomDatatype::create(cb, &out);
        return out;
    }();
    return type;
}

// Registry --------------------------------------------------------------------

namespace detail {
std::unique_ptr<Kernel> make_lammps_full();
std::unique_ptr<Kernel> make_milc_zdown();
std::unique_ptr<Kernel> make_nas_lu_x();
std::unique_ptr<Kernel> make_nas_lu_y();
std::unique_ptr<Kernel> make_nas_mg_x();
std::unique_ptr<Kernel> make_nas_mg_y();
std::unique_ptr<Kernel> make_wrf_x_vec();
std::unique_ptr<Kernel> make_wrf_y_vec();
} // namespace detail

std::vector<std::string> kernel_names() {
    return {"LAMMPS_full", "MILC_su3_zd", "NAS_LU_x", "NAS_LU_y",
            "NAS_MG_x",    "NAS_MG_y",    "WRF_x_vec", "WRF_y_vec"};
}

std::unique_ptr<Kernel> make_kernel(const std::string& name) {
    if (name == "LAMMPS_full") return detail::make_lammps_full();
    if (name == "MILC_su3_zd") return detail::make_milc_zdown();
    if (name == "NAS_LU_x") return detail::make_nas_lu_x();
    if (name == "NAS_LU_y") return detail::make_nas_lu_y();
    if (name == "NAS_MG_x") return detail::make_nas_mg_x();
    if (name == "NAS_MG_y") return detail::make_nas_mg_y();
    if (name == "WRF_x_vec") return detail::make_wrf_x_vec();
    if (name == "WRF_y_vec") return detail::make_wrf_y_vec();
    return nullptr;
}

} // namespace mpicd::ddtbench
