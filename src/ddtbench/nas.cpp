// NAS LU and MG face exchanges.
//
//   NAS_LU_x: rsd(5, nx, ny) x-direction face — a fully contiguous run
//             (one region; packing is a straight memcpy).
//   NAS_LU_y: y-direction face — ny blocks of 5 doubles with stride nx*5
//             (many tiny regions: the case where the paper finds the UCX
//             scatter-gather path loses to packing).
//   NAS_MG_x: u(nx, ny, nz) x-face — nz*ny single doubles with stride nx
//             (the most fragmented pattern in the set).
//   NAS_MG_y: y-face — nz rows of nx contiguous doubles with stride nx*ny
//             (few large regions; regions win).
#include <cstring>
#include <vector>

#include "ddtbench/kernel.hpp"

namespace mpicd::ddtbench {
namespace detail {

namespace {

// Shared base for the four grid kernels: a double slab with a face
// described by (count, blocklen, stride) in doubles from a face offset.
class StridedFaceKernel : public Kernel {
public:
    Count payload_bytes() const override { return count_ * blocklen_ * 8; }

    void fill(unsigned seed) override {
        for (std::size_t i = 0; i < slab_.size(); ++i)
            slab_[i] = static_cast<double>(i % 16381) * 0.25 + seed;
    }
    void clear() override { std::fill(slab_.begin(), slab_.end(), 0.0); }

    bool verify(const Kernel& sent_base) const override {
        const auto& sent = dynamic_cast<const StridedFaceKernel&>(sent_base);
        if (sent.count_ != count_ || sent.blocklen_ != blocklen_) return false;
        for (Count b = 0; b < count_; ++b) {
            const std::size_t off = block_offset(b);
            if (std::memcmp(&slab_[off], &sent.slab_[off],
                            static_cast<std::size_t>(blocklen_ * 8)) != 0)
                return false;
        }
        return true;
    }

    // Two nested loops: blocks, then elements within the block.
    void manual_pack(std::byte* dst) const override {
        auto* out = reinterpret_cast<double*>(dst);
        std::size_t pos = 0;
        for (Count b = 0; b < count_; ++b) {
            const std::size_t off = block_offset(b);
            for (Count e = 0; e < blocklen_; ++e)
                out[pos++] = slab_[off + static_cast<std::size_t>(e)];
        }
    }
    void manual_unpack(const std::byte* src) override {
        const auto* in = reinterpret_cast<const double*>(src);
        std::size_t pos = 0;
        for (Count b = 0; b < count_; ++b) {
            const std::size_t off = block_offset(b);
            for (Count e = 0; e < blocklen_; ++e)
                slab_[off + static_cast<std::size_t>(e)] = in[pos++];
        }
    }

    dt::TypeRef datatype() const override {
        if (type_cache_ == nullptr) {
            auto t = dt::Datatype::vector(count_, blocklen_, stride_, dt::type_double());
            (void)t->commit();
            type_cache_ = t;
        }
        return type_cache_;
    }
    Count dt_count() const override { return 1; }
    const void* dt_buffer() const override { return slab_.data() + face_off_; }
    void* dt_buffer() override { return slab_.data() + face_off_; }

    Count region_count() const override { return count_; }
    void regions(IovEntry* out) override {
        for (Count b = 0; b < count_; ++b) {
            out[b].base = slab_.data() + block_offset(b);
            out[b].len = blocklen_ * 8;
        }
    }

protected:
    void configure(Count slab_doubles, Count face_off, Count count, Count blocklen,
                   Count stride) {
        slab_.assign(static_cast<std::size_t>(slab_doubles), 0.0);
        face_off_ = face_off;
        count_ = count;
        blocklen_ = blocklen;
        stride_ = stride;
        type_cache_.reset();
    }

    [[nodiscard]] std::size_t block_offset(Count b) const {
        return static_cast<std::size_t>(face_off_ + b * stride_);
    }

    Count face_off_ = 0, count_ = 0, blocklen_ = 0, stride_ = 0;
    std::vector<double> slab_;
    mutable dt::TypeRef type_cache_;
};

class NasLuX final : public StridedFaceKernel {
public:
    NasLuX() { resize(64 * 1024); }
    TableInfo info() const override {
        return {"NAS_LU_x", "contiguous", "2 nested loops", true};
    }
    void resize(Count target_bytes) override {
        const Count nx = std::max<Count>(1, target_bytes / (5 * 8));
        const Count ny = 3;
        const Count j0 = 1;
        // rsd[ny][nx][5]: face row j0 is one contiguous run of nx*5.
        configure(ny * nx * 5, j0 * nx * 5, /*count=*/1, /*blocklen=*/nx * 5,
                  /*stride=*/nx * 5);
    }
};

class NasLuY final : public StridedFaceKernel {
public:
    NasLuY() { resize(64 * 1024); }
    TableInfo info() const override {
        return {"NAS_LU_y", "strided vector", "2 nested loops (non-contiguous)", true};
    }
    void resize(Count target_bytes) override {
        const Count nx = 64;
        const Count ny = std::max<Count>(1, target_bytes / (5 * 8));
        const Count i0 = nx / 2;
        // rsd[ny][nx][5]: column i0 — ny blocks of 5 doubles, stride nx*5.
        configure(ny * nx * 5, i0 * 5, /*count=*/ny, /*blocklen=*/5,
                  /*stride=*/nx * 5);
    }
};

class NasMgX final : public StridedFaceKernel {
public:
    NasMgX() { resize(64 * 1024); }
    TableInfo info() const override {
        return {"NAS_MG_x", "strided vector", "2 nested loops (non-contiguous)", true};
    }
    void resize(Count target_bytes) override {
        const Count nx = 64, ny = 64;
        const Count nz = std::max<Count>(1, target_bytes / (8 * ny));
        const Count i0 = nx / 2;
        // u[nz][ny][nx]: x-face — nz*ny single doubles with stride nx.
        configure(nz * ny * nx, i0, /*count=*/nz * ny, /*blocklen=*/1,
                  /*stride=*/nx);
    }
};

class NasMgY final : public StridedFaceKernel {
public:
    NasMgY() { resize(64 * 1024); }
    TableInfo info() const override {
        return {"NAS_MG_y", "strided vector", "2 nested loops (non-contiguous)", true};
    }
    void resize(Count target_bytes) override {
        const Count nx = 256, ny = 8;
        const Count nz = std::max<Count>(1, target_bytes / (8 * nx));
        const Count j0 = ny / 2;
        // u[nz][ny][nx]: y-face — nz rows of nx doubles, stride nx*ny.
        configure(nz * ny * nx, j0 * nx, /*count=*/nz, /*blocklen=*/nx,
                  /*stride=*/nx * ny);
    }
};

} // namespace

std::unique_ptr<Kernel> make_nas_lu_x() { return std::make_unique<NasLuX>(); }
std::unique_ptr<Kernel> make_nas_lu_y() { return std::make_unique<NasLuY>(); }
std::unique_ptr<Kernel> make_nas_mg_x() { return std::make_unique<NasMgX>(); }
std::unique_ptr<Kernel> make_nas_mg_y() { return std::make_unique<NasMgY>(); }

} // namespace detail
} // namespace mpicd::ddtbench
