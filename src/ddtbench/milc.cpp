// MILC su3_zdown: lattice-QCD face exchange.
//
// A 4D lattice of su3 vectors (3 complex doubles = 6 doubles per site),
// site index ((t*Z + z)*Y + y)*X + x with x fastest. The exchanged face
// fixes the y coordinate, so the face decomposes into T*Z contiguous runs
// of X sites — a strided vector datatype, a 5-deep manual pack loop nest
// (t, z, x, color, re/im), and a modest number of sizeable memory regions
// (the case where the paper finds regions beat packing).
#include <cstring>
#include <vector>

#include "ddtbench/kernel.hpp"

namespace mpicd::ddtbench {
namespace detail {

namespace {

constexpr Count kSu3Doubles = 6; // 3 colors x (re, im)

class MilcZdown final : public Kernel {
public:
    MilcZdown() { resize(64 * 1024); }

    TableInfo info() const override {
        return {"MILC_su3_zd", "strided vector", "5 nested loops (non-unit stride)",
                true};
    }

    void resize(Count target_bytes) override {
        X_ = 16;
        Y_ = 4;
        Z_ = 8;
        const Count run_bytes = X_ * kSu3Doubles * 8;
        T_ = std::max<Count>(1, target_bytes / (Z_ * run_bytes));
        slab_.assign(static_cast<std::size_t>(T_ * Z_ * Y_ * X_ * kSu3Doubles), 0.0);
        y0_ = Y_ / 2;
        type_cache_.reset();
    }

    Count payload_bytes() const override { return T_ * Z_ * X_ * kSu3Doubles * 8; }

    void fill(unsigned seed) override {
        for (std::size_t i = 0; i < slab_.size(); ++i)
            slab_[i] = static_cast<double>(i % 8191) * 0.5 + seed;
    }
    void clear() override { std::fill(slab_.begin(), slab_.end(), 0.0); }

    bool verify(const Kernel& sent_base) const override {
        const auto& sent = dynamic_cast<const MilcZdown&>(sent_base);
        if (sent.T_ != T_ || sent.Z_ != Z_) return false;
        for (Count t = 0; t < T_; ++t) {
            for (Count z = 0; z < Z_; ++z) {
                const std::size_t off = run_offset(t, z);
                if (std::memcmp(&slab_[off], &sent.slab_[off],
                                static_cast<std::size_t>(X_ * kSu3Doubles * 8)) != 0)
                    return false;
            }
        }
        return true;
    }

    // 5-deep loop nest: t, z, x, color, re/im.
    void manual_pack(std::byte* dst) const override {
        auto* out = reinterpret_cast<double*>(dst);
        std::size_t pos = 0;
        for (Count t = 0; t < T_; ++t) {
            for (Count z = 0; z < Z_; ++z) {
                const std::size_t off = run_offset(t, z);
                for (Count x = 0; x < X_; ++x) {
                    const std::size_t site = off + static_cast<std::size_t>(x * kSu3Doubles);
                    for (int c = 0; c < 3; ++c) {
                        for (int ri = 0; ri < 2; ++ri) {
                            out[pos++] = slab_[site + static_cast<std::size_t>(c * 2 + ri)];
                        }
                    }
                }
            }
        }
    }

    void manual_unpack(const std::byte* src) override {
        const auto* in = reinterpret_cast<const double*>(src);
        std::size_t pos = 0;
        for (Count t = 0; t < T_; ++t) {
            for (Count z = 0; z < Z_; ++z) {
                const std::size_t off = run_offset(t, z);
                for (Count x = 0; x < X_; ++x) {
                    const std::size_t site = off + static_cast<std::size_t>(x * kSu3Doubles);
                    for (int c = 0; c < 3; ++c) {
                        for (int ri = 0; ri < 2; ++ri) {
                            slab_[site + static_cast<std::size_t>(c * 2 + ri)] = in[pos++];
                        }
                    }
                }
            }
        }
    }

    dt::TypeRef datatype() const override {
        if (type_cache_ == nullptr) {
            // One run per (t, z): X sites of 6 doubles; stride Y*X sites.
            auto t = dt::Datatype::vector(T_ * Z_, X_ * kSu3Doubles,
                                          Y_ * X_ * kSu3Doubles, dt::type_double());
            (void)t->commit();
            type_cache_ = t;
        }
        return type_cache_;
    }
    Count dt_count() const override { return 1; }
    const void* dt_buffer() const override { return slab_.data() + run_offset(0, 0); }
    void* dt_buffer() override { return slab_.data() + run_offset(0, 0); }

    // Coarse view: one region per (t, z) run. Fine view: one region per
    // lattice site — X exactly-adjacent entries per run, which the
    // transport's coalescing pass merges back down to the coarse list.
    Count region_count() const override { return fine_ ? T_ * Z_ * X_ : T_ * Z_; }
    void regions(IovEntry* out) override {
        Count k = 0;
        for (Count t = 0; t < T_; ++t) {
            for (Count z = 0; z < Z_; ++z) {
                if (fine_) {
                    for (Count x = 0; x < X_; ++x) {
                        out[k].base = slab_.data() + run_offset(t, z) +
                                      static_cast<std::size_t>(x * kSu3Doubles);
                        out[k].len = kSu3Doubles * 8;
                        ++k;
                    }
                } else {
                    out[k].base = slab_.data() + run_offset(t, z);
                    out[k].len = X_ * kSu3Doubles * 8;
                    ++k;
                }
            }
        }
    }
    void set_fine_regions(bool fine) override { fine_ = fine; }

private:
    [[nodiscard]] std::size_t run_offset(Count t, Count z) const {
        return static_cast<std::size_t>((((t * Z_ + z) * Y_ + y0_) * X_) * kSu3Doubles);
    }

    Count T_ = 0, Z_ = 0, Y_ = 0, X_ = 0, y0_ = 0;
    bool fine_ = false;
    std::vector<double> slab_;
    mutable dt::TypeRef type_cache_;
};

} // namespace

std::unique_ptr<Kernel> make_milc_zdown() { return std::make_unique<MilcZdown>(); }

} // namespace detail
} // namespace mpicd::ddtbench
