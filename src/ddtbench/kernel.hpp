// DDTBench-style workload kernels (Schneider, Gerstenberger, Hoefler,
// EuroMPI'12) — the subset the paper evaluates in §V-C / Fig. 10 /
// Table I. Each kernel captures one application's halo/exchange data
// access pattern:
//
//   LAMMPS   indexed+struct   single loop over 6 arrays (non-unit stride)
//   MILC     strided vector   5 nested loops (non-unit stride)    regions
//   NAS_LU_x contiguous       2 nested loops                      regions
//   NAS_LU_y strided vector   2 nested loops (non-contiguous)     regions
//   NAS_MG_x strided vector   2 nested loops (non-contiguous)     regions
//   NAS_MG_y strided vector   2 nested loops (non-contiguous)     regions
//   WRF_x/y  struct of strided vectors, 3/4/5 nested loops
//
// A kernel owns both a send-side and receive-side data set and exposes the
// four transfer strategies Fig. 10 compares: manual pack loops, a derived
// datatype, custom-datatype packing, and (where sensible) custom-datatype
// memory regions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/bytes.hpp"
#include "core/custom_type.hpp"
#include "dt/datatype.hpp"

namespace mpicd::ddtbench {

// Table I row.
struct TableInfo {
    std::string name;
    std::string mpi_datatypes;
    std::string loop_structure;
    bool memory_regions = false;
};

class Kernel {
public:
    virtual ~Kernel() = default;

    [[nodiscard]] virtual TableInfo info() const = 0;

    // Reconfigure the problem so the exchanged payload is roughly
    // `target_bytes` (exact size via payload_bytes()). Invalidates data.
    virtual void resize(Count target_bytes) = 0;
    [[nodiscard]] virtual Count payload_bytes() const = 0;

    // Send-side data initialization / receive-side reset / validation that
    // the receive side holds exactly what `sent` packed.
    virtual void fill(unsigned seed) = 0;
    virtual void clear() = 0;
    [[nodiscard]] virtual bool verify(const Kernel& sent) const = 0;

    // Manual C-loop pack/unpack; dst/src holds payload_bytes() bytes.
    virtual void manual_pack(std::byte* dst) const = 0;
    virtual void manual_unpack(const std::byte* src) = 0;

    // Derived-datatype view: send/recv `dt_count()` elements of
    // `datatype()` rooted at `dt_buffer()`.
    [[nodiscard]] virtual dt::TypeRef datatype() const = 0;
    [[nodiscard]] virtual Count dt_count() const = 0;
    [[nodiscard]] virtual const void* dt_buffer() const = 0;
    [[nodiscard]] virtual void* dt_buffer() = 0;

    // Memory regions (Listing 5 view). Kernels whose access pattern makes
    // regions impracticable (LAMMPS, WRF — see Table I) return 0.
    [[nodiscard]] virtual Count region_count() const { return 0; }
    virtual void regions(IovEntry* /*out*/) {}

    // Opt into the finest region granularity the kernel's access pattern
    // supports (e.g. one entry per lattice site instead of per contiguous
    // run). Default is the coarse, already-merged view; kernels without a
    // finer decomposition ignore the request. Exercises the transport's
    // iovec coalescing pass, which must merge the fine entries back to the
    // coarse scatter-gather list without changing delivered bytes.
    virtual void set_fine_regions(bool /*fine*/) {}
};

// The custom datatype driving any Kernel through the paper's API with
// *packing*: query reports payload_bytes(), pack stages the kernel's
// manual pack on first call and serves fragments from the stage (the
// "full packing" strategy the paper used for DDTBench after hitting
// coroutine vectorization issues), unpack reassembles then applies
// manual_unpack. Buffer pointer = Kernel*.
[[nodiscard]] const core::CustomDatatype& kernel_pack_type();

// The custom datatype driving a Kernel through *memory regions*: nothing
// packed in-band, regions straight into the grid on both sides. Only valid
// for kernels with region_count() > 0.
[[nodiscard]] const core::CustomDatatype& kernel_region_type();

// Registry.
[[nodiscard]] std::vector<std::string> kernel_names();
[[nodiscard]] std::unique_ptr<Kernel> make_kernel(const std::string& name);

} // namespace mpicd::ddtbench
