// SendSource / RecvSink: protocol-agnostic adapters over BufferDesc.
//
// The worker's protocol code never switches on descriptor kind; it talks to
// these two interfaces instead:
//  - a SendSource yields bytes (gather / pack) and may expose raw memory
//    regions for zero-copy rendezvous;
//  - a RecvSink absorbs bytes (scatter / unpack) and may expose raw memory
//    regions for RDMA writes.
// Host CPU cost: user/datatype pack callbacks are *measured* (HostTimer);
// plain gather/scatter copies that stand in for NIC DMA are *modeled* by
// the caller through the wire model (see DESIGN.md §5).
#pragma once

#include <vector>

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "base/time.hpp"
#include "ucx/datatype.hpp"

namespace mpicd::ucx {

class SendSource {
public:
    explicit SendSource(const BufferDesc& desc);
    ~SendSource();
    SendSource(const SendSource&) = delete;
    SendSource& operator=(const SendSource&) = delete;
    SendSource(SendSource&&) noexcept;
    SendSource& operator=(SendSource&&) noexcept;

    // Total bytes this source will produce on the wire. For generic
    // sources this calls the packed_size callback (measured).
    [[nodiscard]] Status total_bytes(Count* out, SimTime& host_cost);

    // True when the underlying memory can be handed to the NIC directly
    // (contiguous buffer or iovec) — enables zero-copy rendezvous.
    [[nodiscard]] bool exposes_memory() const noexcept;

    // Raw regions, valid only when exposes_memory().
    [[nodiscard]] const std::vector<ConstIovEntry>& regions() const noexcept {
        return regions_;
    }

    [[nodiscard]] Count sg_entries() const noexcept;

    // Whether fragments may be produced out of offset order (generic
    // sources with inorder=false; memory sources are always random-access).
    [[nodiscard]] bool allows_out_of_order() const noexcept;

    // Produce up to dst.size() bytes at virtual offset `offset`.
    // For memory-backed sources this is a gather copy (host cost not
    // charged here — caller models it); for generic sources the pack
    // callback runs and its real duration is added to `host_cost`.
    [[nodiscard]] Status read(Count offset, MutBytes dst, Count* used, SimTime& host_cost);

    [[nodiscard]] Status init_error() const noexcept { return init_status_; }

private:
    const BufferDesc* desc_ = nullptr;
    std::vector<ConstIovEntry> regions_; // flattened memory view (non-generic)
    void* generic_state_ = nullptr;
    bool generic_ = false;
    bool inorder_ = true;
    Status init_status_ = Status::success;
    Count total_ = 0;
    bool total_known_ = false;
};

class RecvSink {
public:
    explicit RecvSink(BufferDesc& desc);
    ~RecvSink();
    RecvSink(const RecvSink&) = delete;
    RecvSink& operator=(const RecvSink&) = delete;
    RecvSink(RecvSink&&) noexcept;
    RecvSink& operator=(RecvSink&&) noexcept;

    // Maximum bytes this sink can absorb (receive-buffer capacity).
    [[nodiscard]] Count capacity() const noexcept { return capacity_; }

    [[nodiscard]] bool exposes_memory() const noexcept;
    [[nodiscard]] const std::vector<IovEntry>& regions() const noexcept {
        return regions_;
    }
    [[nodiscard]] Count sg_entries() const noexcept;
    [[nodiscard]] bool allows_out_of_order() const noexcept;

    // Absorb `src` at virtual offset `offset` (scatter copy or unpack
    // callback; callback duration added to host_cost).
    [[nodiscard]] Status write(Count offset, ConstBytes src, SimTime& host_cost);

    [[nodiscard]] Status init_error() const noexcept { return init_status_; }

private:
    BufferDesc* desc_ = nullptr;
    std::vector<IovEntry> regions_;
    void* generic_state_ = nullptr;
    bool generic_ = false;
    bool inorder_ = true;
    Status init_status_ = Status::success;
    Count capacity_ = 0;
};

// Scatter `src` into `regions` starting at byte offset `offset` within the
// concatenated region layout. Returns err_truncate when src overruns.
[[nodiscard]] Status scatter_into_regions(std::span<const IovEntry> regions,
                                          Count offset, ConstBytes src);

// Gather bytes [offset, offset+dst.size()) of the concatenated region
// layout into dst; *used receives the bytes produced (may be short at end).
[[nodiscard]] Status gather_from_regions(std::span<const ConstIovEntry> regions,
                                         Count offset, MutBytes dst, Count* used);

// Move up to `len` bytes at stream offset `offset` directly from the
// source region layout into the destination region layout — the simulated
// NIC's scatter-gather DMA for the zero-copy rendezvous path. No bounce
// buffer, no host copy: the moved bytes count toward datapath::bytes_dma,
// not bytes_copied. *moved may be short when the source is exhausted;
// err_truncate when the destination cannot hold the source bytes.
[[nodiscard]] Status dma_regions(std::span<const ConstIovEntry> src,
                                 std::span<const IovEntry> dst, Count offset,
                                 Count len, Count* moved);

} // namespace mpicd::ucx
