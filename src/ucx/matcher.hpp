// TagMatcher: the tag-matching engine behind ucx::Worker.
//
// MPI matching semantics in one place:
//  - posted receives match in POSTING order: an incoming message pairs with
//    the earliest-posted receive whose (tag, mask) predicate accepts it,
//    regardless of whether that receive is an exact match or a wildcard
//    (ANY_SOURCE / ANY_TAG encode as partial masks);
//  - unexpected messages match in ARRIVAL order: a newly posted receive
//    pairs with the earliest-arrived message its predicate accepts, which
//    preserves per-(src,tag) FIFO non-overtaking.
//
// Two interchangeable engines (MPICD_TAG_MATCH selects at Worker
// construction; see docs/MATCHING.md):
//  - linear: the seed behaviour — O(n) scans of FIFO deques. Kept as the
//    reference model for ablation benches and differential tests.
//  - hashed (default): mask-group buckets. Posted receives are grouped by
//    their mask value; within a group they hash by (tag & mask), so bucket
//    membership is equivalent to predicate acceptance for that mask and
//    each bucket is a FIFO chain. Wildcard masks simply form additional
//    (small) groups — the dedicated wildcard chains. A monotonic posting
//    sequence number arbitrates across groups: the candidate with the
//    smallest sequence wins, which is exactly posting order. Unexpected
//    messages live on one master arrival list plus a per-tag index of list
//    iterators; a full-mask take is O(1), a wildcard take scans the master
//    list in arrival order (and, by the bucket-front invariant, always
//    removes a bucket front: all messages with equal tag are
//    interchangeable under any predicate, so the earliest acceptable one
//    is the earliest of its tag).
//
// Not thread-safe: the owning Worker serializes access under its mutex.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/bytes.hpp"
#include "base/pool.hpp"
#include "base/time.hpp"

namespace mpicd::ucx {

using RequestId = std::uint64_t;
constexpr RequestId kInvalidRequest = 0;

// Tag type: full 64 bits; the p2p layer encodes (context, source, user tag).
using Tag = std::uint64_t;

[[nodiscard]] inline bool tag_matches(Tag posted_tag, Tag mask,
                                      Tag incoming) noexcept {
    return ((posted_tag ^ incoming) & mask) == 0;
}

// A message that arrived before a matching receive was posted (eager
// payload or rendezvous RTS), parked in the unexpected queue.
struct UnexpectedMsg {
    enum class Kind { eager, rts };
    Kind kind = Kind::eager;
    Tag tag = 0;
    int src = -1;
    Count total = 0;
    PooledBuf payload;           // eager only
    std::uint64_t sender_op = 0; // rts only
    SimTime arrival = 0.0;
    std::uint64_t msg_id = 0;    // sender's message id (from the packet)
    SimTime post_vtime = -1.0;   // sender's virtual post time
};

// Local matcher counters; folded into the metrics registry ("match/*") on
// destruction, and read directly by bench/stress_matching for per-section
// deltas.
struct MatcherStats {
    std::uint64_t probes = 0;            // match attempts (posted + unexpected)
    std::uint64_t scanned_entries = 0;   // entries/buckets examined across probes
    std::uint64_t posted_matches = 0;    // incoming message paired a posted recv
    std::uint64_t unexpected_matches = 0;// recv/mprobe paired an unexpected msg
    std::uint64_t wildcard_hits = 0;     // matches made through a partial mask
};

class TagMatcher {
public:
    enum class Mode { hashed, linear };

    // MPICD_TAG_MATCH=linear selects the seed matcher (ablation escape
    // hatch); anything else — including unset — selects hashed.
    [[nodiscard]] static Mode mode_from_env();

    explicit TagMatcher(Mode mode = mode_from_env());
    ~TagMatcher();
    TagMatcher(const TagMatcher&) = delete;
    TagMatcher& operator=(const TagMatcher&) = delete;

    [[nodiscard]] Mode mode() const noexcept { return mode_; }

    // --- Posted-receive side. ---
    void post_recv(RequestId id, Tag tag, Tag mask);
    // Earliest-posted receive accepting `incoming`; removed from matching.
    [[nodiscard]] std::optional<RequestId> match_posted(Tag incoming);
    // Remove a posted receive that has not matched; false if absent.
    bool cancel_posted(RequestId id, Tag tag, Tag mask);

    // --- Unexpected-message side. ---
    void add_unexpected(UnexpectedMsg&& msg);
    // Earliest-arrived message accepted by (tag, mask); removed.
    [[nodiscard]] std::optional<UnexpectedMsg> take_unexpected(Tag tag, Tag mask);
    // Non-destructive variant (probe). Pointer valid until the next
    // mutation of the matcher.
    [[nodiscard]] const UnexpectedMsg* peek_unexpected(Tag tag, Tag mask);

    [[nodiscard]] std::size_t posted_size() const noexcept { return posted_count_; }
    [[nodiscard]] std::size_t unexpected_size() const noexcept { return unex_.size(); }
    [[nodiscard]] bool empty() const noexcept {
        return posted_count_ == 0 && unex_.empty();
    }

    [[nodiscard]] const MatcherStats& local_stats() const noexcept { return stats_; }

private:
    struct PostedEntry {
        RequestId id = kInvalidRequest;
        Tag tag = 0;
        Tag mask = ~Tag{0};
        std::uint64_t seq = 0; // posting order, monotonic across all groups
    };
    // One group per distinct mask value; buckets keyed by (tag & mask) so
    // bucket equality <=> predicate acceptance for this mask. Each bucket
    // is a FIFO chain in posting order.
    struct MaskGroup {
        Tag mask = ~Tag{0};
        std::unordered_map<Tag, std::deque<PostedEntry>> buckets;
    };

    using UnexList = std::list<UnexpectedMsg>;

    MaskGroup& group_for(Tag mask);
    void erase_unexpected(UnexList::iterator it);
    [[nodiscard]] UnexList::iterator find_unexpected(Tag tag, Tag mask);
    void note_probe(std::uint64_t scanned);

    Mode mode_;
    std::uint64_t next_seq_ = 1;
    std::size_t posted_count_ = 0;

    // Hashed posted index (mode_ == hashed).
    std::vector<MaskGroup> groups_;
    // Linear posted queue (mode_ == linear), in posting order.
    std::deque<PostedEntry> posted_fifo_;

    // Master unexpected list in arrival order (both modes) ...
    UnexList unex_;
    // ... plus, in hashed mode, a per-tag FIFO index into it.
    std::unordered_map<Tag, std::deque<UnexList::iterator>> unex_by_tag_;

    MatcherStats stats_;
};

} // namespace mpicd::ucx
