#include "ucx/engine.hpp"

#include <algorithm>
#include <cstring>

#include "base/pool.hpp"

namespace mpicd::ucx {

namespace {

// Overload-set visitor helper.
template <class... Ts>
struct Overloaded : Ts... {
    using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

} // namespace

Status scatter_into_regions(std::span<const IovEntry> regions, Count offset,
                            ConstBytes src) {
    Count remaining = static_cast<Count>(src.size());
    std::size_t src_pos = 0;
    for (const auto& r : regions) {
        if (remaining == 0) return Status::success;
        if (offset >= r.len) {
            offset -= r.len;
            continue;
        }
        const Count space = r.len - offset;
        const Count n = std::min(space, remaining);
        std::memcpy(static_cast<std::byte*>(r.base) + offset, src.data() + src_pos,
                    static_cast<std::size_t>(n));
        src_pos += static_cast<std::size_t>(n);
        remaining -= n;
        offset = 0;
    }
    datapath::add_copied(static_cast<Count>(src.size()) - remaining);
    return remaining == 0 ? Status::success : Status::err_truncate;
}

Status gather_from_regions(std::span<const ConstIovEntry> regions, Count offset,
                           MutBytes dst, Count* used) {
    Count produced = 0;
    Count want = static_cast<Count>(dst.size());
    for (const auto& r : regions) {
        if (want == 0) break;
        if (offset >= r.len) {
            offset -= r.len;
            continue;
        }
        const Count avail = r.len - offset;
        const Count n = std::min(avail, want);
        std::memcpy(dst.data() + produced,
                    static_cast<const std::byte*>(r.base) + offset,
                    static_cast<std::size_t>(n));
        produced += n;
        want -= n;
        offset = 0;
    }
    *used = produced;
    datapath::add_copied(produced);
    return Status::success;
}

Status dma_regions(std::span<const ConstIovEntry> src, std::span<const IovEntry> dst,
                   Count offset, Count len, Count* moved) {
    *moved = 0;
    // Advance both cursors to the stream offset, then walk the two region
    // lists in lockstep copying the overlap of the current entries.
    std::size_t si = 0, di = 0;
    Count soff = offset, doff = offset;
    while (si < src.size() && soff >= src[si].len) soff -= src[si++].len;
    while (di < dst.size() && doff >= dst[di].len) doff -= dst[di++].len;
    Count remaining = len;
    while (remaining > 0 && si < src.size()) {
        if (di >= dst.size()) return Status::err_truncate;
        const Count n = std::min({remaining, src[si].len - soff, dst[di].len - doff});
        std::memcpy(static_cast<std::byte*>(dst[di].base) + doff,
                    static_cast<const std::byte*>(src[si].base) + soff,
                    static_cast<std::size_t>(n));
        *moved += n;
        remaining -= n;
        soff += n;
        doff += n;
        if (soff == src[si].len) {
            ++si;
            soff = 0;
        }
        if (doff == dst[di].len) {
            ++di;
            doff = 0;
        }
    }
    datapath::add_dma(*moved);
    return Status::success;
}

// ---------------------------------------------------------------------------
// SendSource

SendSource::SendSource(const BufferDesc& desc) : desc_(&desc) {
    std::visit(
        Overloaded{
            [&](const ContigDesc& c) {
                regions_.push_back({c.send_ptr, c.len});
                total_ = c.len;
                total_known_ = true;
            },
            [&](const IovDesc& iov) {
                regions_.reserve(iov.entries.size());
                for (const auto& e : iov.entries) {
                    regions_.push_back({e.base, e.len});
                    total_ += e.len;
                }
                total_known_ = true;
            },
            [&](const GenericDesc& g) {
                generic_ = true;
                inorder_ = g.ops.inorder;
                init_status_ =
                    g.ops.start_pack(g.ops.ctx, g.send_buf, g.count, &generic_state_);
            },
        },
        *desc_);
}

SendSource::~SendSource() {
    if (generic_ && generic_state_ != nullptr) {
        const auto& g = std::get<GenericDesc>(*desc_);
        if (g.ops.finish != nullptr) g.ops.finish(generic_state_);
    }
}

SendSource::SendSource(SendSource&& other) noexcept
    : desc_(other.desc_),
      regions_(std::move(other.regions_)),
      generic_state_(other.generic_state_),
      generic_(other.generic_),
      inorder_(other.inorder_),
      init_status_(other.init_status_),
      total_(other.total_),
      total_known_(other.total_known_) {
    other.generic_state_ = nullptr;
    other.generic_ = false;
}

SendSource& SendSource::operator=(SendSource&& other) noexcept {
    if (this != &other) {
        this->~SendSource();
        new (this) SendSource(std::move(other));
    }
    return *this;
}

Status SendSource::total_bytes(Count* out, SimTime& host_cost) {
    if (!ok(init_status_)) return init_status_;
    if (!total_known_) {
        const auto& g = std::get<GenericDesc>(*desc_);
        const ScopedMeasure measure(host_cost);
        MPICD_RETURN_IF_ERROR(g.ops.packed_size(generic_state_, &total_));
        total_known_ = true;
    }
    *out = total_;
    return Status::success;
}

bool SendSource::exposes_memory() const noexcept { return !generic_; }

Count SendSource::sg_entries() const noexcept {
    return generic_ ? 1 : static_cast<Count>(regions_.size());
}

bool SendSource::allows_out_of_order() const noexcept {
    return !generic_ || !inorder_;
}

Status SendSource::read(Count offset, MutBytes dst, Count* used, SimTime& host_cost) {
    if (!ok(init_status_)) return init_status_;
    if (generic_) {
        const auto& g = std::get<GenericDesc>(*desc_);
        Status st;
        {
            const ScopedMeasure measure(host_cost);
            st = g.ops.pack(generic_state_, offset, dst.data(),
                            static_cast<Count>(dst.size()), used);
        }
        // The pack callback materialized *used bytes into dst.
        if (ok(st)) datapath::add_copied(*used);
        return st;
    }
    return gather_from_regions(regions_, offset, dst, used);
}

// ---------------------------------------------------------------------------
// RecvSink

RecvSink::RecvSink(BufferDesc& desc) : desc_(&desc) {
    std::visit(
        Overloaded{
            [&](ContigDesc& c) {
                regions_.push_back({c.recv_ptr, c.len});
                capacity_ = c.len;
            },
            [&](IovDesc& iov) {
                regions_.reserve(iov.entries.size());
                for (const auto& e : iov.entries) {
                    regions_.push_back(e);
                    capacity_ += e.len;
                }
            },
            [&](GenericDesc& g) {
                generic_ = true;
                inorder_ = g.ops.inorder;
                // The receive capacity of a generic sink is queried from
                // its own callbacks after start_unpack; the paper requires
                // the receive side to know the expected sizes in advance.
                init_status_ =
                    g.ops.start_unpack(g.ops.ctx, g.recv_buf, g.count, &generic_state_);
                if (ok(init_status_) && g.ops.packed_size != nullptr) {
                    init_status_ = g.ops.packed_size(generic_state_, &capacity_);
                }
            },
        },
        *desc_);
}

RecvSink::~RecvSink() {
    if (generic_ && generic_state_ != nullptr) {
        const auto& g = std::get<GenericDesc>(*desc_);
        if (g.ops.finish != nullptr) g.ops.finish(generic_state_);
    }
}

RecvSink::RecvSink(RecvSink&& other) noexcept
    : desc_(other.desc_),
      regions_(std::move(other.regions_)),
      generic_state_(other.generic_state_),
      generic_(other.generic_),
      inorder_(other.inorder_),
      init_status_(other.init_status_),
      capacity_(other.capacity_) {
    other.generic_state_ = nullptr;
    other.generic_ = false;
}

RecvSink& RecvSink::operator=(RecvSink&& other) noexcept {
    if (this != &other) {
        this->~RecvSink();
        new (this) RecvSink(std::move(other));
    }
    return *this;
}

bool RecvSink::exposes_memory() const noexcept { return !generic_; }

Count RecvSink::sg_entries() const noexcept {
    return generic_ ? 1 : static_cast<Count>(regions_.size());
}

bool RecvSink::allows_out_of_order() const noexcept {
    return !generic_ || !inorder_;
}

Status RecvSink::write(Count offset, ConstBytes src, SimTime& host_cost) {
    if (!ok(init_status_)) return init_status_;
    if (generic_) {
        const auto& g = std::get<GenericDesc>(*desc_);
        Status st;
        {
            const ScopedMeasure measure(host_cost);
            st = g.ops.unpack(generic_state_, offset, src.data(),
                              static_cast<Count>(src.size()));
        }
        // The unpack callback consumed src into user memory.
        if (ok(st)) datapath::add_copied(static_cast<Count>(src.size()));
        return st;
    }
    return scatter_into_regions(regions_, offset, src);
}

} // namespace mpicd::ucx
